(* Benchmark harness: regenerates every experiment of the paper
   reproduction (see DESIGN.md §4 and EXPERIMENTS.md) and then times the
   framework's kernels with Bechamel (one Test.make per experiment).

   Part 1 — experiment reproduction: prints the table/series each
   experiment reports (verdicts, parameter ranges, crossovers, paving
   volumes, probabilities).  Absolute numbers are machine-dependent; the
   *shapes* (who wins, where verdicts flip) are the reproduction targets.

   Part 2 — kernel timing: Bechamel OLS estimates of ns/run for one
   representative workload per experiment, plus the ablations A1–A3.

   Run with:  dune exec bench/main.exe *)

module I = Interval.Ia
module Box = Interval.Box
module E = Reach.Encoding
module C = Reach.Checker
module Report = Core.Report

let section title = Report.print [ Report.heading title ]

let timed f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* E1: Fenton–Karma spike-and-dome falsification                       *)
(* ------------------------------------------------------------------ *)

let e1 () =
  section "E1  Fenton-Karma spike-and-dome falsification (Sec. IV-A)";
  let fk = Biomodels.Fenton_karma.automaton () in
  let goal = Biomodels.Fenton_karma.spike_and_dome_goal () in
  let rows =
    List.map
      (fun k ->
        let r, dt =
          timed (fun () ->
              C.check (E.create ~min_jumps:2 ~goal ~k ~time_bound:400.0 fk))
        in
        [ string_of_int k; Fmt.str "%a" C.pp_result r; Fmt.str "%.2fs" dt ])
      [ 2; 3; 4 ]
  in
  Report.print
    [ Report.table ~header:[ "k"; "verdict (expected: unsat)"; "time" ] rows ]

(* ------------------------------------------------------------------ *)
(* E2: BCF tau_so1 synthesis + APD map                                 *)
(* ------------------------------------------------------------------ *)

let e2 () =
  section "E2  BCF parameter ranges causing early repolarization (Sec. IV-A)";
  let bcf = Biomodels.Bueno_cherry_fenton.automaton ~free_params:[ "tau_so1" ] () in
  let goal = Biomodels.Bueno_cherry_fenton.early_repolarization_goal () in
  let verdict_rows =
    List.map
      (fun (lo, hi, expected) ->
        let r, dt =
          timed (fun () ->
              C.check
                (E.create
                   ~param_box:(Box.of_list [ ("tau_so1", I.make lo hi) ])
                   ~goal ~k:3 ~time_bound:150.0 bcf))
        in
        [ Fmt.str "[%g, %g]" lo hi; expected; Fmt.str "%a" C.pp_result r;
          Fmt.str "%.2fs" dt ])
      [ (5.0, 45.0, "delta-sat (abnormal witness)");
        (5.0, 15.0, "delta-sat");
        (25.0, 45.0, "unsat") ]
  in
  let apd_rows =
    List.map
      (fun tau ->
        let apd =
          Biomodels.Bueno_cherry_fenton.apd
            ~constants:{ Biomodels.Bueno_cherry_fenton.epi with tau_so1 = tau }
            ~params:[] ~t_end:800.0 ()
        in
        [ Fmt.str "%.0f" tau;
          (match apd with Some a -> Fmt.str "%.1f" a | None -> "-") ])
      [ 8.0; 12.0; 16.0; 20.0; 25.0; 30.0; 40.0; 50.0; 60.0 ]
  in
  Report.print
    [ Report.table ~header:[ "tau_so1 box"; "expected"; "verdict"; "time" ] verdict_rows;
      Report.text "APD series (monotone increasing in tau_so1; EPI normal ~270):";
      Report.table ~header:[ "tau_so1"; "APD (ms)" ] apd_rows ]

(* ------------------------------------------------------------------ *)
(* E3: prostate cancer IAS therapy                                     *)
(* ------------------------------------------------------------------ *)

let e3 () =
  section "E3  Prostate cancer personalized IAS therapy (Sec. IV-B)";
  let sim_rows =
    List.map
      (fun (label, r0, r1) ->
        let y, cycles, _ = Biomodels.Prostate.simulate_therapy ~r0 ~r1 ~t_end:800.0 () in
        [ label; Fmt.str "%.3f" y; string_of_int cycles;
          (if y >= 1.0 then "RELAPSE" else "controlled") ])
      [ ("continuous", -1.0, 1e9); ("IAS 4/10", 4.0, 10.0); ("IAS 6/12", 6.0, 12.0) ]
  in
  let automaton = Biomodels.Prostate.automaton () in
  let relapse = Biomodels.Prostate.relapse_goal ~level:1.0 () in
  let ias, dt_ias =
    timed (fun () ->
        C.check
          (E.create
             ~param_box:(Box.of_list [ ("r0", I.make 2.0 6.0); ("r1", I.make 8.0 14.0) ])
             ~goal:relapse ~k:6 ~time_bound:400.0 automaton))
  in
  let cas, dt_cas =
    timed (fun () ->
        C.check
          (E.create ~goal:relapse ~k:2 ~time_bound:1500.0
             (Hybrid.Automaton.bind_params [ ("r0", -1.0); ("r1", 1e6) ] automaton)))
  in
  Report.print
    [ Report.table ~header:[ "protocol"; "final y"; "cycles"; "outcome" ] sim_rows;
      Report.kv
        [ ("relapse, IAS box r0:[2,6] r1:[8,14] (expect unsat)",
           Fmt.str "%a  (%.2fs)" C.pp_result ias dt_ias);
          ("relapse, continuous therapy (expect delta-sat)",
           Fmt.str "%a  (%.2fs)" C.pp_result cas dt_cas) ] ]

(* ------------------------------------------------------------------ *)
(* E4: TBI combination therapy (Fig. 3)                                *)
(* ------------------------------------------------------------------ *)

let e4 () =
  section "E4  TBI treatment-scheme synthesis 0->A->B->0 (Sec. IV-B, Fig. 3)";
  let automaton = Biomodels.Tbi.automaton () in
  let param_box =
    Box.of_list [ ("theta1", I.make 0.6 2.0); ("theta2", I.make 0.4 2.0) ]
  in
  let untreated = Biomodels.Tbi.simulate_policy ~theta1:100.0 ~theta2:100.0 ~t_end:60.0 () in
  let plan, dt =
    timed (fun () ->
        Core.Therapy.optimize ~param_box
          ~recovery:(Biomodels.Tbi.recovery_goal ())
          ~harm:(Biomodels.Tbi.death_goal ())
          ~max_jumps:4 ~time_bound:40.0 automaton)
  in
  Report.print
    [ Report.kv
        [ ("untreated outcome (expect death)", untreated.Hybrid.Simulate.final_mode);
          ("synthesized scheme (expect m0->mA->mB->m0, 3 jumps, safe)",
           Fmt.str "%a" Core.Therapy.pp_outcome plan);
          ("synthesis time", Fmt.str "%.2fs" dt) ] ]

(* ------------------------------------------------------------------ *)
(* E5: stimulation robustness sweep                                    *)
(* ------------------------------------------------------------------ *)

let e5 () =
  section "E5  Cardiac stimulation robustness sweep (Sec. IV-C)";
  let make (lo, hi) =
    Biomodels.Bueno_cherry_fenton.automaton ~stimulus:lo ~stimulus_width:(hi -. lo) ()
  in
  let goal = Biomodels.Bueno_cherry_fenton.excitation_goal () in
  let ranges = List.init 8 (fun i -> (0.05 *. float_of_int i, 0.05 *. float_of_int (i + 1))) in
  let rows =
    List.map
      (fun ((lo, hi), v) ->
        [ Fmt.str "[%.2f, %.2f]" lo hi; Fmt.str "%a" Core.Robustness.pp_verdict v ])
      (Core.Robustness.sweep ~goal ~k:3 ~time_bound:100.0 make ranges)
  in
  Report.print
    [ Report.table ~header:[ "stimulus range"; "verdict (crossover at 0.3)" ] rows ]

(* ------------------------------------------------------------------ *)
(* E6: Lyapunov stability certificates                                 *)
(* ------------------------------------------------------------------ *)

let e6 () =
  section "E6  Lyapunov synthesis via exists-forall delta-decisions (Sec. IV-C)";
  let rows =
    List.map
      (fun (name, sys) ->
        let region = Biomodels.Classics.unit_box (Ode.System.vars sys) in
        let (outcome, dt) =
          timed (fun () ->
              Lyapunov.Cegis.synthesize
                (Lyapunov.Cegis.problem ~region
                   ~template:(Lyapunov.Template.quadratic (Ode.System.vars sys))
                   sys))
        in
        match outcome with
        | Lyapunov.Cegis.Proved c ->
            [ name; Fmt.str "%a" Expr.Term.pp c.Lyapunov.Cegis.v;
              string_of_int c.Lyapunov.Cegis.iterations; Fmt.str "%.2fs" dt ]
        | o -> [ name; Fmt.str "%a" Lyapunov.Cegis.pp_outcome o; "-"; Fmt.str "%.2fs" dt ])
      [ ("damped rotation", Biomodels.Classics.damped_rotation);
        ("damped nonlinear", Biomodels.Classics.damped_nonlinear);
        ("proofreading chain", Biomodels.Classics.proofreading);
        ("ERK cascade", Biomodels.Classics.erk_cascade) ]
  in
  Report.print [ Report.table ~header:[ "system"; "V"; "iters"; "time" ] rows ]

(* ------------------------------------------------------------------ *)
(* E7: guaranteed calibration (BioPSy workload)                        *)
(* ------------------------------------------------------------------ *)

let e7 () =
  section "E7  Guaranteed calibration of a single-mode ODE model (Sec. IV-A)";
  let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ] in
  let data =
    List.map
      (fun t ->
        Synth.Data.point ~time:t ~var:"x" ~value:(Float.exp (-.t)) ~tolerance:0.08)
      [ 0.25; 0.5; 0.75; 1.0 ]
  in
  let prob =
    Synth.Biopsy.problem ~sys
      ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      ~data
  in
  let rows =
    List.map
      (fun eps ->
        let r, dt =
          timed (fun () ->
              Synth.Biopsy.synthesize
                ~config:{ Synth.Biopsy.default_config with epsilon = eps }
                prob)
        in
        let vc, vi, vu = Synth.Biopsy.volumes prob r in
        [ Fmt.str "%.3f" eps; Fmt.str "%.4f" vc; Fmt.str "%.4f" vi;
          Fmt.str "%.4f" vu; string_of_int r.Synth.Biopsy.boxes_explored;
          Fmt.str "%.2fs" dt ])
      [ 0.2; 0.1; 0.05; 0.02 ]
  in
  (* falsification instance *)
  let bad_data =
    [ Synth.Data.point ~time:0.5 ~var:"x" ~value:2.0 ~tolerance:0.2;
      Synth.Data.point ~time:1.0 ~var:"x" ~value:4.0 ~tolerance:0.2 ]
  in
  let bad =
    Synth.Biopsy.problem ~sys
      ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      ~data:bad_data
  in
  let fr = Synth.Biopsy.synthesize bad in
  Report.print
    [ Report.text
        "paving volumes vs epsilon (undecided must shrink, truth k=1 in consistent):";
      Report.table
        ~header:[ "eps"; "consistent"; "inconsistent"; "undecided"; "boxes"; "time" ]
        rows;
      Report.text "growth data against the decay model: falsified = %b (expect true)"
        (Synth.Biopsy.falsified fr) ]

(* ------------------------------------------------------------------ *)
(* E8: SMC of the p53 module                                           *)
(* ------------------------------------------------------------------ *)

let e8 () =
  section "E8  SMC of the p53 radiation-response module (Fig. 2 branch)";
  let problem lo hi =
    Smc.Runner.problem
      ~model:(Smc.Runner.Ode_model Biomodels.Classics.p53_mdm2)
      ~init_dist:
        [ ("p53", Smc.Sampler.Uniform (0.02, 0.08));
          ("mdm2", Smc.Sampler.Uniform (0.02, 0.08)) ]
      ~param_dist:[ ("damage", Smc.Sampler.Uniform (lo, hi)) ]
      ~property:(Smc.Bltl.Finally (30.0, Smc.Bltl.prop "p53 >= 0.3"))
      ~t_end:30.0 ()
  in
  let rows =
    List.map
      (fun (label, lo, hi) ->
        let e, dt = timed (fun () -> Smc.Runner.estimate ~eps:0.1 ~alpha:0.05 (problem lo hi)) in
        [ label; Fmt.str "%.3f" e.Smc.Estimate.p_hat;
          Fmt.str "[%.2f, %.2f]" e.Smc.Estimate.ci_low e.Smc.Estimate.ci_high;
          string_of_int e.Smc.Estimate.n; Fmt.str "%.2fs" dt ])
      [ ("damage 0.0-0.1", 0.0, 0.1); ("damage 0.1-0.5", 0.1, 0.5);
        ("damage 0.5-1.5", 0.5, 1.5) ]
  in
  let sprt =
    Smc.Runner.test ~config:{ Smc.Sprt.default_config with theta = 0.9 }
      (problem 0.5 1.5)
  in
  Report.print
    [ Report.table ~header:[ "regime"; "P(pulse)"; "95% CI"; "n"; "time" ] rows;
      Report.text "SPRT P >= 0.9 at high damage: %s" (Fmt.str "%a" Smc.Sprt.pp_result sprt) ]

(* ------------------------------------------------------------------ *)
(* E9: DBN abstraction (the paper's proposed probabilistic extension)  *)
(* ------------------------------------------------------------------ *)

let e9 () =
  section "E9  Factored-DBN abstraction vs ground truth (Conclusion / refs [3]-[5])";
  let decay = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ] in
  let grid = Dbn.Grid.create [ Dbn.Grid.axis ~var:"x" ~lo:0.0 ~hi:1.5 ~cells:15 ] in
  let init_dist = [ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ] in
  let m, learn_t =
    timed (fun () ->
        Dbn.Model.learn
          ~config:{ Dbn.Model.default_learn with Dbn.Model.samples = 1500 }
          ~grid ~slices:10 ~horizon:2.0 ~init_dist ~param_dist:[] decay)
  in
  let belief = Dbn.Model.belief_of_dist m init_dist in
  (* analytic: P(x0 e^-t <= 0.5) for x0 ~ U(0.8, 1.2) *)
  let exact t =
    let lim = 0.5 *. Float.exp t in
    Float.max 0.0 (Float.min 1.0 ((lim -. 0.8) /. 0.4))
  in
  let rows =
    List.map
      (fun t ->
        let p =
          Dbn.Model.probability m ~init_belief:belief ~var:"x" ~time:t (fun x ->
              x <= 0.5)
        in
        [ Fmt.str "%.1f" t; Fmt.str "%.3f" p; Fmt.str "%.3f" (exact t);
          Fmt.str "%.3f" (Float.abs (p -. exact t)) ])
      [ 0.2; 0.4; 0.6; 0.8; 1.0; 1.2 ]
  in
  Report.print
    [ Report.text "decay workload, P(x <= 0.5 at t), learned in %.2fs:" learn_t;
      Report.table ~header:[ "t"; "DBN"; "exact"; "abs err" ] rows ]

(* ------------------------------------------------------------------ *)
(* S1: delta-decision solver scaling                                   *)
(* ------------------------------------------------------------------ *)

let s1 () =
  section "S1  ICP solver behaviour: runtime vs delta and dimension (Sec. III)";
  (* Tangency instance: x² + y² = 1 ∧ xy = 1/2 touches at the single
     point x = y = 1/√2, so certification must localize a thin set —
     the work grows as δ shrinks.  The near-tangent plane instance does
     the same for the dimension sweep. *)
  let tangency = Expr.Parse.formula "x^2 + y^2 = 1 and x*y = 1/2" in
  let tangency_box = Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ] in
  let near_tangent_plane n =
    let vars = List.init n (fun i -> Printf.sprintf "x%d" i) in
    let sum_sq =
      String.concat " + " (List.map (fun v -> Printf.sprintf "%s^2" v) vars)
    in
    let f =
      Expr.Parse.formula
        (Printf.sprintf "%s = 1 and %s >= %.17g" sum_sq
           (String.concat " + " vars)
           (0.98 *. Float.sqrt (float_of_int n)))
    in
    let box = Box.of_list (List.map (fun v -> (v, I.make (-2.0) 2.0)) vars) in
    (f, box)
  in
  let verdict_str = function
    | Icp.Solver.Delta_sat _ -> "delta-sat"
    | Icp.Solver.Unsat -> "unsat"
    | Icp.Solver.Unknown _ -> "unknown"
  in
  let delta_rows =
    List.map
      (fun delta ->
        let config =
          { Icp.Solver.default_config with delta; epsilon = delta /. 10.0 }
        in
        let (r, stats), dt =
          timed (fun () -> Icp.Solver.decide_with_stats ~config tangency tangency_box)
        in
        [ Fmt.str "%.0e" delta; verdict_str r;
          string_of_int stats.Icp.Solver.boxes_processed; Fmt.str "%.4fs" dt ])
      [ 1e-1; 1e-2; 1e-3; 1e-4; 1e-5; 1e-6 ]
  in
  let dim_rows =
    List.map
      (fun n ->
        let f, box = near_tangent_plane n in
        let config = { Icp.Solver.default_config with delta = 1e-3; epsilon = 1e-4 } in
        let (r, stats), dt =
          timed (fun () -> Icp.Solver.decide_with_stats ~config f box)
        in
        [ string_of_int n; verdict_str r;
          string_of_int stats.Icp.Solver.boxes_processed; Fmt.str "%.4fs" dt ])
      [ 1; 2; 3; 4; 5 ]
  in
  Report.print
    [ Report.text "tangency instance (x²+y²=1 ∧ xy=1/2), shrinking delta:";
      Report.table ~header:[ "delta"; "verdict"; "boxes"; "time" ] delta_rows;
      Report.text "near-tangent sphere/plane, dimension scaling at delta = 1e-3:";
      Report.table ~header:[ "dim"; "verdict"; "boxes"; "time" ] dim_rows ]

(* ------------------------------------------------------------------ *)
(* Ablations                                                           *)
(* ------------------------------------------------------------------ *)

let a1 () =
  section "A1  Ablation: validated-enclosure order (Euler-1 vs Taylor-2)";
  let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ] in
  let osc =
    Ode.System.of_strings ~vars:[ "x"; "y" ] ~params:[]
      ~rhs:[ ("x", "y"); ("y", "-x") ]
  in
  let run name sys init t_end order =
    let config = { Ode.Enclosure.default_config with order } in
    let tube, dt =
      timed (fun () ->
          Ode.Enclosure.flow ~config ~params:Box.empty_map ~init ~t_end sys)
    in
    [ name;
      (match order with Ode.Enclosure.Euler_1 -> "Euler-1" | Ode.Enclosure.Taylor_2 -> "Taylor-2");
      Fmt.str "%.3g" (Box.width tube.Ode.Enclosure.final);
      string_of_bool tube.Ode.Enclosure.complete; Fmt.str "%.3fs" dt ]
  in
  let x0 = Box.of_list [ ("x", I.of_float 1.0) ] in
  let xy0 = Box.of_list [ ("x", I.of_float 1.0); ("y", I.of_float 0.0) ] in
  Report.print
    [ Report.table
        ~header:[ "system"; "order"; "final width"; "complete"; "time" ]
        [ run "decay t=1" sys x0 1.0 Ode.Enclosure.Euler_1;
          run "decay t=1" sys x0 1.0 Ode.Enclosure.Taylor_2;
          run "oscillator t=2" osc xy0 2.0 Ode.Enclosure.Euler_1;
          run "oscillator t=2" osc xy0 2.0 Ode.Enclosure.Taylor_2 ] ]

let a2 () =
  section "A2  Ablation: mode-path enumeration with/without goal pruning";
  let tbi = Biomodels.Tbi.automaton () in
  let g = Hybrid.Graph.of_automaton tbi in
  let rows =
    List.map
      (fun k ->
        let all = Hybrid.Graph.paths ~max_jumps:k g ~source:"m0" in
        let pruned = Hybrid.Graph.paths ~targets:[ "m0" ] ~max_jumps:k g ~source:"m0" in
        [ string_of_int k; string_of_int (List.length all);
          string_of_int (List.length pruned) ])
      [ 2; 3; 4; 5; 6 ]
  in
  Report.print
    [ Report.text "TBI automaton (7 modes): candidate paths to explore:";
      Report.table ~header:[ "k"; "all paths"; "goal-pruned" ] rows ]

let a3 () =
  section "A3  Ablation: ICP contraction on/off in the delta-decision search";
  let f = Expr.Parse.formula "x^2 + y^2 = 1 and y >= x and x*y >= 0.1" in
  let box = Box.of_list [ ("x", I.make (-2.0) 2.0); ("y", I.make (-2.0) 2.0) ] in
  let rows =
    List.map
      (fun (label, use_contraction) ->
        let config = { Icp.Solver.default_config with use_contraction } in
        let (r, stats), dt = timed (fun () -> Icp.Solver.decide_with_stats ~config f box) in
        [ label;
          (match r with
          | Icp.Solver.Delta_sat _ -> "delta-sat"
          | Icp.Solver.Unsat -> "unsat"
          | Icp.Solver.Unknown _ -> "unknown");
          string_of_int stats.Icp.Solver.boxes_processed;
          string_of_int stats.Icp.Solver.prunings; Fmt.str "%.4fs" dt ])
      [ ("HC4 + bisection", true); ("bisection only", false) ]
  in
  Report.print
    [ Report.table ~header:[ "variant"; "verdict"; "boxes"; "prunings"; "time" ] rows ]

let a4 () =
  section "A4  Ablation: ensemble-bracket size in the reachability checker";
  let automaton = Biomodels.Prostate.automaton () in
  let relapse = Biomodels.Prostate.relapse_goal ~level:1.0 () in
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("r0", I.make 2.0 6.0); ("r1", I.make 8.0 14.0) ])
      ~goal:relapse ~k:6 ~time_bound:400.0 automaton
  in
  let rows =
    List.map
      (fun n ->
        let config = { C.default_config with fallback_samples = n } in
        let r, dt = timed (fun () -> C.check ~config pb) in
        [ string_of_int n; Fmt.str "%a" C.pp_result r; Fmt.str "%.2fs" dt ])
      [ 4; 12; 24; 48 ]
  in
  Report.print
    [ Report.text "E3 IAS-safety instance; the verdict must be stable in the";
      Report.text "ensemble size while cost grows roughly linearly:";
      Report.table ~header:[ "samples"; "verdict"; "time" ] rows ]

(* ------------------------------------------------------------------ *)
(* P1: multicore scaling sweep (jobs = 1, 2, 4, 8)                     *)
(* ------------------------------------------------------------------ *)

(* Each kernel runs [rounds] times per jobs value with scheduler
   telemetry captured per run; the minimum wall time survives (the
   container's clock is noisy, and the min filters throttling spikes).
   Sequential (jobs = 1) is the baseline for the speedup column, and the
   result of every parallel run is checked against it in-process —
   verdict kind for decide, exact leaf multiset for pave, bit-equal
   rounds plus a 2ε Chernoff corridor for the SMC estimate — so a
   scheduler bug cannot hide behind a good-looking speedup.  Results
   land in BENCH_icp.json (ns/op, speedup, search effort, and scheduler
   counters per kernel and jobs value, plus the detected core count —
   speedups are bounded by the latter; jobs beyond it are multiplexed
   onto the available domains). *)

let p1_jobs_sweep = [ 1; 2; 4; 8 ]

(* One run's scheduler telemetry, read off the metrics registry. *)
type p1_sched = {
  steals : int;
  steal_fails : int;
  idle_ns : int;
  lease_refills : int;
  deque_p50 : int;
  deque_p99 : int;
}

let p1_snapshot_sched () =
  let counters = Telemetry.Metrics.counters () in
  let c name = match List.assoc_opt name counters with Some v -> v | None -> 0 in
  let p50, p99 =
    match List.assoc_opt "pool.deque_depth" (Telemetry.Metrics.histograms ()) with
    | Some snap when snap.Telemetry.Histogram.count > 0 ->
        ( Telemetry.Histogram.quantile 0.5 snap,
          Telemetry.Histogram.quantile 0.99 snap )
    | _ -> (0, 0)
  in
  {
    steals = c "pool.steals";
    steal_fails = c "pool.steal_fails";
    idle_ns = c "pool.idle_ns";
    lease_refills = c "pool.lease_refills";
    deque_p50 = p50;
    deque_p99 = p99;
  }

let p1 ?(quick = false) () =
  section
    (if quick then "P1  Multicore scaling: decide / pave / SMC (quick)"
     else "P1  Multicore scaling: decide / pave / SMC across worker domains");
  let sweep = if quick then [ 1; 2 ] else p1_jobs_sweep in
  let rounds = if quick then 3 else 13 in
  (* Near-tangency unsat: max of x*y*z on the unit sphere is 3^(-3/2) ≈
     0.192450, so x*y*z = 0.1925 misses by 5e-5 — refuting it must
     exhaust a deep search tree (≈16k boxes), which is the
     parallelizable regime; a δ-sat race would end at the first witness
     instead.  (The PR-1..6 tangency kernel decided in a handful of
     boxes after the Newton/affine layers landed and measured only
     scheduler constants.) *)
  let sphere =
    Expr.Parse.formula "x^2 + y^2 + z^2 = 1 and x*y*z = 1925/10000"
  in
  let sphere_box =
    Box.of_list
      [ ("x", I.make 0.0 1.0); ("y", I.make 0.0 1.0); ("z", I.make 0.0 1.0) ]
  in
  let ring = Expr.Parse.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
  let ring_box =
    Box.of_list [ ("x", I.make (-1.5) 1.5); ("y", I.make (-1.5) 1.5) ]
  in
  let smc_eps = 0.03 in
  let smc_prob =
    Smc.Runner.problem
      ~model:(Smc.Runner.Ode_model Biomodels.Classics.p53_mdm2)
      ~init_dist:
        [ ("p53", Smc.Sampler.Uniform (0.02, 0.08));
          ("mdm2", Smc.Sampler.Uniform (0.02, 0.08)) ]
      ~param_dist:[ ("damage", Smc.Sampler.Uniform (0.5, 1.5)) ]
      ~property:(Smc.Bltl.Finally (30.0, Smc.Bltl.prop "p53 >= 0.3"))
      ~t_end:30.0 ()
  in
  let sort_leaves over bs =
    List.sort compare
      (List.map
         (fun b ->
           List.map
             (fun v ->
               let i = Box.find v b in
               (v, I.lo i, I.hi i))
             over)
         bs)
  in
  (* Each kernel returns (summary, (boxes, splits, prunings), check);
     [same] compares checks across rounds at one jobs value (must be
     exact — that is the determinism contract), [agrees] compares a
     parallel run's check against the jobs=1 baseline. *)
  let decide_kernel jobs =
    let config =
      { Icp.Solver.default_config with
        delta = 1e-7; epsilon = 1e-8; max_boxes = 10_000_000; jobs }
    in
    let r, stats = Icp.Solver.decide_with_stats ~config sphere sphere_box in
    let kind =
      match r with
      | Icp.Solver.Delta_sat _ -> "delta-sat"
      | Icp.Solver.Unsat -> "unsat"
      | Icp.Solver.Unknown _ -> "unknown"
    in
    ( Fmt.str "%s, %d boxes, %d certs" kind stats.Icp.Solver.boxes_processed
        stats.Icp.Solver.certifications,
      ( stats.Icp.Solver.boxes_processed,
        stats.Icp.Solver.splits,
        stats.Icp.Solver.prunings ),
      `Verdict kind )
  in
  let pave_kernel jobs =
    let config = { Icp.Solver.default_config with epsilon = 0.005; jobs } in
    let p, stats = Icp.Solver.pave_with_stats ~config ring ring_box in
    ( Fmt.str "%d/%d/%d leaves, %d boxes, %d splits"
        (List.length p.Icp.Solver.sat)
        (List.length p.Icp.Solver.unsat)
        (List.length p.Icp.Solver.undecided)
        stats.Icp.Solver.boxes_processed stats.Icp.Solver.splits,
      ( stats.Icp.Solver.boxes_processed,
        stats.Icp.Solver.splits,
        stats.Icp.Solver.prunings ),
      `Leaves
        (List.map
           (fun leaves -> sort_leaves [ "x"; "y" ] leaves)
           [ p.Icp.Solver.sat; p.Icp.Solver.unsat; p.Icp.Solver.undecided ]) )
  in
  let smc_kernel jobs =
    let e = Smc.Runner.estimate ~jobs ~eps:smc_eps ~alpha:0.05 smc_prob in
    ( Fmt.str "p=%.3f, n=%d" e.Smc.Estimate.p_hat e.Smc.Estimate.n,
      (0, 0, 0),
      `Est (e.Smc.Estimate.p_hat, e.Smc.Estimate.successes, e.Smc.Estimate.n) )
  in
  let agrees name base got =
    match (base, got) with
    | `Verdict a, `Verdict b ->
        if a <> b then failwith (Printf.sprintf "P1 %s: verdict %s <> %s" name b a)
    | `Leaves a, `Leaves b ->
        if a <> b then
          failwith (Printf.sprintf "P1 %s: parallel leaf set differs" name)
    | `Est (p_base, _, _), `Est (p_got, _, _) ->
        (* different jobs consume different PRNG streams; both estimates
           carry the same Chernoff ±ε bound *)
        if Float.abs (p_base -. p_got) > 2.0 *. smc_eps then
          failwith
            (Printf.sprintf "P1 %s: estimate %.3f outside 2eps of %.3f" name
               p_got p_base)
    | _ -> failwith (Printf.sprintf "P1 %s: check kind mismatch" name)
  in
  let same name jobs a b =
    if a <> b then
      failwith
        (Printf.sprintf "P1 %s: non-reproducible result at jobs=%d" name jobs)
  in
  (* Timed rounds run with metrics OFF: the pool's per-item counters and
     the deque-depth histogram only fire on the pooled (jobs > 1) code
     path, so leaving them on would tax exactly the runs whose speedup
     is being measured.  Scheduler telemetry instead comes from one
     extra, untimed run per (kernel, jobs) cell with metrics enabled —
     the kernels are deterministic at a fixed jobs value (asserted via
     [same]), so the extra run retraces the measured ones. *)
  (* Shared containers throttle in multi-second waves (observed: wall
     clock for a fixed workload halving and doubling on a ~5 s period),
     so any protocol that times the jobs=1 cell and the jobs=k cell far
     apart measures the wave, not the scheduler.  The speedup for
     jobs=k is therefore the {e median of adjacent-pair ratios}: each
     round times jobs=1 and jobs=k back to back (order alternating
     every round so neither side systematically runs on the fresher
     CPU), takes the ratio of those two adjacent walls - close enough
     in time that a slow wave taxes both sides equally - and the median
     over rounds discards the pairs a wave boundary happened to split.
     Each timed run is preceded by a major GC so a run never pays for
     the garbage of the previous one.  The wall column is the per-cell
     minimum over every sample taken (the usual noise-floor
     estimate). *)
  let median a =
    let a = Array.copy a in
    Array.sort compare a;
    let n = Array.length a in
    if n land 1 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0
  in
  let measure_kernel name kernel =
    let slots = List.length sweep in
    let sweep_arr = Array.of_list sweep in
    let best = Array.make slots None in
    let checks = Array.make slots None in
    let run k =
      let jobs = sweep_arr.(k) in
      Gc.full_major ();
      let (summary, effort, check), dt = timed (fun () -> kernel jobs) in
      (match checks.(k) with
      | None -> checks.(k) <- Some check
      | Some c -> same name jobs c check);
      (match best.(k) with
      | Some (_, _, best_dt) when best_dt <= dt -> ()
      | _ -> best.(k) <- Some (summary, effort, dt));
      dt
    in
    (* one unrecorded warm-up so the first pair does not pay for cold
       caches and allocator growth *)
    ignore (run 0 : float);
    let ratios =
      Array.init (slots - 1) (fun i ->
          Array.init rounds (fun round ->
              let k = i + 1 in
              if round land 1 = 0 then
                let d1 = run 0 in
                let dk = run k in
                d1 /. dk
              else
                let dk = run k in
                let d1 = run 0 in
                d1 /. dk))
    in
    let speedup k = if k = 0 then 1.0 else median ratios.(k - 1) in
    List.mapi
      (fun k jobs ->
        let sched =
          Telemetry.set_metrics true;
          Fun.protect ~finally:(fun () -> Telemetry.set_metrics false)
          @@ fun () ->
          Telemetry.reset ();
          let (_, _, check), _ = timed (fun () -> kernel jobs) in
          (match checks.(k) with Some c -> same name jobs c check | None -> ());
          p1_snapshot_sched ()
        in
        match (best.(k), checks.(k)) with
        | Some (summary, effort, dt), Some check ->
            (jobs, (summary, effort, sched, dt, speedup k, check))
        | _ -> assert false)
      sweep
  in
  let measured =
    List.map
      (fun (name, kernel) ->
        let runs = measure_kernel name kernel in
        (match runs with
        | (_, (_, _, _, _, _, base_check)) :: rest ->
            List.iter
              (fun (_, (_, _, _, _, _, check)) -> agrees name base_check check)
              rest
        | [] -> ());
        (name, runs))
      [ ("icp-decide-sphere", decide_kernel);
        ("icp-pave-ring", pave_kernel);
        ("smc-estimate-p53", smc_kernel) ]
  in
  let rows =
    List.concat_map
      (fun (name, runs) ->
        List.map
          (fun (jobs, (summary, _, sched, dt, speedup, _)) ->
            [ name; string_of_int jobs; Fmt.str "%.3fs" dt;
              Fmt.str "%.2fx" speedup;
              string_of_int sched.steals;
              string_of_int sched.lease_refills;
              Fmt.str "%.1fms" (float_of_int sched.idle_ns /. 1e6);
              summary ])
          runs)
      measured
  in
  Report.print
    [ Report.text
        "detected cores: %d (speedups are bounded by this; jobs beyond the"
        (Domain.recommended_domain_count ());
      Report.text
        "domain cap are multiplexed sequentially, so they cost ~nothing)";
      Report.text
        "parallel runs are checked against jobs=1 in-process (verdict /";
      Report.text "leaf set / 2-eps estimate corridor)";
      Report.table
        ~header:
          [ "kernel"; "jobs"; "wall"; "speedup"; "steals"; "refills"; "idle";
            "result" ]
        rows ];
  (* machine-readable dump *)
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"cores\": %d,\n\
       \  \"default_jobs\": %d,\n\
       \  \"domain_cap\": %d,\n\
       \  \"workstealing\": %b,\n\
       \  \"quick\": %b,\n\
       \  \"note\": \"1-core containers multiplex jobs > cores onto the available domains; speedups are bounded by cores, and the acceptance bar is jobs=2 >= 1.0x (no coordination overhead). Scheduler counters come from one extra untimed run per cell with metrics enabled; timed rounds ran with metrics off. wall_s is the per-cell minimum over all samples (each run preceded by a major GC); speedup for jobs=k is the median of adjacent-pair ratios against jobs=1 (the two cells timed back to back, order alternating per round), which cancels the multi-second throttling waves of a shared container.\",\n\
       \  \"kernels\": [\n"
       (Domain.recommended_domain_count ())
       (Parallel.Pool.default_jobs ())
       (Parallel.Pool.domain_cap ())
       (Parallel.Pool.workstealing_enabled ())
       quick);
  List.iteri
    (fun i (name, runs) ->
      Buffer.add_string buf (Printf.sprintf "    {\"name\": %S, \"runs\": [\n" name);
      List.iteri
        (fun j (jobs, (_, (boxes, splits, prunings), sched, dt, speedup, _)) ->
          Buffer.add_string buf
            (Printf.sprintf
               "      %s{\"jobs\": %d, \"wall_s\": %.6f, \"ns_per_op\": %.0f, \
                \"speedup\": %.2f, \"boxes_processed\": %d, \"splits\": %d, \
                \"prunings\": %d, \"steals\": %d, \"steal_fails\": %d, \
                \"idle_ns\": %d, \"lease_refills\": %d, \"deque_depth_p50\": \
                %d, \"deque_depth_p99\": %d}%s\n"
               (if j = 0 then "" else ", ")
               jobs dt (dt *. 1e9) speedup boxes splits prunings
               sched.steals sched.steal_fails sched.idle_ns sched.lease_refills
               sched.deque_p50 sched.deque_p99
               (if j = List.length runs - 1 then "" else "")))
        runs;
      Buffer.add_string buf
        (Printf.sprintf "    ]}%s\n"
           (if i = List.length measured - 1 then "" else ",")))
    measured;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_icp.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_icp.json" ]

(* ------------------------------------------------------------------ *)
(* T1: tree-walking vs tape-compiled kernels (jobs = 1)                *)
(* ------------------------------------------------------------------ *)

(* Same workload through both code paths: the tree walkers
   (BIOMC_NO_TAPE semantics, forced via [Expr.Tape.set_enabled false])
   and the flat SSA tapes.  Tape compilation happens once per query —
   inside the timed region for the first call, as in the solver —
   and the verdicts are checked to agree call-for-call.  Results land
   in BENCH_tape.json (ns/op per path and the speedup column). *)

let t1 () =
  section "T1  Tape-compiled kernels vs tree walkers (jobs = 1)";
  let with_tapes flag f =
    Expr.Tape.set_enabled flag;
    Fun.protect ~finally:Expr.Tape.clear_enabled_override f
  in
  let time_reps reps f =
    let _, dt = timed (fun () -> for _ = 1 to reps do ignore (f ()) done) in
    dt /. float_of_int reps *. 1e9
  in
  (* The container's clock is noisy (external throttling), so each
     kernel alternates tree and tape timing rounds and keeps the
     per-path minimum: spikes hit both paths alike and the min filters
     them out. *)
  let measure_pair ?(rounds = 5) ~reps run =
    let tree = ref infinity and tape = ref infinity in
    for _ = 1 to rounds do
      let t = with_tapes false (fun () -> time_reps reps run) in
      if t < !tree then tree := t;
      let t = with_tapes true (fun () -> time_reps reps run) in
      if t < !tape then tape := t
    done;
    (!tree, !tape)
  in
  (* HC4 fixpoint: enzyme-kinetics conservation/equilibrium constraints
     (the shape Reach.Checker feeds the contractor) over a grid of query
     boxes, the contractor compiled once per query as Icp.Solver does.
     The conservation laws make the fixpoint iterate: contraction of one
     variable propagates to the others over several rounds. *)
  let hc4_kernel () =
    let c t target = { Icp.Contractor.term = Expr.Parse.term t; target } in
    let eq = I.make (-1e-4) 1e-4 in
    let cs =
      [ c "e + cx - 1" eq;
        c "s + cx + p - 2" eq;
        c "2*s*e - cx" eq;
        c "cx / (s + 1/2) - p" (I.make (-0.1) 0.1);
        c "s^2 + p^2" (I.make 0.0 4.0) ]
    in
    let grid =
      List.concat_map
        (fun i ->
          List.map
            (fun j ->
              let sc = 2.0 /. 8.0 in
              Box.of_list
                [ ("s", I.make (float_of_int i *. sc) ((float_of_int i +. 1.0) *. sc));
                  ("p", I.make (float_of_int j *. sc) ((float_of_int j +. 1.0) *. sc));
                  ("e", I.make 0.0 1.0); ("cx", I.make 0.0 1.0) ])
            (List.init 8 Fun.id))
        (List.init 8 Fun.id)
    in
    let run () =
      let contract = Icp.Contractor.contractor ~max_rounds:20 cs in
      List.fold_left
        (fun acc b -> if Option.is_none (contract b) then acc + 1 else acc)
        0 grid
    in
    let pruned_tree = with_tapes false run in
    let pruned_tape = with_tapes true run in
    assert (pruned_tree = pruned_tape);
    let tree, tape = measure_pair ~reps:12 run in
    ("hc4-fixpoint", tree, tape, Fmt.str "%d/64 boxes pruned, both paths" pruned_tree)
  in
  (* Validated enclosure: Picard + Taylor steps on a 2-D oscillator. *)
  let enclosure_kernel () =
    let sys =
      Ode.System.of_strings ~vars:[ "x"; "y" ] ~params:[ "w" ]
        ~rhs:[ ("x", "w*y"); ("y", "-w*x") ]
    in
    let params = Box.of_list [ ("w", I.make 1.9 2.1) ] in
    let init =
      Box.of_list [ ("x", I.make 0.99 1.01); ("y", I.of_float 0.0) ]
    in
    let run () =
      (Ode.Enclosure.flow ~params ~init ~t_end:0.5 sys).Ode.Enclosure.final
    in
    let f_tree = with_tapes false run in
    let f_tape = with_tapes true run in
    assert (Box.equal f_tree f_tape);
    let tree, tape = measure_pair ~reps:40 run in
    ("picard-taylor-flow", tree, tape, "identical final boxes")
  in
  (* SMC sampling hot loop: the compiled vector field driving RK4
     trajectories of the p53 module (what every SMC sample executes). *)
  let smc_kernel () =
    let sys = Biomodels.Classics.p53_mdm2 in
    let run () =
      Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.05)
        ~params:[ ("damage", 1.0) ]
        ~init:[ ("p53", 0.05); ("mdm2", 0.05) ]
        ~t_end:30.0 sys
    in
    let tree, tape = measure_pair ~reps:8 run in
    ("smc-trajectory-batch", tree, tape, "RK4 p53 trajectory")
  in
  let results = [ hc4_kernel (); enclosure_kernel (); smc_kernel () ] in
  let fmt_ns ns =
    if ns > 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
    else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
    else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
    else Fmt.str "%.0f ns" ns
  in
  Report.print
    [ Report.table
        ~header:[ "kernel"; "tree ns/op"; "tape ns/op"; "speedup"; "check" ]
        (List.map
           (fun (name, tree, tape, note) ->
             [ name; fmt_ns tree; fmt_ns tape;
               Fmt.str "%.2fx" (tree /. tape); note ])
           results) ];
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"jobs\": 1,\n  \"kernels\": [\n";
  List.iteri
    (fun i (name, tree, tape, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"tree_ns_per_op\": %.0f, \"tape_ns_per_op\": %.0f, \"speedup\": %.3f}%s\n"
           name tree tape (tree /. tape)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_tape.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_tape.json" ]

(* ------------------------------------------------------------------ *)
(* C1: subsumption caches off vs on (jobs = 1)                         *)
(* ------------------------------------------------------------------ *)

(* Each kernel runs the same workload twice: once with every cache
   disabled ([Cache.Off] — exactly the BIOMC_NO_CACHE=1 code path) and
   once with the default exact-hit policy, clearing all caches before
   each timed run so both start cold.  The results are checked to be
   byte-identical (exact replays are identity-preserving), so the
   speedup column is pure memoization gain.  Results land in
   BENCH_cache.json, together with the SMC allocation before/after row
   (satellite: the in-place RKF45 loop vs the old allocating steppers).

   Passed [~quick:true] (the CI smoke job), the workloads shrink. *)

let c1 ?(quick = false) () =
  section
    (if quick then "C1  Subsumption caches off vs on (jobs = 1, quick)"
     else "C1  Subsumption caches off vs on (jobs = 1)");
  (* Each policy is timed over a few rounds, caches cleared before each
     so every round starts cold, keeping the per-round minimum (the
     container clock is noisy; see T1). *)
  let measure name ~canon ~note run =
    let rounds = if quick then 2 else 3 in
    let time_policy p =
      Cache.set_policy p;
      Fun.protect ~finally:Cache.clear_policy_override (fun () ->
          let best = ref infinity and result = ref None in
          for _ = 1 to rounds do
            Cache.clear ();
            let r, dt = timed run in
            if dt < !best then best := dt;
            result := Some r
          done;
          (Option.get !result, !best))
    in
    let r_off, t_off = time_policy Cache.Off in
    let r_on, t_on = time_policy Cache.Exact in
    if canon r_off <> canon r_on then
      failwith
        (Printf.sprintf "C1 %s: cached result differs from the uncached run"
           name);
    (name, t_off, t_on, note)
  in
  let canon_boxes boxes =
    String.concat ";" (List.sort compare (List.map Box.to_string boxes))
  in
  (* Primary kernel: the E7 calibration refinement sweep.  Each finer
     epsilon re-pavess the parameter box; the paving tree at epsilon is a
     depth-pruned prefix of the tree at epsilon/2, so with caching every
     previously classified box is an exact hit and only the new frontier
     pays for validated tubes. *)
  let biopsy_kernel () =
    let sys =
      Ode.System.of_strings ~vars:[ "x"; "y" ] ~params:[ "a" ]
        ~rhs:[ ("x", "a*x - x*y"); ("y", "x*y - y") ]
    in
    let tr =
      Ode.Integrate.simulate ~params:[ ("a", 1.0) ]
        ~init:[ ("x", 1.0); ("y", 0.5) ]
        ~t_end:1.5 sys
    in
    let data =
      List.concat_map
        (fun t ->
          List.map
            (fun v ->
              Synth.Data.point ~time:t ~var:v
                ~value:(Ode.Integrate.value_at tr v t)
                ~tolerance:0.25)
            [ "x"; "y" ])
        [ 0.5; 1.0; 1.5 ]
    in
    let prob =
      Synth.Biopsy.problem ~sys
        ~param_box:(Box.of_list [ ("a", I.make 0.5 1.5) ])
        ~init:(Box.of_list [ ("x", I.of_float 1.0); ("y", I.of_float 0.5) ])
        ~data
    in
    let epsilons = if quick then [ 0.1; 0.05; 0.02 ] else [ 0.1; 0.05; 0.02; 0.01 ] in
    let run () =
      List.map
        (fun eps ->
          Synth.Biopsy.synthesize
            ~config:{ Synth.Biopsy.default_config with epsilon = eps }
            prob)
        epsilons
    in
    let canon rs =
      String.concat "\n"
        (List.map
           (fun (r : Synth.Biopsy.result) ->
             Printf.sprintf "%s|%s|%s|%d"
               (canon_boxes r.Synth.Biopsy.consistent)
               (canon_boxes r.Synth.Biopsy.inconsistent)
               (canon_boxes r.Synth.Biopsy.undecided)
               r.Synth.Biopsy.boxes_explored)
           rs)
    in
    measure "biopsy-refinement-sweep" ~canon
      ~note:
        (Fmt.str "eps %s, identical pavings"
           (String.concat ">" (List.map (Fmt.str "%g") epsilons)))
      run
  in
  (* Reach re-verification: the same bounded-reachability query checked
     twice (tool-restart replay) and then a second goal over the same
     automaton — flow-tube segments are goal-independent, so both later
     checks hit the segment cache. *)
  let reach_kernel () =
    let a =
      Hybrid.Automaton.of_system
        ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
        (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ])
    in
    let pb pred =
      E.create
        ~param_box:(Box.of_list [ ("k", I.make 0.1 3.0) ])
        ~goal:{ E.goal_modes = []; predicate = Expr.Parse.formula pred }
        ~k:0 ~time_bound:1.0 a
    in
    let run () =
      let r1 = C.check (pb "x <= 0.3") in
      let r2 = C.check (pb "x <= 0.3") in
      let r3 = C.check (pb "x <= 0.5") in
      Fmt.str "%a / %a / %a" C.pp_result r1 C.pp_result r2 C.pp_result r3
    in
    measure "reach-shared-segments" ~canon:Fun.id
      ~note:"goal1, goal1 again, goal2; identical verdicts" run
  in
  (* Solver verdict stores: repeated delta-decision and repeated paving
     of the same instance — refuted boxes and unsat paving leaves are
     replayed from the store on the second pass. *)
  let solver_kernel () =
    (* Enzyme-kinetics equilibrium (the hc4-fixpoint shape of T1): four
       coupled constraints make each HC4 fixpoint iterate, so a replayed
       refutation saves real contraction work. *)
    let enzyme =
      Expr.Parse.formula
        "e + cx = 1 and s + cx + p = 2 and 2*s*e = cx and cx / (s + 1/2) = p"
    in
    let tbox =
      Box.of_list
        [ ("s", I.make 0.0 2.0); ("p", I.make 0.0 2.0);
          ("e", I.make 0.0 1.0); ("cx", I.make 0.0 1.0) ]
    in
    let ring = Expr.Parse.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
    let rbox =
      Box.of_list [ ("x", I.make (-1.5) 1.5); ("y", I.make (-1.5) 1.5) ]
    in
    let dcfg =
      { Icp.Solver.default_config with
        delta = (if quick then 1e-3 else 1e-4);
        epsilon = (if quick then 1e-4 else 1e-5) }
    in
    let pcfg =
      { Icp.Solver.default_config with epsilon = (if quick then 0.1 else 0.05) }
    in
    let verdict = function
      | Icp.Solver.Delta_sat w -> "delta-sat " ^ Box.to_string w.Icp.Solver.box
      | Icp.Solver.Unsat -> "unsat"
      | Icp.Solver.Unknown _ -> "unknown"
    in
    let pav (p : Icp.Solver.paving) =
      Printf.sprintf "%s|%s|%s"
        (canon_boxes p.Icp.Solver.sat)
        (canon_boxes p.Icp.Solver.unsat)
        (canon_boxes p.Icp.Solver.undecided)
    in
    let decide_row =
      measure "decide-repeat" ~canon:Fun.id
        ~note:"enzyme equilibrium x2; identical verdicts"
        (fun () ->
          let d1 = Icp.Solver.decide ~config:dcfg enzyme tbox in
          let d2 = Icp.Solver.decide ~config:dcfg enzyme tbox in
          verdict d1 ^ "\n" ^ verdict d2)
    in
    (* The pave row is the store's worst case on purpose: ring
       contraction is sub-microsecond per box, so the replay saves about
       what the cold inserts cost — near break-even, reported as-is. *)
    let pave_row =
      measure "pave-repeat" ~canon:Fun.id
        ~note:"ring x2; identical pavings"
        (fun () ->
          let p1 = Icp.Solver.pave ~config:pcfg ring rbox in
          let p2 = Icp.Solver.pave ~config:pcfg ring rbox in
          pav p1 ^ "\n" ^ pav p2)
    in
    [ decide_row; pave_row ]
  in
  let kernels = [ biopsy_kernel (); reach_kernel () ] @ solver_kernel () in
  Report.print
    [ Report.table
        ~header:[ "kernel"; "cache off"; "cache on"; "speedup"; "check" ]
        (List.map
           (fun (name, t_off, t_on, note) ->
             [ name; Fmt.str "%.3fs" t_off; Fmt.str "%.3fs" t_on;
               Fmt.str "%.2fx" (t_off /. t_on); note ])
           kernels);
      Report.text "cache-on rounds under the default exact policy: %s"
        (Cache.summary ()) ];
  (* SMC allocation satellite: the pre-optimization RKF45 driver (the
     public allocating [rkf45_step] per step, fresh arrays throughout)
     against the in-place [simulate] loop, on the same p53 trajectory
     every SMC sample executes.  The arithmetic is unchanged, so the
     traces must agree bit for bit. *)
  let smc_alloc =
    let sys = Biomodels.Classics.p53_mdm2 in
    let params = [ ("damage", 1.0) ] in
    let init = [ ("p53", 0.05); ("mdm2", 0.05) ] in
    let t_end = 30.0 in
    let rtol, atol, h0, h_max =
      match Ode.Integrate.default_rkf45 with
      | Ode.Integrate.Rkf45 { rtol; atol; h0; h_max } -> (rtol, atol, h0, h_max)
      | _ -> assert false
    in
    let before () =
      let f = Ode.System.compile ~param_env:params sys in
      let y0 =
        Array.of_list
          (List.map (fun v -> List.assoc v init) (Ode.System.vars sys))
      in
      let n = Array.length y0 in
      let times = ref [ 0.0 ] and states = ref [ y0 ] in
      let t = ref 0.0 and y = ref y0 and h = ref h0 in
      let continue_ = ref true in
      let safety = 0.9 and h_min = 1e-12 in
      let accept tacc ynew =
        t := tacc;
        y := ynew;
        times := tacc :: !times;
        states := ynew :: !states
      in
      while !continue_ && !t < t_end -. 1e-15 do
        let hstep = Float.min !h (t_end -. !t) in
        let yc = !y in
        let y4, y5 = Ode.Integrate.rkf45_step f !t yc hstep in
        let err = ref 0.0 in
        for i = 0 to n - 1 do
          let sc =
            atol +. (rtol *. Float.max (Float.abs yc.(i)) (Float.abs y4.(i)))
          in
          let e = Float.abs (y5.(i) -. y4.(i)) /. sc in
          if e > !err then err := e
        done;
        if Float.is_nan !err then begin
          if hstep <= h_min *. 2.0 then continue_ := false
          else h := hstep /. 10.0
        end
        else if !err <= 1.0 then begin
          accept (!t +. hstep) y5;
          let grow = safety *. Float.pow (1.0 /. Float.max !err 1e-10) 0.2 in
          h := Float.min h_max (hstep *. Float.min 4.0 grow)
        end
        else begin
          let shrink = safety *. Float.pow (1.0 /. !err) 0.25 in
          h := Float.max (h_min *. 2.0) (hstep *. Float.max 0.1 shrink);
          if !h <= h_min *. 4.0 then accept (!t +. hstep) y4
        end
      done;
      (Array.of_list (List.rev !times), Array.of_list (List.rev !states))
    in
    let after () =
      let tr = Ode.Integrate.simulate ~params ~init ~t_end sys in
      (tr.Ode.Integrate.times, tr.Ode.Integrate.states)
    in
    let tb, sb = before () and ta, sa = after () in
    if not (tb = ta && sb = sa) then
      failwith "C1 smc-alloc: in-place trace differs from the allocating one";
    let reps = if quick then 3 else 8 in
    let rounds = if quick then 2 else 4 in
    let best f =
      let best = ref infinity in
      for _ = 1 to rounds do
        let _, dt = timed (fun () -> for _ = 1 to reps do ignore (f ()) done) in
        let ns = dt /. float_of_int reps *. 1e9 in
        if ns < !best then best := ns
      done;
      !best
    in
    let ns_before = best before and ns_after = best after in
    Report.print
      [ Report.table
          ~header:[ "smc float path"; "ns/trajectory"; "speedup"; "check" ]
          [ [ "allocating steppers (before)"; Fmt.str "%.0f" ns_before; "1.00x";
              "bit-identical traces" ];
            [ "in-place loop (after)"; Fmt.str "%.0f" ns_after;
              Fmt.str "%.2fx" (ns_before /. ns_after); "" ] ] ];
    (ns_before, ns_after)
  in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"jobs\": 1,\n  \"policy_on\": \"exact\",\n  \"quick\": %b,\n  \"kernels\": [\n"
       quick);
  List.iteri
    (fun i (name, t_off, t_on, _) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"cache_off_s\": %.6f, \"cache_on_s\": %.6f, \"speedup\": %.3f, \"identical\": true}%s\n"
           name t_off t_on (t_off /. t_on)
           (if i = List.length kernels - 1 then "" else ",")))
    kernels;
  let ns_before, ns_after = smc_alloc in
  Buffer.add_string buf
    (Printf.sprintf
       "  ],\n  \"smc_alloc\": {\"before_ns_per_trajectory\": %.0f, \"after_ns_per_trajectory\": %.0f, \"speedup\": %.3f, \"identical\": true}\n}\n"
       ns_before ns_after (ns_before /. ns_after));
  let oc = open_out "BENCH_cache.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_cache.json" ]

(* ------------------------------------------------------------------ *)
(* O1: telemetry overhead guard                                        *)
(* ------------------------------------------------------------------ *)

(* Honesty guard for the telemetry subsystem: the same workload runs
   with telemetry fully disabled, with metrics only (counters +
   histograms, no trace), and with tracing on.  The results must be
   identical — instrumentation observes the search, it never steers it —
   and the overhead ratios land in BENCH_telemetry.json with an explicit
   over_budget flag when metrics-only costs more than 5% over disabled
   (recorded as measured, not hidden).  The metrics run's span
   histograms are attached as the per-span breakdown section. *)

let o1 ?(quick = false) () =
  section
    (if quick then "O1  Telemetry overhead: off vs metrics vs trace (quick)"
     else "O1  Telemetry overhead: off vs metrics vs trace");
  let tangency = Expr.Parse.formula "x^2 + y^2 = 1 and x*y = 1/2" in
  let tangency_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  let ring = Expr.Parse.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
  let rbox = Box.of_list [ ("x", I.make (-1.5) 1.5); ("y", I.make (-1.5) 1.5) ] in
  (* The workload must dwarf clock noise for the overhead ratio to mean
     anything, so even quick mode keeps delta small enough for a few
     tens of ms per run. *)
  let dcfg =
    { Icp.Solver.default_config with
      delta = (if quick then 3e-4 else 1e-4);
      epsilon = (if quick then 3e-5 else 1e-5) }
  in
  let pcfg =
    { Icp.Solver.default_config with epsilon = (if quick then 0.02 else 0.01) }
  in
  let run () =
    let d = Icp.Solver.decide ~config:dcfg tangency tangency_box in
    let p = Icp.Solver.pave ~config:pcfg ring rbox in
    (d, p)
  in
  let rounds = if quick then 4 else 6 in
  (* Caches off so every round repeats the full search; per-mode minimum
     over the rounds filters the container's clock spikes (see T1). *)
  Cache.set_policy Cache.Off;
  Fun.protect ~finally:Cache.clear_policy_override @@ fun () ->
  let measure setup =
    Telemetry.reset ();
    setup ();
    Fun.protect ~finally:Telemetry.disable (fun () ->
        let best = ref infinity and result = ref None in
        for _ = 1 to rounds do
          let r, dt = timed run in
          if dt < !best then best := dt;
          result := Some r
        done;
        (Option.get !result, !best))
  in
  let r_off, t_off = measure (fun () -> ()) in
  let r_met, t_met = measure (fun () -> Telemetry.set_metrics true) in
  let breakdown = Telemetry.Metrics.histograms () in
  let r_trc, t_trc =
    measure (fun () ->
        Telemetry.set_metrics true;
        Telemetry.set_trace true)
  in
  let trace_events = Telemetry.Trace.events_recorded () in
  let trace_dropped = Telemetry.Trace.events_dropped () in
  if not (r_off = r_met && r_off = r_trc) then
    failwith "O1: telemetry-enabled run changed the results";
  let metrics_overhead = t_met /. t_off and trace_overhead = t_trc /. t_off in
  let budget = 1.05 in
  let over_budget = metrics_overhead > budget in
  Report.print
    [ Report.table
        ~header:[ "mode"; "wall"; "vs disabled"; "check" ]
        [ [ "disabled"; Fmt.str "%.3fs" t_off; "1.00x"; "identical results" ];
          [ "metrics"; Fmt.str "%.3fs" t_met;
            Fmt.str "%.2fx" metrics_overhead; "identical results" ];
          [ "metrics + trace"; Fmt.str "%.3fs" t_trc;
            Fmt.str "%.2fx" trace_overhead;
            Fmt.str "%d events (%d dropped)" trace_events trace_dropped ] ];
      (if over_budget then
         Report.text
           "OVER BUDGET: metrics-only overhead %.1f%% exceeds the 5%% budget"
           ((metrics_overhead -. 1.0) *. 100.0)
       else
         Report.text "metrics-only overhead %.1f%% (budget 5%%)"
           ((metrics_overhead -. 1.0) *. 100.0)) ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"quick\": %b,\n\
       \  \"rounds\": %d,\n\
       \  \"disabled_s\": %.6f,\n\
       \  \"metrics_s\": %.6f,\n\
       \  \"trace_s\": %.6f,\n\
       \  \"metrics_overhead\": %.4f,\n\
       \  \"trace_overhead\": %.4f,\n\
       \  \"budget\": %.2f,\n\
       \  \"over_budget\": %b,\n\
       \  \"identical\": true,\n\
       \  \"trace_events\": %d,\n\
       \  \"trace_dropped\": %d,\n\
       \  \"breakdown\": [\n"
       quick rounds t_off t_met t_trc metrics_overhead trace_overhead budget
       over_budget trace_events trace_dropped);
  List.iteri
    (fun i (name, s) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"span\": %S, \"count\": %d, \"mean_ns\": %.0f, \"p50_ns\": %d, \"p90_ns\": %d}%s\n"
           name s.Telemetry.Histogram.count
           (Telemetry.Histogram.mean s)
           (Telemetry.Histogram.quantile 0.5 s)
           (Telemetry.Histogram.quantile 0.9 s)
           (if i = List.length breakdown - 1 then "" else ",")))
    breakdown;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_telemetry.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Telemetry.reset ();
  Report.print [ Report.text "wrote BENCH_telemetry.json" ]

(* ------------------------------------------------------------------ *)
(* J1: provenance-journal overhead: off vs memory sink                 *)
(* ------------------------------------------------------------------ *)

(* The O1 discipline applied to the journal: the same decide + pave
   workload with journaling off and with the memory sink recording the
   full search DAG.  Verdicts must be identical (the journal observes
   the search, it never steers it) and the slowdown is reported
   honestly against the same 5% budget, alongside the record volume —
   the journal writes one NDJSON line per search event, so its cost
   scales with boxes processed, not with wall-clock. *)
let j1 ?(quick = false) () =
  section
    (if quick then "J1  Journal overhead: off vs memory sink (quick)"
     else "J1  Journal overhead: off vs memory sink");
  let tangency = Expr.Parse.formula "x^2 + y^2 = 1 and x*y = 1/2" in
  let tangency_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  let ring = Expr.Parse.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
  let rbox = Box.of_list [ ("x", I.make (-1.5) 1.5); ("y", I.make (-1.5) 1.5) ] in
  let dcfg =
    { Icp.Solver.default_config with
      delta = (if quick then 3e-4 else 1e-4);
      epsilon = (if quick then 3e-5 else 1e-5) }
  in
  let pcfg =
    { Icp.Solver.default_config with epsilon = (if quick then 0.02 else 0.01) }
  in
  let run () =
    let d = Icp.Solver.decide ~config:dcfg tangency tangency_box in
    let p = Icp.Solver.pave ~config:pcfg ring rbox in
    (d, p)
  in
  let rounds = if quick then 4 else 6 in
  Cache.set_policy Cache.Off;
  Fun.protect ~finally:Cache.clear_policy_override @@ fun () ->
  let measure sink =
    Journal.set_sink sink;
    Fun.protect ~finally:(fun () -> Journal.set_sink Journal.Off)
      (fun () ->
        let best = ref infinity and result = ref None in
        for _ = 1 to rounds do
          Journal.reset ();
          let r, dt = timed run in
          if dt < !best then best := dt;
          result := Some r
        done;
        (Option.get !result, !best))
  in
  let r_off, t_off = measure Journal.Off in
  let r_jrn, t_jrn = measure Journal.Memory in
  (* volume of one journaled round: re-record once, then read back *)
  Journal.set_sink Journal.Memory;
  Journal.reset ();
  ignore (run ());
  let doc = Journal.contents () in
  let dropped = Journal.dropped () in
  Journal.set_sink Journal.Off;
  Journal.reset ();
  let records =
    String.fold_left (fun n c -> if c = '\n' then n + 1 else n) 0 doc
  in
  if r_off <> r_jrn then failwith "J1: journaled run changed the results";
  let overhead = t_jrn /. t_off in
  let budget = 1.05 in
  let over_budget = overhead > budget in
  Report.print
    [ Report.table
        ~header:[ "mode"; "wall"; "vs disabled"; "check" ]
        [ [ "disabled"; Fmt.str "%.3fs" t_off; "1.00x"; "identical results" ];
          [ "memory sink"; Fmt.str "%.3fs" t_jrn; Fmt.str "%.2fx" overhead;
            Fmt.str "%d records, %d KiB (%d dropped)" records
              (String.length doc / 1024)
              dropped ] ];
      (if over_budget then
         Report.text
           "OVER BUDGET: journal overhead %.1f%% exceeds the 5%% budget"
           ((overhead -. 1.0) *. 100.0)
       else
         Report.text "journal overhead %.1f%% (budget 5%%)"
           ((overhead -. 1.0) *. 100.0)) ];
  let oc = open_out "BENCH_journal.json" in
  output_string oc
    (Printf.sprintf
       "{\n\
       \  \"quick\": %b,\n\
       \  \"rounds\": %d,\n\
       \  \"disabled_s\": %.6f,\n\
       \  \"journal_s\": %.6f,\n\
       \  \"overhead\": %.4f,\n\
       \  \"budget\": %.2f,\n\
       \  \"over_budget\": %b,\n\
       \  \"identical\": true,\n\
       \  \"records\": %d,\n\
       \  \"bytes\": %d,\n\
       \  \"dropped\": %d\n\
        }\n"
       quick rounds t_off t_jrn overhead budget over_budget records
       (String.length doc) dropped);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_journal.json" ]

(* ------------------------------------------------------------------ *)
(* N1: derivative pruning off vs on                                    *)
(* ------------------------------------------------------------------ *)

(* The derivative layer (Icp.Deriv: mean-value refutation, interval
   Newton contraction, smear branching) against the plain HC4 search on
   dependency-rich workloads — terms where variables occur repeatedly,
   so the natural interval extension is loose and the first-order
   expansions have something to win.  Both runs of every workload must
   agree (decide: same verdict kind, checked here; pave: a sat leaf of
   one run overlapping an unsat leaf of the other would be two
   contradictory proofs — also checked here), so the reported reduction
   in boxes processed is bought without changing any answer.  Caches
   are off: each run does its own full search. *)

let n1 ?(quick = false) () =
  section
    (if quick then "N1  Derivative pruning off vs on (quick)"
     else "N1  Derivative pruning: mean-value/Newton + smear, off vs on");
  Cache.set_policy Cache.Off;
  Fun.protect ~finally:(fun () ->
      Cache.clear_policy_override ();
      Icp.Deriv.clear_enabled_override ())
  @@ fun () ->
  let verdict_of = function
    | Icp.Solver.Delta_sat _ -> "delta-sat"
    | Icp.Solver.Unsat -> "unsat"
    | Icp.Solver.Unknown _ -> "unknown"
  in
  let counts (s : Icp.Solver.stats) =
    (s.Icp.Solver.boxes_processed, s.Icp.Solver.splits, s.Icp.Solver.prunings)
  in
  (* Workload 1 (decide, multi-atom): x and y each satisfy the expanded
     cubic t^3 - 2t^2 + 1.25t = 0.25, whose real solutions are t = 1 and
     the double root t = 0.5; no pair of solutions is 0.4-separated in
     the square, so the conjunction is unsat.  The cubic mentions its
     variable three times — exactly the dependency that makes the
     natural extension loose and the mean-value form sharp. *)
  let cubic =
    Expr.Parse.formula
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3"
  in
  let cubic_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  (* Workload 2 (decide, multi-atom): two Michaelis–Menten channels
     sharing one rate law v(s) = 1.2 s / (0.4 + s); on the conservation
     line s1 + s2 = 1 the total rate peaks at 4/3 < 1.35, so the demand
     is unsat.  Each substrate occurs in both numerator and denominator
     of its rate — again a dependency HC4 cannot see through. *)
  let mm =
    Expr.Parse.formula
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1"
  in
  let mm_box =
    Box.of_list [ ("s1", I.make 0.0 1.0); ("s2", I.make 0.0 1.0) ]
  in
  (* Workload 3 (pave, biopsy-style parameter fit): admissible (k, a)
     for the impulse-response model y(t) = a k t e^{-kt} against two
     data bands (t = 1 and t = 3) — the algebraic form of a calibration
     paving.  k occurs twice per observation. *)
  let fit =
    Expr.Parse.formula
      "a*k*exp(-k) >= 0.3 and a*k*exp(-k) <= 0.5 and \
       3*a*k*exp(-3*k) >= 0.1 and 3*a*k*exp(-3*k) <= 0.3"
  in
  let fit_box =
    Box.of_list [ ("k", I.make 0.05 2.5); ("a", I.make 0.2 3.0) ]
  in
  let run_decide name formula box config =
    let run on =
      Icp.Deriv.set_enabled on;
      let (r, stats), dt =
        timed (fun () -> Icp.Solver.decide_with_stats ~config formula box)
      in
      (verdict_of r, counts stats, dt)
    in
    let v_off, c_off, t_off = run false in
    let v_on, c_on, t_on = run true in
    if v_off <> v_on then
      failwith
        (Printf.sprintf "N1 %s: verdicts differ (off=%s, on=%s)" name v_off
           v_on);
    (name, "decide", v_off, c_off, t_off, c_on, t_on)
  in
  let run_pave name formula box config =
    let run on =
      Icp.Deriv.set_enabled on;
      let (p, stats), dt =
        timed (fun () -> Icp.Solver.pave_with_stats ~config formula box)
      in
      (p, counts stats, dt)
    in
    let p_off, c_off, t_off = run false in
    let p_on, c_on, t_on = run true in
    (* Two pavings of the same box: sat and unsat leaves are proofs, so
       a positive-volume overlap between one run's sat region and the
       other's unsat region would be a soundness bug, not noise. *)
    let contradicts sats unsats =
      List.exists
        (fun s ->
          List.exists
            (fun u -> Box.volume (Box.inter s u) > 0.0)
            unsats)
        sats
    in
    if
      contradicts p_on.Icp.Solver.sat p_off.Icp.Solver.unsat
      || contradicts p_off.Icp.Solver.sat p_on.Icp.Solver.unsat
    then failwith (Printf.sprintf "N1 %s: pavings contradict" name);
    let feasible (p : Icp.Solver.paving) = p.sat <> [] in
    if feasible p_off <> feasible p_on then
      failwith (Printf.sprintf "N1 %s: feasibility verdicts differ" name);
    let v = if feasible p_off then "feasible" else "infeasible" in
    (name, "pave", v, c_off, t_off, c_on, t_on)
  in
  let dcfg =
    { Icp.Solver.default_config with
      delta = (if quick then 1e-3 else 1e-4);
      epsilon = (if quick then 1e-4 else 1e-5) }
  in
  let pcfg =
    { Icp.Solver.default_config with
      epsilon = (if quick then 0.02 else 0.01) }
  in
  let results =
    [ run_decide "decide-cubic-separation" cubic cubic_box dcfg;
      run_decide "decide-mm-kinetics" mm mm_box dcfg;
      run_pave "pave-impulse-fit" fit fit_box pcfg ]
  in
  let rows =
    List.map
      (fun (name, kind, v, (b0, _, _), t0, (b1, _, _), t1) ->
        [ name; kind; v; string_of_int b0; string_of_int b1;
          Fmt.str "%.2fx" (float_of_int b0 /. float_of_int b1);
          Fmt.str "%.3fs" t0; Fmt.str "%.3fs" t1 ])
      results
  in
  Report.print
    [ Report.table
        ~header:
          [ "workload"; "kind"; "verdict"; "boxes off"; "boxes on";
            "reduction"; "wall off"; "wall on" ]
        rows ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"quick\": %b,\n  \"workloads\": [\n" quick);
  List.iteri
    (fun i (name, kind, v, (b0, s0, p0), t0, (b1, s1, p1), t1) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"kind\": %S, \"verdict\": %S, \"identical\": true,\n\
           \     \"off\": {\"boxes_processed\": %d, \"splits\": %d, \"prunings\": %d, \"wall_s\": %.6f},\n\
           \     \"on\":  {\"boxes_processed\": %d, \"splits\": %d, \"prunings\": %d, \"wall_s\": %.6f},\n\
           \     \"box_reduction\": %.3f}%s\n"
           name kind v b0 s0 p0 t0 b1 s1 p1 t1
           (float_of_int b0 /. float_of_int b1)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_newton.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_newton.json" ]

(* ------------------------------------------------------------------ *)
(* AF1: affine arithmetic off vs on                                    *)
(* ------------------------------------------------------------------ *)

(* The affine-form layer (Interval.Affine: noise-symbol evaluation
   tightening the HC4 forward pass and the Picard/Taylor remainder
   boxes) against the plain interval search, on the same
   dependency-rich workloads as N1 — repeated variable occurrences are
   exactly where shared noise symbols cancel and the natural extension
   does not.  Verdict identity is asserted in-process for every decide
   and pave pair (a sat/unsat leaf overlap between the two pavings
   would be contradictory proofs); the box-count reduction is therefore
   bought without changing any answer.  The ODE workload records tube
   widths, not verdicts: the affine pass may only tighten the
   enclosure, so final-width ratio >= 1 is the check.  Caches are off
   (each run does its own full search); wall times are per-run minima
   over a few rounds (noisy container clock, see T1). *)

let af1 ?(quick = false) () =
  section
    (if quick then "AF1  Affine arithmetic off vs on (quick)"
     else "AF1  Affine arithmetic: noise-symbol forward pass, off vs on");
  Cache.set_policy Cache.Off;
  Fun.protect ~finally:(fun () ->
      Cache.clear_policy_override ();
      Interval.Affine.clear_enabled_override ())
  @@ fun () ->
  let rounds = if quick then 2 else 3 in
  let verdict_of = function
    | Icp.Solver.Delta_sat _ -> "delta-sat"
    | Icp.Solver.Unsat -> "unsat"
    | Icp.Solver.Unknown _ -> "unknown"
  in
  let counts (s : Icp.Solver.stats) =
    (s.Icp.Solver.boxes_processed, s.Icp.Solver.splits, s.Icp.Solver.prunings)
  in
  (* min-of-rounds wall; counts/verdicts are deterministic per flag. *)
  let best_of run =
    let best = ref infinity and result = ref None in
    for _ = 1 to rounds do
      let r, dt = timed run in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  (* The N1 workloads (see there for why each is dependency-rich), plus
     a logistic-band paving where every atom mentions its variable
     twice. *)
  let cubic =
    Expr.Parse.formula
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3"
  in
  let cubic_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  let mm =
    Expr.Parse.formula
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1"
  in
  let mm_box =
    Box.of_list [ ("s1", I.make 0.0 1.0); ("s2", I.make 0.0 1.0) ]
  in
  let fit =
    Expr.Parse.formula
      "a*k*exp(-k) >= 0.3 and a*k*exp(-k) <= 0.5 and \
       3*a*k*exp(-3*k) >= 0.1 and 3*a*k*exp(-3*k) <= 0.3"
  in
  let fit_box =
    Box.of_list [ ("k", I.make 0.05 2.5); ("a", I.make 0.2 3.0) ]
  in
  let cubic_band =
    Expr.Parse.formula
      "x^3 - 2*x^2 + 1.25*x >= 0.2 and x^3 - 2*x^2 + 1.25*x <= 0.3 and \
       y^3 - 2*y^2 + 1.25*y >= 0.2 and y^3 - 2*y^2 + 1.25*y <= 0.3"
  in
  let cubic_band_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  (* Unsat-carving paving: the MM demand is infeasible over the whole
     simplex (total rate peaks at 4/3 < 1.35), so the box count is pure
     refutation work — the paving shape the affine pass accelerates.
     (Band pavings above are split-to-epsilon along their boundary and
     sat-certified by interval evaluation, where the affine pass does
     not participate; their ~1x rows are kept as the honest contrast.) *)
  let mm_infeasible =
    Expr.Parse.formula
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) >= 1.35 and s1 + s2 <= 1"
  in
  let mm_infeasible_box =
    Box.of_list [ ("s1", I.make 0.0 1.0); ("s2", I.make 0.0 1.0) ]
  in
  let run_decide name formula box config =
    let run on =
      Interval.Affine.set_enabled on;
      best_of (fun () -> Icp.Solver.decide_with_stats ~config formula box)
    in
    let (r_off, s_off), t_off = run false in
    let (r_on, s_on), t_on = run true in
    if verdict_of r_off <> verdict_of r_on then
      failwith
        (Printf.sprintf "AF1 %s: verdicts differ (off=%s, on=%s)" name
           (verdict_of r_off) (verdict_of r_on));
    (name, "decide", verdict_of r_off, counts s_off, t_off, counts s_on, t_on)
  in
  let run_pave name formula box config =
    let run on =
      Interval.Affine.set_enabled on;
      best_of (fun () -> Icp.Solver.pave_with_stats ~config formula box)
    in
    let (p_off, s_off), t_off = run false in
    let (p_on, s_on), t_on = run true in
    let contradicts sats unsats =
      List.exists
        (fun s ->
          List.exists (fun u -> Box.volume (Box.inter s u) > 0.0) unsats)
        sats
    in
    if
      contradicts p_on.Icp.Solver.sat p_off.Icp.Solver.unsat
      || contradicts p_off.Icp.Solver.sat p_on.Icp.Solver.unsat
    then failwith (Printf.sprintf "AF1 %s: pavings contradict" name);
    let feasible (p : Icp.Solver.paving) = p.sat <> [] in
    if feasible p_off <> feasible p_on then
      failwith (Printf.sprintf "AF1 %s: feasibility verdicts differ" name);
    let v = if feasible p_off then "feasible" else "infeasible" in
    (name, "pave", v, counts s_off, t_off, counts s_on, t_on)
  in
  let dcfg =
    { Icp.Solver.default_config with
      delta = (if quick then 1e-3 else 1e-4);
      epsilon = (if quick then 1e-4 else 1e-5) }
  in
  let pcfg =
    { Icp.Solver.default_config with
      epsilon = (if quick then 0.02 else 0.01) }
  in
  let results =
    [ run_decide "decide-cubic-separation" cubic cubic_box dcfg;
      run_decide "decide-mm-kinetics" mm mm_box dcfg;
      run_pave "pave-impulse-fit" fit fit_box pcfg;
      run_pave "pave-cubic-band" cubic_band cubic_band_box pcfg;
      run_pave "pave-mm-infeasible" mm_infeasible mm_infeasible_box pcfg ]
  in
  (* ODE workload: validated flow of the logistic equation from an
     interval initial set.  x'(t) = x(1-x) mentions x twice, so the
     interval remainder boxes over-rotate where the affine pass cancels;
     the tube must only tighten (width ratio >= 1), step for step. *)
  let ode =
    let sys =
      Ode.System.of_strings ~vars:[ "x" ] ~params:[]
        ~rhs:[ ("x", "x*(1 - x)") ]
    in
    let init = Box.of_list [ ("x", I.make 0.2 0.35) ] in
    let t_end = if quick then 2.0 else 3.0 in
    let run on =
      Interval.Affine.set_enabled on;
      best_of (fun () ->
          Ode.Enclosure.flow ~params:Box.empty_map ~init ~t_end sys)
    in
    let tube_off, t_off = run false in
    let tube_on, t_on = run true in
    let w_off = Box.width tube_off.Ode.Enclosure.final
    and w_on = Box.width tube_on.Ode.Enclosure.final in
    let hull_off = Box.width (Ode.Enclosure.tube_hull tube_off)
    and hull_on = Box.width (Ode.Enclosure.tube_hull tube_on) in
    if tube_off.Ode.Enclosure.complete && not tube_on.Ode.Enclosure.complete
    then failwith "AF1 ode-logistic-flow: affine run lost completeness";
    ( "ode-logistic-flow", t_end,
      List.length tube_off.Ode.Enclosure.steps, w_off, hull_off, t_off,
      List.length tube_on.Ode.Enclosure.steps, w_on, hull_on, t_on )
  in
  let rows =
    List.map
      (fun (name, kind, v, (b0, _, _), t0, (b1, _, _), t1) ->
        [ name; kind; v; string_of_int b0; string_of_int b1;
          Fmt.str "%.2fx" (float_of_int b0 /. float_of_int b1);
          Fmt.str "%.3fs" t0; Fmt.str "%.3fs" t1 ])
      results
  in
  let ( ode_name, ode_tend, steps0, w0, h0, ot0, steps1, w1, h1, ot1 ) = ode in
  Report.print
    [ Report.table
        ~header:
          [ "workload"; "kind"; "verdict"; "boxes off"; "boxes on";
            "reduction"; "wall off"; "wall on" ]
        rows;
      Report.text "%s (t_end = %g): final width %.3g -> %.3g (%s), %d -> %d steps"
        ode_name ode_tend w0 w1
        (if Float.is_finite (w0 /. w1) then Fmt.str "%.2fx" (w0 /. w1)
         else "interval tube diverged, affine bounded")
        steps0 steps1 ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"quick\": %b,\n  \"workloads\": [\n" quick);
  List.iter
    (fun (name, kind, v, (b0, s0, p0), t0, (b1, s1, p1), t1) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"kind\": %S, \"verdict\": %S, \"identical\": true,\n\
           \     \"off\": {\"boxes_processed\": %d, \"splits\": %d, \"prunings\": %d, \"wall_s\": %.6f},\n\
           \     \"on\":  {\"boxes_processed\": %d, \"splits\": %d, \"prunings\": %d, \"wall_s\": %.6f},\n\
           \     \"box_reduction\": %.3f},\n"
           name kind v b0 s0 p0 t0 b1 s1 p1 t1
           (float_of_int b0 /. float_of_int b1)))
    results;
  (* A diverged interval tube has infinite widths — valid result, not
     valid JSON; null marks it (the ratio is then null too). *)
  let jf v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"name\": %S, \"kind\": \"flow\", \"t_end\": %g,\n\
       \     \"off\": {\"steps\": %d, \"final_width\": %s, \"hull_width\": %s, \"wall_s\": %.6f},\n\
       \     \"on\":  {\"steps\": %d, \"final_width\": %s, \"hull_width\": %s, \"wall_s\": %.6f},\n\
       \     \"final_width_ratio\": %s, \"hull_width_ratio\": %s}\n"
       ode_name ode_tend steps0 (jf w0) (jf h0) ot0 steps1 (jf w1) (jf h1)
       ot1
       (jf (w0 /. w1)) (jf (h0 /. h1)));
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_affine.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_affine.json" ]

(* ------------------------------------------------------------------ *)
(* TM1: Taylor models off vs on (over the affine baseline)             *)
(* ------------------------------------------------------------------ *)

(* The degree-2 Taylor-model layer (Interval.Tm: quadratic monomials
   kept exactly, Bernstein range bound, enclosure-assisted
   sat-certification in pave) against the affine-era search: both arms
   run with the affine layer at its default (on), so the ratios isolate
   what the second-order terms buy on top of AF1.  The target is
   precisely AF1's honest ~1.00x rows: band pavings are split-to-ε
   along their boundary and sat-certified by interval evaluation, a
   path the affine pass never touched — the TM certifier proves those
   band leaves sat whole boxes earlier.  Verdict identity is asserted
   in-process for every decide pair; pavings are checked for sat/unsat
   leaf contradictions and TM-certified leaves for center feasibility
   (sat sets may legitimately grow: certifying earlier is the point).
   Box reductions are recorded honestly, regressions included.  Caches
   off; wall times are per-run minima over a few rounds (see T1). *)

let tm1 ?(quick = false) () =
  section
    (if quick then "TM1  Taylor models off vs on (quick)"
     else "TM1  Taylor models: quadratic enclosures and band certification, off vs on");
  Cache.set_policy Cache.Off;
  Fun.protect ~finally:(fun () ->
      Cache.clear_policy_override ();
      Interval.Tm.clear_enabled_override ())
  @@ fun () ->
  let rounds = if quick then 2 else 3 in
  let verdict_of = function
    | Icp.Solver.Delta_sat _ -> "delta-sat"
    | Icp.Solver.Unsat -> "unsat"
    | Icp.Solver.Unknown _ -> "unknown"
  in
  let counts (s : Icp.Solver.stats) =
    (s.Icp.Solver.boxes_processed, s.Icp.Solver.splits, s.Icp.Solver.prunings)
  in
  let best_of run =
    let best = ref infinity and result = ref None in
    for _ = 1 to rounds do
      let r, dt = timed run in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  (* The AF1 workloads, so the two JSON dumps line up row for row. *)
  let cubic =
    Expr.Parse.formula
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3"
  in
  let cubic_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  let mm =
    Expr.Parse.formula
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1"
  in
  let mm_box =
    Box.of_list [ ("s1", I.make 0.0 1.0); ("s2", I.make 0.0 1.0) ]
  in
  let fit =
    Expr.Parse.formula
      "a*k*exp(-k) >= 0.3 and a*k*exp(-k) <= 0.5 and \
       3*a*k*exp(-3*k) >= 0.1 and 3*a*k*exp(-3*k) <= 0.3"
  in
  let fit_box =
    Box.of_list [ ("k", I.make 0.05 2.5); ("a", I.make 0.2 3.0) ]
  in
  let cubic_band =
    Expr.Parse.formula
      "x^3 - 2*x^2 + 1.25*x >= 0.2 and x^3 - 2*x^2 + 1.25*x <= 0.3 and \
       y^3 - 2*y^2 + 1.25*y >= 0.2 and y^3 - 2*y^2 + 1.25*y <= 0.3"
  in
  let cubic_band_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  let mm_infeasible =
    Expr.Parse.formula
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) >= 1.35 and s1 + s2 <= 1"
  in
  let mm_infeasible_box =
    Box.of_list [ ("s1", I.make 0.0 1.0); ("s2", I.make 0.0 1.0) ]
  in
  let run_decide name formula box config =
    let run on =
      Interval.Tm.set_enabled on;
      best_of (fun () -> Icp.Solver.decide_with_stats ~config formula box)
    in
    let (r_off, s_off), t_off = run false in
    let (r_on, s_on), t_on = run true in
    if verdict_of r_off <> verdict_of r_on then
      failwith
        (Printf.sprintf "TM1 %s: verdicts differ (off=%s, on=%s)" name
           (verdict_of r_off) (verdict_of r_on));
    (name, "decide", verdict_of r_off, counts s_off, t_off, counts s_on, t_on)
  in
  let run_pave name formula box config =
    let run on =
      Interval.Tm.set_enabled on;
      best_of (fun () -> Icp.Solver.pave_with_stats ~config formula box)
    in
    let (p_off, s_off), t_off = run false in
    let (p_on, s_on), t_on = run true in
    let contradicts sats unsats =
      List.exists
        (fun s ->
          List.exists (fun u -> Box.volume (Box.inter s u) > 0.0) unsats)
        sats
    in
    if
      contradicts p_on.Icp.Solver.sat p_off.Icp.Solver.unsat
      || contradicts p_off.Icp.Solver.sat p_on.Icp.Solver.unsat
    then failwith (Printf.sprintf "TM1 %s: pavings contradict" name);
    (* TM-certified sat leaves are new proofs, not reclassifications:
       each must hold at its center point. *)
    List.iter
      (fun leaf ->
        match Expr.Formula.eval_cert (Box.midpoint leaf) formula with
        | Expr.Formula.Impossible ->
            failwith
              (Printf.sprintf "TM1 %s: certified leaf with infeasible center"
                 name)
        | _ -> ())
      p_on.Icp.Solver.sat;
    let v = if p_on.Icp.Solver.sat <> [] then "feasible" else "infeasible" in
    (name, "pave", v, counts s_off, t_off, counts s_on, t_on)
  in
  let dcfg =
    { Icp.Solver.default_config with
      delta = (if quick then 1e-3 else 1e-4);
      epsilon = (if quick then 1e-4 else 1e-5) }
  in
  let pcfg =
    { Icp.Solver.default_config with
      epsilon = (if quick then 0.02 else 0.01) }
  in
  let results =
    [ run_decide "decide-cubic-separation" cubic cubic_box dcfg;
      run_decide "decide-mm-kinetics" mm mm_box dcfg;
      run_pave "pave-impulse-fit" fit fit_box pcfg;
      run_pave "pave-cubic-band" cubic_band cubic_band_box pcfg;
      run_pave "pave-mm-infeasible" mm_infeasible mm_infeasible_box pcfg ]
  in
  (* ODE workload as in AF1: the TM pass may only tighten the logistic
     tube (width ratio >= 1), step for step. *)
  let ode =
    let sys =
      Ode.System.of_strings ~vars:[ "x" ] ~params:[]
        ~rhs:[ ("x", "x*(1 - x)") ]
    in
    let init = Box.of_list [ ("x", I.make 0.2 0.35) ] in
    let t_end = if quick then 2.0 else 3.0 in
    let run on =
      Interval.Tm.set_enabled on;
      best_of (fun () ->
          Ode.Enclosure.flow ~params:Box.empty_map ~init ~t_end sys)
    in
    let tube_off, t_off = run false in
    let tube_on, t_on = run true in
    let w_off = Box.width tube_off.Ode.Enclosure.final
    and w_on = Box.width tube_on.Ode.Enclosure.final in
    let hull_off = Box.width (Ode.Enclosure.tube_hull tube_off)
    and hull_on = Box.width (Ode.Enclosure.tube_hull tube_on) in
    if tube_off.Ode.Enclosure.complete && not tube_on.Ode.Enclosure.complete
    then failwith "TM1 ode-logistic-flow: TM run lost completeness";
    ( "ode-logistic-flow", t_end,
      List.length tube_off.Ode.Enclosure.steps, w_off, hull_off, t_off,
      List.length tube_on.Ode.Enclosure.steps, w_on, hull_on, t_on )
  in
  let rows =
    List.map
      (fun (name, kind, v, (b0, _, _), t0, (b1, _, _), t1) ->
        [ name; kind; v; string_of_int b0; string_of_int b1;
          Fmt.str "%.2fx" (float_of_int b0 /. float_of_int b1);
          Fmt.str "%.3fs" t0; Fmt.str "%.3fs" t1 ])
      results
  in
  let ( ode_name, ode_tend, steps0, w0, h0, ot0, steps1, w1, h1, ot1 ) = ode in
  Report.print
    [ Report.table
        ~header:
          [ "workload"; "kind"; "verdict"; "boxes off"; "boxes on";
            "reduction"; "wall off"; "wall on" ]
        rows;
      Report.text "%s (t_end = %g): final width %.3g -> %.3g (%s), %d -> %d steps"
        ode_name ode_tend w0 w1
        (if Float.is_finite (w0 /. w1) then Fmt.str "%.2fx" (w0 /. w1)
         else "interval tube diverged, TM bounded")
        steps0 steps1 ];
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf "{\n  \"quick\": %b,\n  \"workloads\": [\n" quick);
  List.iter
    (fun (name, kind, v, (b0, s0, p0), t0, (b1, s1, p1), t1) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"kind\": %S, \"verdict\": %S, \"identical\": true,\n\
           \     \"off\": {\"boxes_processed\": %d, \"splits\": %d, \"prunings\": %d, \"wall_s\": %.6f},\n\
           \     \"on\":  {\"boxes_processed\": %d, \"splits\": %d, \"prunings\": %d, \"wall_s\": %.6f},\n\
           \     \"box_reduction\": %.3f},\n"
           name kind v b0 s0 p0 t0 b1 s1 p1 t1
           (float_of_int b0 /. float_of_int b1)))
    results;
  let jf v = if Float.is_finite v then Printf.sprintf "%.6g" v else "null" in
  Buffer.add_string buf
    (Printf.sprintf
       "    {\"name\": %S, \"kind\": \"flow\", \"t_end\": %g,\n\
       \     \"off\": {\"steps\": %d, \"final_width\": %s, \"hull_width\": %s, \"wall_s\": %.6f},\n\
       \     \"on\":  {\"steps\": %d, \"final_width\": %s, \"hull_width\": %s, \"wall_s\": %.6f},\n\
       \     \"final_width_ratio\": %s, \"hull_width_ratio\": %s}\n"
       ode_name ode_tend steps0 (jf w0) (jf h0) ot0 steps1 (jf w1) (jf h1)
       ot1
       (jf (w0 /. w1)) (jf (h0 /. h1)));
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_tm.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_tm.json" ]

(* ------------------------------------------------------------------ *)
(* PF1: strategy portfolio vs single strategies                        *)
(* ------------------------------------------------------------------ *)

(* The configuration portfolio (Icp.Portfolio, BIOMC_PORTFOLIO=1) races
   the curated strategy lineup per query against each strategy forced
   alone, on the N1/AF1 decide and pave workloads plus a bounded-reach
   case study.  Verdict identity between the portfolio and every single
   strategy is asserted in-process.  Honesty note for this 1-core
   container: [Pool.first_conclusive] on one effective domain runs the
   racers to completion in rank order, so the portfolio's wall-clock is
   rank 0's plus cancellation overhead whenever rank 0 concludes — the
   cross-racer refutation sharing only changes wall-clock when an early
   racer retires Unknown (its refutations then prune the next racer's
   search) or when real parallelism interleaves racers.  The ratios
   below therefore measure the scheduling discipline (portfolio ≈ best
   single, never worst single), not a multicore speedup.  Every timed
   run starts from cleared caches and a forced major GC, so no run
   rides an earlier run's stores. *)

let pf1 ?(quick = false) () =
  section
    (if quick then "PF1  Strategy portfolio vs single strategies (quick)"
     else "PF1  Strategy portfolio: race configurations, first conclusive wins");
  Cache.set_policy Cache.Exact;
  Fun.protect ~finally:(fun () ->
      Cache.clear_policy_override ();
      Icp.Portfolio.clear_mode_override ())
  @@ fun () ->
  let strategies =
    Icp.Portfolio.set_mode Icp.Portfolio.Curated;
    let l = Icp.Portfolio.lineup () in
    Icp.Portfolio.set_mode Icp.Portfolio.Off;
    l
  in
  let rounds = if quick then 2 else 9 in
  (* min-of-rounds wall; caches cleared and a major GC forced before
     every timed run so each measurement is a cold start.  The decide
     and reach kernels run in well under a millisecond, where scheduler
     jitter is comparable to the kernel itself — min over several
     rounds is what makes the portfolio-vs-single ratios meaningful. *)
  let min_wall f =
    let best = ref infinity in
    let result = ref None in
    for _ = 1 to rounds do
      Cache.clear ();
      Gc.full_major ();
      let r, dt = timed f in
      if dt < !best then best := dt;
      result := Some r
    done;
    (Option.get !result, !best)
  in
  let dcfg =
    { Icp.Solver.default_config with
      delta = (if quick then 1e-3 else 1e-4);
      epsilon = (if quick then 1e-4 else 1e-5) }
  in
  let pcfg =
    { Icp.Solver.default_config with
      epsilon = (if quick then 0.02 else 0.01) }
  in
  let cubic =
    Expr.Parse.formula
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3"
  in
  let cubic_box =
    Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ]
  in
  let mm =
    Expr.Parse.formula
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1"
  in
  let mm_box =
    Box.of_list [ ("s1", I.make 0.0 1.0); ("s2", I.make 0.0 1.0) ]
  in
  let fit =
    Expr.Parse.formula
      "a*k*exp(-k) >= 0.3 and a*k*exp(-k) <= 0.5 and \
       3*a*k*exp(-3*k) >= 0.1 and 3*a*k*exp(-3*k) <= 0.3"
  in
  let fit_box =
    Box.of_list [ ("k", I.make 0.05 2.5); ("a", I.make 0.2 3.0) ]
  in
  let reach_pb =
    let a =
      Hybrid.Automaton.of_system
        ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
        (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ]
           ~rhs:[ ("x", "-k*x") ])
    in
    E.create
      ~param_box:(Box.of_list [ ("k", I.make 0.1 3.0) ])
      ~goal:{ E.goal_modes = []; predicate = Expr.Parse.formula "x <= 0.3" }
      ~k:0 ~time_bound:1.0 a
  in
  (* Each kernel yields (verdict_string, wall) for one strategy (Some s)
     or the portfolio race (None). *)
  let decide_kernel formula box strategy () =
    match strategy with
    | Some s ->
        Icp.Solver.decide ~config:dcfg ~strategy:s formula box
    | None -> Icp.Solver.decide ~config:dcfg formula box
  in
  let decide_verdict = function
    | Icp.Solver.Unsat -> "unsat"
    | Icp.Solver.Delta_sat _ -> "delta-sat"
    | Icp.Solver.Unknown _ -> "unknown"
  in
  let pave_kernel formula box strategy () =
    let p =
      match strategy with
      | Some s -> Icp.Solver.pave ~config:pcfg ~strategy:s formula box
      | None -> Icp.Solver.pave ~config:pcfg formula box
    in
    if p.Icp.Solver.sat <> [] then "feasible" else "infeasible"
  in
  let reach_kernel strategy () =
    let r =
      match strategy with
      | Some s -> C.check ?strategy:(Some s) reach_pb
      | None -> C.check reach_pb
    in
    match r with
    | C.Unsat _ -> "unsat"
    | C.Delta_sat _ -> "delta-sat"
    | C.Unknown _ -> "unknown"
  in
  let kernels =
    [ ("decide-cubic-separation",
       fun strategy -> decide_verdict (decide_kernel cubic cubic_box strategy ()));
      ("decide-mm-kinetics",
       fun strategy -> decide_verdict (decide_kernel mm mm_box strategy ()));
      ("pave-impulse-fit", fun strategy -> pave_kernel fit fit_box strategy ());
      ("reach-decay", fun strategy -> reach_kernel strategy ()) ]
  in
  let results =
    List.map
      (fun (name, run) ->
        let singles =
          List.map
            (fun (s : Icp.Portfolio.strategy) ->
              let v, t = min_wall (fun () -> run (Some s)) in
              (s.Icp.Portfolio.name, v, t))
            strategies
        in
        let pv, pt =
          min_wall (fun () ->
              Icp.Portfolio.set_mode Icp.Portfolio.Curated;
              Fun.protect ~finally:(fun () ->
                  Icp.Portfolio.set_mode Icp.Portfolio.Off)
              @@ fun () -> run None)
        in
        let winner =
          Option.value ~default:"?" (Icp.Portfolio.last_winner ())
        in
        (* verdict identity: the portfolio and every single strategy *)
        List.iter
          (fun (sname, v, _) ->
            if v <> pv then
              failwith
                (Printf.sprintf "PF1 %s: verdicts differ (%s=%s, portfolio=%s)"
                   name sname v pv))
          singles;
        let best_name, best_t =
          List.fold_left
            (fun (bn, bt) (n, _, t) -> if t < bt then (n, t) else (bn, bt))
            ("", infinity) singles
        in
        let worst_name, worst_t =
          List.fold_left
            (fun (wn, wt) (n, _, t) -> if t > wt then (n, t) else (wn, wt))
            ("", 0.0) singles
        in
        (name, pv, singles, pt, winner, (best_name, best_t),
         (worst_name, worst_t)))
      kernels
  in
  let rows =
    List.map
      (fun (name, v, _, pt, winner, (bn, bt), (wn, wt)) ->
        [ name; v; Fmt.str "%.4fs" pt; winner;
          Fmt.str "%s %.4fs" bn bt; Fmt.str "%.2fx" (pt /. bt);
          Fmt.str "%s %.4fs" wn wt; Fmt.str "%.2fx" (wt /. pt) ])
      results
  in
  Report.print
    [ Report.table
        ~header:
          [ "kernel"; "verdict"; "portfolio"; "winner"; "best single";
            "vs best"; "worst single"; "worst/pf" ]
        rows;
      Report.text
        "1-core honesty: racers serialize in rank order, so portfolio ~ rank-0 \
         wall; ratios measure the scheduling discipline, not multicore speedup." ];
  let buf = Buffer.create 2048 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n\
       \  \"quick\": %b,\n\
       \  \"rounds\": %d,\n\
       \  \"lineup\": [%s],\n\
       \  \"note\": \"1-core container: first_conclusive serializes racers in \
        rank order, so the portfolio's wall tracks rank 0 (plus cancellation \
        overhead); shared refutation stores only change wall-clock when an \
        early racer retires Unknown or real parallelism interleaves racers\",\n\
       \  \"kernels\": [\n"
       quick rounds
       (String.concat ", "
          (List.map
             (fun (s : Icp.Portfolio.strategy) ->
               Printf.sprintf "%S" s.Icp.Portfolio.name)
             strategies)));
  List.iteri
    (fun i (name, v, singles, pt, winner, (bn, bt), (wn, wt)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"verdict\": %S, \"identical\": true, \
            \"winner\": %S,\n\
           \     \"portfolio_wall_s\": %.6f,\n\
           \     \"singles\": {%s},\n\
           \     \"best_single\": %S, \"ratio_vs_best\": %.3f,\n\
           \     \"worst_single\": %S, \"ratio_worst_vs_portfolio\": %.3f}%s\n"
           name v winner pt
           (String.concat ", "
              (List.map
                 (fun (n, _, t) -> Printf.sprintf "%S: %.6f" n t)
                 singles))
           bn (pt /. bt) wn (wt /. pt)
           (if i = List.length results - 1 then "" else ",")))
    results;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_portfolio.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Report.print [ Report.text "wrote BENCH_portfolio.json" ]

(* ------------------------------------------------------------------ *)
(* Part 2: Bechamel kernel timing                                      *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let stage = Staged.stage in
  let icp_sqrt2 =
    let f = Expr.Parse.formula "x^2 = 2" in
    let box = Box.of_list [ ("x", I.make 0.0 2.0) ] in
    Test.make ~name:"s1/icp-sqrt2" (stage (fun () -> Icp.Solver.decide f box))
  in
  let icp_unsat =
    let f = Expr.Parse.formula "x^2 + y^2 <= 1 and x + y >= 3" in
    let box = Box.of_list [ ("x", I.make (-2.0) 2.0); ("y", I.make (-2.0) 2.0) ] in
    Test.make ~name:"s1/icp-geom-unsat" (stage (fun () -> Icp.Solver.decide f box))
  in
  let ode_rk4 =
    let sys =
      Ode.System.of_strings ~vars:[ "x"; "y" ] ~params:[ "w" ]
        ~rhs:[ ("x", "w*y"); ("y", "-w*x") ]
    in
    Test.make ~name:"ode/rk4-oscillator"
      (stage (fun () ->
           Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.01)
             ~params:[ ("w", 2.0) ]
             ~init:[ ("x", 1.0); ("y", 0.0) ]
             ~t_end:5.0 sys))
  in
  let enclosure_decay =
    let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ] in
    let init = Box.of_list [ ("x", I.of_float 1.0) ] in
    Test.make ~name:"a1/enclosure-decay"
      (stage (fun () -> Ode.Enclosure.flow ~params:Box.empty_map ~init ~t_end:1.0 sys))
  in
  let hybrid_sim =
    let h = Biomodels.Fenton_karma.automaton () in
    Test.make ~name:"e1/fk-simulate"
      (stage (fun () -> Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end:400.0 h))
  in
  let bcf_sim =
    Test.make ~name:"e2/bcf-apd"
      (stage (fun () -> Biomodels.Bueno_cherry_fenton.apd ~params:[] ~t_end:600.0 ()))
  in
  let reach_decay =
    let a =
      Hybrid.Automaton.of_system
        ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
        (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ])
    in
    let pb =
      E.create
        ~param_box:(Box.of_list [ ("k", I.make 0.1 3.0) ])
        ~goal:{ E.goal_modes = []; predicate = Expr.Parse.formula "x <= 0.3" }
        ~k:0 ~time_bound:1.0 a
    in
    Test.make ~name:"e3/reach-param-decay" (stage (fun () -> C.check pb))
  in
  let biopsy =
    let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ] in
    let data =
      [ Synth.Data.point ~time:0.5 ~var:"x" ~value:(Float.exp (-0.5)) ~tolerance:0.08;
        Synth.Data.point ~time:1.0 ~var:"x" ~value:(Float.exp (-1.0)) ~tolerance:0.08 ]
    in
    let prob =
      Synth.Biopsy.problem ~sys
        ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
        ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
        ~data
    in
    Test.make ~name:"e7/biopsy-decay"
      (stage (fun () ->
           Synth.Biopsy.synthesize
             ~config:{ Synth.Biopsy.default_config with epsilon = 0.1 }
             prob))
  in
  let bltl_monitor =
    let tr =
      Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.01) ~params:[]
        ~init:[ ("x", 1.0) ] ~t_end:2.0
        (Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ])
    in
    let view = Smc.Bltl.of_trace tr in
    let prop =
      Smc.Bltl.Until (1.5, Smc.Bltl.prop "x >= 0.3", Smc.Bltl.prop "x <= 0.5")
    in
    Test.make ~name:"e8/bltl-monitor" (stage (fun () -> Smc.Bltl.holds view prop))
  in
  let cegis =
    Test.make ~name:"e6/cegis-rotation"
      (stage (fun () ->
           Lyapunov.Cegis.synthesize
             (Lyapunov.Cegis.problem
                ~region:(Biomodels.Classics.unit_box [ "x"; "y" ])
                ~template:(Lyapunov.Template.quadratic [ "x"; "y" ])
                Biomodels.Classics.damped_rotation)))
  in
  let tbi_policy =
    Test.make ~name:"e4/tbi-policy-sim"
      (stage (fun () ->
           Biomodels.Tbi.simulate_policy ~theta1:1.0 ~theta2:1.0 ~t_end:40.0 ()))
  in
  let prostate_sim =
    Test.make ~name:"e3/prostate-ias-sim"
      (stage (fun () ->
           Biomodels.Prostate.simulate_therapy ~r0:4.0 ~r1:10.0 ~t_end:800.0 ()))
  in
  let robustness_one =
    let make (a, b) =
      Biomodels.Bueno_cherry_fenton.automaton ~stimulus:a ~stimulus_width:(b -. a) ()
    in
    Test.make ~name:"e5/robustness-one-range"
      (stage (fun () ->
           Core.Robustness.classify
             ~goal:(Biomodels.Bueno_cherry_fenton.excitation_goal ())
             ~k:3 ~time_bound:100.0 make (0.0, 0.05)))
  in
  [ icp_sqrt2; icp_unsat; ode_rk4; enclosure_decay; hybrid_sim; bcf_sim;
    reach_decay; biopsy; bltl_monitor; cegis; tbi_policy; prostate_sim;
    robustness_one ]

let run_bechamel () =
  section "Kernel timing (Bechamel OLS, ns/run)";
  let open Bechamel in
  let open Toolkit in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let tests = Test.make_grouped ~name:"biomc" (bechamel_tests ()) in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name ols_result ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ e ] -> e
        | _ -> nan
      in
      rows := (name, est) :: !rows)
    results;
  let rows =
    List.sort (fun (a, _) (b, _) -> String.compare a b) !rows
    |> List.map (fun (name, ns) ->
           [ name;
             (if Float.is_nan ns then "-"
              else if ns > 1e9 then Fmt.str "%.2f s" (ns /. 1e9)
              else if ns > 1e6 then Fmt.str "%.2f ms" (ns /. 1e6)
              else if ns > 1e3 then Fmt.str "%.2f us" (ns /. 1e3)
              else Fmt.str "%.0f ns" ns) ])
  in
  Report.print [ Report.table ~header:[ "kernel"; "time/run" ] rows ]

(* CLI: `--quick` runs the quick-aware sections (c1/o1/j1/n1/af1/tm1/
   pf1/p1) in their reduced configurations (the CI smoke job: fast,
   still writes the BENCH_*.json dumps); `--only` takes a
   comma-separated list of section names (e.g. `--only e7,c1,tm1`) and
   runs exactly those, quick-aware sections included — an unknown name
   is rejected up front on stderr with the known sections listed.  No
   flags = everything. *)

let () =
  let argv = Array.to_list Sys.argv in
  let quick = List.mem "--quick" argv in
  let only =
    let rec go = function
      | "--only" :: v :: _ -> Some (String.split_on_char ',' v)
      | _ :: rest -> go rest
      | [] -> None
    in
    go argv
  in
  let sections =
    [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
      ("e7", e7); ("e8", e8); ("e9", e9); ("s1", s1); ("a1", a1); ("a2", a2);
      ("a3", a3); ("a4", a4); ("p1", fun () -> p1 ~quick ()); ("t1", t1);
      ("c1", fun () -> c1 ~quick ());
      ("o1", fun () -> o1 ~quick ());
      ("j1", fun () -> j1 ~quick ());
      ("n1", fun () -> n1 ~quick ());
      ("af1", fun () -> af1 ~quick ());
      ("tm1", fun () -> tm1 ~quick ());
      ("pf1", fun () -> pf1 ~quick ());
      ("bechamel", run_bechamel) ]
  in
  let chosen =
    match only with
    | Some names ->
        (* Reject every unknown name before running anything: a typo in
           a CI invocation should fail fast and say what is on offer,
           not crash mid-suite with a backtrace. *)
        let unknown =
          List.filter (fun n -> not (List.mem_assoc n sections)) names
        in
        if unknown <> [] then begin
          Printf.eprintf
            "bench: unknown section%s %s\nknown sections: %s\n"
            (if List.length unknown = 1 then "" else "s")
            (String.concat ", "
               (List.map (Printf.sprintf "%S") unknown))
            (String.concat ", " (List.map fst sections));
          exit 2
        end;
        List.filter (fun (n, _) -> List.mem n names) sections
    | None ->
        if quick then
          List.filter
            (fun (n, _) ->
              List.mem n [ "c1"; "o1"; "j1"; "n1"; "af1"; "tm1"; "pf1"; "p1" ])
            sections
        else sections
  in
  Report.print
    [ Report.heading "biomc benchmark harness";
      Report.text
        "Part 1 reproduces each experiment's table/series; Part 2 times kernels." ];
  List.iter (fun (_, f) -> f ()) chosen
