(* biomc — command-line driver for the model-checking analysis framework.

   Subcommands mirror the paper's analysis tasks:

     biomc simulate   — numerically simulate a built-in model
     biomc reach      — bounded reachability / falsification
     biomc robustness — stimulation-robustness sweep (cardiac)
     biomc therapy    — treatment-scheme synthesis (TBI / prostate)
     biomc stability  — Lyapunov certificate synthesis
     biomc smc        — statistical model checking of the p53 module
     biomc solve      — decide an L_RF formula with the δ-decision core
     biomc synth      — guaranteed parameter synthesis (BioPSy) *)

module I = Interval.Ia
module Box = Interval.Box
module Report = Core.Report
open Cmdliner

let setup_logs level =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level level

let logs_term =
  let env = Cmd.Env.info "BIOMC_VERBOSITY" in
  Term.(const setup_logs $ Logs_cli.level ~env ())

(* ---- Built-in model registry ---- *)

type model_entry = {
  description : string;
  automaton : unit -> Hybrid.Automaton.t;
  default_t_end : float;
  default_params : (string * float) list;
}

let models =
  [ ("fenton-karma",
     { description = "Fenton-Karma cardiac cell (3 modes, Beeler-Reuter fit)";
       automaton = (fun () -> Biomodels.Fenton_karma.automaton ());
       default_t_end = 400.0; default_params = [] });
    ("bcf",
     { description = "Bueno-Cherry-Fenton minimal ventricular model (EPI)";
       automaton = (fun () -> Biomodels.Bueno_cherry_fenton.automaton ());
       default_t_end = 500.0; default_params = [] });
    ("prostate",
     { description = "Prostate cancer intermittent androgen suppression";
       automaton = (fun () -> Biomodels.Prostate.automaton ());
       default_t_end = 800.0; default_params = [ ("r0", 4.0); ("r1", 10.0) ] });
    ("tbi",
     { description = "TBI-induced multi-mode cell death network (Fig. 3)";
       automaton = (fun () -> Biomodels.Tbi.automaton ());
       default_t_end = 40.0; default_params = [ ("theta1", 1.0); ("theta2", 1.0) ] });
  ]

let model_conv =
  let parse s =
    match List.assoc_opt s models with
    | Some m -> Ok (s, m)
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown model %S (try: %s)" s
               (String.concat ", " (List.map fst models))))
  in
  Arg.conv (parse, fun ppf (name, _) -> Fmt.string ppf name)

let model_arg =
  let doc = "Built-in model to analyze." in
  Arg.(required & pos 0 (some model_conv) None & info [] ~docv:"MODEL" ~doc)

let t_end_arg =
  let doc = "Simulation / analysis time horizon." in
  Arg.(value & opt (some float) None & info [ "t-end" ] ~docv:"TIME" ~doc)

let param_arg =
  let doc = "Bind a model parameter, e.g. --param r0=4.0 (repeatable)." in
  let kv_conv =
    let parse s =
      match String.index_opt s '=' with
      | Some i -> (
          let k = String.sub s 0 i
          and v = String.sub s (i + 1) (String.length s - i - 1) in
          match float_of_string_opt v with
          | Some f -> Ok (k, f)
          | None -> Error (`Msg (Printf.sprintf "invalid value in %S" s)))
      | None -> Error (`Msg (Printf.sprintf "expected key=value, got %S" s))
    in
    Arg.conv (parse, fun ppf (k, v) -> Fmt.pf ppf "%s=%g" k v)
  in
  Arg.(value & opt_all kv_conv [] & info [ "param"; "p" ] ~docv:"KEY=VAL" ~doc)

let merge_params defaults overrides =
  List.map
    (fun (k, dflt) ->
      match List.assoc_opt k overrides with Some v -> (k, v) | None -> (k, dflt))
    defaults
  @ List.filter (fun (k, _) -> not (List.mem_assoc k defaults)) overrides

(* ---- simulate ---- *)

let simulate () (name, entry) t_end params samples csv =
  let t_end = Option.value ~default:entry.default_t_end t_end in
  let params = merge_params entry.default_params params in
  let h = entry.automaton () in
  let traj = Hybrid.Simulate.simulate ~params ~init:[] ~t_end h in
  (match csv with
  | Some path ->
      let oc = open_out path in
      output_string oc (Hybrid.Simulate.to_csv traj);
      close_out oc;
      Fmt.pr "wrote %s@." path
  | None -> ());
  let vars = Hybrid.Automaton.vars h in
  let rows =
    List.init samples (fun i ->
        let t = t_end *. float_of_int i /. float_of_int (Stdlib.max 1 (samples - 1)) in
        Fmt.str "%.3f" t
        :: List.map
             (fun v ->
               match Hybrid.Simulate.value_at traj v t with
               | Some x -> Fmt.str "%.5f" x
               | None -> "-")
             vars)
  in
  Report.print
    [ Report.heading (Printf.sprintf "Simulation: %s" name);
      Report.text "%s" entry.description;
      Report.kv
        [ ("path", String.concat " -> " traj.Hybrid.Simulate.path);
          ("stop", Fmt.str "%a" Hybrid.Simulate.pp_stop_reason traj.Hybrid.Simulate.reason);
          ("time", Fmt.str "%.3f" traj.Hybrid.Simulate.total_time) ];
      Report.table ~header:("t" :: vars) rows ];
  Ok ()

let samples_arg =
  let doc = "Number of sample rows to print." in
  Arg.(value & opt int 21 & info [ "samples" ] ~docv:"N" ~doc)

let csv_arg =
  let doc = "Also write the full trajectory as CSV to this file." in
  Arg.(value & opt (some string) None & info [ "csv" ] ~docv:"FILE" ~doc)

let simulate_cmd =
  let info = Cmd.info "simulate" ~doc:"Numerically simulate a built-in model." in
  Cmd.v info
    Term.(
      term_result
        (const simulate $ logs_term $ model_arg $ t_end_arg $ param_arg $ samples_arg
       $ csv_arg))

let jobs_arg =
  let doc =
    "Worker domains for parallel solving / sampling (default: detected \
     core count, capped at 8); 1 forces the sequential code path."
  in
  Arg.(
    value
    & opt int (Parallel.Pool.default_jobs ())
    & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let no_cache_arg =
  let doc =
    "Disable the subsumption caches (flowpipes, HC4 fixpoints, refuted \
     boxes); equivalent to BIOMC_NO_CACHE=1."
  in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let no_newton_arg =
  let doc =
    "Disable the derivative layer of the δ-decision search (mean-value \
     refutation, interval Newton contraction, smear-guided branching), \
     restoring plain HC4 + widest-dimension bisection; equivalent to \
     BIOMC_NO_NEWTON=1."
  in
  Arg.(value & flag & info [ "no-newton" ] ~doc)

let no_affine_arg =
  let doc =
    "Disable affine-form (noise-symbol) evaluation in the HC4 forward \
     passes and ODE enclosures, restoring plain interval arithmetic; \
     equivalent to BIOMC_NO_AFFINE=1."
  in
  Arg.(value & flag & info [ "no-affine" ] ~doc)

let no_tm_arg =
  let doc =
    "Disable degree-2 Taylor-model evaluation in the HC4 forward \
     passes, pave certification and ODE enclosures, restoring the \
     affine/interval-only search; equivalent to BIOMC_NO_TM=1."
  in
  Arg.(value & flag & info [ "no-tm" ] ~doc)

let portfolio_arg =
  let doc =
    "Race solver strategy configurations per query (first conclusive \
     verdict wins, racers share refutation stores).  $(docv) is \
     'curated' (the default 4-strategy lineup, also spelled 'on') or \
     'all' (the full strategy product); equivalent to BIOMC_PORTFOLIO.  \
     BIOMC_NO_PORTFOLIO=1 kill-switches the portfolio regardless."
  in
  Arg.(
    value
    & opt ~vopt:(Some "curated") (some string) None
    & info [ "portfolio" ] ~docv:"MODE" ~doc)

let apply_cache_policy no_cache =
  if no_cache then Cache.set_policy Cache.Off

(* One-line hits/misses/warm-starts summary, appended to reports of the
   cache-assisted analyses. *)
let cache_line () = Report.text "%s" (Cache.summary ())

(* ---- common analysis flags (solve / reach / smc / synth) ---- *)

type common = {
  jobs : int;
  no_cache : bool;
  no_newton : bool;
  no_affine : bool;
  no_tm : bool;
  portfolio : string option;  (** strategy-portfolio mode (curated/all) *)
  trace : string option;  (** Chrome trace_event JSON output file *)
  metrics : bool;  (** print the telemetry metrics section *)
  metrics_json : string option;  (** also write the metrics as JSON *)
  metrics_prom : string option;  (** Prometheus text exposition file *)
  journal : string option;  (** NDJSON provenance-journal output file *)
  progress : bool;  (** rate-limited stderr heartbeat during the run *)
}

let trace_arg =
  let doc =
    "Record a Chrome trace_event JSON trace of the analysis to $(docv) \
     (open in Perfetto or chrome://tracing).  Implies --metrics."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Print telemetry counters and span histograms after the analysis." in
  Arg.(value & flag & info [ "metrics" ] ~doc)

let metrics_json_arg =
  let doc = "Also write the telemetry metrics snapshot as JSON to $(docv)." in
  Arg.(
    value & opt (some string) None & info [ "metrics-json" ] ~docv:"FILE" ~doc)

let metrics_prom_arg =
  let doc =
    "Also write the telemetry metrics snapshot in Prometheus text \
     exposition format to $(docv) (for node_exporter's textfile \
     collector or a push gateway)."
  in
  Arg.(
    value & opt (some string) None & info [ "metrics-prom" ] ~docv:"FILE" ~doc)

let journal_arg =
  let doc =
    "Record the provenance journal — the full branch-and-prune search \
     DAG as NDJSON events — to $(docv); reload it with `biomc explain'.  \
     Equivalent to BIOMC_JOURNAL=$(docv)."
  in
  Arg.(value & opt (some string) None & info [ "journal" ] ~docv:"FILE" ~doc)

let progress_arg =
  let doc =
    "Print a rate-limited progress heartbeat to stderr while the \
     analysis runs (boxes/sec, prunings, cache hit rate, portfolio \
     leader).  Purely observational."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let common_term =
  let mk jobs no_cache no_newton no_affine no_tm portfolio trace metrics
      metrics_json metrics_prom journal progress =
    { jobs; no_cache; no_newton; no_affine; no_tm; portfolio; trace; metrics;
      metrics_json; metrics_prom; journal; progress }
  in
  Term.(
    const mk $ jobs_arg $ no_cache_arg $ no_newton_arg $ no_affine_arg
    $ no_tm_arg $ portfolio_arg $ trace_arg $ metrics_arg $ metrics_json_arg
    $ metrics_prom_arg $ journal_arg $ progress_arg)

(* Telemetry section appended to a report when metrics are on: non-zero
   counters as a key/value block, span histograms as a table. *)
let telemetry_items () =
  if not (Telemetry.metrics_on ()) then []
  else begin
    let kvs = Telemetry.Metrics.kvs () in
    let hists = Telemetry.Metrics.histograms () in
    let hist_rows =
      List.map
        (fun (name, s) ->
          [ name;
            string_of_int s.Telemetry.Histogram.count;
            Fmt.str "%.0f" (Telemetry.Histogram.mean s);
            string_of_int (Telemetry.Histogram.quantile 0.5 s);
            string_of_int (Telemetry.Histogram.quantile 0.9 s) ])
        hists
    in
    [ Report.heading "Telemetry" ]
    @ (if kvs = [] then [ Report.text "no events recorded" ]
       else [ Report.kv kvs ])
    @
    if hist_rows = [] then []
    else
      [ Report.table
          ~header:[ "span"; "count"; "mean ns"; "p50 ns"; "p90 ns" ]
          hist_rows ]
  end

(* Run an analysis body under the common flags: cache policy and
   telemetry switches are applied before, the telemetry report section
   and the trace / metrics files are emitted after.  The body returns
   the report items for a successful run. *)
let with_common c body =
  apply_cache_policy c.no_cache;
  if c.no_newton then Icp.Deriv.set_enabled false;
  if c.no_affine then Interval.Affine.set_enabled false;
  if c.no_tm then Interval.Tm.set_enabled false;
  (match c.portfolio with
  | None -> ()
  | Some "all" -> Icp.Portfolio.set_mode Icp.Portfolio.All
  | Some _ -> Icp.Portfolio.set_mode Icp.Portfolio.Curated);
  if c.metrics || c.metrics_json <> None || c.metrics_prom <> None then
    Telemetry.set_metrics true;
  if c.trace <> None then begin
    Telemetry.set_metrics true;
    Telemetry.set_trace true
  end;
  (match c.journal with
  | Some path -> Journal.set_sink (Journal.To_file path)
  | None -> ());
  (* The heartbeat reads the always-on telemetry registry, so it needs
     no switches; it only exists while the body runs. *)
  let progress =
    if c.progress then Some (Journal.Progress.start ()) else None
  in
  let finish_observers () =
    Option.iter Journal.Progress.stop progress;
    Journal.close ();
    match c.journal with
    | Some path -> Fmt.pr "wrote %s (provenance journal)@." path
    | None -> ()
  in
  match body () with
  | Error _ as e ->
      finish_observers ();
      e
  | Ok items ->
      finish_observers ();
      let winner_items =
        match Icp.Portfolio.last_winner () with
        | Some name -> [ Report.winner name ]
        | None -> []
      in
      Report.print (items @ winner_items @ telemetry_items ());
      (match c.metrics_json with
      | Some path ->
          let oc = open_out path in
          output_string oc (Telemetry.Metrics.to_json ());
          output_char oc '\n';
          close_out oc;
          Fmt.pr "wrote %s (telemetry metrics)@." path
      | None -> ());
      (match c.metrics_prom with
      | Some path ->
          let oc = open_out path in
          output_string oc (Telemetry.Metrics.to_prometheus ());
          close_out oc;
          Fmt.pr "wrote %s (Prometheus metrics)@." path
      | None -> ());
      (match c.trace with
      | Some path ->
          Telemetry.Trace.write_file path;
          Fmt.pr "wrote %s (%d trace events)@." path
            (Telemetry.Trace.events_recorded ())
      | None -> ());
      Ok ()

(* ---- reach ---- *)

let goal_arg =
  let doc =
    "Goal predicate over the model variables (L_RF formula, e.g. 'y >= 1')."
  in
  Arg.(required & opt (some string) None & info [ "goal" ] ~docv:"FORMULA" ~doc)

let goal_modes_arg =
  let doc = "Restrict the goal to these modes (repeatable)." in
  Arg.(value & opt_all string [] & info [ "goal-mode" ] ~docv:"MODE" ~doc)

let k_arg =
  let doc = "Maximum number of discrete jumps (unrolling depth)." in
  Arg.(value & opt int 3 & info [ "k" ] ~docv:"K" ~doc)

let box_arg =
  let doc =
    "Search box for a free parameter, e.g. --box r0=2:6 (repeatable)."
  in
  let box_conv =
    let parse s =
      try
        Scanf.sscanf s "%[^=]=%f:%f" (fun k lo hi -> Ok (k, I.make lo hi))
      with _ -> Error (`Msg (Printf.sprintf "expected key=lo:hi, got %S" s))
    in
    Arg.conv (parse, fun ppf (k, i) -> Fmt.pf ppf "%s=%a" k I.pp i)
  in
  Arg.(value & opt_all box_conv [] & info [ "box" ] ~docv:"KEY=LO:HI" ~doc)

let reach () (name, entry) t_end params goal goal_modes k boxes common =
  with_common common @@ fun () ->
  let time_bound = Option.value ~default:entry.default_t_end t_end in
  let h = entry.automaton () in
  let h = if params = [] then h else Hybrid.Automaton.bind_params params h in
  let param_box = Box.of_list boxes in
  match Expr.Parse.formula_opt goal with
  | None -> Error (`Msg (Printf.sprintf "cannot parse goal %S" goal))
  | Some predicate ->
      let pb =
        Reach.Encoding.create ~param_box
          ~goal:{ Reach.Encoding.goal_modes; predicate }
          ~k ~time_bound h
      in
      let config = { Reach.Checker.default_config with jobs = common.jobs } in
      let result = Reach.Checker.check ~config pb in
      Ok
        [ Report.heading (Printf.sprintf "Bounded reachability: %s" name);
          Report.kv
            [ ("goal", goal); ("k", string_of_int k);
              ("time bound", Fmt.str "%g" time_bound);
              ("jobs", string_of_int common.jobs);
              ("candidate paths", string_of_int (List.length (Reach.Encoding.candidate_paths pb))) ];
          Report.text "verdict: %s" (Fmt.str "%a" Reach.Checker.pp_result result);
          cache_line () ]

let reach_cmd =
  let info =
    Cmd.info "reach"
      ~doc:"Decide bounded reachability of a goal (delta-sat / unsat)."
  in
  Cmd.v info
    Term.(
      term_result
        (const reach $ logs_term $ model_arg $ t_end_arg $ param_arg $ goal_arg
       $ goal_modes_arg $ k_arg $ box_arg $ common_term))

(* ---- robustness ---- *)

let robustness () lo hi steps =
  let make (a, b) =
    Biomodels.Bueno_cherry_fenton.automaton ~stimulus:a ~stimulus_width:(b -. a) ()
  in
  let goal = Biomodels.Bueno_cherry_fenton.excitation_goal () in
  let width = (hi -. lo) /. float_of_int steps in
  let ranges =
    List.init steps (fun i -> (lo +. (width *. float_of_int i), lo +. (width *. float_of_int (i + 1))))
  in
  let rows =
    List.map
      (fun ((a, b), v) ->
        [ Fmt.str "[%.3f, %.3f]" a b; Fmt.str "%a" Core.Robustness.pp_verdict v ])
      (Core.Robustness.sweep ~goal ~k:3 ~time_bound:100.0 make ranges)
  in
  Report.print
    [ Report.heading "Cardiac stimulation robustness (BCF)";
      Report.table ~header:[ "stimulus range"; "verdict" ] rows ];
  Ok ()

let robustness_cmd =
  let lo =
    Arg.(value & opt float 0.0 & info [ "lo" ] ~docv:"A" ~doc:"Lowest amplitude.")
  in
  let hi =
    Arg.(value & opt float 0.4 & info [ "hi" ] ~docv:"B" ~doc:"Highest amplitude.")
  in
  let steps =
    Arg.(value & opt int 8 & info [ "steps" ] ~docv:"N" ~doc:"Sweep resolution.")
  in
  let info =
    Cmd.info "robustness"
      ~doc:"Sweep stimulation amplitudes; unsat proves the range is filtered."
  in
  Cmd.v info Term.(term_result (const robustness $ logs_term $ lo $ hi $ steps))

(* ---- therapy ---- *)

let therapy () =
  let automaton = Biomodels.Tbi.automaton () in
  let param_box =
    Box.of_list [ ("theta1", I.make 0.6 2.0); ("theta2", I.make 0.4 2.0) ]
  in
  let outcome =
    Core.Therapy.optimize ~param_box
      ~recovery:(Biomodels.Tbi.recovery_goal ())
      ~harm:(Biomodels.Tbi.death_goal ())
      ~max_jumps:4 ~time_bound:40.0 automaton
  in
  Report.print
    [ Report.heading "TBI combination-therapy synthesis";
      Report.text "%s" (Fmt.str "%a" Core.Therapy.pp_outcome outcome) ];
  Ok ()

let therapy_cmd =
  let info =
    Cmd.info "therapy"
      ~doc:"Synthesize a minimal-drug treatment scheme for the TBI model."
  in
  Cmd.v info Term.(term_result (const therapy $ logs_term))

(* ---- stability ---- *)

let classic_systems =
  [ ("damped-rotation", Biomodels.Classics.damped_rotation);
    ("damped-nonlinear", Biomodels.Classics.damped_nonlinear);
    ("proofreading", Biomodels.Classics.proofreading);
    ("erk", Biomodels.Classics.erk_cascade) ]

let stability () name =
  match List.assoc_opt name classic_systems with
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown system %S (try: %s)" name
             (String.concat ", " (List.map fst classic_systems))))
  | Some sys ->
      let region = Biomodels.Classics.unit_box (Ode.System.vars sys) in
      let r = Core.Stability.prove ~region sys in
      Report.print
        [ Report.heading (Printf.sprintf "Lyapunov stability: %s" name);
          Report.text "%s" (Fmt.str "%a" Core.Stability.pp_report r) ];
      Ok ()

let stability_cmd =
  let sys_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SYSTEM" ~doc:"One of the built-in autonomous systems.")
  in
  let info =
    Cmd.info "stability" ~doc:"Synthesize a Lyapunov certificate by CEGIS."
  in
  Cmd.v info Term.(term_result (const stability $ logs_term $ sys_arg))

(* ---- smc ---- *)

let smc () n common =
  with_common common @@ fun () ->
  let jobs = common.jobs in
  let prob =
    Smc.Runner.problem
      ~model:(Smc.Runner.Ode_model Biomodels.Classics.p53_mdm2)
      ~init_dist:
        [ ("p53", Smc.Sampler.Uniform (0.02, 0.08));
          ("mdm2", Smc.Sampler.Uniform (0.02, 0.08)) ]
      ~param_dist:[ ("damage", Smc.Sampler.Uniform (0.5, 1.5)) ]
      ~property:(Smc.Bltl.Finally (30.0, Smc.Bltl.prop "p53 >= 0.3"))
      ~t_end:30.0 ()
  in
  let e = Smc.Runner.estimate_bayesian ~jobs ~n prob in
  Ok
    [ Report.heading "SMC: p53 pulse probability under high damage";
      Report.text "(%d sampling domain(s))" jobs;
      Report.text "%s" (Fmt.str "%a" Smc.Estimate.pp_estimate e) ]

let smc_cmd =
  let n_arg =
    Arg.(value & opt int 300 & info [ "n" ] ~docv:"N" ~doc:"Sample count.")
  in
  let info = Cmd.info "smc" ~doc:"Statistical model checking demo (p53 module)." in
  Cmd.v info Term.(term_result (const smc $ logs_term $ n_arg $ common_term))

(* ---- solve ---- *)

let solve () formula boxes delta common =
  with_common common @@ fun () ->
  match Expr.Parse.formula_opt formula with
  | None -> Error (`Msg (Printf.sprintf "cannot parse %S" formula))
  | Some f ->
      let box = Box.of_list boxes in
      let missing =
        List.filter (fun v -> not (Box.mem_var v box)) (Expr.Formula.free_var_list f)
      in
      if missing <> [] then
        Error
          (`Msg
            (Printf.sprintf "missing --box for variable(s): %s"
               (String.concat ", " missing)))
      else begin
        let config =
          { Icp.Solver.default_config with delta; jobs = common.jobs }
        in
        let result, stats = Icp.Solver.decide_with_stats ~config f box in
        Ok
          [ Report.heading "delta-decision";
            Report.kv
              [ ("formula", formula); ("delta", Fmt.str "%g" delta);
                ("jobs", string_of_int common.jobs);
                ("boxes", string_of_int stats.Icp.Solver.boxes_processed) ];
            Report.text "verdict: %s" (Fmt.str "%a" Icp.Solver.pp_result result);
            cache_line () ]
      end

let solve_cmd =
  let formula_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"FORMULA" ~doc:"Quantifier-free L_RF formula.")
  in
  let delta_arg =
    Arg.(value & opt float 1e-3 & info [ "delta" ] ~docv:"D" ~doc:"Perturbation δ.")
  in
  let info = Cmd.info "solve" ~doc:"Decide an L_RF formula over given variable boxes." in
  Cmd.v info
    Term.(
      term_result
        (const solve $ logs_term $ formula_arg $ box_arg $ delta_arg
       $ common_term))

(* ---- synth ---- *)

(* Parametric single-mode systems suitable for BioPSy-style synthesis. *)
let synth_systems =
  [ ("lotka-volterra", Biomodels.Classics.lotka_volterra);
    ("lotka-volterra-full", Biomodels.Classics.lotka_volterra_full);
    ("p53", Biomodels.Classics.p53_mdm2);
    ("sir", Biomodels.Classics.sir) ]

let synth () name boxes true_params inits points tolerance noise epsilon t_end
    common =
  with_common common @@ fun () ->
  match List.assoc_opt name synth_systems with
  | None ->
      Error
        (`Msg
          (Printf.sprintf "unknown system %S (try: %s)" name
             (String.concat ", " (List.map fst synth_systems))))
  | Some sys ->
      let sys_params = Ode.System.params sys in
      let missing_box =
        List.filter (fun p -> not (List.mem_assoc p boxes)) sys_params
      in
      if missing_box <> [] then
        Error
          (`Msg
            (Printf.sprintf "missing --box for parameter(s): %s"
               (String.concat ", " missing_box)))
      else begin
        let param_box = Box.of_list boxes in
        (* Ground truth for the synthetic data: --param overrides, box
           midpoints otherwise. *)
        let truth =
          List.map
            (fun p ->
              match List.assoc_opt p true_params with
              | Some v -> (p, v)
              | None -> (p, I.mid (Box.find p param_box)))
            sys_params
        in
        let init_env =
          List.map
            (fun v ->
              match List.assoc_opt v inits with
              | Some x -> (v, x)
              | None -> (v, 0.1))
            (Ode.System.vars sys)
        in
        let data =
          Synth.Data.synthetic
            ~rng:(Random.State.make [| 20200426 |])
            ~sys ~params:truth ~init:init_env ~t_end
            ~observed:(Ode.System.vars sys) ~n:points ~noise ~tolerance
        in
        let init_box =
          Box.of_list (List.map (fun (v, x) -> (v, I.of_float x)) init_env)
        in
        let prob = Synth.Biopsy.problem ~sys ~param_box ~init:init_box ~data in
        let config =
          { Synth.Biopsy.default_config with epsilon; jobs = common.jobs }
        in
        let r = Synth.Biopsy.synthesize ~config prob in
        let vc, vi, vu = Synth.Biopsy.volumes prob r in
        Ok
          [ Report.heading (Printf.sprintf "Parameter synthesis: %s" name);
            Report.kv
              [ ("parameters", String.concat ", " sys_params);
                ("ground truth",
                 String.concat ", "
                   (List.map (fun (p, v) -> Printf.sprintf "%s=%g" p v) truth));
                ("data points", string_of_int (List.length data));
                ("epsilon", Fmt.str "%g" epsilon);
                ("jobs", string_of_int common.jobs) ];
            Report.text "%s" (Fmt.str "%a" Synth.Biopsy.pp_result r);
            Report.text "volumes: consistent %.4g, inconsistent %.4g, undecided %.4g"
              vc vi vu;
            (if Synth.Biopsy.falsified r then
               Report.text "model FALSIFIED: no parameter fits the data"
             else Report.text "model admits consistent parameters");
            cache_line () ]
      end

let synth_cmd =
  let sys_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SYSTEM"
          ~doc:"One of the built-in autonomous systems (see `biomc models`).")
  in
  let init_arg =
    let doc = "Initial state component, e.g. --init x=0.2 (repeatable; default 0.1)." in
    let kv_conv =
      let parse s =
        match String.index_opt s '=' with
        | Some i -> (
            let k = String.sub s 0 i
            and v = String.sub s (i + 1) (String.length s - i - 1) in
            match float_of_string_opt v with
            | Some f -> Ok (k, f)
            | None -> Error (`Msg (Printf.sprintf "invalid value in %S" s)))
        | None -> Error (`Msg (Printf.sprintf "expected key=value, got %S" s))
      in
      Arg.conv (parse, fun ppf (k, v) -> Fmt.pf ppf "%s=%g" k v)
    in
    Arg.(value & opt_all kv_conv [] & info [ "init" ] ~docv:"VAR=VAL" ~doc)
  in
  let points_arg =
    Arg.(value & opt int 8 & info [ "points" ] ~docv:"N" ~doc:"Samples per observed variable.")
  in
  let tolerance_arg =
    Arg.(value & opt float 0.2 & info [ "tolerance" ] ~docv:"T" ~doc:"Half-width of acceptance bands.")
  in
  let noise_arg =
    Arg.(value & opt float 0.0 & info [ "noise" ] ~docv:"W" ~doc:"Uniform noise bound on the data.")
  in
  let epsilon_arg =
    Arg.(value & opt float 1e-2 & info [ "epsilon" ] ~docv:"E" ~doc:"Minimum parameter-box width.")
  in
  let t_end_synth_arg =
    Arg.(value & opt float 10.0 & info [ "t-end" ] ~docv:"TIME" ~doc:"Data horizon.")
  in
  let info =
    Cmd.info "synth"
      ~doc:
        "Guaranteed parameter synthesis (BioPSy): pave a parameter box into \
         consistent / inconsistent / undecided regions against synthetic data."
  in
  Cmd.v info
    Term.(
      term_result
        (const synth $ logs_term $ sys_arg $ box_arg $ param_arg $ init_arg
       $ points_arg $ tolerance_arg $ noise_arg $ epsilon_arg $ t_end_synth_arg
       $ common_term))

(* ---- export (.drh) ---- *)

let export () (name, entry) t_end params goal goal_modes k boxes output =
  let time_bound = Option.value ~default:entry.default_t_end t_end in
  let h = entry.automaton () in
  let h = if params = [] then h else Hybrid.Automaton.bind_params params h in
  match Expr.Parse.formula_opt goal with
  | None -> Error (`Msg (Printf.sprintf "cannot parse goal %S" goal))
  | Some predicate ->
      let pb =
        Reach.Encoding.create ~param_box:(Box.of_list boxes)
          ~goal:{ Reach.Encoding.goal_modes; predicate }
          ~k ~time_bound h
      in
      (match output with
      | Some path ->
          Reach.Drh.to_file path pb;
          Fmt.pr "wrote %s (dReach .drh for model %s)@." path name
      | None -> print_string (Reach.Drh.of_problem pb));
      Ok ()

let export_cmd =
  let output_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to a file instead of stdout.")
  in
  let info =
    Cmd.info "export"
      ~doc:"Export a reachability problem in dReach .drh format (interop)."
  in
  Cmd.v info
    Term.(
      term_result
        (const export $ logs_term $ model_arg $ t_end_arg $ param_arg $ goal_arg
       $ goal_modes_arg $ k_arg $ box_arg $ output_arg))

(* ---- explain ---- *)

let write_or_stdout path content =
  if path = "-" then print_string content
  else begin
    let oc = open_out path in
    output_string oc content;
    close_out oc;
    Fmt.pr "wrote %s@." path
  end

let explain () file json dot max_nodes no_audit =
  match Journal.load file with
  | Error msg -> Error (`Msg (Printf.sprintf "%s: invalid journal: %s" file msg))
  | Ok records ->
      let forest = Journal.reconstruct records in
      (match json with
      | Some path -> write_or_stdout path (Journal.provenance_json forest ^ "\n")
      | None -> print_string (Journal.report forest));
      (match dot with
      | Some path -> write_or_stdout path (Journal.to_dot ~max_nodes forest)
      | None -> ());
      if no_audit then Ok ()
      else begin
        match Journal.audit forest with
        | [] ->
            Fmt.pr "audit: clean (%d records, %d runs)@." (List.length records)
              (List.length (Journal.runs forest));
            Ok ()
        | problems ->
            Error
              (`Msg
                (Printf.sprintf "%s: audit failed:\n  %s" file
                   (String.concat "\n  " problems)))
      end

let explain_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"NDJSON provenance journal written by --journal / BIOMC_JOURNAL.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the provenance payload as JSON to $(docv) ('-' for stdout) \
             instead of printing the human-readable report.")
  in
  let dot_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"FILE"
          ~doc:
            "Also write a truncated Graphviz DOT export of the search forest \
             ('-' for stdout).")
  in
  let max_nodes_arg =
    Arg.(
      value & opt int 400
      & info [ "max-nodes" ] ~docv:"N" ~doc:"Node cap of the DOT export.")
  in
  let no_audit_arg =
    Arg.(value & flag & info [ "no-audit" ] ~doc:"Skip the soundness audit.")
  in
  let info =
    Cmd.info "explain"
      ~doc:
        "Reload a provenance journal, reconstruct the search forest and \
         report verdict provenance (prune-reason breakdown per depth, \
         witness chain for delta-sat, refutation cover for unsat), then \
         audit it for soundness."
  in
  Cmd.v info
    Term.(
      term_result
        (const explain $ logs_term $ file_arg $ json_arg $ dot_arg
       $ max_nodes_arg $ no_audit_arg))

(* ---- check-artifacts (and its historical alias trace-check) ---- *)

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* Sniff what kind of artifact a file is: a Chrome trace is one JSON
   object whose top level carries a "traceEvents" array; a journal is
   NDJSON whose records never contain that key. *)
let artifact_kind file =
  let ic = open_in_bin file in
  let n = Stdlib.min 4096 (in_channel_length ic) in
  let head = really_input_string ic n in
  close_in ic;
  if contains_substring head "traceEvents" then `Trace else `Journal

let check_one_artifact file =
  match artifact_kind file with
  | `Trace -> (
      match Telemetry.Trace.validate_file file with
      | Error msg ->
          Error (Printf.sprintf "%s: invalid trace: %s" file msg)
      | Ok c ->
          Ok
            [ Report.heading (Printf.sprintf "Trace check: %s" file);
              Report.kv
                [ ("events", string_of_int c.Telemetry.Trace.events);
                  ("begin/end pairs",
                   Printf.sprintf "%d/%d" c.Telemetry.Trace.begins
                     c.Telemetry.Trace.ends);
                  ("instants", string_of_int c.Telemetry.Trace.instants);
                  ("domains",
                   String.concat ", "
                     (List.map string_of_int c.Telemetry.Trace.tids));
                  ("max span depth",
                   string_of_int c.Telemetry.Trace.max_depth) ];
              Report.text
                "trace is well-formed (begin/end balanced per domain)" ])
  | `Journal -> (
      match Journal.load file with
      | Error msg -> Error (Printf.sprintf "%s: invalid journal: %s" file msg)
      | Ok records -> (
          let forest = Journal.reconstruct records in
          match Journal.audit forest with
          | [] ->
              let runs = Journal.runs forest in
              Ok
                [ Report.heading (Printf.sprintf "Journal check: %s" file);
                  Report.kv
                    [ ("records", string_of_int (List.length records));
                      ("runs", string_of_int (List.length runs));
                      ("verdicts",
                       String.concat "; "
                         (List.map
                            (fun (r : Journal.run_info) ->
                              Printf.sprintf "%s: %s" r.Journal.kind
                                (Option.value ~default:"(unfinished)"
                                   r.Journal.verdict))
                            runs)) ];
                  Report.text "journal is sound (audit clean)" ]
          | problems ->
              Error
                (Printf.sprintf "%s: audit failed:\n  %s" file
                   (String.concat "\n  " problems))))

let check_artifacts () files =
  let failures =
    List.filter_map
      (fun file ->
        match check_one_artifact file with
        | Ok items ->
            Report.print items;
            None
        | Error msg -> Some msg)
      files
  in
  if failures = [] then Ok ()
  else Error (`Msg (String.concat "\n" failures))

let artifact_files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE"
        ~doc:
          "Observability artifacts to validate: Chrome trace_event JSON \
           files (--trace) and NDJSON provenance journals (--journal), \
           type-sniffed per file.")

let check_artifacts_cmd =
  let info =
    Cmd.info "check-artifacts"
      ~doc:
        "Validate observability artifacts: traces are parsed back and \
         checked for begin/end balance per domain, journals are \
         reconstructed and put through the soundness audit."
  in
  Cmd.v info
    Term.(term_result (const check_artifacts $ logs_term $ artifact_files_arg))

let trace_check_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Artifact file to validate.")
  in
  let info =
    Cmd.info "trace-check"
      ~doc:
        "Alias of check-artifacts for a single file (kept for \
         compatibility; journals are accepted too)."
  in
  Cmd.v info
    Term.(
      term_result
        (const (fun () file -> check_artifacts () [ file ])
        $ logs_term $ file_arg))

(* ---- models listing ---- *)

let list_models () =
  Report.print
    [ Report.heading "Built-in models";
      Report.table
        ~header:[ "name"; "description" ]
        (List.map (fun (n, e) -> [ n; e.description ]) models);
      Report.heading "Built-in autonomous systems (for `stability`)";
      Report.table
        ~header:[ "name"; "variables" ]
        (List.map
           (fun (n, s) -> [ n; String.concat ", " (Ode.System.vars s) ])
           classic_systems);
      Report.heading "Built-in parametric systems (for `synth`)";
      Report.table
        ~header:[ "name"; "variables"; "parameters" ]
        (List.map
           (fun (n, s) ->
             [ n; String.concat ", " (Ode.System.vars s);
               String.concat ", " (Ode.System.params s) ])
           synth_systems) ];
  Ok ()

let list_cmd =
  let info = Cmd.info "models" ~doc:"List the built-in models." in
  Cmd.v info Term.(term_result (const list_models $ logs_term))

let main_cmd =
  let doc =
    "Model checking-based analysis of systems biology models (δ-decisions)"
  in
  let info = Cmd.info "biomc" ~version:"1.0.0" ~doc in
  Cmd.group info
    [ simulate_cmd; reach_cmd; robustness_cmd; therapy_cmd; stability_cmd;
      smc_cmd; solve_cmd; synth_cmd; export_cmd; explain_cmd;
      check_artifacts_cmd; trace_check_cmd; list_cmd ]

let () = exit (Cmd.eval main_cmd)
