(* Tests for the strategy-portfolio layer: verdict agreement with every
   single strategy, kill-switch bit-for-bit reproduction, cross-racer
   refutation-store soundness, and winner reporting.

   Portfolio activation is driven through [Portfolio.set_mode] rather
   than the environment so the suite behaves the same under plain
   `dune runtest` and the CI ablation legs; under BIOMC_NO_PORTFOLIO=1
   the kill-switch outranks [set_mode] and the portfolio-on runs
   degrade to the default search — every agreement and reproduction
   check still holds (trivially), and the winner checks guard on
   [Portfolio.active]. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse
module S = Icp.Solver
module Pf = Icp.Portfolio

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

let with_mode m f =
  Pf.set_mode m;
  Fun.protect ~finally:Pf.clear_mode_override f

let verdict_kind = function
  | S.Unsat -> "unsat"
  | S.Delta_sat _ -> "delta-sat"
  | S.Unknown _ -> "unknown"

(* Instances with robust margins, so every strategy (and the portfolio)
   must agree on the verdict kind: the δ-gray zone is never hit. *)
let decide_instances =
  [ ("sqrt2", "x^2 = 2", [ ("x", 0.0, 2.0) ]);
    ("sum-unsat", "x + y >= 3.5", [ ("x", 0.0, 1.0); ("y", 0.0, 1.0) ]);
    ("prod-unsat", "x*y >= 2", [ ("x", 0.0, 1.0); ("y", 0.0, 1.0) ]);
    ("sin", "sin(x) = 0.5", [ ("x", 0.0, 2.0) ]);
    ( "cubic-pair",
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and (x - \
       y)^2 >= 0.3",
      [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] ) ]

(* A few randomized-but-seeded robust instances on top of the pinned
   ones: circles of radius c < 1 (δ-sat) and thresholds above the
   attainable maximum (unsat with margin ≥ 0.1). *)
let random_instances =
  let st = Random.State.make [| 0x5eed |] in
  List.concat_map
    (fun i ->
      let c = 0.1 +. (Random.State.float st 0.8) in
      [ ( Printf.sprintf "rand-sat-%d" i,
          Printf.sprintf "x^2 + y^2 = %.3f" (c *. c),
          [ ("x", 0.0, 1.0); ("y", 0.0, 1.0) ] );
        ( Printf.sprintf "rand-unsat-%d" i,
          Printf.sprintf "x^2 + y^2 >= %.3f" (2.1 +. Random.State.float st 0.5),
          [ ("x", 0.0, 1.0); ("y", 0.0, 1.0) ] ) ])
    [ 0; 1; 2 ]

let test_decide_agreement () =
  List.iter
    (fun (name, fml, dom) ->
      let f = P.formula fml in
      let b = box dom in
      List.iter
        (fun jobs ->
          let cfg = { S.default_config with jobs } in
          let strategies = with_mode Pf.Curated (fun () -> Pf.lineup ()) in
          let kinds =
            List.map
              (fun s -> verdict_kind (S.decide ~config:cfg ~strategy:s f b))
              strategies
          in
          let reference = List.hd kinds in
          List.iteri
            (fun i k ->
              Alcotest.(check string)
                (Printf.sprintf "%s: strategy %d agrees (jobs=%d)" name i jobs)
                reference k)
            kinds;
          let portfolio_kind =
            with_mode Pf.Curated (fun () -> verdict_kind (S.decide ~config:cfg f b))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s: portfolio agrees (jobs=%d)" name jobs)
            reference portfolio_kind)
        [ 1; 2 ])
    (decide_instances @ random_instances)

let test_pave_agreement () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let b = box [ ("x", 0.0, 1.0); ("y", 0.0, 1.0) ] in
  List.iter
    (fun jobs ->
      let cfg = { S.default_config with epsilon = 0.05; jobs } in
      let strategies = with_mode Pf.Curated (fun () -> Pf.lineup ()) in
      (* Every strategy's paving is a partition of the box... *)
      let volumes =
        List.map
          (fun s ->
            let p = S.pave ~config:cfg ~strategy:s f b in
            let sv, uv, dv = S.paving_volumes ~over:[ "x"; "y" ] p in
            Alcotest.(check bool)
              "strategy paving partitions the box" true
              (Float.abs (sv +. uv +. dv -. 1.0) < 1e-9);
            (sv, uv))
          strategies
      in
      (* ...and the certain volumes agree across strategies up to the
         undecided shell (every paving's sat region contains the true
         region minus the shell). *)
      let sat_lo =
        List.fold_left (fun acc (sv, _) -> Stdlib.min acc sv) infinity volumes
      in
      let sat_hi =
        List.fold_left (fun acc (sv, _) -> Stdlib.max acc sv) neg_infinity
          volumes
      in
      Alcotest.(check bool)
        (Printf.sprintf "sat volumes within shell tolerance (jobs=%d)" jobs)
        true
        (sat_hi -. sat_lo < 0.2);
      (* The portfolio's paving partitions too and its sat volume lies in
         the strategies' range (it IS one of the racers' pavings). *)
      with_mode Pf.Curated (fun () ->
          let p = S.pave ~config:cfg f b in
          let sv, uv, dv = S.paving_volumes ~over:[ "x"; "y" ] p in
          Alcotest.(check bool)
            "portfolio paving partitions the box" true
            (Float.abs (sv +. uv +. dv -. 1.0) < 1e-9);
          if Pf.active () then
            Alcotest.(check bool)
              "portfolio sat volume within strategy range" true
              (sv >= sat_lo -. 1e-9 && sv <= sat_hi +. 1e-9)))
    [ 1; 2 ]

let check_stats_equal label (a : S.stats) (b : S.stats) =
  Alcotest.(check (list int))
    label
    [ a.boxes_processed; a.splits; a.prunings; a.max_depth; a.certifications ]
    [ b.boxes_processed; b.splits; b.prunings; b.max_depth; b.certifications ]

let leaf_fingerprint p =
  let dump boxes =
    List.map
      (fun b ->
        String.concat ";"
          (List.map
             (fun (v, itv) -> Printf.sprintf "%s=%h,%h" v (I.lo itv) (I.hi itv))
             (Box.to_list b)))
      boxes
  in
  (dump p.S.sat, dump p.S.unsat, dump p.S.undecided)

let test_kill_switch_reproduces () =
  (* off → on → off: the third run must reproduce the first bit for bit
     (verdict, stats, pave leaf sets in order) — the portfolio leaves no
     residue in the default path (its refutation groups are epoch-keyed
     away from the default groups). *)
  let f = P.formula "x^3 - 2*x^2 + 1.25*x = 0.25 and (x - y)^2 >= 0.3" in
  let b = box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] in
  let cfg = { S.default_config with jobs = 1 } in
  let pcfg = { S.default_config with epsilon = 0.05; jobs = 1 } in
  let run () =
    let r, st = S.decide_with_stats ~config:cfg f b in
    let p, pst = S.pave_with_stats ~config:pcfg f b in
    (verdict_kind r, st, leaf_fingerprint p, pst)
  in
  let k1, st1, leaves1, pst1 = with_mode Pf.Off run in
  let _ = with_mode Pf.Curated run in
  let k3, st3, leaves3, pst3 = with_mode Pf.Off run in
  Alcotest.(check string) "verdict kind reproduced" k1 k3;
  check_stats_equal "decide stats reproduced" st1 st3;
  check_stats_equal "pave stats reproduced" pst1 pst3;
  let s1, u1, d1 = leaves1 and s3, u3, d3 = leaves3 in
  Alcotest.(check (list string)) "sat leaves reproduced" s1 s3;
  Alcotest.(check (list string)) "unsat leaves reproduced" u1 u3;
  Alcotest.(check (list string)) "undecided leaves reproduced" d1 d3

let test_cross_racer_store_sound () =
  (* A robustly-unsat instance that needs real splitting to refute:
     x = y (strict diagonal) against (x - y)^2 >= 0.3.  Racers share
     the race's refutation store; whatever budget forces early racers
     to retire Unknown, a later racer consuming their refutations must
     never be pushed to a δ-sat misclassification — the portfolio
     verdict is Unsat or Unknown, never Delta_sat. *)
  let f = P.formula "x = y and (x - y)^2 >= 0.3" in
  let b = box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] in
  let strategies = with_mode Pf.Curated (fun () -> Pf.lineup ()) in
  List.iter
    (fun jobs ->
      List.iter
        (fun max_boxes ->
          let cfg =
            { S.default_config with epsilon = 0.01; max_boxes; jobs }
          in
          let r = with_mode Pf.Curated (fun () -> S.decide ~config:cfg f b) in
          Alcotest.(check bool)
            (Printf.sprintf "no misclassification (budget=%d jobs=%d)"
               max_boxes jobs)
            true
            (match r with S.Delta_sat _ -> false | _ -> true);
          (* and with a real budget it is refuted, matching every
             single-strategy verdict *)
          if max_boxes >= 100_000 then begin
            Alcotest.(check string) "refuted at full budget" "unsat"
              (verdict_kind r);
            List.iter
              (fun s ->
                Alcotest.(check string) "single strategy also refutes" "unsat"
                  (verdict_kind (S.decide ~config:cfg ~strategy:s f b)))
              strategies
          end)
        [ 10; 50; 100_000 ])
    [ 1; 2 ]

let test_winner_reported () =
  with_mode Pf.Curated (fun () ->
      if Pf.active () then begin
        let f = P.formula "x^2 = 2" in
        let b = box [ ("x", 0.0, 2.0) ] in
        let lineup = Pf.lineup () in
        let rank0 = (List.hd lineup).Pf.name in
        let before = Pf.wins rank0 in
        let r = S.decide f b in
        Alcotest.(check string) "conclusive" "delta-sat" (verdict_kind r);
        (match Pf.last_winner () with
        | None -> Alcotest.fail "no winner recorded after a portfolio race"
        | Some name ->
            Alcotest.(check bool)
              (Printf.sprintf "winner %s is in the lineup" name)
              true
              (List.exists (fun s -> s.Pf.name = name) lineup));
        (* at jobs=1 racers run in rank order, so rank 0 concluding first
           is deterministic *)
        Alcotest.(check string) "rank-0 strategy wins at jobs=1" rank0
          (Option.get (Pf.last_winner ()));
        Alcotest.(check int) "win counter incremented" (before + 1)
          (Pf.wins rank0)
      end)

let test_lineups () =
  let curated = Pf.curated () in
  Alcotest.(check int) "curated lineup has 5 strategies" 5
    (List.length curated);
  Alcotest.(check string) "rank 0 is the plain-HC4 racer" "hc4"
    (List.hd curated).Pf.name;
  let all = Pf.all_strategies () in
  (* 2 branchings × 2 newton × 2 affine × 2 tm × 2 orders, minus the
     smear+rr duplicates (rr ignores the branching heuristic) *)
  Alcotest.(check int) "full product deduped" 24 (List.length all);
  let names = List.map (fun s -> s.Pf.name) all in
  Alcotest.(check int) "strategy names unique"
    (List.length names)
    (List.length (List.sort_uniq compare names))

let () =
  Alcotest.run "portfolio"
    [ ( "lineup",
        [ Alcotest.test_case "curated and full product" `Quick test_lineups ] );
      ( "agreement",
        [ Alcotest.test_case "decide: portfolio = each strategy" `Quick
            test_decide_agreement;
          Alcotest.test_case "pave: partitions and volumes agree" `Quick
            test_pave_agreement ] );
      ( "kill switch",
        [ Alcotest.test_case "off-on-off bit-for-bit" `Quick
            test_kill_switch_reproduces ] );
      ( "shared store",
        [ Alcotest.test_case "cross-racer refutations sound" `Quick
            test_cross_racer_store_sound ] );
      ( "winner",
        [ Alcotest.test_case "recorded and counted" `Quick test_winner_reported ]
      ) ]
