(* Tests for the DBN abstraction (the paper's proposed probabilistic
   extension): the factored abstraction must agree with direct Monte
   Carlo within grid resolution. *)

module G = Dbn.Grid
module M = Dbn.Model

let decay = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ]

(* ---- Grid ---- *)

let test_grid_basics () =
  let a = G.axis ~var:"x" ~lo:0.0 ~hi:1.0 ~cells:10 in
  Alcotest.(check int) "locate interior" 3 (G.locate a 0.35);
  Alcotest.(check int) "locate clamps low" 0 (G.locate a (-5.0));
  Alcotest.(check int) "locate clamps high" 9 (G.locate a 5.0);
  Alcotest.(check int) "boundary cell" 5 (G.locate a 0.5);
  let i = G.cell_interval a 3 in
  Alcotest.(check bool) "cell interval" true
    (Float.abs (Interval.Ia.lo i -. 0.3) < 1e-12
    && Float.abs (Interval.Ia.hi i -. 0.4) < 1e-12);
  Alcotest.(check (float 1e-12)) "cell mid" 0.35 (G.cell_mid a 3)

let test_grid_validation () =
  Alcotest.check_raises "no cells" (Invalid_argument "Grid.axis: need at least one cell")
    (fun () -> ignore (G.axis ~var:"x" ~lo:0.0 ~hi:1.0 ~cells:0));
  Alcotest.check_raises "empty range" (Invalid_argument "Grid.axis: empty range")
    (fun () -> ignore (G.axis ~var:"x" ~lo:1.0 ~hi:1.0 ~cells:4));
  Alcotest.check_raises "duplicate var" (Invalid_argument "Grid.create: duplicate variable")
    (fun () ->
      ignore
        (G.create
           [ G.axis ~var:"x" ~lo:0.0 ~hi:1.0 ~cells:2;
             G.axis ~var:"x" ~lo:0.0 ~hi:2.0 ~cells:2 ]))

let test_grid_cells_where () =
  let g = G.create [ G.axis ~var:"x" ~lo:0.0 ~hi:1.0 ~cells:10 ] in
  let cells = G.cells_where g "x" (fun mid -> mid <= 0.5) in
  Alcotest.(check (list int)) "lower half" [ 0; 1; 2; 3; 4 ] cells

(* ---- DBN on exponential decay ---- *)

let decay_grid = G.create [ G.axis ~var:"x" ~lo:0.0 ~hi:1.5 ~cells:15 ]

let decay_dbn ?(samples = 1500) () =
  M.learn
    ~config:{ M.default_learn with M.samples }
    ~grid:decay_grid ~slices:10 ~horizon:2.0
    ~init_dist:[ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ]
    ~param_dist:[] decay

let test_dbn_structure () =
  let m = decay_dbn ~samples:200 () in
  Alcotest.(check int) "slices" 10 (M.slice_count m);
  Alcotest.(check (float 1e-12)) "dt" 0.2 (M.dt m)

let test_dbn_matches_monte_carlo () =
  let m = decay_dbn () in
  let init_belief =
    M.belief_of_dist m [ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ]
  in
  (* P(x <= 0.5 at t = 1): x(1) = x0 e^-1 ∈ [0.294, 0.442] — always. *)
  let p1 = M.probability m ~init_belief ~var:"x" ~time:1.0 (fun x -> x <= 0.5) in
  Alcotest.(check bool) (Printf.sprintf "p1 = %.3f near 1" p1) true (p1 > 0.85);
  (* P(x <= 0.5 at t = 0.4): x(0.4) ∈ [0.536, 0.804] — never. *)
  let p2 = M.probability m ~init_belief ~var:"x" ~time:0.4 (fun x -> x <= 0.5) in
  Alcotest.(check bool) (Printf.sprintf "p2 = %.3f near 0" p2) true (p2 < 0.15);
  (* intermediate time: compare against direct Monte Carlo *)
  let t_mid = 0.8 in
  let mc =
    let rng = Random.State.make [| 77 |] in
    let hits = ref 0 and n = 4000 in
    for _ = 1 to n do
      let x0 = 0.8 +. Random.State.float rng 0.4 in
      if x0 *. Float.exp (-.t_mid) <= 0.5 then incr hits
    done;
    float_of_int !hits /. float_of_int n
  in
  let pd = M.probability m ~init_belief ~var:"x" ~time:t_mid (fun x -> x <= 0.5) in
  Alcotest.(check bool)
    (Printf.sprintf "DBN %.3f vs MC %.3f" pd mc)
    true
    (Float.abs (pd -. mc) < 0.15)

let test_dbn_marginals_are_distributions () =
  let m = decay_dbn ~samples:400 () in
  let beliefs = M.propagate m ~init_belief:(M.uniform_belief m) in
  List.iter
    (fun belief ->
      let marg = Dbn.Model.SMap.find "x" belief in
      let total = Array.fold_left ( +. ) 0.0 marg in
      Alcotest.(check (float 1e-6)) "marginal sums to 1" 1.0 total;
      Array.iter (fun p -> Alcotest.(check bool) "probability in [0,1]" true (0.0 <= p && p <= 1.0)) marg)
    beliefs

(* ---- Two-variable system: factored structure ---- *)

let cascade =
  Ode.System.of_strings ~vars:[ "a"; "b" ] ~params:[]
    ~rhs:[ ("a", "-a"); ("b", "a - b") ]

let test_dbn_factored_parents () =
  let grid =
    G.create
      [ G.axis ~var:"a" ~lo:0.0 ~hi:1.2 ~cells:8;
        G.axis ~var:"b" ~lo:0.0 ~hi:1.2 ~cells:8 ]
  in
  let m =
    M.learn
      ~config:{ M.default_learn with M.samples = 800 }
      ~grid ~slices:8 ~horizon:2.0
      ~init_dist:[ ("a", Smc.Sampler.Uniform (0.9, 1.1)); ("b", Smc.Sampler.Constant 0.0) ]
      ~param_dist:[] cascade
  in
  (* b starts at 0, rises (driven by a), then decays: its probability of
     exceeding 0.25 should be higher at t=1 than at t=0.25. *)
  let init_belief =
    M.belief_of_dist m
      [ ("a", Smc.Sampler.Uniform (0.9, 1.1)); ("b", Smc.Sampler.Constant 0.0) ]
  in
  let p_early = M.probability m ~init_belief ~var:"b" ~time:0.25 (fun b -> b >= 0.25) in
  let p_mid = M.probability m ~init_belief ~var:"b" ~time:1.0 (fun b -> b >= 0.25) in
  Alcotest.(check bool)
    (Printf.sprintf "b rises: %.3f -> %.3f" p_early p_mid)
    true (p_mid > p_early +. 0.3)

let test_dbn_validation () =
  Alcotest.check_raises "bad slices" (Invalid_argument "Dbn.learn: need at least one slice")
    (fun () ->
      ignore
        (M.learn ~grid:decay_grid ~slices:0 ~horizon:1.0 ~init_dist:[] ~param_dist:[]
           decay));
  Alcotest.check_raises "grid misses var"
    (Invalid_argument "Dbn.learn: grid misses state variable \"a\"") (fun () ->
      ignore
        (M.learn ~grid:decay_grid ~slices:2 ~horizon:1.0 ~init_dist:[] ~param_dist:[]
           cascade))

let () =
  Alcotest.run "dbn"
    [
      ( "grid",
        [
          Alcotest.test_case "basics" `Quick test_grid_basics;
          Alcotest.test_case "validation" `Quick test_grid_validation;
          Alcotest.test_case "cells where" `Quick test_grid_cells_where;
        ] );
      ( "model",
        [
          Alcotest.test_case "structure" `Quick test_dbn_structure;
          Alcotest.test_case "matches monte carlo" `Quick test_dbn_matches_monte_carlo;
          Alcotest.test_case "marginals normalized" `Quick test_dbn_marginals_are_distributions;
          Alcotest.test_case "factored cascade" `Quick test_dbn_factored_parents;
          Alcotest.test_case "validation" `Quick test_dbn_validation;
        ] );
    ]
