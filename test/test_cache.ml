(* Differential tests: cached vs uncached analyses.

   The Exact policy (the default) only replays results for boxes equal
   to a previously queried one, and every cached computation is a
   deterministic function of its key — so decide, pave, flow and
   synthesize must produce *identical* answers with the caches on, off,
   and pre-populated.  The Warm policy relaxes identity to soundness
   (subsumption reuse, warm-started enclosures), which we check against
   ground truth instead: refutations stay refutations, enclosures still
   contain sampled trajectories, and All_fit boxes really fit the data. *)

module I = Interval.Ia
module Box = Interval.Box
module T = Expr.Term
module F = Expr.Formula
module S = Icp.Solver
module Enc = Ode.Enclosure
module B = Synth.Biopsy
module D = Synth.Data

(* Every run below clears the caches before and after, so tests are
   independent of execution order and of each other's populations. *)
let with_policy p f =
  Cache.clear ();
  Cache.set_policy p;
  Fun.protect
    ~finally:(fun () ->
      Cache.clear_policy_override ();
      Cache.clear ())
    f

(* ---- random generators (deterministic seeds) ---- *)

let vars = [ "x"; "y" ]
let nvars = List.length vars

let rand_leaf st =
  if Random.State.bool st then T.var (List.nth vars (Random.State.int st nvars))
  else T.const (Random.State.float st 4.0 -. 2.0)

let rec rand_term st depth =
  if depth = 0 then rand_leaf st
  else
    let sub () = rand_term st (depth - 1) in
    match Random.State.int st 8 with
    | 0 -> T.add (sub ()) (sub ())
    | 1 -> T.sub (sub ()) (sub ())
    | 2 -> T.mul (sub ()) (sub ())
    | 3 -> T.neg (sub ())
    | 4 -> T.pow (sub ()) (1 + Random.State.int st 3)
    | 5 -> T.sin (sub ())
    | 6 -> T.min_ (sub ()) (sub ())
    | _ -> rand_leaf st

let rand_formula st =
  let atom () =
    F.atom (if Random.State.bool st then F.Gt else F.Ge)
      (rand_term st (1 + Random.State.int st 3))
  in
  match Random.State.int st 4 with
  | 0 -> atom ()
  | 1 -> F.and_ [ atom (); atom () ]
  | 2 -> F.or_ [ atom (); atom () ]
  | _ -> F.and_ [ F.or_ [ atom (); atom () ]; atom () ]

let rand_box st =
  Box.of_list
    (List.map
       (fun v ->
         let a = Random.State.float st 4.0 -. 2.0 in
         let w = Random.State.float st 2.0 in
         (v, I.make a (a +. w)))
       vars)

(* ---- result / paving equality ---- *)

let result_eq a b =
  match (a, b) with
  | S.Unsat, S.Unsat -> true
  | S.Unknown x, S.Unknown y -> String.equal x y
  | S.Delta_sat w1, S.Delta_sat w2 ->
      w1.S.certified = w2.S.certified
      && Box.equal w1.S.box w2.S.box
      && List.length w1.S.point = List.length w2.S.point
      && List.for_all2
           (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && v1 = v2)
           w1.S.point w2.S.point
  | _ -> false

let pp_res r = Fmt.str "%a" S.pp_result r

let sorted_boxes bs = List.sort compare (List.map Box.to_string bs)

let paving_eq (p1 : S.paving) (p2 : S.paving) =
  sorted_boxes p1.S.sat = sorted_boxes p2.S.sat
  && sorted_boxes p1.S.unsat = sorted_boxes p2.S.unsat
  && sorted_boxes p1.S.undecided = sorted_boxes p2.S.undecided

(* ---- decide: cached = uncached, including a pre-populated cache ---- *)

let decide_config jobs =
  { S.default_config with epsilon = 1e-2; max_boxes = 5_000; jobs }

let test_decide_differential () =
  let st = Random.State.make [| 2026 |] in
  for case = 1 to 400 do
    let f = rand_formula st and b = rand_box st in
    let config = decide_config 1 in
    let off = with_policy Cache.Off (fun () -> S.decide ~config f b) in
    let cold, warm =
      with_policy Cache.Exact (fun () ->
          (* second call answers from the populated cache *)
          let r1 = S.decide ~config f b in
          let r2 = S.decide ~config f b in
          (r1, r2))
    in
    if not (result_eq off cold) then
      Alcotest.failf "case %d: off=%s cached=%s on %s | %s" case (pp_res off)
        (pp_res cold) (Fmt.str "%a" F.pp f) (Box.to_string b);
    if not (result_eq off warm) then
      Alcotest.failf "case %d: off=%s replay=%s on %s" case (pp_res off)
        (pp_res warm)
        (Fmt.str "%a" F.pp f)
  done

let test_decide_differential_parallel () =
  let st = Random.State.make [| 2027 |] in
  for case = 1 to 60 do
    let f = rand_formula st and b = rand_box st in
    let off = with_policy Cache.Off (fun () -> S.decide ~config:(decide_config 2) f b) in
    let on = with_policy Cache.Exact (fun () -> S.decide ~config:(decide_config 2) f b) in
    (* Parallel searches stop at the first δ-sat found, so only the
       verdict kind is deterministic across runs. *)
    let kind = function
      | S.Unsat -> "unsat" | S.Delta_sat _ -> "sat" | S.Unknown _ -> "unknown"
    in
    if kind off <> kind on then
      Alcotest.failf "case %d (jobs=2): off=%s cached=%s" case (pp_res off)
        (pp_res on)
  done

(* Regression: the refuted-box store must key on each atom's relation.
   Contraction erases strictness (x > 0 and x >= 0 share a constraint
   fingerprint), but the sat_possible pruning does not: on [-1, 0] at
   δ = 0 the strict atom is refuted while the non-strict one is δ-sat at
   the boundary.  A conflated key replays the strict refutation and
   returns a wrong Unsat for x >= 0. *)
let test_strictness_not_conflated () =
  let config = { S.default_config with delta = 0.0 } in
  let b = Box.of_list [ ("x", I.make (-1.0) 0.0) ] in
  let gt = F.gt (T.var "x") (T.const 0.0) in
  let ge = F.ge (T.var "x") (T.const 0.0) in
  with_policy Cache.Exact (fun () ->
      (match S.decide ~config gt b with
      | S.Unsat -> ()
      | r -> Alcotest.failf "x>0 on [-1,0] must be unsat, got %s" (pp_res r));
      match S.decide ~config ge b with
      | S.Delta_sat _ -> ()
      | r ->
          Alcotest.failf
            "x>=0 on [-1,0] must be delta-sat (strict refutation must not \
             replay), got %s"
            (pp_res r))

(* ---- pave: identical leaf sets ---- *)

let test_pave_differential () =
  let st = Random.State.make [| 2028 |] in
  let config = { S.default_config with epsilon = 0.25; max_boxes = 2_000 } in
  for case = 1 to 300 do
    let f = rand_formula st and b = rand_box st in
    let off = with_policy Cache.Off (fun () -> S.pave ~config f b) in
    let cold, replay =
      with_policy Cache.Exact (fun () ->
          (S.pave ~config f b, S.pave ~config f b))
    in
    if not (paving_eq off cold) then
      Alcotest.failf "case %d: pavings differ (off vs cached) on %s" case
        (Fmt.str "%a" F.pp f);
    if not (paving_eq off replay) then
      Alcotest.failf "case %d: pavings differ (off vs replay) on %s" case
        (Fmt.str "%a" F.pp f);
    let vols p = S.paving_volumes ~over:vars p in
    if vols off <> vols cold then
      Alcotest.failf "case %d: paving volumes differ" case
  done

(* ---- flow: identical tubes, and exact hits return the same tube ---- *)

let decay2 =
  Ode.System.of_strings ~vars:[ "u"; "v" ] ~params:[ "k" ]
    ~rhs:[ ("u", "-k*u"); ("v", "k*u - 0.5*v") ]

let rand_flow_query st =
  let k0 = 0.4 +. Random.State.float st 1.0 in
  let kw = Random.State.float st 0.3 in
  let u0 = 0.5 +. Random.State.float st 1.0 in
  let params = Box.of_list [ ("k", I.make k0 (k0 +. kw)) ] in
  let init =
    Box.of_list
      [ ("u", I.make u0 (u0 +. 0.05)); ("v", I.of_float 0.0) ]
  in
  let t_end = if Random.State.bool st then 0.5 else 1.0 in
  (params, init, t_end)

let step_eq (a : Enc.step) (b : Enc.step) =
  a.Enc.t_lo = b.Enc.t_lo && a.Enc.t_hi = b.Enc.t_hi
  && Box.equal a.Enc.enclosure b.Enc.enclosure
  && Box.equal a.Enc.at_end b.Enc.at_end

let tube_eq (a : Enc.tube) (b : Enc.tube) =
  a.Enc.vars = b.Enc.vars && a.Enc.t_end = b.Enc.t_end
  && a.Enc.complete = b.Enc.complete
  && Box.equal a.Enc.final b.Enc.final
  && List.length a.Enc.steps = List.length b.Enc.steps
  && List.for_all2 step_eq a.Enc.steps b.Enc.steps

let test_flow_differential () =
  let st = Random.State.make [| 2029 |] in
  for case = 1 to 200 do
    let params, init, t_end = rand_flow_query st in
    let off =
      with_policy Cache.Off (fun () ->
          Enc.flow ~params ~init ~t_end decay2)
    in
    let cold, hit =
      with_policy Cache.Exact (fun () ->
          let t1 = Enc.flow ~params ~init ~t_end decay2 in
          let t2 = Enc.flow ~params ~init ~t_end decay2 in
          (t1, t2))
    in
    if not (tube_eq off cold) then Alcotest.failf "case %d: tubes differ" case;
    if not (hit == cold) then
      Alcotest.failf "case %d: exact hit did not return the cached tube" case
  done

(* ---- biopsy: identical pavings, sequential and parallel ---- *)

let decay_k =
  Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]

let decay_data tol =
  List.map
    (fun t -> D.point ~time:t ~var:"x" ~value:(Float.exp (-.t)) ~tolerance:tol)
    [ 0.25; 0.5; 0.75; 1.0 ]

let rand_biopsy_problem st =
  let tol = 0.05 +. Random.State.float st 0.2 in
  let lo = 0.2 +. Random.State.float st 0.4 in
  let hi = lo +. 0.5 +. Random.State.float st 2.0 in
  B.problem ~sys:decay_k
    ~param_box:(Box.of_list [ ("k", I.make lo hi) ])
    ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
    ~data:(decay_data tol)

let biopsy_result_eq (a : B.result) (b : B.result) =
  sorted_boxes a.B.consistent = sorted_boxes b.B.consistent
  && sorted_boxes a.B.inconsistent = sorted_boxes b.B.inconsistent
  && sorted_boxes a.B.undecided = sorted_boxes b.B.undecided

let test_biopsy_differential () =
  let st = Random.State.make [| 2030 |] in
  let config = { B.default_config with epsilon = 0.05; max_boxes = 800 } in
  for case = 1 to 40 do
    let prob = rand_biopsy_problem st in
    let off = with_policy Cache.Off (fun () -> B.synthesize ~config prob) in
    let cold, replay =
      with_policy Cache.Exact (fun () ->
          (B.synthesize ~config prob, B.synthesize ~config prob))
    in
    if not (biopsy_result_eq off cold) then
      Alcotest.failf "case %d: pavings differ (off vs cached)" case;
    if not (biopsy_result_eq off replay) then
      Alcotest.failf "case %d: pavings differ (off vs replay)" case;
    if off.B.boxes_explored <> cold.B.boxes_explored then
      Alcotest.failf "case %d: explored %d (off) vs %d (cached)" case
        off.B.boxes_explored cold.B.boxes_explored;
    (* Parallel paving with a shared cache: same leaves. *)
    let par =
      with_policy Cache.Exact (fun () ->
          B.synthesize ~config:{ config with jobs = 2 } prob)
    in
    if not (biopsy_result_eq off par) then
      Alcotest.failf "case %d: pavings differ (off vs cached jobs=2)" case
  done

(* ---- Warm policy: sound, checked against ground truth ---- *)

(* An Unsat verdict is a proof; caching must never flip one.  Decide the
   full box first (populating the refuted-box store), then sub-boxes:
   under Warm those may be answered by subsumption, and any Unsat must
   agree with the uncached answer. *)
let test_warm_decide_sound () =
  let st = Random.State.make [| 2031 |] in
  let config = decide_config 1 in
  for case = 1 to 150 do
    let f = rand_formula st and b = rand_box st in
    let shrink b =
      Box.of_list
        (List.map
           (fun (v, itv) ->
             let w = I.width itv in
             (v, I.make (I.lo itv +. (0.25 *. w)) (I.hi itv -. (0.25 *. w))))
           (Box.to_list b))
    in
    let sub = shrink b in
    let off_sub = with_policy Cache.Off (fun () -> S.decide ~config f sub) in
    let warm_sub =
      with_policy Cache.Warm (fun () ->
          ignore (S.decide ~config f b);
          S.decide ~config f sub)
    in
    match (off_sub, warm_sub) with
    | S.Delta_sat _, S.Unsat ->
        Alcotest.failf "case %d: warm cache flipped sat to unsat on %s" case
          (Fmt.str "%a" F.pp f)
    | S.Unsat, S.Delta_sat _ ->
        Alcotest.failf "case %d: warm cache flipped unsat to sat on %s" case
          (Fmt.str "%a" F.pp f)
    | _ -> ()
  done

(* A warm-started tube must still contain a numerically sampled
   trajectory from the midpoint of the (sub-)query. *)
let trajectory_inside tube ~params ~init =
  let env = Box.mid_env params and ienv = Box.mid_env init in
  let tr =
    Ode.Integrate.simulate ~params:env ~init:ienv
      ~t_end:tube.Enc.t_end decay2
  in
  List.for_all
    (fun (s : Enc.step) ->
      let t = 0.5 *. (s.Enc.t_lo +. s.Enc.t_hi) in
      let state = Ode.Integrate.state_at tr t in
      List.for_all2
        (fun v x ->
          (* generous slack: the sampled trajectory is itself approximate *)
          let itv = Box.find v s.Enc.enclosure in
          x >= I.lo itv -. 1e-6 && x <= I.hi itv +. 1e-6)
        tube.Enc.vars (Array.to_list state))
    tube.Enc.steps

let test_warm_flow_sound () =
  let st = Random.State.make [| 2032 |] in
  for case = 1 to 50 do
    let params, init, t_end = rand_flow_query st in
    let shrink b =
      Box.map
        (fun itv ->
          let w = I.width itv in
          I.make (I.lo itv +. (0.3 *. w)) (I.hi itv -. (0.3 *. w)))
        b
    in
    let sub_params = shrink params and sub_init = shrink init in
    let tube =
      with_policy Cache.Warm (fun () ->
          ignore (Enc.flow ~params ~init ~t_end decay2);
          Enc.flow ~params:sub_params ~init:sub_init ~t_end decay2)
    in
    if tube.Enc.complete && not (trajectory_inside tube ~params:sub_params ~init:sub_init)
    then Alcotest.failf "case %d: warm tube does not enclose trajectory" case
  done

(* Under Warm, every box synthesize proves consistent must really fit:
   its midpoint trajectory passes through all bands. *)
let test_warm_biopsy_sound () =
  let st = Random.State.make [| 2033 |] in
  let config = { B.default_config with epsilon = 0.05; max_boxes = 800 } in
  for case = 1 to 20 do
    let prob = rand_biopsy_problem st in
    let r =
      with_policy Cache.Warm (fun () ->
          ignore (B.synthesize ~config prob);
          (* refine: the sub-box reuses parental verdicts *)
          B.synthesize ~config { prob with B.param_box = prob.B.param_box })
    in
    List.iter
      (fun cbox ->
        let params = Box.mid_env cbox in
        let tr =
          Ode.Integrate.simulate ~params ~init:(Box.mid_env prob.B.init)
            ~t_end:(D.horizon prob.B.data) decay_k
        in
        if not (D.consistent_with_trace prob.B.data tr) then
          Alcotest.failf "case %d: consistent box %s rejects its midpoint" case
            (Box.to_string cbox))
      r.B.consistent
  done

(* ---- BIOMC_NO_CACHE / Off reproduces the uncached path ---- *)

let test_off_is_identity () =
  let st = Random.State.make [| 2034 |] in
  for case = 1 to 50 do
    let f = rand_formula st and b = rand_box st in
    let r1 = with_policy Cache.Off (fun () -> S.decide f b) in
    let r2 = with_policy Cache.Off (fun () -> S.decide f b) in
    if not (result_eq r1 r2) then Alcotest.failf "case %d: Off not deterministic" case
  done;
  (* Off: no lookups, no inserts. *)
  with_policy Cache.Off (fun () ->
      let c : int Cache.t = Cache.create "test-off" in
      let b = Box.of_list [ ("x", I.make 0.0 1.0) ] in
      Cache.add c ~group:"g" b 1;
      Alcotest.(check int) "no insert under Off" 0 (Cache.length c);
      match Cache.find c ~group:"g" b with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "Off must always miss")

(* ---- cache mechanics units ---- *)

let mkbox lo hi = Box.of_list [ ("x", I.make lo hi) ]

let test_exact_hit_identity () =
  with_policy Cache.Exact (fun () ->
      let c : string list Cache.t = Cache.create "test-unit" in
      let v = [ "a"; "b" ] in
      Cache.add c ~group:"g" (mkbox 0.0 1.0) v;
      match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Hit v' -> Alcotest.(check bool) "physically equal" true (v == v')
      | _ -> Alcotest.fail "expected exact hit")

let test_subsumption_tightest () =
  with_policy Cache.Warm (fun () ->
      let c : int Cache.t = Cache.create "test-unit" in
      Cache.add c ~group:"g" (mkbox (-4.0) 4.0) 1;
      Cache.add c ~group:"g" (mkbox (-1.0) 1.0) 2;
      Cache.add c ~group:"g" (mkbox 5.0 9.0) 3;
      (match Cache.find c ~group:"g" (mkbox (-0.5) 0.5) with
      | Cache.Subsumed (eb, v) ->
          Alcotest.(check int) "tightest container wins" 2 v;
          Alcotest.(check bool) "its box" true (Box.equal eb (mkbox (-1.0) 1.0))
      | Cache.Hit _ -> Alcotest.fail "no exact entry exists"
      | Cache.Miss -> Alcotest.fail "expected subsumption hit");
      (* no containment → miss, even under Warm *)
      match Cache.find c ~group:"g" (mkbox 3.0 6.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "expected miss")

let test_exact_policy_no_subsumption () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-unit" in
      Cache.add c ~group:"g" (mkbox (-4.0) 4.0) 1;
      match Cache.find c ~group:"g" (mkbox (-0.5) 0.5) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "Exact policy must not subsume")

let test_group_isolation () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-unit" in
      Cache.add c ~group:"g1" (mkbox 0.0 1.0) 1;
      match Cache.find c ~group:"g2" (mkbox 0.0 1.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "groups must be isolated")

let test_capacity_eviction () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create ~group_capacity:4 "test-unit" in
      for i = 0 to 9 do
        Cache.add c ~group:"g" (mkbox 0.0 (float_of_int i +. 1.0)) i
      done;
      Alcotest.(check int) "capacity bound" 4 (Cache.length c);
      (* newest entries survive FIFO truncation *)
      (match Cache.find c ~group:"g" (mkbox 0.0 10.0) with
      | Cache.Hit 9 -> ()
      | _ -> Alcotest.fail "newest entry must survive");
      match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "oldest entry must be evicted")

let test_replace_equal_box () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-unit" in
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 1;
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 2;
      Alcotest.(check int) "replaced, not duplicated" 1 (Cache.length c);
      match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Hit 2 -> ()
      | _ -> Alcotest.fail "replacement must win")

(* Replacing a key keeps its first-insertion slot in the eviction order
   (and adds no queue growth): after a replace, the key is still the
   oldest and evicts first once capacity is exceeded. *)
let test_replace_keeps_fifo_slot () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create ~group_capacity:2 "test-unit" in
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 1;
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 10;
      Cache.add c ~group:"g" (mkbox 0.0 2.0) 2;
      Cache.add c ~group:"g" (mkbox 0.0 3.0) 3;
      Alcotest.(check int) "capacity bound" 2 (Cache.length c);
      (match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "replaced key must still evict first");
      match Cache.find c ~group:"g" (mkbox 0.0 3.0) with
      | Cache.Hit 3 -> ()
      | _ -> Alcotest.fail "newest entry must survive")

(* A contractor closure built while the policy is Off must start caching
   after set_policy enables it (the policy is read per call, not baked in
   at closure creation). *)
let test_contractor_policy_flip () =
  Cache.clear ();
  Cache.set_policy Cache.Off;
  let a = { F.term = T.sub (T.var "x") (T.const 0.5); rel = F.Ge } in
  let contract =
    Icp.Contractor.contractor [ Icp.Contractor.of_atom ~delta:0.0 a ]
  in
  Fun.protect
    ~finally:(fun () ->
      Cache.clear_policy_override ();
      Cache.clear ())
    (fun () ->
      Cache.set_policy Cache.Exact;
      let b = Box.of_list [ ("x", I.make 0.0 1.0) ] in
      let before = Cache.global_stats () in
      let r1 = contract b in
      let r2 = contract b in
      (match (r1, r2) with
      | Some b1, Some b2 ->
          Alcotest.(check bool) "same contraction" true (Box.equal b1 b2)
      | None, None -> ()
      | _ -> Alcotest.fail "cached and fresh contraction disagree");
      let d = Cache.sub_stats (Cache.global_stats ()) before in
      Alcotest.(check bool) "second call hits" true (d.Cache.hits >= 1))

(* Warm-start iteration accounting is signed: a costlier-than-parent warm
   run subtracts, so the aggregate is the net savings. *)
let test_warm_saved_signed () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-warm-net" in
      let before = Cache.global_stats () in
      Cache.note_warm_start c ~saved_iterations:5;
      Cache.note_warm_start c ~saved_iterations:(-2);
      let d = Cache.sub_stats (Cache.global_stats ()) before in
      Alcotest.(check int) "two warm starts" 2 d.Cache.warm_starts;
      Alcotest.(check int) "net savings" 3 d.Cache.warm_saved_iterations)

let test_clear_invalidates () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-unit" in
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 1;
      Cache.clear ();
      (match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "clear must invalidate");
      (* the cache is usable again after a clear *)
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 2;
      match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Hit 2 -> ()
      | _ -> Alcotest.fail "cache must accept inserts after clear")

let test_stats_counting () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-stats" in
      let before = Cache.global_stats () in
      ignore (Cache.find c ~group:"g" (mkbox 0.0 1.0));
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 1;
      ignore (Cache.find c ~group:"g" (mkbox 0.0 1.0));
      let d = Cache.sub_stats (Cache.global_stats ()) before in
      Alcotest.(check int) "one miss" 1 d.Cache.misses;
      Alcotest.(check int) "one hit" 1 d.Cache.hits;
      Alcotest.(check int) "one insertion" 1 d.Cache.insertions;
      Alcotest.(check bool) "named stats include test-stats" true
        (List.mem_assoc "test-stats" (Cache.named_stats ())))

(* ---- auto-demote of hitless groups ---- *)

(* A group accumulating [demote_after] consecutive misses with zero
   lifetime hits switches itself off: entries dropped, later adds and
   finds are no-ops, one demotion recorded. *)
let test_demote_hitless_group () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create ~demote_after:3 "test-demote" in
      let before = Cache.demotions c in
      (* The group record only exists after the first add; misses on a
         nonexistent group don't count toward any streak. *)
      ignore (Cache.find c ~group:"g" (mkbox 0.0 1.0));
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 0;
      for i = 1 to 3 do
        match Cache.find c ~group:"g" (mkbox 0.0 (1.0 +. float_of_int i)) with
        | Cache.Miss -> ()
        | _ -> Alcotest.fail "distinct boxes must miss"
      done;
      Alcotest.(check int) "one demotion" (before + 1) (Cache.demotions c);
      Alcotest.(check int) "entries dropped" 0 (Cache.length c);
      (* Demoted: adds are dropped, so the exact box that was just added
         still misses. *)
      Cache.add c ~group:"g" (mkbox 5.0 6.0) 42;
      (match Cache.find c ~group:"g" (mkbox 5.0 6.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "demoted group must not serve hits");
      (* Other groups of the same cache are unaffected. *)
      Cache.add c ~group:"h" (mkbox 0.0 1.0) 7;
      match Cache.find c ~group:"h" (mkbox 0.0 1.0) with
      | Cache.Hit 7 -> ()
      | _ -> Alcotest.fail "sibling group must still work")

(* Any hit grants permanent immunity: a group that hit once never
   demotes, no matter how long its later miss streak runs. *)
let test_demote_immunity_after_hit () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create ~demote_after:3 "test-demote" in
      let before = Cache.demotions c in
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 1;
      (match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Hit 1 -> ()
      | _ -> Alcotest.fail "expected hit");
      for i = 1 to 20 do
        ignore (Cache.find c ~group:"g" (mkbox 0.0 (1.0 +. float_of_int i)))
      done;
      Alcotest.(check int) "no demotion" before (Cache.demotions c);
      match Cache.find c ~group:"g" (mkbox 0.0 1.0) with
      | Cache.Hit 1 -> ()
      | _ -> Alcotest.fail "immune group must keep serving hits")

(* An epoch bump re-arms demoted groups: the group record is discarded
   with the rest of the shard, so the fresh group caches again. *)
let test_demote_rearmed_by_clear () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create ~demote_after:2 "test-demote" in
      Cache.add c ~group:"g" (mkbox 0.0 1.0) 0;
      for i = 1 to 2 do
        ignore (Cache.find c ~group:"g" (mkbox 0.0 (1.0 +. float_of_int i)))
      done;
      Cache.add c ~group:"g" (mkbox 5.0 6.0) 42;
      (match Cache.find c ~group:"g" (mkbox 5.0 6.0) with
      | Cache.Miss -> ()
      | _ -> Alcotest.fail "expected demoted group");
      Cache.clear ();
      Cache.add c ~group:"g" (mkbox 5.0 6.0) 42;
      match Cache.find c ~group:"g" (mkbox 5.0 6.0) with
      | Cache.Hit 42 -> ()
      | _ -> Alcotest.fail "clear must re-arm demoted groups")

let test_concurrent_access () =
  with_policy Cache.Exact (fun () ->
      let c : int Cache.t = Cache.create "test-unit" in
      let domains =
        List.init 4 (fun d ->
            Domain.spawn (fun () ->
                for i = 0 to 249 do
                  let b = mkbox 0.0 (float_of_int ((i mod 25) + 1)) in
                  let g = Printf.sprintf "g%d" (i mod 3) in
                  (match Cache.find c ~group:g b with
                  | Cache.Hit v -> assert (v = i mod 25)
                  | _ -> Cache.add c ~group:g b (i mod 25))
                done;
                d))
      in
      let done_ = List.map Domain.join domains in
      Alcotest.(check (list int)) "all domains joined" [ 0; 1; 2; 3 ] done_)

let () =
  Alcotest.run "cache"
    [ ( "differential",
        [ Alcotest.test_case "decide off=exact=replay" `Quick
            test_decide_differential;
          Alcotest.test_case "decide jobs=2" `Quick
            test_decide_differential_parallel;
          Alcotest.test_case "pave off=exact=replay" `Quick
            test_pave_differential;
          Alcotest.test_case "flow off=exact, hit identity" `Quick
            test_flow_differential;
          Alcotest.test_case "biopsy off=exact=replay, jobs=2" `Quick
            test_biopsy_differential;
          Alcotest.test_case "Off reproduces uncached" `Quick
            test_off_is_identity;
          Alcotest.test_case "strictness not conflated in refuted store"
            `Quick test_strictness_not_conflated ] );
      ( "warm soundness",
        [ Alcotest.test_case "decide verdicts never flip" `Quick
            test_warm_decide_sound;
          Alcotest.test_case "warm tube encloses trajectory" `Quick
            test_warm_flow_sound;
          Alcotest.test_case "consistent boxes really fit" `Quick
            test_warm_biopsy_sound ] );
      ( "mechanics",
        [ Alcotest.test_case "exact hit identity" `Quick test_exact_hit_identity;
          Alcotest.test_case "subsumption tightest" `Quick
            test_subsumption_tightest;
          Alcotest.test_case "exact never subsumes" `Quick
            test_exact_policy_no_subsumption;
          Alcotest.test_case "group isolation" `Quick test_group_isolation;
          Alcotest.test_case "capacity eviction" `Quick test_capacity_eviction;
          Alcotest.test_case "replace equal box" `Quick test_replace_equal_box;
          Alcotest.test_case "replace keeps FIFO slot" `Quick
            test_replace_keeps_fifo_slot;
          Alcotest.test_case "contractor follows policy flips" `Quick
            test_contractor_policy_flip;
          Alcotest.test_case "warm savings are signed" `Quick
            test_warm_saved_signed;
          Alcotest.test_case "clear invalidates" `Quick test_clear_invalidates;
          Alcotest.test_case "stats counting" `Quick test_stats_counting;
          Alcotest.test_case "demote hitless group" `Quick
            test_demote_hitless_group;
          Alcotest.test_case "hit grants demote immunity" `Quick
            test_demote_immunity_after_hit;
          Alcotest.test_case "clear re-arms demoted groups" `Quick
            test_demote_rearmed_by_clear;
          Alcotest.test_case "concurrent access" `Quick test_concurrent_access ] ) ]
