(* Unit and property tests for the interval arithmetic substrate. *)

module I = Interval.Ia
module Box = Interval.Box

let check_mem what x i =
  Alcotest.(check bool) (Printf.sprintf "%s: %.17g ∈ %s" what x (I.to_string i)) true (I.mem x i)

(* ---- Unit tests ---- *)

let test_construction () =
  let i = I.make 1.0 2.0 in
  Alcotest.(check (float 0.0)) "lo" 1.0 (I.lo i);
  Alcotest.(check (float 0.0)) "hi" 2.0 (I.hi i);
  Alcotest.(check bool) "mem mid" true (I.mem 1.5 i);
  Alcotest.(check bool) "not mem" false (I.mem 2.5 i);
  Alcotest.check_raises "lo > hi" (Invalid_argument "Ia.make: lo > hi") (fun () ->
      ignore (I.make 2.0 1.0));
  Alcotest.(check bool) "empty is empty" true (I.is_empty I.empty);
  Alcotest.(check bool) "nan makes empty" true (I.is_empty (I.make nan 1.0))

let test_lattice () =
  let a = I.make 0.0 2.0 and b = I.make 1.0 3.0 and c = I.make 5.0 6.0 in
  Alcotest.(check bool) "overlap" true (I.overlap a b);
  Alcotest.(check bool) "no overlap" false (I.overlap a c);
  Alcotest.(check bool) "inter" true (I.equal (I.inter a b) (I.make 1.0 2.0));
  Alcotest.(check bool) "disjoint inter empty" true (I.is_empty (I.inter a c));
  Alcotest.(check bool) "hull" true (I.equal (I.hull a c) (I.make 0.0 6.0));
  Alcotest.(check bool) "subset" true (I.subset (I.make 1.0 1.5) a);
  Alcotest.(check bool) "not subset" false (I.subset b a);
  Alcotest.(check bool) "empty subset of all" true (I.subset I.empty a)

let test_midpoint_width () =
  let i = I.make 1.0 3.0 in
  Alcotest.(check (float 1e-12)) "mid" 2.0 (I.mid i);
  Alcotest.(check bool) "width >= 2" true (I.width i >= 2.0);
  Alcotest.(check bool) "width close" true (I.width i < 2.0 +. 1e-9);
  Alcotest.(check bool) "mid of entire finite" true (Float.is_finite (I.mid I.entire));
  Alcotest.(check bool) "mid inside" true (I.mem (I.mid i) i);
  let huge = I.make (-.Float.max_float) Float.max_float in
  Alcotest.(check bool) "mid of huge finite" true (Float.is_finite (I.mid huge))

let test_arithmetic_exact () =
  let a = I.make 1.0 2.0 and b = I.make 3.0 5.0 in
  check_mem "add" 6.0 (I.add a b);
  check_mem "add lo" 4.0 (I.add a b);
  check_mem "sub" (-4.0) (I.sub a b);
  check_mem "mul" 10.0 (I.mul a b);
  check_mem "mul lo" 3.0 (I.mul a b);
  check_mem "div" (2.0 /. 3.0) (I.div a b);
  let m = I.mul (I.make (-2.0) 3.0) (I.make (-5.0) 1.0) in
  check_mem "mixed mul hi" 10.0 m;
  check_mem "mixed mul lo" (-15.0) m;
  Alcotest.(check bool) "mixed mul tight-ish" true (I.lo m >= -15.1 && I.hi m <= 10.1)

let test_division_zero () =
  let a = I.make 1.0 2.0 in
  Alcotest.(check bool) "div by straddling zero = entire" true
    (I.is_entire (I.div a (I.make (-1.0) 1.0)));
  Alcotest.(check bool) "div by zero singleton empty" true
    (I.is_empty (I.div a I.zero));
  let d = I.div a (I.make 0.0 2.0) in
  Alcotest.(check bool) "div by [0,2] unbounded above" true (I.hi d = infinity);
  Alcotest.(check bool) "div by [0,2] lo <= 0.5" true (I.lo d <= 0.5)

let test_sqr_pow () =
  let i = I.make (-2.0) 3.0 in
  let s = I.sqr i in
  Alcotest.(check bool) "sqr contains 0" true (I.mem 0.0 s);
  check_mem "sqr hi" 9.0 s;
  Alcotest.(check bool) "sqr lo is 0" true (I.lo s = 0.0);
  let p3 = I.pow_int i 3 in
  check_mem "pow3 lo" (-8.0) p3;
  check_mem "pow3 hi" 27.0 p3;
  let p4 = I.pow_int i 4 in
  check_mem "pow4 hi" 81.0 p4;
  Alcotest.(check bool) "pow4 lo 0" true (I.lo p4 = 0.0);
  let pneg = I.pow_int (I.make 2.0 4.0) (-1) in
  check_mem "pow -1" 0.25 pneg;
  check_mem "pow -1 hi" 0.5 pneg

let test_transcendental_domains () =
  Alcotest.(check bool) "sqrt of negative empty" true (I.is_empty (I.sqrt (I.make (-2.0) (-1.0))));
  Alcotest.(check bool) "sqrt clips" true (I.lo (I.sqrt (I.make (-1.0) 4.0)) = 0.0);
  Alcotest.(check bool) "log of nonpositive empty" true (I.is_empty (I.log (I.make (-2.0) 0.0)));
  Alcotest.(check bool) "log clips to -inf" true (I.lo (I.log (I.make 0.0 1.0)) = neg_infinity);
  check_mem "exp 0" 1.0 (I.exp I.zero);
  Alcotest.(check bool) "exp nonneg" true (I.lo (I.exp (I.make (-100.0) 0.0)) >= 0.0)

let test_trig () =
  let pi = Float.pi in
  let c = I.cos (I.make 0.0 pi) in
  check_mem "cos [0,pi] contains -1" (-1.0) c;
  check_mem "cos [0,pi] contains 1" 1.0 c;
  let c2 = I.cos (I.make 0.1 1.0) in
  Alcotest.(check bool) "cos [0.1,1] below 1" true (I.hi c2 < 1.0);
  check_mem "cos 0.5" (Float.cos 0.5) c2;
  let s = I.sin (I.make 0.0 (pi /. 2.0)) in
  check_mem "sin contains 1 endpoint region" 0.999999 s;
  check_mem "sin contains 0" 0.0 s;
  let s2 = I.sin (I.make 0.1 0.2) in
  Alcotest.(check bool) "narrow sin tight" true (I.width s2 < 0.2);
  let t = I.tan (I.make 1.0 2.0) in
  Alcotest.(check bool) "tan across pi/2 entire" true (I.is_entire t);
  let t2 = I.tan (I.make 0.1 0.2) in
  check_mem "tan 0.15" (Float.tan 0.15) t2;
  let big = I.cos (I.make 0.0 100.0) in
  Alcotest.(check bool) "cos wide = [-1,1]" true (I.equal big (I.make (-1.0) 1.0))

let test_root_atanh () =
  let r = I.root (I.make 4.0 9.0) 2 in
  check_mem "sqrt-root 2" 2.0 r;
  check_mem "sqrt-root 3" 3.0 r;
  let r3 = I.root (I.make (-8.0) 27.0) 3 in
  check_mem "cbrt -2" (-2.0) r3;
  check_mem "cbrt 3" 3.0 r3;
  Alcotest.(check bool) "even root of negative empty" true
    (I.is_empty (I.root (I.make (-4.0) (-1.0)) 2));
  let a = I.atanh (I.make (-0.5) 0.5) in
  check_mem "atanh 0" 0.0 a;
  check_mem "atanh 0.4" (0.5 *. Float.log (1.4 /. 0.6)) a;
  Alcotest.(check bool) "atanh outside domain empty" true
    (I.is_empty (I.atanh (I.make 2.0 3.0)))

let test_sign_queries () =
  Alcotest.(check bool) "certainly gt" true (I.certainly_gt_zero (I.make 0.5 1.0));
  Alcotest.(check bool) "not certainly gt" false (I.certainly_gt_zero (I.make 0.0 1.0));
  Alcotest.(check bool) "certainly ge" true (I.certainly_ge_zero (I.make 0.0 1.0));
  Alcotest.(check bool) "possibly gt with delta" true
    (I.possibly_gt ~delta:0.1 (I.make (-1.0) (-0.05)));
  Alcotest.(check bool) "not possibly gt" false
    (I.possibly_gt ~delta:0.1 (I.make (-1.0) (-0.5)))

let test_box_basics () =
  let b = Box.of_list [ ("x", I.make 0.0 1.0); ("y", I.make 2.0 6.0) ] in
  Alcotest.(check int) "cardinal" 2 (Box.cardinal b);
  Alcotest.(check bool) "find" true (I.equal (Box.find "y" b) (I.make 2.0 6.0));
  Alcotest.(check bool) "volume" true (Box.volume b >= 4.0 && Box.volume b < 4.001);
  let name, w = Box.max_dim b in
  Alcotest.(check (option string)) "widest" (Some "y") name;
  Alcotest.(check bool) "widest width" true (w >= 4.0);
  (match Box.split b with
  | Some (l, r) ->
      Alcotest.(check bool) "split on y left" true (I.equal (Box.find "y" l) (I.make 2.0 4.0));
      Alcotest.(check bool) "split on y right" true (I.equal (Box.find "y" r) (I.make 4.0 6.0));
      Alcotest.(check bool) "x untouched" true (I.equal (Box.find "x" l) (I.make 0.0 1.0))
  | None -> Alcotest.fail "split returned None");
  Alcotest.(check bool) "contains mid env" true (Box.contains_env (Box.mid_env b) b);
  let empty_b = Box.set "x" I.empty b in
  Alcotest.(check bool) "empty box" true (Box.is_empty empty_b)

let test_box_set_ops () =
  let b1 = Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ] in
  let b2 = Box.of_list [ ("x", I.make 1.0 3.0); ("y", I.make 1.0 3.0) ] in
  let bi = Box.inter b1 b2 in
  Alcotest.(check bool) "inter x" true (I.equal (Box.find "x" bi) (I.make 1.0 2.0));
  let bh = Box.hull b1 b2 in
  Alcotest.(check bool) "hull y" true (I.equal (Box.find "y" bh) (I.make 0.0 3.0));
  Alcotest.(check bool) "subset" true (Box.subset bi b1);
  Alcotest.(check bool) "not subset" false (Box.subset b1 b2)

let test_rounding_direction () =
  let module R = Interval.Round in
  List.iter
    (fun x ->
      Alcotest.(check bool) "lo1 below" true (R.lo1 x < x);
      Alcotest.(check bool) "hi1 above" true (R.hi1 x > x);
      Alcotest.(check bool) "lo2 below lo1" true (R.lo2 x < R.lo1 x);
      Alcotest.(check bool) "hi2 above hi1" true (R.hi2 x > R.hi1 x))
    [ 1.0; -1.0; 0.5; 1e-300; 1e300; -3.14159 ];
  Alcotest.(check bool) "infinities fixed" true
    (R.next_up infinity = infinity && R.next_down neg_infinity = neg_infinity);
  Alcotest.(check bool) "pi enclosed" true (R.pi_lo < Float.pi && Float.pi < R.pi_hi);
  Alcotest.(check bool) "2pi enclosed" true
    (R.two_pi_lo < 2.0 *. Float.pi && 2.0 *. Float.pi < R.two_pi_hi)

(* ---- Property tests ---- *)

let finite_float lo hi = QCheck.Gen.float_range lo hi

let interval_gen =
  QCheck.Gen.(
    map2
      (fun a b -> I.make_unordered a b)
      (finite_float (-50.0) 50.0) (finite_float (-50.0) 50.0))

let point_in i =
  QCheck.Gen.(
    map (fun t -> I.lo i +. (t *. (I.hi i -. I.lo i))) (float_range 0.0 1.0))

let arb_interval = QCheck.make ~print:I.to_string interval_gen

let arb_interval_with_point =
  let gen =
    QCheck.Gen.(
      interval_gen >>= fun i ->
      point_in i >>= fun x -> return (i, x))
  in
  QCheck.make ~print:(fun (i, x) -> Printf.sprintf "(%s, %.17g)" (I.to_string i) x) gen

let arb_pair_with_points =
  let gen =
    QCheck.Gen.(
      interval_gen >>= fun a ->
      interval_gen >>= fun b ->
      point_in a >>= fun x ->
      point_in b >>= fun y -> return (a, b, x, y))
  in
  QCheck.make
    ~print:(fun (a, b, x, y) ->
      Printf.sprintf "(%s, %s, %.17g, %.17g)" (I.to_string a) (I.to_string b) x y)
    gen

let prop_containment name op_i op_f =
  QCheck.Test.make ~count:500 ~name arb_pair_with_points (fun (a, b, x, y) ->
      let r = op_f x y in
      Float.is_nan r || I.mem r (op_i a b))

let prop_unary_containment name op_i op_f =
  QCheck.Test.make ~count:500 ~name arb_interval_with_point (fun (i, x) ->
      let r = op_f x in
      Float.is_nan r || Float.abs r = infinity || I.mem r (op_i i))

let prop_inflate_subset =
  QCheck.Test.make ~count:200 ~name:"inflate contains original" arb_interval (fun i ->
      I.subset i (I.inflate 0.1 i))

let prop_split_cover =
  QCheck.Test.make ~count:200 ~name:"split halves cover" arb_interval_with_point
    (fun (i, x) ->
      let l, r = I.split i in
      I.mem x l || I.mem x r)

let prop_hull_contains =
  QCheck.Test.make ~count:200 ~name:"hull contains both" arb_pair_with_points
    (fun (a, b, x, y) -> I.mem x (I.hull a b) && I.mem y (I.hull a b))

let prop_root_inverse =
  QCheck.Test.make ~count:300 ~name:"root inverts pow_int"
    (QCheck.make
       ~print:(fun (i, n) -> Printf.sprintf "(%s, %d)" (I.to_string i) n)
       QCheck.Gen.(
         pair
           (map2 (fun a b -> I.make_unordered a b) (float_range 0.01 10.0)
              (float_range 0.01 10.0))
           (int_range 1 5)))
    (fun (i, n) -> I.subset i (I.root (I.pow_int i n) n))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_containment "add containment" I.add ( +. );
      prop_containment "sub containment" I.sub ( -. );
      prop_containment "mul containment" I.mul ( *. );
      prop_containment "div containment" I.div ( /. );
      prop_containment "min containment" I.min_ Float.min;
      prop_containment "max containment" I.max_ Float.max;
      prop_unary_containment "neg containment" I.neg (fun x -> -.x);
      prop_unary_containment "sqr containment" I.sqr (fun x -> x *. x);
      prop_unary_containment "exp containment" I.exp Float.exp;
      prop_unary_containment "log containment" I.log Float.log;
      prop_unary_containment "sqrt containment" I.sqrt Float.sqrt;
      prop_unary_containment "sin containment" I.sin Float.sin;
      prop_unary_containment "cos containment" I.cos Float.cos;
      prop_unary_containment "atan containment" I.atan Float.atan;
      prop_unary_containment "tanh containment" I.tanh Float.tanh;
      prop_unary_containment "abs containment" I.abs Float.abs;
      prop_inflate_subset;
      prop_split_cover;
      prop_hull_contains;
      prop_root_inverse;
    ]

let () =
  Alcotest.run "interval"
    [
      ( "unit",
        [
          Alcotest.test_case "construction" `Quick test_construction;
          Alcotest.test_case "lattice" `Quick test_lattice;
          Alcotest.test_case "midpoint and width" `Quick test_midpoint_width;
          Alcotest.test_case "arithmetic" `Quick test_arithmetic_exact;
          Alcotest.test_case "division by zero" `Quick test_division_zero;
          Alcotest.test_case "sqr and pow" `Quick test_sqr_pow;
          Alcotest.test_case "transcendental domains" `Quick test_transcendental_domains;
          Alcotest.test_case "trigonometry" `Quick test_trig;
          Alcotest.test_case "root and atanh" `Quick test_root_atanh;
          Alcotest.test_case "sign queries" `Quick test_sign_queries;
          Alcotest.test_case "rounding direction" `Quick test_rounding_direction;
          Alcotest.test_case "box basics" `Quick test_box_basics;
          Alcotest.test_case "box set ops" `Quick test_box_set_ops;
        ] );
      ("properties", qcheck_tests);
    ]
