(* Differential tests for the derivative layer (Icp.Deriv and its
   wiring): gradient tapes vs tree-walking derivatives, mean-value /
   interval Newton contraction soundness, smear splitting vs plain
   bisection, Newton-on vs Newton-off search agreement, and the
   kill-switch guarantee that BIOMC_NO_NEWTON reproduces the HC4-only
   search bit for bit (including its cache interactions). *)

module I = Interval.Ia
module Box = Interval.Box
module T = Expr.Term
module Tape = Expr.Tape
module P = Expr.Parse
module D = Icp.Deriv
module S = Icp.Solver

let vars = [ "x"; "y"; "z" ]
let nvars = List.length vars

(* ---- random generators (deterministic seeds) ---- *)

let rand_leaf st =
  if Random.State.bool st then T.var (List.nth vars (Random.State.int st nvars))
  else T.const (Random.State.float st 4.0 -. 2.0)

(* Differentiable constructors only — [Term.deriv] rejects Min/Max, and
   [Deriv.compile] skips such constraints, so the gradient suites draw
   from the 16 smooth-almost-everywhere operations. *)
let rec rand_smooth st depth =
  if depth = 0 then rand_leaf st
  else
    let sub () = rand_smooth st (depth - 1) in
    match Random.State.int st 16 with
    | 0 -> T.add (sub ()) (sub ())
    | 1 -> T.sub (sub ()) (sub ())
    | 2 -> T.mul (sub ()) (sub ())
    | 3 -> T.div (sub ()) (sub ())
    | 4 -> T.neg (sub ())
    | 5 -> T.pow (sub ()) (Random.State.int st 7 - 3)
    | 6 -> T.exp (sub ())
    | 7 -> T.log (sub ())
    | 8 -> T.sqrt (sub ())
    | 9 -> T.sin (sub ())
    | 10 -> T.cos (sub ())
    | 11 -> T.tan (sub ())
    | 12 -> T.atan (sub ())
    | 13 -> T.tanh (sub ())
    | 14 -> T.abs (sub ())
    | _ -> rand_leaf st

(* The full constructor set, for the simplify_deep semantics suite. *)
let rand_term st depth =
  if depth = 0 || Random.State.int st 8 > 0 then rand_smooth st depth
  else
    let sub () = rand_smooth st (depth - 1) in
    if Random.State.bool st then T.min_ (sub ()) (sub ())
    else T.max_ (sub ()) (sub ())

let rand_box st =
  Box.of_list
    (List.map
       (fun v ->
         let a = Random.State.float st 8.0 -. 4.0 in
         let w =
           match Random.State.int st 4 with
           | 0 -> 0.0 (* singleton *)
           | 1 -> Random.State.float st 0.5
           | _ -> Random.State.float st 4.0
         in
         (v, I.make a (a +. w)))
       vars)

let rand_target st =
  match Random.State.int st 4 with
  | 0 -> I.of_float (Random.State.float st 4.0 -. 2.0)
  | 1 -> I.make (Random.State.float st 2.0 -. 2.0) (Random.State.float st 2.0)
  | 2 -> I.make (Random.State.float st 4.0 -. 2.0) Float.infinity
  | _ ->
      let a = Random.State.float st 6.0 -. 3.0 in
      I.make a (a +. Random.State.float st 1.0)

let rand_point st b =
  List.map
    (fun (v, itv) ->
      (v, I.lo itv +. (Random.State.float st 1.0 *. I.width itv)))
    (Box.to_list b)

(* ---- simplify_deep: semantic preservation ---- *)

(* The gradient pipeline rewrites derivative trees with
   [Term.simplify_deep] before tape compilation; its contract is that
   the result denotes the same real function (float evaluation agrees
   up to the sign of zero, and up to ulps across a pow-of-pow merge).
   Pinned over the full constructor set, Min/Max included. *)
let same_value a b =
  (Float.is_nan a && Float.is_nan b)
  || a = b
  || Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let test_simplify_deep_semantics () =
  let st = Random.State.make [| 90 |] in
  for case = 1 to 1_500 do
    let t = rand_term st (1 + Random.State.int st 4) in
    let s = T.simplify_deep t in
    if not (T.SSet.subset (T.free_vars s) (T.free_vars t)) then
      Alcotest.failf "case %d: simplify_deep invented variables on %s" case
        (T.to_string t);
    let f = T.compile ~vars t and g = T.compile ~vars s in
    for _probe = 1 to 3 do
      let args = Array.init nvars (fun _ -> Random.State.float st 8.0 -. 4.0) in
      let a = f args and b = g args in
      if not (same_value a b) then
        Alcotest.failf "case %d: %.17g <> %.17g on %s ~> %s" case a b
          (T.to_string t) (T.to_string s)
    done
  done

let test_simplify_deep_idempotent () =
  let st = Random.State.make [| 91 |] in
  for case = 1 to 500 do
    let s = T.simplify_deep (rand_term st (1 + Random.State.int st 4)) in
    if not (T.equal s (T.simplify_deep s)) then
      Alcotest.failf "case %d: not idempotent on %s" case (T.to_string s)
  done

(* ---- gradient tapes vs tree-walking derivatives ---- *)

(* The compiled gradient enclosure must contain the tree-walking
   derivative's value at every point of the box (the enclosure bounds
   the true derivative; the float evaluation is within ulps of it, so
   membership is checked with a relative slack). *)
let test_gradient_soundness () =
  let st = Random.State.make [| 92 |] in
  let checked = ref 0 in
  for case = 1 to 1_200 do
    let t = rand_smooth st (1 + Random.State.int st 4) in
    match D.compile [ (t, I.entire) ] with
    | None -> () (* variable-free *)
    | Some sys -> (
        let b = rand_box st in
        match D.gradient_enclosures sys b with
        | [ None ] -> () (* skipped: non-smooth or unbounded on b *)
        | [ Some pairs ] ->
            for _probe = 1 to 3 do
              let pt = rand_point st b in
              List.iter
                (fun (v, g) ->
                  let dv = try T.eval_env pt (T.deriv v t) with _ -> nan in
                  if Float.is_finite dv then begin
                    incr checked;
                    let slack = 1e-7 *. Float.max 1.0 (Float.abs dv) in
                    if not (I.mem dv (I.inflate slack g)) then
                      Alcotest.failf
                        "case %d: d/d%s = %.17g outside tape enclosure %s on %s"
                        case v dv (I.to_string g) (T.to_string t)
                  end)
                pairs
            done
        | _ -> Alcotest.failf "case %d: expected one entry" case)
  done;
  if !checked < 1_000 then
    Alcotest.failf "only %d derivative points checked — generator drifted"
      !checked

(* ---- contraction soundness ---- *)

(* Mean-value refutation + interval Newton must never lose a solution:
   any sampled point that (robustly) satisfies every constraint must
   survive [Deriv.contract] — both the refutation test and the
   per-variable Gauss–Seidel intersections. *)
let robustly_in value target =
  Float.is_finite value
  && (not (I.is_empty target))
  &&
  let m = 1e-6 *. Float.max 1.0 (Float.abs value) in
  value >= I.lo target +. m && value <= I.hi target -. m

let test_contract_soundness () =
  let st = Random.State.make [| 93 |] in
  let witnessed = ref 0 in
  for case = 1 to 1_000 do
    let n = 1 + Random.State.int st 2 in
    let cs =
      List.init n (fun _ ->
          (rand_smooth st (1 + Random.State.int st 3), rand_target st))
    in
    match D.compile cs with
    | None -> ()
    | Some sys ->
        let b = rand_box st in
        let satisfying =
          List.filter_map
            (fun _ ->
              let pt = rand_point st b in
              let ok =
                List.for_all
                  (fun (t, target) ->
                    let v = try T.eval_env pt t with _ -> nan in
                    robustly_in v target)
                  cs
              in
              if ok then Some pt else None)
            (List.init 20 Fun.id)
        in
        let r = D.contract sys b in
        List.iter
          (fun pt ->
            incr witnessed;
            match r with
            | None ->
                Alcotest.failf "case %d: refuted a box containing witness %s"
                  case
                  (String.concat ","
                     (List.map (fun (v, x) -> Printf.sprintf "%s=%g" v x) pt))
            | Some b' ->
                List.iter
                  (fun (v, x) ->
                    match Box.find_opt v b' with
                    | None -> ()
                    | Some itv ->
                        if not (I.mem x (I.inflate 1e-9 itv)) then
                          Alcotest.failf
                            "case %d: witness %s=%.17g contracted away (%s)"
                            case v x (I.to_string itv))
                  pt)
          satisfying
  done;
  if !witnessed < 300 then
    Alcotest.failf "only %d witnesses checked — generator drifted" !witnessed

(* ---- smear splitting vs plain bisection ---- *)

(* [Deriv.split] must terminate exactly when [Box.split] does (same
   sub-ε condition), and a split must be a genuine bisection: two
   sub-boxes of the original covering it. *)
let test_smear_split_termination () =
  let st = Random.State.make [| 94 |] in
  for case = 1 to 500 do
    let cs =
      List.init
        (1 + Random.State.int st 2)
        (fun _ -> (rand_smooth st (1 + Random.State.int st 3), rand_target st))
    in
    match D.compile cs with
    | None -> ()
    | Some sys ->
        let b = rand_box st in
        let min_width =
          match Random.State.int st 3 with
          | 0 -> 0.0
          | 1 -> 0.1
          | _ -> Random.State.float st 4.0
        in
        let plain = Box.split ~min_width b in
        let smear = D.split sys ~min_width b in
        (match (plain, smear) with
        | None, None -> ()
        | Some _, None | None, Some _ ->
            Alcotest.failf
              "case %d: split disagreement at min_width=%g (plain %b, smear %b)"
              case min_width (plain <> None) (smear <> None)
        | Some _, Some (l, r) ->
            if not (Box.subset l b && Box.subset r b) then
              Alcotest.failf "case %d: smear halves escape the box" case;
            if not (Box.equal (Box.hull l r) b) then
              Alcotest.failf "case %d: smear halves do not cover the box" case)
  done

(* ---- Newton on vs off: decide and pave agreement ---- *)

let with_newton flag f =
  D.set_enabled flag;
  Fun.protect ~finally:D.clear_enabled_override f

let verdict_kind = function
  | S.Delta_sat _ -> "delta-sat"
  | S.Unsat -> "unsat"
  | S.Unknown _ -> "unknown"

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

(* Workloads kept away from the δ-boundary so both searches reach the
   same verdict kind (at the boundary, Unsat and Delta_sat are both
   δ-correct answers and the comparison would be meaningless). *)
let decide_cases =
  [ ("sqrt2", "x^2 = 2", box [ ("x", 0.0, 2.0) ]);
    ( "geom-unsat",
      "x^2 + y^2 <= 1 and x + y >= 3",
      box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] );
    ("sin", "sin(x) = 1/2", box [ ("x", 0.0, 3.0) ]);
    ( "cubic-dependency",
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3",
      box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] );
    ( "mm-kinetics",
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1",
      box [ ("s1", 0.0, 1.0); ("s2", 0.0, 1.0) ] );
    ( "tangency",
      "x^2 + y^2 = 1 and x*y = 1/2",
      box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] ) ]

let test_decide_on_vs_off () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      List.iter
        (fun jobs ->
          let config = { S.default_config with jobs } in
          let on =
            with_newton true (fun () -> verdict_kind (S.decide ~config f bx))
          in
          let off =
            with_newton false (fun () -> verdict_kind (S.decide ~config f bx))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s at jobs=%d" name jobs)
            off on)
        [ 1; 2 ])
    decide_cases

(* Paving on vs off: leaf sets legitimately differ (different splits),
   but both are proofs over the same box, so a sat leaf of one run may
   never share volume with an unsat leaf of the other; feasibility
   (existence of sat leaves) must agree; and the Newton paving must be
   identical between jobs=1 and jobs=2 (smear tie-breaking is
   deterministic across domains). *)
let test_pave_on_vs_off () =
  let f =
    P.formula
      "a*k*exp(-k) >= 0.3 and a*k*exp(-k) <= 0.5 and \
       3*a*k*exp(-3*k) >= 0.1 and 3*a*k*exp(-3*k) <= 0.3"
  in
  let bx = box [ ("k", 0.05, 2.5); ("a", 0.2, 3.0) ] in
  let config jobs = { S.default_config with S.epsilon = 0.05; jobs } in
  let p_on = with_newton true (fun () -> S.pave ~config:(config 1) f bx) in
  let p_off = with_newton false (fun () -> S.pave ~config:(config 1) f bx) in
  let contradicts sats unsats =
    List.exists
      (fun s -> List.exists (fun u -> Box.volume (Box.inter s u) > 0.0) unsats)
      sats
  in
  Alcotest.(check bool) "no sat(on)/unsat(off) contradiction" false
    (contradicts p_on.S.sat p_off.S.unsat);
  Alcotest.(check bool) "no sat(off)/unsat(on) contradiction" false
    (contradicts p_off.S.sat p_on.S.unsat);
  Alcotest.(check bool) "feasibility agrees"
    (p_off.S.sat <> []) (p_on.S.sat <> []);
  let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
  let p_on2 = with_newton true (fun () -> S.pave ~config:(config 2) f bx) in
  List.iter
    (fun (label, l, l') ->
      Alcotest.(check bool)
        (Printf.sprintf "%s leaves equal at jobs=2" label)
        true
        (List.equal Box.equal (sort l) (sort l')))
    [ ("sat", p_on.S.sat, p_on2.S.sat);
      ("unsat", p_on.S.unsat, p_on2.S.unsat);
      ("undecided", p_on.S.undecided, p_on2.S.undecided) ]

(* ---- the kill-switch: BIOMC_NO_NEWTON reproduces the old search ---- *)

(* Off-run, on-run, off-run again — with the caches at their default
   policy.  The second off-run must match the first in verdict kind AND
   in every stats field: any divergence would mean Newton-era cache
   entries (HC4 fixpoints, refuted boxes, paving verdicts) leaked into
   the disabled search, i.e. the kill-switch no longer reproduces the
   pre-derivative behaviour. *)
let stats_tuple (s : S.stats) =
  (s.S.boxes_processed, s.S.splits, s.S.prunings, s.S.max_depth,
   s.S.certifications)

let test_killswitch_decide_bitforbit () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      let run on =
        with_newton on (fun () ->
            let r, stats = S.decide_with_stats f bx in
            (verdict_kind r, stats_tuple stats))
      in
      let v1, s1 = run false in
      let _ = run true in
      let v2, s2 = run false in
      Alcotest.(check string) (name ^ ": off verdict reproduced") v1 v2;
      Alcotest.(check bool)
        (name ^ ": off stats reproduced (no cache leakage)") true (s1 = s2))
    decide_cases

let test_killswitch_pave_bitforbit () =
  let f = P.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
  let bx = box [ ("x", -1.5, 1.5); ("y", -1.5, 1.5) ] in
  let config = { S.default_config with S.epsilon = 0.05 } in
  let run on = with_newton on (fun () -> S.pave ~config f bx) in
  let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
  let p1 = run false in
  let _ = run true in
  let p2 = run false in
  List.iter
    (fun (label, l, l') ->
      Alcotest.(check bool)
        (Printf.sprintf "off %s leaves reproduced" label)
        true
        (List.equal Box.equal (sort l) (sort l')))
    [ ("sat", p1.S.sat, p2.S.sat);
      ("unsat", p1.S.unsat, p2.S.unsat);
      ("undecided", p1.S.undecided, p2.S.undecided) ]

(* ---- gradient tape size on a real model atom (regression pin) ---- *)

(* The du/dt flow of the BCF model's excited mode (bcf_m4) is the
   dependency-rich atom of record: u occurs in all three currents.
   Pins (a) that simplify_deep never grows a gradient, and (b) the
   compiled gradient tape's exact slot count — the CSE between f and
   its four partials is what makes per-box gradients affordable, so a
   regression here is a performance bug even when results stay
   correct. *)
let test_bcf_gradient_tape_size () =
  let a = Biomodels.Bueno_cherry_fenton.automaton () in
  let m4 =
    List.find
      (fun m -> m.Hybrid.Automaton.mode_name = "bcf_m4")
      (Hybrid.Automaton.modes a)
  in
  let du = List.assoc "u" m4.Hybrid.Automaton.flow in
  let vars = T.free_var_list du in
  Alcotest.(check (list string)) "du mentions all four state vars"
    [ "s"; "u"; "v"; "w" ] vars;
  let raw = List.map (fun v -> T.deriv v du) vars in
  let simp = List.map T.simplify_deep raw in
  List.iter2
    (fun r s ->
      Alcotest.(check bool) "simplify_deep never grows a gradient" true
        (T.size s <= T.size r))
    raw simp;
  let tp = Tape.compile ~vars (du :: simp) in
  let nodes = List.fold_left (fun acc t -> acc + T.size t) (T.size du) simp in
  Alcotest.(check int) "gradient tape slots (pinned)" 60 (Tape.num_slots tp);
  Alcotest.(check bool) "CSE shares work across f and its partials" true
    (Tape.num_slots tp < nodes)

let () =
  Alcotest.run "newton"
    [ ( "simplify",
        [ Alcotest.test_case "simplify_deep semantics" `Quick
            test_simplify_deep_semantics;
          Alcotest.test_case "simplify_deep idempotent" `Quick
            test_simplify_deep_idempotent ] );
      ( "gradients",
        [ Alcotest.test_case "tape vs tree-walk soundness" `Quick
            test_gradient_soundness;
          Alcotest.test_case "bcf m4 tape size" `Quick
            test_bcf_gradient_tape_size ] );
      ( "contraction",
        [ Alcotest.test_case "never loses a witness" `Quick
            test_contract_soundness ] );
      ( "smear",
        [ Alcotest.test_case "termination matches Box.split" `Quick
            test_smear_split_termination ] );
      ( "search",
        [ Alcotest.test_case "decide on vs off (jobs 1, 2)" `Quick
            test_decide_on_vs_off;
          Alcotest.test_case "pave on vs off consistency" `Quick
            test_pave_on_vs_off ] );
      ( "kill-switch",
        [ Alcotest.test_case "decide off-run reproduced" `Quick
            test_killswitch_decide_bitforbit;
          Alcotest.test_case "pave off-run reproduced" `Quick
            test_killswitch_pave_bitforbit ] ) ]
