(* Tests for bounded reachability (dReach-equivalent) and parameter
   synthesis for reachability. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse
module A = Hybrid.Automaton
module E = Reach.Encoding
module C = Reach.Checker

(* Naive substring search, sufficient for checking rendered encodings. *)
module Astring_like = struct
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    m = 0 || go 0
end

let pt x = I.of_float x

let decay_automaton =
  (* x' = -x from x0 = 1, no parameters. *)
  A.of_system
    ~init:(Box.of_list [ ("x", pt 1.0) ])
    (Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ])

let decay_k_automaton =
  A.of_system
    ~init:(Box.of_list [ ("x", pt 1.0) ])
    (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ])

(* Two modes: in "up" x grows at rate 1; jumps to "down" when x crosses the
   parameter theta; in "down" x decays at rate 1 after a reset to 0. *)
let switch_automaton =
  A.create ~vars:[ "x" ] ~params:[ "theta" ]
    ~modes:
      [ A.mode ~name:"up" ~flow:[ ("x", P.term "1") ] ();
        A.mode ~name:"down" ~flow:[ ("x", P.term "-1") ] () ]
    ~jumps:
      [ A.jump ~source:"up" ~target:"down" ~guard:(P.formula "x >= theta")
          ~reset:[ ("x", P.term "0") ] () ]
    ~init_mode:"up"
    ~init:(Box.of_list [ ("x", pt 0.0) ])

let goal ?(modes = []) pred = { E.goal_modes = modes; predicate = P.formula pred }

let expect_delta_sat name r =
  match r with
  | C.Delta_sat w -> w
  | C.Unsat _ -> Alcotest.failf "%s: expected delta-sat, got unsat" name
  | C.Unknown why -> Alcotest.failf "%s: expected delta-sat, got unknown (%s)" name why

let expect_unsat name r =
  match r with
  | C.Unsat _ -> ()
  | C.Delta_sat w ->
      Alcotest.failf "%s: expected unsat, got delta-sat (%s)" name
        (Fmt.str "%a" C.pp_result (C.Delta_sat w))
  | C.Unknown why -> Alcotest.failf "%s: expected unsat, got unknown (%s)" name why

(* ---- Encoding ---- *)

let test_encoding_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : E.t) -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "negative k" (fun () ->
      E.create ~goal:(goal "x <= 0") ~k:(-1) ~time_bound:1.0 decay_automaton);
  expect_invalid "bad time bound" (fun () ->
      E.create ~goal:(goal "x <= 0") ~k:0 ~time_bound:0.0 decay_automaton);
  expect_invalid "unknown goal mode" (fun () ->
      E.create ~goal:(goal ~modes:[ "ghost" ] "x <= 0") ~k:0 ~time_bound:1.0
        decay_automaton);
  expect_invalid "missing param box" (fun () ->
      E.create ~goal:(goal "x <= 0") ~k:0 ~time_bound:1.0 decay_k_automaton)

let test_candidate_paths () =
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("theta", I.make 0.5 1.5) ])
      ~goal:(goal ~modes:[ "down" ] "x <= 0") ~k:2 ~time_bound:3.0 switch_automaton
  in
  let paths = E.candidate_paths pb in
  Alcotest.(check bool) "up->down present" true (List.mem [ "up"; "down" ] paths);
  Alcotest.(check bool) "no trivial path (wrong mode)" true
    (not (List.mem [ "up" ] paths))

let test_render () =
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("theta", I.make 0.5 1.5) ])
      ~goal:(goal ~modes:[ "down" ] "x <= 0 - 1/2") ~k:2 ~time_bound:3.0
      switch_automaton
  in
  let s = E.render pb in
  Alcotest.(check bool) "mentions goal" true
    (Astring_like.contains s "goal");
  Alcotest.(check bool) "mentions flow of up" true (Astring_like.contains s "flow_up");
  Alcotest.(check bool) "mentions jump" true (Astring_like.contains s "jump_up_down")

(* ---- Reachability without parameters ---- *)

let test_reach_decay_sat () =
  let pb =
    E.create ~goal:(goal "x <= 1/2") ~k:0 ~time_bound:1.0 decay_automaton
  in
  let w = expect_delta_sat "decay to 0.5" (C.check pb) in
  Alcotest.(check bool) "certified" true w.C.certified;
  Alcotest.(check (float 0.02)) "time ~ ln 2" (Float.log 2.0) w.C.reach_time

let test_reach_decay_unsat () =
  (* e^{-0.5} ≈ 0.6065: x cannot fall to 0.5 within 0.5 time units. *)
  let pb =
    E.create ~goal:(goal "x <= 1/2") ~k:0 ~time_bound:0.5 decay_automaton
  in
  expect_unsat "decay cannot reach 0.5 by t=0.5" (C.check pb)

let test_reach_goal_mode_filter () =
  (* Goal mode that is not reachable in k jumps: no candidate path. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("theta", I.make 0.5 1.0) ])
      ~goal:(goal ~modes:[ "down" ] "x <= 1") ~k:0 ~time_bound:1.0 switch_automaton
  in
  expect_unsat "down unreachable with k=0" (C.check pb)

(* ---- Reachability with parameter synthesis ---- *)

let test_reach_parameterized_sat () =
  (* Reach x <= 0.3 by time 1: needs e^{-k} <= 0.3, i.e. k >= 1.204. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("k", I.make 0.1 3.0) ])
      ~goal:(goal "x <= 0.3") ~k:0 ~time_bound:1.0 decay_k_automaton
  in
  let w = expect_delta_sat "parameterized decay" (C.check pb) in
  Alcotest.(check bool) "certified" true w.C.certified;
  let k = List.assoc "k" w.C.params in
  Alcotest.(check bool) "witness k >= 1.1" true (k >= 1.1)

let test_reach_parameterized_unsat () =
  (* k <= 0.5 can only bring x down to e^{-0.5} ≈ 0.6065 > 0.55. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("k", I.make 0.1 0.5) ])
      ~goal:(goal "x <= 0.55") ~k:0 ~time_bound:1.0 decay_k_automaton
  in
  expect_unsat "k too small" (C.check pb)

let test_reach_two_modes () =
  (* Any theta in [0.5, 1.5] allows reaching x <= -0.5 in "down" within
     the time bound: path up -> down. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("theta", I.make 0.5 1.5) ])
      ~goal:(goal ~modes:[ "down" ] "x <= -1/2") ~k:1 ~time_bound:3.0 switch_automaton
  in
  let w = expect_delta_sat "two-mode reach" (C.check pb) in
  Alcotest.(check (list string)) "path" [ "up"; "down" ] w.C.path;
  Alcotest.(check bool) "certified" true w.C.certified

let test_reach_two_modes_unsat () =
  (* In "down", x starts at 0 after reset and decreases at rate 1; it can
     never be >= 1 again. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("theta", I.make 0.5 1.5) ])
      ~goal:(goal ~modes:[ "down" ] "x >= 1") ~k:1 ~time_bound:2.0 switch_automaton
  in
  expect_unsat "down never re-reaches 1" (C.check pb)

let test_synthesize_threshold () =
  (* Partition k ∈ [0.1, 3.0] for goal x <= 0.3 by t=1: the boundary is at
     k* = -ln 0.3 ≈ 1.204.  Feasible boxes must lie (mostly) right of it,
     infeasible ones left. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("k", I.make 0.1 3.0) ])
      ~goal:(goal "x <= 0.3") ~k:0 ~time_bound:1.0 decay_k_automaton
  in
  let config = { C.default_config with epsilon = 0.05 } in
  let s = C.synthesize ~config pb in
  Alcotest.(check bool) "has feasible" true (s.C.feasible <> []);
  Alcotest.(check bool) "has infeasible" true (s.C.infeasible <> []);
  let kstar = -.Float.log 0.3 in
  List.iter
    (fun (b, _) ->
      Alcotest.(check bool) "feasible boxes right of k*" true
        (I.hi (Box.find "k" b) >= kstar -. 0.2))
    s.C.feasible;
  List.iter
    (fun (b, rigorous) ->
      Alcotest.(check bool) "infeasible proof is rigorous" true rigorous;
      Alcotest.(check bool) "infeasible boxes left of k*" true
        (I.lo (Box.find "k" b) <= kstar +. 0.2))
    s.C.infeasible

let test_witness_replays () =
  (* Simulating the automaton at the synthesized parameters must actually
     achieve the goal: end-to-end consistency. *)
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("k", I.make 0.1 3.0) ])
      ~goal:(goal "x <= 0.3") ~k:0 ~time_bound:1.0 decay_k_automaton
  in
  let w = expect_delta_sat "synthesis" (C.check pb) in
  let tr =
    Ode.Integrate.simulate ~params:w.C.params ~init:[ ("x", 1.0) ] ~t_end:1.0
      (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ])
  in
  Alcotest.(check bool) "goal achieved on replay" true
    ((Ode.Integrate.final_state tr).(0) <= 0.3 +. 0.01)

(* ---- drh export ---- *)

let test_drh_export () =
  let pb =
    E.create
      ~param_box:(Box.of_list [ ("theta", I.make 0.5 1.5) ])
      ~goal:(goal ~modes:[ "down" ] "x <= 0 - 1/2") ~k:2 ~time_bound:3.0
      switch_automaton
  in
  let s = Reach.Drh.of_problem pb in
  let has sub = Astring_like.contains s sub in
  Alcotest.(check bool) "declares x" true (has "] x;");
  Alcotest.(check bool) "declares theta with its box" true (has "[0.5, 1.5] theta;");
  Alcotest.(check bool) "declares time" true (has "[0, 3] time;");
  Alcotest.(check bool) "has mode 1" true (has "{ mode 1;");
  Alcotest.(check bool) "has mode 2" true (has "{ mode 2;");
  Alcotest.(check bool) "flow syntax" true (has "d/dt[x] =");
  Alcotest.(check bool) "parameter is constant" true (has "d/dt[theta] = 0;");
  Alcotest.(check bool) "jump arrow" true (has "==> @2");
  Alcotest.(check bool) "reset assigns prime" true (has "(x' = 0)");
  Alcotest.(check bool) "init line" true (has "init: @1");
  Alcotest.(check bool) "goal line" true (has "goal: @2")

let test_drh_formula_syntax () =
  let f = P.formula "x >= 1 and (y > 2 or x <= 0)" in
  let s = Reach.Drh.formula_to_drh f in
  Alcotest.(check bool) "and rendered" true (Astring_like.contains s "(and ");
  Alcotest.(check bool) "or rendered" true (Astring_like.contains s "(or ");
  Alcotest.(check bool) "atoms vs zero" true (Astring_like.contains s ">= 0)")

(* ---- Property: certified witnesses replay ---- *)

let prop_witness_replays =
  let gen =
    QCheck.Gen.(
      float_range 0.1 0.6 >>= fun goal_level ->
      float_range 0.5 2.0 >>= fun k_hi -> return (goal_level, k_hi))
  in
  QCheck.Test.make ~count:25 ~name:"certified reach witnesses replay by simulation"
    (QCheck.make ~print:(fun (g, k) -> Printf.sprintf "goal=%g khi=%g" g k) gen)
    (fun (goal_level, k_hi) ->
      let pb =
        E.create
          ~param_box:(Box.of_list [ ("k", I.make 0.1 (0.1 +. k_hi)) ])
          ~goal:(goal (Printf.sprintf "x <= %.17g" goal_level))
          ~k:0 ~time_bound:1.5 decay_k_automaton
      in
      match C.check pb with
      | C.Delta_sat w when w.C.certified ->
          let tr =
            Ode.Integrate.simulate ~params:w.C.params ~init:w.C.init ~t_end:1.5
              (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ]
                 ~rhs:[ ("x", "-k*x") ])
          in
          (* the witness must achieve the goal somewhere on the horizon *)
          Array.exists (fun st -> st.(0) <= goal_level +. 0.01) tr.Ode.Integrate.states
      | C.Delta_sat _ -> true
      | C.Unsat _ ->
          (* unsat only acceptable when even the strongest k misses it *)
          Float.exp (-.(0.1 +. k_hi) *. 1.5) > goal_level -. 0.01
      | C.Unknown _ -> true)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_witness_replays ]

let () =
  Alcotest.run "reach"
    [
      ( "encoding",
        [
          Alcotest.test_case "validation" `Quick test_encoding_validation;
          Alcotest.test_case "candidate paths" `Quick test_candidate_paths;
          Alcotest.test_case "render" `Quick test_render;
          Alcotest.test_case "drh export" `Quick test_drh_export;
          Alcotest.test_case "drh formula syntax" `Quick test_drh_formula_syntax;
        ] );
      ( "checker",
        [
          Alcotest.test_case "decay sat" `Quick test_reach_decay_sat;
          Alcotest.test_case "decay unsat" `Quick test_reach_decay_unsat;
          Alcotest.test_case "goal mode filter" `Quick test_reach_goal_mode_filter;
          Alcotest.test_case "parameterized sat" `Quick test_reach_parameterized_sat;
          Alcotest.test_case "parameterized unsat" `Quick test_reach_parameterized_unsat;
          Alcotest.test_case "two modes sat" `Quick test_reach_two_modes;
          Alcotest.test_case "two modes unsat" `Quick test_reach_two_modes_unsat;
          Alcotest.test_case "synthesize threshold" `Slow test_synthesize_threshold;
          Alcotest.test_case "witness replays" `Quick test_witness_replays;
        ] );
      ("properties", qcheck_tests);
    ]
