(* Tests for the biological case-study models: structural sanity and the
   published qualitative behaviours the experiments rely on. *)

module I = Interval.Ia
module Box = Interval.Box
module FK = Biomodels.Fenton_karma
module BCF = Biomodels.Bueno_cherry_fenton
module Pro = Biomodels.Prostate
module Tbi = Biomodels.Tbi
module Cl = Biomodels.Classics

(* ---- Fenton–Karma ---- *)

let test_fk_structure () =
  let h = FK.automaton () in
  Alcotest.(check (list string)) "vars" [ "u"; "v"; "w" ] (Hybrid.Automaton.vars h);
  Alcotest.(check int) "3 modes" 3 (List.length (Hybrid.Automaton.modes h));
  Alcotest.(check int) "4 jumps" 4 (List.length (Hybrid.Automaton.jumps h));
  Alcotest.(check string) "stimulated start" FK.mode_high (Hybrid.Automaton.init_mode h)

let test_fk_action_potential () =
  match FK.apd ~params:[] ~t_end:500.0 () with
  | None -> Alcotest.fail "FK should fire an AP"
  | Some apd ->
      (* Beeler–Reuter fit: APD on the order of 100-250 model ms *)
      Alcotest.(check bool) (Printf.sprintf "APD %.1f in range" apd) true
        (apd > 100.0 && apd < 250.0)

let test_fk_subthreshold_no_ap () =
  (* a stimulus below u_c decays without exciting *)
  let h = FK.automaton ~stimulus:0.05 () in
  let traj = Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end:100.0 h in
  Alcotest.(check bool) "never excited" true
    (not (List.mem FK.mode_high traj.Hybrid.Simulate.path));
  Alcotest.(check bool) "u decayed" true
    (List.assoc "u" traj.Hybrid.Simulate.final_env < 0.05)

let test_fk_free_params () =
  let h = FK.automaton ~free_params:[ "tau_si"; "tau_d" ] () in
  Alcotest.(check (list string)) "free params" [ "tau_si"; "tau_d" ]
    (Hybrid.Automaton.params h);
  (* binding them yields a closed automaton that simulates *)
  let b = Hybrid.Automaton.bind_params [ ("tau_si", 30.0); ("tau_d", 0.25) ] h in
  let traj = Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end:100.0 b in
  Alcotest.(check bool) "simulates" true (traj.Hybrid.Simulate.total_time > 0.0)

(* ---- Bueno–Cherry–Fenton ---- *)

let test_bcf_structure () =
  let h = BCF.automaton () in
  Alcotest.(check (list string)) "vars" [ "u"; "v"; "w"; "s" ] (Hybrid.Automaton.vars h);
  Alcotest.(check int) "4 modes" 4 (List.length (Hybrid.Automaton.modes h));
  Alcotest.(check int) "6 jumps" 6 (List.length (Hybrid.Automaton.jumps h))

let test_bcf_epicardial_apd () =
  match BCF.apd ~params:[] ~t_end:800.0 () with
  | None -> Alcotest.fail "BCF EPI should fire an AP"
  | Some apd ->
      (* published epicardial APD ≈ 270 ms at threshold θ_w *)
      Alcotest.(check bool) (Printf.sprintf "APD %.1f ≈ 270" apd) true
        (apd > 220.0 && apd < 330.0)

let test_bcf_apd_monotone_in_tau_so1 () =
  let apd tau =
    match
      BCF.apd ~constants:{ BCF.epi with BCF.tau_so1 = tau } ~params:[] ~t_end:800.0 ()
    with
    | Some a -> a
    | None -> Alcotest.failf "no AP at tau_so1=%g" tau
  in
  let a10 = apd 10.0 and a30 = apd 30.0 and a60 = apd 60.0 in
  Alcotest.(check bool)
    (Printf.sprintf "monotone: %.0f < %.0f < %.0f" a10 a30 a60)
    true
    (a10 < a30 && a30 < a60);
  (* tachycardia-like collapse at small tau_so1 *)
  Alcotest.(check bool) "short AP at tau_so1=10" true (a10 < 60.0)

let test_bcf_peak_potential () =
  let h = BCF.automaton () in
  let traj = Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end:400.0 h in
  let peak =
    List.fold_left
      (fun acc (_, v) -> match v with Some u -> Float.max acc u | None -> acc)
      0.0
      (Hybrid.Simulate.sample traj "u" ~n:400)
  in
  (* u_u = 1.55 bounds the peak; EPI APs overshoot 1.0 *)
  Alcotest.(check bool) (Printf.sprintf "peak %.2f" peak) true (peak > 1.0 && peak < 1.55)

let test_bcf_stimulus_box () =
  let h = BCF.automaton ~stimulus:0.1 ~stimulus_width:0.05 () in
  let u0 = Box.find "u" (Hybrid.Automaton.init_box h) in
  Alcotest.(check bool) "init is a box" true
    (I.lo u0 = 0.1 && Float.abs (I.hi u0 -. 0.15) < 1e-12)

(* ---- Prostate cancer IAS ---- *)

let test_prostate_ias_vs_continuous () =
  let y_ias, cycles, _ = Pro.simulate_therapy ~r0:4.0 ~r1:10.0 ~t_end:800.0 () in
  let y_cas, cycles_cas, _ = Pro.simulate_therapy ~r0:(-1.0) ~r1:1e9 ~t_end:800.0 () in
  Alcotest.(check bool) "IAS cycles" true (cycles >= 2);
  Alcotest.(check int) "continuous never pauses" 0 cycles_cas;
  Alcotest.(check bool)
    (Printf.sprintf "IAS prevents relapse (y=%.3f) but CAS does not (y=%.1f)" y_ias y_cas)
    true
    (y_ias < 1.0 && y_cas > 10.0)

let test_prostate_psa () =
  let v = Pro.psa [ ("x", 10.0); ("y", 2.0); ("z", 12.0) ] in
  Alcotest.(check (float 1e-12)) "psa = x + y" 12.0 v

let test_prostate_structure () =
  let h = Pro.automaton () in
  Alcotest.(check (list string)) "thresholds are params" [ "r0"; "r1" ]
    (Hybrid.Automaton.params h);
  Alcotest.(check int) "2 modes" 2 (List.length (Hybrid.Automaton.modes h));
  let fixed = Pro.automaton ~r0:(`Fixed 4.0) ~r1:(`Fixed 10.0) () in
  Alcotest.(check (list string)) "fixed has no params" [] (Hybrid.Automaton.params fixed)

let test_prostate_androgen_dynamics () =
  (* on treatment androgen is suppressed; off it recovers toward z0 *)
  let _, _, traj = Pro.simulate_therapy ~r0:4.0 ~r1:10.0 ~t_end:200.0 () in
  match traj.Hybrid.Simulate.segments with
  | (first : Hybrid.Simulate.segment) :: _ ->
      let z_end =
        Ode.Integrate.final_state first.Hybrid.Simulate.trace
      in
      let z_idx =
        match Hybrid.Automaton.vars (Pro.automaton ()) with
        | [ "x"; "y"; "z" ] -> 2
        | _ -> Alcotest.fail "unexpected var order"
      in
      Alcotest.(check bool) "androgen suppressed on treatment" true
        (z_end.(z_idx) < 12.0)
  | [] -> Alcotest.fail "no segments"

(* ---- TBI multi-mode model ---- *)

let test_tbi_structure () =
  let h = Tbi.automaton () in
  Alcotest.(check int) "7 modes" 7 (List.length (Hybrid.Automaton.modes h));
  Alcotest.(check (list string)) "6 signature variables"
    [ "clox"; "rip3"; "casp3"; "lip"; "il"; "par" ]
    (Hybrid.Automaton.vars h);
  Alcotest.(check (list string)) "thresholds free" [ "theta1"; "theta2" ]
    (Hybrid.Automaton.params h)

let test_tbi_untreated_dies () =
  let traj = Tbi.simulate_policy ~theta1:100.0 ~theta2:100.0 ~t_end:60.0 () in
  Alcotest.(check string) "ends dead" Tbi.mode_death traj.Hybrid.Simulate.final_mode

let test_tbi_treatment_cycle () =
  let traj = Tbi.simulate_policy ~theta1:1.0 ~theta2:1.0 ~t_end:30.0 () in
  let path = traj.Hybrid.Simulate.path in
  Alcotest.(check bool) "never dies" true (not (List.mem Tbi.mode_death path));
  (* the paper's 0 -> A -> B -> 0 scheme appears as a sub-path *)
  let rec has_scheme = function
    | "m0" :: "mA" :: "mB" :: "m0" :: _ -> true
    | _ :: rest -> has_scheme rest
    | [] -> false
  in
  Alcotest.(check bool) "0->A->B->0 scheme" true (has_scheme path)

let test_tbi_a_alone_insufficient () =
  (* In mode A the necroptosis marker rises (crosstalk): a direct return
     A -> 0 cannot happen because rip3 cannot fall below the recovery
     threshold while the apoptosis inhibitor re-routes flux into it. *)
  let traj = Tbi.simulate_policy ~theta1:1.0 ~theta2:1.0 ~t_end:30.0 () in
  let rec a_to_0 = function
    | "mA" :: "m0" :: _ -> true
    | _ :: rest -> a_to_0 rest
    | [] -> false
  in
  Alcotest.(check bool) "no direct A->0" false (a_to_0 traj.Hybrid.Simulate.path)

let test_tbi_goals () =
  let g = Tbi.recovery_goal () in
  Alcotest.(check (list string)) "recovery in mode 0" [ "m0" ] g.Reach.Encoding.goal_modes;
  let d = Tbi.death_goal () in
  Alcotest.(check (list string)) "death goal" [ "death" ] d.Reach.Encoding.goal_modes

(* ---- Genetic circuits ---- *)

let test_toggle_bistable () =
  Alcotest.(check bool) "bistable at a=4" true
    (Biomodels.Genetic.bistable ~a1:4.0 ~a2:4.0 ());
  (* strongly asymmetric production destroys bistability: everything
     settles into the u-high state *)
  Alcotest.(check bool) "monostable at a1 >> a2" false
    (Biomodels.Genetic.bistable ~a1:6.0 ~a2:0.3 ())

let test_toggle_attractors () =
  let u_a, v_a = Biomodels.Genetic.toggle_settles ~a1:4.0 ~a2:4.0 ~u0:2.0 ~v0:0.0 in
  Alcotest.(check bool) "u-high attractor" true (u_a > 3.0 && v_a < 1.0);
  let u_b, v_b = Biomodels.Genetic.toggle_settles ~a1:4.0 ~a2:4.0 ~u0:0.0 ~v0:2.0 in
  Alcotest.(check bool) "v-high attractor" true (v_b > 3.0 && u_b < 1.0)

let test_toggle_reachability () =
  (* From a low box biased toward u (v0 pinned at 0), the circuit latches
     u-high: u >= 3 reachable, v >= 3 not. *)
  let h =
    Biomodels.Genetic.toggle_automaton ~u0:(I.make 0.5 1.0) ~v0:(I.of_float 0.0) ()
  in
  let bound = Hybrid.Automaton.bind_params [ ("a1", 4.0); ("a2", 4.0) ] h in
  let check goal =
    Reach.Checker.check
      (Reach.Encoding.create ~goal ~k:0 ~time_bound:40.0 bound)
  in
  (match check (Biomodels.Genetic.u_high_goal ()) with
  | Reach.Checker.Delta_sat w -> Alcotest.(check bool) "certified" true w.Reach.Checker.certified
  | r -> Alcotest.failf "u-high should be reachable, got %s" (Fmt.str "%a" Reach.Checker.pp_result r));
  match check (Biomodels.Genetic.v_high_goal ()) with
  | Reach.Checker.Unsat _ -> ()
  | r -> Alcotest.failf "v-high should be unreachable, got %s" (Fmt.str "%a" Reach.Checker.pp_result r)

let test_repressilator_oscillates () =
  let tr = Biomodels.Genetic.simulate_repressilator ~alpha:8.0 ~t_end:120.0 () in
  let peaks = Biomodels.Genetic.count_peaks ~min_prominence:0.5 (Ode.Integrate.signal tr "x") in
  Alcotest.(check bool) (Printf.sprintf "%d peaks" peaks) true (peaks >= 3);
  (* weak repression: the symmetric fixed point is stable, no sustained
     oscillation *)
  let tr0 = Biomodels.Genetic.simulate_repressilator ~alpha:0.5 ~t_end:120.0 () in
  let xs = Ode.Integrate.signal tr0 "x" in
  let tail = Array.sub xs (Array.length xs / 2) (Array.length xs / 2) in
  let mx = Array.fold_left Float.max neg_infinity tail in
  let mn = Array.fold_left Float.min infinity tail in
  Alcotest.(check bool) "no oscillation at low alpha" true (mx -. mn < 0.2)

(* ---- Classics ---- *)

let test_lotka_volterra_oscillates () =
  let tr =
    Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.001)
      ~params:[ ("a", 1.0); ("b", 1.0) ]
      ~init:[ ("x", 2.0); ("y", 1.0) ]
      ~t_end:15.0 Cl.lotka_volterra
  in
  let xs = Ode.Integrate.signal tr "x" in
  let mx = Array.fold_left Float.max neg_infinity xs in
  let mn = Array.fold_left Float.min infinity xs in
  Alcotest.(check bool) "oscillation amplitude" true (mx > 1.8 && mn < 0.7);
  Alcotest.(check bool) "stays positive" true (mn > 0.0)

let test_sir_conservation () =
  let tr =
    Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.01)
      ~params:[ ("beta", 0.5); ("gamma", 0.2) ]
      ~init:[ ("s", 0.99); ("i", 0.01); ("r", 0.0) ]
      ~t_end:50.0 Cl.sir
  in
  let final = Ode.Integrate.final_state tr in
  Alcotest.(check (float 1e-6)) "population conserved" 1.0
    (final.(0) +. final.(1) +. final.(2));
  Alcotest.(check bool) "epidemic happened" true (final.(2) > 0.3)

let test_p53_pulse () =
  let tr =
    Ode.Integrate.simulate
      ~params:[ ("damage", 1.0) ]
      ~init:[ ("p53", 0.05); ("mdm2", 0.05) ]
      ~t_end:30.0 Cl.p53_mdm2
  in
  let p = Ode.Integrate.signal tr "p53" in
  let peak = Array.fold_left Float.max neg_infinity p in
  Alcotest.(check bool) (Printf.sprintf "p53 pulses (peak %.2f)" peak) true (peak > 0.3);
  (* without damage, p53 stays low *)
  let tr0 =
    Ode.Integrate.simulate
      ~params:[ ("damage", 0.0) ]
      ~init:[ ("p53", 0.05); ("mdm2", 0.05) ]
      ~t_end:30.0 Cl.p53_mdm2
  in
  let peak0 = Array.fold_left Float.max neg_infinity (Ode.Integrate.signal tr0 "p53") in
  Alcotest.(check bool) "no pulse without damage" true (peak0 < 0.15)

let test_stability_subjects_relax () =
  (* the purely cubic damping of the nonlinear oscillator decays like
     t^(-1/2), so it gets a longer horizon and a looser bound *)
  List.iter
    (fun (name, sys, init, t_end, tol) ->
      let tr = Ode.Integrate.simulate ~params:[] ~init ~t_end sys in
      let final = Ode.Integrate.final_state tr in
      Array.iter
        (fun x ->
          Alcotest.(check bool) (name ^ " relaxes to 0") true (Float.abs x < tol))
        final)
    [ ("erk", Cl.erk_cascade, [ ("mek", 1.0); ("erk", 0.5); ("erkpp", 0.2) ], 20.0, 0.05);
      ("proofreading", Cl.proofreading, [ ("c0", 1.0); ("c1", 0.5) ], 20.0, 0.05);
      ("damped rotation", Cl.damped_rotation, [ ("x", 1.0); ("y", -1.0) ], 20.0, 0.05);
      ("damped nonlinear", Cl.damped_nonlinear, [ ("x", 0.8); ("y", 0.8) ], 300.0, 0.1) ]

let () =
  Alcotest.run "biomodels"
    [
      ( "fenton-karma",
        [
          Alcotest.test_case "structure" `Quick test_fk_structure;
          Alcotest.test_case "action potential" `Quick test_fk_action_potential;
          Alcotest.test_case "subthreshold" `Quick test_fk_subthreshold_no_ap;
          Alcotest.test_case "free params" `Quick test_fk_free_params;
        ] );
      ( "bueno-cherry-fenton",
        [
          Alcotest.test_case "structure" `Quick test_bcf_structure;
          Alcotest.test_case "epicardial APD" `Quick test_bcf_epicardial_apd;
          Alcotest.test_case "APD vs tau_so1" `Quick test_bcf_apd_monotone_in_tau_so1;
          Alcotest.test_case "peak potential" `Quick test_bcf_peak_potential;
          Alcotest.test_case "stimulus box" `Quick test_bcf_stimulus_box;
        ] );
      ( "prostate",
        [
          Alcotest.test_case "IAS vs continuous" `Quick test_prostate_ias_vs_continuous;
          Alcotest.test_case "psa" `Quick test_prostate_psa;
          Alcotest.test_case "structure" `Quick test_prostate_structure;
          Alcotest.test_case "androgen dynamics" `Quick test_prostate_androgen_dynamics;
        ] );
      ( "tbi",
        [
          Alcotest.test_case "structure" `Quick test_tbi_structure;
          Alcotest.test_case "untreated dies" `Quick test_tbi_untreated_dies;
          Alcotest.test_case "treatment cycle" `Quick test_tbi_treatment_cycle;
          Alcotest.test_case "A alone insufficient" `Quick test_tbi_a_alone_insufficient;
          Alcotest.test_case "goals" `Quick test_tbi_goals;
        ] );
      ( "genetic",
        [
          Alcotest.test_case "toggle bistable" `Quick test_toggle_bistable;
          Alcotest.test_case "toggle attractors" `Quick test_toggle_attractors;
          Alcotest.test_case "toggle reachability" `Quick test_toggle_reachability;
          Alcotest.test_case "repressilator oscillates" `Quick test_repressilator_oscillates;
        ] );
      ( "classics",
        [
          Alcotest.test_case "lotka-volterra" `Quick test_lotka_volterra_oscillates;
          Alcotest.test_case "sir conservation" `Quick test_sir_conservation;
          Alcotest.test_case "p53 pulse" `Quick test_p53_pulse;
          Alcotest.test_case "stability subjects" `Quick test_stability_subjects_relax;
        ] );
    ]
