(* Differential tests for the degree-2 Taylor-model layer (Interval.Tm
   and its wiring): TM ranges vs true (sampled) values, the TM tape
   walker vs the interval and affine walkers, the Bernstein range bound,
   the TM-tightened HC4 revise, TM-on vs TM-off search agreement, and
   the kill-switch guarantee that BIOMC_NO_TM reproduces the
   affine-era search bit for bit (leaf sets pinned by fingerprint,
   including cache interactions). *)

module I = Interval.Ia
module TM = Interval.Tm
module Box = Interval.Box
module T = Expr.Term
module Tape = Expr.Tape
module P = Expr.Parse
module S = Icp.Solver
module J = Journal

let vars = [ "x"; "y"; "z" ]
let nvars = List.length vars

(* ---- random generators (deterministic seeds) ---- *)

let rand_leaf st =
  if Random.State.bool st then T.var (List.nth vars (Random.State.int st nvars))
  else T.const (Random.State.float st 4.0 -. 2.0)

let rec rand_smooth st depth =
  if depth = 0 then rand_leaf st
  else
    let sub () = rand_smooth st (depth - 1) in
    match Random.State.int st 16 with
    | 0 -> T.add (sub ()) (sub ())
    | 1 -> T.sub (sub ()) (sub ())
    | 2 -> T.mul (sub ()) (sub ())
    | 3 -> T.div (sub ()) (sub ())
    | 4 -> T.neg (sub ())
    | 5 -> T.pow (sub ()) (Random.State.int st 7 - 3)
    | 6 -> T.exp (sub ())
    | 7 -> T.log (sub ())
    | 8 -> T.sqrt (sub ())
    | 9 -> T.sin (sub ())
    | 10 -> T.cos (sub ())
    | 11 -> T.tan (sub ())
    | 12 -> T.atan (sub ())
    | 13 -> T.tanh (sub ())
    | 14 -> T.abs (sub ())
    | _ -> rand_leaf st

(* The full constructor set: the TM walker must stay sound through its
   Min/Max interval fallbacks too. *)
let rand_term st depth =
  if depth = 0 || Random.State.int st 8 > 0 then rand_smooth st depth
  else
    let sub () = rand_smooth st (depth - 1) in
    if Random.State.bool st then T.min_ (sub ()) (sub ())
    else T.max_ (sub ()) (sub ())

let rand_box st =
  Box.of_list
    (List.map
       (fun v ->
         let a = Random.State.float st 8.0 -. 4.0 in
         let w =
           match Random.State.int st 4 with
           | 0 -> 0.0 (* singleton *)
           | 1 -> Random.State.float st 0.5
           | _ -> Random.State.float st 4.0
         in
         (v, I.make a (a +. w)))
       vars)

let rand_point st b =
  List.map
    (fun (v, itv) ->
      (v, I.lo itv +. (Random.State.float st 1.0 *. I.width itv)))
    (Box.to_list b)

let rand_target st =
  match Random.State.int st 4 with
  | 0 -> I.of_float (Random.State.float st 4.0 -. 2.0)
  | 1 -> I.make (Random.State.float st 2.0 -. 2.0) (Random.State.float st 2.0)
  | 2 -> I.make (Random.State.float st 4.0 -. 2.0) Float.infinity
  | _ ->
      let a = Random.State.float st 6.0 -. 3.0 in
      I.make a (a +. Random.State.float st 1.0)

let inputs_of_box b =
  Array.of_list (List.map (fun v -> Box.find v b) vars)

(* ---- TM walker vs true values and the other walkers ----

   For every sampled point where the float evaluation is finite, all
   three walkers' root enclosures must contain it (up to
   float-evaluation slack): the TM concretization is a sound range,
   never *assumed* tighter than the interval or affine results — solver
   layers intersect them, which is exactly the licence this checks. *)
let test_tm_soundness_sampled () =
  let st = Random.State.make [| 70 |] in
  let checked = ref 0 in
  for case = 1 to 1_200 do
    let t = rand_term st (1 + Random.State.int st 4) in
    let b = rand_box st in
    let tp = Tape.compile ~vars [ t ] in
    let sc = Tape.scratch tp in
    let inp = inputs_of_box b in
    let r_tm = Array.make 1 I.empty
    and r_aff = Array.make 1 I.empty
    and r_itv = Array.make 1 I.empty in
    Tape.eval_tm_into tp sc ~inputs:inp ~out:r_tm;
    Tape.eval_affine_into tp sc ~inputs:inp ~out:r_aff;
    Tape.eval_interval_into tp sc ~inputs:inp ~out:r_itv;
    for _probe = 1 to 3 do
      let pt = rand_point st b in
      let v = try T.eval_env pt t with _ -> nan in
      if Float.is_finite v then begin
        incr checked;
        let slack = 1e-7 *. Float.max 1.0 (Float.abs v) in
        if not (I.mem v (I.inflate slack r_tm.(0))) then
          Alcotest.failf "case %d: %.17g outside TM range %s of %s" case v
            (I.to_string r_tm.(0)) (T.to_string t);
        if not (I.mem v (I.inflate slack r_aff.(0))) then
          Alcotest.failf "case %d: %.17g outside affine range %s of %s" case v
            (I.to_string r_aff.(0)) (T.to_string t);
        if not (I.mem v (I.inflate slack r_itv.(0))) then
          Alcotest.failf "case %d: %.17g outside interval range %s of %s" case
            v (I.to_string r_itv.(0)) (T.to_string t)
      end
    done
  done;
  if !checked < 1_000 then
    Alcotest.failf "only %d points checked — generator drifted" !checked

(* Second-order dependency problems where Taylor models provably beat
   affine forms; the tightness claim of the whole PR, pinned on its
   canonical examples (including the cubic band kernel that plateaued
   at 1.00x under the affine layer). *)
let test_tm_tightness_quadratic () =
  let widths ts box_l =
    let t = P.term ts in
    let tvars = T.free_var_list t in
    let tp = Tape.compile ~vars:tvars [ t ] in
    let sc = Tape.scratch tp in
    let b = Box.of_list box_l in
    let inp = Array.of_list (List.map (fun v -> Box.find v b) tvars) in
    let r_tm = Array.make 1 I.empty and r_aff = Array.make 1 I.empty in
    Tape.eval_tm_into tp sc ~inputs:inp ~out:r_tm;
    Tape.eval_affine_into tp sc ~inputs:inp ~out:r_aff;
    (r_tm.(0), r_aff.(0))
  in
  let check name ts box_l expect_width =
    let tm, aff = widths ts box_l in
    Alcotest.(check bool)
      (Printf.sprintf "%s: TM (%s) tighter than affine (%s)" name
         (I.to_string tm) (I.to_string aff))
      true
      (I.width tm < I.width aff);
    Alcotest.(check bool)
      (Printf.sprintf "%s: TM width %g below %g" name (I.width tm)
         expect_width)
      true
      (I.width tm <= expect_width)
  in
  (* x·(1−x) on [0,1]: true range [0, 1/4]; affine gives [0, 1/2]. *)
  check "logistic" "x*(1 - x)" [ ("x", I.make 0.0 1.0) ] 0.26;
  (* (x+y)² − 2xy = x² + y² on [0,1]²: the kept εₓεᵧ cross monomial
     cancels exactly; an affine form widens by its two product balls. *)
  check "cross-term" "(x + y)^2 - 2*x*y"
    [ ("x", I.make 0.0 1.0); ("y", I.make 0.0 1.0) ]
    2.01;
  (* The pave-cubic-band kernel's left edge, where the band test
     saturated at 1.00x under AF1. *)
  check "cubic-band" "x^3 - 2*x^2 + 1.25*x"
    [ ("x", I.make 0.0 0.5) ] 0.52

(* ---- the Bernstein range bound ---- *)

(* Random univariate quadratics q·ε² + l·ε + c built through the public
   ops: every sampled evaluation lies in the concretization, and the
   concretization is within the Bernstein control-polygon hull (the
   bound the affine layer structurally cannot provide). *)
let test_bernstein_bound () =
  let st = Random.State.make [| 71 |] in
  for case = 1 to 1_000 do
    let q = Random.State.float st 6.0 -. 3.0
    and l = Random.State.float st 6.0 -. 3.0
    and c = Random.State.float st 6.0 -. 3.0 in
    let x = TM.of_interval ~sym:0 (I.make (-1.0) 1.0) in
    let f = TM.add_const c (TM.add (TM.scale q (TM.sqr x)) (TM.scale l x)) in
    let range = TM.concretize f in
    (* Sampled containment. *)
    for _probe = 1 to 5 do
      let e = Random.State.float st 2.0 -. 1.0 in
      let v = (q *. e *. e) +. (l *. e) +. c in
      let slack = 1e-9 *. Float.max 1.0 (Float.abs v) in
      if not (I.mem v (I.inflate slack range)) then
        Alcotest.failf "case %d: %.17g escapes %s (q=%g l=%g c=%g)" case v
          (I.to_string range) q l c
    done;
    (* The Bernstein hull over the endpoints and midpoint control values
       {c+q−l, c−q, c+q+l} contains the true range, and the computed
       range must sit inside it (up to rounding slack). *)
    let b0 = c +. q -. l and b1 = c -. q and b2 = c +. q +. l in
    let hull =
      I.make
        (Float.min b0 (Float.min b1 b2))
        (Float.max b0 (Float.max b1 b2))
    in
    let slack = 1e-9 *. Float.max 1.0 (I.mag hull) in
    if not (I.subset range (I.inflate slack hull)) then
      Alcotest.failf "case %d: range %s exceeds Bernstein hull %s" case
        (I.to_string range) (I.to_string hull)
  done

(* ε² on [−1,1] pinned: the Bernstein bound gives [0, 1]; an affine
   form cannot see the sign. *)
let test_bernstein_sqr_pinned () =
  let x = TM.of_interval ~sym:0 (I.make (-1.0) 1.0) in
  let r = TM.concretize (TM.sqr x) in
  Alcotest.(check bool)
    (Printf.sprintf "sqr range %s is [0,1] up to slack" (I.to_string r))
    true
    (I.lo r >= -1e-9 && I.hi r <= 1.0 +. 1e-9 && I.hi r >= 1.0 -. 1e-9)

(* Degree-3 products must fold their high-degree part into the
   remainder — and say so in the truncation counter. *)
let test_truncation_counted () =
  let before = TM.truncations () in
  let x = TM.of_interval ~sym:0 (I.make 0.5 1.5) in
  let cube = TM.mul (TM.sqr x) x in
  Alcotest.(check bool) "cube is still a model" true
    (not (TM.is_bot cube));
  Alcotest.(check bool) "truncation counted" true (TM.truncations () > before);
  (* And the truncated model is still sound at the endpoints. *)
  let r = TM.concretize cube in
  List.iter
    (fun v ->
      if not (I.mem (v *. v *. v) (I.inflate 1e-9 r)) then
        Alcotest.failf "%g³ escapes truncated cube range %s" v
          (I.to_string r))
    [ 0.5; 1.0; 1.5 ]

(* ---- TM-tightened HC4 revise ---- *)

let robustly_in value target =
  Float.is_finite value
  && (not (I.is_empty target))
  &&
  let m = 1e-6 *. Float.max 1.0 (Float.abs value) in
  value >= I.lo target +. m && value <= I.hi target -. m

(* The tightened forward pass must never lose a witness: any sampled
   point robustly satisfying the constraint survives the contraction,
   and a plain-interval refutation is never un-refuted by the TM pass
   (its slots are subsets of the plain ones). *)
let test_hc4_tm_witnesses () =
  let st = Random.State.make [| 72 |] in
  let witnessed = ref 0 in
  for case = 1 to 1_000 do
    let t = rand_smooth st (1 + Random.State.int st 3) in
    let target = rand_target st in
    let b = rand_box st in
    let tp = Tape.compile ~vars [ t ] in
    let sc = Tape.scratch tp in
    let witnesses =
      List.filter_map
        (fun _ ->
          let pt = rand_point st b in
          let v = try T.eval_env pt t with _ -> nan in
          if robustly_in v target then Some pt else None)
        (List.init 20 Fun.id)
    in
    let dom_plain = inputs_of_box b in
    let ok_plain = Tape.hc4_revise tp sc ~target dom_plain in
    let dom_tm = inputs_of_box b in
    let ok_tm = Tape.hc4_revise tp sc ~affine:true ~tm:true ~target dom_tm in
    if (not ok_plain) && ok_tm then
      Alcotest.failf "case %d: TM pass un-refuted %s ∈ %s" case
        (T.to_string t) (I.to_string target);
    List.iter
      (fun pt ->
        incr witnessed;
        if not ok_tm then
          Alcotest.failf "case %d: TM revise refuted a witness of %s" case
            (T.to_string t);
        List.iteri
          (fun i v ->
            let x = List.assoc v pt in
            if not (I.mem x (I.inflate 1e-9 dom_tm.(i))) then
              Alcotest.failf "case %d: witness %s=%.17g contracted away (%s)"
                case v x
                (I.to_string dom_tm.(i)))
          vars)
      witnesses
  done;
  if !witnessed < 300 then
    Alcotest.failf "only %d witnesses checked — generator drifted" !witnessed

(* The canonical second-order refutation: x·(1−x) on [0,1] has true
   range [0, 1/4], but one plain forward/backward sweep keeps the
   target alive and the affine product's recentered quadratic still
   reaches 1/2 — only the kept ε² monomial kills the box.  The
   refutation counter must tick. *)
let test_hc4_tm_refutes_quadratic () =
  let refs = Telemetry.Counter.make ~always:true "tm.refutations" in
  let t = P.term "x*(1 - x)" in
  let tp = Tape.compile ~vars:[ "x" ] [ t ] in
  let sc = Tape.scratch tp in
  let target = I.make 0.5 1.0 in
  let dom () = [| I.make 0.0 1.0 |] in
  Alcotest.(check bool) "plain HC4 cannot refute" true
    (Tape.hc4_revise tp sc ~target (dom ()));
  Alcotest.(check bool) "affine pass cannot refute" true
    (Tape.hc4_revise tp sc ~affine:true ~target (dom ()));
  let before = Telemetry.Counter.value refs in
  Alcotest.(check bool) "TM pass refutes" false
    (Tape.hc4_revise tp sc ~tm:true ~target (dom ()));
  Alcotest.(check bool) "refutation counted" true
    (Telemetry.Counter.value refs > before)

(* ---- TM on vs off: decide and pave agreement ---- *)

let with_tm flag f =
  TM.set_enabled flag;
  Fun.protect ~finally:TM.clear_enabled_override f

let verdict_kind = function
  | S.Delta_sat _ -> "delta-sat"
  | S.Unsat -> "unsat"
  | S.Unknown _ -> "unknown"

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

(* Workloads kept away from the δ-boundary so both searches reach the
   same verdict kind (at the boundary, Unsat and Delta_sat are both
   δ-correct answers and the comparison would be meaningless). *)
let decide_cases =
  [ ("sqrt2", "x^2 = 2", box [ ("x", 0.0, 2.0) ]);
    ( "geom-unsat",
      "x^2 + y^2 <= 1 and x + y >= 3",
      box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] );
    ("sin", "sin(x) = 1/2", box [ ("x", 0.0, 3.0) ]);
    ( "cubic-dependency",
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3",
      box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] );
    ( "mm-kinetics",
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1",
      box [ ("s1", 0.0, 1.0); ("s2", 0.0, 1.0) ] );
    ( "tangency",
      "x^2 + y^2 = 1 and x*y = 1/2",
      box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] ) ]

let test_decide_on_vs_off () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      List.iter
        (fun jobs ->
          let config = { S.default_config with jobs } in
          let on =
            with_tm true (fun () -> verdict_kind (S.decide ~config f bx))
          in
          let off =
            with_tm false (fun () -> verdict_kind (S.decide ~config f bx))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s at jobs=%d" name jobs)
            off on)
        [ 1; 2 ])
    decide_cases

(* Paving on vs off: leaf sets legitimately differ (the TM pass changes
   contraction trajectories and certifies sat leaves earlier), but both
   are proofs over the same box, so a sat leaf of one run may never
   share volume with an unsat leaf of the other; feasibility must
   agree; and the TM paving must be identical between jobs=1 and
   jobs=2. *)
(* Pinned on the default pave path: under BIOMC_PORTFOLIO=1 a non-TM
   racer can win the race and certify nothing, which is legitimate but
   not what this test measures. *)
let test_pave_on_vs_off () =
  Icp.Portfolio.set_mode Icp.Portfolio.Off;
  Fun.protect ~finally:Icp.Portfolio.clear_mode_override @@ fun () ->
  let f =
    P.formula
      "x^3 - 2*x^2 + 1.25*x >= 0.2 and x^3 - 2*x^2 + 1.25*x <= 0.3 and \
       y^3 - 2*y^2 + 1.25*y >= 0.2 and y^3 - 2*y^2 + 1.25*y <= 0.3"
  in
  let bx = box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] in
  let config jobs = { S.default_config with S.epsilon = 0.05; jobs } in
  let p_on = with_tm true (fun () -> S.pave ~config:(config 1) f bx) in
  let p_off = with_tm false (fun () -> S.pave ~config:(config 1) f bx) in
  let contradicts sats unsats =
    List.exists
      (fun s -> List.exists (fun u -> Box.volume (Box.inter s u) > 0.0) unsats)
      sats
  in
  Alcotest.(check bool) "no sat(on)/unsat(off) contradiction" false
    (contradicts p_on.S.sat p_off.S.unsat);
  Alcotest.(check bool) "no sat(off)/unsat(on) contradiction" false
    (contradicts p_off.S.sat p_on.S.unsat);
  (* The band is feasible; at this ε the interval certifier leaves it
     all undecided while the TM certifier proves sat leaves — that gap
     is the point of the enclosure-assisted certification.  Every
     TM-certified leaf must actually satisfy the formula: check the
     center point of each. *)
  Alcotest.(check bool) "TM certifies the feasible band" true
    (p_on.S.sat <> []);
  List.iter
    (fun leaf ->
      match Expr.Formula.eval_cert (Box.midpoint leaf) f with
      | Expr.Formula.Impossible ->
          Alcotest.failf "TM-certified leaf %s has infeasible center"
            (Box.to_string leaf)
      | _ -> ())
    p_on.S.sat;
  let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
  let p_on2 = with_tm true (fun () -> S.pave ~config:(config 2) f bx) in
  List.iter
    (fun (label, l, l') ->
      Alcotest.(check bool)
        (Printf.sprintf "%s leaves equal at jobs=2" label)
        true
        (List.equal Box.equal (sort l) (sort l')))
    [ ("sat", p_on.S.sat, p_on2.S.sat);
      ("unsat", p_on.S.unsat, p_on2.S.unsat);
      ("undecided", p_on.S.undecided, p_on2.S.undecided) ]

(* ---- the kill-switch: BIOMC_NO_TM reproduces the old search ---- *)

(* Off-run, on-run, off-run again — with the caches at their default
   policy.  The second off-run must match the first in verdict kind AND
   in every stats field: any divergence would mean TM-era cache entries
   (HC4 fixpoints, refuted boxes, paving verdicts, flow tubes) leaked
   into the disabled search. *)
let stats_tuple (s : S.stats) =
  (s.S.boxes_processed, s.S.splits, s.S.prunings, s.S.max_depth,
   s.S.certifications)

let test_killswitch_decide_bitforbit () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      let run on =
        with_tm on (fun () ->
            let r, stats = S.decide_with_stats f bx in
            (verdict_kind r, stats_tuple stats))
      in
      let v1, s1 = run false in
      let _ = run true in
      let v2, s2 = run false in
      Alcotest.(check string) (name ^ ": off verdict reproduced") v1 v2;
      Alcotest.(check bool)
        (name ^ ": off stats reproduced (no cache leakage)") true (s1 = s2))
    decide_cases

(* The off-run leaf sets are compared through the same canonical
   fingerprint [biomc explain] uses to check reconstructed pavings, so
   "bit for bit" here means the digest of every leaf box endpoint. *)
let fingerprint paving =
  let bounds b =
    Array.of_list
      (List.map (fun (v, itv) -> (v, I.lo itv, I.hi itv)) (Box.to_list b))
  in
  J.leaf_bounds_fingerprint
    (List.map bounds (paving.S.sat @ paving.S.unsat @ paving.S.undecided))

let test_killswitch_pave_bitforbit () =
  let f = P.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
  let bx = box [ ("x", -1.5, 1.5); ("y", -1.5, 1.5) ] in
  let config = { S.default_config with S.epsilon = 0.05 } in
  let run on = with_tm on (fun () -> S.pave ~config f bx) in
  let p1 = run false in
  let _ = run true in
  let p2 = run false in
  Alcotest.(check string) "off leaf-set fingerprint reproduced"
    (fingerprint p1) (fingerprint p2);
  let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
  List.iter
    (fun (label, l, l') ->
      Alcotest.(check bool)
        (Printf.sprintf "off %s leaves reproduced" label)
        true
        (List.equal Box.equal (sort l) (sort l')))
    [ ("sat", p1.S.sat, p2.S.sat);
      ("unsat", p1.S.unsat, p2.S.unsat);
      ("undecided", p1.S.undecided, p2.S.undecided) ]

let () =
  Alcotest.run "tm"
    [ ( "soundness",
        [ Alcotest.test_case "TM range contains sampled values" `Quick
            test_tm_soundness_sampled;
          Alcotest.test_case "second-order tightness pinned" `Quick
            test_tm_tightness_quadratic ] );
      ( "bernstein",
        [ Alcotest.test_case "bound sound and within control hull" `Quick
            test_bernstein_bound;
          Alcotest.test_case "sqr range pinned to [0,1]" `Quick
            test_bernstein_sqr_pinned;
          Alcotest.test_case "degree-3 truncation counted" `Quick
            test_truncation_counted ] );
      ( "hc4",
        [ Alcotest.test_case "never loses a witness" `Quick
            test_hc4_tm_witnesses;
          Alcotest.test_case "refutes x(1-x) quadratic" `Quick
            test_hc4_tm_refutes_quadratic ] );
      ( "search",
        [ Alcotest.test_case "decide on vs off (jobs 1, 2)" `Quick
            test_decide_on_vs_off;
          Alcotest.test_case "pave on vs off consistency" `Quick
            test_pave_on_vs_off ] );
      ( "kill-switch",
        [ Alcotest.test_case "decide off-run reproduced" `Quick
            test_killswitch_decide_bitforbit;
          Alcotest.test_case "pave off-run fingerprint reproduced" `Quick
            test_killswitch_pave_bitforbit ] ) ]
