(* Differential tests for the affine-arithmetic layer (Interval.Affine
   and its wiring): affine ranges vs true (sampled) values, the affine
   tape walker vs the interval walker, condensation soundness, the
   affine-tightened HC4 revise, affine-on vs affine-off search
   agreement, and the kill-switch guarantee that BIOMC_NO_AFFINE
   reproduces the interval-only search bit for bit (including its cache
   interactions). *)

module I = Interval.Ia
module A = Interval.Affine
module Box = Interval.Box
module T = Expr.Term
module Tape = Expr.Tape
module P = Expr.Parse
module S = Icp.Solver

let vars = [ "x"; "y"; "z" ]
let nvars = List.length vars

(* ---- random generators (deterministic seeds) ---- *)

let rand_leaf st =
  if Random.State.bool st then T.var (List.nth vars (Random.State.int st nvars))
  else T.const (Random.State.float st 4.0 -. 2.0)

let rec rand_smooth st depth =
  if depth = 0 then rand_leaf st
  else
    let sub () = rand_smooth st (depth - 1) in
    match Random.State.int st 16 with
    | 0 -> T.add (sub ()) (sub ())
    | 1 -> T.sub (sub ()) (sub ())
    | 2 -> T.mul (sub ()) (sub ())
    | 3 -> T.div (sub ()) (sub ())
    | 4 -> T.neg (sub ())
    | 5 -> T.pow (sub ()) (Random.State.int st 7 - 3)
    | 6 -> T.exp (sub ())
    | 7 -> T.log (sub ())
    | 8 -> T.sqrt (sub ())
    | 9 -> T.sin (sub ())
    | 10 -> T.cos (sub ())
    | 11 -> T.tan (sub ())
    | 12 -> T.atan (sub ())
    | 13 -> T.tanh (sub ())
    | 14 -> T.abs (sub ())
    | _ -> rand_leaf st

(* The full constructor set: the affine walker must stay sound through
   its Min/Max interval fallbacks too. *)
let rand_term st depth =
  if depth = 0 || Random.State.int st 8 > 0 then rand_smooth st depth
  else
    let sub () = rand_smooth st (depth - 1) in
    if Random.State.bool st then T.min_ (sub ()) (sub ())
    else T.max_ (sub ()) (sub ())

let rand_box st =
  Box.of_list
    (List.map
       (fun v ->
         let a = Random.State.float st 8.0 -. 4.0 in
         let w =
           match Random.State.int st 4 with
           | 0 -> 0.0 (* singleton *)
           | 1 -> Random.State.float st 0.5
           | _ -> Random.State.float st 4.0
         in
         (v, I.make a (a +. w)))
       vars)

let rand_point st b =
  List.map
    (fun (v, itv) ->
      (v, I.lo itv +. (Random.State.float st 1.0 *. I.width itv)))
    (Box.to_list b)

let rand_target st =
  match Random.State.int st 4 with
  | 0 -> I.of_float (Random.State.float st 4.0 -. 2.0)
  | 1 -> I.make (Random.State.float st 2.0 -. 2.0) (Random.State.float st 2.0)
  | 2 -> I.make (Random.State.float st 4.0 -. 2.0) Float.infinity
  | _ ->
      let a = Random.State.float st 6.0 -. 3.0 in
      I.make a (a +. Random.State.float st 1.0)

let inputs_of_box b =
  Array.of_list (List.map (fun v -> Box.find v b) vars)

(* ---- affine walker vs true values and the interval walker ----

   For every sampled point where the float evaluation is finite, both
   walkers' root enclosures must contain it (up to float-evaluation
   slack): the affine concretization is a sound range, never *assumed*
   tighter than the interval result — solver layers intersect the two,
   which is exactly what this licence checks. *)
let test_affine_soundness_sampled () =
  let st = Random.State.make [| 60 |] in
  let checked = ref 0 in
  for case = 1 to 1_200 do
    let t = rand_term st (1 + Random.State.int st 4) in
    let b = rand_box st in
    let tp = Tape.compile ~vars [ t ] in
    let sc = Tape.scratch tp in
    let inp = inputs_of_box b in
    let r_aff = Array.make 1 I.empty and r_itv = Array.make 1 I.empty in
    Tape.eval_affine_into tp sc ~inputs:inp ~out:r_aff;
    Tape.eval_interval_into tp sc ~inputs:inp ~out:r_itv;
    for _probe = 1 to 3 do
      let pt = rand_point st b in
      let v = try T.eval_env pt t with _ -> nan in
      if Float.is_finite v then begin
        incr checked;
        let slack = 1e-7 *. Float.max 1.0 (Float.abs v) in
        if not (I.mem v (I.inflate slack r_aff.(0))) then
          Alcotest.failf "case %d: %.17g outside affine range %s of %s" case v
            (I.to_string r_aff.(0)) (T.to_string t);
        if not (I.mem v (I.inflate slack r_itv.(0))) then
          Alcotest.failf "case %d: %.17g outside interval range %s of %s" case
            v (I.to_string r_itv.(0)) (T.to_string t)
      end
    done
  done;
  if !checked < 1_000 then
    Alcotest.failf "only %d points checked — generator drifted" !checked

(* Dependency problems where affine forms provably beat intervals; the
   tightness claim of the whole PR, pinned on its canonical examples. *)
let test_affine_tightness_dependency () =
  let check name ts box_l expect_width =
    let t = P.term ts in
    let tvars = T.free_var_list t in
    let tp = Tape.compile ~vars:tvars [ t ] in
    let sc = Tape.scratch tp in
    let b = Box.of_list box_l in
    let inp = Array.of_list (List.map (fun v -> Box.find v b) tvars) in
    let r_aff = Array.make 1 I.empty and r_itv = Array.make 1 I.empty in
    Tape.eval_affine_into tp sc ~inputs:inp ~out:r_aff;
    Tape.eval_interval_into tp sc ~inputs:inp ~out:r_itv;
    Alcotest.(check bool)
      (Printf.sprintf "%s: affine (%s) tighter than interval (%s)" name
         (I.to_string r_aff.(0)) (I.to_string r_itv.(0)))
      true
      (I.width r_aff.(0) < I.width r_itv.(0));
    Alcotest.(check bool)
      (Printf.sprintf "%s: affine width below %g" name expect_width)
      true
      (I.width r_aff.(0) <= expect_width)
  in
  check "cancellation" "x - x" [ ("x", I.make 0.0 1.0) ] 1e-9;
  check "logistic" "x*(1 - x)" [ ("x", I.make 0.0 1.0) ] 0.51;
  check "shifted-diff" "(x + 1) - x" [ ("x", I.make (-2.0) 2.0) ] 1e-9;
  check "quadratic" "x^2 - 2*x" [ ("x", I.make 0.0 2.0) ] 3.1

(* ---- condensation preserves the enclosure ---- *)

let rand_interval st =
  let a = Random.State.float st 8.0 -. 4.0 in
  I.make a (a +. Random.State.float st 2.0)

(* Random forms with many noise symbols, built through the public ops;
   condensing to any budget must only widen the concretization. *)
let test_condense_encloses () =
  let st = Random.State.make [| 61 |] in
  for case = 1 to 1_000 do
    let n = 2 + Random.State.int st 10 in
    let f = ref (A.of_interval ~sym:0 (rand_interval st)) in
    for i = 1 to n - 1 do
      let leaf = A.of_interval ~sym:i (rand_interval st) in
      f :=
        (match Random.State.int st 4 with
        | 0 -> A.add !f leaf
        | 1 -> A.sub !f leaf
        | 2 -> A.mul !f leaf
        | _ -> A.add (A.scale (Random.State.float st 2.0 -. 1.0) !f) leaf)
    done;
    let budget = 1 + Random.State.int st 4 in
    let c = A.condense ~budget !f in
    if A.nterms c > budget then
      Alcotest.failf "case %d: %d terms left after condense to %d" case
        (A.nterms c) budget;
    (* Both radii are upward-rounded sums of the same exact quantity in
       different association orders, so the condensed concretization may
       sit a few ulps inside the original; containment holds up to that
       rounding slack. *)
    let slack = 1e-12 *. Float.max 1.0 (I.mag (A.concretize !f)) in
    if not (I.subset (A.concretize !f) (I.inflate slack (A.concretize c))) then
      Alcotest.failf "case %d: condensation shrank %s to %s" case
        (I.to_string (A.concretize !f))
        (I.to_string (A.concretize c))
  done

(* A tiny process-wide budget must keep the walker sound (forms
   auto-condense mid-evaluation) and actually fire the condensation
   counter. *)
let test_budget_soundness () =
  let st = Random.State.make [| 62 |] in
  let cond = Telemetry.Counter.make ~always:true "affine.condensations" in
  let before = Telemetry.Counter.value cond in
  A.set_budget 2;
  Fun.protect
    ~finally:(fun () -> A.set_budget A.default_budget)
    (fun () ->
      for case = 1 to 300 do
        let t = rand_smooth st (2 + Random.State.int st 3) in
        let b = rand_box st in
        let tp = Tape.compile ~vars [ t ] in
        let sc = Tape.scratch tp in
        let r = Array.make 1 I.empty in
        Tape.eval_affine_into tp sc ~inputs:(inputs_of_box b) ~out:r;
        for _probe = 1 to 2 do
          let pt = rand_point st b in
          let v = try T.eval_env pt t with _ -> nan in
          if Float.is_finite v then
            let slack = 1e-7 *. Float.max 1.0 (Float.abs v) in
            if not (I.mem v (I.inflate slack r.(0))) then
              Alcotest.failf "case %d: %.17g escapes budget-2 range %s of %s"
                case v (I.to_string r.(0)) (T.to_string t)
        done
      done);
  Alcotest.(check bool) "condensations fired" true
    (Telemetry.Counter.value cond > before)

(* ---- affine-tightened HC4 revise ---- *)

let robustly_in value target =
  Float.is_finite value
  && (not (I.is_empty target))
  &&
  let m = 1e-6 *. Float.max 1.0 (Float.abs value) in
  value >= I.lo target +. m && value <= I.hi target -. m

(* The tightened forward pass must never lose a witness: any sampled
   point robustly satisfying the constraint survives the contraction,
   and a plain-interval refutation is never un-refuted by the affine
   pass (its slots are subsets of the plain ones). *)
let test_hc4_affine_witnesses () =
  let st = Random.State.make [| 63 |] in
  let witnessed = ref 0 in
  for case = 1 to 1_000 do
    let t = rand_smooth st (1 + Random.State.int st 3) in
    let target = rand_target st in
    let b = rand_box st in
    let tp = Tape.compile ~vars [ t ] in
    let sc = Tape.scratch tp in
    let witnesses =
      List.filter_map
        (fun _ ->
          let pt = rand_point st b in
          let v = try T.eval_env pt t with _ -> nan in
          if robustly_in v target then Some pt else None)
        (List.init 20 Fun.id)
    in
    let dom_plain = inputs_of_box b in
    let ok_plain = Tape.hc4_revise tp sc ~target dom_plain in
    let dom_aff = inputs_of_box b in
    let ok_aff = Tape.hc4_revise tp sc ~affine:true ~target dom_aff in
    if (not ok_plain) && ok_aff then
      Alcotest.failf "case %d: affine pass un-refuted %s ∈ %s" case
        (T.to_string t) (I.to_string target);
    List.iter
      (fun pt ->
        incr witnessed;
        if not ok_aff then
          Alcotest.failf "case %d: affine revise refuted a witness of %s" case
            (T.to_string t);
        List.iteri
          (fun i v ->
            let x = List.assoc v pt in
            if not (I.mem x (I.inflate 1e-9 dom_aff.(i))) then
              Alcotest.failf "case %d: witness %s=%.17g contracted away (%s)"
                case v x
                (I.to_string dom_aff.(i)))
          vars)
      witnesses
  done;
  if !witnessed < 300 then
    Alcotest.failf "only %d witnesses checked — generator drifted" !witnessed

(* The canonical refutation interval arithmetic cannot make: x - x is
   pinned to (near) zero by shared noise symbols, so a target away from
   zero dies in the affine forward pass — and the refutation counter
   ticks. *)
let test_hc4_affine_refutes_cancellation () =
  let refs = Telemetry.Counter.make ~always:true "affine.refutations" in
  let t = P.term "x - x" in
  let tp = Tape.compile ~vars:[ "x" ] [ t ] in
  let sc = Tape.scratch tp in
  let target = I.make 0.5 1.0 in
  let dom () = [| I.make 0.0 4.0 |] in
  Alcotest.(check bool) "plain HC4 cannot refute" true
    (Tape.hc4_revise tp sc ~target (dom ()));
  let before = Telemetry.Counter.value refs in
  Alcotest.(check bool) "affine pass refutes" false
    (Tape.hc4_revise tp sc ~affine:true ~target (dom ()));
  Alcotest.(check bool) "refutation counted" true
    (Telemetry.Counter.value refs > before)

(* ---- affine on vs off: decide and pave agreement ---- *)

let with_affine flag f =
  A.set_enabled flag;
  Fun.protect ~finally:A.clear_enabled_override f

let verdict_kind = function
  | S.Delta_sat _ -> "delta-sat"
  | S.Unsat -> "unsat"
  | S.Unknown _ -> "unknown"

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

(* Workloads kept away from the δ-boundary so both searches reach the
   same verdict kind (at the boundary, Unsat and Delta_sat are both
   δ-correct answers and the comparison would be meaningless). *)
let decide_cases =
  [ ("sqrt2", "x^2 = 2", box [ ("x", 0.0, 2.0) ]);
    ( "geom-unsat",
      "x^2 + y^2 <= 1 and x + y >= 3",
      box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] );
    ("sin", "sin(x) = 1/2", box [ ("x", 0.0, 3.0) ]);
    ( "cubic-dependency",
      "x^3 - 2*x^2 + 1.25*x = 0.25 and y^3 - 2*y^2 + 1.25*y = 0.25 and \
       (x - y)^2 >= 0.3",
      box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] );
    ( "mm-kinetics",
      "1.2*s1/(0.4 + s1) + 1.2*s2/(0.4 + s2) = 1.35 and s1 + s2 = 1",
      box [ ("s1", 0.0, 1.0); ("s2", 0.0, 1.0) ] );
    ( "tangency",
      "x^2 + y^2 = 1 and x*y = 1/2",
      box [ ("x", 0.0, 2.0); ("y", 0.0, 2.0) ] ) ]

let test_decide_on_vs_off () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      List.iter
        (fun jobs ->
          let config = { S.default_config with jobs } in
          let on =
            with_affine true (fun () -> verdict_kind (S.decide ~config f bx))
          in
          let off =
            with_affine false (fun () -> verdict_kind (S.decide ~config f bx))
          in
          Alcotest.(check string)
            (Printf.sprintf "%s at jobs=%d" name jobs)
            off on)
        [ 1; 2 ])
    decide_cases

(* Paving on vs off: leaf sets legitimately differ (the affine pass
   changes contraction trajectories), but both are proofs over the same
   box, so a sat leaf of one run may never share volume with an unsat
   leaf of the other; feasibility must agree; and the affine paving must
   be identical between jobs=1 and jobs=2. *)
let test_pave_on_vs_off () =
  let f =
    P.formula
      "a*k*exp(-k) >= 0.3 and a*k*exp(-k) <= 0.5 and \
       3*a*k*exp(-3*k) >= 0.1 and 3*a*k*exp(-3*k) <= 0.3"
  in
  let bx = box [ ("k", 0.05, 2.5); ("a", 0.2, 3.0) ] in
  let config jobs = { S.default_config with S.epsilon = 0.05; jobs } in
  let p_on = with_affine true (fun () -> S.pave ~config:(config 1) f bx) in
  let p_off = with_affine false (fun () -> S.pave ~config:(config 1) f bx) in
  let contradicts sats unsats =
    List.exists
      (fun s -> List.exists (fun u -> Box.volume (Box.inter s u) > 0.0) unsats)
      sats
  in
  Alcotest.(check bool) "no sat(on)/unsat(off) contradiction" false
    (contradicts p_on.S.sat p_off.S.unsat);
  Alcotest.(check bool) "no sat(off)/unsat(on) contradiction" false
    (contradicts p_off.S.sat p_on.S.unsat);
  Alcotest.(check bool) "feasibility agrees"
    (p_off.S.sat <> []) (p_on.S.sat <> []);
  let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
  let p_on2 = with_affine true (fun () -> S.pave ~config:(config 2) f bx) in
  List.iter
    (fun (label, l, l') ->
      Alcotest.(check bool)
        (Printf.sprintf "%s leaves equal at jobs=2" label)
        true
        (List.equal Box.equal (sort l) (sort l')))
    [ ("sat", p_on.S.sat, p_on2.S.sat);
      ("unsat", p_on.S.unsat, p_on2.S.unsat);
      ("undecided", p_on.S.undecided, p_on2.S.undecided) ]

(* ---- the kill-switch: BIOMC_NO_AFFINE reproduces the old search ---- *)

(* Off-run, on-run, off-run again — with the caches at their default
   policy.  The second off-run must match the first in verdict kind AND
   in every stats field: any divergence would mean affine-era cache
   entries (HC4 fixpoints, refuted boxes, paving verdicts, flow tubes)
   leaked into the disabled search. *)
let stats_tuple (s : S.stats) =
  (s.S.boxes_processed, s.S.splits, s.S.prunings, s.S.max_depth,
   s.S.certifications)

let test_killswitch_decide_bitforbit () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      let run on =
        with_affine on (fun () ->
            let r, stats = S.decide_with_stats f bx in
            (verdict_kind r, stats_tuple stats))
      in
      let v1, s1 = run false in
      let _ = run true in
      let v2, s2 = run false in
      Alcotest.(check string) (name ^ ": off verdict reproduced") v1 v2;
      Alcotest.(check bool)
        (name ^ ": off stats reproduced (no cache leakage)") true (s1 = s2))
    decide_cases

let test_killswitch_pave_bitforbit () =
  let f = P.formula "x^2 + y^2 <= 1 and x^2 + y^2 >= 1/2" in
  let bx = box [ ("x", -1.5, 1.5); ("y", -1.5, 1.5) ] in
  let config = { S.default_config with S.epsilon = 0.05 } in
  let run on = with_affine on (fun () -> S.pave ~config f bx) in
  let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
  let p1 = run false in
  let _ = run true in
  let p2 = run false in
  List.iter
    (fun (label, l, l') ->
      Alcotest.(check bool)
        (Printf.sprintf "off %s leaves reproduced" label)
        true
        (List.equal Box.equal (sort l) (sort l')))
    [ ("sat", p1.S.sat, p2.S.sat);
      ("unsat", p1.S.unsat, p2.S.unsat);
      ("undecided", p1.S.undecided, p2.S.undecided) ]

let () =
  Alcotest.run "affine"
    [ ( "soundness",
        [ Alcotest.test_case "affine range contains sampled values" `Quick
            test_affine_soundness_sampled;
          Alcotest.test_case "dependency tightness pinned" `Quick
            test_affine_tightness_dependency ] );
      ( "condensation",
        [ Alcotest.test_case "condense only widens" `Quick
            test_condense_encloses;
          Alcotest.test_case "tiny budget stays sound" `Quick
            test_budget_soundness ] );
      ( "hc4",
        [ Alcotest.test_case "never loses a witness" `Quick
            test_hc4_affine_witnesses;
          Alcotest.test_case "refutes x-x dependency" `Quick
            test_hc4_affine_refutes_cancellation ] );
      ( "search",
        [ Alcotest.test_case "decide on vs off (jobs 1, 2)" `Quick
            test_decide_on_vs_off;
          Alcotest.test_case "pave on vs off consistency" `Quick
            test_pave_on_vs_off ] );
      ( "kill-switch",
        [ Alcotest.test_case "decide off-run reproduced" `Quick
            test_killswitch_decide_bitforbit;
          Alcotest.test_case "pave off-run reproduced" `Quick
            test_killswitch_pave_bitforbit ] ) ]
