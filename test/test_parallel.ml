(* Tests for the multicore layer: the domain pool itself, and agreement
   between the sequential (jobs = 1) and parallel code paths of the
   δ-decision solver, the paver, the reachability checker, and SMC.

   Agreement is on verdict *kinds* (and, where the parallel search is
   deterministic, on exact leaf sets): which δ-sat witness wins a
   portfolio race is documented nondeterminism. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse
module S = Icp.Solver
module E = Reach.Encoding
module C = Reach.Checker

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

(* CI's jobs=2 leg runs the whole parallel suite with the sweep pinned
   to [1; j] and the domain cap raised to [j], so the agreement tests
   exercise real cross-domain scheduling even on 1-core runners. *)
let jobs_sweep =
  match Sys.getenv_opt "BIOMC_TEST_JOBS" with
  | Some s -> (
      match int_of_string_opt s with
      | Some j when j > 1 ->
          Parallel.Pool.set_domain_cap (Some j);
          [ 1; j ]
      | _ -> [ 1; 2; 4 ])
  | None -> [ 1; 2; 4 ]

(* Force real domains for a scheduler stress test, then restore. *)
let with_domain_cap n f =
  let saved =
    match Sys.getenv_opt "BIOMC_TEST_JOBS" with
    | Some s -> (
        match int_of_string_opt s with Some j when j > 1 -> Some j | _ -> None)
    | None -> None
  in
  Parallel.Pool.set_domain_cap (Some n);
  Fun.protect ~finally:(fun () -> Parallel.Pool.set_domain_cap saved) f

let with_workstealing b f =
  Parallel.Pool.set_workstealing b;
  Fun.protect ~finally:Parallel.Pool.clear_workstealing_override f

(* ---- Pool primitives ---- *)

let test_run_worker_order () =
  let r = Parallel.Pool.run ~jobs:4 (fun w -> w * w) in
  Alcotest.(check (list int)) "results in worker order" [ 0; 1; 4; 9 ]
    (Array.to_list r)

let test_run_propagates_exception () =
  match Parallel.Pool.run ~jobs:3 (fun w -> if w = 1 then failwith "boom" else w) with
  | exception Failure msg -> Alcotest.(check string) "worker exn" "boom" msg
  | _ -> Alcotest.fail "expected the worker exception to propagate"

let test_chunks_partition () =
  let n = 17 and jobs = 4 in
  let seen = Array.make n 0 in
  for w = 0 to jobs - 1 do
    let lo, hi = Parallel.Pool.chunk ~jobs ~n w in
    for i = lo to hi - 1 do
      seen.(i) <- seen.(i) + 1
    done
  done;
  Alcotest.(check bool) "every index covered exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

let test_frontier_drains_all () =
  (* Count down from each seed; every decrement must be processed. *)
  let total = Atomic.make 0 in
  let fr = Parallel.Pool.Frontier.create [ 5; 3; 7 ] in
  Parallel.Pool.Frontier.drain ~jobs:4 fr (fun _w slot n ->
      Atomic.incr total;
      if n > 0 then Parallel.Pool.Frontier.push slot (n - 1));
  Alcotest.(check int) "5+1 + 3+1 + 7+1 items" 18 (Atomic.get total)

let test_frontier_stop_discards () =
  let processed = Atomic.make 0 in
  let fr = Parallel.Pool.Frontier.create (List.init 100 Fun.id) in
  Parallel.Pool.Frontier.drain ~jobs:2 fr (fun _w _slot _n ->
      if Atomic.fetch_and_add processed 1 = 0 then
        Parallel.Pool.Frontier.stop fr);
  Alcotest.(check bool) "stop cuts the queue short"
    true
    (Atomic.get processed < 100)

let test_first_conclusive () =
  let r =
    Parallel.Pool.first_conclusive ~jobs:2
      [ (fun ~cancelled:_ ~conclude:_ -> ());
        (fun ~cancelled:_ ~conclude -> conclude 42) ]
  in
  Alcotest.(check (option int)) "the concluding task wins" (Some 42) r;
  let none =
    Parallel.Pool.first_conclusive ~jobs:2
      [ (fun ~cancelled:_ ~conclude:_ -> ()); (fun ~cancelled:_ ~conclude:_ -> ()) ]
  in
  Alcotest.(check (option int)) "no conclusion -> None" None none

let test_first_conclusive_stops_immediately () =
  (* A winner's [conclude] must stop the frontier while the winner is
     still running, so queued tasks stop being dequeued at once: task 0
     concludes (after at least one recorder ran, so the other domain is
     live) and then stays busy; meanwhile the other worker chews through
     recorder tasks.  If stop only fired when the winner's thunk
     returned — the old behaviour — all recorders would run during the
     winner's busy tail. *)
  with_domain_cap 2 @@ fun () ->
  let n = 2_000 in
  let ran = Atomic.make 0 in
  let sink = ref 0.0 in
  let recorder ~cancelled:_ ~conclude:_ =
    Atomic.incr ran;
    (* a few microseconds of work per task, so the busy tail below is
       orders of magnitude longer than the stop latency *)
    for i = 1 to 1_000 do
      sink := !sink +. Float.sin (float_of_int i)
    done
  in
  let winner ~cancelled:_ ~conclude =
    while Atomic.get ran = 0 do
      Domain.cpu_relax ()
    done;
    conclude 1;
    (* busy tail: long enough for the other worker to drain every
       remaining recorder if the frontier were still live *)
    for i = 1 to 20_000_000 do
      sink := !sink +. float_of_int (i land 7)
    done
  in
  let r =
    Parallel.Pool.first_conclusive ~jobs:2
      (winner :: List.init (n - 1) (fun _ -> recorder))
  in
  Alcotest.(check (option int)) "winner's value" (Some 1) r;
  Alcotest.(check bool)
    (Printf.sprintf "recorders cut short (%d of %d ran)" (Atomic.get ran) (n - 1))
    true
    (Atomic.get ran < n - 1)

(* ---- Deque primitives ---- *)

let test_deque_order () =
  let d : int Parallel.Deque.t = Parallel.Deque.create () in
  List.iter (Parallel.Deque.push d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "LIFO pop" (Some 3) (Parallel.Deque.pop d);
  Parallel.Deque.push_list d [ 10; 11; 12 ];
  Alcotest.(check (option int)) "batch head first" (Some 10) (Parallel.Deque.pop d);
  Alcotest.(check (option int)) "then batch order" (Some 11) (Parallel.Deque.pop d);
  Alcotest.(check (option int)) "batch tail" (Some 12) (Parallel.Deque.pop d);
  Alcotest.(check (option int)) "back to LIFO" (Some 2) (Parallel.Deque.pop d);
  Alcotest.(check (option int)) "oldest last" (Some 1) (Parallel.Deque.pop d);
  Alcotest.(check (option int)) "empty" None (Parallel.Deque.pop d)

let test_deque_steal_half () =
  let v : int Parallel.Deque.t = Parallel.Deque.create () in
  for i = 1 to 8 do
    Parallel.Deque.push v i
  done;
  let thief = Parallel.Deque.create () in
  (* oldest half: 1 (returned) and 2, 3, 4 (into the thief, age order) *)
  Alcotest.(check (option int)) "oldest item returned" (Some 1)
    (Parallel.Deque.steal_half v ~into:thief);
  Alcotest.(check int) "victim keeps newest half" 4 (Parallel.Deque.size v);
  Alcotest.(check (option int)) "thief pops stolen in age order" (Some 2)
    (Parallel.Deque.pop thief);
  Alcotest.(check (option int)) "next stolen" (Some 3) (Parallel.Deque.pop thief);
  Alcotest.(check (option int)) "last stolen" (Some 4) (Parallel.Deque.pop thief);
  Alcotest.(check (option int)) "thief drained" None (Parallel.Deque.pop thief);
  Alcotest.(check (option int)) "victim newest intact" (Some 8)
    (Parallel.Deque.pop v);
  Alcotest.(check (option int)) "steal of singleton returns it" (Some 5)
    (let v2 = Parallel.Deque.create () in
     Parallel.Deque.push v2 5;
     Parallel.Deque.steal_half v2 ~into:thief)

(* Raw deque stress: an owner pushes [total] items in bursts and pops,
   while thieves steal (from anyone, including each other) and drain
   their own deques.  Every item must be consumed exactly once. *)
let deque_stress ~jobs ~total () =
  with_domain_cap jobs @@ fun () ->
  let deques = Array.init jobs (fun _ -> Parallel.Deque.create ()) in
  let consumed = Atomic.make 0 in
  let bags =
    Parallel.Pool.run ~jobs (fun w ->
        let mine = deques.(w) in
        let bag = ref [] in
        let eat x =
          bag := x :: !bag;
          Atomic.incr consumed
        in
        let try_steal () =
          let rec go v =
            if v >= jobs then None
            else if v = w then go (v + 1)
            else
              match Parallel.Deque.steal_half deques.(v) ~into:mine with
              | Some _ as r -> r
              | None -> go (v + 1)
          in
          go 0
        in
        if w = 0 then begin
          (* owner: push in bursts of 16, popping one per burst *)
          let i = ref 0 in
          while !i < total do
            let burst = Stdlib.min 16 (total - !i) in
            Parallel.Deque.push_list mine (List.init burst (fun k -> !i + k));
            i := !i + burst;
            match Parallel.Deque.pop mine with Some x -> eat x | None -> ()
          done
        end;
        (* everyone drains until the global count is reached *)
        while Atomic.get consumed < total do
          match Parallel.Deque.pop mine with
          | Some x -> eat x
          | None -> (
              match try_steal () with
              | Some x -> eat x
              | None -> Domain.cpu_relax ())
        done;
        !bag)
  in
  let seen = Array.make total 0 in
  Array.iter (List.iter (fun x -> seen.(x) <- seen.(x) + 1)) bags;
  Alcotest.(check int) "every item consumed" total (Atomic.get consumed);
  Alcotest.(check bool) "no loss, no duplication" true
    (Array.for_all (fun c -> c = 1) seen)

(* Frontier stress with dynamic pushes: seeds [0, n) each spawn one
   child [n + i]; the processed multiset must be exactly seeds+children. *)
let frontier_stress ~jobs ~n () =
  with_domain_cap jobs @@ fun () ->
  let seen = Array.make (2 * n) 0 in
  let bags = Array.init jobs (fun _ -> ref []) in
  let fr = Parallel.Pool.Frontier.create (List.init n Fun.id) in
  Parallel.Pool.Frontier.drain ~jobs fr (fun w slot x ->
      bags.(w) := x :: !(bags.(w));
      if x < n then Parallel.Pool.Frontier.push slot (x + n));
  Array.iter (fun bag -> List.iter (fun x -> seen.(x) <- seen.(x) + 1) !bag) bags;
  Alcotest.(check bool) "seeds and children each processed exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

let test_first_conclusive_lease_exact () =
  (* Racer budget leases must be settled exactly at the race's end:
     winner and losers alike return their unspent chunks — including
     racers the stop flag cut from the queue unrun — so [consumed]
     reports actual spends, not chunk takes.  (Before the portfolio
     work, cancelled racers leaked their last chunk until a caller-side
     sweep.)  jobs=1 makes the schedule deterministic: task 0 runs and
     retires, task 1 concludes, task 2 is never dequeued. *)
  let n = 3 in
  let leases =
    Array.init n (fun _ -> Parallel.Pool.Lease.create ~total:1_000 ())
  in
  let locals = Array.map Parallel.Pool.Lease.local leases in
  let spends = [| 5; 7; 0 |] in
  let tasks =
    List.init n (fun i ~cancelled:_ ~conclude ->
        for _ = 1 to spends.(i) do
          ignore (Parallel.Pool.Lease.spend locals.(i))
        done;
        if i = 1 then conclude i)
  in
  let r = Parallel.Pool.first_conclusive ~jobs:1 ~leases:locals tasks in
  Alcotest.(check (option int)) "rank-1 racer wins" (Some 1) r;
  Array.iteri
    (fun i lease ->
      Alcotest.(check int)
        (Printf.sprintf "lease %d consumption exact" i)
        spends.(i)
        (Parallel.Pool.Lease.consumed lease))
    leases

(* ---- Budget leases ---- *)

let test_lease_exact_consumption () =
  List.iter
    (fun (total, jobs) ->
      with_domain_cap (Stdlib.min jobs 4) @@ fun () ->
      let lease = Parallel.Pool.Lease.create ~total () in
      let spent =
        Parallel.Pool.run ~jobs (fun _w ->
            let l = Parallel.Pool.Lease.local lease in
            let n = ref 0 in
            while Parallel.Pool.Lease.spend l do
              incr n
            done;
            Parallel.Pool.Lease.return_unspent l;
            !n)
      in
      let sum = Array.fold_left ( + ) 0 spent in
      Alcotest.(check int)
        (Printf.sprintf "all %d units spent once (jobs=%d)" total jobs)
        total sum;
      Alcotest.(check int)
        (Printf.sprintf "consumed exact (total=%d jobs=%d)" total jobs)
        total
        (Parallel.Pool.Lease.consumed lease))
    [ (1000, 2); (1000, 4); (37, 4); (0, 2); (64, 3) ]

let test_lease_partial_return () =
  let lease = Parallel.Pool.Lease.create ~chunk:16 ~total:1_000 () in
  let locals = Array.init 3 (fun _ -> Parallel.Pool.Lease.local lease) in
  Array.iter
    (fun l ->
      for _ = 1 to 10 do
        ignore (Parallel.Pool.Lease.spend l)
      done)
    locals;
  Array.iter Parallel.Pool.Lease.return_unspent locals;
  Alcotest.(check int) "consumed = successful spends only" 30
    (Parallel.Pool.Lease.consumed lease);
  (* the returned units are spendable again *)
  let l = Parallel.Pool.Lease.local lease in
  let n = ref 0 in
  while Parallel.Pool.Lease.spend l do
    incr n
  done;
  Alcotest.(check int) "remainder spendable" 970 !n

let test_lease_legacy_chunk_one () =
  (* With work-stealing disabled the lease degenerates to the historical
     per-box atomic: chunk forced to 1, same exact accounting. *)
  with_workstealing false @@ fun () ->
  let lease = Parallel.Pool.Lease.create ~chunk:64 ~total:100 () in
  let l = Parallel.Pool.Lease.local lease in
  let n = ref 0 in
  while Parallel.Pool.Lease.spend l do
    incr n
  done;
  Parallel.Pool.Lease.return_unspent l;
  Alcotest.(check int) "exactly total spends" 100 !n;
  Alcotest.(check int) "consumed exact" 100 (Parallel.Pool.Lease.consumed lease)

(* ---- decide: parallel vs sequential verdict kinds ---- *)

let verdict_kind = function
  | S.Delta_sat _ -> "delta-sat"
  | S.Unsat -> "unsat"
  | S.Unknown _ -> "unknown"

let check_decide_agrees name formula bx =
  let f = P.formula formula in
  let expected =
    verdict_kind (S.decide ~config:{ S.default_config with jobs = 1 } f bx)
  in
  List.iter
    (fun jobs ->
      let got =
        verdict_kind (S.decide ~config:{ S.default_config with jobs } f bx)
      in
      Alcotest.(check string)
        (Printf.sprintf "%s at jobs=%d" name jobs)
        expected got)
    jobs_sweep

let test_decide_sqrt2 () =
  check_decide_agrees "sqrt2" "x^2 = 2" (box [ ("x", 0.0, 2.0) ])

let test_decide_geom_unsat () =
  check_decide_agrees "geom-unsat" "x^2 + y^2 <= 1 and x + y >= 3"
    (box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ])

let test_decide_sin () =
  check_decide_agrees "sin" "sin(x) = 1/2" (box [ ("x", 0.0, 3.0) ])

let test_decide_disjunction_portfolio () =
  (* First disjunct infeasible in the box, second δ-sat: the portfolio
     must still find the satisfiable branch. *)
  check_decide_agrees "disjunction"
    "(x <= 0 - 5 and x >= 0 - 6) or x^2 = 9"
    (box [ ("x", 0.0, 10.0) ])

let test_decide_witness_valid () =
  (* Whatever witness the parallel race returns must lie in the box. *)
  let f = P.formula "x^2 = 2" in
  let bx = box [ ("x", 0.0, 2.0) ] in
  List.iter
    (fun jobs ->
      match S.decide ~config:{ S.default_config with jobs } f bx with
      | S.Delta_sat w ->
          let x = List.assoc "x" w.S.point in
          Alcotest.(check bool)
            (Printf.sprintf "witness in box at jobs=%d" jobs)
            true
            (x >= 0.0 && x <= 2.0 && Float.abs ((x *. x) -. 2.0) <= 0.1)
      | r ->
          Alcotest.failf "expected delta-sat at jobs=%d, got %s" jobs
            (verdict_kind r))
    jobs_sweep

(* ---- pave: identical leaf sets ---- *)

let sort_boxes over bs =
  List.sort compare
    (List.map
       (fun b ->
         List.map
           (fun v ->
             let i = Box.find v b in
             (v, I.lo i, I.hi i))
           over)
       bs)

let test_pave_deterministic () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let bx = box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  let over = [ "x"; "y" ] in
  let config jobs = { S.default_config with epsilon = 0.05; jobs } in
  let base = S.pave ~config:(config 1) f bx in
  List.iter
    (fun jobs ->
      let p = S.pave ~config:(config jobs) f bx in
      List.iter
        (fun (label, proj) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s leaves equal at jobs=%d" label jobs)
            true
            (sort_boxes over (proj base) = sort_boxes over (proj p)))
        [ ("sat", fun (p : S.paving) -> p.S.sat);
          ("unsat", fun p -> p.S.unsat);
          ("undecided", fun p -> p.S.undecided) ])
    jobs_sweep

let test_pave_stats_reported () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let bx = box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  List.iter
    (fun jobs ->
      let config = { S.default_config with epsilon = 0.1; jobs } in
      let p, stats = S.pave_with_stats ~config f bx in
      let leaves =
        List.length p.S.sat + List.length p.S.unsat + List.length p.S.undecided
      in
      Alcotest.(check bool)
        (Printf.sprintf "boxes_processed >= leaves at jobs=%d" jobs)
        true
        (stats.S.boxes_processed >= leaves && stats.S.splits > 0))
    jobs_sweep

(* ---- cancellation: a huge budget must not delay an easy δ-sat ---- *)

let test_cancellation_prompt () =
  let f = P.formula "x^2 + y^2 = 1" in
  let bx = box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ] in
  List.iter
    (fun jobs ->
      let config =
        { S.default_config with max_boxes = 10_000_000; jobs }
      in
      let r, stats = S.decide_with_stats ~config f bx in
      Alcotest.(check string)
        (Printf.sprintf "delta-sat at jobs=%d" jobs)
        "delta-sat" (verdict_kind r);
      (* The δ-sat flag must stop the frontier long before the budget. *)
      Alcotest.(check bool)
        (Printf.sprintf "cancelled early at jobs=%d (processed %d)" jobs
           stats.S.boxes_processed)
        true
        (stats.S.boxes_processed < 100_000))
    jobs_sweep

(* ---- reach: parallel path decision agrees ---- *)

let decay_problem ~lo ~hi ~goal =
  let a =
    Hybrid.Automaton.of_system
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ])
  in
  E.create
    ~param_box:(Box.of_list [ ("k", I.make lo hi) ])
    ~goal:{ E.goal_modes = []; predicate = P.formula goal }
    ~k:0 ~time_bound:1.0 a

let reach_kind = function
  | C.Delta_sat _ -> "delta-sat"
  | C.Unsat _ -> "unsat"
  | C.Unknown _ -> "unknown"

let check_reach_agrees name pb =
  let expected =
    reach_kind (C.check ~config:{ C.default_config with jobs = 1 } pb)
  in
  List.iter
    (fun jobs ->
      let got = reach_kind (C.check ~config:{ C.default_config with jobs } pb) in
      Alcotest.(check string)
        (Printf.sprintf "%s at jobs=%d" name jobs)
        expected got)
    jobs_sweep

let test_reach_sat_agrees () =
  check_reach_agrees "decay reaches 0.3"
    (decay_problem ~lo:0.1 ~hi:3.0 ~goal:"x <= 0.3")

let test_reach_unsat_agrees () =
  check_reach_agrees "slow decay cannot reach 0.55"
    (decay_problem ~lo:0.1 ~hi:0.5 ~goal:"x <= 0.55")

(* ---- biopsy: identical leaf sets ---- *)

let test_biopsy_deterministic () =
  let sys =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]
  in
  let data =
    [ Synth.Data.point ~time:0.5 ~var:"x" ~value:(Float.exp (-0.5)) ~tolerance:0.08;
      Synth.Data.point ~time:1.0 ~var:"x" ~value:(Float.exp (-1.0)) ~tolerance:0.08 ]
  in
  let prob =
    Synth.Biopsy.problem ~sys
      ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      ~data
  in
  let over = [ "k" ] in
  let run jobs =
    Synth.Biopsy.synthesize
      ~config:{ Synth.Biopsy.default_config with epsilon = 0.05; jobs }
      prob
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check int)
        (Printf.sprintf "boxes_explored at jobs=%d" jobs)
        base.Synth.Biopsy.boxes_explored r.Synth.Biopsy.boxes_explored;
      List.iter
        (fun (label, proj) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s leaves equal at jobs=%d" label jobs)
            true
            (sort_boxes over (proj base) = sort_boxes over (proj r)))
        [ ("consistent", fun (r : Synth.Biopsy.result) -> r.Synth.Biopsy.consistent);
          ("inconsistent", fun r -> r.Synth.Biopsy.inconsistent);
          ("undecided", fun r -> r.Synth.Biopsy.undecided) ])
    jobs_sweep

(* ---- SMC: reproducible at a fixed (seed, jobs) ---- *)

let smc_problem () =
  let sys =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]
  in
  Smc.Runner.problem
    ~model:(Smc.Runner.Ode_model sys)
    ~init_dist:[ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ]
    ~param_dist:[ ("k", Smc.Sampler.Uniform (0.5, 1.5)) ]
    ~property:(Smc.Bltl.Finally (2.0, Smc.Bltl.prop "x <= 0.5"))
    ~t_end:2.0 ()

let test_smc_reproducible () =
  let prob = smc_problem () in
  List.iter
    (fun jobs ->
      let e1 = Smc.Runner.estimate ~seed:7 ~jobs ~eps:0.1 ~alpha:0.05 prob in
      let e2 = Smc.Runner.estimate ~seed:7 ~jobs ~eps:0.1 ~alpha:0.05 prob in
      Alcotest.(check int)
        (Printf.sprintf "same successes at jobs=%d" jobs)
        e1.Smc.Estimate.successes e2.Smc.Estimate.successes;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "same p_hat at jobs=%d" jobs)
        e1.Smc.Estimate.p_hat e2.Smc.Estimate.p_hat)
    jobs_sweep

let test_smc_jobs_statistically_close () =
  (* Different jobs values consume different PRNG streams; the estimates
     must still agree within the Chernoff error bound (eps + slack). *)
  let prob = smc_problem () in
  let base = Smc.Runner.estimate ~seed:7 ~jobs:1 ~eps:0.05 ~alpha:0.05 prob in
  List.iter
    (fun jobs ->
      let e = Smc.Runner.estimate ~seed:7 ~jobs ~eps:0.05 ~alpha:0.05 prob in
      Alcotest.(check bool)
        (Printf.sprintf "within 2*eps at jobs=%d" jobs)
        true
        (Float.abs (e.Smc.Estimate.p_hat -. base.Smc.Estimate.p_hat) <= 0.1))
    [ 2; 4 ]

let test_smc_sprt_deterministic () =
  let prob = smc_problem () in
  let kind = function
    | Smc.Sprt.Accept -> "accept"
    | Smc.Sprt.Reject -> "reject"
    | Smc.Sprt.Inconclusive -> "inconclusive"
  in
  List.iter
    (fun jobs ->
      let r1 = Smc.Runner.test ~seed:11 ~jobs prob in
      let r2 = Smc.Runner.test ~seed:11 ~jobs prob in
      Alcotest.(check string)
        (Printf.sprintf "same verdict at jobs=%d" jobs)
        (kind r1.Smc.Sprt.verdict) (kind r2.Smc.Sprt.verdict);
      Alcotest.(check int)
        (Printf.sprintf "same sample count at jobs=%d" jobs)
        r1.Smc.Sprt.samples_used r2.Smc.Sprt.samples_used)
    jobs_sweep

let test_smc_mean_robustness_reproducible () =
  let prob = smc_problem () in
  List.iter
    (fun jobs ->
      let a = Smc.Runner.mean_robustness ~seed:3 ~jobs ~n:50 prob in
      let b = Smc.Runner.mean_robustness ~seed:3 ~jobs ~n:50 prob in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "same mean at jobs=%d" jobs)
        a b)
    jobs_sweep

(* ---- SPRT incremental state vs the batch fold ---- *)

let test_sprt_state_matches_run () =
  (* Folding feed/status over the same outcome stream must be
     bit-identical to Sprt.run — decision, sample count, llr. *)
  let rng = Random.State.make [| 123 |] in
  for case = 1 to 500 do
    let p = Random.State.float rng 1.0 in
    let config =
      { Smc.Sprt.default_config with theta = 0.9; max_samples = 400 }
    in
    let outcomes = Array.init 400 (fun _ -> Random.State.float rng 1.0 < p) in
    let r = Smc.Sprt.run ~config (fun i -> outcomes.(i)) in
    let st = ref (Smc.Sprt.start ~config ()) in
    let i = ref 0 in
    while Option.is_none (Smc.Sprt.status !st) do
      st := Smc.Sprt.feed !st outcomes.(!i);
      incr i
    done;
    let r' = Option.get (Smc.Sprt.status !st) in
    Alcotest.(check bool)
      (Printf.sprintf "case %d: state fold = run" case)
      true
      (r.Smc.Sprt.verdict = r'.Smc.Sprt.verdict
      && r.Smc.Sprt.samples_used = r'.Smc.Sprt.samples_used
      && r.Smc.Sprt.successes = r'.Smc.Sprt.successes
      && Float.equal r.Smc.Sprt.llr r'.Smc.Sprt.llr)
  done

let test_sprt_min_remaining_lower_bound () =
  (* From any undecided state, feeding min_remaining - 1 outcomes (of any
     kind) must never decide the test. *)
  let rng = Random.State.make [| 321 |] in
  for case = 1 to 200 do
    let config =
      { Smc.Sprt.default_config with theta = 0.85; max_samples = 1_000 }
    in
    (* wander to a random undecided state *)
    let st = ref (Smc.Sprt.start ~config ()) in
    let steps = Random.State.int rng 30 in
    (try
       for _ = 1 to steps do
         if Option.is_some (Smc.Sprt.status !st) then raise Exit;
         st := Smc.Sprt.feed !st (Random.State.bool rng)
       done
     with Exit -> ());
    if Option.is_none (Smc.Sprt.status !st) then begin
      let need = Smc.Sprt.min_remaining !st in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: min_remaining >= 1" case)
        true (need >= 1);
      (* adversarial prefixes of length need - 1: all-success,
         all-failure, and a random one *)
      let try_prefix mk =
        let s = ref !st in
        for k = 0 to need - 2 do
          s := Smc.Sprt.feed !s (mk k)
        done;
        Option.is_none (Smc.Sprt.status !s)
      in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: undecided within min_remaining - 1" case)
        true
        (try_prefix (fun _ -> true)
        && try_prefix (fun _ -> false)
        && try_prefix (fun _ -> Random.State.bool rng))
    end
  done

(* ---- Work-stealing off/on differential ---- *)

(* The monitor fallback and the deque scheduler must produce the same
   verdicts, leaf sets, and (jobs-stable) SMC decisions. *)

let test_workstealing_differential_decide () =
  let f = P.formula "x^2 + y^2 <= 1 and x + y >= 3" in
  let bx = box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ] in
  let run () =
    verdict_kind (S.decide ~config:{ S.default_config with jobs = 2 } f bx)
  in
  let on = run () in
  let off = with_workstealing false run in
  Alcotest.(check string) "decide verdict off = on" off on

let test_workstealing_differential_pave () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let bx = box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  let config = { S.default_config with epsilon = 0.05; jobs = 2 } in
  let over = [ "x"; "y" ] in
  let run () = S.pave ~config f bx in
  let on = run () in
  let off = with_workstealing false run in
  List.iter
    (fun (label, proj) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s leaves off = on" label)
        true
        (sort_boxes over (proj on) = sort_boxes over (proj off)))
    [ ("sat", fun (p : S.paving) -> p.S.sat);
      ("unsat", fun p -> p.S.unsat);
      ("undecided", fun p -> p.S.undecided) ]

let test_workstealing_differential_smc () =
  (* Adaptive and fixed-32 batching consume the worker streams at
     different offsets, so sample counts may differ; the verdict on a
     clear-cut property must not. *)
  let prob = smc_problem () in
  let kind = function
    | Smc.Sprt.Accept -> "accept"
    | Smc.Sprt.Reject -> "reject"
    | Smc.Sprt.Inconclusive -> "inconclusive"
  in
  let run () = kind (Smc.Runner.test ~seed:11 ~jobs:2 prob).Smc.Sprt.verdict in
  let on = run () in
  let off = with_workstealing false run in
  Alcotest.(check string) "smc verdict off = on" off on;
  (* and the estimator path is stream-identical (fan_out is untouched by
     the scheduler choice) *)
  let est () = Smc.Runner.estimate ~seed:7 ~jobs:2 ~eps:0.1 ~alpha:0.05 prob in
  let e_on = est () in
  let e_off = with_workstealing false est in
  Alcotest.(check (float 0.0)) "estimate p_hat off = on" e_off.Smc.Estimate.p_hat
    e_on.Smc.Estimate.p_hat

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "run worker order" `Quick test_run_worker_order;
          Alcotest.test_case "run exception" `Quick test_run_propagates_exception;
          Alcotest.test_case "chunks partition" `Quick test_chunks_partition;
          Alcotest.test_case "frontier drains" `Quick test_frontier_drains_all;
          Alcotest.test_case "frontier stop" `Quick test_frontier_stop_discards;
          Alcotest.test_case "first conclusive" `Quick test_first_conclusive;
          Alcotest.test_case "first conclusive stops immediately" `Quick
            test_first_conclusive_stops_immediately;
          Alcotest.test_case "first conclusive settles leases" `Quick
            test_first_conclusive_lease_exact ] );
      ( "deque",
        [ Alcotest.test_case "lifo and batch order" `Quick test_deque_order;
          Alcotest.test_case "steal-half order" `Quick test_deque_steal_half;
          Alcotest.test_case "stress 10k items jobs=2" `Quick
            (deque_stress ~jobs:2 ~total:10_000);
          Alcotest.test_case "stress 10k items jobs=4" `Quick
            (deque_stress ~jobs:4 ~total:10_000);
          Alcotest.test_case "frontier stress jobs=2" `Quick
            (frontier_stress ~jobs:2 ~n:10_000);
          Alcotest.test_case "frontier stress jobs=4" `Quick
            (frontier_stress ~jobs:4 ~n:10_000) ] );
      ( "lease",
        [ Alcotest.test_case "exact consumption" `Quick
            test_lease_exact_consumption;
          Alcotest.test_case "partial return" `Quick test_lease_partial_return;
          Alcotest.test_case "legacy chunk=1" `Quick test_lease_legacy_chunk_one ] );
      ( "sprt-state",
        [ Alcotest.test_case "state fold = run" `Quick test_sprt_state_matches_run;
          Alcotest.test_case "min_remaining lower bound" `Quick
            test_sprt_min_remaining_lower_bound ] );
      ( "workstealing-differential",
        [ Alcotest.test_case "decide off = on" `Quick
            test_workstealing_differential_decide;
          Alcotest.test_case "pave off = on" `Quick
            test_workstealing_differential_pave;
          Alcotest.test_case "smc off = on" `Quick
            test_workstealing_differential_smc ] );
      ( "decide",
        [ Alcotest.test_case "sqrt2" `Quick test_decide_sqrt2;
          Alcotest.test_case "geometric unsat" `Quick test_decide_geom_unsat;
          Alcotest.test_case "sin" `Quick test_decide_sin;
          Alcotest.test_case "disjunction portfolio" `Quick
            test_decide_disjunction_portfolio;
          Alcotest.test_case "witness valid" `Quick test_decide_witness_valid;
          Alcotest.test_case "cancellation prompt" `Quick test_cancellation_prompt ] );
      ( "pave",
        [ Alcotest.test_case "deterministic leaves" `Quick test_pave_deterministic;
          Alcotest.test_case "stats reported" `Quick test_pave_stats_reported ] );
      ( "reach",
        [ Alcotest.test_case "delta-sat agrees" `Quick test_reach_sat_agrees;
          Alcotest.test_case "unsat agrees" `Quick test_reach_unsat_agrees ] );
      ( "biopsy",
        [ Alcotest.test_case "deterministic paving" `Quick
            test_biopsy_deterministic ] );
      ( "smc",
        [ Alcotest.test_case "estimate reproducible" `Quick test_smc_reproducible;
          Alcotest.test_case "jobs statistically close" `Quick
            test_smc_jobs_statistically_close;
          Alcotest.test_case "sprt deterministic" `Quick
            test_smc_sprt_deterministic;
          Alcotest.test_case "mean robustness reproducible" `Quick
            test_smc_mean_robustness_reproducible ] ) ]
