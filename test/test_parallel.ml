(* Tests for the multicore layer: the domain pool itself, and agreement
   between the sequential (jobs = 1) and parallel code paths of the
   δ-decision solver, the paver, the reachability checker, and SMC.

   Agreement is on verdict *kinds* (and, where the parallel search is
   deterministic, on exact leaf sets): which δ-sat witness wins a
   portfolio race is documented nondeterminism. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse
module S = Icp.Solver
module E = Reach.Encoding
module C = Reach.Checker

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)
let jobs_sweep = [ 1; 2; 4 ]

(* ---- Pool primitives ---- *)

let test_run_worker_order () =
  let r = Parallel.Pool.run ~jobs:4 (fun w -> w * w) in
  Alcotest.(check (list int)) "results in worker order" [ 0; 1; 4; 9 ]
    (Array.to_list r)

let test_run_propagates_exception () =
  match Parallel.Pool.run ~jobs:3 (fun w -> if w = 1 then failwith "boom" else w) with
  | exception Failure msg -> Alcotest.(check string) "worker exn" "boom" msg
  | _ -> Alcotest.fail "expected the worker exception to propagate"

let test_chunks_partition () =
  let n = 17 and jobs = 4 in
  let seen = Array.make n 0 in
  for w = 0 to jobs - 1 do
    let lo, hi = Parallel.Pool.chunk ~jobs ~n w in
    for i = lo to hi - 1 do
      seen.(i) <- seen.(i) + 1
    done
  done;
  Alcotest.(check bool) "every index covered exactly once" true
    (Array.for_all (fun c -> c = 1) seen)

let test_frontier_drains_all () =
  (* Count down from each seed; every decrement must be processed. *)
  let total = Atomic.make 0 in
  let fr = Parallel.Pool.Frontier.create [ 5; 3; 7 ] in
  Parallel.Pool.Frontier.drain ~jobs:4 fr (fun _w fr n ->
      Atomic.incr total;
      if n > 0 then Parallel.Pool.Frontier.push fr (n - 1));
  Alcotest.(check int) "5+1 + 3+1 + 7+1 items" 18 (Atomic.get total)

let test_frontier_stop_discards () =
  let processed = Atomic.make 0 in
  let fr = Parallel.Pool.Frontier.create (List.init 100 Fun.id) in
  Parallel.Pool.Frontier.drain ~jobs:2 fr (fun _w fr _n ->
      if Atomic.fetch_and_add processed 1 = 0 then
        Parallel.Pool.Frontier.stop fr);
  Alcotest.(check bool) "stop cuts the queue short"
    true
    (Atomic.get processed < 100)

let test_first_conclusive () =
  let r =
    Parallel.Pool.first_conclusive ~jobs:2
      [ (fun ~cancelled:_ ~conclude:_ -> ());
        (fun ~cancelled:_ ~conclude -> conclude 42) ]
  in
  Alcotest.(check (option int)) "the concluding task wins" (Some 42) r;
  let none =
    Parallel.Pool.first_conclusive ~jobs:2
      [ (fun ~cancelled:_ ~conclude:_ -> ()); (fun ~cancelled:_ ~conclude:_ -> ()) ]
  in
  Alcotest.(check (option int)) "no conclusion -> None" None none

(* ---- decide: parallel vs sequential verdict kinds ---- *)

let verdict_kind = function
  | S.Delta_sat _ -> "delta-sat"
  | S.Unsat -> "unsat"
  | S.Unknown _ -> "unknown"

let check_decide_agrees name formula bx =
  let f = P.formula formula in
  let expected =
    verdict_kind (S.decide ~config:{ S.default_config with jobs = 1 } f bx)
  in
  List.iter
    (fun jobs ->
      let got =
        verdict_kind (S.decide ~config:{ S.default_config with jobs } f bx)
      in
      Alcotest.(check string)
        (Printf.sprintf "%s at jobs=%d" name jobs)
        expected got)
    jobs_sweep

let test_decide_sqrt2 () =
  check_decide_agrees "sqrt2" "x^2 = 2" (box [ ("x", 0.0, 2.0) ])

let test_decide_geom_unsat () =
  check_decide_agrees "geom-unsat" "x^2 + y^2 <= 1 and x + y >= 3"
    (box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ])

let test_decide_sin () =
  check_decide_agrees "sin" "sin(x) = 1/2" (box [ ("x", 0.0, 3.0) ])

let test_decide_disjunction_portfolio () =
  (* First disjunct infeasible in the box, second δ-sat: the portfolio
     must still find the satisfiable branch. *)
  check_decide_agrees "disjunction"
    "(x <= 0 - 5 and x >= 0 - 6) or x^2 = 9"
    (box [ ("x", 0.0, 10.0) ])

let test_decide_witness_valid () =
  (* Whatever witness the parallel race returns must lie in the box. *)
  let f = P.formula "x^2 = 2" in
  let bx = box [ ("x", 0.0, 2.0) ] in
  List.iter
    (fun jobs ->
      match S.decide ~config:{ S.default_config with jobs } f bx with
      | S.Delta_sat w ->
          let x = List.assoc "x" w.S.point in
          Alcotest.(check bool)
            (Printf.sprintf "witness in box at jobs=%d" jobs)
            true
            (x >= 0.0 && x <= 2.0 && Float.abs ((x *. x) -. 2.0) <= 0.1)
      | r ->
          Alcotest.failf "expected delta-sat at jobs=%d, got %s" jobs
            (verdict_kind r))
    jobs_sweep

(* ---- pave: identical leaf sets ---- *)

let sort_boxes over bs =
  List.sort compare
    (List.map
       (fun b ->
         List.map
           (fun v ->
             let i = Box.find v b in
             (v, I.lo i, I.hi i))
           over)
       bs)

let test_pave_deterministic () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let bx = box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  let over = [ "x"; "y" ] in
  let config jobs = { S.default_config with epsilon = 0.05; jobs } in
  let base = S.pave ~config:(config 1) f bx in
  List.iter
    (fun jobs ->
      let p = S.pave ~config:(config jobs) f bx in
      List.iter
        (fun (label, proj) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s leaves equal at jobs=%d" label jobs)
            true
            (sort_boxes over (proj base) = sort_boxes over (proj p)))
        [ ("sat", fun (p : S.paving) -> p.S.sat);
          ("unsat", fun p -> p.S.unsat);
          ("undecided", fun p -> p.S.undecided) ])
    jobs_sweep

let test_pave_stats_reported () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let bx = box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  List.iter
    (fun jobs ->
      let config = { S.default_config with epsilon = 0.1; jobs } in
      let p, stats = S.pave_with_stats ~config f bx in
      let leaves =
        List.length p.S.sat + List.length p.S.unsat + List.length p.S.undecided
      in
      Alcotest.(check bool)
        (Printf.sprintf "boxes_processed >= leaves at jobs=%d" jobs)
        true
        (stats.S.boxes_processed >= leaves && stats.S.splits > 0))
    jobs_sweep

(* ---- cancellation: a huge budget must not delay an easy δ-sat ---- *)

let test_cancellation_prompt () =
  let f = P.formula "x^2 + y^2 = 1" in
  let bx = box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ] in
  List.iter
    (fun jobs ->
      let config =
        { S.default_config with max_boxes = 10_000_000; jobs }
      in
      let r, stats = S.decide_with_stats ~config f bx in
      Alcotest.(check string)
        (Printf.sprintf "delta-sat at jobs=%d" jobs)
        "delta-sat" (verdict_kind r);
      (* The δ-sat flag must stop the frontier long before the budget. *)
      Alcotest.(check bool)
        (Printf.sprintf "cancelled early at jobs=%d (processed %d)" jobs
           stats.S.boxes_processed)
        true
        (stats.S.boxes_processed < 100_000))
    jobs_sweep

(* ---- reach: parallel path decision agrees ---- *)

let decay_problem ~lo ~hi ~goal =
  let a =
    Hybrid.Automaton.of_system
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      (Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ])
  in
  E.create
    ~param_box:(Box.of_list [ ("k", I.make lo hi) ])
    ~goal:{ E.goal_modes = []; predicate = P.formula goal }
    ~k:0 ~time_bound:1.0 a

let reach_kind = function
  | C.Delta_sat _ -> "delta-sat"
  | C.Unsat _ -> "unsat"
  | C.Unknown _ -> "unknown"

let check_reach_agrees name pb =
  let expected =
    reach_kind (C.check ~config:{ C.default_config with jobs = 1 } pb)
  in
  List.iter
    (fun jobs ->
      let got = reach_kind (C.check ~config:{ C.default_config with jobs } pb) in
      Alcotest.(check string)
        (Printf.sprintf "%s at jobs=%d" name jobs)
        expected got)
    jobs_sweep

let test_reach_sat_agrees () =
  check_reach_agrees "decay reaches 0.3"
    (decay_problem ~lo:0.1 ~hi:3.0 ~goal:"x <= 0.3")

let test_reach_unsat_agrees () =
  check_reach_agrees "slow decay cannot reach 0.55"
    (decay_problem ~lo:0.1 ~hi:0.5 ~goal:"x <= 0.55")

(* ---- biopsy: identical leaf sets ---- *)

let test_biopsy_deterministic () =
  let sys =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]
  in
  let data =
    [ Synth.Data.point ~time:0.5 ~var:"x" ~value:(Float.exp (-0.5)) ~tolerance:0.08;
      Synth.Data.point ~time:1.0 ~var:"x" ~value:(Float.exp (-1.0)) ~tolerance:0.08 ]
  in
  let prob =
    Synth.Biopsy.problem ~sys
      ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      ~data
  in
  let over = [ "k" ] in
  let run jobs =
    Synth.Biopsy.synthesize
      ~config:{ Synth.Biopsy.default_config with epsilon = 0.05; jobs }
      prob
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      let r = run jobs in
      Alcotest.(check int)
        (Printf.sprintf "boxes_explored at jobs=%d" jobs)
        base.Synth.Biopsy.boxes_explored r.Synth.Biopsy.boxes_explored;
      List.iter
        (fun (label, proj) ->
          Alcotest.(check bool)
            (Printf.sprintf "%s leaves equal at jobs=%d" label jobs)
            true
            (sort_boxes over (proj base) = sort_boxes over (proj r)))
        [ ("consistent", fun (r : Synth.Biopsy.result) -> r.Synth.Biopsy.consistent);
          ("inconsistent", fun r -> r.Synth.Biopsy.inconsistent);
          ("undecided", fun r -> r.Synth.Biopsy.undecided) ])
    jobs_sweep

(* ---- SMC: reproducible at a fixed (seed, jobs) ---- *)

let smc_problem () =
  let sys =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]
  in
  Smc.Runner.problem
    ~model:(Smc.Runner.Ode_model sys)
    ~init_dist:[ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ]
    ~param_dist:[ ("k", Smc.Sampler.Uniform (0.5, 1.5)) ]
    ~property:(Smc.Bltl.Finally (2.0, Smc.Bltl.prop "x <= 0.5"))
    ~t_end:2.0 ()

let test_smc_reproducible () =
  let prob = smc_problem () in
  List.iter
    (fun jobs ->
      let e1 = Smc.Runner.estimate ~seed:7 ~jobs ~eps:0.1 ~alpha:0.05 prob in
      let e2 = Smc.Runner.estimate ~seed:7 ~jobs ~eps:0.1 ~alpha:0.05 prob in
      Alcotest.(check int)
        (Printf.sprintf "same successes at jobs=%d" jobs)
        e1.Smc.Estimate.successes e2.Smc.Estimate.successes;
      Alcotest.(check (float 0.0))
        (Printf.sprintf "same p_hat at jobs=%d" jobs)
        e1.Smc.Estimate.p_hat e2.Smc.Estimate.p_hat)
    jobs_sweep

let test_smc_jobs_statistically_close () =
  (* Different jobs values consume different PRNG streams; the estimates
     must still agree within the Chernoff error bound (eps + slack). *)
  let prob = smc_problem () in
  let base = Smc.Runner.estimate ~seed:7 ~jobs:1 ~eps:0.05 ~alpha:0.05 prob in
  List.iter
    (fun jobs ->
      let e = Smc.Runner.estimate ~seed:7 ~jobs ~eps:0.05 ~alpha:0.05 prob in
      Alcotest.(check bool)
        (Printf.sprintf "within 2*eps at jobs=%d" jobs)
        true
        (Float.abs (e.Smc.Estimate.p_hat -. base.Smc.Estimate.p_hat) <= 0.1))
    [ 2; 4 ]

let test_smc_sprt_deterministic () =
  let prob = smc_problem () in
  let kind = function
    | Smc.Sprt.Accept -> "accept"
    | Smc.Sprt.Reject -> "reject"
    | Smc.Sprt.Inconclusive -> "inconclusive"
  in
  List.iter
    (fun jobs ->
      let r1 = Smc.Runner.test ~seed:11 ~jobs prob in
      let r2 = Smc.Runner.test ~seed:11 ~jobs prob in
      Alcotest.(check string)
        (Printf.sprintf "same verdict at jobs=%d" jobs)
        (kind r1.Smc.Sprt.verdict) (kind r2.Smc.Sprt.verdict);
      Alcotest.(check int)
        (Printf.sprintf "same sample count at jobs=%d" jobs)
        r1.Smc.Sprt.samples_used r2.Smc.Sprt.samples_used)
    jobs_sweep

let test_smc_mean_robustness_reproducible () =
  let prob = smc_problem () in
  List.iter
    (fun jobs ->
      let a = Smc.Runner.mean_robustness ~seed:3 ~jobs ~n:50 prob in
      let b = Smc.Runner.mean_robustness ~seed:3 ~jobs ~n:50 prob in
      Alcotest.(check (float 0.0))
        (Printf.sprintf "same mean at jobs=%d" jobs)
        a b)
    jobs_sweep

let () =
  Alcotest.run "parallel"
    [ ( "pool",
        [ Alcotest.test_case "run worker order" `Quick test_run_worker_order;
          Alcotest.test_case "run exception" `Quick test_run_propagates_exception;
          Alcotest.test_case "chunks partition" `Quick test_chunks_partition;
          Alcotest.test_case "frontier drains" `Quick test_frontier_drains_all;
          Alcotest.test_case "frontier stop" `Quick test_frontier_stop_discards;
          Alcotest.test_case "first conclusive" `Quick test_first_conclusive ] );
      ( "decide",
        [ Alcotest.test_case "sqrt2" `Quick test_decide_sqrt2;
          Alcotest.test_case "geometric unsat" `Quick test_decide_geom_unsat;
          Alcotest.test_case "sin" `Quick test_decide_sin;
          Alcotest.test_case "disjunction portfolio" `Quick
            test_decide_disjunction_portfolio;
          Alcotest.test_case "witness valid" `Quick test_decide_witness_valid;
          Alcotest.test_case "cancellation prompt" `Quick test_cancellation_prompt ] );
      ( "pave",
        [ Alcotest.test_case "deterministic leaves" `Quick test_pave_deterministic;
          Alcotest.test_case "stats reported" `Quick test_pave_stats_reported ] );
      ( "reach",
        [ Alcotest.test_case "delta-sat agrees" `Quick test_reach_sat_agrees;
          Alcotest.test_case "unsat agrees" `Quick test_reach_unsat_agrees ] );
      ( "biopsy",
        [ Alcotest.test_case "deterministic paving" `Quick
            test_biopsy_deterministic ] );
      ( "smc",
        [ Alcotest.test_case "estimate reproducible" `Quick test_smc_reproducible;
          Alcotest.test_case "jobs statistically close" `Quick
            test_smc_jobs_statistically_close;
          Alcotest.test_case "sprt deterministic" `Quick
            test_smc_sprt_deterministic;
          Alcotest.test_case "mean robustness reproducible" `Quick
            test_smc_mean_robustness_reproducible ] ) ]
