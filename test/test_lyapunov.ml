(* Tests for Lyapunov-function synthesis via CEGIS over δ-decisions,
   and for the polynomial canonicalizer it depends on. *)

module I = Interval.Ia
module Box = Interval.Box
module T = Expr.Term
module P = Expr.Parse
module Poly = Expr.Poly
module Tpl = Lyapunov.Template
module Cegis = Lyapunov.Cegis

(* ---- Polynomial canonical form ---- *)

let test_poly_roundtrip () =
  let t = P.term "3*x^2*y - 2*x + 7 - y^3" in
  match Poly.of_term t with
  | None -> Alcotest.fail "polynomial expected"
  | Some p ->
      let env = [ ("x", 1.3); ("y", -0.7) ] in
      Alcotest.(check (float 1e-9)) "poly eval = term eval" (T.eval_env env t)
        (Poly.eval env p);
      Alcotest.(check (float 1e-9)) "to_term round trip" (T.eval_env env t)
        (T.eval_env env (Poly.to_term p));
      Alcotest.(check int) "degree" 3 (Poly.degree p)

let test_poly_cancellation () =
  (* Lie derivative of x²+y² along rotation: -2xy + 2xy = 0 *)
  let v = P.term "x^2 + y^2" in
  let field = [ ("x", P.term "-y"); ("y", P.term "x") ] in
  let lie = T.lie_derivative field v in
  let c = Poly.canonicalize lie in
  Alcotest.(check bool) "cancels to zero" true (T.equal c T.zero);
  (* the interval evaluation of the canonicalized term is exact *)
  let box = Box.of_list [ ("x", I.make (-1.0) 1.0); ("y", I.make (-1.0) 1.0) ] in
  Alcotest.(check bool) "tight interval" true
    (I.equal (T.eval_interval box c) I.zero)

let test_poly_non_polynomial () =
  Alcotest.(check bool) "sin is not polynomial" true (Poly.of_term (P.term "sin(x)") = None);
  Alcotest.(check bool) "x/y is not polynomial" true (Poly.of_term (P.term "x/y") = None);
  (* canonicalize leaves non-polynomials intact (value preserved) *)
  let t = P.term "sin(x) + x^2 - x^2" in
  let c = Poly.canonicalize t in
  Alcotest.(check (float 1e-12)) "value preserved" (T.eval_env [ ("x", 0.8) ] t)
    (T.eval_env [ ("x", 0.8) ] c)

let test_poly_arithmetic () =
  let p = Poly.mul (Poly.add (Poly.var "x") (Poly.const 1.0)) (Poly.var "x") in
  Alcotest.(check (float 1e-12)) "x(x+1) at 3" 12.0 (Poly.eval [ ("x", 3.0) ] p);
  let q = Poly.pow (Poly.add (Poly.var "x") (Poly.var "y")) 2 in
  Alcotest.(check (float 1e-12)) "(x+y)^2" 25.0 (Poly.eval [ ("x", 2.0); ("y", 3.0) ] q);
  Alcotest.(check bool) "x - x is zero" true
    (Poly.is_zero (Poly.sub (Poly.var "x") (Poly.var "x")))

(* ---- Templates ---- *)

let test_template_sizes () =
  Alcotest.(check int) "quadratic 2 vars" 3 (Tpl.size (Tpl.quadratic [ "x"; "y" ]));
  Alcotest.(check int) "quadratic 3 vars" 6 (Tpl.size (Tpl.quadratic [ "x"; "y"; "z" ]));
  let t14 = Tpl.create ~min_degree:1 ~max_degree:2 [ "x"; "y" ] in
  (* x, y, x², xy, y² *)
  Alcotest.(check int) "degree 1-2" 5 (Tpl.size t14);
  let even = Tpl.even_quartic [ "x" ] in
  (* x², x⁴ *)
  Alcotest.(check int) "even quartic 1 var" 2 (Tpl.size even)

let test_template_instantiate () =
  let tpl = Tpl.quadratic [ "x"; "y" ] in
  (* coefficient order follows monomial enumeration; check by evaluation *)
  let v = Tpl.instantiate tpl [ 1.0; 0.0; 1.0 ] in
  let a = T.eval_env [ ("x", 2.0); ("y", 3.0) ] v in
  (* whatever the order, with coeffs {1,0,1} on {x², xy, y²} the value is
     one of 4+9, 4+6, 6+9 — pin it down by probing *)
  Alcotest.(check bool) "plausible quadratic value" true
    (List.mem a [ 13.0; 10.0; 15.0 ]);
  Alcotest.check_raises "wrong arity"
    (Invalid_argument "Template.instantiate: coefficient count mismatch") (fun () ->
      ignore (Tpl.instantiate tpl [ 1.0 ]))

let test_template_at_point () =
  let tpl = Tpl.quadratic [ "x"; "y" ] in
  let at = Tpl.at_point tpl [ ("x", 2.0); ("y", 3.0) ] in
  (* at_point is linear in the coefficients: evaluating it with coeffs
     must equal evaluating the instantiated polynomial at the point *)
  let coeffs = [ 0.5; -1.0; 2.0 ] in
  let env = List.map2 (fun c v -> (c, v)) tpl.Tpl.coeff_names coeffs in
  let direct = T.eval_env [ ("x", 2.0); ("y", 3.0) ] (Tpl.instantiate tpl coeffs) in
  Alcotest.(check (float 1e-9)) "at_point consistent" direct (T.eval_env env at)

let test_template_validation () =
  Alcotest.check_raises "min degree 0"
    (Invalid_argument "Template: min degree must be >= 1") (fun () ->
      ignore (Tpl.create ~min_degree:0 ~max_degree:2 [ "x" ]))

(* ---- CEGIS ---- *)

let region2 = Biomodels.Classics.unit_box [ "x"; "y" ]

let expect_proved name outcome =
  match outcome with
  | Cegis.Proved c -> c
  | Cegis.No_candidate i -> Alcotest.failf "%s: no candidate at iteration %d" name i
  | Cegis.Budget_exhausted i -> Alcotest.failf "%s: budget exhausted at %d" name i

let test_cegis_damped_rotation () =
  let sys = Biomodels.Classics.damped_rotation in
  let prob = Cegis.problem ~region:region2 ~template:(Tpl.quadratic [ "x"; "y" ]) sys in
  let cert = expect_proved "damped rotation" (Cegis.synthesize prob) in
  Alcotest.(check bool) "validates" true (Cegis.validate prob cert);
  (* V must be positive at sample points and decreasing *)
  let env = [ ("x", 0.5); ("y", -0.3) ] in
  Alcotest.(check bool) "V > 0" true (T.eval_env env cert.Cegis.v > 0.0);
  Alcotest.(check bool) "Vdot <= 0" true (T.eval_env env cert.Cegis.vdot <= 1e-9)

let test_cegis_damped_nonlinear () =
  let sys = Biomodels.Classics.damped_nonlinear in
  let prob = Cegis.problem ~region:region2 ~template:(Tpl.quadratic [ "x"; "y" ]) sys in
  let cert = expect_proved "damped nonlinear" (Cegis.synthesize prob) in
  Alcotest.(check bool) "validates" true (Cegis.validate prob cert)

let test_cegis_proofreading () =
  let sys = Biomodels.Classics.proofreading in
  let region = Biomodels.Classics.unit_box [ "c0"; "c1" ] in
  let prob = Cegis.problem ~region ~template:(Tpl.quadratic [ "c0"; "c1" ]) sys in
  let cert = expect_proved "proofreading" (Cegis.synthesize prob) in
  Alcotest.(check bool) "validates" true (Cegis.validate prob cert)

let test_cegis_unstable_system () =
  (* x' = x is unstable: no quadratic Lyapunov function exists. *)
  let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "x") ] in
  let region = Box.of_list [ ("x", I.make (-1.0) 1.0) ] in
  let prob = Cegis.problem ~region ~template:(Tpl.quadratic [ "x" ]) sys in
  match Cegis.synthesize prob with
  | Cegis.Proved _ -> Alcotest.fail "unstable system proved stable"
  | Cegis.No_candidate _ | Cegis.Budget_exhausted _ -> ()

let test_cegis_rejects_parameterized () =
  let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ] in
  Alcotest.check_raises "parameters must be bound"
    (Invalid_argument "Cegis.problem: bind all parameters first") (fun () ->
      ignore
        (Cegis.problem
           ~region:(Box.of_list [ ("x", I.make (-1.0) 1.0) ])
           ~template:(Tpl.quadratic [ "x" ])
           sys))

let test_cegis_certificate_is_lyapunov () =
  (* independent re-check: on a dense grid of the annulus, V > 0 and
     Vdot below the margin. *)
  let sys = Biomodels.Classics.damped_rotation in
  let prob = Cegis.problem ~region:region2 ~template:(Tpl.quadratic [ "x"; "y" ]) sys in
  let cert = expect_proved "grid check" (Cegis.synthesize prob) in
  let bad = ref 0 in
  for i = -10 to 10 do
    for j = -10 to 10 do
      let x = float_of_int i /. 10.0 and y = float_of_int j /. 10.0 in
      if (x *. x) +. (y *. y) >= 0.01 then begin
        let env = [ ("x", x); ("y", y) ] in
        if T.eval_env env cert.Cegis.v <= 0.0 then incr bad;
        if T.eval_env env cert.Cegis.vdot > 1e-3 then incr bad
      end
    done
  done;
  Alcotest.(check int) "no grid violations" 0 !bad

(* ---- Stability policy layer ---- *)

let test_stability_prove () =
  let r = Core.Stability.prove ~region:region2 Biomodels.Classics.damped_rotation in
  (match r.Core.Stability.certificate with
  | Some _ -> ()
  | None -> Alcotest.fail "expected a certificate");
  Alcotest.(check (option string)) "quadratic template suffices"
    (Some "quadratic form") r.Core.Stability.template_used

let test_stability_erk () =
  let region = Biomodels.Classics.unit_box [ "mek"; "erk"; "erkpp" ] in
  let r = Core.Stability.prove ~region Biomodels.Classics.erk_cascade in
  match r.Core.Stability.certificate with
  | Some cert ->
      Alcotest.(check bool) "validated" true
        (Core.Stability.validate ~region Biomodels.Classics.erk_cascade cert)
  | None -> Alcotest.fail "ERK cascade should be provably stable"

let () =
  Alcotest.run "lyapunov"
    [
      ( "poly",
        [
          Alcotest.test_case "roundtrip" `Quick test_poly_roundtrip;
          Alcotest.test_case "cancellation" `Quick test_poly_cancellation;
          Alcotest.test_case "non-polynomial" `Quick test_poly_non_polynomial;
          Alcotest.test_case "arithmetic" `Quick test_poly_arithmetic;
        ] );
      ( "template",
        [
          Alcotest.test_case "sizes" `Quick test_template_sizes;
          Alcotest.test_case "instantiate" `Quick test_template_instantiate;
          Alcotest.test_case "at_point" `Quick test_template_at_point;
          Alcotest.test_case "validation" `Quick test_template_validation;
        ] );
      ( "cegis",
        [
          Alcotest.test_case "damped rotation" `Quick test_cegis_damped_rotation;
          Alcotest.test_case "damped nonlinear" `Quick test_cegis_damped_nonlinear;
          Alcotest.test_case "proofreading chain" `Quick test_cegis_proofreading;
          Alcotest.test_case "unstable rejected" `Quick test_cegis_unstable_system;
          Alcotest.test_case "parameterized rejected" `Quick test_cegis_rejects_parameterized;
          Alcotest.test_case "grid re-check" `Quick test_cegis_certificate_is_lyapunov;
        ] );
      ( "stability",
        [
          Alcotest.test_case "prove damped rotation" `Quick test_stability_prove;
          Alcotest.test_case "prove ERK cascade" `Slow test_stability_erk;
        ] );
    ]
