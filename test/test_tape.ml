(* Differential tests: flat SSA tapes vs the tree-walking kernels.

   The tape compiler CSEs shared subterms into one slot.  When the only
   sharing is at the leaves (variables, constants) the forward and
   backward passes are step-for-step identical to the tree walkers, so
   we demand bit-equality.  Interior sharing lets backward requirements
   accumulate on one slot, which can only tighten the result — there we
   demand verdict compatibility and a subset relation instead. *)

module I = Interval.Ia
module Box = Interval.Box
module T = Expr.Term
module Tape = Expr.Tape
module P = Expr.Parse
module C = Icp.Contractor
module S = Icp.Solver

let vars = [ "x"; "y"; "z" ]
let nvars = List.length vars

(* ---- random generators (deterministic seeds) ---- *)

let rand_leaf st =
  if Random.State.bool st then T.var (List.nth vars (Random.State.int st nvars))
  else T.const (Random.State.float st 4.0 -. 2.0)

(* All 18 constructors, built through the smart constructors (so the
   terms are simplify-stable and [Term.compile] sees them unchanged). *)
let rec rand_term st depth =
  if depth = 0 then rand_leaf st
  else
    let sub () = rand_term st (depth - 1) in
    match Random.State.int st 18 with
    | 0 -> T.add (sub ()) (sub ())
    | 1 -> T.sub (sub ()) (sub ())
    | 2 -> T.mul (sub ()) (sub ())
    | 3 -> T.div (sub ()) (sub ())
    | 4 -> T.neg (sub ())
    | 5 -> T.pow (sub ()) (Random.State.int st 7 - 3)
    | 6 -> T.exp (sub ())
    | 7 -> T.log (sub ())
    | 8 -> T.sqrt (sub ())
    | 9 -> T.sin (sub ())
    | 10 -> T.cos (sub ())
    | 11 -> T.tan (sub ())
    | 12 -> T.atan (sub ())
    | 13 -> T.tanh (sub ())
    | 14 -> T.abs (sub ())
    | 15 -> T.min_ (sub ()) (sub ())
    | 16 -> T.max_ (sub ()) (sub ())
    | _ -> rand_leaf st

let rand_box st =
  Box.of_list
    (List.map
       (fun v ->
         let a = Random.State.float st 8.0 -. 4.0 in
         let w =
           match Random.State.int st 4 with
           | 0 -> 0.0 (* singleton *)
           | 1 -> Random.State.float st 0.5
           | _ -> Random.State.float st 4.0
         in
         (v, I.make a (a +. w)))
       vars)

let rand_target st =
  match Random.State.int st 4 with
  | 0 -> I.of_float (Random.State.float st 4.0 -. 2.0)
  | 1 -> I.make (Random.State.float st 2.0 -. 2.0) (Random.State.float st 2.0)
  | 2 -> I.make (Random.State.float st 4.0 -. 2.0) Float.infinity
  | _ ->
      let a = Random.State.float st 6.0 -. 3.0 in
      I.make a (a +. Random.State.float st 1.0)

let inputs_of_box b = Array.of_list (List.map (fun v -> Box.find v b) vars)

let same_float a b = (Float.is_nan a && Float.is_nan b) || a = b
let same_itv a b = (I.is_empty a && I.is_empty b) || I.equal a b

(* ---- forward passes ---- *)

let test_forward_interval () =
  let st = Random.State.make [| 42 |] in
  for case = 1 to 1_500 do
    let t = rand_term st (1 + Random.State.int st 4) in
    let b = rand_box st in
    let tree = T.eval_interval b t in
    let tp = Tape.compile ~vars [ t ] in
    let tape = Tape.eval_interval tp (Tape.scratch tp) (inputs_of_box b) in
    if not (same_itv tree tape) then
      Alcotest.failf "case %d: tree=%s tape=%s on %s" case (I.to_string tree)
        (I.to_string tape) (T.to_string t)
  done

let test_forward_float () =
  let st = Random.State.make [| 43 |] in
  for case = 1 to 1_500 do
    let t = rand_term st (1 + Random.State.int st 4) in
    let f = T.compile ~vars t in
    let tp = Tape.compile ~vars [ t ] in
    let sc = Tape.scratch tp in
    for _probe = 1 to 3 do
      let args = Array.init nvars (fun _ -> Random.State.float st 8.0 -. 4.0) in
      let tree = f args and tape = Tape.eval_float tp sc args in
      if not (same_float tree tape) then
        Alcotest.failf "case %d: tree=%.17g tape=%.17g on %s" case tree tape
          (T.to_string t)
    done
  done

(* ---- HC4 revise: backward pass ---- *)

let tape_revise t ~target b =
  let bvars = Box.vars b in
  let tp = Tape.compile ~vars:bvars [ t ] in
  let dom = Array.of_list (List.map (fun v -> Box.find v b) bvars) in
  if Tape.hc4_revise tp (Tape.scratch tp) ~target dom then
    Some (Box.of_list (List.mapi (fun i v -> (v, dom.(i))) bvars))
  else None

let test_revise_differential () =
  let st = Random.State.make [| 44 |] in
  for case = 1 to 1_500 do
    let t = rand_term st (1 + Random.State.int st 3) in
    let b = rand_box st in
    let target = rand_target st in
    let sharing = Tape.interior_sharing (Tape.compile ~vars [ t ]) in
    let tree = C.revise ~term:t ~target b in
    let tape = tape_revise t ~target b in
    match (tree, tape) with
    | None, None -> ()
    | None, Some bb ->
        Alcotest.failf
          "case %d: tree proves infeasible, tape keeps %s on %s ∈ %s" case
          (Box.to_string bb) (T.to_string t) (I.to_string target)
    | Some _, None ->
        (* only a shared interior slot may accumulate a stronger
           requirement than the tree's per-leaf intersection *)
        if sharing = 0 then
          Alcotest.failf "case %d: tape infeasible but tree not, on %s ∈ %s"
            case (T.to_string t) (I.to_string target)
    | Some bt, Some bb ->
        if sharing = 0 then begin
          if not (Box.equal bt bb) then
            Alcotest.failf "case %d: tree=%s tape=%s on %s ∈ %s" case
              (Box.to_string bt) (Box.to_string bb) (T.to_string t)
              (I.to_string target)
        end
        else if not (Box.subset bb bt) then
          Alcotest.failf "case %d: tape %s not within tree %s on %s ∈ %s" case
            (Box.to_string bb) (Box.to_string bt) (T.to_string t)
            (I.to_string target)
  done

let test_fixpoint_differential () =
  let st = Random.State.make [| 45 |] in
  for case = 1 to 400 do
    let n = 1 + Random.State.int st 3 in
    let cs =
      List.init n (fun _ ->
          { C.term = rand_term st (1 + Random.State.int st 3);
            target = rand_target st })
    in
    let b = rand_box st in
    let leaf_only =
      List.for_all
        (fun (c : C.constr) ->
          Tape.interior_sharing (Tape.compile ~vars [ c.term ]) = 0)
        cs
    in
    let tree = C.fixpoint cs b in
    let tape = C.fixpoint_compiled (C.compile cs) b in
    match (tree, tape) with
    | None, None -> ()
    | None, Some _ ->
        Alcotest.failf "case %d: tree infeasible but tape feasible" case
    | Some _, None ->
        if leaf_only then
          Alcotest.failf "case %d: tape infeasible but tree feasible" case
    | Some bt, Some bb ->
        if leaf_only && not (Box.equal bt bb) then
          Alcotest.failf "case %d: tree=%s tape=%s" case (Box.to_string bt)
            (Box.to_string bb)
  done

(* ---- satellite fixes: negative powers and tan branches ---- *)

let both_paths name t ~target b checks =
  (match C.revise ~term:t ~target b with
  | None -> Alcotest.failf "%s: tree infeasible" name
  | Some b' -> checks (name ^ " (tree)") (Box.find "x" b'));
  match tape_revise t ~target b with
  | None -> Alcotest.failf "%s: tape infeasible" name
  | Some b' -> checks (name ^ " (tape)") (Box.find "x" b')

let test_pow_negative_even () =
  (* x^-2 ∈ [1/9, 1/4] on x ∈ [0.1, 10] ⟺ x² ∈ [4, 9] ⟹ x ∈ [2, 3];
     the old backward pass returned x unchanged for k < 0. *)
  let b = Box.of_list [ ("x", I.make 0.1 10.0) ] in
  both_paths "x^-2" (T.pow (T.var "x") (-2)) ~target:(I.make (1.0 /. 9.0) 0.25)
    b (fun name x ->
      Alcotest.(check bool) (name ^ " contracts to ~[2,3]") true
        (I.lo x >= 1.999 && I.hi x <= 3.001 && I.mem 2.5 x))

let test_pow_negative_odd () =
  (* x^-3 ∈ [-1/8, -1/27] on x ∈ [-10, -0.1] ⟹ x ∈ [-3, -2]. *)
  let b = Box.of_list [ ("x", I.make (-10.0) (-0.1)) ] in
  both_paths "x^-3" (T.pow (T.var "x") (-3))
    ~target:(I.make (-0.125) (-1.0 /. 27.0))
    b (fun name x ->
      Alcotest.(check bool) (name ^ " contracts to ~[-3,-2]") true
        (I.lo x >= -3.001 && I.hi x <= -1.999 && I.mem (-2.5) x))

let test_pow_negative_infeasible () =
  (* x^-2 is positive: a negative target is infeasible on x ∈ [0.1, 10]. *)
  let b = Box.of_list [ ("x", I.make 0.1 10.0) ] in
  let t = T.pow (T.var "x") (-2) in
  let target = I.make (-2.0) (-1.0) in
  Alcotest.(check bool) "tree proves infeasible" true
    (C.revise ~term:t ~target b = None);
  Alcotest.(check bool) "tape proves infeasible" true
    (tape_revise t ~target b = None)

let test_tan_single_branch () =
  (* x ∈ [-1.4, 1.4] lies inside one branch of tan, so tan(x) ∈ [1, 1.2]
     contracts x to ~[atan 1, atan 1.2]; the old backward pass was a
     no-op for Tan. *)
  let b = Box.of_list [ ("x", I.make (-1.4) 1.4) ] in
  let lo = Float.atan 1.0 and hi = Float.atan 1.2 in
  both_paths "tan" (T.tan (T.var "x")) ~target:(I.make 1.0 1.2) b
    (fun name x ->
      Alcotest.(check bool) (name ^ " contracts to ~[atan 1, atan 1.2]") true
        (I.lo x >= lo -. 1e-9 && I.hi x <= hi +. 1e-9
        && I.subset (I.make (lo +. 1e-9) (hi -. 1e-9)) x))

let test_tan_shifted_branch () =
  (* Same contraction one period up: x ∈ [π - 1.4, π + 1.4]. *)
  let pi = Float.pi in
  let b = Box.of_list [ ("x", I.make (pi -. 1.4) (pi +. 1.4)) ] in
  let lo = pi +. Float.atan 1.0 and hi = pi +. Float.atan 1.2 in
  both_paths "tan+π" (T.tan (T.var "x")) ~target:(I.make 1.0 1.2) b
    (fun name x ->
      Alcotest.(check bool) (name ^ " contracts inside the shifted branch")
        true
        (I.lo x >= lo -. 1e-6 && I.hi x <= hi +. 1e-6))

let test_tan_multi_branch_unchanged () =
  (* x ∈ [0, 10] spans several branches: no sound single-branch inverse,
     so the variable domain must come back unchanged. *)
  let b = Box.of_list [ ("x", I.make 0.0 10.0) ] in
  both_paths "tan-wide" (T.tan (T.var "x")) ~target:(I.make 1.0 1.2) b
    (fun name x ->
      Alcotest.(check bool) (name ^ " unchanged") true
        (I.equal x (I.make 0.0 10.0)))

(* ---- end-to-end: tape on/off and seq/parallel agreement ---- *)

let with_tapes flag f =
  Tape.set_enabled flag;
  Fun.protect ~finally:Tape.clear_enabled_override f

let verdict_kind = function
  | S.Delta_sat _ -> "delta-sat"
  | S.Unsat -> "unsat"
  | S.Unknown _ -> "unknown"

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

let decide_cases =
  [ ("sqrt2", "x^2 = 2", box [ ("x", 0.0, 2.0) ]);
    ( "geom-unsat",
      "x^2 + y^2 <= 1 and x + y >= 3",
      box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] );
    ("sin", "sin(x) = 1/2", box [ ("x", 0.0, 3.0) ]) ]

let test_decide_tape_vs_tree () =
  List.iter
    (fun (name, fs, bx) ->
      let f = P.formula fs in
      let on = with_tapes true (fun () -> verdict_kind (S.decide f bx)) in
      let off = with_tapes false (fun () -> verdict_kind (S.decide f bx)) in
      Alcotest.(check string) (name ^ " tape agrees with tree") off on)
    decide_cases

let test_decide_tape_parallel () =
  with_tapes true (fun () ->
      List.iter
        (fun (name, fs, bx) ->
          let f = P.formula fs in
          let kind jobs =
            verdict_kind (S.decide ~config:{ S.default_config with jobs } f bx)
          in
          let seq = kind 1 in
          List.iter
            (fun jobs ->
              Alcotest.(check string)
                (Printf.sprintf "%s at jobs=%d" name jobs)
                seq (kind jobs))
            [ 2; 4 ])
        decide_cases)

let test_pave_tape_parallel () =
  with_tapes true (fun () ->
      let f = P.formula "x^2 + y^2 <= 1" in
      let bx = box [ ("x", -1.5, 1.5); ("y", -1.5, 1.5) ] in
      let config jobs = { S.default_config with S.epsilon = 0.05; jobs } in
      let sort = List.sort (fun a b -> compare (Box.to_list a) (Box.to_list b)) in
      let base = S.pave ~config:(config 1) f bx in
      List.iter
        (fun jobs ->
          let p = S.pave ~config:(config jobs) f bx in
          let check label l l' =
            Alcotest.(check bool)
              (Printf.sprintf "%s leaves equal at jobs=%d" label jobs)
              true
              (List.equal Box.equal (sort l) (sort l'))
          in
          check "sat" base.S.sat p.S.sat;
          check "unsat" base.S.unsat p.S.unsat;
          check "undecided" base.S.undecided p.S.undecided)
        [ 2; 4 ])

(* ---- tape structure ---- *)

let test_cse_shares_slots () =
  (* (x+y)·(x+y): the sum occupies one slot, counted as interior sharing. *)
  let s = T.Add (T.Var "x", T.Var "y") in
  let t = T.Mul (s, s) in
  let tp = Tape.compile ~vars [ t ] in
  Alcotest.(check int) "interior sharing detected" 1 (Tape.interior_sharing tp);
  (* slots: x, y, x+y, (x+y)·(x+y) — the shared sum occupies one slot *)
  Alcotest.(check int) "slot count" 4 (Tape.num_slots tp);
  let leafy = Tape.compile ~vars [ T.Add (T.Var "x", T.Var "x") ] in
  Alcotest.(check int) "leaf sharing not interior" 0
    (Tape.interior_sharing leafy)

let test_unbound_variable_rejected () =
  Alcotest.check_raises "unbound var"
    (Invalid_argument "Tape.compile: unbound variable \"w\"") (fun () ->
      ignore (Tape.compile ~vars [ T.var "w" ]))

let () =
  Alcotest.run "tape"
    [ ( "forward",
        [ Alcotest.test_case "interval vs tree" `Quick test_forward_interval;
          Alcotest.test_case "float vs compile" `Quick test_forward_float ] );
      ( "hc4",
        [ Alcotest.test_case "revise differential" `Quick
            test_revise_differential;
          Alcotest.test_case "fixpoint differential" `Quick
            test_fixpoint_differential ] );
      ( "fixes",
        [ Alcotest.test_case "pow negative even" `Quick test_pow_negative_even;
          Alcotest.test_case "pow negative odd" `Quick test_pow_negative_odd;
          Alcotest.test_case "pow negative infeasible" `Quick
            test_pow_negative_infeasible;
          Alcotest.test_case "tan single branch" `Quick test_tan_single_branch;
          Alcotest.test_case "tan shifted branch" `Quick
            test_tan_shifted_branch;
          Alcotest.test_case "tan multi branch" `Quick
            test_tan_multi_branch_unchanged ] );
      ( "solver",
        [ Alcotest.test_case "decide tape vs tree" `Quick
            test_decide_tape_vs_tree;
          Alcotest.test_case "decide tape parallel" `Quick
            test_decide_tape_parallel;
          Alcotest.test_case "pave tape parallel" `Quick
            test_pave_tape_parallel ] );
      ( "structure",
        [ Alcotest.test_case "cse shares slots" `Quick test_cse_shares_slots;
          Alcotest.test_case "unbound rejected" `Quick
            test_unbound_variable_rejected ] ) ]
