(* Tests for the ICP δ-decision solver. *)

module I = Interval.Ia
module Box = Interval.Box
module T = Expr.Term
module F = Expr.Formula
module P = Expr.Parse
module C = Icp.Contractor
module S = Icp.Solver

let box l = Box.of_list (List.map (fun (x, lo, hi) -> (x, I.make lo hi)) l)

let cfg = { S.default_config with max_boxes = 100_000 }

(* ---- Contractor unit tests ---- *)

let test_revise_linear () =
  (* x + y = 10 with x ∈ [0,4], y ∈ [0,4] is infeasible. *)
  let b = box [ ("x", 0.0, 4.0); ("y", 0.0, 4.0) ] in
  let r = C.revise ~term:(P.term "x + y") ~target:(I.of_float 10.0) b in
  Alcotest.(check bool) "infeasible sum" true (r = None);
  (* x + y = 6 contracts x to [2,4]. *)
  let r2 = C.revise ~term:(P.term "x + y") ~target:(I.of_float 6.0) b in
  match r2 with
  | None -> Alcotest.fail "feasible constraint reported infeasible"
  | Some b' ->
      let x = Box.find "x" b' in
      Alcotest.(check bool) "x lo raised" true (I.lo x >= 1.99);
      Alcotest.(check bool) "x hi kept" true (I.hi x <= 4.01)

let test_revise_square () =
  let b = box [ ("x", 0.0, 10.0) ] in
  match C.revise ~term:(P.term "x^2") ~target:(I.make 4.0 9.0) b with
  | None -> Alcotest.fail "x^2 in [4,9] feasible"
  | Some b' ->
      let x = Box.find "x" b' in
      Alcotest.(check bool) "lo ~2" true (I.lo x >= 1.99 && I.lo x <= 2.01);
      Alcotest.(check bool) "hi ~3" true (I.hi x >= 2.99 && I.hi x <= 3.01)

let test_revise_square_negative_branch () =
  let b = box [ ("x", -10.0, 0.0) ] in
  match C.revise ~term:(P.term "x^2") ~target:(I.make 4.0 9.0) b with
  | None -> Alcotest.fail "negative branch feasible"
  | Some b' ->
      let x = Box.find "x" b' in
      Alcotest.(check bool) "negative branch [-3,-2]" true
        (I.lo x >= -3.01 && I.hi x <= -1.99)

let test_revise_exp () =
  let b = box [ ("x", -10.0, 10.0) ] in
  match C.revise ~term:(P.term "exp(x)") ~target:(I.make 1.0 (Float.exp 2.0)) b with
  | None -> Alcotest.fail "exp feasible"
  | Some b' ->
      let x = Box.find "x" b' in
      Alcotest.(check bool) "x in ~[0,2]" true (I.lo x >= -0.01 && I.hi x <= 2.01)

let test_revise_multiple_occurrences () =
  (* x * x - x = 0 on [0.5, 10]: solution x = 1; contraction must keep 1. *)
  let b = box [ ("x", 0.5, 10.0) ] in
  match C.revise ~term:(P.term "x*x - x") ~target:(I.of_float 0.0) b with
  | None -> Alcotest.fail "root exists"
  | Some b' -> Alcotest.(check bool) "keeps x=1" true (I.mem 1.0 (Box.find "x" b'))

let test_fixpoint () =
  (* x = y, x + y = 4, both in [0, 10]: fixpoint should close in on x=y=2. *)
  let cs =
    [ { C.term = P.term "x - y"; target = I.of_float 0.0 };
      { C.term = P.term "x + y"; target = I.of_float 4.0 } ]
  in
  match C.fixpoint ~max_rounds:50 cs (box [ ("x", 0.0, 10.0); ("y", 0.0, 10.0) ]) with
  | None -> Alcotest.fail "system feasible"
  | Some b ->
      (* HC4's fixpoint for this dependent pair is x ∈ [0,4] (interval
         arithmetic cannot see through the x/y correlation further). *)
      Alcotest.(check bool) "x narrowed" true (I.mem 2.0 (Box.find "x" b));
      Alcotest.(check bool) "x within [0,4]" true
        (I.subset (Box.find "x" b) (I.make (-0.01) 4.01))

let test_fixpoint_infeasible () =
  let cs =
    [ { C.term = P.term "x"; target = I.make 5.0 10.0 };
      { C.term = P.term "x"; target = I.make 0.0 1.0 } ]
  in
  Alcotest.(check bool) "contradictory" true
    (C.fixpoint cs (box [ ("x", -100.0, 100.0) ]) = None)

(* ---- Solver unit tests ---- *)

let expect_delta_sat name r =
  match r with
  | S.Delta_sat w -> w
  | S.Unsat -> Alcotest.failf "%s: expected delta-sat, got unsat" name
  | S.Unknown why -> Alcotest.failf "%s: expected delta-sat, got unknown (%s)" name why

let expect_unsat name r =
  match r with
  | S.Unsat -> ()
  | S.Delta_sat _ -> Alcotest.failf "%s: expected unsat, got delta-sat" name
  | S.Unknown why -> Alcotest.failf "%s: expected unsat, got unknown (%s)" name why

let test_decide_sqrt2 () =
  let f = P.formula "x^2 = 2" in
  let w = expect_delta_sat "sqrt2" (S.decide ~config:cfg f (box [ ("x", 0.0, 2.0) ])) in
  let x = List.assoc "x" w.point in
  Alcotest.(check bool) "witness near sqrt 2" true (Float.abs (x -. Float.sqrt 2.0) < 0.05)

let test_decide_unsat_interval () =
  let f = P.formula "x > 1 and x < 0" in
  expect_unsat "contradiction" (S.decide ~config:cfg f (box [ ("x", -10.0, 10.0) ]))

let test_decide_unsat_geometry () =
  (* circle of radius 1 cannot meet the line x + y = 3 *)
  let f = P.formula "x^2 + y^2 <= 1 and x + y >= 3" in
  expect_unsat "circle/line"
    (S.decide ~config:cfg f (box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ]))

let test_decide_sin () =
  let f = P.formula "sin(x) = 1/2" in
  let w =
    expect_delta_sat "sin" (S.decide ~config:cfg f (box [ ("x", 0.0, 1.5707) ]))
  in
  let x = List.assoc "x" w.point in
  Alcotest.(check bool) "x near pi/6" true (Float.abs (x -. (Float.pi /. 6.0)) < 0.05)

let test_decide_disjunction () =
  let f = P.formula "(x <= -5 and x >= -6) or x^2 = 9" in
  let w =
    expect_delta_sat "disjunction" (S.decide ~config:cfg f (box [ ("x", 0.0, 10.0) ]))
  in
  let x = List.assoc "x" w.point in
  (* only the second branch intersects the box *)
  Alcotest.(check bool) "witness near 3" true (Float.abs (x -. 3.0) < 0.05)

let test_decide_multivariate () =
  (* Rosenbrock-style equation system has a solution at (1, 1). *)
  let f = P.formula "(1 - x)^2 + 100 * (y - x^2)^2 <= 0.0001" in
  let w =
    expect_delta_sat "rosenbrock"
      (S.decide ~config:{ cfg with epsilon = 1e-3 } f
         (box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ]))
  in
  Alcotest.(check bool) "x near 1" true (Float.abs (List.assoc "x" w.point -. 1.0) < 0.1);
  Alcotest.(check bool) "y near 1" true (Float.abs (List.assoc "y" w.point -. 1.0) < 0.1)

let test_decide_delta_effect () =
  (* x >= 1 on [0, 0.999]: unsat for tiny δ, δ-sat for δ > 0.001 with the
     one-sided semantics of Theorem 1. *)
  let f = P.formula "x >= 1" in
  let b = box [ ("x", 0.0, 0.999) ] in
  expect_unsat "tight delta" (S.decide ~config:{ cfg with delta = 1e-6 } f b);
  let _ = expect_delta_sat "loose delta" (S.decide ~config:{ cfg with delta = 0.01 } f b) in
  ()

let test_decide_trivial () =
  let b = box [ ("x", 0.0, 1.0) ] in
  let _ = expect_delta_sat "true" (S.decide ~config:cfg F.tt b) in
  expect_unsat "false" (S.decide ~config:cfg F.ff b)

let test_decide_budget () =
  (* A hard feasibility problem with an absurdly small budget reports
     Unknown rather than guessing. *)
  let f = P.formula "sin(10*x) * cos(10*y) = 0.734001" in
  let r =
    S.decide
      ~config:{ cfg with max_boxes = 3; epsilon = 1e-12; delta = 1e-9 }
      f
      (box [ ("x", 0.0, 10.0); ("y", 0.0, 10.0) ])
  in
  match r with
  | S.Unknown _ -> ()
  | S.Unsat -> Alcotest.fail "budget 3 cannot prove unsat"
  | S.Delta_sat w ->
      (* If it did find a witness that fast it must be certified. *)
      Alcotest.(check bool) "certified" true w.certified

let test_stats () =
  let f = P.formula "x^2 + y^2 = 1" in
  let _, stats =
    S.decide_with_stats ~config:cfg f (box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ])
  in
  Alcotest.(check bool) "processed boxes" true (stats.S.boxes_processed > 0)

let test_ablation_no_contraction () =
  (* Bisection-only search must agree with contraction-enabled search. *)
  let f = P.formula "x^2 = 2" in
  let b = box [ ("x", 0.0, 2.0) ] in
  let w1 = expect_delta_sat "with" (S.decide ~config:cfg f b) in
  let w2 =
    expect_delta_sat "without"
      (S.decide ~config:{ cfg with use_contraction = false } f b)
  in
  Alcotest.(check bool) "same root" true
    (Float.abs (List.assoc "x" w1.point -. List.assoc "x" w2.point) < 0.1)

(* ---- Paving tests ---- *)

let test_pave_circle () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let b = box [ ("x", -1.0, 1.0); ("y", -1.0, 1.0) ] in
  let p = S.pave ~config:{ cfg with epsilon = 0.05 } f b in
  Alcotest.(check bool) "has sat boxes" true (p.S.sat <> []);
  Alcotest.(check bool) "has unsat boxes" true (p.S.unsat <> []);
  (* All sat boxes satisfy the formula at their midpoint; unsat fail. *)
  List.iter
    (fun bx ->
      Alcotest.(check bool) "sat box midpoint" true (F.holds_env (Box.mid_env bx) f))
    p.S.sat;
  List.iter
    (fun bx ->
      Alcotest.(check bool) "unsat box midpoint" false (F.holds_env (Box.mid_env bx) f))
    p.S.unsat;
  let vs, vu, vund = S.paving_volumes ~over:[ "x"; "y" ] p in
  let total = vs +. vu +. vund in
  Alcotest.(check bool) "volumes sum to box volume" true (Float.abs (total -. 4.0) < 0.05);
  (* sat volume under-approximates the disc area pi, and sat+undecided
     over-approximates it. *)
  Alcotest.(check bool) "sat <= pi" true (vs <= Float.pi +. 0.05);
  Alcotest.(check bool) "sat+und >= pi" true (vs +. vund >= Float.pi -. 0.05)

let test_pave_all_sat () =
  let f = P.formula "x >= -10" in
  let p = S.pave ~config:cfg f (box [ ("x", 0.0, 1.0) ]) in
  Alcotest.(check int) "one sat box" 1 (List.length p.S.sat);
  Alcotest.(check int) "no unsat" 0 (List.length p.S.unsat)

(* ---- ∃∀ CEGIS ---- *)

let test_eforall_scaling () =
  (* ∃c ∈ [0,2] ∀x ∈ [-1,1]: c·x² ≥ 0.5·x² — any c ≥ 0.5 works. *)
  let phi = P.formula "c * x^2 >= 0.5 * x^2" in
  match
    Icp.Eforall.solve
      ~exists_box:(box [ ("c", 0.0, 2.0) ])
      ~forall_box:(box [ ("x", -1.0, 1.0) ])
      phi
  with
  | Icp.Eforall.Proved { witness; _ } ->
      Alcotest.(check bool) "c >= 0.5" true (List.assoc "c" witness >= 0.45)
  | r -> Alcotest.failf "expected proved, got %s" (Fmt.str "%a" Icp.Eforall.pp_result r)

let test_eforall_no_witness () =
  (* ∃a ∈ [-1,1] ∀x ∈ [-1,1]: (x - a)² ≥ 0.1 — impossible: take x = a. *)
  let phi = P.formula "(x - a)^2 >= 0.1" in
  match
    Icp.Eforall.solve
      ~exists_box:(box [ ("a", -1.0, 1.0) ])
      ~forall_box:(box [ ("x", -1.0, 1.0) ])
      phi
  with
  | Icp.Eforall.Proved _ -> Alcotest.fail "no witness exists"
  | Icp.Eforall.No_witness _ | Icp.Eforall.Budget_exhausted _ -> ()

let test_eforall_offset () =
  (* ∃b ∈ [0,5] ∀x ∈ [-1,1]: b - x² >= 1, i.e. b >= 2. *)
  let phi = P.formula "b - x^2 >= 1" in
  match
    Icp.Eforall.solve
      ~exists_box:(box [ ("b", 0.0, 5.0) ])
      ~forall_box:(box [ ("x", -1.0, 1.0) ])
      phi
  with
  | Icp.Eforall.Proved { witness; _ } ->
      Alcotest.(check bool) "b >= 2" true (List.assoc "b" witness >= 1.95)
  | r -> Alcotest.failf "expected proved, got %s" (Fmt.str "%a" Icp.Eforall.pp_result r)

let test_eforall_unbound_var () =
  Alcotest.check_raises "unbound" (Invalid_argument "Eforall.solve: unbound variable \"z\"")
    (fun () ->
      ignore
        (Icp.Eforall.solve
           ~exists_box:(box [ ("a", 0.0, 1.0) ])
           ~forall_box:(box [ ("x", 0.0, 1.0) ])
           (P.formula "a + x + z >= 0")))

(* ---- Property tests ---- *)

(* Soundness of Unsat: if the solver says unsat, dense sampling must not
   find a satisfying point. *)
let prop_unsat_sound =
  let gen =
    QCheck.Gen.(
      float_range (-3.0) 3.0 >>= fun c ->
      float_range 0.2 2.0 >>= fun r -> return (c, r))
  in
  QCheck.Test.make ~count:60 ~name:"unsat verdicts are sound"
    (QCheck.make ~print:(fun (c, r) -> Printf.sprintf "c=%g r=%g" c r) gen)
    (fun (c, r) ->
      let f =
        F.and_
          [ P.formula (Printf.sprintf "x^2 + y^2 <= %.17g" (r *. r));
            P.formula (Printf.sprintf "x + y >= %.17g" c) ]
      in
      let b = box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ] in
      match S.decide ~config:{ cfg with max_boxes = 20_000 } f b with
      | S.Unsat ->
          (* exhaustive-ish grid check *)
          let ok = ref true in
          for i = 0 to 40 do
            for j = 0 to 40 do
              let x = -2.0 +. (4.0 *. float_of_int i /. 40.0) in
              let y = -2.0 +. (4.0 *. float_of_int j /. 40.0) in
              if F.holds_env [ ("x", x); ("y", y) ] f then ok := false
            done
          done;
          !ok
      | S.Delta_sat w ->
          (* a certified witness must satisfy the weakened formula *)
          (not w.certified)
          || F.holds_delta ~delta:cfg.S.delta
               (fun v -> List.assoc v w.point)
               f
      | S.Unknown _ -> true)

let prop_certified_witness_valid =
  let gen = QCheck.Gen.float_range (-1.0) 1.5 in
  QCheck.Test.make ~count:60 ~name:"certified witnesses satisfy the weakened formula"
    (QCheck.make ~print:string_of_float gen)
    (fun a ->
      let f = P.formula (Printf.sprintf "sin(x) = %.17g" a) in
      let b = box [ ("x", -10.0, 10.0) ] in
      match S.decide ~config:cfg f b with
      | S.Delta_sat w when w.certified ->
          F.holds_delta ~delta:cfg.S.delta (fun v -> List.assoc v w.point) f
      | S.Delta_sat _ -> true
      | S.Unsat -> Float.abs a > 1.0 -. 1e-9 (* |sin| <= 1 *)
      | S.Unknown _ -> true)

let prop_revise_never_loses_solutions =
  let gen =
    QCheck.Gen.(
      float_range (-2.0) 2.0 >>= fun x ->
      float_range (-2.0) 2.0 >>= fun y -> return (x, y))
  in
  QCheck.Test.make ~count:200 ~name:"HC4 revise never removes solutions"
    (QCheck.make ~print:(fun (x, y) -> Printf.sprintf "(%g, %g)" x y) gen)
    (fun (x, y) ->
      (* Constraint satisfied exactly at the sampled point. *)
      let v = (x *. x) +. (y *. Float.sin x) in
      let term = P.term "x*x + y*sin(x)" in
      let b = box [ ("x", -2.0, 2.0); ("y", -2.0, 2.0) ] in
      match C.revise ~term ~target:(I.inflate 1e-9 (I.of_float v)) b with
      | None -> false (* the point satisfies it, pruning everything is wrong *)
      | Some b' -> Box.contains_env [ ("x", x); ("y", y) ] b')

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_unsat_sound; prop_certified_witness_valid; prop_revise_never_loses_solutions ]

let () =
  Alcotest.run "icp"
    [
      ( "contractor",
        [
          Alcotest.test_case "revise linear" `Quick test_revise_linear;
          Alcotest.test_case "revise square" `Quick test_revise_square;
          Alcotest.test_case "revise square negative" `Quick test_revise_square_negative_branch;
          Alcotest.test_case "revise exp" `Quick test_revise_exp;
          Alcotest.test_case "multiple occurrences" `Quick test_revise_multiple_occurrences;
          Alcotest.test_case "fixpoint" `Quick test_fixpoint;
          Alcotest.test_case "fixpoint infeasible" `Quick test_fixpoint_infeasible;
        ] );
      ( "solver",
        [
          Alcotest.test_case "sqrt 2" `Quick test_decide_sqrt2;
          Alcotest.test_case "interval contradiction" `Quick test_decide_unsat_interval;
          Alcotest.test_case "geometric unsat" `Quick test_decide_unsat_geometry;
          Alcotest.test_case "sin equation" `Quick test_decide_sin;
          Alcotest.test_case "disjunction" `Quick test_decide_disjunction;
          Alcotest.test_case "multivariate" `Quick test_decide_multivariate;
          Alcotest.test_case "delta effect" `Quick test_decide_delta_effect;
          Alcotest.test_case "trivial formulas" `Quick test_decide_trivial;
          Alcotest.test_case "budget exhaustion" `Quick test_decide_budget;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "ablation: no contraction" `Quick test_ablation_no_contraction;
        ] );
      ( "paving",
        [
          Alcotest.test_case "circle" `Quick test_pave_circle;
          Alcotest.test_case "all sat" `Quick test_pave_all_sat;
        ] );
      ( "eforall",
        [
          Alcotest.test_case "scaling" `Quick test_eforall_scaling;
          Alcotest.test_case "no witness" `Quick test_eforall_no_witness;
          Alcotest.test_case "offset" `Quick test_eforall_offset;
          Alcotest.test_case "unbound variable" `Quick test_eforall_unbound_var;
        ] );
      ("properties", qcheck_tests);
    ]
