(* Tests for the ODE substrate: numeric integrators and validated
   enclosures. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse
module Sys = Ode.System
module Int = Ode.Integrate
module Enc = Ode.Enclosure

let decay = Sys.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ]

let decay_k = Sys.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]

let oscillator =
  Sys.of_strings ~vars:[ "x"; "y" ] ~params:[ "w" ]
    ~rhs:[ ("x", "w*y"); ("y", "-w*x") ]

(* ---- System construction ---- *)

let test_system_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "missing equation" (fun () ->
      Sys.of_strings ~vars:[ "x"; "y" ] ~params:[] ~rhs:[ ("x", "-x") ]);
  expect_invalid "unbound name" (fun () ->
      Sys.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-z") ]);
  expect_invalid "duplicate var" (fun () ->
      Sys.of_strings ~vars:[ "x"; "x" ] ~params:[] ~rhs:[ ("x", "-x") ]);
  expect_invalid "var is param" (fun () ->
      Sys.of_strings ~vars:[ "x" ] ~params:[ "x" ] ~rhs:[ ("x", "-x") ]);
  expect_invalid "t reserved" (fun () ->
      Sys.of_strings ~vars:[ "t" ] ~params:[] ~rhs:[ ("t", "1") ]);
  expect_invalid "equation for non-state" (fun () ->
      Sys.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x"); ("y", "1") ])

let test_bind_params () =
  let bound = Sys.bind_params [ ("k", 2.0) ] decay_k in
  Alcotest.(check (list string)) "no params left" [] (Sys.params bound);
  let f = Sys.compile bound in
  Alcotest.(check (float 1e-12)) "rhs at x=3" (-6.0) (f 0.0 [| 3.0 |]).(0)

let test_compile_requires_params () =
  Alcotest.check_raises "unbound param"
    (Invalid_argument "System.compile: parameter \"k\" not bound") (fun () ->
      ignore (Sys.compile decay_k 0.0 [| 1.0 |]))

let test_jacobian () =
  match Sys.jacobian oscillator with
  | [ [ dxx; dxy ]; [ dyx; dyy ] ] ->
      let at = [ ("x", 1.0); ("y", 2.0); ("w", 3.0) ] in
      Alcotest.(check (float 1e-12)) "dfx/dx" 0.0 (Expr.Term.eval_env at dxx);
      Alcotest.(check (float 1e-12)) "dfx/dy" 3.0 (Expr.Term.eval_env at dxy);
      Alcotest.(check (float 1e-12)) "dfy/dx" (-3.0) (Expr.Term.eval_env at dyx);
      Alcotest.(check (float 1e-12)) "dfy/dy" 0.0 (Expr.Term.eval_env at dyy)
  | _ -> Alcotest.fail "jacobian shape"

(* ---- Numeric integration ---- *)

let test_decay_rk4 () =
  let tr =
    Int.simulate ~method_:(Int.Rk4 0.01) ~params:[] ~init:[ ("x", 1.0) ] ~t_end:1.0 decay
  in
  Alcotest.(check (float 1e-6)) "e^-1" (Float.exp (-1.0)) (Int.final_state tr).(0);
  Alcotest.(check (float 1e-9)) "final time" 1.0 (Int.final_time tr)

let test_decay_rkf45 () =
  let tr = Int.simulate ~params:[] ~init:[ ("x", 1.0) ] ~t_end:1.0 decay in
  Alcotest.(check (float 1e-4)) "e^-1 adaptive" (Float.exp (-1.0)) (Int.final_state tr).(0)

let test_integrator_order () =
  (* Euler at the same step should be much less accurate than RK4. *)
  let final m =
    (Int.final_state (Int.simulate ~method_:m ~params:[] ~init:[ ("x", 1.0) ] ~t_end:1.0 decay)).(0)
  in
  let exact = Float.exp (-1.0) in
  let err_euler = Float.abs (final (Int.Euler 0.05) -. exact) in
  let err_rk4 = Float.abs (final (Int.Rk4 0.05) -. exact) in
  Alcotest.(check bool) "rk4 beats euler by 100x" true (err_rk4 *. 100.0 < err_euler)

let test_oscillator_energy () =
  let tr =
    Int.simulate ~method_:(Int.Rk4 0.001) ~params:[ ("w", 2.0) ]
      ~init:[ ("x", 1.0); ("y", 0.0) ] ~t_end:3.0 oscillator
  in
  let final = Int.final_state tr in
  let energy = (final.(0) *. final.(0)) +. (final.(1) *. final.(1)) in
  Alcotest.(check (float 1e-6)) "energy conserved" 1.0 energy;
  (* x(t) = cos(w t) *)
  Alcotest.(check (float 1e-5)) "x = cos(2*3)" (Float.cos 6.0) final.(0)

let test_time_dependent () =
  let sys = Sys.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "t") ] in
  let tr = Int.simulate ~method_:(Int.Rk4 0.01) ~params:[] ~init:[ ("x", 0.0) ] ~t_end:2.0 sys in
  Alcotest.(check (float 1e-6)) "x = t^2/2" 2.0 (Int.final_state tr).(0)

let test_trace_accessors () =
  let tr =
    Int.simulate ~method_:(Int.Rk4 0.1) ~params:[ ("w", 1.0) ]
      ~init:[ ("x", 1.0); ("y", 0.0) ] ~t_end:1.0 oscillator
  in
  Alcotest.(check (float 3e-3)) "value_at interpolates" (Float.cos 0.55)
    (Int.value_at tr "x" 0.55);
  let sig_x = Int.signal tr "x" in
  Alcotest.(check int) "signal length" (Int.length tr) (Array.length sig_x);
  Alcotest.(check (float 0.0)) "signal start" 1.0 sig_x.(0);
  (match Int.env_at tr 0 with
  | env ->
      Alcotest.(check (float 0.0)) "env time" 0.0 (List.assoc "t" env);
      Alcotest.(check (float 0.0)) "env x" 1.0 (List.assoc "x" env));
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Integrate.var_index: unknown \"z\"") (fun () ->
      ignore (Int.value_at tr "z" 0.5))

let test_simulate_until () =
  let guard = P.formula "x <= 1/2" in
  let _, ev =
    Int.simulate_until ~method_:(Int.Rk4 0.01) ~params:[] ~init:[ ("x", 1.0) ]
      ~t_end:5.0 ~guard decay
  in
  match ev with
  | None -> Alcotest.fail "decay reaches 1/2"
  | Some e ->
      Alcotest.(check (float 1e-4)) "crossing at ln 2" (Float.log 2.0) e.Int.time;
      Alcotest.(check (float 1e-4)) "state at crossing" 0.5 e.Int.state.(0)

let test_simulate_until_no_event () =
  let guard = P.formula "x >= 2" in
  let _, ev =
    Int.simulate_until ~params:[] ~init:[ ("x", 1.0) ] ~t_end:1.0 ~guard decay
  in
  Alcotest.(check bool) "no event" true (ev = None)

let test_simulate_until_immediate () =
  let guard = P.formula "x >= 1" in
  let _, ev =
    Int.simulate_until ~params:[] ~init:[ ("x", 1.0) ] ~t_end:1.0 ~guard decay
  in
  match ev with
  | None -> Alcotest.fail "guard true initially"
  | Some e -> Alcotest.(check (float 1e-9)) "event at t=0" 0.0 e.Int.time

let test_solve_linear () =
  (* 2x + y = 5, x - y = 1  =>  x = 2, y = 1 *)
  let x = Int.solve_linear [| [| 2.0; 1.0 |]; [| 1.0; -1.0 |] |] [| 5.0; 1.0 |] in
  Alcotest.(check (float 1e-12)) "x" 2.0 x.(0);
  Alcotest.(check (float 1e-12)) "y" 1.0 x.(1);
  (* pivoting required: zero on the diagonal *)
  let z = Int.solve_linear [| [| 0.0; 1.0 |]; [| 1.0; 0.0 |] |] [| 3.0; 7.0 |] in
  Alcotest.(check (float 1e-12)) "pivot x" 7.0 z.(0);
  Alcotest.(check (float 1e-12)) "pivot y" 3.0 z.(1)

(* Stiff test problem: x' = -1000 (x - cos t) - sin t, exact x = cos t
   from x0 = 1.  Explicit Euler at h = 0.01 has amplification |1 - 10| = 9
   per step and explodes; backward Euler is A-stable. *)
let stiff =
  Sys.of_strings ~vars:[ "x" ] ~params:[]
    ~rhs:[ ("x", "-1000 * (x - cos(t)) - sin(t)") ]

let test_implicit_euler_stiff () =
  let tr =
    Int.simulate ~method_:(Int.default_implicit 0.01) ~params:[]
      ~init:[ ("x", 1.0) ] ~t_end:2.0 stiff
  in
  Alcotest.(check (float 1e-3)) "tracks cos t" (Float.cos 2.0) (Int.final_state tr).(0);
  (* explicit Euler at the same step must blow up *)
  let tr_exp =
    Int.simulate ~method_:(Int.Euler 0.01) ~params:[] ~init:[ ("x", 1.0) ]
      ~t_end:2.0 stiff
  in
  let v = (Int.final_state tr_exp).(0) in
  Alcotest.(check bool) "explicit euler diverges" true
    (Float.is_nan v || Float.abs v > 1e3)

let test_implicit_euler_accuracy_nonstiff () =
  (* On the plain decay problem it should agree with the exact solution
     to first order. *)
  let tr =
    Int.simulate ~method_:(Int.default_implicit 0.001) ~params:[]
      ~init:[ ("x", 1.0) ] ~t_end:1.0 decay
  in
  Alcotest.(check (float 1e-3)) "e^-1" (Float.exp (-1.0)) (Int.final_state tr).(0)

(* ---- Validated enclosures ---- *)

let box1 x lo hi = Box.of_list [ (x, I.make lo hi) ]

let test_enclosure_decay () =
  let tube =
    Enc.flow ~params:Box.empty_map ~init:(box1 "x" 1.0 1.0) ~t_end:1.0 decay
  in
  Alcotest.(check bool) "complete" true tube.Enc.complete;
  let final = Box.find "x" tube.Enc.final in
  Alcotest.(check bool) "contains e^-1" true (I.mem (Float.exp (-1.0)) final);
  Alcotest.(check bool) "reasonably tight" true (I.width final < 0.1)

let test_enclosure_contains_trace () =
  (* Every numerically computed point must lie in the tube. *)
  let tube =
    Enc.flow ~params:Box.empty_map ~init:(box1 "x" 1.0 1.0) ~t_end:1.0 decay
  in
  let ok = ref true in
  for i = 0 to 20 do
    let t = float_of_int i /. 20.0 in
    match Enc.state_at tube t with
    | None -> ok := false
    | Some b -> if not (I.mem (Float.exp (-.t)) (Box.find "x" b)) then ok := false
  done;
  Alcotest.(check bool) "exact solution inside tube" true !ok

let test_enclosure_param_box () =
  (* k ∈ [0.5, 1.5]: the final box must contain e^-k for every k. *)
  let tube =
    Enc.flow
      ~params:(box1 "k" 0.5 1.5)
      ~init:(box1 "x" 1.0 1.0) ~t_end:1.0 decay_k
  in
  Alcotest.(check bool) "complete" true tube.Enc.complete;
  let final = Box.find "x" tube.Enc.final in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "contains e^-%g" k)
        true
        (I.mem (Float.exp (-.k)) final))
    [ 0.5; 0.8; 1.0; 1.2; 1.5 ]

let test_enclosure_orders () =
  let run order =
    let config = { Enc.default_config with order } in
    let tube = Enc.flow ~config ~params:Box.empty_map ~init:(box1 "x" 1.0 1.0) ~t_end:1.0 decay in
    I.width (Box.find "x" tube.Enc.final)
  in
  let w1 = run Enc.Euler_1 and w2 = run Enc.Taylor_2 in
  Alcotest.(check bool) "taylor-2 tighter than euler-1" true (w2 < w1)

let test_enclosure_initial_box () =
  (* An initial box must stay an enclosure of all member trajectories. *)
  let tube =
    Enc.flow ~params:Box.empty_map ~init:(box1 "x" 0.8 1.2) ~t_end:1.0 decay
  in
  let final = Box.find "x" tube.Enc.final in
  List.iter
    (fun x0 ->
      Alcotest.(check bool)
        (Printf.sprintf "x0=%g" x0)
        true
        (I.mem (x0 *. Float.exp (-1.0)) final))
    [ 0.8; 0.9; 1.0; 1.1; 1.2 ]

let test_formula_along () =
  let tube =
    Enc.flow ~params:Box.empty_map ~init:(box1 "x" 1.0 1.0) ~t_end:2.0 decay
  in
  (match Enc.formula_along tube ~params:Box.empty_map (P.formula "x <= 1/2") with
  | `Never -> Alcotest.fail "crossing exists"
  | `Always -> Alcotest.fail "not true initially"
  | `Sometimes windows ->
      let covers = List.exists (fun (lo, hi) -> lo <= Float.log 2.0 && Float.log 2.0 <= hi +. 0.1) windows in
      Alcotest.(check bool) "window near ln 2" true covers);
  (match Enc.formula_along tube ~params:Box.empty_map (P.formula "x >= 2") with
  | `Never -> ()
  | _ -> Alcotest.fail "x never reaches 2");
  match Enc.formula_along tube ~params:Box.empty_map (P.formula "x > 0") with
  | `Always -> ()
  | _ -> Alcotest.fail "x stays positive"

let test_enclosure_oscillator () =
  let tube =
    Enc.flow
      ~config:{ Enc.default_config with h = 0.02 }
      ~params:(box1 "w" 1.0 1.0)
      ~init:(Box.of_list [ ("x", I.of_float 1.0); ("y", I.of_float 0.0) ])
      ~t_end:1.5 oscillator
  in
  Alcotest.(check bool) "complete" true tube.Enc.complete;
  Alcotest.(check bool) "contains cos(1.5)" true
    (I.mem (Float.cos 1.5) (Box.find "x" tube.Enc.final))

(* ---- Properties ---- *)

let prop_enclosure_contains_exact =
  let gen =
    QCheck.Gen.(
      float_range (-1.0) 0.5 >>= fun a ->
      float_range 0.5 2.0 >>= fun x0 -> return (a, x0))
  in
  QCheck.Test.make ~count:50 ~name:"linear flow enclosure contains exact solution"
    (QCheck.make ~print:(fun (a, x0) -> Printf.sprintf "a=%g x0=%g" a x0) gen)
    (fun (a, x0) ->
      let sys = Sys.of_strings ~vars:[ "x" ] ~params:[ "a" ] ~rhs:[ ("x", "a*x") ] in
      let tube =
        Enc.flow
          ~params:(box1 "a" a a)
          ~init:(box1 "x" x0 x0)
          ~t_end:1.0 sys
      in
      (not tube.Enc.complete)
      || I.mem (x0 *. Float.exp a) (Box.find "x" tube.Enc.final))

let prop_rk4_matches_exact_linear =
  let gen = QCheck.Gen.float_range (-2.0) 1.0 in
  QCheck.Test.make ~count:50 ~name:"rk4 solves linear ODEs accurately"
    (QCheck.make ~print:string_of_float gen)
    (fun a ->
      let sys = Sys.of_strings ~vars:[ "x" ] ~params:[ "a" ] ~rhs:[ ("x", "a*x") ] in
      let tr =
        Int.simulate ~method_:(Int.Rk4 0.01) ~params:[ ("a", a) ] ~init:[ ("x", 1.0) ]
          ~t_end:1.0 sys
      in
      Float.abs ((Int.final_state tr).(0) -. Float.exp a) < 1e-5)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_enclosure_contains_exact; prop_rk4_matches_exact_linear ]

let () =
  Alcotest.run "ode"
    [
      ( "system",
        [
          Alcotest.test_case "validation" `Quick test_system_validation;
          Alcotest.test_case "bind params" `Quick test_bind_params;
          Alcotest.test_case "compile requires params" `Quick test_compile_requires_params;
          Alcotest.test_case "jacobian" `Quick test_jacobian;
        ] );
      ( "integrate",
        [
          Alcotest.test_case "decay rk4" `Quick test_decay_rk4;
          Alcotest.test_case "decay rkf45" `Quick test_decay_rkf45;
          Alcotest.test_case "integrator order" `Quick test_integrator_order;
          Alcotest.test_case "oscillator energy" `Quick test_oscillator_energy;
          Alcotest.test_case "time dependent" `Quick test_time_dependent;
          Alcotest.test_case "trace accessors" `Quick test_trace_accessors;
          Alcotest.test_case "linear solver" `Quick test_solve_linear;
          Alcotest.test_case "implicit euler stiff" `Quick test_implicit_euler_stiff;
          Alcotest.test_case "implicit euler accuracy" `Quick test_implicit_euler_accuracy_nonstiff;
          Alcotest.test_case "event localization" `Quick test_simulate_until;
          Alcotest.test_case "no event" `Quick test_simulate_until_no_event;
          Alcotest.test_case "immediate event" `Quick test_simulate_until_immediate;
        ] );
      ( "enclosure",
        [
          Alcotest.test_case "decay" `Quick test_enclosure_decay;
          Alcotest.test_case "contains trace" `Quick test_enclosure_contains_trace;
          Alcotest.test_case "parameter box" `Quick test_enclosure_param_box;
          Alcotest.test_case "order comparison" `Quick test_enclosure_orders;
          Alcotest.test_case "initial box" `Quick test_enclosure_initial_box;
          Alcotest.test_case "formula along tube" `Quick test_formula_along;
          Alcotest.test_case "oscillator" `Quick test_enclosure_oscillator;
        ] );
      ("properties", qcheck_tests);
    ]
