(* Tests for the L_RF term and formula layer. *)

module T = Expr.Term
module F = Expr.Formula
module P = Expr.Parse
module I = Interval.Ia
module Box = Interval.Box

let env2 x y = [ ("x", x); ("y", y) ]

(* ---- Term unit tests ---- *)

let test_eval_basic () =
  let t = P.term "x^2 + 2*x*y - y/3" in
  let expected = (2.0 ** 2.0) +. (2.0 *. 2.0 *. 5.0) -. (5.0 /. 3.0) in
  Alcotest.(check (float 1e-12)) "polynomial" expected (T.eval_env (env2 2.0 5.0) t)

let test_eval_functions () =
  let t = P.term "exp(x) + log(y) + sqrt(x*y) + sin(x) * cos(y)" in
  let x = 0.7 and y = 2.3 in
  let expected =
    Float.exp x +. Float.log y +. Float.sqrt (x *. y) +. (Float.sin x *. Float.cos y)
  in
  Alcotest.(check (float 1e-12)) "functions" expected (T.eval_env (env2 x y) t)

let test_smart_constructors () =
  Alcotest.(check bool) "x + 0 = x" true (T.equal (T.add (T.var "x") T.zero) (T.var "x"));
  Alcotest.(check bool) "x * 1 = x" true (T.equal (T.mul (T.var "x") T.one) (T.var "x"));
  Alcotest.(check bool) "x * 0 = 0" true (T.equal (T.mul (T.var "x") T.zero) T.zero);
  Alcotest.(check bool) "const fold" true (T.equal (T.add (T.const 2.0) (T.const 3.0)) (T.const 5.0));
  Alcotest.(check bool) "neg neg" true (T.equal (T.neg (T.neg (T.var "x"))) (T.var "x"));
  Alcotest.(check bool) "pow 1" true (T.equal (T.pow (T.var "x") 1) (T.var "x"));
  Alcotest.(check bool) "pow 0" true (T.equal (T.pow (T.var "x") 0) T.one)

let test_free_vars () =
  let t = P.term "x * sin(y) + z^2 - x" in
  Alcotest.(check (list string)) "vars" [ "x"; "y"; "z" ] (T.free_var_list t);
  Alcotest.(check bool) "mentions" true (T.mentions "y" t);
  Alcotest.(check bool) "no mention" false (T.mentions "w" t)

let test_subst_rename () =
  let t = P.term "x + y" in
  let t' = T.subst [ ("x", P.term "2*z") ] t in
  Alcotest.(check (float 1e-12)) "subst" 7.0 (T.eval_env [ ("z", 2.0); ("y", 3.0) ] t');
  let r = T.rename [ ("x", "x0") ] t in
  Alcotest.(check (list string)) "renamed" [ "x0"; "y" ] (T.free_var_list r)

let test_deriv () =
  let t = P.term "x^3 + 2*x" in
  let d = T.deriv "x" t in
  Alcotest.(check (float 1e-9)) "d(x^3+2x)" (3.0 *. 4.0 +. 2.0)
    (T.eval_env [ ("x", 2.0) ] d);
  let s = T.deriv "x" (P.term "sin(x^2)") in
  let x = 0.9 in
  Alcotest.(check (float 1e-9)) "chain rule" (2.0 *. x *. Float.cos (x *. x))
    (T.eval_env [ ("x", x) ] s);
  let q = T.deriv "x" (P.term "exp(x)/x") in
  let x = 1.7 in
  Alcotest.(check (float 1e-9)) "quotient rule"
    ((Float.exp x *. x -. Float.exp x) /. (x *. x))
    (T.eval_env [ ("x", x) ] q)

let test_lie_derivative () =
  (* V = x^2 + y^2 along the rotation field (dx = -y, dy = x) is constant:
     its Lie derivative must simplify to a term that evaluates to 0. *)
  let v = P.term "x^2 + y^2" in
  let field = [ ("x", P.term "-y"); ("y", P.term "x") ] in
  let lie = T.lie_derivative field v in
  Alcotest.(check (float 1e-12)) "rotation invariant" 0.0
    (T.eval_env (env2 1.3 (-0.4)) lie)

let test_compile () =
  let t = P.term "x^2 * sin(y) + exp(x - y)" in
  let f = T.compile ~vars:[ "x"; "y" ] t in
  let x = 1.1 and y = 0.3 in
  Alcotest.(check (float 1e-12)) "compiled = interpreted"
    (T.eval_env (env2 x y) t)
    (f [| x; y |]);
  Alcotest.check_raises "unbound at compile time"
    (Invalid_argument "Term.compile: unbound variable \"z\"") (fun () ->
      ignore (T.compile ~vars:[ "x" ] (P.term "z") : float array -> float))

let test_pp_parse_roundtrip () =
  let cases =
    [ "x + y * z"; "(x + y) * z"; "x - (y - z)"; "x^2 - -y"; "exp(x * sin(y))";
      "min(x, max(y, z))"; "x / (y / z)"; "abs(x) + tanh(y)" ]
  in
  List.iter
    (fun s ->
      let t = P.term s in
      let t2 = P.term (T.to_string t) in
      let env = [ ("x", 1.7); ("y", -0.6); ("z", 2.9) ] in
      Alcotest.(check (float 1e-12))
        (Printf.sprintf "roundtrip %S" s)
        (T.eval_env env t) (T.eval_env env t2))
    cases

let test_parse_errors () =
  Alcotest.(check bool) "dangling op" true (P.term_opt "x +" = None);
  Alcotest.(check bool) "bad char" true (P.term_opt "x # y" = None);
  Alcotest.(check bool) "noninteger exponent" true (P.term_opt "x^2.5" = None);
  Alcotest.(check bool) "unknown function" true (P.term_opt "sinh(x)" = None);
  Alcotest.(check bool) "unclosed paren" true (P.term_opt "(x + y" = None)

(* ---- Formula unit tests ---- *)

let test_formula_holds () =
  let f = P.formula "x^2 + y^2 <= 1 and x > 0" in
  Alcotest.(check bool) "inside" true (F.holds_env (env2 0.5 0.5) f);
  Alcotest.(check bool) "outside circle" false (F.holds_env (env2 0.9 0.9) f);
  Alcotest.(check bool) "wrong sign" false (F.holds_env (env2 (-0.5) 0.0) f);
  let g = P.formula "x > 1 or y > 1" in
  Alcotest.(check bool) "or left" true (F.holds_env (env2 2.0 0.0) g);
  Alcotest.(check bool) "or right" true (F.holds_env (env2 0.0 2.0) g);
  Alcotest.(check bool) "or neither" false (F.holds_env (env2 0.0 0.0) g)

let test_formula_neg () =
  let f = P.formula "x > 0 and y >= 1" in
  let nf = F.neg f in
  let check env =
    Alcotest.(check bool)
      (Printf.sprintf "negation flips at %s"
         (String.concat "," (List.map (fun (_, v) -> string_of_float v) env)))
      (not (F.holds_env env f))
      (F.holds_env env nf)
  in
  (* Points off the boundary, where strictness does not matter. *)
  List.iter check [ env2 1.0 2.0; env2 (-1.0) 2.0; env2 1.0 0.5; env2 (-1.0) 0.5 ]

let test_delta_weaken () =
  let f = P.formula "x >= 1" in
  let fw = F.delta_weaken 0.5 f in
  Alcotest.(check bool) "0.6 satisfies weakened" true (F.holds_env [ ("x", 0.6) ] fw);
  Alcotest.(check bool) "0.6 violates original" false (F.holds_env [ ("x", 0.6) ] f);
  Alcotest.(check bool) "0.4 violates weakened" false (F.holds_env [ ("x", 0.4) ] fw)

let test_eval_cert () =
  let f = P.formula "x^2 + y^2 <= 1" in
  let box_in = Box.of_list [ ("x", I.make 0.0 0.1); ("y", I.make 0.0 0.1) ] in
  let box_out = Box.of_list [ ("x", I.make 2.0 3.0); ("y", I.make 0.0 1.0) ] in
  let box_cross = Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ] in
  Alcotest.(check bool) "certain" true (F.eval_cert box_in f = F.Certain);
  Alcotest.(check bool) "impossible" true (F.eval_cert box_out f = F.Impossible);
  Alcotest.(check bool) "unknown" true (F.eval_cert box_cross f = F.Unknown)

let test_sat_possible () =
  let f = P.formula "x >= 1" in
  let box = Box.of_list [ ("x", I.make 0.0 0.5) ] in
  Alcotest.(check bool) "refuted without delta" false (F.sat_possible ~delta:0.0 box f);
  Alcotest.(check bool) "possible with big delta" true (F.sat_possible ~delta:0.6 box f)

let test_robustness () =
  let f = P.formula "x >= 1 and x <= 3" in
  Alcotest.(check (float 1e-12)) "interior" 1.0
    (F.robustness (fun _ -> 2.0) f);
  Alcotest.(check bool) "violation negative" true (F.robustness (fun _ -> 0.0) f < 0.0)

let test_dnf () =
  let f = P.formula "(x > 0 or y > 0) and (x < 1 or y < 1)" in
  let branches = F.dnf f in
  Alcotest.(check int) "4 branches" 4 (List.length branches);
  (* DNF must be equivalent to the original at sample points. *)
  let as_formula =
    F.or_ (List.map (fun conj -> F.and_ (List.map (fun a -> F.Atom a) conj)) branches)
  in
  List.iter
    (fun (x, y) ->
      Alcotest.(check bool)
        (Printf.sprintf "dnf equiv at (%g, %g)" x y)
        (F.holds_env (env2 x y) f)
        (F.holds_env (env2 x y) as_formula))
    [ (0.5, 0.5); (-1.0, 2.0); (2.0, -1.0); (2.0, 2.0); (-1.0, -1.0) ]

let test_formula_parse () =
  let f = P.formula "not (x > 1 and y > 1)" in
  Alcotest.(check bool) "demorgan" true (F.holds_env (env2 0.0 5.0) f);
  let g = P.formula "x = 2" in
  Alcotest.(check bool) "eq holds" true (F.holds_env [ ("x", 2.0) ] g);
  Alcotest.(check bool) "eq fails" false (F.holds_env [ ("x", 2.1) ] g);
  let h = P.formula "true and x > 0" in
  Alcotest.(check bool) "true unit" true (F.holds_env [ ("x", 1.0) ] h)

(* ---- Property tests ---- *)

(* Random term generator over variables x, y. *)
let term_gen =
  let open QCheck.Gen in
  let leaf =
    oneof [ return (T.var "x"); return (T.var "y"); map T.const (float_range (-3.0) 3.0) ]
  in
  let rec go n =
    if n <= 0 then leaf
    else
      frequency
        [ (2, leaf);
          (3, map2 T.add (go (n - 1)) (go (n - 1)));
          (3, map2 T.sub (go (n - 1)) (go (n - 1)));
          (3, map2 T.mul (go (n - 1)) (go (n - 1)));
          (1, map T.sin (go (n - 1)));
          (1, map T.cos (go (n - 1)));
          (1, map (fun t -> T.pow t 2) (go (n - 1)));
          (1, map T.exp (map (fun t -> T.mul (T.const 0.1) t) (go (n - 1))));
        ]
  in
  go 4

let arb_term_point =
  let gen =
    QCheck.Gen.(
      term_gen >>= fun t ->
      float_range (-2.0) 2.0 >>= fun x ->
      float_range (-2.0) 2.0 >>= fun y -> return (t, x, y))
  in
  QCheck.make
    ~print:(fun (t, x, y) -> Printf.sprintf "%s at (%g, %g)" (T.to_string t) x y)
    gen

let prop_interval_containment =
  QCheck.Test.make ~count:400 ~name:"interval eval contains point eval" arb_term_point
    (fun (t, x, y) ->
      let box =
        Box.of_list
          [ ("x", I.make (x -. 0.5) (x +. 0.5)); ("y", I.make (y -. 0.5) (y +. 0.5)) ]
      in
      let v = T.eval_env (env2 x y) t in
      Float.is_nan v || I.mem v (T.eval_interval box t))

let prop_deriv_finite_difference =
  QCheck.Test.make ~count:300 ~name:"symbolic derivative matches finite difference"
    arb_term_point (fun (t, x, y) ->
      let d = T.deriv "x" t in
      let h = 1e-6 in
      let f z = T.eval_env (env2 z y) t in
      let fd = (f (x +. h) -. f (x -. h)) /. (2.0 *. h) in
      let sym = T.eval_env (env2 x y) d in
      (not (Float.is_finite fd)) || (not (Float.is_finite sym))
      || Float.abs (fd -. sym) <= 1e-3 *. (1.0 +. Float.abs sym +. Float.abs fd))

let prop_parse_print_roundtrip =
  QCheck.Test.make ~count:300 ~name:"print-parse roundtrip preserves value"
    arb_term_point (fun (t, x, y) ->
      match P.term_opt (T.to_string t) with
      | None -> false
      | Some t2 ->
          let v1 = T.eval_env (env2 x y) t and v2 = T.eval_env (env2 x y) t2 in
          (Float.is_nan v1 && Float.is_nan v2)
          || v1 = v2
          || Float.abs (v1 -. v2) <= 1e-12 *. (1.0 +. Float.abs v1))

let prop_simplify_preserves =
  QCheck.Test.make ~count:300 ~name:"simplify preserves value" arb_term_point
    (fun (t, x, y) ->
      let v1 = T.eval_env (env2 x y) t in
      let v2 = T.eval_env (env2 x y) (T.simplify t) in
      (Float.is_nan v1 && Float.is_nan v2)
      || v1 = v2
      || Float.abs (v1 -. v2) <= 1e-9 *. (1.0 +. Float.abs v1))

let prop_compile_matches_eval =
  QCheck.Test.make ~count:300 ~name:"compiled closure matches interpreter"
    arb_term_point (fun (t, x, y) ->
      let f = T.compile ~vars:[ "x"; "y" ] t in
      let v1 = T.eval_env (env2 x y) t and v2 = f [| x; y |] in
      (Float.is_nan v1 && Float.is_nan v2) || Float.abs (v1 -. v2) <= 1e-9 *. (1.0 +. Float.abs v1))

(* Random shallow formulas over x, y. *)
let formula_gen =
  let open QCheck.Gen in
  let atom =
    term_gen >>= fun t ->
    oneofl [ F.Gt; F.Ge ] >>= fun rel -> return (F.Atom { F.term = t; rel })
  in
  let rec go n =
    if n <= 0 then atom
    else
      frequency
        [ (3, atom);
          (2, map2 (fun a b -> F.and_ [ a; b ]) (go (n - 1)) (go (n - 1)));
          (2, map2 (fun a b -> F.or_ [ a; b ]) (go (n - 1)) (go (n - 1)));
          (1, map F.neg (go (n - 1)));
        ]
  in
  go 3

let arb_formula_point =
  let gen =
    QCheck.Gen.(
      formula_gen >>= fun f ->
      float_range (-2.0) 2.0 >>= fun x ->
      float_range (-2.0) 2.0 >>= fun y -> return (f, x, y))
  in
  QCheck.make
    ~print:(fun (f, x, y) -> Printf.sprintf "%s at (%g, %g)" (F.to_string f) x y)
    gen

let prop_neg_involution =
  QCheck.Test.make ~count:300 ~name:"double negation preserves truth off-boundary"
    arb_formula_point (fun (f, x, y) ->
      let env = env2 x y in
      (* the NNF negation swaps strict/non-strict, so only compare when no
         atom sits exactly on its boundary *)
      let on_boundary =
        List.exists (fun (a : F.atom) -> T.eval_env env a.F.term = 0.0) (F.atoms f)
      in
      on_boundary || F.holds_env env (F.neg (F.neg f)) = F.holds_env env f)

let prop_neg_flips =
  QCheck.Test.make ~count:300 ~name:"negation flips truth off-boundary"
    arb_formula_point (fun (f, x, y) ->
      let env = env2 x y in
      let on_boundary =
        List.exists (fun (a : F.atom) -> T.eval_env env a.F.term = 0.0) (F.atoms f)
      in
      on_boundary || F.holds_env env (F.neg f) = not (F.holds_env env f))

let prop_delta_monotone =
  QCheck.Test.make ~count:300 ~name:"delta-weakening is monotone" arb_formula_point
    (fun (f, x, y) ->
      let env = env2 x y in
      let lookup v = List.assoc v env in
      (* satisfaction at delta 0.01 implies satisfaction at delta 0.1 *)
      (not (F.holds_delta ~delta:0.01 lookup f)) || F.holds_delta ~delta:0.1 lookup f)

let prop_robustness_sign =
  QCheck.Test.make ~count:300 ~name:"robustness sign agrees with satisfaction"
    arb_formula_point (fun (f, x, y) ->
      let env = env2 x y in
      let r = F.robustness (fun v -> List.assoc v env) f in
      if Float.is_nan r then true
      else if r > 1e-9 then F.holds_env env f
      else if r < -1e-9 then not (F.holds_env env f)
      else true)

let prop_cert_sound =
  QCheck.Test.make ~count:200 ~name:"interval certainty verdicts are pointwise sound"
    arb_formula_point (fun (f, x, y) ->
      let box =
        Box.of_list
          [ ("x", I.make (x -. 0.3) (x +. 0.3)); ("y", I.make (y -. 0.3) (y +. 0.3)) ]
      in
      match F.eval_cert box f with
      | F.Certain -> F.holds_env (env2 x y) f
      | F.Impossible -> not (F.holds_env (env2 x y) f)
      | F.Unknown -> true)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_interval_containment;
      prop_deriv_finite_difference;
      prop_parse_print_roundtrip;
      prop_simplify_preserves;
      prop_compile_matches_eval;
      prop_neg_involution;
      prop_neg_flips;
      prop_delta_monotone;
      prop_robustness_sign;
      prop_cert_sound;
    ]

let () =
  Alcotest.run "expr"
    [
      ( "term",
        [
          Alcotest.test_case "eval basic" `Quick test_eval_basic;
          Alcotest.test_case "eval functions" `Quick test_eval_functions;
          Alcotest.test_case "smart constructors" `Quick test_smart_constructors;
          Alcotest.test_case "free vars" `Quick test_free_vars;
          Alcotest.test_case "subst and rename" `Quick test_subst_rename;
          Alcotest.test_case "derivatives" `Quick test_deriv;
          Alcotest.test_case "lie derivative" `Quick test_lie_derivative;
          Alcotest.test_case "compile" `Quick test_compile;
          Alcotest.test_case "pp/parse roundtrip" `Quick test_pp_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
        ] );
      ( "formula",
        [
          Alcotest.test_case "holds" `Quick test_formula_holds;
          Alcotest.test_case "negation" `Quick test_formula_neg;
          Alcotest.test_case "delta weakening" `Quick test_delta_weaken;
          Alcotest.test_case "interval certainty" `Quick test_eval_cert;
          Alcotest.test_case "sat possible" `Quick test_sat_possible;
          Alcotest.test_case "robustness" `Quick test_robustness;
          Alcotest.test_case "dnf" `Quick test_dnf;
          Alcotest.test_case "formula parsing" `Quick test_formula_parse;
        ] );
      ("properties", qcheck_tests);
    ]
