(* Tests for the Fig.-2 workflow layer: calibration, therapy
   optimization, robustness, and reporting.  These are integration tests
   over all the substrates at once. *)

module I = Interval.Ia
module Box = Interval.Box
module W = Core.Workflow
module Th = Core.Therapy
module Ro = Core.Robustness
module Rep = Core.Report

let decay_k =
  Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]

let decay_problem ?(tol = 0.08) () =
  let data =
    List.map
      (fun t ->
        Synth.Data.point ~time:t ~var:"x" ~value:(Float.exp (-.t)) ~tolerance:tol)
      [ 0.25; 0.5; 1.0 ]
  in
  Synth.Biopsy.problem ~sys:decay_k
    ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
    ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
    ~data

(* ---- Workflow ---- *)

let test_calibrate_success () =
  match W.calibrate (decay_problem ()) with
  | W.Calibrated { witness; sse; _ } ->
      Alcotest.(check bool) "k recovered" true
        (Float.abs (List.assoc "k" witness -. 1.0) < 0.1);
      Alcotest.(check bool) "good fit" true (sse < 1e-2)
  | W.Falsified _ -> Alcotest.fail "should calibrate"
  | W.Inconclusive _ -> Alcotest.fail "should not be inconclusive"

let test_calibrate_falsified () =
  let data =
    [ Synth.Data.point ~time:0.5 ~var:"x" ~value:3.0 ~tolerance:0.2;
      Synth.Data.point ~time:1.0 ~var:"x" ~value:9.0 ~tolerance:0.2 ]
  in
  let prob =
    Synth.Biopsy.problem ~sys:decay_k
      ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      ~data
  in
  match W.calibrate prob with
  | W.Falsified _ -> ()
  | W.Calibrated _ | W.Inconclusive _ -> Alcotest.fail "exponential growth must falsify decay"

let test_workflow_check_and_refute () =
  let automaton =
    Hybrid.Automaton.of_system ~init:(Box.of_list [ ("x", I.of_float 1.0) ]) decay_k
  in
  let param_box = Box.of_list [ ("k", I.make 0.5 2.0) ] in
  let reach_goal =
    { Reach.Encoding.goal_modes = []; predicate = Expr.Parse.formula "x <= 0.4" }
  in
  (match W.check ~param_box ~goal:reach_goal ~k:0 ~time_bound:2.0 automaton with
  | Reach.Checker.Delta_sat w -> Alcotest.(check bool) "certified" true w.Reach.Checker.certified
  | r -> Alcotest.failf "expected delta-sat, got %s" (Fmt.str "%a" Reach.Checker.pp_result r));
  let impossible =
    { Reach.Encoding.goal_modes = []; predicate = Expr.Parse.formula "x >= 2" }
  in
  Alcotest.(check bool) "growth refuted" true
    (W.refutes ~param_box ~goal:impossible ~k:0 ~time_bound:2.0 automaton)

let test_smc_screen () =
  let prob =
    Smc.Runner.problem
      ~model:(Smc.Runner.Ode_model decay_k)
      ~init_dist:[ ("x", Smc.Sampler.Uniform (0.9, 1.1)) ]
      ~param_dist:[ ("k", Smc.Sampler.Uniform (0.8, 1.2)) ]
      ~property:(Smc.Bltl.Finally (2.0, Smc.Bltl.prop "x <= 0.5"))
      ~t_end:2.0 ()
  in
  let e = W.smc_screen ~eps:0.1 ~alpha:0.1 prob in
  Alcotest.(check (float 1e-9)) "always satisfied" 1.0 e.Smc.Estimate.p_hat

(* ---- The full Fig.-2 loop as one story ----

   Data come from exponential decay.  Hypothesis 1 (zero-order
   degradation, x' = -k) is falsified by calibration; the SMC branch
   screens it and reports the behaviour is improbable, prompting
   refinement.  Hypothesis 2 (first-order degradation, x' = -k·x)
   calibrates; the validated model then supports a reachability analysis
   and a Lyapunov stability proof. *)

let test_fig2_story () =
  let data =
    List.map
      (fun t ->
        Synth.Data.point ~time:t ~var:"x" ~value:(Float.exp (-.t)) ~tolerance:0.05)
      [ 0.25; 1.0; 2.0 ]
  in
  let param_box = Box.of_list [ ("k", I.make 0.1 3.0) ] in
  let init = Box.of_list [ ("x", I.of_float 1.0) ] in
  (* Hypothesis 1: zero-order degradation. *)
  let zero_order =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k") ]
  in
  (match W.calibrate (Synth.Biopsy.problem ~sys:zero_order ~param_box ~init ~data) with
  | W.Falsified _ -> ()
  | _ -> Alcotest.fail "zero-order degradation must be falsified");
  (* SMC screening of the falsified hypothesis: under parameter
     uncertainty it essentially never matches the late data band. *)
  let screen =
    W.smc_screen ~eps:0.1 ~alpha:0.1
      (Smc.Runner.problem
         ~model:(Smc.Runner.Ode_model zero_order)
         ~init_dist:[ ("x", Smc.Sampler.Constant 1.0) ]
         ~param_dist:[ ("k", Smc.Sampler.Uniform (0.1, 3.0)) ]
         ~property:
           (Smc.Bltl.Finally
              (2.05, Smc.Bltl.prop "t >= 1.99 and x >= 0.085 and x <= 0.185"))
         ~t_end:2.1 ())
  in
  Alcotest.(check bool) "screening finds the behaviour improbable" true
    (screen.Smc.Estimate.p_hat < 0.2);
  (* Hypothesis 2: first-order degradation — calibrates. *)
  let first_order =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]
  in
  let fitted =
    match W.calibrate (Synth.Biopsy.problem ~sys:first_order ~param_box ~init ~data) with
    | W.Calibrated { witness; _ } -> witness
    | _ -> Alcotest.fail "first-order degradation must calibrate"
  in
  Alcotest.(check bool) "recovered k" true
    (Float.abs (List.assoc "k" fitted -. 1.0) < 0.1);
  (* Validated model: analysis tasks. *)
  let bound = Ode.System.bind_params fitted first_order in
  let automaton = Hybrid.Automaton.of_system ~init bound in
  (match
     W.check
       ~goal:{ Reach.Encoding.goal_modes = []; predicate = Expr.Parse.formula "x <= 0.2" }
       ~k:0 ~time_bound:3.0 automaton
   with
  | Reach.Checker.Delta_sat w ->
      Alcotest.(check bool) "analysis witness certified" true w.Reach.Checker.certified
  | r -> Alcotest.failf "expected delta-sat: %s" (Fmt.str "%a" Reach.Checker.pp_result r));
  let stability =
    Core.Stability.prove
      ~region:(Box.of_list [ ("x", I.make (-1.0) 1.0) ])
      bound
  in
  Alcotest.(check bool) "calibrated model proved stable" true
    (stability.Core.Stability.certificate <> None)

let test_paving_csv () =
  let prob = decay_problem () in
  let r = Synth.Biopsy.synthesize prob in
  let csv = Synth.Biopsy.to_csv prob r in
  let contains sub =
    let n = String.length csv and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub csv i m) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "header" true (contains "class,k_lo,k_hi");
  Alcotest.(check bool) "has inconsistent rows" true (contains "inconsistent,");
  Alcotest.(check int) "one row per box plus header"
    (1
    + List.length r.Synth.Biopsy.consistent
    + List.length r.Synth.Biopsy.inconsistent
    + List.length r.Synth.Biopsy.undecided)
    (List.length (String.split_on_char '\n' (String.trim csv)))

(* ---- Therapy (on the TBI case study) ---- *)

let test_therapy_tbi () =
  let tbi = Biomodels.Tbi.automaton () in
  let param_box =
    Box.of_list [ ("theta1", I.make 0.6 2.0); ("theta2", I.make 0.4 2.0) ]
  in
  match
    Th.optimize ~param_box
      ~recovery:(Biomodels.Tbi.recovery_goal ())
      ~harm:(Biomodels.Tbi.death_goal ())
      ~max_jumps:4 ~time_bound:40.0 tbi
  with
  | Th.Plan p ->
      Alcotest.(check (list string)) "paper's scheme" [ "m0"; "mA"; "mB"; "m0" ] p.Th.path;
      Alcotest.(check int) "3 drug decisions" 3 p.Th.jumps;
      Alcotest.(check bool) "safety verified" true p.Th.safety_checked;
      (* replay the plan: the simulated policy must avoid death *)
      let traj =
        Biomodels.Tbi.simulate_policy
          ~theta1:(List.assoc "theta1" p.Th.thresholds)
          ~theta2:(List.assoc "theta2" p.Th.thresholds)
          ~t_end:40.0 ()
      in
      Alcotest.(check bool) "replay avoids death" true
        (not (List.mem Biomodels.Tbi.mode_death traj.Hybrid.Simulate.path))
  | Th.No_plan why -> Alcotest.failf "expected a plan, got: %s" why

let test_therapy_impossible () =
  (* with lethal thresholds out of reach of any parameter value, no safe
     scheme exists: make the harm goal trivially reachable by asking to
     avoid reaching mode 0 itself *)
  let tbi = Biomodels.Tbi.automaton () in
  let param_box =
    Box.of_list [ ("theta1", I.make 0.6 2.0); ("theta2", I.make 0.4 2.0) ]
  in
  match
    Th.optimize ~param_box
      ~recovery:(Biomodels.Tbi.recovery_goal ())
      ~harm:{ Reach.Encoding.goal_modes = [ "m0" ]; predicate = Expr.Formula.tt }
      ~max_jumps:3 ~time_bound:40.0 tbi
  with
  | Th.Plan _ -> Alcotest.fail "no plan can avoid its own recovery mode"
  | Th.No_plan _ -> ()

(* ---- Robustness (cardiac stimulation, Sec. IV-C) ---- *)

let bcf_make (lo, hi) =
  Biomodels.Bueno_cherry_fenton.automaton ~stimulus:lo ~stimulus_width:(hi -. lo) ()

let bcf_goal = Biomodels.Bueno_cherry_fenton.excitation_goal ()

let test_robustness_classify () =
  (match Ro.classify ~goal:bcf_goal ~k:3 ~time_bound:100.0 bcf_make (0.0, 0.05) with
  | Ro.Robust -> ()
  | v -> Alcotest.failf "low range should be robust, got %s" (Fmt.str "%a" Ro.pp_verdict v));
  match Ro.classify ~goal:bcf_goal ~k:3 ~time_bound:100.0 bcf_make (0.35, 0.4) with
  | Ro.Excitable _ -> ()
  | v -> Alcotest.failf "high range should excite, got %s" (Fmt.str "%a" Ro.pp_verdict v)

let test_robustness_sweep_crossover () =
  let ranges = [ (0.0, 0.1); (0.1, 0.2); (0.32, 0.42) ] in
  let results = Ro.sweep ~goal:bcf_goal ~k:3 ~time_bound:100.0 bcf_make ranges in
  (match results with
  | [ (_, Ro.Robust); (_, Ro.Robust); (_, Ro.Excitable _) ] -> ()
  | _ ->
      Alcotest.failf "unexpected sweep: %s"
        (String.concat "; "
           (List.map (fun (_, v) -> Fmt.str "%a" Ro.pp_verdict v) results)))

let test_robustness_threshold_bisection () =
  (* scalar amplitude: stimulate with the exact value *)
  let make a = bcf_make (a, a +. 0.001) in
  match
    Ro.threshold ~goal:bcf_goal ~k:3 ~time_bound:100.0 ~lo:0.05 ~hi:0.5 ~tol:0.05 make
  with
  | Some th ->
      (* the true excitation threshold is θ_v = 0.3 *)
      Alcotest.(check bool) (Printf.sprintf "threshold %.3f near 0.3" th) true
        (Float.abs (th -. 0.3) < 0.08)
  | None -> Alcotest.fail "threshold exists in [0.05, 0.5]"

(* ---- Report ---- *)

let test_report_rendering () =
  let r =
    [ Rep.heading "Results";
      Rep.text "k = %.2f" 1.0;
      Rep.kv [ ("alpha", "1"); ("beta-long-key", "2") ];
      Rep.table ~header:[ "col"; "value" ] [ [ "a"; "1" ]; [ "bb"; "22" ] ];
      Rep.rule ]
  in
  let s = Rep.to_string r in
  let contains sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "heading" true (contains "== Results ==");
  Alcotest.(check bool) "text" true (contains "k = 1.00");
  Alcotest.(check bool) "kv" true (contains "beta-long-key : 2");
  Alcotest.(check bool) "table header" true (contains "col  value");
  Alcotest.(check bool) "table row" true (contains "bb   22")

let () =
  Alcotest.run "core"
    [
      ( "workflow",
        [
          Alcotest.test_case "calibrate success" `Quick test_calibrate_success;
          Alcotest.test_case "calibrate falsified" `Quick test_calibrate_falsified;
          Alcotest.test_case "check and refute" `Quick test_workflow_check_and_refute;
          Alcotest.test_case "smc screen" `Quick test_smc_screen;
          Alcotest.test_case "Fig. 2 story" `Quick test_fig2_story;
          Alcotest.test_case "paving csv" `Quick test_paving_csv;
        ] );
      ( "therapy",
        [
          Alcotest.test_case "TBI plan" `Slow test_therapy_tbi;
          Alcotest.test_case "impossible plan" `Slow test_therapy_impossible;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "classify" `Quick test_robustness_classify;
          Alcotest.test_case "sweep crossover" `Slow test_robustness_sweep_crossover;
          Alcotest.test_case "threshold bisection" `Slow test_robustness_threshold_bisection;
        ] );
      ("report", [ Alcotest.test_case "rendering" `Quick test_report_rendering ]);
    ]
