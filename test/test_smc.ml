(* Tests for the statistical model checking branch: BLTL monitoring,
   sampling, SPRT, estimation, and the end-to-end runner. *)

module L = Smc.Bltl
module Sa = Smc.Sampler
module Sp = Smc.Sprt
module Es = Smc.Estimate
module R = Smc.Runner

let decay = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ]

let decay_trace ?(x0 = 1.0) ?(t_end = 2.0) () =
  Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.01) ~params:[]
    ~init:[ ("x", x0) ] ~t_end decay

(* ---- BLTL semantics ---- *)

let test_bltl_prop () =
  let view = L.of_trace (decay_trace ()) in
  Alcotest.(check bool) "x>0.9 initially" true (L.holds view (L.prop "x > 0.9"));
  Alcotest.(check bool) "x<0.9 fails initially" false (L.holds view (L.prop "x < 0.9"))

let test_bltl_finally () =
  let view = L.of_trace (decay_trace ()) in
  Alcotest.(check bool) "F[1] x <= 0.5" true
    (L.holds view (L.Finally (1.0, L.prop "x <= 0.5")));
  Alcotest.(check bool) "F[0.5] x <= 0.5 fails (ln 2 > 0.5)" false
    (L.holds view (L.Finally (0.5, L.prop "x <= 0.5")));
  Alcotest.(check bool) "F[2] x <= 0.2" true
    (L.holds view (L.Finally (2.0, L.prop "x <= 0.2")))

let test_bltl_globally () =
  let view = L.of_trace (decay_trace ()) in
  Alcotest.(check bool) "G[2] x > 0" true (L.holds view (L.Globally (2.0, L.prop "x > 0")));
  Alcotest.(check bool) "G[1] x >= 0.5 fails" false
    (L.holds view (L.Globally (1.0, L.prop "x >= 0.5")));
  Alcotest.(check bool) "G[0.5] x >= 0.5" true
    (L.holds view (L.Globally (0.5, L.prop "x >= 0.5")))

let test_bltl_until () =
  let view = L.of_trace (decay_trace ()) in
  (* x stays above 0.4 until it dips below 0.5 (which happens at ln 2) *)
  Alcotest.(check bool) "until holds" true
    (L.holds view (L.Until (1.0, L.prop "x >= 0.4", L.prop "x <= 0.5")));
  (* bound too small: the release event is not reached *)
  Alcotest.(check bool) "until bound too small" false
    (L.holds view (L.Until (0.3, L.prop "x >= 0.4", L.prop "x <= 0.5")))

let test_bltl_boolean () =
  let view = L.of_trace (decay_trace ()) in
  let f = L.And (L.prop "x > 0.9", L.Not (L.prop "x > 2")) in
  Alcotest.(check bool) "and/not" true (L.holds view f);
  Alcotest.(check bool) "implies" true
    (L.holds view (L.Implies (L.prop "x > 2", L.prop "x < 0")));
  Alcotest.(check bool) "or" true
    (L.holds view (L.Or (L.prop "x > 2", L.prop "x > 0.5")))

let test_bltl_next () =
  let view = L.of_trace (decay_trace ()) in
  (* one RK4 step of 0.01: x decreases *)
  Alcotest.(check bool) "next sees a smaller x" true
    (L.holds view (L.Next (L.prop "x < 1")))

let test_bltl_horizon () =
  Alcotest.(check (float 1e-12)) "nested horizon" 3.0
    (L.horizon (L.Finally (1.0, L.Globally (2.0, L.prop "x > 0"))));
  Alcotest.(check (float 1e-12)) "until horizon" 2.5
    (L.horizon (L.Until (0.5, L.prop "x > 0", L.Globally (2.0, L.prop "x > 0"))))

let test_bltl_robustness () =
  let view = L.of_trace (decay_trace ()) in
  let r = L.robustness view (L.Globally (1.0, L.prop "x > 0.1")) in
  (* min over [0,1] of x - 0.1 = e^-1 - 0.1 ≈ 0.268 *)
  Alcotest.(check bool) "robustness value" true (Float.abs (r -. (Float.exp (-1.0) -. 0.1)) < 0.01);
  let neg = L.robustness view (L.Globally (1.0, L.prop "x > 0.5")) in
  Alcotest.(check bool) "violated has negative robustness" true (neg < 0.0);
  (* Not flips the sign *)
  Alcotest.(check (float 1e-9)) "negation flips" (-.r)
    (L.robustness view (L.Not (L.Globally (1.0, L.prop "x > 0.1"))))

let test_bltl_trajectory_view () =
  (* two-mode trajectory: the view must stitch global time correctly *)
  let h =
    Hybrid.Automaton.create ~vars:[ "x" ] ~params:[]
      ~modes:
        [ Hybrid.Automaton.mode ~name:"up" ~flow:[ ("x", Expr.Parse.term "1") ] ();
          Hybrid.Automaton.mode ~name:"down" ~flow:[ ("x", Expr.Parse.term "-1") ] () ]
      ~jumps:
        [ Hybrid.Automaton.jump ~source:"up" ~target:"down"
            ~guard:(Expr.Parse.formula "x >= 1") () ]
      ~init_mode:"up"
      ~init:(Interval.Box.of_list [ ("x", Interval.Ia.of_float 0.0) ])
  in
  let traj = Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end:2.0 h in
  let view = L.of_trajectory traj in
  Alcotest.(check bool) "peak reached" true
    (L.holds view (L.Finally (1.5, L.prop "x >= 0.99")));
  Alcotest.(check bool) "eventually back down" true
    (L.holds view (L.Finally (2.0, L.prop "x <= 0.2")));
  Alcotest.(check bool) "never above 1.1" false
    (L.holds view (L.Finally (2.0, L.prop "x >= 1.1")))

(* ---- Sampler ---- *)

let test_sampler_deterministic () =
  let spec = [ ("a", Sa.Uniform (0.0, 1.0)); ("b", Sa.Normal (0.0, 1.0)) ] in
  let s1 = Sa.sample (Random.State.make [| 3 |]) spec in
  let s2 = Sa.sample (Random.State.make [| 3 |]) spec in
  Alcotest.(check (float 0.0)) "same a" (List.assoc "a" s1) (List.assoc "a" s2);
  Alcotest.(check (float 0.0)) "same b" (List.assoc "b" s1) (List.assoc "b" s2)

let test_sampler_bounds () =
  let rng = Random.State.make [| 5 |] in
  for _ = 1 to 200 do
    let u = Sa.draw rng (Sa.Uniform (2.0, 3.0)) in
    Alcotest.(check bool) "uniform in range" true (2.0 <= u && u <= 3.0);
    let t = Sa.draw rng (Sa.Truncated (Sa.Normal (0.0, 5.0), -1.0, 1.0)) in
    Alcotest.(check bool) "truncated in range" true (-1.0 <= t && t <= 1.0);
    let l = Sa.draw rng (Sa.Lognormal (0.0, 0.5)) in
    Alcotest.(check bool) "lognormal positive" true (l > 0.0)
  done;
  Alcotest.(check (float 0.0)) "constant" 7.5 (Sa.draw rng (Sa.Constant 7.5))

let test_sampler_moments () =
  let rng = Random.State.make [| 9 |] in
  let n = 20_000 in
  let mean d =
    let s = ref 0.0 in
    for _ = 1 to n do
      s := !s +. Sa.draw rng d
    done;
    !s /. float_of_int n
  in
  Alcotest.(check (float 0.05)) "normal mean" 2.0 (mean (Sa.Normal (2.0, 1.0)));
  Alcotest.(check (float 0.05)) "uniform mean" 0.5 (mean (Sa.Uniform (0.0, 1.0)))

(* ---- SPRT ---- *)

let bernoulli_stream p seed =
  let rng = Random.State.make [| seed |] in
  fun _ -> Random.State.float rng 1.0 < p

let test_sprt_accepts_high_p () =
  let r = Sp.run ~config:{ Sp.default_config with theta = 0.8 } (bernoulli_stream 0.95 1) in
  Alcotest.(check bool) "accept" true (r.Sp.verdict = Sp.Accept);
  Alcotest.(check bool) "used few samples" true (r.Sp.samples_used < 1000)

let test_sprt_rejects_low_p () =
  let r = Sp.run ~config:{ Sp.default_config with theta = 0.8 } (bernoulli_stream 0.4 2) in
  Alcotest.(check bool) "reject" true (r.Sp.verdict = Sp.Reject)

let test_sprt_inconclusive_budget () =
  let config = { Sp.default_config with theta = 0.5; delta_ind = 0.01; max_samples = 5 } in
  let r = Sp.run ~config (bernoulli_stream 0.5 3) in
  Alcotest.(check bool) "inconclusive" true (r.Sp.verdict = Sp.Inconclusive)

let test_sprt_validation () =
  Alcotest.check_raises "bad indifference"
    (Invalid_argument "Sprt: indifference region leaves (0,1)") (fun () ->
      ignore
        (Sp.run
           ~config:{ Sp.default_config with theta = 0.99; delta_ind = 0.05 }
           (bernoulli_stream 0.5 4)))

(* ---- Estimation ---- *)

let test_chernoff_bound () =
  let n = Es.chernoff_sample_size ~eps:0.05 ~alpha:0.05 in
  (* ln(40)/(2*0.0025) ≈ 737.8 *)
  Alcotest.(check int) "chernoff size" 738 n;
  Alcotest.check_raises "bad eps" (Invalid_argument "Estimate: eps outside (0,1)")
    (fun () -> ignore (Es.chernoff_sample_size ~eps:0.0 ~alpha:0.05))

let test_monte_carlo_estimate () =
  let e = Es.monte_carlo ~eps:0.05 ~alpha:0.01 (bernoulli_stream 0.7 5) in
  Alcotest.(check bool) "estimate near 0.7" true (Float.abs (e.Es.p_hat -. 0.7) < 0.05);
  Alcotest.(check bool) "interval brackets" true (e.Es.ci_low <= 0.7 && 0.7 <= e.Es.ci_high)

let test_betai_uniform () =
  (* Beta(1,1) is uniform: I_x(1,1) = x *)
  List.iter
    (fun x -> Alcotest.(check (float 1e-9)) "uniform cdf" x (Es.betai 1.0 1.0 x))
    [ 0.0; 0.25; 0.5; 0.9; 1.0 ];
  (* Beta(2,2) median is 0.5 *)
  Alcotest.(check (float 1e-9)) "beta(2,2) cdf at median" 0.5 (Es.betai 2.0 2.0 0.5);
  (* symmetry: I_x(a,b) = 1 - I_{1-x}(b,a) *)
  Alcotest.(check (float 1e-9)) "symmetry" (1.0 -. Es.betai 5.0 3.0 0.7)
    (Es.betai 3.0 5.0 0.3)

let test_beta_quantile () =
  Alcotest.(check (float 1e-6)) "median of beta(2,2)" 0.5
    (Es.beta_quantile ~a:2.0 ~b:2.0 0.5);
  Alcotest.(check (float 1e-6)) "median of uniform" 0.5
    (Es.beta_quantile ~a:1.0 ~b:1.0 0.5);
  let q1 = Es.beta_quantile ~a:10.0 ~b:2.0 0.05 in
  Alcotest.(check bool) "skewed quantile high" true (q1 > 0.5)

let test_bayesian_estimate () =
  let e = Es.bayesian ~confidence:0.95 ~n:2000 (bernoulli_stream 0.3 6) in
  Alcotest.(check bool) "posterior mean near 0.3" true (Float.abs (e.Es.p_hat -. 0.3) < 0.05);
  Alcotest.(check bool) "credible interval brackets" true
    (e.Es.ci_low <= 0.3 && 0.3 <= e.Es.ci_high);
  Alcotest.(check bool) "interval narrow" true (e.Es.ci_high -. e.Es.ci_low < 0.1)

(* ---- Runner ---- *)

let decay_problem property =
  R.problem ~model:(R.Ode_model decay)
    ~init_dist:[ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ]
    ~param_dist:[] ~property ~t_end:2.0 ()

let test_runner_sure_property () =
  (* From any x0 in [0.8, 1.2], x reaches 0.5 within 2 time units. *)
  let prob = decay_problem (L.Finally (2.0, L.prop "x <= 0.5")) in
  let e = R.estimate ~eps:0.1 ~alpha:0.05 prob in
  Alcotest.(check (float 1e-9)) "probability 1" 1.0 e.Es.p_hat;
  let t = R.test ~config:{ Sp.default_config with theta = 0.9 } prob in
  Alcotest.(check bool) "sprt accepts" true (t.Sp.verdict = Sp.Accept)

let test_runner_impossible_property () =
  let prob = decay_problem (L.Finally (2.0, L.prop "x >= 2")) in
  let e = R.estimate ~eps:0.1 ~alpha:0.05 prob in
  Alcotest.(check (float 1e-9)) "probability 0" 0.0 e.Es.p_hat

let test_runner_threshold_property () =
  (* x(1) = x0 e^-1: x0 > 0.5 e ≈ 1.359 never happens; x(0.5) <= 0.65
     happens iff x0 <= 0.65 e^0.5 ≈ 1.0716, i.e. for ~68% of U(0.8,1.2). *)
  let prob = decay_problem (L.Finally (0.5, L.prop "x <= 0.65")) in
  let e = R.estimate ~seed:17 ~eps:0.05 ~alpha:0.05 prob in
  Alcotest.(check bool)
    (Printf.sprintf "p_hat = %.3f near 0.68" e.Es.p_hat)
    true
    (Float.abs (e.Es.p_hat -. 0.679) < 0.08)

let test_runner_reproducible () =
  let prob = decay_problem (L.Finally (0.5, L.prop "x <= 0.65")) in
  let a = R.estimate ~seed:23 ~eps:0.1 ~alpha:0.1 prob in
  let b = R.estimate ~seed:23 ~eps:0.1 ~alpha:0.1 prob in
  Alcotest.(check (float 0.0)) "same estimate" a.Es.p_hat b.Es.p_hat

let test_runner_robustness () =
  let prob = decay_problem (L.Globally (1.0, L.prop "x > 0.1")) in
  let r = R.mean_robustness ~n:50 prob in
  Alcotest.(check bool) "positive robustness" true (r > 0.0);
  let prob2 = decay_problem (L.Globally (1.0, L.prop "x > 0.9")) in
  let r2 = R.mean_robustness ~n:50 prob2 in
  Alcotest.(check bool) "negative robustness" true (r2 < 0.0)

let test_runner_hybrid_model () =
  let h =
    Hybrid.Automaton.of_system
      ~init:(Interval.Box.of_list [ ("x", Interval.Ia.of_float 1.0) ])
      decay
  in
  let prob =
    R.problem ~model:(R.Hybrid_model h)
      ~init_dist:[ ("x", Smc.Sampler.Uniform (0.8, 1.2)) ]
      ~param_dist:[]
      ~property:(L.Finally (2.0, L.prop "x <= 0.5"))
      ~t_end:2.0 ()
  in
  let e = R.estimate ~eps:0.1 ~alpha:0.1 prob in
  Alcotest.(check (float 1e-9)) "hybrid probability 1" 1.0 e.Es.p_hat

let () =
  Alcotest.run "smc"
    [
      ( "bltl",
        [
          Alcotest.test_case "prop" `Quick test_bltl_prop;
          Alcotest.test_case "finally" `Quick test_bltl_finally;
          Alcotest.test_case "globally" `Quick test_bltl_globally;
          Alcotest.test_case "until" `Quick test_bltl_until;
          Alcotest.test_case "boolean" `Quick test_bltl_boolean;
          Alcotest.test_case "next" `Quick test_bltl_next;
          Alcotest.test_case "horizon" `Quick test_bltl_horizon;
          Alcotest.test_case "robustness" `Quick test_bltl_robustness;
          Alcotest.test_case "trajectory view" `Quick test_bltl_trajectory_view;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "deterministic" `Quick test_sampler_deterministic;
          Alcotest.test_case "bounds" `Quick test_sampler_bounds;
          Alcotest.test_case "moments" `Quick test_sampler_moments;
        ] );
      ( "sprt",
        [
          Alcotest.test_case "accepts high p" `Quick test_sprt_accepts_high_p;
          Alcotest.test_case "rejects low p" `Quick test_sprt_rejects_low_p;
          Alcotest.test_case "inconclusive on budget" `Quick test_sprt_inconclusive_budget;
          Alcotest.test_case "validation" `Quick test_sprt_validation;
        ] );
      ( "estimate",
        [
          Alcotest.test_case "chernoff bound" `Quick test_chernoff_bound;
          Alcotest.test_case "monte carlo" `Quick test_monte_carlo_estimate;
          Alcotest.test_case "incomplete beta" `Quick test_betai_uniform;
          Alcotest.test_case "beta quantile" `Quick test_beta_quantile;
          Alcotest.test_case "bayesian" `Quick test_bayesian_estimate;
        ] );
      ( "runner",
        [
          Alcotest.test_case "sure property" `Quick test_runner_sure_property;
          Alcotest.test_case "impossible property" `Quick test_runner_impossible_property;
          Alcotest.test_case "threshold property" `Quick test_runner_threshold_property;
          Alcotest.test_case "reproducible" `Quick test_runner_reproducible;
          Alcotest.test_case "mean robustness" `Quick test_runner_robustness;
          Alcotest.test_case "hybrid model" `Quick test_runner_hybrid_model;
        ] );
    ]
