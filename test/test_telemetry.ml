(* Telemetry subsystem tests: switch semantics, counter/histogram merge
   across domains, span balance in the Chrome trace, trace-JSON
   round-trips, and — the load-bearing property — that disabled
   telemetry is a no-op: no events recorded and verdicts bit-identical
   to untraced runs (instrumentation observes, never steers). *)

module I = Interval.Ia
module Box = Interval.Box
module S = Icp.Solver
module T = Telemetry
module H = Telemetry.Histogram

(* Telemetry state is process-global; every test starts and ends from a
   clean, disabled slate so ordering cannot leak between tests. *)
let clean f () =
  T.disable ();
  T.reset ();
  T.Trace.set_capacity 4096;
  Fun.protect
    ~finally:(fun () ->
      T.disable ();
      T.reset ())
    f

let formula s =
  match Expr.Parse.formula_opt s with
  | Some f -> f
  | None -> Alcotest.failf "cannot parse %S" s

(* ---- switches ---- *)

let test_switches () =
  Alcotest.(check bool) "trace off" false (T.trace_on ());
  T.set_metrics true;
  Alcotest.(check bool) "metrics on" true (T.metrics_on ());
  Alcotest.(check bool) "enabled" true (T.enabled ());
  T.set_trace true;
  Alcotest.(check bool) "trace on" true (T.trace_on ());
  T.disable ();
  Alcotest.(check bool) "all off" false (T.enabled ());
  Alcotest.(check bool) "metrics off" false (T.metrics_on ())

let test_always_vs_gated () =
  let a = T.Counter.make ~always:true "test.always" in
  let g = T.Counter.make "test.gated" in
  T.Counter.incr a;
  T.Counter.incr g;
  Alcotest.(check int) "always counts when disabled" 1 (T.Counter.value a);
  Alcotest.(check int) "gated is a no-op when disabled" 0 (T.Counter.value g);
  T.set_metrics true;
  T.Counter.incr a;
  T.Counter.incr g;
  Alcotest.(check int) "always still counts" 2 (T.Counter.value a);
  Alcotest.(check int) "gated counts when enabled" 1 (T.Counter.value g)

(* ---- counters across domains ---- *)

(* Atomic adds commute: the total must equal the arithmetic sum no
   matter how the four workers' increments interleave. *)
let test_counter_merge () =
  T.set_metrics true;
  let c = T.Counter.make "test.merge" in
  ignore
    (Parallel.Pool.run ~jobs:4 (fun w ->
         for _ = 1 to 1000 do
           T.Counter.add c (w + 1)
         done;
         w));
  Alcotest.(check int) "sum over domains" (1000 * 10) (T.Counter.value c);
  let listed = List.assoc_opt "test.merge" (T.Metrics.counters ()) in
  Alcotest.(check (option int)) "registry agrees" (Some 10_000) listed

(* ---- histograms ---- *)

let test_bucket_edges () =
  Alcotest.(check int) "zero" 0 (H.bucket_index 0);
  Alcotest.(check int) "negative" 0 (H.bucket_index (-7));
  Alcotest.(check int) "one" 1 (H.bucket_index 1);
  Alcotest.(check int) "two" 2 (H.bucket_index 2);
  Alcotest.(check int) "three" 2 (H.bucket_index 3);
  Alcotest.(check int) "four" 3 (H.bucket_index 4);
  for k = 1 to 20 do
    (* [2^(k-1), 2^k) is bucket k: its low edge lands in it, the next
       power of two starts the next bucket. *)
    Alcotest.(check int)
      (Printf.sprintf "2^%d" k)
      (k + 1)
      (H.bucket_index (1 lsl k));
    Alcotest.(check int)
      (Printf.sprintf "2^%d - 1" k)
      k
      (H.bucket_index ((1 lsl k) - 1))
  done;
  (* lo/hi are consistent with the index for positive values. *)
  List.iter
    (fun v ->
      let i = H.bucket_index v in
      Alcotest.(check bool)
        (Printf.sprintf "lo <= %d" v)
        true
        (H.bucket_lo i <= v);
      Alcotest.(check bool)
        (Printf.sprintf "%d < hi" v)
        true
        (v < H.bucket_hi i))
    [ 1; 2; 3; 5; 17; 1000; 123_456_789 ]

let test_histogram_merge () =
  T.set_metrics true;
  let h = H.make "test.hist" in
  ignore
    (Parallel.Pool.run ~jobs:4 (fun w ->
         for i = 1 to 100 do
           H.observe h i
         done;
         w));
  let s = H.snapshot h in
  Alcotest.(check int) "count merged" 400 s.H.count;
  Alcotest.(check int) "total merged" (4 * 5050) s.H.total;
  let bucket_sum = List.fold_left (fun acc (_, _, n) -> acc + n) 0 s.H.buckets in
  Alcotest.(check int) "buckets partition the count" 400 bucket_sum;
  Alcotest.(check bool) "mean" true (Float.abs (H.mean s -. 50.5) < 1e-9);
  Alcotest.(check bool) "quantile monotone" true
    (H.quantile 0.5 s <= H.quantile 0.9 s)

let test_histogram_disabled () =
  let h = H.make "test.hist.off" in
  H.observe h 42;
  Alcotest.(check int) "observe is a no-op when disabled" 0
    (H.snapshot h).H.count

(* ---- span balance across domains ---- *)

let tm_outer = T.Span.probe "test.outer"
let tm_inner = T.Span.probe "test.inner"

(* Every domain's stream must close what it opens — at jobs=1 (all on
   the main domain) and jobs=2 (spans interleave across domains). *)
let test_span_balance () =
  List.iter
    (fun jobs ->
      T.disable ();
      T.reset ();
      T.set_metrics true;
      T.set_trace true;
      ignore
        (Parallel.Pool.run ~jobs (fun w ->
             T.Span.with_ tm_outer @@ fun () ->
             for _ = 1 to 3 do
               T.Span.with_ tm_inner (fun () -> ignore (Sys.opaque_identity w))
             done;
             w));
      match T.Trace.validate (T.Trace.to_json ()) with
      | Error msg -> Alcotest.failf "jobs=%d: invalid trace: %s" jobs msg
      | Ok c ->
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d balanced" jobs)
            c.T.Trace.begins c.T.Trace.ends;
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d span count" jobs)
            (jobs * 4) c.T.Trace.begins;
          Alcotest.(check bool)
            (Printf.sprintf "jobs=%d nesting observed" jobs)
            true
            (c.T.Trace.max_depth >= 2))
    [ 1; 2 ]

let test_span_exception_balance () =
  T.set_metrics true;
  T.set_trace true;
  (try T.Span.with_ tm_outer (fun () -> failwith "boom") with Failure _ -> ());
  match T.Trace.validate (T.Trace.to_json ()) with
  | Error msg -> Alcotest.failf "invalid trace: %s" msg
  | Ok c ->
      Alcotest.(check int) "exit on exception" c.T.Trace.begins c.T.Trace.ends

(* ---- trace JSON round-trip on a real solve ---- *)

let test_trace_roundtrip () =
  T.set_metrics true;
  T.set_trace true;
  let f = formula "x^2 = 2" in
  let box = Box.of_list [ ("x", I.make 0.0 2.0) ] in
  ignore (S.decide f box);
  Alcotest.(check bool) "events recorded" true (T.Trace.events_recorded () > 0);
  let path = Filename.temp_file "biomc_trace" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      T.Trace.write_file path;
      match T.Trace.validate_file path with
      | Error msg -> Alcotest.failf "invalid trace file: %s" msg
      | Ok c ->
          Alcotest.(check int) "balanced" c.T.Trace.begins c.T.Trace.ends;
          Alcotest.(check bool) "has events" true (c.T.Trace.events > 0);
          Alcotest.(check bool) "has a domain" true (c.T.Trace.tids <> []))

let test_validate_rejects_garbage () =
  let reject name s =
    match T.Trace.validate s with
    | Ok _ -> Alcotest.failf "%s: accepted" name
    | Error _ -> ()
  in
  reject "not json" "not json at all";
  reject "no traceEvents" "{\"displayTimeUnit\":\"ms\"}";
  reject "unbalanced"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1.0}]}";
  reject "crossed"
    "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":1.0},{\"name\":\"b\",\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":2.0}]}"

(* ---- disabled mode is a no-op ---- *)

let test_disabled_records_nothing () =
  let f = formula "x^2 + y^2 <= 1 /\\ x + y >= 0.5" in
  let box = Box.of_list [ ("x", I.make (-2.0) 2.0); ("y", I.make (-2.0) 2.0) ] in
  ignore (S.decide f box);
  ignore (S.pave f box);
  Alcotest.(check int) "no trace events" 0 (T.Trace.events_recorded ());
  List.iter
    (fun (name, v) ->
      (* Always-on counters (cache.*, per-query solver stat mirrors) may
         count; everything gated must stay at zero. *)
      if
        String.length name >= 4
        && (String.sub name 0 4 = "hc4." || String.sub name 0 4 = "smc.")
      then Alcotest.(check int) name 0 v)
    (T.Metrics.counters ())

(* Verdicts, pavings and SMC estimates must be bit-identical with
   telemetry fully on vs fully off: probes observe the computation and
   never steer it. *)
let test_differential_identity () =
  let f = formula "sin(x) + y^2 = 0.75 /\\ x*y <= 0.5" in
  let box = Box.of_list [ ("x", I.make (-2.0) 2.0); ("y", I.make (-1.0) 1.0) ] in
  let config = { S.default_config with max_boxes = 2_000 } in
  let run () =
    let d = S.decide ~config f box in
    let p = S.pave ~config f box in
    (d, p)
  in
  let off = run () in
  T.set_metrics true;
  T.set_trace true;
  let on = run () in
  T.disable ();
  let off' = run () in
  Alcotest.(check bool) "decide identical (on vs off)" true (fst on = fst off);
  Alcotest.(check bool) "paving identical (on vs off)" true (snd on = snd off);
  Alcotest.(check bool) "off reproducible after on" true (off' = off)

let test_differential_smc () =
  let prob =
    Smc.Runner.problem
      ~model:(Smc.Runner.Ode_model Biomodels.Classics.p53_mdm2)
      ~init_dist:
        [ ("p53", Smc.Sampler.Uniform (0.02, 0.08));
          ("mdm2", Smc.Sampler.Uniform (0.02, 0.08)) ]
      ~param_dist:[ ("damage", Smc.Sampler.Uniform (0.5, 1.5)) ]
      ~property:(Smc.Bltl.Finally (10.0, Smc.Bltl.prop "p53 >= 0.3"))
      ~t_end:10.0 ()
  in
  let run () = Smc.Runner.estimate_bayesian ~seed:7 ~jobs:2 ~n:40 prob in
  let off = run () in
  T.set_metrics true;
  T.set_trace true;
  let on = run () in
  Alcotest.(check bool) "estimate identical" true (on = off);
  Alcotest.(check bool) "samples counted" true
    (match List.assoc_opt "smc.samples" (T.Metrics.counters ()) with
    | Some n -> n >= 40
    | None -> false)

(* ---- reset ---- *)

let test_reset () =
  T.set_metrics true;
  T.set_trace true;
  let c = T.Counter.make "test.reset" in
  T.Counter.incr c;
  T.Span.instant tm_outer;
  Alcotest.(check bool) "recorded" true (T.Trace.events_recorded () > 0);
  T.reset ();
  Alcotest.(check int) "counter zeroed" 0 (T.Counter.value c);
  Alcotest.(check int) "trace emptied" 0 (T.Trace.events_recorded ())

let () =
  Alcotest.run "telemetry"
    [ ( "switches",
        [ Alcotest.test_case "on/off semantics" `Quick (clean test_switches);
          Alcotest.test_case "always vs gated counters" `Quick
            (clean test_always_vs_gated);
          Alcotest.test_case "reset" `Quick (clean test_reset) ] );
      ( "counters",
        [ Alcotest.test_case "merge across 4 domains" `Quick
            (clean test_counter_merge) ] );
      ( "histograms",
        [ Alcotest.test_case "bucket edges" `Quick (clean test_bucket_edges);
          Alcotest.test_case "merge across 4 domains" `Quick
            (clean test_histogram_merge);
          Alcotest.test_case "disabled observe is a no-op" `Quick
            (clean test_histogram_disabled) ] );
      ( "spans",
        [ Alcotest.test_case "balance at jobs=1 and jobs=2" `Quick
            (clean test_span_balance);
          Alcotest.test_case "balanced under exceptions" `Quick
            (clean test_span_exception_balance) ] );
      ( "trace",
        [ Alcotest.test_case "round-trip on a real solve" `Quick
            (clean test_trace_roundtrip);
          Alcotest.test_case "validator rejects malformed traces" `Quick
            (clean test_validate_rejects_garbage) ] );
      ( "disabled is a no-op",
        [ Alcotest.test_case "nothing recorded" `Quick
            (clean test_disabled_records_nothing);
          Alcotest.test_case "decide/pave bit-identical" `Quick
            (clean test_differential_identity);
          Alcotest.test_case "smc estimate bit-identical" `Quick
            (clean test_differential_smc) ] ) ]
