(* Provenance-journal tests: the load-bearing differential — the leaf
   partition reconstructed from the journal is fingerprint-identical to
   the solver's own paving, sequential and parallel — plus explain
   round-trips on pinned decide / pave / reach runs, audit rejection of
   corrupted journals, and the disabled-mode no-op (journaling off is
   bit-identical to no journaling at all). *)

module I = Interval.Ia
module Box = Interval.Box
module S = Icp.Solver
module P = Expr.Parse
module A = Hybrid.Automaton
module E = Reach.Encoding
module C = Reach.Checker
module J = Journal

(* Journal state is process-global; every test starts and ends from a
   clean, disabled slate so ordering cannot leak between tests (and so
   a BIOMC_JOURNAL=1 ablation run cannot either). *)
let clean f () =
  J.set_sink J.Off;
  J.reset ();
  Fun.protect
    ~finally:(fun () ->
      J.set_sink J.Off;
      J.reset ())
    f

let formula s =
  match P.formula_opt s with
  | Some f -> f
  | None -> Alcotest.failf "cannot parse %S" s

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    i + m <= n && (String.equal (String.sub s i m) sub || go (i + 1))
  in
  m = 0 || go 0

let jbounds b =
  Array.of_list (List.map (fun (x, i) -> (x, I.lo i, I.hi i)) (Box.to_list b))

(* Flush the memory sink, parse it back, reconstruct. *)
let load_forest () =
  let s = J.contents () in
  match J.of_string s with
  | Error e -> Alcotest.failf "journal parse: %s" e
  | Ok records -> (records, J.reconstruct records)

let the_run forest =
  match J.runs forest with
  | [ r ] -> r
  | rs -> Alcotest.failf "expected exactly 1 run, got %d" (List.length rs)

let check_audit forest = Alcotest.(check (list string)) "audit" [] (J.audit forest)

(* Terminal bounds of a run, excluding empty-box leaves (those are
   dropped from the solver's paving as well). *)
let leaf_bounds forest run =
  List.filter_map
    (fun (n : J.node) ->
      match n.J.outcome with
      | Some (J.O_leaf ("empty", _)) -> None
      | Some _ -> (
          match n.J.bounds with
          | Some b -> Some b
          | None -> Alcotest.fail "terminal node without bounds")
      | None -> None)
    (J.leaves forest ~run)

(* ---- the differential: journal leaves == paving leaves ---- *)

let test_pave_fingerprint jobs () =
  J.set_sink J.Memory;
  let f = formula "x^2 + y^2 <= 1" in
  let box =
    Box.of_list [ ("x", I.make (-1.5) 1.5); ("y", I.make (-1.5) 1.5) ]
  in
  let config = { S.default_config with epsilon = 0.25; jobs } in
  let paving = S.pave ~config f box in
  let solver_boxes = paving.S.sat @ paving.S.unsat @ paving.S.undecided in
  let solver_fp = J.leaf_bounds_fingerprint (List.map jbounds solver_boxes) in
  let _, forest = load_forest () in
  check_audit forest;
  let run = the_run forest in
  Alcotest.(check string) "kind" "pave" run.J.kind;
  let lb = leaf_bounds forest run.J.rid in
  Alcotest.(check int) "leaf count" (List.length solver_boxes) (List.length lb);
  Alcotest.(check string)
    "leaf partition fingerprint" solver_fp (J.leaf_bounds_fingerprint lb)

(* An unsat decide explores the whole tree: the journal's terminals are
   a refutation cover of the query box, every one a prune, and the
   cover is the same set at any worker count. *)
let test_decide_unsat_cover () =
  let f = formula "x^2 + y^2 = 1 and x + y = 2" in
  let box = Box.of_list [ ("x", I.make 0.0 1.0); ("y", I.make 0.0 1.0) ] in
  let run_one jobs =
    J.set_sink J.Memory;
    J.reset ();
    let config = { S.default_config with jobs } in
    (match S.decide ~config f box with
    | S.Unsat -> ()
    | r -> Alcotest.failf "expected unsat, got %a" S.pp_result r);
    let _, forest = load_forest () in
    check_audit forest;
    let run = the_run forest in
    Alcotest.(check (option string)) "verdict" (Some "unsat") run.J.verdict;
    Alcotest.(check bool) "not truncated" false run.J.truncated;
    let leaves = J.leaves forest ~run:run.J.rid in
    List.iter
      (fun (n : J.node) ->
        match n.J.outcome with
        | Some (J.O_prune _) -> ()
        | _ -> Alcotest.fail "an unsat cover must consist of prunes")
      leaves;
    J.leaf_bounds_fingerprint (leaf_bounds forest run.J.rid)
  in
  let fp1 = run_one 1 in
  let fp2 = run_one 2 in
  Alcotest.(check string) "jobs-invariant refutation cover" fp1 fp2

(* ---- explain round-trips on pinned runs ---- *)

let test_explain_decide () =
  J.set_sink J.Memory;
  let f = formula "x^2 + y^2 = 1 and y = x^2" in
  let box = Box.of_list [ ("x", I.make 0.0 2.0); ("y", I.make 0.0 2.0) ] in
  (match S.decide f box with
  | S.Delta_sat _ -> ()
  | r -> Alcotest.failf "expected delta-sat, got %a" S.pp_result r);
  let records, forest = load_forest () in
  check_audit forest;
  let run = the_run forest in
  Alcotest.(check (option string)) "verdict" (Some "delta-sat") run.J.verdict;
  Alcotest.(check bool) "conclusive run is not truncated" false run.J.truncated;
  let sats =
    List.filter
      (fun (n : J.node) ->
        match n.J.outcome with Some (J.O_sat _) -> true | _ -> false)
      (J.nodes forest)
  in
  Alcotest.(check int) "one sat probe" 1 (List.length sats);
  let report = J.report forest in
  Alcotest.(check bool) "report names verdict" true (contains report "delta-sat");
  Alcotest.(check bool)
    "report has witness chain" true
    (contains report "witness chain");
  let json = J.provenance_json forest in
  Alcotest.(check bool) "json mentions runs" true (contains json "\"runs\"");
  let dot = J.to_dot ~max_nodes:50 forest in
  Alcotest.(check bool) "dot export" true (contains dot "digraph");
  (* parse round-trip: every record re-read is already sorted *)
  Alcotest.(check bool) "records non-empty" true (records <> []);
  Alcotest.(check int)
    "reconstruct keeps every record" (List.length records)
    (List.length (J.records forest))

let decay_automaton =
  A.of_system
    ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
    (Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ])

let test_explain_reach () =
  J.set_sink J.Memory;
  let pb =
    E.create
      ~goal:{ E.goal_modes = []; predicate = P.formula "x <= 1/2" }
      ~k:0 ~time_bound:1.0 decay_automaton
  in
  (match C.check pb with
  | C.Delta_sat _ -> ()
  | r -> Alcotest.failf "expected delta-sat, got %a" C.pp_result r);
  let _, forest = load_forest () in
  check_audit forest;
  let run = the_run forest in
  Alcotest.(check string) "kind" "reach" run.J.kind;
  Alcotest.(check (option string)) "verdict" (Some "delta-sat") run.J.verdict;
  let has_seg =
    List.exists
      (fun r -> match r.J.ev with J.Seg _ -> true | _ -> false)
      (J.records forest)
  and has_path =
    List.exists
      (fun r -> match r.J.ev with J.Path _ -> true | _ -> false)
      (J.records forest)
  and has_tube =
    List.exists
      (fun r -> match r.J.ev with J.Tube _ -> true | _ -> false)
      (J.records forest)
  in
  Alcotest.(check bool) "segment provenance" true has_seg;
  Alcotest.(check bool) "path provenance" true has_path;
  Alcotest.(check bool) "tube provenance" true has_tube;
  Alcotest.(check bool)
    "report names reach" true
    (contains (J.report forest) "reach")

(* ---- audit rejections ---- *)

(* Emit a synthetic journal through the public emitters, then audit. *)
let audit_of build =
  J.set_sink J.Memory;
  J.reset ();
  build ();
  let _, forest = load_forest () in
  J.audit forest

let b1 lo hi : J.bounds = [| ("x", lo, hi) |]

let test_audit_clean_synthetic () =
  let problems =
    audit_of (fun () ->
        let r = J.begin_run ~kind:"pave" ~flags:[] () in
        let root = J.fresh_id () in
        J.root ~id:root (b1 0.0 1.0);
        J.enter ~id:root ~depth:0;
        let l = J.fresh_id () and rt = J.fresh_id () in
        J.split ~id:root ~heur:"bisect" ~left:l ~right:rt
          ~left_bounds:(b1 0.0 0.5) ~right_bounds:(b1 0.5 1.0);
        J.enter ~id:l ~depth:1;
        J.prune ~id:l ~reason:"hc4-empty" ();
        J.enter ~id:rt ~depth:1;
        J.leaf ~id:rt ~cls:"sat" ();
        J.end_run ~verdict:"ok" r)
  in
  Alcotest.(check (list string)) "well-formed synthetic journal" [] problems

let test_audit_rejects_dropped_leaf () =
  let problems =
    audit_of (fun () ->
        let r = J.begin_run ~kind:"pave" ~flags:[] () in
        let root = J.fresh_id () in
        J.root ~id:root (b1 0.0 1.0);
        J.enter ~id:root ~depth:0;
        let l = J.fresh_id () and rt = J.fresh_id () in
        J.split ~id:root ~heur:"bisect" ~left:l ~right:rt
          ~left_bounds:(b1 0.0 0.5) ~right_bounds:(b1 0.5 1.0);
        J.enter ~id:l ~depth:1;
        J.prune ~id:l ~reason:"hc4-empty" ();
        (* the right child is never accounted for *)
        J.end_run ~verdict:"ok" r)
  in
  Alcotest.(check bool) "dropped leaf is flagged" true (problems <> [])

let test_audit_rejects_non_partition () =
  let problems =
    audit_of (fun () ->
        let r = J.begin_run ~kind:"pave" ~flags:[] () in
        let root = J.fresh_id () in
        J.root ~id:root (b1 0.0 1.0);
        J.enter ~id:root ~depth:0;
        let l = J.fresh_id () and rt = J.fresh_id () in
        (* gap: [0, 0.4] ∪ [0.5, 1] does not partition [0, 1] *)
        J.split ~id:root ~heur:"bisect" ~left:l ~right:rt
          ~left_bounds:(b1 0.0 0.4) ~right_bounds:(b1 0.5 1.0);
        J.enter ~id:l ~depth:1;
        J.prune ~id:l ~reason:"hc4-empty" ();
        J.enter ~id:rt ~depth:1;
        J.prune ~id:rt ~reason:"hc4-empty" ();
        J.end_run ~verdict:"ok" r)
  in
  Alcotest.(check bool) "split gap is flagged" true (problems <> [])

let test_audit_rejects_impossible_reason () =
  let problems =
    audit_of (fun () ->
        let r =
          J.begin_run ~kind:"pave" ~flags:[ ("newton", "false") ] ()
        in
        let root = J.fresh_id () in
        J.root ~id:root (b1 0.0 1.0);
        J.enter ~id:root ~depth:0;
        (* a newton prune in a run whose header says newton was off *)
        J.prune ~id:root ~reason:"newton" ();
        J.end_run ~verdict:"ok" r)
  in
  Alcotest.(check bool) "impossible prune reason is flagged" true
    (problems <> [])

(* ---- disabled mode is a no-op ---- *)

let test_disabled_noop () =
  let f = formula "x^3 - x = 1/4" in
  let box = Box.of_list [ ("x", I.make (-2.0) 2.0) ] in
  let prev_policy = Cache.policy () in
  Cache.set_policy Cache.Off;
  Fun.protect ~finally:(fun () -> Cache.set_policy prev_policy) @@ fun () ->
  J.set_sink J.Off;
  Alcotest.(check bool) "off" false (J.on ());
  let r_off = S.decide f box in
  Alcotest.(check string) "no records when off" "" (J.contents ());
  J.set_sink J.Memory;
  Alcotest.(check bool) "on" true (J.on ());
  let r_on = S.decide f box in
  J.set_sink J.Off;
  Alcotest.(check string) "verdict bit-identical"
    (Fmt.str "%a" S.pp_result r_off)
    (Fmt.str "%a" S.pp_result r_on)

let () =
  Alcotest.run "journal"
    [ ("differential",
       [ Alcotest.test_case "pave fingerprint, jobs=1" `Quick
           (clean (test_pave_fingerprint 1));
         Alcotest.test_case "pave fingerprint, jobs=2" `Quick
           (clean (test_pave_fingerprint 2));
         Alcotest.test_case "decide unsat cover" `Quick
           (clean test_decide_unsat_cover) ]);
      ("explain",
       [ Alcotest.test_case "decide round-trip" `Quick
           (clean test_explain_decide);
         Alcotest.test_case "reach round-trip" `Quick
           (clean test_explain_reach) ]);
      ("audit",
       [ Alcotest.test_case "clean synthetic journal" `Quick
           (clean test_audit_clean_synthetic);
         Alcotest.test_case "rejects dropped leaf" `Quick
           (clean test_audit_rejects_dropped_leaf);
         Alcotest.test_case "rejects non-partition split" `Quick
           (clean test_audit_rejects_non_partition);
         Alcotest.test_case "rejects impossible prune reason" `Quick
           (clean test_audit_rejects_impossible_reason) ]);
      ("discipline",
       [ Alcotest.test_case "disabled journaling is a no-op" `Quick
           (clean test_disabled_noop) ]) ]
