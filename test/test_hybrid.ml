(* Tests for hybrid automata: construction, the mode graph, and
   trajectory simulation with event detection. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse
module A = Hybrid.Automaton
module G = Hybrid.Graph
module S = Hybrid.Simulate

let pt x = I.of_float x

(* Bouncing ball: h' = v, v' = -g; bounce (v := -c v) when h <= 0, v < 0. *)
let ball ?(c = 0.8) () =
  A.create ~vars:[ "h"; "v" ] ~params:[ "g" ]
    ~modes:
      [ A.mode ~name:"fall"
          ~flow:[ ("h", P.term "v"); ("v", P.term "-g") ]
          ~invariant:(P.formula "h >= -0.001") () ]
    ~jumps:
      [ A.jump ~source:"fall" ~target:"fall"
          ~guard:(P.formula "h <= 0 and v < 0")
          ~reset:[ ("h", P.term "0"); ("v", P.term (Printf.sprintf "-%g * v" c)) ]
          () ]
    ~init_mode:"fall"
    ~init:(Box.of_list [ ("h", pt 1.0); ("v", pt 0.0) ])

(* Thermostat: heating towards 30, cooling towards 10, thresholds 18/22. *)
let thermostat =
  A.create ~vars:[ "x" ] ~params:[]
    ~modes:
      [ A.mode ~name:"heat" ~flow:[ ("x", P.term "30 - x") ]
          ~invariant:(P.formula "x <= 22.5") ();
        A.mode ~name:"cool" ~flow:[ ("x", P.term "10 - x") ]
          ~invariant:(P.formula "x >= 17.5") () ]
    ~jumps:
      [ A.jump ~source:"heat" ~target:"cool" ~guard:(P.formula "x >= 22") ();
        A.jump ~source:"cool" ~target:"heat" ~guard:(P.formula "x <= 18") () ]
    ~init_mode:"heat"
    ~init:(Box.of_list [ ("x", pt 20.0) ])

(* ---- Construction ---- *)

let test_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : A.t) -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  let m = A.mode ~name:"m" ~flow:[ ("x", P.term "1") ] () in
  let ok_init = Box.of_list [ ("x", pt 0.0) ] in
  expect_invalid "no modes" (fun () ->
      A.create ~vars:[ "x" ] ~params:[] ~modes:[] ~jumps:[] ~init_mode:"m" ~init:ok_init);
  expect_invalid "bad init mode" (fun () ->
      A.create ~vars:[ "x" ] ~params:[] ~modes:[ m ] ~jumps:[] ~init_mode:"nope"
        ~init:ok_init);
  expect_invalid "duplicate mode" (fun () ->
      A.create ~vars:[ "x" ] ~params:[] ~modes:[ m; m ] ~jumps:[] ~init_mode:"m"
        ~init:ok_init);
  expect_invalid "missing flow" (fun () ->
      A.create ~vars:[ "x"; "y" ] ~params:[] ~modes:[ m ] ~jumps:[] ~init_mode:"m"
        ~init:(Box.of_list [ ("x", pt 0.0); ("y", pt 0.0) ]));
  expect_invalid "unbound in flow" (fun () ->
      A.create ~vars:[ "x" ] ~params:[]
        ~modes:[ A.mode ~name:"m" ~flow:[ ("x", P.term "q") ] () ]
        ~jumps:[] ~init_mode:"m" ~init:ok_init);
  expect_invalid "jump to unknown mode" (fun () ->
      A.create ~vars:[ "x" ] ~params:[] ~modes:[ m ]
        ~jumps:[ A.jump ~source:"m" ~target:"ghost" ~guard:Expr.Formula.tt () ]
        ~init_mode:"m" ~init:ok_init);
  expect_invalid "init missing var" (fun () ->
      A.create ~vars:[ "x" ] ~params:[] ~modes:[ m ] ~jumps:[] ~init_mode:"m"
        ~init:Box.empty_map)

let test_accessors () =
  let b = ball () in
  Alcotest.(check (list string)) "vars" [ "h"; "v" ] (A.vars b);
  Alcotest.(check (list string)) "params" [ "g" ] (A.params b);
  Alcotest.(check (list string)) "modes" [ "fall" ] (A.mode_names b);
  Alcotest.(check int) "dim" 2 (A.dim b);
  Alcotest.(check int) "jumps from fall" 1 (List.length (A.jumps_from b "fall"));
  Alcotest.check_raises "unknown mode"
    (Invalid_argument "Automaton.find_mode: unknown mode \"x\"") (fun () ->
      ignore (A.find_mode b "x"))

let test_mode_system () =
  let sys = A.mode_system thermostat "heat" in
  let f = Ode.System.compile sys in
  Alcotest.(check (float 1e-12)) "heat rhs" 10.0 (f 0.0 [| 20.0 |]).(0)

let test_bind_params () =
  let b = A.bind_params [ ("g", 9.8) ] (ball ()) in
  Alcotest.(check (list string)) "no params" [] (A.params b);
  let sys = A.mode_system b "fall" in
  let f = Ode.System.compile sys in
  Alcotest.(check (float 1e-12)) "bound gravity" (-9.8) (f 0.0 [| 1.0; 0.0 |]).(1)

let test_of_system () =
  let sys = Ode.System.of_strings ~vars:[ "x" ] ~params:[] ~rhs:[ ("x", "-x") ] in
  let h = A.of_system ~init:(Box.of_list [ ("x", pt 1.0) ]) sys in
  Alcotest.(check (list string)) "single mode" [ "m0" ] (A.mode_names h);
  Alcotest.(check int) "no jumps" 0 (List.length (A.jumps h))

(* ---- Mode graph ---- *)

let chain =
  (* 0 -> A -> B -> 0 and 0 -> 1 (dead end) *)
  let m name = A.mode ~name ~flow:[ ("x", P.term "0") ] () in
  A.create ~vars:[ "x" ] ~params:[]
    ~modes:[ m "0"; m "A"; m "B"; m "1" ]
    ~jumps:
      [ A.jump ~source:"0" ~target:"A" ~guard:Expr.Formula.tt ();
        A.jump ~source:"A" ~target:"B" ~guard:Expr.Formula.tt ();
        A.jump ~source:"B" ~target:"0" ~guard:Expr.Formula.tt ();
        A.jump ~source:"0" ~target:"1" ~guard:Expr.Formula.tt () ]
    ~init_mode:"0"
    ~init:(Box.of_list [ ("x", pt 0.0) ])

let test_graph_reachability () =
  let g = G.of_automaton chain in
  let r = G.reachable_from g "A" in
  Alcotest.(check bool) "A reaches 1" true (G.SSet.mem "1" r);
  Alcotest.(check bool) "A reaches itself via cycle" true (G.SSet.mem "A" r);
  let co = G.co_reachable_to g [ "1" ] in
  Alcotest.(check bool) "B co-reaches 1" true (G.SSet.mem "B" co);
  Alcotest.(check bool) "1 in own co-reach" true (G.SSet.mem "1" co)

let test_graph_paths () =
  let g = G.of_automaton chain in
  let ps = G.paths ~max_jumps:3 g ~source:"0" in
  (* 0; 0A; 01; 0AB; 0AB0 and with 3 jumps also 0AB0? length 4 = 3 jumps. *)
  Alcotest.(check bool) "contains trivial" true (List.mem [ "0" ] ps);
  Alcotest.(check bool) "contains 0AB0" true (List.mem [ "0"; "A"; "B"; "0" ] ps);
  let to_one = G.paths ~targets:[ "1" ] ~max_jumps:3 g ~source:"0" in
  Alcotest.(check bool) "path to 1" true (List.mem [ "0"; "1" ] to_one);
  Alcotest.(check bool) "no 0A... to 1 (A cannot reach 1 in remaining budget)" true
    (List.for_all (fun p -> List.rev p |> List.hd |> String.equal "1") to_one);
  let exact = G.paths_of_length ~jumps:3 g ~source:"0" in
  List.iter
    (fun p -> Alcotest.(check int) "exact length" 4 (List.length p))
    exact;
  Alcotest.(check bool) "0AB0 among exact" true (List.mem [ "0"; "A"; "B"; "0" ] exact)

(* ---- Simulation ---- *)

let test_ball_bounces () =
  let traj =
    S.simulate ~params:[ ("g", 9.8) ] ~init:[] ~t_end:3.0 ~max_jumps:20 (ball ())
  in
  (* First impact of a drop from 1 m: sqrt(2/9.8) ≈ 0.4518 s; several
     bounces fit in 3 s. *)
  Alcotest.(check bool) "several bounces" true (List.length traj.S.path >= 3);
  Alcotest.(check bool) "ends by time" true (traj.S.reason = S.Time_exhausted);
  (* Energy decreases across bounces: final height bound. *)
  let h_final = List.assoc "h" traj.S.final_env in
  Alcotest.(check bool) "below drop height" true (h_final < 1.0);
  Alcotest.(check bool) "above ground" true (h_final >= -0.01)

let test_ball_first_impact_time () =
  let traj =
    S.simulate ~params:[ ("g", 9.8) ] ~init:[] ~t_end:0.6 ~max_jumps:1 (ball ())
  in
  match traj.S.segments with
  | seg1 :: _ :: _ ->
      let t_impact = Ode.Integrate.final_time seg1.S.trace in
      Alcotest.(check (float 1e-3)) "impact at sqrt(2h/g)" (Float.sqrt (2.0 /. 9.8)) t_impact
  | _ -> Alcotest.fail "expected an impact within 0.6 s"

let test_ball_jump_budget () =
  let traj =
    S.simulate ~params:[ ("g", 9.8) ] ~init:[] ~t_end:30.0 ~max_jumps:3 (ball ())
  in
  Alcotest.(check bool) "stopped by budget" true (traj.S.reason = S.Jump_budget);
  Alcotest.(check int) "4 segments = 3 jumps + initial" 4 (List.length traj.S.segments)

let test_thermostat_alternates () =
  let traj = S.simulate ~params:[] ~init:[] ~t_end:10.0 ~max_jumps:50 thermostat in
  Alcotest.(check bool) "multiple switches" true (List.length traj.S.path >= 4);
  let rec alternates = function
    | a :: (b :: _ as rest) -> (not (String.equal a b)) && alternates rest
    | _ -> true
  in
  Alcotest.(check bool) "alternating modes" true (alternates traj.S.path);
  (* Temperature must stay within the hysteresis band (with tolerance). *)
  let ok = ref true in
  List.iter
    (fun (_, v) ->
      match v with
      | Some x -> if x < 17.0 || x > 23.0 then ok := false
      | None -> ())
    (S.sample traj "x" ~n:100);
  Alcotest.(check bool) "stays in band" true !ok

let test_reset_expression () =
  (* Jump doubles x when it reaches 1; x' = 1. *)
  let h =
    A.create ~vars:[ "x" ] ~params:[]
      ~modes:
        [ A.mode ~name:"up" ~flow:[ ("x", P.term "1") ]
            ~invariant:(P.formula "x <= 1.001") () ]
      ~jumps:
        [ A.jump ~source:"up" ~target:"up" ~guard:(P.formula "x >= 1")
            ~reset:[ ("x", P.term "x / 2") ] () ]
      ~init_mode:"up"
      ~init:(Box.of_list [ ("x", pt 0.0) ])
  in
  let traj = S.simulate ~params:[] ~init:[] ~t_end:1.75 ~max_jumps:2 h in
  (* reaches 1 at t=1, resets to 0.5, reaches 1 again at t=1.5, resets,
     then grows to 0.75 by t=1.75 *)
  Alcotest.(check int) "two resets" 3 (List.length traj.S.segments);
  Alcotest.(check (float 0.01)) "final value" 0.75 (List.assoc "x" traj.S.final_env)

let test_simulation_deterministic () =
  let run () = S.simulate ~params:[ ("g", 9.8) ] ~init:[] ~t_end:2.0 (ball ()) in
  let a = run () and b = run () in
  Alcotest.(check (list string)) "same path" a.S.path b.S.path;
  Alcotest.(check (float 0.0)) "same final h"
    (List.assoc "h" a.S.final_env)
    (List.assoc "h" b.S.final_env)

let test_init_override () =
  let traj =
    S.simulate ~params:[ ("g", 9.8) ] ~init:[ ("h", 2.0) ] ~t_end:0.1 (ball ())
  in
  match traj.S.segments with
  | seg :: _ ->
      Alcotest.(check (float 1e-9)) "h starts at 2"
        2.0 (Ode.Integrate.value_at seg.S.trace "h" 0.0)
  | [] -> Alcotest.fail "no segments"

let test_missing_param () =
  Alcotest.check_raises "unbound parameter"
    (Invalid_argument "Simulate: parameter \"g\" not bound") (fun () ->
      ignore (S.simulate ~params:[] ~init:[] ~t_end:1.0 (ball ())))

let test_zeno_detection () =
  (* guard always true with identity reset: an instantaneous jump loop *)
  let h =
    A.create ~vars:[ "x" ] ~params:[]
      ~modes:[ A.mode ~name:"m" ~flow:[ ("x", P.term "1") ] () ]
      ~jumps:[ A.jump ~source:"m" ~target:"m" ~guard:(P.formula "x >= 0") () ]
      ~init_mode:"m"
      ~init:(Box.of_list [ ("x", pt 1.0) ])
  in
  let traj = S.simulate ~params:[] ~init:[] ~t_end:10.0 ~max_jumps:1000 h in
  Alcotest.(check bool) "zeno detected" true (traj.S.reason = S.Zeno);
  Alcotest.(check bool) "stopped early" true (List.length traj.S.path < 50);
  (* the bouncing ball is NOT flagged (dwell times shrink but stay
     positive before the jump budget kicks in) *)
  let ball_traj =
    S.simulate ~params:[ ("g", 9.8) ] ~init:[] ~t_end:2.0 ~max_jumps:10 (ball ())
  in
  Alcotest.(check bool) "ball is not zeno" true (ball_traj.S.reason <> S.Zeno)

let test_value_at_and_sample () =
  let traj = S.simulate ~params:[ ("g", 9.8) ] ~init:[] ~t_end:1.0 (ball ()) in
  (match S.value_at traj "h" 0.2 with
  | Some h ->
      (* h(t) = 1 - g t^2/2 before the first impact; the sampled trace is
         linearly interpolated, so allow quadratic interpolation error. *)
      Alcotest.(check (float 0.02)) "free fall" (1.0 -. (9.8 *. 0.04 /. 2.0)) h
  | None -> Alcotest.fail "value_at before impact");
  let samples = S.sample traj "h" ~n:11 in
  Alcotest.(check int) "sample count" 11 (List.length samples)

let () =
  Alcotest.run "hybrid"
    [
      ( "automaton",
        [
          Alcotest.test_case "validation" `Quick test_validation;
          Alcotest.test_case "accessors" `Quick test_accessors;
          Alcotest.test_case "mode system" `Quick test_mode_system;
          Alcotest.test_case "bind params" `Quick test_bind_params;
          Alcotest.test_case "of_system" `Quick test_of_system;
        ] );
      ( "graph",
        [
          Alcotest.test_case "reachability" `Quick test_graph_reachability;
          Alcotest.test_case "paths" `Quick test_graph_paths;
        ] );
      ( "simulate",
        [
          Alcotest.test_case "ball bounces" `Quick test_ball_bounces;
          Alcotest.test_case "first impact time" `Quick test_ball_first_impact_time;
          Alcotest.test_case "jump budget" `Quick test_ball_jump_budget;
          Alcotest.test_case "thermostat alternates" `Quick test_thermostat_alternates;
          Alcotest.test_case "reset expression" `Quick test_reset_expression;
          Alcotest.test_case "deterministic" `Quick test_simulation_deterministic;
          Alcotest.test_case "init override" `Quick test_init_override;
          Alcotest.test_case "missing param" `Quick test_missing_param;
          Alcotest.test_case "zeno detection" `Quick test_zeno_detection;
          Alcotest.test_case "value_at and sample" `Quick test_value_at_and_sample;
        ] );
    ]
