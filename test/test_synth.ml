(* Tests for BioPSy-style guaranteed parameter synthesis. *)

module I = Interval.Ia
module Box = Interval.Box
module D = Synth.Data
module B = Synth.Biopsy

let decay_k =
  Ode.System.of_strings ~vars:[ "x" ] ~params:[ "k" ] ~rhs:[ ("x", "-k*x") ]

(* Exact data for k = 1 from x0 = 1, generous bands. *)
let decay_data tol =
  List.map
    (fun t -> D.point ~time:t ~var:"x" ~value:(Float.exp (-.t)) ~tolerance:tol)
    [ 0.25; 0.5; 0.75; 1.0 ]

let problem ?(tol = 0.1) ?(lo = 0.2) ?(hi = 3.0) () =
  B.problem ~sys:decay_k
    ~param_box:(Box.of_list [ ("k", I.make lo hi) ])
    ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
    ~data:(decay_data tol)

(* ---- Data ---- *)

let test_data_validation () =
  Alcotest.check_raises "negative tolerance"
    (Invalid_argument "Data.point: negative tolerance") (fun () ->
      ignore (D.point ~time:1.0 ~var:"x" ~value:0.0 ~tolerance:(-0.1)));
  Alcotest.check_raises "negative time" (Invalid_argument "Data.point: negative time")
    (fun () -> ignore (D.point ~time:(-1.0) ~var:"x" ~value:0.0 ~tolerance:0.1))

let test_data_accessors () =
  let d = decay_data 0.1 in
  Alcotest.(check (float 1e-12)) "horizon" 1.0 (D.horizon d);
  Alcotest.(check (list string)) "vars" [ "x" ] (D.vars d);
  let b = D.band (List.hd d) in
  Alcotest.(check bool) "band contains value" true (I.mem (Float.exp (-0.25)) b);
  Alcotest.(check bool) "band width = 2 tol" true (Float.abs (I.width b -. 0.2) < 1e-9)

let test_data_trace_consistency () =
  let trace =
    Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.001) ~params:[ ("k", 1.0) ]
      ~init:[ ("x", 1.0) ] ~t_end:1.0 decay_k
  in
  Alcotest.(check bool) "k=1 consistent" true
    (D.consistent_with_trace (decay_data 0.05) trace);
  Alcotest.(check bool) "sse small" true (D.sse (decay_data 0.05) trace < 1e-6);
  let trace2 =
    Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 0.001) ~params:[ ("k", 2.0) ]
      ~init:[ ("x", 1.0) ] ~t_end:1.0 decay_k
  in
  Alcotest.(check bool) "k=2 inconsistent" false
    (D.consistent_with_trace (decay_data 0.05) trace2)

let test_synthetic_data () =
  let rng = Random.State.make [| 11 |] in
  let d =
    D.synthetic ~rng ~sys:decay_k ~params:[ ("k", 1.0) ] ~init:[ ("x", 1.0) ]
      ~t_end:1.0 ~observed:[ "x" ] ~n:5 ~noise:0.01 ~tolerance:0.05
  in
  Alcotest.(check int) "5 points" 5 (List.length d);
  List.iter
    (fun (p : D.point) ->
      Alcotest.(check bool) "close to truth" true
        (Float.abs (p.D.value -. Float.exp (-.p.D.time)) <= 0.0100001))
    d;
  (* reproducible *)
  let rng2 = Random.State.make [| 11 |] in
  let d2 =
    D.synthetic ~rng:rng2 ~sys:decay_k ~params:[ ("k", 1.0) ] ~init:[ ("x", 1.0) ]
      ~t_end:1.0 ~observed:[ "x" ] ~n:5 ~noise:0.01 ~tolerance:0.05
  in
  List.iter2
    (fun (a : D.point) (b : D.point) ->
      Alcotest.(check (float 0.0)) "deterministic" a.D.value b.D.value)
    d d2

(* ---- Problem validation ---- *)

let test_problem_validation () =
  let expect_invalid name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : B.problem) -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "missing param box" (fun () ->
      B.problem ~sys:decay_k ~param_box:Box.empty_map
        ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
        ~data:(decay_data 0.1));
  expect_invalid "missing init" (fun () ->
      B.problem ~sys:decay_k
        ~param_box:(Box.of_list [ ("k", I.make 0.0 1.0) ])
        ~init:Box.empty_map ~data:(decay_data 0.1));
  expect_invalid "unknown data var" (fun () ->
      B.problem ~sys:decay_k
        ~param_box:(Box.of_list [ ("k", I.make 0.0 1.0) ])
        ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
        ~data:[ D.point ~time:0.5 ~var:"nope" ~value:1.0 ~tolerance:0.1 ])

(* ---- Synthesis ---- *)

let test_synthesize_brackets_truth () =
  let prob = problem () in
  let r = B.synthesize ~config:{ B.default_config with epsilon = 0.02 } prob in
  Alcotest.(check bool) "not falsified" false (B.falsified r);
  Alcotest.(check bool) "has consistent boxes" true (r.B.consistent <> []);
  Alcotest.(check bool) "has inconsistent boxes" true (r.B.inconsistent <> []);
  (* every consistent box must be near k = 1 *)
  List.iter
    (fun b ->
      let k = Box.find "k" b in
      Alcotest.(check bool) "consistent near 1" true (I.lo k > 0.6 && I.hi k < 1.4))
    r.B.consistent;
  (* the truth is not in any inconsistent box *)
  List.iter
    (fun b ->
      Alcotest.(check bool) "truth not excluded" false (I.mem 1.0 (Box.find "k" b)))
    r.B.inconsistent;
  (* volumes partition the box *)
  let vc, vi, vu = B.volumes prob r in
  Alcotest.(check bool) "volumes sum" true (Float.abs (vc +. vi +. vu -. 2.8) < 0.01)

let test_falsification () =
  (* Data demanding growth: the decay model cannot fit for any k > 0. *)
  let growth_data =
    [ D.point ~time:0.5 ~var:"x" ~value:2.0 ~tolerance:0.2;
      D.point ~time:1.0 ~var:"x" ~value:4.0 ~tolerance:0.2 ]
  in
  let prob =
    B.problem ~sys:decay_k
      ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
      ~data:growth_data
  in
  let r = B.synthesize prob in
  Alcotest.(check bool) "falsified" true (B.falsified r);
  Alcotest.(check bool) "everything inconsistent" true (r.B.consistent = [])

let test_fit_recovers_truth () =
  let prob = problem ~tol:0.05 () in
  match B.fit prob with
  | None -> Alcotest.fail "fit should succeed"
  | Some (env, sse) ->
      Alcotest.(check bool) "k near 1" true (Float.abs (List.assoc "k" env -. 1.0) < 0.1);
      Alcotest.(check bool) "sse small" true (sse < 1e-3)

let test_two_parameter_synthesis () =
  (* x' = a - b x: equilibrium a/b; data from a = 1, b = 2. *)
  let sys =
    Ode.System.of_strings ~vars:[ "x" ] ~params:[ "a"; "b" ] ~rhs:[ ("x", "a - b*x") ]
  in
  let truth t = 0.5 -. (0.5 *. Float.exp (-2.0 *. t)) in
  let data =
    List.map
      (fun t -> D.point ~time:t ~var:"x" ~value:(truth t) ~tolerance:0.05)
      [ 0.3; 0.6; 1.0; 2.0 ]
  in
  let prob =
    B.problem ~sys
      ~param_box:(Box.of_list [ ("a", I.make 0.2 2.0); ("b", I.make 0.5 4.0) ])
      ~init:(Box.of_list [ ("x", I.of_float 0.0) ])
      ~data
  in
  let r = B.synthesize ~config:{ B.default_config with epsilon = 0.1 } prob in
  Alcotest.(check bool) "not falsified" false (B.falsified r);
  (* the ground truth is never excluded *)
  List.iter
    (fun b ->
      Alcotest.(check bool) "truth survives" false
        (Box.contains_env [ ("a", 1.0); ("b", 2.0) ] b))
    r.B.inconsistent

let test_undecided_shrinks_with_epsilon () =
  let prob = problem () in
  let run eps =
    let r = B.synthesize ~config:{ B.default_config with epsilon = eps } prob in
    let _, _, vu = B.volumes prob r in
    vu
  in
  let coarse = run 0.4 and fine = run 0.05 in
  Alcotest.(check bool)
    (Printf.sprintf "undecided volume shrinks (%.3f -> %.3f)" coarse fine)
    true (fine <= coarse +. 1e-9)

(* ---- Property tests ---- *)

let prop_truth_never_inconsistent =
  let gen = QCheck.Gen.float_range 0.5 2.5 in
  QCheck.Test.make ~count:20 ~name:"ground truth never lands in an inconsistent box"
    (QCheck.make ~print:string_of_float gen)
    (fun k_true ->
      let data =
        List.map
          (fun t ->
            D.point ~time:t ~var:"x" ~value:(Float.exp (-.k_true *. t)) ~tolerance:0.05)
          [ 0.5; 1.0 ]
      in
      let prob =
        B.problem ~sys:decay_k
          ~param_box:(Box.of_list [ ("k", I.make 0.2 3.0) ])
          ~init:(Box.of_list [ ("x", I.of_float 1.0) ])
          ~data
      in
      let r = B.synthesize ~config:{ B.default_config with epsilon = 0.05 } prob in
      List.for_all (fun b -> not (I.mem k_true (Box.find "k" b))) r.B.inconsistent)

let qcheck_tests = List.map QCheck_alcotest.to_alcotest [ prop_truth_never_inconsistent ]

let () =
  Alcotest.run "synth"
    [
      ( "data",
        [
          Alcotest.test_case "validation" `Quick test_data_validation;
          Alcotest.test_case "accessors" `Quick test_data_accessors;
          Alcotest.test_case "trace consistency" `Quick test_data_trace_consistency;
          Alcotest.test_case "synthetic generation" `Quick test_synthetic_data;
        ] );
      ( "biopsy",
        [
          Alcotest.test_case "problem validation" `Quick test_problem_validation;
          Alcotest.test_case "brackets the truth" `Quick test_synthesize_brackets_truth;
          Alcotest.test_case "falsification" `Quick test_falsification;
          Alcotest.test_case "fit recovers truth" `Quick test_fit_recovers_truth;
          Alcotest.test_case "two parameters" `Slow test_two_parameter_synthesis;
          Alcotest.test_case "epsilon refinement" `Slow test_undecided_shrinks_with_epsilon;
        ] );
      ("properties", qcheck_tests);
    ]
