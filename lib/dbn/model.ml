(* Factored dynamic Bayesian network abstraction of ODE dynamics.

   This implements the paper's proposed extension (Conclusion; the
   technique of its refs [3]-[5]): the continuous dynamics are sampled on
   a time grid, each variable's range is discretized into cells, and for
   every time slice a conditional probability table records how each
   variable's next cell depends on the current cells of its *parents* —
   the variables appearing in its right-hand side.  The factored
   structure keeps the table sizes |cells|^(|parents|+1) instead of
   exponential in the full dimension.

   CPTs are time-slice-indexed (biopathway dynamics are far from
   time-homogeneous on the horizons of interest). *)

module SMap = Map.Make (String)

type cpt_key = int list
(* parent cell indices, in parent order *)

type slice_table = (cpt_key, float array) Hashtbl.t
(* parent cells -> distribution over the child's next cell *)

type node = {
  nvar : string;
  parents : string list;  (* always includes nvar itself, first *)
  slices : slice_table array;  (* one table per time step *)
}

type t = {
  grid : Grid.t;
  dt : float;  (* slice duration *)
  horizon : float;
  nodes : node list;
  samples_used : int;
}

let grid m = m.grid
let slice_count m = Array.length (List.hd m.nodes).slices
let dt m = m.dt

(* Parent set of a variable: itself plus the state variables mentioned in
   its equation (independent-parents approximation for everything else). *)
let parents_of sys v =
  let rhs = Ode.System.rhs_of sys v in
  let vars = Ode.System.vars sys in
  let mentioned =
    List.filter
      (fun u -> (not (String.equal u v)) && Expr.Term.mentions u rhs)
      vars
  in
  v :: mentioned

(* ---- Learning from sampled trajectories ---- *)

type learn_config = {
  samples : int;
  seed : int;
  method_ : Ode.Integrate.method_;
}

let default_learn = { samples = 2000; seed = 11; method_ = Ode.Integrate.default_rkf45 }

let smooth = 0.5 (* Laplace smoothing pseudo-count *)

let normalize counts =
  let total = Array.fold_left ( +. ) 0.0 counts in
  if total <= 0.0 then
    Array.make (Array.length counts) (1.0 /. float_of_int (Array.length counts))
  else Array.map (fun c -> c /. total) counts

(* Learn the DBN of [sys] over [grid] with [slices] time steps of
   duration [horizon/slices], sampling initial states and parameters from
   the given distributions. *)
let learn ?(config = default_learn) ~grid ~slices ~horizon ~init_dist ~param_dist sys =
  if slices < 1 then invalid_arg "Dbn.learn: need at least one slice";
  if horizon <= 0.0 then invalid_arg "Dbn.learn: positive horizon required";
  List.iter
    (fun v ->
      if not (List.mem v (Grid.vars grid)) then
        invalid_arg (Printf.sprintf "Dbn.learn: grid misses state variable %S" v))
    (Ode.System.vars sys);
  let dt = horizon /. float_of_int slices in
  let vars = Ode.System.vars sys in
  let nodes_spec = List.map (fun v -> (v, parents_of sys v)) vars in
  let tables =
    List.map (fun (v, ps) -> (v, ps, Array.init slices (fun _ -> Hashtbl.create 64)))
      nodes_spec
  in
  let rng = Random.State.make [| config.seed |] in
  for _ = 1 to config.samples do
    let init = Smc.Sampler.sample rng init_dist in
    let params = Smc.Sampler.sample rng param_dist in
    let trace =
      Ode.Integrate.simulate ~method_:config.method_ ~params ~init ~t_end:horizon sys
    in
    (* cell indices at every slice boundary *)
    let cells_at k =
      let st = Ode.Integrate.state_at trace (dt *. float_of_int k) in
      List.mapi (fun j v -> (v, Grid.locate_var grid v st.(j))) vars
    in
    let prev = ref (cells_at 0) in
    for k = 1 to slices do
      let cur = cells_at k in
      List.iter
        (fun (v, ps, slice_tables) ->
          let key = List.map (fun p -> List.assoc p !prev) ps in
          let next_cell = List.assoc v cur in
          let table = slice_tables.(k - 1) in
          let counts =
            match Hashtbl.find_opt table key with
            | Some c -> c
            | None ->
                let c = Array.make (Grid.cells_of grid v) smooth in
                Hashtbl.replace table key c;
                c
          in
          counts.(next_cell) <- counts.(next_cell) +. 1.0)
        tables;
      prev := cur
    done
  done;
  (* normalize counts into distributions *)
  let nodes =
    List.map
      (fun (v, ps, slice_tables) ->
        Array.iter
          (fun table ->
            Hashtbl.iter (fun key counts -> Hashtbl.replace table key (normalize counts)) table)
          slice_tables;
        { nvar = v; parents = ps; slices = slice_tables })
      tables
  in
  { grid; dt; horizon; nodes; samples_used = config.samples }

(* ---- Factored-frontier inference ----

   Belief state = independent marginal per variable (the fully factored
   approximation of the hybrid factored frontier algorithm the paper
   cites).  Propagation: the next marginal of v is the CPT applied to the
   product of its parents' current marginals; unseen parent combinations
   fall back to "stay in place". *)

type belief = float array SMap.t

let uniform_belief m : belief =
  List.fold_left
    (fun acc v ->
      let n = Grid.cells_of m.grid v in
      SMap.add v (Array.make n (1.0 /. float_of_int n)) acc)
    SMap.empty (Grid.vars m.grid)

(* Belief from a sampler spec: histogram of drawn values. *)
let belief_of_dist ?(samples = 10_000) ?(seed = 3) m spec : belief =
  let rng = Random.State.make [| seed |] in
  let hists =
    List.fold_left
      (fun acc v -> SMap.add v (Array.make (Grid.cells_of m.grid v) 0.0) acc)
      SMap.empty (Grid.vars m.grid)
  in
  for _ = 1 to samples do
    let env = Smc.Sampler.sample rng spec in
    List.iter
      (fun v ->
        match List.assoc_opt v env with
        | Some x ->
            let h = SMap.find v hists in
            let i = Grid.locate_var m.grid v x in
            h.(i) <- h.(i) +. 1.0
        | None -> ())
      (Grid.vars m.grid)
  done;
  SMap.map normalize hists

(* Enumerate parent-cell assignments with their (factored) probabilities. *)
let rec assignments grid belief = function
  | [] -> [ ([], 1.0) ]
  | p :: rest ->
      let marg = SMap.find p belief in
      let tails = assignments grid belief rest in
      List.concat_map
        (fun (cells, prob) ->
          List.filteri (fun _ _ -> true)
            (List.init (Array.length marg) (fun i ->
                 (i :: cells, prob *. marg.(i))))
          |> List.filter (fun (_, p) -> p > 0.0))
        tails

let step m (belief : belief) k : belief =
  List.fold_left
    (fun acc node ->
      let n = Grid.cells_of m.grid node.nvar in
      let out = Array.make n 0.0 in
      let table = node.slices.(k) in
      List.iter
        (fun (key, prob) ->
          match Hashtbl.find_opt table key with
          | Some dist -> Array.iteri (fun j p -> out.(j) <- out.(j) +. (prob *. p)) dist
          | None -> (
              (* unseen parent combination: assume the variable stays *)
              match key with
              | self :: _ -> out.(self) <- out.(self) +. prob
              | [] -> ()))
        (assignments m.grid belief node.parents);
      SMap.add node.nvar (normalize out) acc)
    belief m.nodes

(* Marginals of every variable at each slice boundary, starting from the
   given initial belief. *)
let propagate m ~init_belief =
  let slices = slice_count m in
  let rec go k belief acc =
    if k >= slices then List.rev (belief :: acc)
    else go (k + 1) (step m belief k) (belief :: acc)
  in
  go 0 init_belief []

(* P(pred(v) at time t) under the factored belief. *)
let probability m ~init_belief ~var ~time pred =
  let beliefs = propagate m ~init_belief in
  let k =
    Stdlib.max 0
      (Stdlib.min (List.length beliefs - 1) (int_of_float (Float.round (time /. m.dt))))
  in
  let belief = List.nth beliefs k in
  let marg = SMap.find var belief in
  let cells = Grid.cells_where m.grid var pred in
  List.fold_left (fun acc i -> acc +. marg.(i)) 0.0 cells

let pp ppf m =
  Fmt.pf ppf "DBN: %d slices of %.3g, %d samples;@ grid %a" (slice_count m) m.dt
    m.samples_used Grid.pp m.grid
