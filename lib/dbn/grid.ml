(* Discretization grids: each variable's range is split into equal-width
   cells; a continuous state maps to a vector of cell indices.

   The DBN abstraction (the paper's conclusion / refs [3]-[5]) replaces
   continuous dynamics by cell-to-cell transition probabilities, so the
   grid is the abstraction's resolution knob. *)

module I = Interval.Ia

type axis = {
  var : string;
  lo : float;
  hi : float;
  cells : int;
}

type t = axis list

let axis ~var ~lo ~hi ~cells =
  if cells < 1 then invalid_arg "Grid.axis: need at least one cell";
  if not (lo < hi) then invalid_arg "Grid.axis: empty range";
  { var; lo; hi; cells }

let create axes : t =
  let names = List.map (fun a -> a.var) axes in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Grid.create: duplicate variable";
  axes

let vars (g : t) = List.map (fun a -> a.var) g

let find (g : t) v =
  match List.find_opt (fun a -> String.equal a.var v) g with
  | Some a -> a
  | None -> invalid_arg (Printf.sprintf "Grid.find: no axis for %S" v)

let cells_of (g : t) v = (find g v).cells

(* Cell index of a value (clamped to the grid). *)
let locate axis x =
  if Float.is_nan x then invalid_arg "Grid.locate: NaN";
  let w = (axis.hi -. axis.lo) /. float_of_int axis.cells in
  let i = int_of_float (Float.floor ((x -. axis.lo) /. w)) in
  Stdlib.max 0 (Stdlib.min (axis.cells - 1) i)

let locate_var (g : t) v x = locate (find g v) x

(* The interval covered by a cell. *)
let cell_interval axis i =
  if i < 0 || i >= axis.cells then invalid_arg "Grid.cell_interval: out of range";
  let w = (axis.hi -. axis.lo) /. float_of_int axis.cells in
  I.make (axis.lo +. (w *. float_of_int i)) (axis.lo +. (w *. float_of_int (i + 1)))

let cell_mid axis i = I.mid (cell_interval axis i)

(* Discretize a full environment in grid order. *)
let locate_env (g : t) env =
  List.map
    (fun a ->
      match List.assoc_opt a.var env with
      | Some x -> locate a x
      | None -> invalid_arg (Printf.sprintf "Grid.locate_env: missing %S" a.var))
    g

(* Cells of [v] whose interval intersects [pred]'s satisfying set —
   approximated by midpoint membership. *)
let cells_where (g : t) v pred =
  let a = find g v in
  List.filter (fun i -> pred (cell_mid a i)) (List.init a.cells Fun.id)

let pp ppf (g : t) =
  let pp_axis ppf a = Fmt.pf ppf "%s: [%g, %g] / %d" a.var a.lo a.hi a.cells in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_axis) g
