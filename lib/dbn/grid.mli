(** Discretization grids for the DBN abstraction: each variable's range is
    split into equal-width cells. *)

type axis = { var : string; lo : float; hi : float; cells : int }
type t = axis list

val axis : var:string -> lo:float -> hi:float -> cells:int -> axis
(** @raise Invalid_argument on an empty range or no cells. *)

val create : axis list -> t
(** @raise Invalid_argument on duplicate variables. *)

val vars : t -> string list
val find : t -> string -> axis
val cells_of : t -> string -> int

val locate : axis -> float -> int
(** Cell index of a value, clamped to the grid.
    @raise Invalid_argument on NaN. *)

val locate_var : t -> string -> float -> int
val cell_interval : axis -> int -> Interval.Ia.t
val cell_mid : axis -> int -> float
val locate_env : t -> (string * float) list -> int list

val cells_where : t -> string -> (float -> bool) -> int list
(** Cells whose midpoint satisfies the predicate. *)

val pp : t Fmt.t
