(** Factored dynamic Bayesian network abstraction of ODE dynamics — the
    probabilistic extension the paper's conclusion proposes (the
    CMSB'09 / Bioinformatics'12 technique of its refs [3]–[5]).

    The dynamics are sampled on a time grid; per time slice, a CPT
    records how each variable's next cell depends on the current cells of
    its *parents* (the variables in its right-hand side).  Inference uses
    the fully factored belief-state approximation (factored frontier). *)

module SMap : Map.S with type key = string

type t

val grid : t -> Grid.t
val slice_count : t -> int
val dt : t -> float

val parents_of : Ode.System.t -> string -> string list
(** The variable itself followed by the state variables its equation
    mentions. *)

(** {1 Learning} *)

type learn_config = {
  samples : int;
  seed : int;
  method_ : Ode.Integrate.method_;
}

val default_learn : learn_config

val learn :
  ?config:learn_config ->
  grid:Grid.t ->
  slices:int ->
  horizon:float ->
  init_dist:Smc.Sampler.spec ->
  param_dist:Smc.Sampler.spec ->
  Ode.System.t ->
  t
(** Estimate the slice-indexed CPTs from sampled trajectories (Laplace
    smoothing 0.5).
    @raise Invalid_argument on a bad slice count/horizon or a state
    variable without a grid axis. *)

(** {1 Inference} *)

type belief = float array SMap.t
(** Fully factored belief state: one marginal per variable. *)

val uniform_belief : t -> belief
val belief_of_dist : ?samples:int -> ?seed:int -> t -> Smc.Sampler.spec -> belief

val step : t -> belief -> int -> belief
(** One factored-frontier propagation through slice [k]. *)

val propagate : t -> init_belief:belief -> belief list
(** Beliefs at every slice boundary (first element = initial belief). *)

val probability :
  t -> init_belief:belief -> var:string -> time:float -> (float -> bool) -> float
(** P(pred(var) at the slice boundary nearest [time]). *)

val pp : t Fmt.t
