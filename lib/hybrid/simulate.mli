(** Simulation of hybrid automata trajectories (Definitions 8–10).

    Trajectories follow the hybrid time domain: a sequence of segments,
    one per visited mode, each with a continuous trace on a local clock
    (what guards and invariants see) while global time accumulates.

    Jump semantics are urgent and deterministic: after each accepted
    integration step the enabled jumps are inspected in declaration order
    and the first enabled one is taken, with the crossing localized by
    bisection. *)

type segment = {
  seg_mode : string;
  t_global : float;  (** global time at mode entry *)
  trace : Ode.Integrate.trace;  (** local clock starting at 0 *)
}

type stop_reason =
  | Time_exhausted
  | Jump_budget
  | Stuck  (** invariant violated with no enabled jump *)
  | Blow_up
  | Zeno  (** many consecutive jumps with (near-)zero dwell time *)

type trajectory = {
  segments : segment list;
  path : string list;  (** visited modes in order *)
  final_mode : string;
  final_env : (string * float) list;
  total_time : float;
  reason : stop_reason;
}

val pp_stop_reason : stop_reason Fmt.t

val simulate :
  ?method_:Ode.Integrate.method_ ->
  ?max_jumps:int ->
  ?event_tol:float ->
  ?zeno_dwell:float ->
  ?zeno_limit:int ->
  params:(string * float) list ->
  init:(string * float) list ->
  t_end:float ->
  Automaton.t ->
  trajectory
(** Simulate from the automaton's initial box midpoint; entries in [init]
    override individual initial values.
    @raise Invalid_argument on an unbound parameter. *)

val simulate_default :
  ?method_:Ode.Integrate.method_ ->
  ?max_jumps:int ->
  ?event_tol:float ->
  params:(string * float) list ->
  t_end:float ->
  Automaton.t ->
  trajectory

val value_at : trajectory -> string -> float -> float option
(** Value of a variable at a global time ([None] outside the domain). *)

val sample : trajectory -> string -> n:int -> (float * float option) list
(** [n] evenly spaced (global time, value) samples. *)

val to_csv : trajectory -> string
(** CSV on the global time axis with the mode name as the last column. *)

val pp_trajectory : trajectory Fmt.t
