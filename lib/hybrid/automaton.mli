(** Parameterized hybrid automata (Definitions 6, 7 and 12 of the paper).

    H = ⟨X, Q, flow, jump, inv, init⟩ with an L_RF representation: flows
    are ODE right-hand sides, guards / invariants are quantifier-free
    formulas over vars ∪ params ∪ t (t = local time in the mode), and the
    initial condition is a box.  Parameters (Def. 12) are free names
    shared by every component; they can be synthesized by {!Reach} or
    fixed with {!bind_params}. *)

module SSet = Expr.Term.SSet
module Box = Interval.Box

type mode = {
  mode_name : string;
  flow : (string * Expr.Term.t) list;
  invariant : Expr.Formula.t;
      (** must-semantics: the mode cannot be sustained once violated *)
}

type jump = {
  source : string;
  target : string;
  guard : Expr.Formula.t;
  reset : (string * Expr.Term.t) list;  (** omitted variables carry over *)
}

type t

(** {1 Accessors} *)

val vars : t -> string list
val params : t -> string list
val modes : t -> mode list
val jumps : t -> jump list
val init_mode : t -> string
val init_box : t -> Box.t
val mode_names : t -> string list
val dim : t -> int

val find_mode : t -> string -> mode
(** @raise Invalid_argument on an unknown mode. *)

val jumps_from : t -> string -> jump list

(** {1 Construction} *)

val mode :
  name:string ->
  flow:(string * Expr.Term.t) list ->
  ?invariant:Expr.Formula.t ->
  unit ->
  mode

val jump :
  source:string ->
  target:string ->
  guard:Expr.Formula.t ->
  ?reset:(string * Expr.Term.t) list ->
  unit ->
  jump

val create :
  vars:string list ->
  params:string list ->
  modes:mode list ->
  jumps:jump list ->
  init_mode:string ->
  init:Box.t ->
  t
(** Validates mode-name uniqueness, flow completeness, name scoping of
    every formula and reset, jump endpoints, and init coverage.
    @raise Invalid_argument on any violation. *)

val of_system :
  ?mode_name:string -> ?invariant:Expr.Formula.t -> init:Box.t -> Ode.System.t -> t
(** Single-mode automaton from an ODE system — the degenerate case used
    for plain ODE models in the framework. *)

(** {1 Derived views} *)

val mode_system : t -> string -> Ode.System.t
(** The continuous dynamics of one mode as an ODE system. *)

val bind_params : (string * float) list -> t -> t
(** Substitute fixed values for (a subset of) the parameters, everywhere. *)

val pp : t Fmt.t
