(** The discrete structure of a hybrid automaton: its mode graph.

    Used by the bounded reachability checker to enumerate candidate mode
    paths and prune modes that cannot reach the goal. *)

module SMap : Map.S with type key = string
module SSet : Set.S with type elt = string

type t

val of_automaton : Automaton.t -> t
val successors : t -> string -> string list
val predecessors : t -> string -> string list
val reachable_from : t -> string -> SSet.t
val co_reachable_to : t -> string list -> SSet.t

val paths : ?targets:string list -> max_jumps:int -> t -> source:string -> string list list
(** All mode paths from [source] with at most [max_jumps] jumps; when
    [targets] is given, only paths ending in a target are returned and
    the search is restricted to modes co-reachable from the targets. *)

val paths_of_length :
  ?targets:string list -> jumps:int -> t -> source:string -> string list list
(** Paths with exactly [jumps] jumps. *)

val pp : t Fmt.t
