(* Simulation of hybrid automata trajectories (Definitions 8–10).

   The trajectory is organised along the hybrid time domain: a sequence of
   segments, one per visited mode, each carrying a continuous trace whose
   local clock starts at 0 (the "t" the guards and invariants see) while
   global time accumulates across segments.

   Jump semantics are *urgent and deterministic*: after every accepted
   integration step, the enabled jumps are inspected in declaration order
   and the first enabled one is taken (its crossing localized by
   bisection).  If the invariant fails with no enabled jump, the
   trajectory is stuck. *)

module F = Expr.Formula

type segment = {
  seg_mode : string;
  t_global : float;  (** global time when this mode was entered *)
  trace : Ode.Integrate.trace;  (** local time axis, starts at 0 *)
}

type stop_reason =
  | Time_exhausted  (** reached the global time horizon *)
  | Jump_budget  (** reached the maximum number of jumps *)
  | Stuck  (** invariant violated with no enabled jump *)
  | Blow_up  (** integration diverged *)
  | Zeno  (** many consecutive jumps with (near-)zero dwell time *)

type trajectory = {
  segments : segment list;  (* in visit order *)
  path : string list;  (* visited modes, same order *)
  final_mode : string;
  final_env : (string * float) list;  (* state variables only *)
  total_time : float;
  reason : stop_reason;
}

let pp_stop_reason ppf r =
  Fmt.string ppf
    (match r with
    | Time_exhausted -> "time exhausted"
    | Jump_budget -> "jump budget"
    | Stuck -> "stuck"
    | Blow_up -> "blow-up"
    | Zeno -> "zeno (instantaneous jump loop)")

let state_env vars y = List.mapi (fun j v -> (v, y.(j))) vars

(* Find trajectory value of a variable at a global time. *)
let value_at traj x t_global =
  let rec go = function
    | [] -> None
    | seg :: rest ->
        let t_end = seg.t_global +. Ode.Integrate.final_time seg.trace in
        let next_start = match rest with s :: _ -> s.t_global | [] -> infinity in
        if t_global < seg.t_global then None
        else if t_global <= t_end || t_global < next_start then
          Some (Ode.Integrate.value_at seg.trace x (t_global -. seg.t_global))
        else go rest
  in
  go traj.segments

(* Sample a variable at [n] evenly spaced global times. *)
let sample traj x ~n =
  let t_max = traj.total_time in
  List.init n (fun i ->
      let t = t_max *. float_of_int i /. float_of_int (Stdlib.max 1 (n - 1)) in
      (t, value_at traj x t))

let simulate ?(method_ = Ode.Integrate.default_rkf45) ?(max_jumps = 50)
    ?(event_tol = 1e-9) ?(zeno_dwell = 1e-9) ?(zeno_limit = 8) ~params ~init ~t_end
    (h : Automaton.t) =
  let vars = Automaton.vars h in
  List.iter
    (fun p ->
      if not (List.mem_assoc p params) then
        invalid_arg (Printf.sprintf "Simulate: parameter %S not bound" p))
    (Automaton.params h);
  let full_env t y = ((Ode.System.time_var, t) :: params) @ state_env vars y in
  let rec run mode_name y t_global jumps_taken zeno_count segments path =
    let m = Automaton.find_mode h mode_name in
    let sys = Automaton.mode_system h mode_name in
    let out_jumps = Automaton.jumps_from h mode_name in
    (* Stop integrating this mode when a guard fires or the invariant
       breaks (both checked on the local clock). *)
    let guard_formula =
      F.or_ (List.map (fun (j : Automaton.jump) -> j.guard) out_jumps)
    in
    let stop_formula = F.or_ [ guard_formula; F.neg m.invariant ] in
    let init_env = state_env vars y in
    let budget = t_end -. t_global in
    let trace, event =
      Ode.Integrate.simulate_until ~method_ ~tol:event_tol ~params ~init:init_env
        ~t_end:budget ~guard:stop_formula sys
    in
    let segment = { seg_mode = mode_name; t_global; trace } in
    let segments = segment :: segments in
    let finish reason final_y final_t =
      {
        segments = List.rev segments;
        path = List.rev path;
        final_mode = mode_name;
        final_env = state_env vars final_y;
        total_time = final_t;
        reason;
      }
    in
    match event with
    | None ->
        let y_final = Ode.Integrate.final_state trace in
        let t_final = t_global +. Ode.Integrate.final_time trace in
        if Ode.Integrate.final_time trace < budget -. 1e-9 then
          finish Blow_up y_final t_final
        else finish Time_exhausted y_final t_final
    | Some ev ->
        let t_local = ev.Ode.Integrate.time and y_ev = ev.Ode.Integrate.state in
        let env = full_env t_local y_ev in
        let enabled =
          List.find_opt (fun (j : Automaton.jump) -> F.holds_env env j.guard) out_jumps
        in
        let t_now = t_global +. t_local in
        (match enabled with
        | None ->
            (* Stopped because the invariant failed. *)
            finish Stuck y_ev t_now
        | Some j ->
            let zeno_count = if t_local < zeno_dwell then zeno_count + 1 else 0 in
            if jumps_taken >= max_jumps then finish Jump_budget y_ev t_now
            else if zeno_count >= zeno_limit then finish Zeno y_ev t_now
            else begin
              (* Apply the reset; unlisted variables carry over. *)
              let y' =
                Array.of_list
                  (List.map
                     (fun v ->
                       match List.assoc_opt v j.reset with
                       | Some term -> Expr.Term.eval_env env term
                       | None -> List.assoc v env)
                     vars)
              in
              run j.target y' t_now (jumps_taken + 1) zeno_count segments
                (j.target :: path)
            end)
  in
  let y0 =
    Array.of_list
      (List.map
         (fun v -> Interval.Ia.mid (Interval.Box.find v (Automaton.init_box h)))
         vars)
  in
  let y0 =
    (* Allow the caller to override initial values. *)
    Array.of_list
      (List.mapi
         (fun i v -> match List.assoc_opt v init with Some x -> x | None -> y0.(i))
         vars)
  in
  run (Automaton.init_mode h) y0 0.0 0 0 [] [ Automaton.init_mode h ]

(* Convenience: simulate from the automaton's own initial box midpoint. *)
let simulate_default ?method_ ?max_jumps ?event_tol ~params ~t_end h =
  simulate ?method_ ?max_jumps ?event_tol ~params ~init:[] ~t_end h

(* CSV of the whole trajectory on the global time axis, with the mode
   name as the last column. *)
let to_csv traj =
  let buf = Buffer.create 4096 in
  (match traj.segments with
  | [] -> ()
  | seg :: _ ->
      let vars = seg.trace.Ode.Integrate.vars in
      Buffer.add_string buf (String.concat "," (("t" :: vars) @ [ "mode" ]));
      Buffer.add_char buf '\n';
      List.iter
        (fun seg ->
          let tr = seg.trace in
          Array.iteri
            (fun i t_local ->
              Buffer.add_string buf
                (Printf.sprintf "%.9g" (seg.t_global +. t_local));
              Array.iter
                (fun v -> Buffer.add_string buf (Printf.sprintf ",%.9g" v))
                tr.Ode.Integrate.states.(i);
              Buffer.add_string buf (Printf.sprintf ",%s\n" seg.seg_mode))
            tr.Ode.Integrate.times)
        traj.segments);
  Buffer.contents buf

let pp_trajectory ppf traj =
  Fmt.pf ppf "@[<v>path: %a@ time: %g@ final (%s): %a@ stop: %a@]"
    Fmt.(list ~sep:(any " -> ") string) traj.path traj.total_time traj.final_mode
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float)) traj.final_env
    pp_stop_reason traj.reason
