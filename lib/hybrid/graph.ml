(* Discrete structure of a hybrid automaton: the mode graph.

   Used by the bounded reachability checker to enumerate candidate mode
   paths (sequences of discrete jumps) instead of blindly unrolling, and
   to prune modes that cannot reach the goal. *)

module SMap = Map.Make (String)
module SSet = Set.Make (String)

type t = {
  nodes : string list;
  succ : string list SMap.t;
  pred : string list SMap.t;
}

let of_automaton (h : Automaton.t) =
  let nodes = Automaton.mode_names h in
  let add key v m =
    SMap.update key
      (function Some l when List.mem v l -> Some l | Some l -> Some (v :: l) | None -> Some [ v ])
      m
  in
  let succ, pred =
    List.fold_left
      (fun (s, p) (j : Automaton.jump) -> (add j.source j.target s, add j.target j.source p))
      (SMap.empty, SMap.empty) (Automaton.jumps h)
  in
  { nodes; succ; pred }

let successors g q = match SMap.find_opt q g.succ with Some l -> l | None -> []
let predecessors g q = match SMap.find_opt q g.pred with Some l -> l | None -> []

(* Fixpoint of a step relation from a seed set. *)
let closure step seeds =
  let rec go frontier seen =
    match frontier with
    | [] -> seen
    | q :: rest ->
        let fresh = List.filter (fun q' -> not (SSet.mem q' seen)) (step q) in
        go (fresh @ rest) (List.fold_left (fun s q' -> SSet.add q' s) seen fresh)
  in
  go seeds (SSet.of_list seeds)

let reachable_from g q = closure (successors g) [ q ]
let co_reachable_to g qs = closure (predecessors g) qs

(* All mode paths starting at [source] with at most [max_jumps] jumps,
   optionally restricted to paths ending in [targets] and to modes that
   can still reach a target (co-reachability pruning). *)
let paths ?targets ~max_jumps g ~source =
  let relevant =
    match targets with
    | None -> SSet.of_list g.nodes
    | Some ts -> co_reachable_to g ts
  in
  let is_target q = match targets with None -> true | Some ts -> List.mem q ts in
  let rec extend path q budget acc =
    let acc = if is_target q then List.rev path :: acc else acc in
    if budget = 0 then acc
    else
      List.fold_left
        (fun acc q' ->
          if SSet.mem q' relevant then extend (q' :: path) q' (budget - 1) acc else acc)
        acc (successors g q)
  in
  if SSet.mem source relevant || is_target source then
    List.rev (extend [ source ] source max_jumps [])
  else []

(* Paths of exactly [jumps] jumps. *)
let paths_of_length ?targets ~jumps g ~source =
  List.filter (fun p -> List.length p = jumps + 1) (paths ?targets ~max_jumps:jumps g ~source)

let pp ppf g =
  let edge ppf q =
    Fmt.pf ppf "%s -> {%a}" q Fmt.(list ~sep:comma string) (successors g q)
  in
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut edge) g.nodes
