(* Parameterized hybrid automata (Definitions 6, 7 and 12 of the paper).

   H = ⟨X, Q, flow, jump, inv, init⟩ with an L_RF representation: flows
   are ODE right-hand sides over terms, and guards / invariants / initial
   conditions are quantifier-free L_RF formulas.  Parameters ~p (Def. 12)
   appear as free names shared by all components. *)

module SSet = Expr.Term.SSet
module Box = Interval.Box

type mode = {
  mode_name : string;
  flow : (string * Expr.Term.t) list;  (** d var / dt, one entry per state var *)
  invariant : Expr.Formula.t;  (** over vars ∪ params ∪ t *)
}

type jump = {
  source : string;
  target : string;
  guard : Expr.Formula.t;  (** over vars ∪ params ∪ t (t = time in mode) *)
  reset : (string * Expr.Term.t) list;  (** omitted variables are unchanged *)
}

type t = {
  vars : string list;
  params : string list;
  modes : mode list;
  jumps : jump list;
  init_mode : string;
  init : Box.t;  (** box over [vars]; singleton components give point inits *)
}

let vars h = h.vars
let params h = h.params
let modes h = h.modes
let jumps h = h.jumps
let init_mode h = h.init_mode
let init_box h = h.init
let mode_names h = List.map (fun m -> m.mode_name) h.modes
let dim h = List.length h.vars

let find_mode h name =
  match List.find_opt (fun m -> String.equal m.mode_name name) h.modes with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Automaton.find_mode: unknown mode %S" name)

let jumps_from h name = List.filter (fun j -> String.equal j.source name) h.jumps

let mode ~name ~flow ?(invariant = Expr.Formula.tt) () =
  { mode_name = name; flow; invariant }

let jump ~source ~target ~guard ?(reset = []) () = { source; target; guard; reset }

let check_scope ~what ~allowed names =
  SSet.iter
    (fun x ->
      if not (SSet.mem x allowed) then
        invalid_arg (Printf.sprintf "Automaton.create: unbound name %S in %s" x what))
    names

let create ~vars ~params ~modes ~jumps ~init_mode ~init =
  let var_set = SSet.of_list vars in
  let scope =
    SSet.add Ode.System.time_var (SSet.union var_set (SSet.of_list params))
  in
  if modes = [] then invalid_arg "Automaton.create: no modes";
  let names = List.map (fun m -> m.mode_name) modes in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Automaton.create: duplicate mode name";
  if not (List.mem init_mode names) then
    invalid_arg (Printf.sprintf "Automaton.create: unknown initial mode %S" init_mode);
  List.iter
    (fun m ->
      List.iter
        (fun v ->
          if not (List.mem_assoc v m.flow) then
            invalid_arg
              (Printf.sprintf "Automaton.create: mode %S misses flow for %S" m.mode_name v))
        vars;
      List.iter
        (fun (v, term) ->
          if not (SSet.mem v var_set) then
            invalid_arg
              (Printf.sprintf "Automaton.create: mode %S has flow for non-state %S"
                 m.mode_name v);
          check_scope
            ~what:(Printf.sprintf "flow of %S in mode %S" v m.mode_name)
            ~allowed:scope (Expr.Term.free_vars term))
        m.flow;
      check_scope
        ~what:(Printf.sprintf "invariant of mode %S" m.mode_name)
        ~allowed:scope
        (Expr.Formula.free_vars m.invariant))
    modes;
  List.iter
    (fun j ->
      if not (List.mem j.source names) then
        invalid_arg (Printf.sprintf "Automaton.create: jump from unknown mode %S" j.source);
      if not (List.mem j.target names) then
        invalid_arg (Printf.sprintf "Automaton.create: jump to unknown mode %S" j.target);
      check_scope
        ~what:(Printf.sprintf "guard of jump %s -> %s" j.source j.target)
        ~allowed:scope
        (Expr.Formula.free_vars j.guard);
      List.iter
        (fun (v, term) ->
          if not (SSet.mem v var_set) then
            invalid_arg
              (Printf.sprintf "Automaton.create: reset of non-state %S in %s -> %s" v
                 j.source j.target);
          check_scope
            ~what:(Printf.sprintf "reset of %S in jump %s -> %s" v j.source j.target)
            ~allowed:scope (Expr.Term.free_vars term))
        j.reset)
    jumps;
  List.iter
    (fun v ->
      if not (Box.mem_var v init) then
        invalid_arg (Printf.sprintf "Automaton.create: init misses variable %S" v))
    vars;
  { vars; params; modes; jumps; init_mode; init }

(* The continuous dynamics of one mode as an ODE system. *)
let mode_system h name =
  let m = find_mode h name in
  Ode.System.create ~vars:h.vars ~params:h.params ~rhs:m.flow

(* A single-mode automaton from an ODE system — the degenerate case used
   for plain ODE models in the framework. *)
let of_system ?(mode_name = "m0") ?(invariant = Expr.Formula.tt) ~init sys =
  {
    vars = Ode.System.vars sys;
    params = Ode.System.params sys;
    modes = [ { mode_name; flow = Ode.System.rhs sys; invariant } ];
    jumps = [];
    init_mode = mode_name;
    init;
  }

(* Substitute fixed values for (a subset of) parameters. *)
let bind_params env h =
  let bindings = List.map (fun (p, v) -> (p, Expr.Term.const v)) env in
  let remaining = List.filter (fun p -> not (List.mem_assoc p env)) h.params in
  {
    h with
    params = remaining;
    modes =
      List.map
        (fun m ->
          {
            m with
            flow = List.map (fun (v, t) -> (v, Expr.Term.subst bindings t)) m.flow;
            invariant = Expr.Formula.subst bindings m.invariant;
          })
        h.modes;
    jumps =
      List.map
        (fun j ->
          {
            j with
            guard = Expr.Formula.subst bindings j.guard;
            reset = List.map (fun (v, t) -> (v, Expr.Term.subst bindings t)) j.reset;
          })
        h.jumps;
  }

let pp ppf h =
  let pp_mode ppf m =
    Fmt.pf ppf "@[<v2>mode %s:@ inv: %a@ %a@]" m.mode_name Expr.Formula.pp m.invariant
      Fmt.(list ~sep:cut (fun ppf (v, t) -> Fmt.pf ppf "d%s/dt = %a" v Expr.Term.pp t))
      m.flow
  in
  let pp_jump ppf j =
    Fmt.pf ppf "@[%s -> %s when %a@]" j.source j.target Expr.Formula.pp j.guard
  in
  Fmt.pf ppf "@[<v>vars: %a@ params: %a@ %a@ %a@ init: %s %a@]"
    Fmt.(list ~sep:sp string) h.vars
    Fmt.(list ~sep:sp string) h.params
    Fmt.(list ~sep:cut pp_mode) h.modes
    Fmt.(list ~sep:cut pp_jump) h.jumps
    h.init_mode Box.pp h.init
