(* δ-decision of bounded reachability and parameter synthesis
   (Definitions 11 and 13 of the paper; the dReach-equivalent).

   For each candidate mode path the checker runs a branch-and-prune search
   over the *search box* — the parameter box joined with every
   non-singleton dimension of the initial state box.  A box is evaluated
   by propagating a flow enclosure along the path:

     X_0  --flow q_0-->  guard window  --reset-->  X_1  --flow q_1--> ...

   If at some step the jump guard is never enabled, or the goal predicate
   is false throughout the final mode, the box is pruned (unsat
   direction).  Surviving boxes are *certified* by numerically simulating
   the path at sampled points and checking the δ-weakened goal; failing
   certification the box is split, and sub-ε boxes yield Unknown (we do
   not claim one-sided δ-sat without a point witness here, because the
   flow enclosures are not always rigorous — see below).

   Flow enclosures come in two strengths:
   - a *validated tube* (Ode.Enclosure) — rigorous, used whenever it
     stays tight;
   - an *ensemble bracket* — when the validated tube blows up (stiff
     cardiac dynamics make single-shot interval Taylor methods explode,
     a known limitation), the checker hulls a deterministic ensemble of
     numerical trajectories over time windows and inflates the hull.
     Verdicts that relied on a bracket carry [rigorous = false]: they
     are high-confidence numerical claims, not proofs.  EXPERIMENTS.md
     reports the flag for every experiment. *)

module I = Interval.Ia
module Box = Interval.Box
module F = Expr.Formula
module T = Expr.Term

let src = Logs.Src.create "reach.checker" ~doc:"bounded reachability"
module Log = (val Logs.src_log src : Logs.LOG)

(* Reachability telemetry.  Path unrolling is traced per (mode, depth):
   each flow segment gets a span whose payload is its depth along the
   path, nested under the per-path span (payload: path length), nested
   under the whole check.  Counters record how many candidate paths and
   flow segments were evaluated and how often the validated tube was
   replaced by the non-rigorous ensemble bracket. *)
let tm_check = Telemetry.Span.probe "reach.check"
let tm_synth = Telemetry.Span.probe "reach.synthesize"
let tm_path = Telemetry.Span.probe "reach.path"
let tm_segment = Telemetry.Span.probe "reach.segment"
let m_paths = Telemetry.Counter.make "reach.paths"
let m_segments = Telemetry.Counter.make "reach.segments"
let m_brackets = Telemetry.Counter.make "reach.fallback_brackets"

(* Provenance journal support (same conventions as Icp.Solver): boxes
   are pre-rendered, node ids ride alongside the search items and are 0
   when journaling is off. *)
let jbounds b =
  Array.of_list
    (List.map (fun (x, i) -> (x, I.lo i, I.hi i)) (Box.to_list b))

let journal_flags jobs =
  [ ("newton", string_of_bool (Icp.Deriv.enabled ()));
    ("affine", string_of_bool (Interval.Affine.enabled ()));
    ("cache", string_of_bool (Cache.enabled ()));
    ("tape", string_of_bool (Expr.Tape.enabled ()));
    ("portfolio", string_of_bool (Icp.Portfolio.active ()));
    ("jobs", string_of_int jobs) ]

type config = {
  delta : float;
  epsilon : float;  (** minimum search-box width before giving up splitting *)
  max_param_boxes : int;
  enclosure : Ode.Enclosure.config;
  sim_method : Ode.Integrate.method_;
  fallback_samples : int;  (** ensemble size for the bracketing fallback *)
  fallback_windows : int;  (** time windows per mode for the bracket *)
  fallback_margin : float;  (** relative inflation of the bracket hull *)
  certify_samples : int;  (** extra certification points besides the midpoint *)
  tube_quality_width : float;
      (** a validated tube wider than this is considered degenerate and is
          replaced by the ensemble bracket *)
  jobs : int;  (** worker domains for path / paving parallelism; 1 = sequential *)
}

let default_config =
  {
    delta = 1e-3;
    epsilon = 1e-3;
    max_param_boxes = 4_000;
    enclosure = Ode.Enclosure.default_config;
    sim_method = Ode.Integrate.default_rkf45;
    fallback_samples = 24;
    fallback_windows = 120;
    fallback_margin = 0.05;
    certify_samples = 8;
    tube_quality_width = 1.0;
    jobs = 1;
  }

type witness = {
  path : string list;
  params : (string * float) list;
  init : (string * float) list;  (** initial state realizing the witness *)
  reach_time : float;
  certified : bool;
  param_box : Box.t;
}

type result =
  | Unsat of { rigorous : bool }
  | Delta_sat of witness
  | Unknown of string

let pp_result ppf = function
  | Unsat { rigorous } ->
      Fmt.pf ppf "unsat%s" (if rigorous then "" else " (ensemble-bracketed)")
  | Delta_sat w ->
      Fmt.pf ppf "delta-sat via %a%s params [%a] at t=%.4g"
        Fmt.(list ~sep:(any "->") string)
        w.path
        (if w.certified then " (certified)" else "")
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
        w.params w.reach_time
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

(* ---- Search box: parameters ∪ wide initial-state dimensions ---- *)

let searchable_box (pb : Encoding.t) =
  let init = Hybrid.Automaton.init_box pb.Encoding.automaton in
  Box.fold
    (fun v itv acc -> if I.is_singleton itv then acc else Box.set v itv acc)
    init pb.Encoding.param_box

(* Split a search box into (params part, init-state box). *)
let interpret_box (pb : Encoding.t) sbox =
  let automaton = pb.Encoding.automaton in
  let params =
    List.fold_left
      (fun acc p -> Box.set p (Box.find p sbox) acc)
      Box.empty_map
      (Hybrid.Automaton.params automaton)
  in
  let init =
    Box.fold
      (fun v itv acc ->
        match Box.find_opt v sbox with
        | Some refined -> Box.set v refined acc
        | None -> Box.set v itv acc)
      (Hybrid.Automaton.init_box automaton)
      Box.empty_map
  in
  (params, init)

(* ---- Flow enclosures: validated tube, or ensemble bracket ---- *)

type segment_enclosure = {
  steps : Ode.Enclosure.step list;
  rigorous : bool;
}

(* Deterministic sample points of a box: midpoint + uniform draws. *)
let sample_envs ~seed ~n box =
  let rng = Random.State.make [| seed; Box.cardinal box |] in
  let mid = Box.mid_env box in
  let draw () =
    List.map
      (fun (v, itv) ->
        let w = I.width itv in
        if w <= 0.0 then (v, I.mid itv)
        else (v, I.lo itv +. Random.State.float rng w))
      (Box.to_list box)
  in
  mid :: List.init n (fun _ -> draw ())

let bracket_of_traces cfg t_end traces =
  let windows = Stdlib.max 1 cfg.fallback_windows in
  let dt = t_end /. float_of_int windows in
  let steps =
    List.init windows (fun i ->
        let t_lo = dt *. float_of_int i and t_hi = dt *. float_of_int (i + 1) in
        let hulls =
          List.filter_map
            (fun (tr : Ode.Integrate.trace) ->
              if Ode.Integrate.final_time tr < t_lo -. 1e-9 then None
              else begin
                (* hull of sampled states within (and bounding) the window *)
                let samples =
                  [ Ode.Integrate.state_at tr t_lo;
                    Ode.Integrate.state_at tr (0.5 *. (t_lo +. t_hi));
                    Ode.Integrate.state_at tr t_hi ]
                in
                let vars = tr.Ode.Integrate.vars in
                Some
                  (List.fold_left
                     (fun acc st ->
                       let b =
                         Box.of_list
                           (List.mapi (fun j v -> (v, I.of_float st.(j))) vars)
                       in
                       match acc with None -> Some b | Some a -> Some (Box.hull a b))
                     None samples)
              end)
            traces
        in
        let hull =
          List.fold_left
            (fun acc h -> match (acc, h) with
              | None, h -> h
              | acc, None -> acc
              | Some a, Some b -> Some (Box.hull a b))
            None hulls
        in
        match hull with
        | None -> None
        | Some h ->
            let inflated =
              Box.map
                (fun itv -> I.inflate (cfg.fallback_margin *. I.width itv +. 1e-6) itv)
                h
            in
            Some
              { Ode.Enclosure.t_lo; t_hi; enclosure = inflated; at_end = inflated })
  in
  List.filter_map Fun.id steps

(* Segment-enclosure cache: path enumeration revisits mode flows (every
   candidate path shares prefixes with its extensions, and synthesis
   re-checks shrinking sub-boxes), so memoize the whole
   validated-or-bracketed answer.  The fallback bracket is deterministic
   (fixed sampling seed), so exact replay is identity-preserving; under
   the Warm policy a parent box's enclosure is reused directly for
   sub-boxes — sound because it contains every trajectory of the
   sub-box too (and [None] means "no usable enclosure", a conservative
   answer that stays conservative on sub-boxes). *)
let seg_cache : segment_enclosure option Cache.t =
  Cache.create ~group_capacity:2048 "reach-seg"

let method_fingerprint = function
  | Ode.Integrate.Euler h -> Printf.sprintf "E%h" h
  | Ode.Integrate.Rk4 h -> Printf.sprintf "R%h" h
  | Ode.Integrate.Rkf45 { rtol; atol; h0; h_max } ->
      Printf.sprintf "F%h,%h,%h,%h" rtol atol h0 h_max
  | Ode.Integrate.Implicit_euler { h; newton_iters; newton_tol } ->
      Printf.sprintf "I%h,%d,%h" h newton_iters newton_tol

let seg_group cfg pb_sys ~t_end =
  Printf.sprintf "segenc|%s|%s|%s|%d|%d|%h|%h|%b|%h"
    (Ode.System.digest pb_sys)
    (Ode.Enclosure.config_fingerprint cfg.enclosure)
    (method_fingerprint cfg.sim_method)
    cfg.fallback_samples cfg.fallback_windows cfg.fallback_margin
    cfg.tube_quality_width
    (Expr.Tape.enabled ())
    t_end

(* Compute an enclosure of the flow of [sys] from [init_box] under
   [params_box] over [0, t_end]; validated when possible, bracketed
   otherwise.  [None] when even the ensemble produced nothing. *)
let flow_enclosure_uncached cfg pb_sys ~prepared ~params_box ~init_box ~t_end =
  let tube =
    Ode.Enclosure.flow ~config:cfg.enclosure ~prepared ~params:params_box
      ~init:init_box ~t_end pb_sys
  in
  let init_width = Box.width init_box in
  let tube_usable =
    tube.Ode.Enclosure.complete
    && Box.width tube.Ode.Enclosure.final
       <= Float.max cfg.tube_quality_width (4.0 *. init_width)
  in
  if tube_usable then Some { steps = tube.Ode.Enclosure.steps; rigorous = true }
  else begin
    (* Ensemble fallback: simulate from sampled (params, init) pairs. *)
    Telemetry.Counter.incr m_brackets;
    let joint =
      List.fold_left (fun b (k, v) -> Box.set k v b) params_box (Box.to_list init_box)
    in
    let envs = sample_envs ~seed:20200426 ~n:cfg.fallback_samples joint in
    let traces =
      List.filter_map
        (fun env ->
          let params =
            List.filter (fun (k, _) -> Box.mem_var k params_box) env
          in
          let init = List.filter (fun (k, _) -> Box.mem_var k init_box) env in
          match
            Ode.Integrate.simulate ~method_:cfg.sim_method ~params ~init ~t_end pb_sys
          with
          | tr -> Some tr
          | exception _ -> None)
        envs
    in
    match bracket_of_traces cfg t_end traces with
    | [] -> None
    | steps -> Some { steps; rigorous = false }
  end

let flow_enclosure ?jseg cfg pb_sys ~prepared ~params_box ~init_box ~t_end =
  (* [jseg = (path, depth, mode)]: journal one segment record per flow
     step of a path unrolling, tagged with whether the enclosure came
     out of the segment store or was integrated afresh. *)
  let jemit ~cached =
    match jseg with
    | Some (p, i, m) when Journal.on () && Journal.in_run () ->
        Journal.seg ~path:p ~index:i ~mode:m ~cached
    | _ -> ()
  in
  if not (Cache.enabled ()) then begin
    jemit ~cached:false;
    flow_enclosure_uncached cfg pb_sys ~prepared ~params_box ~init_box ~t_end
  end
  else begin
    let group = seg_group cfg pb_sys ~t_end in
    let key = Box.join params_box init_box in
    match Cache.find seg_cache ~group key with
    | Cache.Hit seg ->
        jemit ~cached:true;
        seg
    | Cache.Subsumed (_, seg) ->
        (* Warm policy only: a containing box's enclosure (or its
           conservative [None]) is valid for this sub-box as-is. *)
        Cache.note_warm_start seg_cache ~saved_iterations:0;
        jemit ~cached:true;
        seg
    | Cache.Miss ->
        let seg =
          flow_enclosure_uncached cfg pb_sys ~prepared ~params_box ~init_box
            ~t_end
        in
        Cache.add seg_cache ~group key seg;
        jemit ~cached:false;
        seg
  end

(* ---- Validated path feasibility ---- *)

let apply_reset_box automaton params_box (j : Hybrid.Automaton.jump) state_box =
  let env =
    Box.set Ode.System.time_var I.entire
      (List.fold_left (fun b (k, v) -> Box.set k v b) state_box (Box.to_list params_box))
  in
  List.fold_left
    (fun acc v ->
      match List.assoc_opt v j.reset with
      | Some term -> Box.set v (T.eval_interval env term) acc
      | None -> acc)
    state_box
    (Hybrid.Automaton.vars automaton)

(* Contract a state box with a formula (over vars ∪ params ∪ t) using HC4
   fixpoint propagation — per DNF branch, hulled.  [None] when every
   branch is infeasible.  This is the ICP step that keeps jump-state
   hulls tight (e.g. restricting post-guard states to the guard surface
   and the target mode's invariant).

   [prepare_contract] compiles the formula's per-branch contractors once
   (tape-backed by default) and returns a closure applied per box; the
   closures are immutable after construction and safe to call from
   concurrent worker domains. *)
let prepare_contract ?strategy formula =
  if formula = F.True then fun ~params_box:_ state_box -> Some state_box
  else
    (* A portfolio racer pins its contraction layers per closure instead
       of relying on the global switches (racers run concurrently). *)
    let newton, affine =
      match strategy with
      | None -> (None, None)
      | Some (s : Icp.Portfolio.strategy) ->
          (Some s.Icp.Portfolio.newton, Some s.Icp.Portfolio.affine)
    in
    let branch_contractors =
      List.map
        (fun atoms ->
          Icp.Contractor.contractor ~max_rounds:5 ?newton ?affine
            (List.map (Icp.Contractor.of_atom ~delta:0.0) atoms))
        (F.dnf formula)
    in
    fun ~params_box state_box ->
      let full =
        Box.set Ode.System.time_var I.entire
          (List.fold_left (fun b (k, v) -> Box.set k v b) state_box
             (Box.to_list params_box))
      in
      let contracted = List.filter_map (fun c -> c full) branch_contractors in
      match contracted with
      | [] -> None
      | b :: rest ->
          let hull = List.fold_left Box.hull b rest in
          (* read back only the state components *)
          Some
            (Box.fold
               (fun v _ acc -> Box.set v (Box.find v hull) acc)
               state_box Box.empty_map)

(* ---- Per-problem prepared kernels ----

   One compilation of every mode's flow tapes and every jump's contractors,
   built up front (single-domain) by [prepare_pb] and then only read —
   including from the parallel path / paving workers. *)

type prep = {
  flow_prep : (string, Ode.Enclosure.prepared) Hashtbl.t;  (* mode name *)
  guard_contract :
    (string * string, params_box:Box.t -> Box.t -> Box.t option) Hashtbl.t;
      (* (source, target) ↦ contractor for guard ∧ source invariant *)
  inv_contract : (string, params_box:Box.t -> Box.t -> Box.t option) Hashtbl.t;
      (* mode name ↦ contractor for the mode invariant *)
}

let prepare_pb ?strategy (pb : Encoding.t) =
  let automaton = pb.Encoding.automaton in
  let flow_prep = Hashtbl.create 8 in
  let guard_contract = Hashtbl.create 8 in
  let inv_contract = Hashtbl.create 8 in
  List.iter
    (fun (m : Hybrid.Automaton.mode) ->
      Hashtbl.replace flow_prep m.mode_name
        (Ode.Enclosure.prepare (Hybrid.Automaton.mode_system automaton m.mode_name));
      Hashtbl.replace inv_contract m.mode_name
        (prepare_contract ?strategy m.invariant))
    (Hybrid.Automaton.modes automaton);
  List.iter
    (fun (j : Hybrid.Automaton.jump) ->
      let key = (j.source, j.target) in
      (* first jump per (source, target) wins, matching the List.find in
         [path_feasible] *)
      if not (Hashtbl.mem guard_contract key) then
        let source_inv =
          (Hybrid.Automaton.find_mode automaton j.source).invariant
        in
        Hashtbl.replace guard_contract key
          (prepare_contract ?strategy (F.and_ [ j.guard; source_inv ])))
    (Hybrid.Automaton.jumps automaton);
  { flow_prep; guard_contract; inv_contract }

(* Drop tube steps past the point where the mode invariant is *certainly*
   violated: every trajectory has left the mode by then, so later windows
   are spurious.  (Over-approximation keeps this sound for pruning.) *)
let truncate_at_invariant inv ~params_box steps =
  if inv = F.True then steps
  else
    let rec go acc = function
      | [] -> List.rev acc
      | (s : Ode.Enclosure.step) :: rest -> (
          let box =
            Box.set Ode.System.time_var (I.make s.t_lo s.t_hi)
              (List.fold_left
                 (fun b (k, v) -> Box.set k v b)
                 s.enclosure (Box.to_list params_box))
          in
          match F.eval_cert box inv with
          | F.Impossible -> List.rev (s :: acc)
          | F.Certain | F.Unknown -> go (s :: acc) rest)
    in
    go [] steps

(* Hull of the enclosure over the time windows where [formula] might
   hold. *)
let states_satisfying steps ~params_box formula =
  let hits =
    List.filter_map
      (fun (s : Ode.Enclosure.step) ->
        let box =
          Box.set Ode.System.time_var (I.make s.t_lo s.t_hi)
            (List.fold_left
               (fun b (k, v) -> Box.set k v b)
               s.enclosure (Box.to_list params_box))
        in
        match F.eval_cert box formula with
        | F.Impossible -> None
        | F.Certain | F.Unknown -> Some s.enclosure)
      steps
  in
  match hits with
  | [] -> None
  | b :: rest -> Some (List.fold_left Box.hull b rest)

(* One flow segment of a path unrolling: counted, and traced with the
   segment's depth along the path as payload. *)
let traced_segment ~depth f =
  Telemetry.Counter.incr m_segments;
  Telemetry.Span.with_ ~arg:(float_of_int depth) tm_segment f

(* `Infeasible of rigor | `Maybe *)
let path_feasible ?(jpath = -1) cfg (pb : Encoding.t) prep path ~params_box
    ~init_box =
  let automaton = pb.Encoding.automaton in
  let rec walk depth state_box rigorous = function
    | [] -> `Infeasible true
    | [ last ] -> (
        let sys = Hybrid.Automaton.mode_system automaton last in
        match
          traced_segment ~depth (fun () ->
              flow_enclosure ~jseg:(jpath, depth, last) cfg sys
                ~prepared:(Hashtbl.find prep.flow_prep last)
                ~params_box ~init_box:state_box ~t_end:pb.Encoding.time_bound)
        with
        | None -> `Maybe
        | Some enc -> (
            let rigorous = rigorous && enc.rigorous in
            let inv = (Hybrid.Automaton.find_mode automaton last).invariant in
            let steps = truncate_at_invariant inv ~params_box enc.steps in
            match states_satisfying steps ~params_box pb.Encoding.goal.predicate with
            | None -> `Infeasible rigorous
            | Some _ -> `Maybe))
    | q :: (q' :: _ as rest) -> (
        let sys = Hybrid.Automaton.mode_system automaton q in
        match
          traced_segment ~depth (fun () ->
              flow_enclosure ~jseg:(jpath, depth, q) cfg sys
                ~prepared:(Hashtbl.find prep.flow_prep q)
                ~params_box ~init_box:state_box ~t_end:pb.Encoding.time_bound)
        with
        | None -> `Maybe
        | Some enc -> (
            let rigorous = rigorous && enc.rigorous in
            let jump =
              List.find
                (fun (j : Hybrid.Automaton.jump) -> String.equal j.target q')
                (Hybrid.Automaton.jumps_from automaton q)
            in
            let source_inv = (Hybrid.Automaton.find_mode automaton q).invariant in
            let steps = truncate_at_invariant source_inv ~params_box enc.steps in
            match states_satisfying steps ~params_box jump.guard with
            | None -> `Infeasible rigorous
            | Some guard_states -> (
                (* ICP-tighten: jump states satisfy the guard and the
                   source invariant; post-reset states satisfy the target
                   invariant.  The contractors were compiled once by
                   [prepare_pb]. *)
                match
                  (Hashtbl.find prep.guard_contract (q, q'))
                    ~params_box guard_states
                with
                | None -> `Infeasible rigorous
                | Some tightened -> (
                    let next = apply_reset_box automaton params_box jump tightened in
                    if Box.is_empty next then `Infeasible rigorous
                    else
                      match
                        (Hashtbl.find prep.inv_contract q') ~params_box next
                      with
                      | None -> `Infeasible rigorous
                      | Some next -> walk (depth + 1) next rigorous rest))))
  in
  walk 0 init_box true path

(* ---- Certification by guided simulation ---- *)

let simulate_along_path cfg (pb : Encoding.t) path ~param_env ~init_env =
  let automaton = pb.Encoding.automaton in
  let vars = Hybrid.Automaton.vars automaton in
  let delta = cfg.delta in
  (* Integrate one mode until [target] (δ-weakened) fires; respect the
     mode invariant: leaving it before the target means the prescribed
     trajectory does not exist. *)
  let run_mode mode_name state_env target =
    let sys = Hybrid.Automaton.mode_system automaton mode_name in
    let inv = (Hybrid.Automaton.find_mode automaton mode_name).invariant in
    let target_w = F.delta_weaken delta target in
    (* The invariant is δ-weakened symmetrically: a δ-weakened guard can
       legitimately overshoot the mode boundary by up to δ. *)
    let inv_w = F.delta_weaken (2.0 *. delta) inv in
    let stop = F.or_ [ target_w; F.neg inv_w ] in
    let _, event =
      Ode.Integrate.simulate_until ~method_:cfg.sim_method ~params:param_env
        ~init:state_env ~t_end:pb.Encoding.time_bound ~guard:stop sys
    in
    match event with
    | None -> None
    | Some ev ->
        let env =
          ((Ode.System.time_var, ev.Ode.Integrate.time) :: param_env)
          @ List.mapi (fun i v -> (v, ev.Ode.Integrate.state.(i))) vars
        in
        if F.holds_env env target_w then Some (ev, env) else None
  in
  let rec walk state_env t_global = function
    | [] -> None
    | [ last ] -> (
        match run_mode last state_env pb.Encoding.goal.predicate with
        | Some (ev, _) -> Some (t_global +. ev.Ode.Integrate.time)
        | None -> None)
    | q :: (q' :: _ as rest) -> (
        let jump =
          List.find
            (fun (j : Hybrid.Automaton.jump) -> String.equal j.target q')
            (Hybrid.Automaton.jumps_from automaton q)
        in
        match run_mode q state_env jump.guard with
        | None -> None
        | Some (ev, env_at_jump) ->
            let state' =
              List.map
                (fun v ->
                  match List.assoc_opt v jump.reset with
                  | Some term -> (v, T.eval_env env_at_jump term)
                  | None -> (v, List.assoc v env_at_jump))
                vars
            in
            walk state' (t_global +. ev.Ode.Integrate.time) rest)
  in
  walk init_env 0.0 path

(* Try to certify δ-sat from sampled points of the search box. *)
let certify cfg pb path sbox =
  let envs = sample_envs ~seed:927 ~n:cfg.certify_samples sbox in
  let automaton = pb.Encoding.automaton in
  let init_default = Box.mid_env (Hybrid.Automaton.init_box automaton) in
  List.find_map
    (fun env ->
      let param_env =
        List.filter (fun (k, _) -> List.mem k (Hybrid.Automaton.params automaton)) env
      in
      let init_env =
        List.map
          (fun (v, dflt) ->
            match List.assoc_opt v env with Some x -> (v, x) | None -> (v, dflt))
          init_default
      in
      match simulate_along_path cfg pb path ~param_env ~init_env with
      | Some t ->
          Some
            (Delta_sat
               {
                 path;
                 params = param_env;
                 init = init_env;
                 reach_time = t;
                 certified = true;
                 param_box = sbox;
               })
      | None -> None)
    envs

(* ---- Per-path branch and prune over the search box ---- *)

let decide_path ?(cancelled = fun () -> false) ?(jindex = 0) ?strategy cfg pb
    prep path =
  Telemetry.Counter.incr m_paths;
  Telemetry.Span.with_ ~arg:(float_of_int (List.length path)) tm_path
  @@ fun () ->
  let budget = ref cfg.max_param_boxes in
  let rigorous_all = ref true in
  let jon = Journal.on () && Journal.in_run () in
  let heur =
    match strategy with
    | Some { Icp.Portfolio.order = Icp.Portfolio.Round_robin; _ } -> "rr"
    | _ -> "bisect"
  in
  if jon then
    Journal.path_event ~index:jindex ~info:(String.concat "->" path);
  (* Strategy only changes the branch order here: the path search has no
     derivative system, so smear branching degrades to widest-first and
     the round-robin order is the one real alternative. *)
  let split ~depth sbox =
    match strategy with
    | Some { Icp.Portfolio.order = Icp.Portfolio.Round_robin; _ } ->
        Icp.Portfolio.round_robin_split ~min_width:cfg.epsilon ~depth sbox
    | _ -> Box.split ~min_width:cfg.epsilon sbox
  in
  let rec search depth sbox jid =
    if cancelled () then begin
      if jon then Journal.leaf ~id:jid ~cls:"undecided" ~reason:"cancelled" ();
      Unknown "cancelled"
    end
    else if !budget <= 0 then begin
      if jon then
        Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
      Unknown "search box budget exhausted"
    end
    else begin
      decr budget;
      if jon then Journal.enter ~id:jid ~depth;
      let params_box, init_box = interpret_box pb sbox in
      match path_feasible ~jpath:jindex cfg pb prep path ~params_box ~init_box
      with
      | `Infeasible rigorous ->
          if not rigorous then rigorous_all := false;
          if jon then
            Journal.prune ~id:jid
              ~reason:
                (if rigorous then "path-infeasible"
                 else "path-infeasible-bracket")
              ();
          Unsat { rigorous }
      | `Maybe -> (
          match certify cfg pb path sbox with
          | Some r ->
              (if jon then
                 match r with
                 | Delta_sat w ->
                     Journal.sat ~id:jid ~point:(w.params @ w.init)
                       ~certified:w.certified (jbounds sbox)
                 | _ -> ());
              r
          | None -> (
              match split ~depth sbox with
              | Some (l, r) -> (
                  let lid, rid =
                    if jon then begin
                      let lid = Journal.fresh_id () in
                      let rid = Journal.fresh_id () in
                      Journal.split ~id:jid ~heur ~left:lid ~right:rid
                        ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                      (lid, rid)
                    end
                    else (0, 0)
                  in
                  match search (depth + 1) l lid with
                  | Unsat { rigorous = rl } -> (
                      match search (depth + 1) r rid with
                      | Unsat { rigorous = rr } -> Unsat { rigorous = rl && rr }
                      | other -> other)
                  | other -> other)
              | None ->
                  if jon then
                    Journal.leaf ~id:jid ~cls:"undecided" ~reason:"sub-epsilon"
                      ();
                  Unknown "sub-epsilon box survived pruning without a witness"))
    end
  in
  let sbox = searchable_box pb in
  let root_id = if jon then Journal.fresh_id () else 0 in
  if jon then
    Journal.root ~id:root_id
      ~label:(Printf.sprintf "path%d:%s" jindex (String.concat "->" path))
      (jbounds sbox);
  search 0 sbox root_id

(* ---- Public API ---- *)

(* Decide the bounded reachability problem: try every candidate mode path
   (shortest first — therapy identification wants minimal drug counts).

   With [config.jobs > 1] the candidate paths are decided by a pool of
   worker domains.  The verdict is merged in path order afterwards, so it
   is *identical* to the sequential one (the lowest-indexed δ-sat path
   wins, preserving the minimal-jump preference): parallelism here only
   changes which paths are decided concurrently.  A δ-sat at index i
   cancels work on paths with larger indices — exactly the paths the
   sequential scan would never have reached. *)
(* One full scan of the candidate paths with one strategy: the
   sequential [check] loop, pollable for cancellation.  Used both for a
   forced [?strategy] baseline and as one racer of the portfolio. *)
let scan_paths ?(cancelled = fun () -> false) ?strategy config pb prep paths =
  let rec go i unknown rigorous = function
    | [] -> (
        match unknown with Some why -> Unknown why | None -> Unsat { rigorous })
    | path :: rest -> (
        Log.debug (fun m -> m "path %a" Fmt.(list ~sep:(any "->") string) path);
        match
          decide_path ~cancelled ~jindex:i ?strategy config pb prep path
        with
        | Unsat { rigorous = r } -> go (i + 1) unknown (rigorous && r) rest
        | Delta_sat w -> Delta_sat w
        | Unknown "cancelled" -> Unknown "cancelled"
        | Unknown why -> go (i + 1) (Some why) rigorous rest)
  in
  go 0 None true paths

(* Race the portfolio lineup over full path scans.  Racers share the
   flow-tube segment store ([seg_cache] keys carry no strategy flags —
   a tube enclosure is strategy-independent), so a racer skips every
   segment any other racer already integrated: that store is the
   cross-racer pruning channel here.  Per-strategy guard/invariant
   contractors are compiled lazily inside each racer (cancelled racers
   never pay compilation).  Merge discipline is the solver's:
   conclusive-kind priority ([Unsat] before [Delta_sat]), then lowest
   strategy rank. *)
let check_portfolio config pb paths =
  match Icp.Portfolio.lineup () with
  | [] | [ _ ] -> None
  | strategies ->
      let jobs = Stdlib.max 1 config.jobs in
      let n = List.length strategies in
      let results = Array.make n None in
      let jon = Journal.on () in
      let tasks =
        List.mapi
          (fun i (s : Icp.Portfolio.strategy) ~cancelled ~conclude ->
            if not (cancelled ()) then begin
              if jon then
                Journal.racer ~event:"start" ~strategy:s.Icp.Portfolio.name;
              let prep = prepare_pb ~strategy:s pb in
              let r = scan_paths ~cancelled ~strategy:s config pb prep paths in
              results.(i) <- Some (s.Icp.Portfolio.name, r);
              match r with
              | Unknown why ->
                  if jon then
                    Journal.racer
                      ~event:(if why = "cancelled" then "cancel" else "retire")
                      ~strategy:s.Icp.Portfolio.name
              | Unsat _ | Delta_sat _ -> conclude i
            end)
          strategies
      in
      ignore (Parallel.Pool.first_conclusive ~jobs tasks);
      let best = ref None in
      Array.iteri
        (fun rank entry ->
          match entry with
          | Some (name, (Unsat _ | Delta_sat _)) ->
              let kind =
                match entry with Some (_, Unsat _) -> 0 | _ -> 1
              in
              let better =
                match !best with
                | None -> true
                | Some (bkind, brank, _, _) -> (kind, rank) < (bkind, brank)
              in
              if better then
                best :=
                  Some
                    (kind, rank, name, match entry with Some (_, r) -> r | None -> assert false)
          | _ -> ())
        results;
      (match !best with
      | Some (_, _, name, r) ->
          Icp.Portfolio.record_win name;
          Some r
      | None ->
          let why =
            Array.fold_left
              (fun acc entry ->
                match (acc, entry) with
                | None, Some (_, Unknown w) when w <> "cancelled" -> Some w
                | _ -> acc)
              None results
          in
          Some (Unknown (Option.value why ~default:"portfolio: no verdict")))

let check_default config (pb : Encoding.t) paths =
  let prep = prepare_pb pb in
  let jobs = Stdlib.max 1 config.jobs in
  if jobs = 1 || List.length paths <= 1 then
    scan_paths config pb prep paths
  else begin
    let paths = Array.of_list paths in
    let n = Array.length paths in
    let results = Array.make n None in
    let winner = Atomic.make Stdlib.max_int in
    let fr = Parallel.Pool.Frontier.create (List.init n Fun.id) in
    Parallel.Pool.Frontier.drain ~jobs fr (fun _w _slot i ->
        (* skip paths the sequential scan would never reach *)
        if i <= Atomic.get winner then begin
          let r = decide_path ~jindex:i config pb prep paths.(i) in
          results.(i) <- Some r;
          match r with
          | Delta_sat _ ->
              let rec lower () =
                let cur = Atomic.get winner in
                if i < cur && not (Atomic.compare_and_set winner cur i) then
                  lower ()
              in
              lower ()
          | _ -> ()
        end);
    let rec merge i unknown rigorous =
      if i >= n then
        match unknown with Some why -> Unknown why | None -> Unsat { rigorous }
      else
        match results.(i) with
        | Some (Delta_sat w) -> Delta_sat w
        | Some (Unsat { rigorous = r }) -> merge (i + 1) unknown (rigorous && r)
        | Some (Unknown why) -> merge (i + 1) (Some why) rigorous
        | None -> merge (i + 1) unknown rigorous (* cancelled past the winner *)
    in
    merge 0 None true
  end

let check ?(config = default_config) ?strategy (pb : Encoding.t) =
  Telemetry.Span.with_ tm_check @@ fun () ->
  let jrun =
    if Journal.on () then
      Journal.begin_run ~kind:"reach"
        ~flags:(journal_flags (Stdlib.max 1 config.jobs))
        ()
    else 0
  in
  let finish r =
    if jrun <> 0 then
      Journal.end_run
        ~truncated:(match r with Unknown _ -> true | _ -> false)
        ~verdict:
          (match r with
          | Unsat _ -> "unsat"
          | Delta_sat _ -> "delta-sat"
          | Unknown _ -> "unknown")
        jrun;
    r
  in
  let body () =
    let paths =
      List.sort
        (fun a b -> compare (List.length a) (List.length b))
        (Encoding.candidate_paths pb)
    in
    Log.info (fun m -> m "checking %d candidate path(s)" (List.length paths));
    match strategy with
    | Some s ->
        let prep = prepare_pb ~strategy:s pb in
        scan_paths ~strategy:s config pb prep paths
    | None ->
        if Icp.Portfolio.active () then
          match check_portfolio config pb paths with
          | Some r -> r
          | None -> check_default config pb paths
        else check_default config pb paths
  in
  match body () with
  | r -> finish r
  | exception e ->
      if jrun <> 0 then Journal.end_run ~truncated:true ~verdict:"error" jrun;
      raise e

(* Universal feasibility on jump-free paths (see the synthesis notes). *)
let path_surely_reaches cfg (pb : Encoding.t) prep path ~params_box ~init_box =
  match path with
  | [ only ] ->
      let automaton = pb.Encoding.automaton in
      let sys = Hybrid.Automaton.mode_system automaton only in
      let tube =
        Ode.Enclosure.flow ~config:cfg.enclosure
          ~prepared:(Hashtbl.find prep.flow_prep only)
          ~params:params_box ~init:init_box ~t_end:pb.Encoding.time_bound sys
      in
      tube.Ode.Enclosure.complete
      && List.exists
           (fun (s : Ode.Enclosure.step) ->
             let box =
               Box.set Ode.System.time_var (I.make s.t_lo s.t_hi)
                 (List.fold_left
                    (fun b (k, v) -> Box.set k v b)
                    s.enclosure (Box.to_list params_box))
             in
             F.eval_cert box pb.Encoding.goal.predicate = F.Certain)
           tube.Ode.Enclosure.steps
  | _ -> false

(* Parameter synthesis for reachability (Definition 13), BioPSy-style
   guaranteed paving of the search box:
   - [feasible]: *every* value in the box provably reaches the goal;
   - [infeasible]: *no* value can reach the goal (the [rigorous] flag
     records whether the proof used only validated tubes);
   - [undecided]: sub-ε boxes; those whose sampled point certifiably
     reaches the goal carry the witness. *)
type synthesis = {
  feasible : (Box.t * witness) list;
  infeasible : (Box.t * bool) list;  (* box, rigorous *)
  undecided : (Box.t * witness option) list;
}

(* Classification of one search box, shared by the sequential recursion
   and the parallel frontier (it is a pure function of the box). *)
type synth_outcome =
  | Synth_feasible of witness
  | Synth_infeasible of bool  (* rigorous *)
  | Synth_split of Box.t * Box.t
  | Synth_undecided of witness option

let synthesize ?(config = default_config) (pb : Encoding.t) =
  Telemetry.Span.with_ tm_synth @@ fun () ->
  let jrun =
    if Journal.on () then
      Journal.begin_run ~kind:"synth"
        ~flags:(journal_flags (Stdlib.max 1 config.jobs))
        ()
    else 0
  in
  let jon = jrun <> 0 in
  let finish s =
    if jon then
      Journal.end_run
        ~verdict:
          (Printf.sprintf "synthesis feasible=%d infeasible=%d undecided=%d"
             (List.length s.feasible) (List.length s.infeasible)
             (List.length s.undecided))
        jrun;
    s
  in
  let paths =
    List.sort
      (fun a b -> compare (List.length a) (List.length b))
      (Encoding.candidate_paths pb)
  in
  let certify_box sbox =
    List.find_map
      (fun path ->
        match certify config pb path sbox with
        | Some (Delta_sat w) -> Some w
        | _ -> None)
      paths
  in
  let prep = prepare_pb pb in
  let classify sbox =
    let params_box, init_box = interpret_box pb sbox in
    let verdicts =
      List.map
        (fun path -> path_feasible config pb prep path ~params_box ~init_box)
        paths
    in
    if List.for_all (function `Infeasible _ -> true | `Maybe -> false) verdicts
    then
      Synth_infeasible
        (List.for_all (function `Infeasible r -> r | `Maybe -> false) verdicts)
    else if
      List.exists
        (fun path -> path_surely_reaches config pb prep path ~params_box ~init_box)
        paths
    then
      let w =
        match certify_box sbox with
        | Some w -> w
        | None ->
            { path = List.hd paths; params = Box.mid_env params_box;
              init = Box.mid_env init_box; reach_time = nan; certified = false;
              param_box = sbox }
      in
      Synth_feasible w
    else
      match Box.split ~min_width:config.epsilon sbox with
      | Some (l, r) -> Synth_split (l, r)
      | None -> Synth_undecided (certify_box sbox)
  in
  let jobs = Stdlib.max 1 config.jobs in
  if jobs = 1 then begin
    let feasible = ref [] and infeasible = ref [] and undecided = ref [] in
    let budget = ref config.max_param_boxes in
    let rec go depth sbox jid =
      if !budget <= 0 then begin
        if jon then
          Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
        undecided := (sbox, None) :: !undecided
      end
      else begin
        decr budget;
        if jon then Journal.enter ~id:jid ~depth;
        match classify sbox with
        | Synth_feasible w ->
            if jon then Journal.leaf ~id:jid ~cls:"feasible" ();
            feasible := (sbox, w) :: !feasible
        | Synth_infeasible rigorous ->
            if jon then
              Journal.prune ~id:jid
                ~reason:
                  (if rigorous then "path-infeasible"
                   else "path-infeasible-bracket")
                ();
            infeasible := (sbox, rigorous) :: !infeasible
        | Synth_split (l, r) ->
            let lid, rid =
              if jon then begin
                let lid = Journal.fresh_id () in
                let rid = Journal.fresh_id () in
                Journal.split ~id:jid ~heur:"bisect" ~left:lid ~right:rid
                  ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                (lid, rid)
              end
              else (0, 0)
            in
            go (depth + 1) l lid;
            go (depth + 1) r rid
        | Synth_undecided w ->
            if jon then
              Journal.leaf ~id:jid ~cls:"undecided" ~reason:"sub-epsilon" ();
            undecided := (sbox, w) :: !undecided
      end
    in
    let sbox = searchable_box pb in
    let root_id = if jon then Journal.fresh_id () else 0 in
    if jon then Journal.root ~id:root_id (jbounds sbox);
    go 0 sbox root_id;
    finish
      { feasible = !feasible; infeasible = !infeasible;
        undecided = !undecided }
  end
  else begin
    (* Worker domains share the paving frontier and a leased box budget;
       each keeps private result lists, concatenated at the end.  The
       leaf *set* matches the sequential paving (classification is a pure
       function of the box) whenever the budget is not hit; only the list
       order may differ. *)
    let lease =
      Parallel.Pool.Lease.create ~total:config.max_param_boxes ()
    in
    let locals = Array.init jobs (fun _ -> Parallel.Pool.Lease.local lease) in
    let accs = Array.init jobs (fun _ -> (ref [], ref [], ref [])) in
    let sbox0 = searchable_box pb in
    let root_id = if jon then Journal.fresh_id () else 0 in
    if jon then Journal.root ~id:root_id (jbounds sbox0);
    let fr = Parallel.Pool.Frontier.create [ (sbox0, 0, root_id) ] in
    Parallel.Pool.Frontier.drain ~jobs fr (fun w slot (sbox, depth, jid) ->
        let feasible, infeasible, undecided = accs.(w) in
        if not (Parallel.Pool.Lease.spend locals.(w)) then begin
          if jon then
            Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
          undecided := (sbox, None) :: !undecided
        end
        else begin
          if jon then Journal.enter ~id:jid ~depth;
          match classify sbox with
          | Synth_feasible wit ->
              if jon then Journal.leaf ~id:jid ~cls:"feasible" ();
              feasible := (sbox, wit) :: !feasible
          | Synth_infeasible rigorous ->
              if jon then
                Journal.prune ~id:jid
                  ~reason:
                    (if rigorous then "path-infeasible"
                     else "path-infeasible-bracket")
                  ();
              infeasible := (sbox, rigorous) :: !infeasible
          | Synth_split (l, r) ->
              let lid, rid =
                if jon then begin
                  let lid = Journal.fresh_id () in
                  let rid = Journal.fresh_id () in
                  Journal.split ~id:jid ~heur:"bisect" ~left:lid ~right:rid
                    ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                  (lid, rid)
                end
                else (0, 0)
              in
              Parallel.Pool.Frontier.push_batch slot
                [ (r, depth + 1, rid); (l, depth + 1, lid) ]
          | Synth_undecided wit ->
              if jon then
                Journal.leaf ~id:jid ~cls:"undecided" ~reason:"sub-epsilon" ();
              undecided := (sbox, wit) :: !undecided
        end);
    Array.iter Parallel.Pool.Lease.return_unspent locals;
    finish
      (Array.fold_left
         (fun acc (f, i, u) ->
           {
             feasible = !f @ acc.feasible;
             infeasible = !i @ acc.infeasible;
             undecided = !u @ acc.undecided;
           })
         { feasible = []; infeasible = []; undecided = [] }
         accs)
  end

let pp_synthesis ppf s =
  Fmt.pf ppf "synthesis: %d feasible, %d infeasible, %d undecided boxes"
    (List.length s.feasible) (List.length s.infeasible) (List.length s.undecided)
