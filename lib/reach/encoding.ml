(* (k, M)-bounded reachability problems (Section III-C of the paper).

   A problem fixes the automaton, the parameter search box, the goal
   (target modes plus a state predicate), the maximum number of discrete
   jumps k, and the per-mode time bound M.  [Checker] decides it; this
   module only defines and validates the problem statement, and renders
   the symbolic Reach_{k,M} encoding for inspection — the unrolled
   formula of Section III-C with per-step copies x_0, x_0^t, …, x_k,
   x_k^t of the state variables. *)

module Box = Interval.Box
module F = Expr.Formula
module T = Expr.Term

type goal = {
  goal_modes : string list;  (** empty means "any mode" *)
  predicate : F.t;  (** over vars ∪ params ∪ t (local time in final mode) *)
}

type t = {
  automaton : Hybrid.Automaton.t;
  param_box : Box.t;  (** search domain for the synthesized parameters *)
  goal : goal;
  k : int;  (** maximum number of discrete jumps *)
  min_jumps : int;  (** paths with fewer jumps are excluded (e.g. to ask
                        about a *re*-entry of the goal mode) *)
  time_bound : float;  (** M: maximum dwell time in each mode *)
}

let create ?(param_box = Box.empty_map) ?(min_jumps = 0) ~goal ~k ~time_bound automaton =
  if k < 0 then invalid_arg "Encoding.create: k must be >= 0";
  if min_jumps < 0 || min_jumps > k then
    invalid_arg "Encoding.create: min_jumps must be in [0, k]";
  if time_bound <= 0.0 then invalid_arg "Encoding.create: time bound must be positive";
  List.iter
    (fun q ->
      if not (List.mem q (Hybrid.Automaton.mode_names automaton)) then
        invalid_arg (Printf.sprintf "Encoding.create: unknown goal mode %S" q))
    goal.goal_modes;
  List.iter
    (fun p ->
      if not (Box.mem_var p param_box) then
        invalid_arg (Printf.sprintf "Encoding.create: parameter %S has no search box" p))
    (Hybrid.Automaton.params automaton);
  { automaton; param_box; goal; k; min_jumps; time_bound }

let goal_modes pb =
  match pb.goal.goal_modes with
  | [] -> Hybrid.Automaton.mode_names pb.automaton
  | ms -> ms

(* Candidate mode paths, pruned by co-reachability of the goal modes and
   the [min_jumps] lower bound. *)
let candidate_paths pb =
  let g = Hybrid.Graph.of_automaton pb.automaton in
  List.filter
    (fun p -> List.length p > pb.min_jumps)
    (Hybrid.Graph.paths ~targets:(goal_modes pb) ~max_jumps:pb.k g
       ~source:(Hybrid.Automaton.init_mode pb.automaton))

(* ---- Symbolic rendering of Reach_{k,M} ----

   The solver works on the validated-flow representation rather than this
   formula, but printing the encoding documents precisely which instance
   is being decided, step-indexed exactly as in the paper. *)

let step_var v i post = Printf.sprintf "%s_%d%s" v i (if post then "t" else "")

let render_path pb path =
  let buf = Buffer.create 1024 in
  let vars = Hybrid.Automaton.vars pb.automaton in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rename_step i post f =
    F.rename (List.map (fun v -> (v, step_var v i post)) vars) f
  in
  List.iteri
    (fun i q ->
      let m = Hybrid.Automaton.find_mode pb.automaton q in
      add "(flow_%s %s -> %s over time_%d in [0, %g])\n" q
        (String.concat "," (List.map (fun v -> step_var v i false) vars))
        (String.concat "," (List.map (fun v -> step_var v i true) vars))
        i pb.time_bound;
      if m.invariant <> F.tt then
        add "  (invariant_%s along step %d: %s)\n" q i
          (F.to_string (rename_step i true m.invariant));
      match List.nth_opt path (i + 1) with
      | None -> ()
      | Some q' ->
          let j =
            List.find
              (fun (j : Hybrid.Automaton.jump) -> String.equal j.target q')
              (Hybrid.Automaton.jumps_from pb.automaton q)
          in
          add "  (jump_%s_%s: guard %s; resets %s)\n" q q'
            (F.to_string (rename_step i true j.guard))
            (String.concat ", "
               (List.map
                  (fun (v, t) -> Printf.sprintf "%s := %s" (step_var v (i + 1) false) (T.to_string t))
                  j.reset)))
    path;
  let last = List.length path - 1 in
  add "(goal at step %d: %s)\n" last
    (F.to_string
       (F.rename (List.map (fun v -> (v, step_var v last true)) vars) pb.goal.predicate));
  Buffer.contents buf

let render pb =
  let paths = candidate_paths pb in
  String.concat "\n-- or --\n\n" (List.map (render_path pb) paths)

let pp_goal ppf g =
  Fmt.pf ppf "modes {%a} with %a" Fmt.(list ~sep:comma string) g.goal_modes F.pp g.predicate
