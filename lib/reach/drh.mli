(** Export of bounded reachability problems to dReach's .drh input
    format, so models built here can be cross-checked against the
    original dReach/dReal toolchain the paper used. *)

val of_problem : Encoding.t -> string
(** Render the automaton, the parameter boxes (as constant-derivative
    variables, the standard dReach encoding of symbolic constants), the
    initial condition, and one goal line per goal mode. *)

val to_file : string -> Encoding.t -> unit

val formula_to_drh : Expr.Formula.t -> string
val term_to_drh : Expr.Term.t -> string
