(** (k, M)-bounded reachability problems (Section III-C of the paper).

    A problem fixes the automaton, the search box for its parameters, the
    goal (target modes plus a state predicate), the jump budget [k]
    (optionally a lower bound too) and the per-mode dwell-time bound [M].
    {!Checker} decides it; this module validates the statement and can
    render the symbolic Reach_{k,M} unrolling for inspection. *)

module Box = Interval.Box

type goal = {
  goal_modes : string list;  (** empty means any mode *)
  predicate : Expr.Formula.t;
      (** over vars ∪ params ∪ t (t = local time in the final mode) *)
}

type t = {
  automaton : Hybrid.Automaton.t;
  param_box : Box.t;
  goal : goal;
  k : int;
  min_jumps : int;
  time_bound : float;
}

val create :
  ?param_box:Box.t ->
  ?min_jumps:int ->
  goal:goal ->
  k:int ->
  time_bound:float ->
  Hybrid.Automaton.t ->
  t
(** @raise Invalid_argument on a negative [k], [min_jumps] outside
    [[0, k]], a non-positive time bound, an unknown goal mode, or a free
    parameter without a search box. *)

val goal_modes : t -> string list

val candidate_paths : t -> string list list
(** Mode paths compatible with the problem: from the initial mode, ending
    in a goal mode, between [min_jumps] and [k] jumps, pruned by
    co-reachability. *)

val render : t -> string
(** Human-readable Reach_{k,M} unrolling (per-step variable copies as in
    the paper's encoding), one block per candidate path. *)

val render_path : t -> string list -> string
val step_var : string -> int -> bool -> string
val pp_goal : goal Fmt.t
