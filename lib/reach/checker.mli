(** δ-decision of bounded reachability and parameter synthesis for
    reachability (Definitions 11 and 13) — the dReach-equivalent.

    Per candidate mode path, a branch-and-prune search runs over the
    *search box* (parameter box ∪ non-singleton initial-state dimensions).
    Boxes are evaluated by propagating flow enclosures along the path,
    ICP-tightening jump states with guards and invariants; infeasible
    boxes are pruned (unsat direction), surviving boxes are certified by
    guided numerical simulation (δ-sat direction) or split.

    Flow enclosures are validated tubes when tight, and deterministic
    *ensemble brackets* (sampled trajectories hulled over time windows)
    when the tube degenerates on stiff dynamics.  Verdicts carry a
    [rigorous] flag: [Unsat {rigorous = false}] is a high-confidence
    numerical claim, not an interval proof.  δ-sat witnesses with
    [certified = true] are sound regardless. *)

module Box = Interval.Box

type config = {
  delta : float;
  epsilon : float;  (** minimum search-box width *)
  max_param_boxes : int;
  enclosure : Ode.Enclosure.config;
  sim_method : Ode.Integrate.method_;
  fallback_samples : int;  (** ensemble size of the bracketing fallback *)
  fallback_windows : int;  (** time windows per mode for the bracket *)
  fallback_margin : float;  (** relative inflation of the bracket hull *)
  certify_samples : int;  (** certification points besides the midpoint *)
  tube_quality_width : float;
      (** a validated tube wider than this is replaced by the bracket *)
  jobs : int;
      (** worker domains for path / paving parallelism; 1 = sequential *)
}

val default_config : config

type witness = {
  path : string list;
  params : (string * float) list;
  init : (string * float) list;
  reach_time : float;
  certified : bool;
  param_box : Box.t;
}

type result =
  | Unsat of { rigorous : bool }
  | Delta_sat of witness
  | Unknown of string

val pp_result : result Fmt.t

val check :
  ?config:config -> ?strategy:Icp.Portfolio.strategy -> Encoding.t -> result
(** In portfolio mode ({!Icp.Portfolio.active}) the candidate-path scan
    is raced across the {!Icp.Portfolio.lineup}: each racer runs the
    full sequential path scan with its strategy's contraction layers and
    branch order, all racers share the flow-tube segment store (tube
    enclosures are strategy-independent, so each racer skips segments
    any other already integrated), and the first conclusive verdict
    cancels the rest.  The merge is deterministic: conclusive-kind
    priority ([Unsat] before [Delta_sat]), then lowest strategy rank.
    [?strategy] forces one strategy without racing; smear branching
    degrades to widest-first here (the path search has no derivative
    system).  Portfolio off: the historical scan, bit for bit —
    candidate paths explored shortest-first (therapy identification
    wants minimal drug counts); with [config.jobs > 1] the paths are
    decided by a pool of worker domains and the verdict merged in path
    order, so it is identical to the sequential one. *)

(** {1 Parameter synthesis for reachability (Definition 13)} *)

type synthesis = {
  feasible : (Box.t * witness) list;
      (** every value in the box provably reaches the goal *)
  infeasible : (Box.t * bool) list;
      (** no value can reach the goal; the flag records rigor *)
  undecided : (Box.t * witness option) list;
      (** sub-ε boxes; a sampled certified witness when one exists *)
}

val synthesize : ?config:config -> Encoding.t -> synthesis
(** With [config.jobs > 1], worker domains share the paving frontier and
    an atomic global box budget; the leaf set matches the sequential
    paving when the budget is not exhausted (only list order differs). *)

val pp_synthesis : synthesis Fmt.t

(** {1 Building blocks} (exposed for the workflow layer and tests) *)

val searchable_box : Encoding.t -> Box.t
val interpret_box : Encoding.t -> Box.t -> Box.t * Box.t

type segment_enclosure = { steps : Ode.Enclosure.step list; rigorous : bool }

val flow_enclosure :
  ?jseg:int * int * string ->
  config ->
  Ode.System.t ->
  prepared:Ode.Enclosure.prepared ->
  params_box:Box.t ->
  init_box:Box.t ->
  t_end:float ->
  segment_enclosure option
(** [?jseg:(path, depth, mode)] attaches journal segment provenance:
    inside a journaled run, one [Journal.seg] record per call, tagged
    with whether the enclosure was replayed from the segment store. *)

val prepare_contract :
  ?strategy:Icp.Portfolio.strategy ->
  Expr.Formula.t ->
  params_box:Box.t ->
  Interval.Box.t ->
  Interval.Box.t option
(** Compile a formula's per-DNF-branch HC4 contractors once; the returned
    closure contracts a state box (hulled over branches, [None] when every
    branch is infeasible) and is safe to share across worker domains.
    [?strategy] pins the Newton/affine layers for this closure (portfolio
    racers) instead of following the global switches. *)

val states_satisfying :
  Ode.Enclosure.step list -> params_box:Box.t -> Expr.Formula.t -> Interval.Box.t option

type prep
(** Per-problem compiled kernels: every mode's flow tapes and every
    jump's guard/invariant contractors.  Built once by {!prepare_pb}
    (single-domain), then only read — including from worker domains. *)

val prepare_pb : ?strategy:Icp.Portfolio.strategy -> Encoding.t -> prep

val path_feasible :
  ?jpath:int ->
  config ->
  Encoding.t ->
  prep ->
  string list ->
  params_box:Box.t ->
  init_box:Box.t ->
  [ `Infeasible of bool | `Maybe ]

val simulate_along_path :
  config ->
  Encoding.t ->
  string list ->
  param_env:(string * float) list ->
  init_env:(string * float) list ->
  float option
(** Simulate the automaton forcing the given mode path (respecting
    δ-weakened guards and invariants); returns the global goal time. *)
