(* Multi-mode model of the irradiation-induced cell-death signaling
   network of Fig. 1 / Fig. 3 — the therapy-identification case study of
   Sec. IV-B.

   The paper's wet-lab network dynamics are proprietary; per the
   substitution rule we build a synthetic mass-action surrogate that keeps
   exactly the structure Fig. 3's analysis depends on: the mode/jump
   topology (live untreated mode 0, per-pathway inhibition modes A–E,
   absorbing death mode 1), monotone signature dynamics in mode 0, decay
   of the targeted signature under each inhibitor, and the documented
   apoptosis→necroptosis crosstalk (inhibiting one death pathway routes
   flux into another), which is what forces multi-drug schedules.

   State (pathway signatures, arbitrary units):
     clox   oxidized cardiolipin      (apoptosis trigger; JP4-039 target)
     rip3   phosphorylated RIP3       (necroptosis;   necrostatin-1)
     casp3  executioner caspase       (apoptosis commitment)
     lip    PE-AA-OOH lipid peroxide  (ferroptosis;   baicalein)
     il     IL-1β                     (pyroptosis;    MCC950)
     par    PAR polymer               (parthanatos;   XJB-veliparib)

   Modes: "m0" (live, untreated), "mA" (JP4-039 on board), "mB" (A +
   necrostatin-1), "mC" (baicalein), "mD" (MCC950), "mE" (XJB-veliparib),
   "death".  Jump thresholds θ1 (CLox triggering drug A) and θ2 (RIP3
   triggering drug B) are synthesis parameters (`Free) or fixed values.

   The intended minimal treatment scheme is the paper's 0 → A → B → 0:
   JP4-039 quenches CLox/casp3 but routes flux into RIP3, so necroptosis
   inhibition must follow before the cell can be declared recovered.  A
   direct return A → 0 is structurally present but infeasible — exactly
   the shape the reachability analysis must discover. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse

type constants = {
  k_clox : float;  (** radiation-driven CLox production in mode 0 *)
  d_clox : float;  (** basal CLox turnover *)
  k_rip3 : float;  (** CLox → RIP3 coupling *)
  d_rip3 : float;
  k_casp3 : float;  (** CLox → casp3 coupling *)
  d_casp3 : float;
  k_lip : float;
  d_lip : float;
  k_il : float;
  d_il : float;
  k_par : float;
  d_par : float;
  crosstalk : float;  (** extra RIP3 drive while apoptosis is inhibited *)
  drug_kill : float;  (** first-order clearance added by an inhibitor *)
  lethal : float;  (** signature level at which the cell dies *)
  safe : float;  (** recovery level for the return jump to mode 0 *)
}

let default_constants =
  {
    k_clox = 0.4; d_clox = 0.1; k_rip3 = 0.3; d_rip3 = 0.05; k_casp3 = 0.25;
    d_casp3 = 0.02; k_lip = 0.05; d_lip = 0.08; k_il = 0.04; d_il = 0.08;
    k_par = 0.03; d_par = 0.08; crosstalk = 0.25; drug_kill = 2.0; lethal = 3.0;
    safe = 0.25;
  }

let mode0 = "m0"
let mode_a = "mA"
let mode_b = "mB"
let mode_c = "mC"
let mode_d = "mD"
let mode_e = "mE"
let mode_death = "death"

let vars = [ "clox"; "rip3"; "casp3"; "lip"; "il"; "par" ]

type threshold = [ `Free of string | `Fixed of float ]

let threshold_str = function
  | `Free name -> (name, [ name ])
  | `Fixed v -> (Printf.sprintf "%.17g" v, [])

let automaton ?(constants = default_constants) ?(theta1 = `Free "theta1")
    ?(theta2 = `Free "theta2") () =
  let c = constants in
  let t1, p1 = threshold_str theta1 in
  let t2, p2 = threshold_str theta2 in
  let params = p1 @ p2 in
  (* Baseline (untreated) flows: radiation drives CLox, which feeds the
     downstream death pathways; minor pathways rise slowly. *)
  let flow_m0 =
    [ ("clox", Printf.sprintf "%.17g - %.17g * clox" c.k_clox c.d_clox);
      ("rip3", Printf.sprintf "%.17g * clox - %.17g * rip3" c.k_rip3 c.d_rip3);
      ("casp3", Printf.sprintf "%.17g * clox - %.17g * casp3" c.k_casp3 c.d_casp3);
      ("lip", Printf.sprintf "%.17g * clox - %.17g * lip" c.k_lip c.d_lip);
      ("il", Printf.sprintf "%.17g * clox - %.17g * il" c.k_il c.d_il);
      ("par", Printf.sprintf "%.17g * clox - %.17g * par" c.k_par c.d_par) ]
  in
  (* A drug adds first-order clearance to its targets.  [boosts] adds
     crosstalk drive to pathways that compensate. *)
  let with_drug ~cleared ?(boosts = []) base =
    List.map
      (fun (v, rhs) ->
        let rhs =
          if List.mem v cleared then
            Printf.sprintf "%s - %.17g * %s" rhs c.drug_kill v
          else rhs
        in
        let rhs =
          if List.mem v boosts then Printf.sprintf "%s + %.17g" rhs c.crosstalk
          else rhs
        in
        (v, rhs))
      base
  in
  let flow_a = with_drug ~cleared:[ "clox"; "casp3" ] ~boosts:[ "rip3" ] flow_m0 in
  let flow_b = with_drug ~cleared:[ "clox"; "casp3"; "rip3" ] flow_m0 in
  let flow_c = with_drug ~cleared:[ "lip" ] flow_m0 in
  let flow_d = with_drug ~cleared:[ "il" ] flow_m0 in
  let flow_e = with_drug ~cleared:[ "par" ] flow_m0 in
  let flow_death = List.map (fun v -> (v, "0")) vars in
  let parse_flow = List.map (fun (v, rhs) -> (v, P.term rhs)) in
  (* Invariants enforce the monitoring policy (must-semantics): a live
     mode cannot be sustained past a lethal signature, mode 0 cannot be
     sustained once a drug trigger fires, and mode A must hand over to
     necroptosis inhibition when RIP3 crosses θ2. *)
  let lethal_inv =
    String.concat " and "
      (List.map
         (fun v -> Printf.sprintf "%s <= %.17g" v c.lethal)
         [ "casp3"; "rip3"; "lip"; "il"; "par" ])
  in
  let live_mode ?extra_inv name flow =
    let inv =
      match extra_inv with
      | None -> lethal_inv
      | Some e -> Printf.sprintf "%s and %s" lethal_inv e
    in
    Hybrid.Automaton.mode ~name ~flow:(parse_flow flow) ~invariant:(P.formula inv) ()
  in
  let triggers_m0 =
    Printf.sprintf "clox <= %s and lip <= %s and il <= %s and par <= %s" t1 t1 t1 t1
  in
  let modes =
    [ live_mode mode0 flow_m0 ~extra_inv:triggers_m0;
      live_mode mode_a flow_a ~extra_inv:(Printf.sprintf "rip3 <= %s" t2);
      live_mode mode_b flow_b; live_mode mode_c flow_c; live_mode mode_d flow_d;
      live_mode mode_e flow_e;
      Hybrid.Automaton.mode ~name:mode_death ~flow:(parse_flow flow_death) () ]
  in
  let lethal = Printf.sprintf "%.17g" c.lethal in
  let death_guard =
    P.formula
      (Printf.sprintf "casp3 >= %s or rip3 >= %s or lip >= %s or il >= %s or par >= %s"
         lethal lethal lethal lethal lethal)
  in
  let recovery_guard =
    P.formula
      (Printf.sprintf
         "clox <= %.17g and rip3 <= %.17g and casp3 <= %.17g and lip <= %.17g and il <= %.17g and par <= %.17g"
         c.safe c.safe c.safe c.safe c.safe c.safe)
  in
  let jump = Hybrid.Automaton.jump in
  let jumps =
    (* Drug-delivery decisions, triggered by molecular signatures. *)
    [ jump ~source:mode0 ~target:mode_a
        ~guard:(P.formula (Printf.sprintf "clox >= %s" t1)) ();
      jump ~source:mode_a ~target:mode_b
        ~guard:(P.formula (Printf.sprintf "rip3 >= %s" t2)) ();
      jump ~source:mode0 ~target:mode_c
        ~guard:(P.formula (Printf.sprintf "lip >= %s" t1)) ();
      jump ~source:mode0 ~target:mode_d
        ~guard:(P.formula (Printf.sprintf "il >= %s" t1)) ();
      jump ~source:mode0 ~target:mode_e
        ~guard:(P.formula (Printf.sprintf "par >= %s" t1)) ();
      (* Recovery: back to the untreated live mode. *)
      jump ~source:mode_a ~target:mode0 ~guard:recovery_guard ();
      jump ~source:mode_b ~target:mode0 ~guard:recovery_guard ();
      jump ~source:mode_c ~target:mode0 ~guard:recovery_guard ();
      jump ~source:mode_d ~target:mode0 ~guard:recovery_guard ();
      jump ~source:mode_e ~target:mode0 ~guard:recovery_guard () ]
    (* Death is reachable from every live mode. *)
    @ List.map
        (fun source -> jump ~source ~target:mode_death ~guard:death_guard ())
        [ mode0; mode_a; mode_b; mode_c; mode_d; mode_e ]
  in
  Hybrid.Automaton.create ~vars ~params ~modes ~jumps ~init_mode:mode0
    ~init:
      (Box.of_list
         (List.map
            (fun v -> (v, I.of_float (if String.equal v "clox" then 0.5 else 0.1)))
            vars))

(* Goal: the cell has recovered — it is back in the untreated live mode
   with every signature at a safe level. *)
let recovery_goal ?(constants = default_constants) () =
  {
    Reach.Encoding.goal_modes = [ mode0 ];
    predicate =
      P.formula
        (Printf.sprintf "clox <= %.17g and rip3 <= %.17g and casp3 <= %.17g"
           constants.safe constants.safe constants.safe);
  }

(* Goal: cell death (used to check that a candidate schedule avoids it). *)
let death_goal () =
  { Reach.Encoding.goal_modes = [ mode_death ]; predicate = Expr.Formula.tt }

(* Simulate a fixed-threshold treatment policy. *)
let simulate_policy ?(constants = default_constants) ~theta1 ~theta2 ~t_end () =
  let h = automaton ~constants ~theta1:(`Fixed theta1) ~theta2:(`Fixed theta2) () in
  Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end h
