(** Fenton–Karma three-variable cardiac cell model [Fenton & Karma 1998]
    as a 3-mode hybrid automaton — the model the paper *falsifies* against
    the epicardial spike-and-dome AP morphology (Sec. IV-A, CMSB'14).

    State: u (normalized transmembrane potential), v (fast gate), w (slow
    gate); modes split at the thresholds u_v and u_c of the Heaviside
    gates. *)

type constants = {
  tau_d : float;
  tau_r : float;
  tau_si : float;
  tau_0 : float;
  tau_v_plus : float;
  tau_v1_minus : float;
  tau_v2_minus : float;
  tau_w_plus : float;
  tau_w_minus : float;
  u_c : float;  (** excitation threshold *)
  u_v : float;  (** fast-gate threshold *)
  u_csi : float;
  k : float;
}

val beeler_reuter : constants
(** The Beeler–Reuter parameter fit (Fenton & Karma 1998, Table 1). *)

val mode_low : string
val mode_mid : string
val mode_high : string

val automaton :
  ?constants:constants ->
  ?free_params:string list ->
  ?stimulus:float ->
  unit ->
  Hybrid.Automaton.t
(** [free_params] promotes the named constants (e.g. ["tau_d"; "tau_si"])
    to synthesis parameters; [stimulus] is the initial potential (the cell
    is observed right after a stimulus). *)

val apd :
  ?constants:constants ->
  params:(string * float) list ->
  t_end:float ->
  unit ->
  float option
(** Action-potential duration (time to exit of the excited mode) by
    simulation; [None] when the cell never de-excites in the horizon. *)

val spike_and_dome_goal : ?dome:float -> unit -> Reach.Encoding.goal
(** Re-excitation to a dome of height ≥ [dome] after partial
    repolarization — combine with [min_jumps ≥ 2].  The paper's result:
    unsat. *)
