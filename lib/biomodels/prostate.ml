(* Intermittent androgen suppression (IAS) therapy for prostate cancer as
   a two-mode hybrid automaton — the personalized-therapy case study of
   Sec. IV-B (following Liu et al., HSCC'15, built on the Ideta et al.
   model).

   State: x (androgen-dependent cells), y (androgen-independent cells),
   z (serum androgen).  The serum PSA proxy is v = c1·x + c2·y.

   Modes:
     on_treatment   androgen is suppressed:  dz/dt = -z/τ
     off_treatment  androgen recovers:       dz/dt = (z0 - z)/τ

   Cell dynamics (both modes):
     dx/dt = (G(z) - M(z))·x
     dy/dt = M(z)·x + (α_y·(1 - d·z/z0) - β_y)·y
   with net AD growth G(z) = α_x(k1 + (1-k1)·z/(z+k2)) - β_x(k3 + (1-k3)·z/(z+k4))
   and mutation rate M(z) = m1·(1 - z/z0).

   Therapy design: the on/off thresholds r0 (pause treatment when PSA
   falls below) and r1 (resume when PSA exceeds) are *parameters of the
   jump conditions*; identifying values for which the androgen-independent
   population never reaches the relapse level is a parameter-synthesis-
   for-reachability problem (Definition 13). *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse

type constants = {
  alpha_x : float;  (** AD proliferation /day *)
  beta_x : float;  (** AD apoptosis /day *)
  alpha_y : float;  (** AI proliferation /day *)
  beta_y : float;  (** AI apoptosis /day *)
  k1 : float;
  k2 : float;
  k3 : float;
  k4 : float;
  m1 : float;  (** maximum mutation rate AD -> AI *)
  z0 : float;  (** homeostatic androgen level (nM) *)
  tau : float;  (** androgen dynamics time constant (days) *)
  d : float;  (** androgen dependence of AI growth *)
  c1 : float;  (** PSA contribution of AD cells *)
  c2 : float;  (** PSA contribution of AI cells *)
}

(* Ideta et al. (2008)-style parameterization. *)
let default_constants =
  {
    alpha_x = 0.0204; beta_x = 0.0076; alpha_y = 0.0242; beta_y = 0.0168;
    k1 = 0.0; k2 = 2.0; k3 = 8.0; k4 = 0.5; m1 = 0.00005; z0 = 12.0; tau = 12.5;
    d = 0.45; c1 = 1.0; c2 = 1.0;
  }

let mode_on = "on_treatment"
let mode_off = "off_treatment"

let psa_term c = Printf.sprintf "(%.17g * x + %.17g * y)" c.c1 c.c2

(* Cell-population right-hand sides shared by both modes. *)
let cell_flows c =
  let growth =
    Printf.sprintf
      "(%.17g * (%.17g + %.17g * z / (z + %.17g)) - %.17g * (%.17g + %.17g * z / (z + %.17g)))"
      c.alpha_x c.k1 (1.0 -. c.k1) c.k2 c.beta_x c.k3 (1.0 -. c.k3) c.k4
  in
  let mutation = Printf.sprintf "(%.17g * (1 - z / %.17g))" c.m1 c.z0 in
  [ ("x", P.term (Printf.sprintf "(%s - %s) * x" growth mutation));
    ("y",
     P.term
       (Printf.sprintf "%s * x + (%.17g * (1 - %.17g * z / %.17g) - %.17g) * y"
          mutation c.alpha_y c.d c.z0 c.beta_y)) ]

(* The IAS automaton.  [r0_free]/[r1_free] promote the thresholds to
   synthesis parameters named "r0"/"r1"; otherwise fixed values are baked
   into the guards. *)
let automaton ?(constants = default_constants) ?(r0 = `Free) ?(r1 = `Free)
    ?(x0 = 15.0) ?(y0 = 0.1) () =
  let c = constants in
  let psa = psa_term c in
  let threshold name = function
    | `Free -> (name, [ name ])
    | `Fixed value -> (Printf.sprintf "%.17g" value, [])
  in
  let r0_str, p0 = threshold "r0" r0 in
  let r1_str, p1 = threshold "r1" r1 in
  let params = p0 @ p1 in
  (* Invariants make the protocol mandatory (must-semantics): treatment
     cannot continue once PSA has fallen to r0, and cannot stay paused
     once PSA has rebounded to r1 — the HSCC'15 encoding. *)
  let on_mode =
    Hybrid.Automaton.mode ~name:mode_on
      ~flow:(cell_flows c @ [ ("z", P.term (Printf.sprintf "-(z / %.17g)" c.tau)) ])
      ~invariant:(P.formula (Printf.sprintf "%s >= %s" psa r0_str))
      ()
  in
  let off_mode =
    Hybrid.Automaton.mode ~name:mode_off
      ~flow:
        (cell_flows c
        @ [ ("z", P.term (Printf.sprintf "(%.17g - z) / %.17g" c.z0 c.tau)) ])
      ~invariant:(P.formula (Printf.sprintf "%s <= %s" psa r1_str))
      ()
  in
  let jumps =
    [ Hybrid.Automaton.jump ~source:mode_on ~target:mode_off
        ~guard:(P.formula (Printf.sprintf "%s <= %s" psa r0_str))
        ();
      Hybrid.Automaton.jump ~source:mode_off ~target:mode_on
        ~guard:(P.formula (Printf.sprintf "%s >= %s" psa r1_str))
        () ]
  in
  Hybrid.Automaton.create ~vars:[ "x"; "y"; "z" ] ~params ~modes:[ on_mode; off_mode ]
    ~jumps ~init_mode:mode_on
    ~init:
      (Box.of_list
         [ ("x", I.of_float x0); ("y", I.of_float y0); ("z", I.of_float constants.z0) ])

(* Relapse: the androgen-independent population exceeds [level] (the
   castration-resistant takeover the therapy must avoid). *)
let relapse_goal ?(level = 1.0) () =
  {
    Reach.Encoding.goal_modes = [];
    predicate = P.formula (Printf.sprintf "y >= %.17g" level);
  }

(* PSA of a simulated state. *)
let psa ?(constants = default_constants) env =
  (constants.c1 *. List.assoc "x" env) +. (constants.c2 *. List.assoc "y" env)

(* Simulate a fixed-threshold therapy and report (final y, number of
   treatment cycles, trajectory). *)
let simulate_therapy ?(constants = default_constants) ~r0 ~r1 ~t_end () =
  let h = automaton ~constants ~r0:(`Fixed r0) ~r1:(`Fixed r1) () in
  let traj = Hybrid.Simulate.simulate ~params:[] ~init:[] ~t_end h in
  let cycles =
    List.length
      (List.filter
         (fun (seg : Hybrid.Simulate.segment) ->
           String.equal seg.Hybrid.Simulate.seg_mode mode_off)
         traj.Hybrid.Simulate.segments)
  in
  (List.assoc "y" traj.Hybrid.Simulate.final_env, cycles, traj)
