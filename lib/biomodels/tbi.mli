(** Multi-mode model of the irradiation-induced cell-death network of
    Fig. 1 / Fig. 3 — the combination-therapy case study of Sec. IV-B.

    Synthetic mass-action surrogate (the wet-lab dynamics are
    proprietary; see DESIGN.md §2) keeping exactly what the analysis
    depends on: the Fig. 3 mode/jump topology (live mode 0, inhibitor
    modes A–E, absorbing death), monotone signature growth untreated,
    clearance under each drug, and the apoptosis→necroptosis crosstalk
    that forces multi-drug schedules.  The drug-delivery thresholds θ1
    (CLox → JP4-039) and θ2 (RIP3 → necrostatin-1) are synthesis
    parameters. *)

type constants = {
  k_clox : float;
  d_clox : float;
  k_rip3 : float;
  d_rip3 : float;
  k_casp3 : float;
  d_casp3 : float;
  k_lip : float;
  d_lip : float;
  k_il : float;
  d_il : float;
  k_par : float;
  d_par : float;
  crosstalk : float;  (** extra RIP3 drive while apoptosis is inhibited *)
  drug_kill : float;  (** first-order clearance added by an inhibitor *)
  lethal : float;  (** signature level at which the cell dies *)
  safe : float;  (** recovery level for the return jump to mode 0 *)
}

val default_constants : constants

val mode0 : string
val mode_a : string
val mode_b : string
val mode_c : string
val mode_d : string
val mode_e : string
val mode_death : string

val vars : string list
(** clox, rip3, casp3, lip, il, par. *)

type threshold = [ `Free of string | `Fixed of float ]

val automaton :
  ?constants:constants -> ?theta1:threshold -> ?theta2:threshold -> unit ->
  Hybrid.Automaton.t

val recovery_goal : ?constants:constants -> unit -> Reach.Encoding.goal
(** Back in the untreated live mode with safe signature levels. *)

val death_goal : unit -> Reach.Encoding.goal

val simulate_policy :
  ?constants:constants ->
  theta1:float ->
  theta2:float ->
  t_end:float ->
  unit ->
  Hybrid.Simulate.trajectory
