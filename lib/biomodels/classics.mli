(** Classic small systems used across the experiments: calibration
    targets, stability-analysis subjects (mass-action relaxation
    surrogates; see DESIGN.md), and the p53 oscillator for SMC. *)

val lotka_volterra : Ode.System.t
(** Predator–prey with shared rate parameters a, b (calibration workload E7). *)

val lotka_volterra_full : Ode.System.t
(** Four-parameter variant (a, b, c, d). *)

val erk_cascade : Ode.System.t
(** Linear deactivation cascade (mek → erk → erkpp), stable at 0. *)

val proofreading : Ode.System.t
(** Kinetic-proofreading-like chain with cubic discard terms. *)

val damped_nonlinear : Ode.System.t
(** x' = −x³ − y, y' = x − y³ — the textbook Lyapunov benchmark. *)

val damped_rotation : Ode.System.t
(** x' = −x − y, y' = x − y. *)

val p53_mdm2 : Ode.System.t
(** p53–Mdm2 negative feedback with a "damage" parameter: pulses after
    DNA damage (the SMC workload E8). *)

val sir : Ode.System.t
(** SIR epidemic (beta, gamma). *)

val unit_box : string list -> Interval.Box.t
(** [-1, 1] box over the given variables. *)

val positive_box : ?hi:float -> string list -> Interval.Box.t
