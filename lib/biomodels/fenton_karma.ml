(* Fenton–Karma three-variable cardiac cell model [Fenton & Karma, Chaos
   1998] as a hybrid automaton — the model the paper *falsifies* against
   the epicardial "spike-and-dome" action-potential morphology
   (Sec. IV-A, following Liu et al. CMSB'14).

   State: u (transmembrane potential, normalized), v (fast inward gate),
   w (slow inward gate).  The Heaviside gates Θ(u - u_c) and Θ(u - u_v)
   partition the dynamics into three modes:

     low   u < u_v         p = 0, q = 0
     mid   u_v ≤ u < u_c   p = 0, q = 1
     high  u ≥ u_c         p = 1

   Currents:
     J_fi = -v·Θ(u-u_c)·(1-u)(u-u_c)/τ_d        (fast inward)
     J_so =  u·(1-Θ(u-u_c))/τ_0 + Θ(u-u_c)/τ_r  (slow outward)
     J_si = -w·(1 + tanh(k(u-u_csi)))/(2 τ_si)   (slow inward)
     du/dt = -(J_fi + J_so + J_si)

   Gates:
     dv/dt = (1-p)(1-v)/τ_v⁻(u) - p·v/τ_v⁺ with τ_v⁻ = q·τ_v1⁻+(1-q)·τ_v2⁻
     dw/dt = (1-p)(1-w)/τ_w⁻ - p·w/τ_w⁺

   Constants default to the Beeler–Reuter fit of the original paper. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse

type constants = {
  tau_d : float;  (** fast inward (depolarization) time scale *)
  tau_r : float;  (** repolarization *)
  tau_si : float;  (** slow inward *)
  tau_0 : float;  (** slow outward below u_c *)
  tau_v_plus : float;
  tau_v1_minus : float;
  tau_v2_minus : float;
  tau_w_plus : float;
  tau_w_minus : float;
  u_c : float;  (** excitation threshold *)
  u_v : float;  (** fast-gate threshold *)
  u_csi : float;  (** slow-inward sigmoid center *)
  k : float;  (** slow-inward sigmoid steepness *)
}

(* Beeler–Reuter parameter fit from Fenton & Karma (1998), Table 1. *)
let beeler_reuter =
  {
    tau_d = 0.25; tau_r = 33.0; tau_si = 30.0; tau_0 = 12.5; tau_v_plus = 3.33;
    tau_v1_minus = 1250.0; tau_v2_minus = 19.6; tau_w_plus = 870.0;
    tau_w_minus = 41.0; u_c = 0.13; u_v = 0.04; u_csi = 0.85; k = 10.0;
  }

let mode_low = "fk_low"
let mode_mid = "fk_mid"
let mode_high = "fk_high"

(* Render a constant either as a literal or as a free parameter name. *)
let lit ~free name value =
  if List.mem name free then name else Printf.sprintf "%.17g" value

(* Build the automaton.  [free_params] names constants promoted to
   synthesis parameters (e.g. ["tau_d"; "tau_si"]); [stimulus] is the
   initial normalized potential (the cell is observed right after a
   stimulus, so no time-dependent forcing term is needed). *)
let automaton ?(constants = beeler_reuter) ?(free_params = []) ?(stimulus = 0.3) () =
  let c = constants in
  let f = free_params in
  let tau_d = lit ~free:f "tau_d" c.tau_d in
  let tau_r = lit ~free:f "tau_r" c.tau_r in
  let tau_si = lit ~free:f "tau_si" c.tau_si in
  let tau_0 = lit ~free:f "tau_0" c.tau_0 in
  let j_si = Printf.sprintf "-(w * (1 + tanh(%.17g * (u - %.17g))) / (2 * %s))" c.k c.u_csi tau_si in
  let du_low_mid = Printf.sprintf "-(u / %s + %s)" tau_0 j_si in
  let du_high =
    Printf.sprintf "-(-(v * (1 - u) * (u - %.17g) / %s) + 1 / %s + %s)" c.u_c tau_d
      tau_r j_si
  in
  let dv_recover tau_v_minus = Printf.sprintf "(1 - v) / %.17g" tau_v_minus in
  let dw_recover = Printf.sprintf "(1 - w) / %.17g" c.tau_w_minus in
  let low =
    Hybrid.Automaton.mode ~name:mode_low
      ~flow:
        [ ("u", P.term du_low_mid);
          ("v", P.term (dv_recover c.tau_v2_minus));
          ("w", P.term dw_recover) ]
      ~invariant:(P.formula (Printf.sprintf "u <= %.17g" c.u_v))
      ()
  in
  let mid =
    Hybrid.Automaton.mode ~name:mode_mid
      ~flow:
        [ ("u", P.term du_low_mid);
          ("v", P.term (dv_recover c.tau_v1_minus));
          ("w", P.term dw_recover) ]
      ~invariant:(P.formula (Printf.sprintf "u >= %.17g and u <= %.17g" c.u_v c.u_c))
      ()
  in
  let high =
    Hybrid.Automaton.mode ~name:mode_high
      ~flow:
        [ ("u", P.term du_high);
          ("v", P.term (Printf.sprintf "-(v / %.17g)" c.tau_v_plus));
          ("w", P.term (Printf.sprintf "-(w / %.17g)" c.tau_w_plus)) ]
      ~invariant:(P.formula (Printf.sprintf "u >= %.17g" c.u_c))
      ()
  in
  let guard s = P.formula s in
  let jumps =
    [ Hybrid.Automaton.jump ~source:mode_low ~target:mode_mid
        ~guard:(guard (Printf.sprintf "u >= %.17g" c.u_v)) ();
      Hybrid.Automaton.jump ~source:mode_mid ~target:mode_high
        ~guard:(guard (Printf.sprintf "u >= %.17g" c.u_c)) ();
      Hybrid.Automaton.jump ~source:mode_mid ~target:mode_low
        ~guard:(guard (Printf.sprintf "u <= %.17g" c.u_v)) ();
      Hybrid.Automaton.jump ~source:mode_high ~target:mode_mid
        ~guard:(guard (Printf.sprintf "u <= %.17g" c.u_c)) () ]
  in
  let init_mode =
    if stimulus >= c.u_c then mode_high
    else if stimulus >= c.u_v then mode_mid
    else mode_low
  in
  Hybrid.Automaton.create ~vars:[ "u"; "v"; "w" ] ~params:free_params
    ~modes:[ low; mid; high ] ~jumps ~init_mode
    ~init:
      (Box.of_list
         [ ("u", I.of_float stimulus); ("v", I.of_float 1.0); ("w", I.of_float 1.0) ])

(* Action-potential duration: time from stimulus to exit of the excited
   mode (u falling below u_c), by simulation.  Returns [None] when the
   cell never de-excites within the horizon. *)
let apd ?(constants = beeler_reuter) ~params ~t_end () =
  let h = automaton ~constants () in
  let traj = Hybrid.Simulate.simulate ~params ~init:[] ~t_end h in
  let crossing =
    List.find_map
      (fun (seg : Hybrid.Simulate.segment) ->
        if String.equal seg.Hybrid.Simulate.seg_mode mode_high then
          let t_exit =
            seg.Hybrid.Simulate.t_global
            +. Ode.Integrate.final_time seg.Hybrid.Simulate.trace
          in
          Some t_exit
        else None)
      traj.Hybrid.Simulate.segments
  in
  match crossing with
  | Some t when t < t_end -. 1e-6 -> Some t
  | _ -> None

(* The spike-and-dome reachability question (Sec. IV-A): after the initial
   excitation (mode high) and partial repolarization (mode mid), can the
   potential re-excite to a dome of height ≥ [dome] without any further
   stimulus?  The paper's result: unsat — Fenton–Karma cannot produce the
   epicardial notch-and-dome morphology. *)
let spike_and_dome_goal ?(dome = 0.5) () =
  {
    Reach.Encoding.goal_modes = [ mode_high ];
    predicate = P.formula (Printf.sprintf "u >= %.17g" dome);
  }
