(** Bueno–Cherry–Fenton minimal ventricular model [Bueno-Orovio, Cherry &
    Fenton 2008] as a 4-mode hybrid automaton — the model in which the
    paper identifies parameter ranges causing cardiac disorders
    (Sec. IV-A, CMSB'14).

    State: u (potential), v, w (gates), s (slow-current gate); modes
    split at θ_o = θ_v⁻ = 0.006, θ_w = 0.13, θ_v = 0.3. *)

type constants = {
  u_o : float;
  u_u : float;
  theta_v : float;
  theta_w : float;
  theta_v_minus : float;
  theta_o : float;
  tau_v1_minus : float;
  tau_v2_minus : float;
  tau_v_plus : float;
  tau_w1_minus : float;
  tau_w2_minus : float;
  k_w_minus : float;
  u_w_minus : float;
  tau_w_plus : float;
  tau_fi : float;
  tau_o1 : float;
  tau_o2 : float;
  tau_so1 : float;
  tau_so2 : float;
  k_so : float;
  u_so : float;
  tau_s1 : float;
  tau_s2 : float;
  k_s : float;
  u_s : float;
  tau_si : float;
  tau_w_inf : float;
  w_inf_star : float;
}

val epi : constants
(** The epicardial parameter set (Table 1 of the original paper; nominal
    APD ≈ 270 ms). *)

val mode1 : string
val mode2 : string
val mode3 : string
val mode4 : string
(** The excited mode (J_fi active). *)

val automaton :
  ?constants:constants ->
  ?free_params:string list ->
  ?stimulus:float ->
  ?stimulus_width:float ->
  unit ->
  Hybrid.Automaton.t
(** [stimulus_width > 0] widens the initial potential into a box — the
    input range of the robustness study (Sec. IV-C). *)

val apd :
  ?constants:constants ->
  ?stimulus:float ->
  params:(string * float) list ->
  t_end:float ->
  unit ->
  float option
(** Time from stimulus until the potential falls back below θ_w after
    excitation. *)

val excitation_goal : ?peak:float -> unit -> Reach.Encoding.goal
(** A full action potential fires (u ≥ [peak] in the excited mode). *)

val early_repolarization_goal : ?w_min:float -> ?window:float -> unit -> Reach.Encoding.goal
(** Tachycardia-like collapse: back below θ_o within [window] ms of entry
    into mode 1 with the slow gate still high (w ≥ [w_min]). *)
