(* Classic small biological systems used across the experiments: a
   calibration target (Lotka–Volterra), stability-analysis subjects
   (mass-action relaxation networks, per Sec. IV-C), and a p53 oscillator
   for the SMC branch.

   The stability subjects are simplified surrogates of the networks
   analyzed by the Lyapunov literature the paper cites (kinetic
   proofreading, ERK): linear/polynomial relaxation cascades with a
   globally stable equilibrium at the origin.  DESIGN.md documents the
   simplification. *)

module I = Interval.Ia
module Box = Interval.Box

let sys = Ode.System.of_strings

(* Lotka–Volterra predator–prey: the calibration workload (E7).  Ground
   truth a = b = c = d = 1 with x0 = y0 = 1. *)
let lotka_volterra =
  sys ~vars:[ "x"; "y" ] ~params:[ "a"; "b" ]
    ~rhs:[ ("x", "a*x - b*x*y"); ("y", "b*x*y - a*y") ]

let lotka_volterra_full =
  sys ~vars:[ "x"; "y" ] ~params:[ "a"; "b"; "c"; "d" ]
    ~rhs:[ ("x", "a*x - b*x*y"); ("y", "c*x*y - d*y") ]

(* Deactivation cascade (ERK-like): once the stimulus is removed, active
   kinase levels relax to zero through linear dephosphorylation with
   cascade coupling.  Globally stable at the origin. *)
let erk_cascade =
  sys ~vars:[ "mek"; "erk"; "erkpp" ] ~params:[]
    ~rhs:
      [ ("mek", "-0.5 * mek");
        ("erk", "0.5 * mek - 0.8 * erk");
        ("erkpp", "0.8 * erk - 1.2 * erkpp") ]

(* Kinetic-proofreading-like chain with nonlinear (mass-action squared)
   discard steps: intermediate complexes decay to zero after antigen
   removal; the cubic terms make the stability question genuinely
   nonlinear. *)
let proofreading =
  sys ~vars:[ "c0"; "c1" ] ~params:[]
    ~rhs:
      [ ("c0", "-0.9 * c0 - 0.4 * c0^3");
        ("c1", "0.6 * c0 - 1.1 * c1 - 0.3 * c1^3") ]

(* Damped nonlinear oscillator — the textbook Lyapunov benchmark
   x' = -x³ - y, y' = x - y³ (V = x² + y² works; V̇ = -2x⁴ - 2y⁴). *)
let damped_nonlinear =
  sys ~vars:[ "x"; "y" ] ~params:[]
    ~rhs:[ ("x", "-(x^3) - y"); ("y", "x - y^3") ]

(* Linearly damped rotation (for quick tests). *)
let damped_rotation =
  sys ~vars:[ "x"; "y" ] ~params:[]
    ~rhs:[ ("x", "-x - y"); ("y", "x - y") ]

(* p53–Mdm2 negative feedback (radiation-response oscillator, cf. the
   paper's refs on p53 dynamics after ionizing radiation).  With the
   Hill-type repression below, p53 pulses after DNA damage and relaxes;
   the SMC experiment asks for the probability that p53 exceeds a
   response threshold within a time bound under noisy initial damage. *)
let p53_mdm2 =
  sys ~vars:[ "p53"; "mdm2" ] ~params:[ "damage" ]
    ~rhs:
      [ ("p53", "0.9 * damage / (damage + 0.5) - 1.2 * mdm2 * p53 / (p53 + 0.1) - 0.1 * p53");
        ("mdm2", "0.8 * p53 * p53 / (p53 * p53 + 0.25) - 0.7 * mdm2") ]

(* SIR epidemic (extra example workload for the quickstart). *)
let sir =
  sys ~vars:[ "s"; "i"; "r" ] ~params:[ "beta"; "gamma" ]
    ~rhs:
      [ ("s", "-(beta * s * i)");
        ("i", "beta * s * i - gamma * i");
        ("r", "gamma * i") ]

(* Standard region boxes for the stability studies. *)
let unit_box vars =
  Box.of_list (List.map (fun v -> (v, I.make (-1.0) 1.0)) vars)

let positive_box ?(hi = 1.0) vars =
  Box.of_list (List.map (fun v -> (v, I.make 0.0 hi)) vars)
