(* Genetic circuit models — the gene-network analysis workloads of the
   paper's related work (temporal-logic analysis of gene networks under
   parameter uncertainty, its ref [46]).

   The toggle switch [Gardner, Cantor & Collins 2000] is the canonical
   bistability benchmark: reachability of either stable expression state
   from an uncertain initial condition is a δ-decision question, and the
   bistability region of the Hill parameters is a synthesis question.

   The repressilator [Elowitz & Leibler 2000] is the canonical genetic
   oscillator, used here as an oscillation workload for the monitors. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse

(* ---- Toggle switch ----

   du/dt = a1 / (1 + v^n) - u
   dv/dt = a2 / (1 + u^m) - v

   For a1 = a2 = 4 and n = m = 2 the system is bistable: attractors near
   (u, v) ≈ (3.87, 0.26) and (0.26, 3.87). *)

let toggle_switch =
  Ode.System.of_strings ~vars:[ "u"; "v" ] ~params:[ "a1"; "a2" ]
    ~rhs:[ ("u", "a1 / (1 + v^2) - u"); ("v", "a2 / (1 + u^2) - v") ]

(* The toggle switch as a single-mode automaton with an uncertain initial
   expression box (for reachability analysis). *)
let toggle_automaton ?(u0 = I.make 0.0 0.5) ?(v0 = I.make 0.0 0.5) () =
  Hybrid.Automaton.of_system
    ~init:(Box.of_list [ ("u", u0); ("v", v0) ])
    toggle_switch

(* Goal: the circuit latches into the u-high state. *)
let u_high_goal ?(level = 3.0) () =
  {
    Reach.Encoding.goal_modes = [];
    predicate = P.formula (Printf.sprintf "u >= %.17g" level);
  }

let v_high_goal ?(level = 3.0) () =
  {
    Reach.Encoding.goal_modes = [];
    predicate = P.formula (Printf.sprintf "v >= %.17g" level);
  }

(* Steady state reached by simulation from a point. *)
let toggle_settles ~a1 ~a2 ~u0 ~v0 =
  let tr =
    Ode.Integrate.simulate
      ~params:[ ("a1", a1); ("a2", a2) ]
      ~init:[ ("u", u0); ("v", v0) ]
      ~t_end:50.0 toggle_switch
  in
  let final = Ode.Integrate.final_state tr in
  (final.(0), final.(1))

(* Is the circuit bistable at these production rates?  Empirical check:
   opposite corners settle into distinct attractors. *)
let bistable ?(separation = 1.0) ~a1 ~a2 () =
  let u_a, v_a = toggle_settles ~a1 ~a2 ~u0:2.0 ~v0:0.0 in
  let u_b, v_b = toggle_settles ~a1 ~a2 ~u0:0.0 ~v0:2.0 in
  Float.abs (u_a -. u_b) > separation && Float.abs (v_a -. v_b) > separation

(* ---- Repressilator ----

   Three genes repressing each other in a cycle (protein-only reduction):
     dx/dt = alpha / (1 + z^n) - x        (+ basal leak alpha0)
   Oscillates for sufficiently strong repression and cooperativity. *)

let repressilator =
  Ode.System.of_strings ~vars:[ "x"; "y"; "z" ] ~params:[ "alpha" ]
    ~rhs:
      [ ("x", "0.2 + alpha / (1 + y^4) - x");
        ("y", "0.2 + alpha / (1 + z^4) - y");
        ("z", "0.2 + alpha / (1 + x^4) - z") ]
(* The Hill cooperativity is fixed at 4 (integer exponents keep the terms
   polynomial-friendly for interval reasoning). *)

let simulate_repressilator ?(alpha = 8.0) ~t_end () =
  Ode.Integrate.simulate
    ~params:[ ("alpha", alpha) ]
    ~init:[ ("x", 1.2); ("y", 1.0); ("z", 0.8) ]
    ~t_end repressilator

(* Count maxima of a signal (oscillation evidence). *)
let count_peaks ?(min_prominence = 0.1) signal =
  let n = Array.length signal in
  let peaks = ref 0 in
  for i = 1 to n - 2 do
    if
      signal.(i) > signal.(i - 1)
      && signal.(i) >= signal.(i + 1)
      && signal.(i) > min_prominence
    then incr peaks
  done;
  !peaks
