(* Bueno–Cherry–Fenton minimal ventricular action-potential model
   [Bueno-Orovio, Cherry & Fenton, J. Theor. Biol. 2008] as a 4-mode
   hybrid automaton — the model in which the paper identifies parameter
   ranges causing cardiac disorders (Sec. IV-A, following CMSB'14).

   State: u (potential), v, w (gates), s (slow current gate).  The
   Heaviside switches at θ_o = θ_v⁻ = 0.006, θ_w = 0.13 and θ_v = 0.3
   partition the dynamics into four modes:

     m1:  u < 0.006          m2:  0.006 ≤ u < 0.13
     m3:  0.13 ≤ u < 0.3     m4:  u ≥ 0.3 (excited; J_fi active)

   Within each mode the gate equations specialize as in the original
   paper; the tanh-shaped time "constants" τ_so(u), τ_w⁻(u) and the
   steady state s_∞(u) remain smooth functions of u.  Constants default
   to the epicardial (EPI) set of Table 1. *)

module I = Interval.Ia
module Box = Interval.Box
module P = Expr.Parse

type constants = {
  u_o : float;
  u_u : float;  (** peak potential scale *)
  theta_v : float;
  theta_w : float;
  theta_v_minus : float;
  theta_o : float;
  tau_v1_minus : float;
  tau_v2_minus : float;
  tau_v_plus : float;
  tau_w1_minus : float;
  tau_w2_minus : float;
  k_w_minus : float;
  u_w_minus : float;
  tau_w_plus : float;
  tau_fi : float;
  tau_o1 : float;
  tau_o2 : float;
  tau_so1 : float;
  tau_so2 : float;
  k_so : float;
  u_so : float;
  tau_s1 : float;
  tau_s2 : float;
  k_s : float;
  u_s : float;
  tau_si : float;
  tau_w_inf : float;
  w_inf_star : float;
}

(* Epicardial parameter set (Bueno-Orovio et al. 2008, Table 1). *)
let epi =
  {
    u_o = 0.0; u_u = 1.55; theta_v = 0.3; theta_w = 0.13; theta_v_minus = 0.006;
    theta_o = 0.006; tau_v1_minus = 60.0; tau_v2_minus = 1150.0; tau_v_plus = 1.4506;
    tau_w1_minus = 60.0; tau_w2_minus = 15.0; k_w_minus = 65.0; u_w_minus = 0.03;
    tau_w_plus = 200.0; tau_fi = 0.11; tau_o1 = 400.0; tau_o2 = 6.0;
    tau_so1 = 30.0181; tau_so2 = 0.9957; k_so = 2.0458; u_so = 0.65; tau_s1 = 2.7342;
    tau_s2 = 16.0; k_s = 2.0994; u_s = 0.9087; tau_si = 1.8875; tau_w_inf = 0.07;
    w_inf_star = 0.94;
  }

let mode1 = "bcf_m1"
let mode2 = "bcf_m2"
let mode3 = "bcf_m3"
let mode4 = "bcf_m4"

let lit ~free name value =
  if List.mem name free then name else Printf.sprintf "%.17g" value

(* Build the automaton; [free_params] promotes the named constants to
   synthesis parameters (the CMSB'14 study varied tau_so1, tau_fi, …).
   [stimulus] sets the initial potential; [stimulus_width] widens it into
   a box (for robustness analysis over stimulation amplitudes). *)
let automaton ?(constants = epi) ?(free_params = []) ?(stimulus = 0.4)
    ?(stimulus_width = 0.0) () =
  let c = constants in
  let f = free_params in
  let tau_fi = lit ~free:f "tau_fi" c.tau_fi in
  let tau_o1 = lit ~free:f "tau_o1" c.tau_o1 in
  let tau_o2 = lit ~free:f "tau_o2" c.tau_o2 in
  let tau_so1 = lit ~free:f "tau_so1" c.tau_so1 in
  let tau_si = lit ~free:f "tau_si" c.tau_si in
  (* Smooth auxiliary expressions. *)
  let tau_so =
    Printf.sprintf "(%s + (%.17g - %s) * (1 + tanh(%.17g * (u - %.17g))) / 2)"
      tau_so1 c.tau_so2 tau_so1 c.k_so c.u_so
  in
  let tau_w_minus =
    Printf.sprintf "(%.17g + (%.17g - %.17g) * (1 + tanh(%.17g * (u - %.17g))) / 2)"
      c.tau_w1_minus c.tau_w2_minus c.tau_w1_minus c.k_w_minus c.u_w_minus
  in
  let s_inf = Printf.sprintf "((1 + tanh(%.17g * (u - %.17g))) / 2)" c.k_s c.u_s in
  let j_fi = Printf.sprintf "(-(v * (u - %.17g) * (%.17g - u) / %s))" c.theta_v c.u_u tau_fi in
  let j_so_low tau_o = Printf.sprintf "((u - %.17g) / %s)" c.u_o tau_o in
  let j_so_high = Printf.sprintf "(1 / %s)" tau_so in
  let j_si = Printf.sprintf "(-(w * s / %s))" tau_si in
  let ds tau_s = Printf.sprintf "(%s - s) / %.17g" s_inf tau_s in
  let mode ~name ~du ~dv ~dw ~ds:ds_rhs ~inv =
    Hybrid.Automaton.mode ~name
      ~flow:[ ("u", P.term du); ("v", P.term dv); ("w", P.term dw); ("s", P.term ds_rhs) ]
      ~invariant:(P.formula inv) ()
  in
  let m1 =
    mode ~name:mode1
      ~du:(Printf.sprintf "-(%s)" (j_so_low tau_o1))
      ~dv:(Printf.sprintf "(1 - v) / %.17g" c.tau_v1_minus)
      ~dw:(Printf.sprintf "((1 - u / %.17g) - w) / %s" c.tau_w_inf tau_w_minus)
      ~ds:(ds c.tau_s1)
      ~inv:(Printf.sprintf "u <= %.17g" c.theta_o)
  in
  let m2 =
    mode ~name:mode2
      ~du:(Printf.sprintf "-(%s)" (j_so_low tau_o2))
      ~dv:(Printf.sprintf "-(v / %.17g)" c.tau_v2_minus)
      ~dw:(Printf.sprintf "(%.17g - w) / %s" c.w_inf_star tau_w_minus)
      ~ds:(ds c.tau_s1)
      ~inv:(Printf.sprintf "u >= %.17g and u <= %.17g" c.theta_o c.theta_w)
  in
  let m3 =
    mode ~name:mode3
      ~du:(Printf.sprintf "-(%s + %s)" j_so_high j_si)
      ~dv:(Printf.sprintf "-(v / %.17g)" c.tau_v2_minus)
      ~dw:(Printf.sprintf "-(w / %.17g)" c.tau_w_plus)
      ~ds:(ds c.tau_s2)
      ~inv:(Printf.sprintf "u >= %.17g and u <= %.17g" c.theta_w c.theta_v)
  in
  let m4 =
    mode ~name:mode4
      ~du:(Printf.sprintf "-(%s + %s + %s)" j_fi j_so_high j_si)
      ~dv:(Printf.sprintf "-(v / %.17g)" c.tau_v_plus)
      ~dw:(Printf.sprintf "-(w / %.17g)" c.tau_w_plus)
      ~ds:(ds c.tau_s2)
      ~inv:(Printf.sprintf "u >= %.17g" c.theta_v)
  in
  let up source target threshold =
    Hybrid.Automaton.jump ~source ~target
      ~guard:(P.formula (Printf.sprintf "u >= %.17g" threshold))
      ()
  in
  let down source target threshold =
    Hybrid.Automaton.jump ~source ~target
      ~guard:(P.formula (Printf.sprintf "u <= %.17g" threshold))
      ()
  in
  let jumps =
    [ up mode1 mode2 c.theta_o; up mode2 mode3 c.theta_w; up mode3 mode4 c.theta_v;
      down mode4 mode3 c.theta_v; down mode3 mode2 c.theta_w; down mode2 mode1 c.theta_o ]
  in
  let init_mode =
    if stimulus >= c.theta_v then mode4
    else if stimulus >= c.theta_w then mode3
    else if stimulus >= c.theta_o then mode2
    else mode1
  in
  Hybrid.Automaton.create ~vars:[ "u"; "v"; "w"; "s" ] ~params:free_params
    ~modes:[ m1; m2; m3; m4 ] ~jumps ~init_mode
    ~init:
      (Box.of_list
         [ ("u", I.make stimulus (stimulus +. stimulus_width));
           ("v", I.of_float 1.0); ("w", I.of_float 1.0); ("s", I.of_float 0.0) ])

(* Action-potential duration: global time from stimulus until the
   potential first falls back below θ_w (enters m2) after having been
   excited.  [None] if no complete AP within the horizon. *)
let apd ?(constants = epi) ?(stimulus = 0.4) ~params ~t_end () =
  let h = automaton ~constants ~stimulus () in
  let free = Hybrid.Automaton.params h in
  List.iter
    (fun p ->
      if not (List.mem_assoc p params) then
        invalid_arg (Printf.sprintf "Bcf.apd: parameter %S not bound" p))
    free;
  let traj = Hybrid.Simulate.simulate ~params ~init:[] ~t_end h in
  let rec scan excited = function
    | [] -> None
    | (seg : Hybrid.Simulate.segment) :: rest ->
        if String.equal seg.Hybrid.Simulate.seg_mode mode4 then scan true rest
        else if excited && String.equal seg.Hybrid.Simulate.seg_mode mode2 then
          Some seg.Hybrid.Simulate.t_global
        else scan excited rest
  in
  scan false traj.Hybrid.Simulate.segments

(* Goal: the cell fires a full action potential (reaches near-peak
   potential) — used by the stimulation-robustness study (Sec. IV-C). *)
let excitation_goal ?(peak = 1.0) () =
  {
    Reach.Encoding.goal_modes = [ mode4 ];
    predicate = P.formula (Printf.sprintf "u >= %.17g" peak);
  }

(* Goal: abnormally early repolarization (tachycardia-like shortening) —
   the potential is back below θ_o while the slow gate w is still high.
   w decays during the plateau (τ_w⁺ = 200 ms) and only re-activates
   slowly once repolarized, so w ≥ w_min right at entry into m1 (local
   time ≤ [window]) certifies a collapsed, abnormally short AP. *)
let early_repolarization_goal ?(w_min = 0.8) ?(window = 5.0) () =
  {
    Reach.Encoding.goal_modes = [ mode1 ];
    predicate = P.formula (Printf.sprintf "w >= %.17g and t <= %.17g" w_min window);
  }
