(** Genetic circuit models: the gene-network analysis workloads of the
    paper's related work (temporal-logic analysis of gene networks under
    parameter uncertainty).

    - Toggle switch (Gardner–Cantor–Collins): the canonical bistability
      benchmark; attractor reachability and bistability-region synthesis.
    - Repressilator (Elowitz–Leibler): the canonical genetic oscillator
      (protein-only reduction, cooperativity 4). *)

val toggle_switch : Ode.System.t
(** du/dt = a1/(1+v²) − u, dv/dt = a2/(1+u²) − v; bistable at
    a1 = a2 = 4. *)

val toggle_automaton :
  ?u0:Interval.Ia.t -> ?v0:Interval.Ia.t -> unit -> Hybrid.Automaton.t
(** Single-mode automaton with an uncertain initial expression box. *)

val u_high_goal : ?level:float -> unit -> Reach.Encoding.goal
val v_high_goal : ?level:float -> unit -> Reach.Encoding.goal

val toggle_settles : a1:float -> a2:float -> u0:float -> v0:float -> float * float
(** Steady state reached from a point (t = 50). *)

val bistable : ?separation:float -> a1:float -> a2:float -> unit -> bool
(** Empirical bistability check: opposite corners settle apart. *)

val repressilator : Ode.System.t
val simulate_repressilator : ?alpha:float -> t_end:float -> unit -> Ode.Integrate.trace

val count_peaks : ?min_prominence:float -> float array -> int
(** Local-maximum count of a signal (oscillation evidence). *)
