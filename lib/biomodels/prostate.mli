(** Intermittent androgen suppression (IAS) therapy for prostate cancer
    as a two-mode hybrid automaton — the personalized-therapy case study
    of Sec. IV-B (Liu et al. HSCC'15, on the Ideta et al. model).

    State: x (androgen-dependent cells), y (androgen-independent cells),
    z (serum androgen); the PSA proxy is v = c1·x + c2·y.  The on/off
    thresholds r0/r1 are parameters of the jump conditions; mode
    invariants make the protocol mandatory (must-semantics). *)

type constants = {
  alpha_x : float;
  beta_x : float;
  alpha_y : float;
  beta_y : float;
  k1 : float;
  k2 : float;
  k3 : float;
  k4 : float;
  m1 : float;  (** maximum AD → AI mutation rate *)
  z0 : float;  (** homeostatic androgen level *)
  tau : float;
  d : float;  (** androgen dependence of AI growth *)
  c1 : float;
  c2 : float;
}

val default_constants : constants

val mode_on : string
val mode_off : string

val automaton :
  ?constants:constants ->
  ?r0:[ `Free | `Fixed of float ] ->
  ?r1:[ `Free | `Fixed of float ] ->
  ?x0:float ->
  ?y0:float ->
  unit ->
  Hybrid.Automaton.t
(** [`Free] thresholds become the synthesis parameters "r0"/"r1". *)

val relapse_goal : ?level:float -> unit -> Reach.Encoding.goal
(** Castration-resistant takeover: y ≥ [level]. *)

val psa : ?constants:constants -> (string * float) list -> float

val simulate_therapy :
  ?constants:constants ->
  r0:float ->
  r1:float ->
  t_end:float ->
  unit ->
  float * int * Hybrid.Simulate.trajectory
(** Fixed-threshold protocol simulation: (final y, off-treatment cycles,
    trajectory). *)
