(** Quantifier-free L_RF formulas in negation normal form.

    Atoms are [t > 0] or [t ≥ 0] (Definition 1); negation is the
    inductive sign-flipping operation of the paper, so every formula is
    NNF by construction.  The three-valued interval semantics drives the
    branch-and-prune δ-decision search. *)

module SSet = Term.SSet

type rel = Gt | Ge

type atom = { term : Term.t; rel : rel }
(** The atomic constraint [term rel 0]. *)

type t =
  | True
  | False
  | Atom of atom
  | And of t list
  | Or of t list

(** {1 Constructors} *)

val tt : t
val ff : t
val atom : rel -> Term.t -> t

val gt : Term.t -> Term.t -> t
(** [gt a b] is [a - b > 0]. *)

val ge : Term.t -> Term.t -> t
val lt : Term.t -> Term.t -> t
val le : Term.t -> Term.t -> t

val eq : Term.t -> Term.t -> t
(** Equality as [a - b ≥ 0 ∧ b - a ≥ 0]. *)

val and_ : t list -> t
(** N-ary conjunction; flattens and simplifies units. *)

val or_ : t list -> t

val neg : t -> t
(** NNF negation: [¬(t > 0) = -t ≥ 0], [¬(t ≥ 0) = -t > 0], ∧/∨ swap. *)

val imply : t -> t -> t
val in_range : Term.t -> lo:float -> hi:float -> t

(** {1 Structure} *)

val atoms : t -> atom list
val size : t -> int

(** Collision-safe structural digest (exact float rendering, prefix-code
    encoding): equal fingerprints imply structurally identical formulas.
    Keys the solver's paving verdict store. *)
val fingerprint : t -> string
val free_vars : t -> SSet.t
val free_vars_acc : SSet.t -> t -> SSet.t
val free_var_list : t -> string list
val map_terms : (Term.t -> Term.t) -> t -> t
val subst : (string * Term.t) list -> t -> t
val rename : (string * string) list -> t -> t

val delta_weaken : float -> t -> t
(** The δ-weakening φ^δ of Definition 4: every atom [t ⋈ 0] becomes
    [t ⋈ -δ]. *)

val dnf : t -> atom list list
(** Disjunctive normal form as a list of conjunctions.  Worst-case
    exponential; the encodings this framework produces keep disjunctions
    shallow. *)

(** {1 Point semantics} *)

val holds : (string -> float) -> t -> bool
val holds_env : (string * float) list -> t -> bool

val holds_delta : delta:float -> (string -> float) -> t -> bool
(** Satisfaction of the δ-weakening at a point — the check a certified
    δ-sat witness must pass. *)

val robustness : (string -> float) -> t -> float
(** Signed satisfaction margin (min over conjunctions, max over
    disjunctions of the atom values); positive implies satisfaction. *)

(** {1 Interval (three-valued) semantics} *)

type verdict = Certain | Impossible | Unknown

val eval_cert : Interval.Box.t -> t -> verdict
(** [Certain]: every point of the box satisfies the formula;
    [Impossible]: no point does; [Unknown]: cannot tell at this width. *)

val eval_atom_interval : Interval.Box.t -> atom -> verdict
(** The default atom certifier behind {!eval_cert}: interval-evaluate
    the atom's term over the box and compare the enclosure against
    zero under the atom's relation. *)

val eval_cert_with :
  atom:(Interval.Box.t -> atom -> verdict) -> Interval.Box.t -> t -> verdict
(** {!eval_cert} with a caller-supplied atom certifier.  Sound as long
    as [atom] is: [Certain]/[Impossible] claims propagate through the
    And/Or recursion unchanged.  The solver's enclosure-assisted
    certification path injects an evaluator that tightens atom ranges
    with affine / Taylor-model forward passes before the zero
    comparison, certifying feasible band boxes earlier than plain
    interval evaluation can. *)

val sat_possible : delta:float -> Interval.Box.t -> t -> bool
(** [false] is definitive: the δ-weakened formula has no solution in the
    box.  [true] only means "not refuted". *)

(** {1 Printing} *)

val pp_rel : rel Fmt.t
val pp_atom : atom Fmt.t
val pp : t Fmt.t
val to_string : t -> string
