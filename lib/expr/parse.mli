(** Recursive-descent parser for terms and formulas.

    Term syntax: [+ - * /] with usual precedence, [^] with an integer
    exponent binding tightest, unary functions
    [exp log sqrt sin cos tan atan tanh abs] and binary [min max].

    Formula syntax: relations [> >= < <= =] between terms, connectives
    [and]/[/\], [or]/[\/], [not], constants [true]/[false]. *)

exception Error of string

val term : string -> Term.t
(** @raise Error on malformed input. *)

val formula : string -> Formula.t
(** @raise Error on malformed input. *)

val term_opt : string -> Term.t option
val formula_opt : string -> Formula.t option
