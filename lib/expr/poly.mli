(** Multivariate polynomials in monomial canonical form.

    Canonicalization matters for interval methods: syntactic cancellation
    (e.g. the Lie derivative of a conserved quadratic) removes interval
    dependency entirely. *)

module VarMap : Map.S with type key = string

(** Monomials: maps from variables to positive exponents. *)
module Mono : sig
  type t = int VarMap.t

  val compare : t -> t -> int
  val one : t
  val var : string -> t
  val mul : t -> t -> t
  val pow : t -> int -> t
  val degree : t -> int
  val to_term : t -> Term.t
end

module MonoMap : Map.S with type key = Mono.t

type t = float MonoMap.t
(** Polynomial as a map monomial → nonzero coefficient. *)

(** {1 Construction and arithmetic} *)

val zero : t
val const : float -> t
val var : string -> t
val add : t -> t -> t
val neg : t -> t
val sub : t -> t -> t
val scale : float -> t -> t
val mul : t -> t -> t

val pow : t -> int -> t
(** @raise Invalid_argument on negative exponents. *)

(** {1 Queries} *)

val degree : t -> int
val coeff : t -> Mono.t -> float
val is_zero : t -> bool
val monomials : t -> (Mono.t * float) list
val equal : t -> t -> bool
val eval : (string * float) list -> t -> float

(** {1 Conversion} *)

val of_term : Term.t -> t option
(** [None] when the term contains a non-polynomial operation. *)

val to_term : t -> Term.t

val canonicalize : Term.t -> Term.t
(** Expand into canonical polynomial form when possible (with exact
    monomial cancellation); otherwise just {!Term.simplify}. *)

val pp : t Fmt.t
