(** L_RF terms (Definition 1 of the paper): real-valued expressions over
    variables, constants, and computable functions.

    Terms support exact float evaluation, sound interval evaluation (the
    backbone of the δ-decision procedure), symbolic differentiation,
    substitution, and compilation to array-indexed closures for hot loops
    (ODE right-hand sides, Monte-Carlo sampling). *)

module SSet : Set.S with type elt = string

type t =
  | Var of string
  | Const of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int
  | Exp of t
  | Log of t
  | Sqrt of t
  | Sin of t
  | Cos of t
  | Tan of t
  | Atan of t
  | Tanh of t
  | Abs of t
  | Min of t * t
  | Max of t * t

(** {1 Smart constructors}

    Perform light algebraic simplification (neutral elements, constant
    folding); use them instead of raw constructors. *)

val var : string -> t
val const : float -> t
val zero : t
val one : t
val is_const : t -> bool
val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
val neg : t -> t

val pow : t -> int -> t
(** Integer power; [pow t 0] is {!one}. *)

val exp : t -> t
val log : t -> t
val sqrt : t -> t
val sin : t -> t
val cos : t -> t
val tan : t -> t
val atan : t -> t
val tanh : t -> t
val abs : t -> t
val min_ : t -> t -> t
val max_ : t -> t -> t

(** Infix constructors: [Term.Infix.(!!"x" + !.2.0 * !!"y")]. *)
module Infix : sig
  val ( + ) : t -> t -> t
  val ( - ) : t -> t -> t
  val ( * ) : t -> t -> t
  val ( / ) : t -> t -> t
  val ( ~- ) : t -> t
  val ( ** ) : t -> int -> t

  val ( !. ) : float -> t
  (** Constant literal. *)

  val ( !! ) : string -> t
  (** Variable. *)
end

(** {1 Structure} *)

val size : t -> int
(** Number of AST nodes. *)

val depth : t -> int
val free_vars : t -> SSet.t
val free_vars_acc : SSet.t -> t -> SSet.t
val free_var_list : t -> string list
(** Free variables in lexicographic order. *)

val mentions : string -> t -> bool
val equal : t -> t -> bool
(** Structural equality. *)

val fingerprint : t -> string
(** Canonical injective serialization (floats rendered exactly with %h):
    two terms share a fingerprint iff they are structurally equal.  Used
    as a collision-safe memoization key by the subsumption caches. *)

val fingerprint_acc : Buffer.t -> t -> unit
(** {!fingerprint} into an existing buffer (for composite keys). *)

(** {1 Transformation} *)

val map_vars : (string -> t) -> t -> t
(** Replace every variable occurrence; rebuilds through the smart
    constructors. *)

val subst : (string * t) list -> t -> t
val rename : (string * string) list -> t -> t

val simplify : t -> t
(** Constant folding and neutral-element elimination (idempotent). *)

val simplify_deep : t -> t
(** Stronger simplification for derivative trees: everything
    {!simplify} does, plus negation hoisting out of products and
    quotients, sum/difference-of-negation rewrites, pow-of-pow
    merging, and constant merging across one level of product/sum
    nesting (applied only when the fold is exact in IEEE arithmetic).
    Every rule preserves the domain of definition exactly, so natural
    interval enclosures of the result blow up at the same singular
    points as the input's — the property the interval Newton layer's
    smoothness certificate relies on.  The result denotes the same
    real function; float evaluation agrees bit-for-bit up to the sign
    of zero, except across a pow-of-pow merge where libm may differ by
    ulps. *)

(** {1 Evaluation} *)

val eval : (string -> float) -> t -> float
(** Evaluate with a lookup function. *)

val eval_env : (string * float) list -> t -> float
(** @raise Invalid_argument on unbound variables. *)

val eval_interval : Interval.Box.t -> t -> Interval.Ia.t
(** Sound interval enclosure of the term's range over the box: for every
    point [p] of the box, [eval p t ∈ eval_interval box t]. *)

val compile : vars:string list -> t -> float array -> float
(** [compile ~vars t] resolves variables to positions in [vars] once and
    returns a closure evaluating [t] on value arrays — no name lookups in
    the hot path.
    @raise Invalid_argument at compile time on unbound variables. *)

(** {1 Calculus} *)

val deriv : string -> t -> t
(** Symbolic partial derivative.
    @raise Invalid_argument on [Min]/[Max]. *)

val gradient : string list -> t -> (string * t) list

val lie_derivative : (string * t) list -> t -> t
(** [lie_derivative field v] is [Σᵢ (∂v/∂xᵢ)·fᵢ] — the derivative of [v]
    along trajectories of [d xᵢ/dt = fᵢ]. *)

(** {1 Printing} *)

val pp : t Fmt.t
(** Parseable concrete syntax (round-trips through {!Parse.term}). *)

val to_string : t -> string
