(* Polynomial canonical form: multivariate polynomials as monomial →
   coefficient maps.

   Canonicalization matters for interval methods: syntactic cancellation
   (e.g. the Lie derivative of x² + y² along a rotation field is
   -2xy + 2xy) removes the interval dependency problem entirely, turning
   an unprovable bound into a trivial one.  Terms containing
   non-polynomial operations are left untouched by {!canonicalize}. *)

module VarMap = Map.Make (String)

(* A monomial maps variables to (positive) exponents. *)
module Mono = struct
  type t = int VarMap.t

  let compare = VarMap.compare Int.compare
  let one : t = VarMap.empty
  let var x : t = VarMap.singleton x 1
  let mul (a : t) (b : t) : t = VarMap.union (fun _ i j -> Some (i + j)) a b

  let pow (m : t) n : t =
    if n = 0 then one else VarMap.map (fun e -> e * n) m

  let degree (m : t) = VarMap.fold (fun _ e acc -> acc + e) m 0

  let to_term (m : t) =
    VarMap.fold
      (fun x e acc -> Term.mul acc (Term.pow (Term.var x) e))
      m Term.one
end

module MonoMap = Map.Make (Mono)

type t = float MonoMap.t

let zero : t = MonoMap.empty
let const c : t = if c = 0.0 then zero else MonoMap.singleton Mono.one c
let var x : t = MonoMap.singleton (Mono.var x) 1.0

let add (a : t) (b : t) : t =
  MonoMap.union
    (fun _ x y ->
      let s = x +. y in
      if s = 0.0 then None else Some s)
    a b

let neg (a : t) : t = MonoMap.map (fun c -> -.c) a
let sub a b = add a (neg b)

let scale k (a : t) : t =
  if k = 0.0 then zero else MonoMap.map (fun c -> k *. c) a

let mul (a : t) (b : t) : t =
  MonoMap.fold
    (fun ma ca acc ->
      MonoMap.fold
        (fun mb cb acc -> add acc (MonoMap.singleton (Mono.mul ma mb) (ca *. cb)))
        b acc)
    a zero

let rec pow (a : t) n =
  if n < 0 then invalid_arg "Poly.pow: negative exponent"
  else if n = 0 then const 1.0
  else mul a (pow a (n - 1))

let degree (p : t) = MonoMap.fold (fun m _ acc -> Stdlib.max acc (Mono.degree m)) p 0

let coeff (p : t) m = match MonoMap.find_opt m p with Some c -> c | None -> 0.0

let is_zero (p : t) = MonoMap.is_empty p

let monomials (p : t) = MonoMap.bindings p

(* ---- Conversion from/to terms ---- *)

let rec of_term (t : Term.t) : t option =
  match t with
  | Term.Var x -> Some (var x)
  | Term.Const c -> Some (const c)
  | Term.Add (a, b) -> map2 add a b
  | Term.Sub (a, b) -> map2 sub a b
  | Term.Mul (a, b) -> map2 mul a b
  | Term.Neg a -> Option.map neg (of_term a)
  | Term.Pow (a, n) when n >= 0 -> Option.map (fun p -> pow p n) (of_term a)
  | Term.Div (a, Term.Const c) when c <> 0.0 ->
      Option.map (scale (1.0 /. c)) (of_term a)
  | Term.Pow _ | Term.Div _ | Term.Exp _ | Term.Log _ | Term.Sqrt _ | Term.Sin _
  | Term.Cos _ | Term.Tan _ | Term.Atan _ | Term.Tanh _ | Term.Abs _ | Term.Min _
  | Term.Max _ ->
      None

and map2 f a b =
  match (of_term a, of_term b) with
  | Some pa, Some pb -> Some (f pa pb)
  | _ -> None

let to_term (p : t) =
  if is_zero p then Term.zero
  else
    MonoMap.fold
      (fun m c acc ->
        let piece =
          if Mono.degree m = 0 then Term.const c
          else if c = 1.0 then Mono.to_term m
          else if c = -1.0 then Term.neg (Mono.to_term m)
          else Term.mul (Term.const c) (Mono.to_term m)
        in
        if Term.equal acc Term.zero then piece else Term.add acc piece)
      p Term.zero

(* Rewrite a term into expanded canonical polynomial form when possible;
   returns the term unchanged otherwise. *)
let canonicalize (t : Term.t) =
  match of_term t with Some p -> to_term p | None -> Term.simplify t

let equal (a : t) (b : t) = MonoMap.equal Float.equal a b

let eval env (p : t) =
  MonoMap.fold
    (fun m c acc ->
      let v =
        VarMap.fold
          (fun x e acc ->
            match List.assoc_opt x env with
            | Some value -> acc *. Float.pow value (float_of_int e)
            | None -> invalid_arg (Printf.sprintf "Poly.eval: unbound %S" x))
          m 1.0
      in
      acc +. (c *. v))
    p 0.0

let pp ppf (p : t) =
  if is_zero p then Fmt.string ppf "0" else Term.pp ppf (to_term p)
