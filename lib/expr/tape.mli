(** Flat SSA tapes: terms compiled once into instruction arrays.

    A tape is the straight-line form of one or more {!Term.t}s over a fixed
    input ordering: every subterm becomes a slot holding an instruction
    whose operands are slot indices, variables are resolved to input
    positions at compile time, and hash-consing (CSE) makes structurally
    identical subterms share a single slot.  Evaluation — float, interval,
    and the HC4 forward–backward contraction — then runs as a loop over the
    instruction array against reusable scratch buffers: no tree rebuilding,
    no string-keyed lookups, and no per-node allocation in the hot path.

    Tapes are immutable after compilation and safe to share across
    domains; all mutable state lives in {!scratch} buffers.  Use
    {!dls_scratch} for a per-domain buffer when a tape-backed closure is
    handed to worker domains. *)

module I = Interval.Ia

type t
(** A compiled tape (possibly multi-root: one root per compiled term). *)

val enabled : unit -> bool
(** Whether tape-backed kernels should be used.  True by default; the
    environment variable [BIOMC_NO_TAPE=1] (or [true]/[yes]) switches the
    hot paths back to the tree-walking implementations.  {!set_enabled}
    overrides the environment. *)

val set_enabled : bool -> unit
(** Override {!enabled} (used by benchmarks and differential tests to pin
    one implementation). *)

val clear_enabled_override : unit -> unit
(** Return {!enabled} to the environment-variable default. *)

(** {1 Compilation} *)

val compile : vars:string list -> Term.t list -> t
(** [compile ~vars terms] flattens [terms] into one shared-slot tape whose
    [i]-th input is the [i]-th element of [vars].
    @raise Invalid_argument if a term mentions a variable not in [vars]. *)

val num_inputs : t -> int
val num_slots : t -> int
val num_roots : t -> int

val interior_sharing : t -> int
(** Number of CSE hits on non-leaf slots.  When [0], the tape's HC4
    backward pass is exactly the tree-walking HC4 on the same term; with
    interior sharing the tape contraction can only be tighter (still
    sound).  Differential tests key their equality assertions on this. *)

(** {1 Scratch buffers} *)

type scratch
(** Mutable per-evaluation workspace sized for one tape.  A scratch value
    must not be used from two domains at once. *)

val scratch : t -> scratch
(** A fresh scratch for the tape. *)

val dls_scratch : t -> scratch
(** The calling domain's cached scratch for this tape (allocated on first
    use per domain, via [Domain.DLS]). *)

(** {1 Float evaluation}

    Semantics match {!Term.compile} closures instruction for instruction
    (including the [x*x] fast paths for squares and cubes). *)

val eval_floats_into : t -> scratch -> inputs:float array -> out:float array -> unit
(** Evaluate every root; [out.(k)] receives root [k].  Allocation-free. *)

val eval_float : t -> scratch -> float array -> float
(** Root 0 of a single-root tape. *)

(** {1 Interval evaluation}

    Sound enclosures identical to {!Term.eval_interval}: the forward pass
    applies the same {!Interval.Ia} operation at every slot, so the result
    is bit-equal to the tree walk (interval operations are
    deterministic). *)

val eval_interval_into : t -> scratch -> inputs:I.t array -> out:I.t array -> unit
val eval_interval : t -> scratch -> I.t array -> I.t

(** {1 Affine evaluation}

    A second operand interpretation over the same instruction array:
    slot values are {!Interval.Affine} forms, and input [i] enters with
    noise symbol [i], so correlations between subexpressions sharing a
    variable cancel instead of compounding (the wrapping effect).  Every
    affine operation matches the domain semantics of the corresponding
    {!Interval.Ia} operation, so the concretized result is a sound
    enclosure of the same value set as {!eval_interval_into} — never
    assumed tighter; callers intersect the two. *)

val eval_affine_into : t -> scratch -> inputs:I.t array -> out:I.t array -> unit
(** Evaluate every root affinely over the input box and store the
    concretized range of root [k] in [out.(k)]. *)

(** {1 Taylor-model evaluation}

    A third operand interpretation: slot values are degree-2
    {!Interval.Tm} models over the same input-indexed symbols as the
    affine pass.  Quadratic monomials are kept exactly — where the
    affine walker folds every product's second-order structure into a
    scalar radius — and the polynomial range is bounded per variable by
    Bernstein coefficients over the unit box.  Concretized results are
    sound enclosures of the same value sets as {!eval_interval_into};
    callers intersect the two. *)

val eval_tm_into : t -> scratch -> inputs:I.t array -> out:I.t array -> unit
(** Evaluate every root as a Taylor model over the input box and store
    the concretized range of root [k] in [out.(k)]. *)

val smooth_on : t -> scratch -> bool
(** Must be called directly after an interval evaluation over a box
    ([eval_interval]/[eval_interval_into] with the box's component
    intervals as inputs); inspects the forward enclosures left in the
    scratch.  [true] certifies that every function compiled into the
    tape is defined and continuously differentiable on the entire
    (convex) box: every partially-defined or non-smooth instruction —
    division, log, sqrt, negative powers, abs, tan — stayed strictly
    inside the interior of its smooth domain, and no slot was empty.
    Min/Max instructions always fail the certificate.  Conservative:
    may return [false] on a smooth box (enclosure overapproximation),
    never [true] on a non-smooth one.  This is the licence the
    mean-value form and interval Newton contractions require. *)

(** {1 HC4 forward–backward contraction} *)

val hc4_revise :
  t ->
  scratch ->
  ?affine:bool ->
  ?tm:bool ->
  ?mask:bool array ->
  target:I.t ->
  I.t array ->
  bool
(** [hc4_revise tape sc ~target dom] runs the forward pass of root 0 over
    the input box [dom] (an interval per input), intersects the root with
    [target], and propagates the requirements back down to the inputs.
    Contracted input intervals are written back into [dom] — only at
    positions where [mask] is true, when given — and the function returns
    [false] iff the constraint [root ∈ target] is infeasible on [dom] (in
    which case [dom] is meaningless and should be discarded).

    With [~affine:true] (default [false]) the forward enclosures are
    first intersected slot-by-slot with the affine walker's concretized
    ranges — a sound tightening, since both passes enclose the same value
    sets — and the revise refutes immediately (returns [false]) when the
    tightened root no longer meets [target].  The affine pass runs inside
    the [icp.affine] telemetry span and feeds the [affine.tightenings] /
    [affine.refutations] counters.  With [~affine:false] the result is
    bit-for-bit the pre-affine behaviour.

    With [~tm:true] (default [false]) the Taylor-model walker is
    intersected the same way after the affine pass (skipped entirely
    when the affine pass already refuted), inside the [icp.tm] span
    with the [tm.tightenings] / [tm.refutations] counters and the
    [tm-refute] journal prune reason.  With [~tm:false] the TM walker
    never runs, restoring the pre-TM search bit-for-bit.

    Matches the tree-walking [Icp.Contractor.revise] exactly when
    {!interior_sharing} is [0]; shared interior slots accumulate
    requirements from all their occurrences and can contract strictly
    more (never less — soundness is preserved either way). *)

(** {1 Preimage helpers}

    Shared by the tape backward pass and the tree-walking
    [Icp.Contractor]; exposed so the two stay in lockstep. *)

val pow_preimage : I.t -> I.t -> int -> I.t
(** Preimage of [r] under [x ↦ x^k], intersected with [x].  Handles even
    powers' two branches and negative exponents via the reciprocal
    relation [x^(-m) ∈ r ⟺ x^m ∈ 1/r]. *)

val abs_preimage : I.t -> I.t -> I.t
(** Preimage of [r] under [abs], intersected with [x]. *)

val tan_preimage : I.t -> I.t -> I.t
(** [tan_preimage x v]: when [x] lies strictly inside a single monotone
    branch [(kπ-π/2, kπ+π/2)] of [tan], the preimage [atan v + kπ]
    intersected with [x]; otherwise [x] unchanged (multi-branch preimages
    are not contracted). *)
