(* Flat SSA tapes compiled from terms.

   Compilation walks each term bottom-up, hash-consing every node on
   (opcode, operand slots): structurally identical subterms — across all
   roots of the tape — occupy a single slot, and slots are emitted in
   topological order (operands always precede their users).  The result
   is an instruction array that float/interval evaluation executes as a
   plain loop over scratch arrays, and that the HC4 backward pass walks
   by slot index.  No names, no tree nodes, no allocation in the steady
   state. *)

module I = Interval.Ia

type op =
  | OVar of int  (* input position *)
  | OConst of float
  | OAdd of int * int
  | OSub of int * int
  | OMul of int * int
  | ODiv of int * int
  | ONeg of int
  | OPow of int * int  (* operand slot, integer exponent *)
  | OExp of int
  | OLog of int
  | OSqrt of int
  | OSin of int
  | OCos of int
  | OTan of int
  | OAtan of int
  | OTanh of int
  | OAbs of int
  | OMin of int * int
  | OMax of int * int

type t = {
  inputs : string array;
  ops : op array;  (* slots in topological order *)
  roots : int array;  (* root slot of each compiled term *)
  var_slots : (int * int) array;  (* (slot, input position) of every OVar *)
  const_los : float array;  (* per-slot constant bounds (nan elsewhere):
                               let the forward pass reset OConst slots
                               without allocating *)
  const_his : float array;
  interior_shared : int;  (* CSE hits on non-leaf slots *)
  scratch_key : scratch Domain.DLS.key;
}

(* Interval slot values live in parallel unboxed lo/hi arrays, so the
   steady state allocates nothing; [Ia.t] records are materialized only
   at the API boundary and for the rarer operations (division, powers,
   transcendentals) that fall back to the record kernels.  [req] is the
   requirement cell of the backward pass: an all-float record, so its
   fields are stored flat and passing a requirement costs two unboxed
   stores instead of two boxed float arguments. *)
and scratch = {
  fvals : float array;
  ilos : float array;
  ihis : float array;
  req : reqcell;
  aff : Interval.Affine.t array;  (* affine walker slot values *)
  tms : Interval.Tm.t array;      (* Taylor-model walker slot values *)
}

and reqcell = { mutable rlo : float; mutable rhi : float }

(* ---- Enable/disable switch ---- *)

let override : bool option Atomic.t = Atomic.make None

let enabled () =
  match Atomic.get override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "BIOMC_NO_TAPE" with
      | Some ("1" | "true" | "yes") -> false
      | _ -> true)

let set_enabled b = Atomic.set override (Some b)
let clear_enabled_override () = Atomic.set override None

(* ---- Compilation ---- *)

let compile ~vars terms =
  let inputs = Array.of_list vars in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) inputs;
  let rev_ops = ref [] and count = ref 0 in
  let cse : (op, int) Hashtbl.t = Hashtbl.create 64 in
  let interior = ref 0 in
  let emit ~leaf op =
    match Hashtbl.find_opt cse op with
    | Some s ->
        if not leaf then incr interior;
        s
    | None ->
        let s = !count in
        incr count;
        rev_ops := op :: !rev_ops;
        Hashtbl.add cse op s;
        s
  in
  let rec go (t : Term.t) =
    match t with
    | Var x -> (
        match Hashtbl.find_opt index x with
        | Some i -> emit ~leaf:true (OVar i)
        | None ->
            invalid_arg (Printf.sprintf "Tape.compile: unbound variable %S" x))
    | Const c -> emit ~leaf:true (OConst c)
    | Add (a, b) ->
        let sa = go a in
        let sb = go b in
        emit ~leaf:false (OAdd (sa, sb))
    | Sub (a, b) ->
        let sa = go a in
        let sb = go b in
        emit ~leaf:false (OSub (sa, sb))
    | Mul (a, b) ->
        let sa = go a in
        let sb = go b in
        emit ~leaf:false (OMul (sa, sb))
    | Div (a, b) ->
        let sa = go a in
        let sb = go b in
        emit ~leaf:false (ODiv (sa, sb))
    | Neg a -> emit ~leaf:false (ONeg (go a))
    | Pow (a, k) -> emit ~leaf:false (OPow (go a, k))
    | Exp a -> emit ~leaf:false (OExp (go a))
    | Log a -> emit ~leaf:false (OLog (go a))
    | Sqrt a -> emit ~leaf:false (OSqrt (go a))
    | Sin a -> emit ~leaf:false (OSin (go a))
    | Cos a -> emit ~leaf:false (OCos (go a))
    | Tan a -> emit ~leaf:false (OTan (go a))
    | Atan a -> emit ~leaf:false (OAtan (go a))
    | Tanh a -> emit ~leaf:false (OTanh (go a))
    | Abs a -> emit ~leaf:false (OAbs (go a))
    | Min (a, b) ->
        let sa = go a in
        let sb = go b in
        emit ~leaf:false (OMin (sa, sb))
    | Max (a, b) ->
        let sa = go a in
        let sb = go b in
        emit ~leaf:false (OMax (sa, sb))
  in
  let roots = Array.of_list (List.map go terms) in
  let ops = Array.of_list (List.rev !rev_ops) in
  let var_slots =
    let acc = ref [] in
    Array.iteri
      (fun s op -> match op with OVar i -> acc := (s, i) :: !acc | _ -> ())
      ops;
    Array.of_list (List.rev !acc)
  in
  let n = Array.length ops in
  let const_of f =
    Array.map (function OConst c -> f (I.of_float c) | _ -> nan) ops
  in
  let const_los = const_of I.lo and const_his = const_of I.hi in
  let scratch_key =
    Domain.DLS.new_key (fun () ->
        { fvals = Array.make n 0.0;
          ilos = Array.make n neg_infinity;
          ihis = Array.make n infinity;
          req = { rlo = neg_infinity; rhi = infinity };
          aff = Array.make n (Interval.Affine.const 0.0);
          tms = Array.make n (Interval.Tm.const 0.0) })
  in
  { inputs; ops; roots; var_slots; const_los; const_his;
    interior_shared = !interior; scratch_key }

let num_inputs tp = Array.length tp.inputs
let num_slots tp = Array.length tp.ops
let num_roots tp = Array.length tp.roots
let interior_sharing tp = tp.interior_shared

let scratch tp =
  let n = Array.length tp.ops in
  { fvals = Array.make n 0.0;
    ilos = Array.make n neg_infinity;
    ihis = Array.make n infinity;
    req = { rlo = neg_infinity; rhi = infinity };
    aff = Array.make n (Interval.Affine.const 0.0);
    tms = Array.make n (Interval.Tm.const 0.0) }

let dls_scratch tp = Domain.DLS.get tp.scratch_key

(* ---- Float evaluation (Term.compile semantics, incl. pow fast paths) ---- *)

let forward_floats tp sc (inputs : float array) =
  let v = sc.fvals in
  let ops = tp.ops in
  for s = 0 to Array.length ops - 1 do
    let r =
      match Array.unsafe_get ops s with
      | OVar i -> Array.unsafe_get inputs i
      | OConst c -> c
      | OAdd (a, b) -> Array.unsafe_get v a +. Array.unsafe_get v b
      | OSub (a, b) -> Array.unsafe_get v a -. Array.unsafe_get v b
      | OMul (a, b) -> Array.unsafe_get v a *. Array.unsafe_get v b
      | ODiv (a, b) -> Array.unsafe_get v a /. Array.unsafe_get v b
      | ONeg a -> -.Array.unsafe_get v a
      | OPow (a, 2) ->
          let x = Array.unsafe_get v a in
          x *. x
      | OPow (a, 3) ->
          let x = Array.unsafe_get v a in
          x *. x *. x
      | OPow (a, k) -> Float.pow (Array.unsafe_get v a) (float_of_int k)
      | OExp a -> Float.exp (Array.unsafe_get v a)
      | OLog a -> Float.log (Array.unsafe_get v a)
      | OSqrt a -> Float.sqrt (Array.unsafe_get v a)
      | OSin a -> Float.sin (Array.unsafe_get v a)
      | OCos a -> Float.cos (Array.unsafe_get v a)
      | OTan a -> Float.tan (Array.unsafe_get v a)
      | OAtan a -> Float.atan (Array.unsafe_get v a)
      | OTanh a -> Float.tanh (Array.unsafe_get v a)
      | OAbs a -> Float.abs (Array.unsafe_get v a)
      | OMin (a, b) -> Float.min (Array.unsafe_get v a) (Array.unsafe_get v b)
      | OMax (a, b) -> Float.max (Array.unsafe_get v a) (Array.unsafe_get v b)
    in
    Array.unsafe_set v s r
  done

let eval_floats_into tp sc ~inputs ~out =
  forward_floats tp sc inputs;
  for k = 0 to Array.length tp.roots - 1 do
    out.(k) <- sc.fvals.(tp.roots.(k))
  done

let eval_float tp sc inputs =
  forward_floats tp sc inputs;
  sc.fvals.(tp.roots.(0))

(* ---- Interval forward pass (Term.eval_interval semantics) ----

   Slot bounds live in the unboxed [ilos]/[ihis] arrays.  The hot ring
   operations (add, sub, neg, mul, sqr, min, max, abs) are transcribed
   from {!Ia} so that nonempty results are bit-identical to the record
   kernels; division, general powers and transcendentals materialize
   records and call {!Ia} directly.  Invariant: a slot is empty iff its
   lo bound is NaN, and then both bounds are NaN — every write collapses
   any NaN to the (nan, nan) pair.  [Ia] may instead carry a half-NaN
   record (e.g. from inf - inf); both encodings are empty under
   [Ia.is_empty], so observable behaviour agrees. *)

module R = Interval.Round

(* Product of two bounds with the interval convention 0 * inf = 0
   (mirrors Ia.prod). *)
let[@inline] prod x y = if x = 0.0 || y = 0.0 then 0.0 else x *. y

(* Naive float min/max for operands already checked non-NaN.  Unlike
   [Stdlib.Float.min]/[max] these are same-module (hence inlined, no
   boxing through a call) and may pick the other sign of a zero; the
   results stay numerically equal to the record kernels', and no
   downstream operation branches on the sign of a zero bound. *)
let[@inline] fmin (a : float) (b : float) = if a < b then a else b
let[@inline] fmax (a : float) (b : float) = if a > b then a else b

(* Materialize slot [i] of the scratch as an interval record. *)
let[@inline] slot_itv sc i =
  I.make_unordered (Array.unsafe_get sc.ilos i) (Array.unsafe_get sc.ihis i)

(* Store an interval record into a slot, collapsing any NaN bound to the
   empty (nan, nan) pair.  Only the fallback ops go through this. *)
let set_slot_itv sc s r =
  let l = r.I.lo and h = r.I.hi in
  if l <> l || h <> h then begin
    Array.unsafe_set sc.ilos s nan;
    Array.unsafe_set sc.ihis s nan
  end
  else begin
    Array.unsafe_set sc.ilos s l;
    Array.unsafe_set sc.ihis s h
  end

let forward_intervals tp sc (inputs : I.t array) =
  (* Written with direct array accesses in every arm: accessor closures
     here would box every float crossing the call, and this loop is the
     single hottest piece of the contractor. *)
  let lo = sc.ilos and hi = sc.ihis in
  let ops = tp.ops in
  for s = 0 to Array.length ops - 1 do
    match Array.unsafe_get ops s with
    | OVar i ->
        let x = Array.unsafe_get inputs i in
        let l = x.I.lo and h = x.I.hi in
        if l <> l || h <> h then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          Array.unsafe_set lo s l;
          Array.unsafe_set hi s h
        end
    | OConst _ ->
        Array.unsafe_set lo s (Array.unsafe_get tp.const_los s);
        Array.unsafe_set hi s (Array.unsafe_get tp.const_his s)
    | OAdd (a, b) ->
        (* NaN operands propagate through the sums into the guard. *)
        let l = R.next_after (Array.unsafe_get lo a +. Array.unsafe_get lo b) neg_infinity
        and h = R.next_after (Array.unsafe_get hi a +. Array.unsafe_get hi b) infinity in
        if l <> l || h <> h then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          Array.unsafe_set lo s l;
          Array.unsafe_set hi s h
        end
    | OSub (a, b) ->
        let l = R.next_after (Array.unsafe_get lo a -. Array.unsafe_get hi b) neg_infinity
        and h = R.next_after (Array.unsafe_get hi a -. Array.unsafe_get lo b) infinity in
        if l <> l || h <> h then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          Array.unsafe_set lo s l;
          Array.unsafe_set hi s h
        end
    | OMul (a, b) ->
        (* Operand check up front: [prod] maps 0-operands to 0, which
           would mask an empty side (empty × [0,0] must stay empty). *)
        let al = Array.unsafe_get lo a and bl = Array.unsafe_get lo b in
        if al <> al || bl <> bl then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          let ah = Array.unsafe_get hi a and bh = Array.unsafe_get hi b in
          let p1 = prod al bl
          and p2 = prod al bh
          and p3 = prod ah bl
          and p4 = prod ah bh in
          Array.unsafe_set lo s
            (R.next_after (fmin (fmin p1 p2) (fmin p3 p4)) neg_infinity);
          Array.unsafe_set hi s
            (R.next_after (fmax (fmax p1 p2) (fmax p3 p4)) infinity)
        end
    | ONeg a ->
        Array.unsafe_set lo s (-.Array.unsafe_get hi a);
        Array.unsafe_set hi s (-.Array.unsafe_get lo a)
    | OPow (a, 2) ->
        (* Ia.sqr transcribed: tight via mignitude/magnitude. *)
        let al = Array.unsafe_get lo a in
        if al <> al then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          let ah = Array.unsafe_get hi a in
          let l = Float.abs al and h = Float.abs ah in
          let m = if al <= 0.0 && 0.0 <= ah then 0.0 else fmin l h in
          let g = fmax l h in
          Array.unsafe_set lo s (if m = 0.0 then 0.0 else R.next_after (m *. m) neg_infinity);
          Array.unsafe_set hi s (R.next_after (g *. g) infinity)
        end
    | OPow (a, k) -> set_slot_itv sc s (I.pow_int (slot_itv sc a) k)
    | ODiv (a, b) ->
        (* Ia.div = mul a (inv b), both transcribed.  [cl, ch] is the
           reciprocal of the divisor; each bound is computed by its own
           conditional so no tuple is allocated. *)
        let al = Array.unsafe_get lo a and bl = Array.unsafe_get lo b in
        if al <> al || bl <> bl then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          let bh = Array.unsafe_get hi b in
          if bl = 0.0 && bh = 0.0 then begin
            (* Zero-singleton divisor: empty reciprocal (Ia.inv). *)
            Array.unsafe_set lo s nan;
            Array.unsafe_set hi s nan
          end
          else begin
            let cl =
              if bl < 0.0 && bh > 0.0 then neg_infinity
              else if bl = 0.0 then R.next_after (1.0 /. bh) neg_infinity
              else if bh = 0.0 then neg_infinity
              else
                R.next_after (fmin (1.0 /. bh) (1.0 /. bl)) neg_infinity
            and ch =
              if bl < 0.0 && bh > 0.0 then infinity
              else if bl = 0.0 then infinity
              else if bh = 0.0 then R.next_after (1.0 /. bl) infinity
              else R.next_after (fmax (1.0 /. bh) (1.0 /. bl)) infinity
            in
            let ah = Array.unsafe_get hi a in
            let p1 = prod al cl
            and p2 = prod al ch
            and p3 = prod ah cl
            and p4 = prod ah ch in
            Array.unsafe_set lo s
              (R.next_after (fmin (fmin p1 p2) (fmin p3 p4)) neg_infinity);
            Array.unsafe_set hi s
              (R.next_after (fmax (fmax p1 p2) (fmax p3 p4)) infinity)
          end
        end
    | OExp a -> set_slot_itv sc s (I.exp (slot_itv sc a))
    | OLog a -> set_slot_itv sc s (I.log (slot_itv sc a))
    | OSqrt a -> set_slot_itv sc s (I.sqrt (slot_itv sc a))
    | OSin a -> set_slot_itv sc s (I.sin (slot_itv sc a))
    | OCos a -> set_slot_itv sc s (I.cos (slot_itv sc a))
    | OTan a -> set_slot_itv sc s (I.tan (slot_itv sc a))
    | OAtan a -> set_slot_itv sc s (I.atan (slot_itv sc a))
    | OTanh a -> set_slot_itv sc s (I.tanh (slot_itv sc a))
    | OAbs a ->
        let al = Array.unsafe_get lo a in
        if al <> al then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          let ah = Array.unsafe_get hi a in
          let l = Float.abs al and h = Float.abs ah in
          let m = if al <= 0.0 && 0.0 <= ah then 0.0 else fmin l h in
          Array.unsafe_set lo s m;
          Array.unsafe_set hi s (fmax l h)
        end
    | OMin (a, b) ->
        let al = Array.unsafe_get lo a and bl = Array.unsafe_get lo b in
        if al <> al || bl <> bl then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          Array.unsafe_set lo s (fmin al bl);
          Array.unsafe_set hi s
            (fmin (Array.unsafe_get hi a) (Array.unsafe_get hi b))
        end
    | OMax (a, b) ->
        let al = Array.unsafe_get lo a and bl = Array.unsafe_get lo b in
        if al <> al || bl <> bl then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan
        end
        else begin
          Array.unsafe_set lo s (fmax al bl);
          Array.unsafe_set hi s
            (fmax (Array.unsafe_get hi a) (Array.unsafe_get hi b))
        end
  done

let eval_interval_into tp sc ~inputs ~out =
  forward_intervals tp sc inputs;
  for k = 0 to Array.length tp.roots - 1 do
    out.(k) <- slot_itv sc tp.roots.(k)
  done

let eval_interval tp sc inputs =
  forward_intervals tp sc inputs;
  slot_itv sc tp.roots.(0)

(* ---- Affine forward pass ----

   The second operand interpretation of the same instruction array: slot
   values are {!Interval.Affine} forms, and input [i] is introduced with
   noise symbol [i] — all occurrences of a variable are CSE'd into one
   OVar slot, so correlations between subexpressions sharing a variable
   are tracked exactly.  Every Affine operation matches the domain
   semantics of the corresponding {!Ia} operation, so concretized slot
   ranges are sound enclosures of the same value sets the interval pass
   bounds — the two can be intersected slot by slot. *)

module A = Interval.Affine

let forward_affine tp sc (inputs : I.t array) =
  let af = sc.aff in
  let ops = tp.ops in
  for s = 0 to Array.length ops - 1 do
    let r =
      match Array.unsafe_get ops s with
      | OVar i -> A.of_interval ~sym:i (Array.unsafe_get inputs i)
      | OConst c -> A.const c
      | OAdd (a, b) -> A.add af.(a) af.(b)
      | OSub (a, b) -> A.sub af.(a) af.(b)
      | OMul (a, b) -> A.mul af.(a) af.(b)
      | ODiv (a, b) -> A.div af.(a) af.(b)
      | ONeg a -> A.neg af.(a)
      | OPow (a, k) -> A.pow_int af.(a) k
      | OExp a -> A.exp af.(a)
      | OLog a -> A.log af.(a)
      | OSqrt a -> A.sqrt af.(a)
      | OSin a -> A.sin af.(a)
      | OCos a -> A.cos af.(a)
      | OTan a -> A.tan af.(a)
      | OAtan a -> A.atan af.(a)
      | OTanh a -> A.tanh af.(a)
      | OAbs a -> A.abs af.(a)
      | OMin (a, b) -> A.min_ af.(a) af.(b)
      | OMax (a, b) -> A.max_ af.(a) af.(b)
    in
    af.(s) <- r
  done

let eval_affine_into tp sc ~inputs ~out =
  forward_affine tp sc inputs;
  for k = 0 to Array.length tp.roots - 1 do
    out.(k) <- A.concretize sc.aff.(tp.roots.(k))
  done

(* Intersect the interval slot enclosures (left by [forward_intervals])
   with the concretized affine slot ranges.  Returns [true] iff some
   slot strictly tightened.  An empty intersection certifies that the
   slot's subterm has an empty value set on the box — recorded as the
   (nan, nan) empty slot, which the backward pass treats as infeasible
   on contact. *)
let affine_tighten tp sc dom =
  forward_affine tp sc dom;
  let lo = sc.ilos and hi = sc.ihis in
  let af = sc.aff in
  let tightened = ref false in
  for s = 0 to Array.length tp.ops - 1 do
    let l = Array.unsafe_get lo s in
    if l = l then begin
      let r = A.concretize af.(s) in
      let rl = r.I.lo and rh = r.I.hi in
      if rl <> rl || rh <> rh then begin
        Array.unsafe_set lo s nan;
        Array.unsafe_set hi s nan;
        tightened := true
      end
      else begin
        let h = Array.unsafe_get hi s in
        let l' = fmax l rl and h' = fmin h rh in
        if l' > h' then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan;
          tightened := true
        end
        else if not (l' = l && h' = h) then begin
          Array.unsafe_set lo s l';
          Array.unsafe_set hi s h';
          tightened := true
        end
      end
    end
  done;
  !tightened

(* ---- Taylor-model forward pass ----

   The third operand interpretation: slot values are degree-2
   {!Interval.Tm} models over the same input-indexed symbols as the
   affine pass, so the two walkers agree on what each symbol means and
   their concretizations can both be intersected into the interval
   slots.  Where the affine walker folds every second-order product
   into a scalar radius, this one keeps quadratic monomials exactly and
   bounds the polynomial range by Bernstein coefficients — tighter on
   the band-boundary boxes that dominate paving. *)

module T = Interval.Tm

let forward_tm tp sc (inputs : I.t array) =
  let tm = sc.tms in
  let ops = tp.ops in
  for s = 0 to Array.length ops - 1 do
    let r =
      match Array.unsafe_get ops s with
      | OVar i -> T.of_interval ~sym:i (Array.unsafe_get inputs i)
      | OConst c -> T.const c
      | OAdd (a, b) -> T.add tm.(a) tm.(b)
      | OSub (a, b) -> T.sub tm.(a) tm.(b)
      | OMul (a, b) -> T.mul tm.(a) tm.(b)
      | ODiv (a, b) -> T.div tm.(a) tm.(b)
      | ONeg a -> T.neg tm.(a)
      | OPow (a, k) -> T.pow_int tm.(a) k
      | OExp a -> T.exp tm.(a)
      | OLog a -> T.log tm.(a)
      | OSqrt a -> T.sqrt tm.(a)
      | OSin a -> T.sin tm.(a)
      | OCos a -> T.cos tm.(a)
      | OTan a -> T.tan tm.(a)
      | OAtan a -> T.atan tm.(a)
      | OTanh a -> T.tanh tm.(a)
      | OAbs a -> T.abs tm.(a)
      | OMin (a, b) -> T.min_ tm.(a) tm.(b)
      | OMax (a, b) -> T.max_ tm.(a) tm.(b)
    in
    tm.(s) <- r
  done

let eval_tm_into tp sc ~inputs ~out =
  forward_tm tp sc inputs;
  for k = 0 to Array.length tp.roots - 1 do
    out.(k) <- T.concretize sc.tms.(tp.roots.(k))
  done

(* Taylor-model analogue of [affine_tighten]: intersect interval slot
   enclosures with concretized TM slot ranges, recording emptiness as
   the (nan, nan) slot.  Returns [true] iff some slot strictly
   tightened. *)
let tm_tighten tp sc dom =
  forward_tm tp sc dom;
  let lo = sc.ilos and hi = sc.ihis in
  let tm = sc.tms in
  let tightened = ref false in
  for s = 0 to Array.length tp.ops - 1 do
    let l = Array.unsafe_get lo s in
    if l = l then begin
      let r = T.concretize tm.(s) in
      let rl = r.I.lo and rh = r.I.hi in
      if rl <> rl || rh <> rh then begin
        Array.unsafe_set lo s nan;
        Array.unsafe_set hi s nan;
        tightened := true
      end
      else begin
        let h = Array.unsafe_get hi s in
        let l' = fmax l rl and h' = fmin h rh in
        if l' > h' then begin
          Array.unsafe_set lo s nan;
          Array.unsafe_set hi s nan;
          tightened := true
        end
        else if not (l' = l && h' = h) then begin
          Array.unsafe_set lo s l';
          Array.unsafe_set hi s h';
          tightened := true
        end
      end
    end
  done;
  !tightened

(* ---- Smoothness certificate ----

   After [forward_intervals] over a box, decide whether every function
   compiled into the tape is defined and C¹ on the whole box.  The box
   is convex, so it suffices that no partially-defined or non-smooth
   instruction's argument enclosure touches a singular point:

   - ODiv: the divisor enclosure excludes 0;
   - OLog, OSqrt: the argument enclosure is strictly positive (sqrt is
     defined at 0 but not differentiable there);
   - OPow with negative exponent: the base enclosure excludes 0;
   - OAbs: the argument enclosure excludes 0 (the kink);
   - OTan: the instruction's own enclosure is bounded — {!Ia.tan}
     returns [entire] whenever the argument may contain a pole, so a
     bounded result certifies the argument sits inside one branch;
   - OMin/OMax: never smooth-certified (kinks anywhere the arguments
     cross; the gradient compiler rejects them before this point);
   - any empty slot (including empty inputs) fails.

   The enclosures are conservative, so this can only under-report
   smoothness — exactly the safe direction for the mean-value and
   Newton contractions that require it. *)
let smooth_on tp sc =
  let lo = sc.ilos and hi = sc.ihis in
  let ops = tp.ops in
  let n = Array.length ops in
  let ok = ref true in
  let s = ref 0 in
  while !ok && !s < n do
    let i = !s in
    (match Array.unsafe_get ops i with
    | ODiv (_, b) ->
        let bl = Array.unsafe_get lo b and bh = Array.unsafe_get hi b in
        if not (bl > 0.0 || bh < 0.0) then ok := false
    | OLog a | OSqrt a ->
        if not (Array.unsafe_get lo a > 0.0) then ok := false
    | OPow (a, k) when k < 0 ->
        let al = Array.unsafe_get lo a and ah = Array.unsafe_get hi a in
        if not (al > 0.0 || ah < 0.0) then ok := false
    | OAbs a ->
        let al = Array.unsafe_get lo a and ah = Array.unsafe_get hi a in
        if not (al > 0.0 || ah < 0.0) then ok := false
    | OTan _ ->
        let l = Array.unsafe_get lo i and h = Array.unsafe_get hi i in
        if not (Float.is_finite l && Float.is_finite h) then ok := false
    | OMin _ | OMax _ -> ok := false
    | OVar _ | OConst _ | OAdd _ | OSub _ | OMul _ | ONeg _ | OPow _
    | OExp _ | OSin _ | OCos _ | OAtan _ | OTanh _ ->
        ());
    (if !ok then
       let l = Array.unsafe_get lo i in
       if l <> l then ok := false);
    incr s
  done;
  !ok

(* ---- Preimage helpers shared with the tree-walking contractor ---- *)

(* Preimage of [r] under x ↦ x^k intersected with [x].  Even powers have
   two branches (intersected with [x] separately, then hulled — hulling
   first would fill the gap and lose the contraction); negative powers
   reduce to the positive case through the reciprocal: over the reals,
   x^(-m) ∈ r implies x^m ∈ 1/r. *)
let rec pow_preimage x r k =
  if k = 0 then if I.mem 1.0 r then x else I.empty
  else if k < 0 then pow_preimage x (I.inv r) (-k)
  else if k mod 2 = 1 then I.inter x (I.root r k)
  else
    let pos = I.root r k in
    if I.is_empty pos then I.empty
    else I.hull (I.inter x (I.neg pos)) (I.inter x pos)

(* Preimage of [r] under abs intersected with [x]. *)
let abs_preimage x r =
  let rp = I.inter r (I.make 0.0 infinity) in
  if I.is_empty rp then I.empty
  else I.hull (I.inter x (I.neg rp)) (I.inter x rp)

(* Preimage of [v] under tan intersected with [x], contracting only when
   [x] provably sits inside one monotone branch (kπ-π/2, kπ+π/2).  The
   branch bounds use an outward-rounded enclosure of π, so the strict
   comparisons are sound despite π being irrational. *)
let tan_preimage x v =
  if not (I.is_bounded x) then x
  else
    let pi_enc = I.of_literal Float.pi in
    let k = Float.round (I.mid x /. Float.pi) in
    let shift = I.mul_float pi_enc k in
    let half_pi = I.mul_float pi_enc 0.5 in
    let branch_lo = I.sub shift half_pi in
    let branch_hi = I.add shift half_pi in
    if I.lo x > I.hi branch_lo && I.hi x < I.lo branch_hi then
      I.inter x (I.add (I.atan v) shift)
    else x

(* ---- HC4 backward pass ---- *)

exception Infeasible

(* [require] intersects a slot's forward value with the requirement left
   in the scratch's [req] cell and, on change, propagates down.  The
   cell is consumed on entry, so recursive pushes may freely overwrite
   it.  Callers store the requirement bounds with two unboxed float
   writes instead of passing them as (boxed) arguments.  Input (OVar)
   slots simply accumulate: with all occurrences of a variable CSE'd
   into one slot, the running float max/min is exactly the [reqs] table
   of the tree-walking HC4.  A NaN requirement bound means the
   requirement is empty (Ia half-NaN records included), and an empty
   intersection is infeasible. *)
let rec require tp sc s =
  let rlo = sc.req.rlo and rhi = sc.req.rhi in
  let vlo = Array.unsafe_get sc.ilos s and vhi = Array.unsafe_get sc.ihis s in
  if vlo <> vlo || rlo <> rlo || rhi <> rhi then raise Infeasible;
  let l = fmax vlo rlo and h = fmin vhi rhi in
  if l > h then raise Infeasible;
  if not (l = vlo && h = vhi) then begin
    Array.unsafe_set sc.ilos s l;
    Array.unsafe_set sc.ihis s h;
    push tp sc s
  end

and require_itv tp sc s r =
  sc.req.rlo <- r.I.lo;
  sc.req.rhi <- r.I.hi;
  require tp sc s

and push tp sc s =
  (* The slot was just tightened by [require], so it is nonempty; its
     operands are nonempty too (every forward op propagates empty).
     Direct array accesses throughout: this is the hot path and local
     accessor closures would allocate on every call. *)
  let ilos = sc.ilos and ihis = sc.ihis in
  let vlo = Array.unsafe_get ilos s and vhi = Array.unsafe_get ihis s in
  match tp.ops.(s) with
  | OVar _ -> ()
  | OConst c ->
      if c <> c || not (vlo <= c && c <= vhi) then raise Infeasible
  | OAdd (a, b) ->
      (* a ∈ v - b, then b ∈ v - a with a's freshly tightened bounds. *)
      let req = sc.req in
      req.rlo <- R.next_after (vlo -. Array.unsafe_get ihis b) neg_infinity;
      req.rhi <- R.next_after (vhi -. Array.unsafe_get ilos b) infinity;
      require tp sc a;
      req.rlo <- R.next_after (vlo -. Array.unsafe_get ihis a) neg_infinity;
      req.rhi <- R.next_after (vhi -. Array.unsafe_get ilos a) infinity;
      require tp sc b
  | OSub (a, b) ->
      let req = sc.req in
      req.rlo <- R.next_after (vlo +. Array.unsafe_get ilos b) neg_infinity;
      req.rhi <- R.next_after (vhi +. Array.unsafe_get ihis b) infinity;
      require tp sc a;
      req.rlo <- R.next_after (Array.unsafe_get ilos a -. vhi) neg_infinity;
      req.rhi <- R.next_after (Array.unsafe_get ihis a -. vlo) infinity;
      require tp sc b
  | OMul (a, b) ->
      let bl = Array.unsafe_get ilos b and bh = Array.unsafe_get ihis b in
      if bl <> bl || not (bl <= 0.0 && 0.0 <= bh) then
        require_itv tp sc a (I.div (I.make_unordered vlo vhi) (slot_itv sc b));
      let al = Array.unsafe_get ilos a and ah = Array.unsafe_get ihis a in
      if al <> al || not (al <= 0.0 && 0.0 <= ah) then
        require_itv tp sc b (I.div (I.make_unordered vlo vhi) (slot_itv sc a))
  | ODiv (a, b) ->
      require_itv tp sc a (I.mul (I.make_unordered vlo vhi) (slot_itv sc b));
      if not (vlo <= 0.0 && 0.0 <= vhi) then
        require_itv tp sc b (I.div (slot_itv sc a) (I.make_unordered vlo vhi))
  | ONeg a ->
      sc.req.rlo <- -.vhi;
      sc.req.rhi <- -.vlo;
      require tp sc a
  | OPow (a, k) ->
      let pre = pow_preimage (slot_itv sc a) (I.make_unordered vlo vhi) k in
      if I.is_empty pre then raise Infeasible;
      require_itv tp sc a pre
  | OExp a ->
      (* exp x ∈ v ⇒ v must meet (0, ∞) and x ∈ log v *)
      let vp = I.inter (I.make_unordered vlo vhi) (I.make 0.0 infinity) in
      if I.is_empty vp then raise Infeasible;
      require_itv tp sc a (I.log vp)
  | OLog a -> require_itv tp sc a (I.exp (I.make_unordered vlo vhi))
  | OSqrt a ->
      let vp = I.inter (I.make_unordered vlo vhi) (I.make 0.0 infinity) in
      if I.is_empty vp then raise Infeasible;
      require_itv tp sc a (I.sqr vp)
  | OSin _ | OCos _ ->
      (* Multivalued inverse: only prune when the range is impossible. *)
      if vlo > 1.0 || vhi < -1.0 then raise Infeasible
  | OTan a ->
      let pre = tan_preimage (slot_itv sc a) (I.make_unordered vlo vhi) in
      if I.is_empty pre then raise Infeasible;
      require_itv tp sc a pre
  | OAtan a ->
      let dom = I.make (-1.5707963267948966) 1.5707963267948966 in
      let vc = I.inter (I.make_unordered vlo vhi) dom in
      if I.is_empty vc then raise Infeasible;
      require_itv tp sc a (I.tan vc)
  | OTanh a ->
      let vc = I.inter (I.make_unordered vlo vhi) (I.make (-1.0) 1.0) in
      if I.is_empty vc then raise Infeasible;
      require_itv tp sc a (I.atanh vc)
  | OAbs a ->
      let pre = abs_preimage (slot_itv sc a) (I.make_unordered vlo vhi) in
      if I.is_empty pre then raise Infeasible;
      require_itv tp sc a pre
  | OMin (a, b) ->
      (* min(a,b) ∈ v ⇒ a ≥ v.lo and b ≥ v.lo; if the other side lies
         strictly above v, this side must realize the upper bound. *)
      let req = sc.req in
      req.rlo <- fmax (Array.unsafe_get ilos a) vlo;
      req.rhi <- Array.unsafe_get ihis a;
      require tp sc a;
      req.rlo <- fmax (Array.unsafe_get ilos b) vlo;
      req.rhi <- Array.unsafe_get ihis b;
      require tp sc b;
      if Array.unsafe_get ilos b > vhi then begin
        req.rlo <- fmax (Array.unsafe_get ilos a) vlo;
        req.rhi <- fmin (Array.unsafe_get ihis a) vhi;
        require tp sc a
      end;
      if Array.unsafe_get ilos a > vhi then begin
        req.rlo <- fmax (Array.unsafe_get ilos b) vlo;
        req.rhi <- fmin (Array.unsafe_get ihis b) vhi;
        require tp sc b
      end
  | OMax (a, b) ->
      let req = sc.req in
      req.rlo <- Array.unsafe_get ilos a;
      req.rhi <- fmin (Array.unsafe_get ihis a) vhi;
      require tp sc a;
      req.rlo <- Array.unsafe_get ilos b;
      req.rhi <- fmin (Array.unsafe_get ihis b) vhi;
      require tp sc b;
      if Array.unsafe_get ihis b < vlo then begin
        req.rlo <- fmax (Array.unsafe_get ilos a) vlo;
        req.rhi <- fmin (Array.unsafe_get ihis a) vhi;
        require tp sc a
      end;
      if Array.unsafe_get ihis a < vlo then begin
        req.rlo <- fmax (Array.unsafe_get ilos b) vlo;
        req.rhi <- fmin (Array.unsafe_get ihis b) vhi;
        require tp sc b
      end

let hc4_revise tp sc ?(affine = false) ?(tm = false) ?mask ~target dom =
  forward_intervals tp sc dom;
  (* Each enclosure pass intersects every slot with its concretized
     range before the backward pass sees them, and refutes outright
     when it empties root ∩ target.  Refutation short-circuits: the TM
     pass only runs when the affine pass left the root feasible. *)
  let r0 = tp.roots.(0) in
  let tlo = target.I.lo and thi = target.I.hi in
  let meets_target () =
    let l = Array.unsafe_get sc.ilos r0
    and h = Array.unsafe_get sc.ihis r0 in
    l = l && tlo = tlo && fmax l tlo <= fmin h thi
  in
  let refuted =
    (affine
    && A.with_span (fun () ->
           let pre = meets_target () in
           if affine_tighten tp sc dom then A.note_tightening ();
           let post = meets_target () in
           if pre && not post then A.note_refutation ();
           not post))
    || tm
       && T.with_span (fun () ->
              let pre = meets_target () in
              if tm_tighten tp sc dom then T.note_tightening ();
              let post = meets_target () in
              if pre && not post then T.note_refutation ();
              not post)
  in
  if refuted then false
  else begin
  sc.req.rlo <- target.I.lo;
  sc.req.rhi <- target.I.hi;
  match require tp sc tp.roots.(0) with
  | () ->
      (* Explicit loop rather than Array.iter with a capturing closure:
         the closure would be allocated on every revise call. *)
      let vs = tp.var_slots in
      for k = 0 to Array.length vs - 1 do
        let s, i = Array.unsafe_get vs k in
        let keep = match mask with None -> true | Some m -> m.(i) in
        if keep then begin
          (* Only allocate a fresh interval when the bounds moved —
             most variables are untouched by a given constraint. *)
          let l = Array.unsafe_get sc.ilos s
          and h = Array.unsafe_get sc.ihis s in
          let old = dom.(i) in
          if not (old.I.lo = l && old.I.hi = h) then
            dom.(i) <- I.make_unordered l h
        end
      done;
      true
  | exception Infeasible -> false
  end
