(* Recursive-descent parser for terms and formulas.

   Term grammar (usual precedences, ^ binds tightest and takes an integer
   exponent):

     term    ::= sum
     sum     ::= prod (('+' | '-') prod)*
     prod    ::= unary (('*' | '/') unary)*
     unary   ::= '-' unary | power
     power   ::= primary ('^' ('-')? int)?
     primary ::= number | ident | ident '(' term (',' term)* ')' | '(' term ')'

   Formula grammar:

     formula ::= disj
     disj    ::= conj ('or' conj | '\/' conj)*
     conj    ::= unit ('and' unit | '/\' unit)*
     unit    ::= 'not' unit | 'true' | 'false' | '(' formula ')'
               | term rel term
     rel     ::= '>' | '>=' | '<' | '<=' | '=' *)

type token =
  | Tnum of float
  | Tident of string
  | Tplus
  | Tminus
  | Tstar
  | Tslash
  | Tcaret
  | Tlparen
  | Trparen
  | Tcomma
  | Tgt
  | Tge
  | Tlt
  | Tle
  | Teq
  | Tand
  | Tor
  | Tnot
  | Ttrue
  | Tfalse
  | Teof

exception Error of string

let error fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || is_digit c || c = '\'' || c = '.'

let tokenize s =
  let n = String.length s in
  let toks = ref [] in
  let push t = toks := t :: !toks in
  let i = ref 0 in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit s.[!i + 1]) then begin
      let j = ref !i in
      let accept p = !j < n && p s.[!j] in
      while accept is_digit do incr j done;
      if accept (fun c -> c = '.') then begin
        incr j;
        while accept is_digit do incr j done
      end;
      if accept (fun c -> c = 'e' || c = 'E') then begin
        incr j;
        if accept (fun c -> c = '+' || c = '-') then incr j;
        while accept is_digit do incr j done
      end;
      let lit = String.sub s !i (!j - !i) in
      (match float_of_string_opt lit with
      | Some v -> push (Tnum v)
      | None -> error "invalid numeric literal %S" lit);
      i := !j
    end
    else if is_ident_start c then begin
      let j = ref !i in
      while !j < n && is_ident_char s.[!j] do incr j done;
      let id = String.sub s !i (!j - !i) in
      (match id with
      | "and" -> push Tand
      | "or" -> push Tor
      | "not" -> push Tnot
      | "true" -> push Ttrue
      | "false" -> push Tfalse
      | _ -> push (Tident id));
      i := !j
    end
    else begin
      let two = if !i + 1 < n then String.sub s !i 2 else "" in
      match two with
      | ">=" -> push Tge; i := !i + 2
      | "<=" -> push Tle; i := !i + 2
      | "/\\" -> push Tand; i := !i + 2
      | "\\/" -> push Tor; i := !i + 2
      | "==" -> push Teq; i := !i + 2
      | _ -> (
          (match c with
          | '+' -> push Tplus
          | '-' -> push Tminus
          | '*' -> push Tstar
          | '/' -> push Tslash
          | '^' -> push Tcaret
          | '(' -> push Tlparen
          | ')' -> push Trparen
          | ',' -> push Tcomma
          | '>' -> push Tgt
          | '<' -> push Tlt
          | '=' -> push Teq
          | _ -> error "unexpected character %C" c);
          incr i)
    end
  done;
  push Teof;
  List.rev !toks

(* A tiny mutable cursor over the token list. *)
type cursor = { mutable toks : token list }

let peek c = match c.toks with [] -> Teof | t :: _ -> t

let advance c = match c.toks with [] -> () | _ :: rest -> c.toks <- rest

let expect c t what =
  if peek c = t then advance c else error "expected %s" what

let unary_funs =
  [ ("exp", Term.exp); ("log", Term.log); ("sqrt", Term.sqrt); ("sin", Term.sin);
    ("cos", Term.cos); ("tan", Term.tan); ("atan", Term.atan); ("tanh", Term.tanh);
    ("abs", Term.abs) ]

let binary_funs = [ ("min", Term.min_); ("max", Term.max_) ]

let rec parse_term_c c = parse_sum c

and parse_sum c =
  let rec loop acc =
    match peek c with
    | Tplus ->
        advance c;
        loop (Term.add acc (parse_prod c))
    | Tminus ->
        advance c;
        loop (Term.sub acc (parse_prod c))
    | _ -> acc
  in
  loop (parse_prod c)

and parse_prod c =
  let rec loop acc =
    match peek c with
    | Tstar ->
        advance c;
        loop (Term.mul acc (parse_unary c))
    | Tslash ->
        advance c;
        loop (Term.div acc (parse_unary c))
    | _ -> acc
  in
  loop (parse_unary c)

and parse_unary c =
  match peek c with
  | Tminus ->
      advance c;
      Term.neg (parse_unary c)
  | _ -> parse_power c

and parse_power c =
  let base = parse_primary c in
  match peek c with
  | Tcaret -> (
      advance c;
      let sign =
        match peek c with
        | Tminus ->
            advance c;
            -1
        | _ -> 1
      in
      match peek c with
      | Tnum v when Float.is_integer v ->
          advance c;
          Term.pow base (sign * int_of_float v)
      | _ -> error "expected integer exponent after '^'")
  | _ -> base

and parse_primary c =
  match peek c with
  | Tnum v ->
      advance c;
      Term.const v
  | Tlparen ->
      advance c;
      let t = parse_term_c c in
      expect c Trparen "')'";
      t
  | Tident id -> (
      advance c;
      match peek c with
      | Tlparen -> (
          advance c;
          let args =
            let rec loop acc =
              let t = parse_term_c c in
              match peek c with
              | Tcomma ->
                  advance c;
                  loop (t :: acc)
              | _ -> List.rev (t :: acc)
            in
            loop []
          in
          expect c Trparen "')'";
          match (List.assoc_opt id unary_funs, List.assoc_opt id binary_funs, args) with
          | Some f, _, [ a ] -> f a
          | _, Some f, [ a; b ] -> f a b
          | _ -> error "unknown function %S with %d argument(s)" id (List.length args))
      | _ -> Term.var id)
  | _ -> error "expected a term"

let rec parse_formula_c c = parse_disj c

and parse_disj c =
  let rec loop acc =
    match peek c with
    | Tor ->
        advance c;
        loop (parse_conj c :: acc)
    | _ -> ( match acc with [ f ] -> f | fs -> Formula.or_ (List.rev fs))
  in
  loop [ parse_conj c ]

and parse_conj c =
  let rec loop acc =
    match peek c with
    | Tand ->
        advance c;
        loop (parse_unit c :: acc)
    | _ -> ( match acc with [ f ] -> f | fs -> Formula.and_ (List.rev fs))
  in
  loop [ parse_unit c ]

and parse_unit c =
  match peek c with
  | Tnot ->
      advance c;
      Formula.neg (parse_unit c)
  | Ttrue ->
      advance c;
      Formula.tt
  | Tfalse ->
      advance c;
      Formula.ff
  | Tlparen -> (
      (* Could be a parenthesized formula or a parenthesized term followed
         by a relation: backtrack by saving the cursor. *)
      let saved = c.toks in
      advance c;
      try
        let f = parse_formula_c c in
        expect c Trparen "')'";
        match peek c with
        | Tgt | Tge | Tlt | Tle | Teq ->
            (* It was actually a term comparison: reparse as relation. *)
            c.toks <- saved;
            parse_relation c
        | _ -> f
      with Error _ ->
        c.toks <- saved;
        parse_relation c)
  | _ -> parse_relation c

and parse_relation c =
  let lhs = parse_term_c c in
  let rel = peek c in
  match rel with
  | Tgt ->
      advance c;
      Formula.gt lhs (parse_term_c c)
  | Tge ->
      advance c;
      Formula.ge lhs (parse_term_c c)
  | Tlt ->
      advance c;
      Formula.lt lhs (parse_term_c c)
  | Tle ->
      advance c;
      Formula.le lhs (parse_term_c c)
  | Teq ->
      advance c;
      Formula.eq lhs (parse_term_c c)
  | _ -> error "expected a relation operator"

let finish c v =
  match peek c with
  | Teof -> v
  | _ -> error "trailing input"

let term s =
  let c = { toks = tokenize s } in
  finish c (parse_term_c c)

let formula s =
  let c = { toks = tokenize s } in
  finish c (parse_formula_c c)

let term_opt s = try Some (term s) with Error _ -> None
let formula_opt s = try Some (formula s) with Error _ -> None
