(* L_RF terms: real-valued expressions built from variables, constants and
   computable functions (Definition 1 of the paper).

   Terms support float evaluation, interval evaluation (the basis of the
   δ-decision procedure), symbolic differentiation, substitution, and
   compilation to array-indexed closures for fast inner loops (ODE
   right-hand sides, Monte-Carlo sampling). *)

module SSet = Set.Make (String)

type t =
  | Var of string
  | Const of float
  | Add of t * t
  | Sub of t * t
  | Mul of t * t
  | Div of t * t
  | Neg of t
  | Pow of t * int
  | Exp of t
  | Log of t
  | Sqrt of t
  | Sin of t
  | Cos of t
  | Tan of t
  | Atan of t
  | Tanh of t
  | Abs of t
  | Min of t * t
  | Max of t * t

(* ---- Smart constructors (light algebraic simplification) ---- *)

let var x = Var x
let const c = Const c
let zero = Const 0.0
let one = Const 1.0

let is_const = function Const _ -> true | _ -> false

let add a b =
  match (a, b) with
  | Const 0.0, t | t, Const 0.0 -> t
  | Const x, Const y -> Const (x +. y)
  | _ -> Add (a, b)

let sub a b =
  match (a, b) with
  | t, Const 0.0 -> t
  | Const 0.0, t -> Neg t
  | Const x, Const y -> Const (x -. y)
  | _ -> Sub (a, b)

let mul a b =
  match (a, b) with
  | Const 0.0, _ | _, Const 0.0 -> Const 0.0
  | Const 1.0, t | t, Const 1.0 -> t
  | Const x, Const y -> Const (x *. y)
  | _ -> Mul (a, b)

let div a b =
  match (a, b) with
  | t, Const 1.0 -> t
  | Const 0.0, _ -> Const 0.0
  | Const x, Const y when y <> 0.0 -> Const (x /. y)
  | _ -> Div (a, b)

let neg = function
  | Const c -> Const (-.c)
  | Neg t -> t
  | t -> Neg t

let pow t n =
  match (t, n) with
  | _, 0 -> one
  | t, 1 -> t
  | Const c, n -> Const (Float.pow c (float_of_int n))
  | t, n -> Pow (t, n)

let exp t = match t with Const c -> Const (Float.exp c) | _ -> Exp t
let log t = match t with Const c when c > 0.0 -> Const (Float.log c) | _ -> Log t
let sqrt t = match t with Const c when c >= 0.0 -> Const (Float.sqrt c) | _ -> Sqrt t
let sin t = match t with Const c -> Const (Float.sin c) | _ -> Sin t
let cos t = match t with Const c -> Const (Float.cos c) | _ -> Cos t
let tan t = match t with Const c -> Const (Float.tan c) | _ -> Tan t
let atan t = match t with Const c -> Const (Float.atan c) | _ -> Atan t
let tanh t = match t with Const c -> Const (Float.tanh c) | _ -> Tanh t
let abs t = match t with Const c -> Const (Float.abs c) | _ -> Abs t
let min_ a b = match (a, b) with Const x, Const y -> Const (Float.min x y) | _ -> Min (a, b)
let max_ a b = match (a, b) with Const x, Const y -> Const (Float.max x y) | _ -> Max (a, b)

module Infix = struct
  let ( + ) = add
  let ( - ) = sub
  let ( * ) = mul
  let ( / ) = div
  let ( ~- ) = neg
  let ( ** ) = pow
  let ( !. ) = const
  let ( !! ) = var
end

(* ---- Structure ---- *)

let rec size = function
  | Var _ | Const _ -> 1
  | Neg t | Pow (t, _) | Exp t | Log t | Sqrt t | Sin t | Cos t | Tan t
  | Atan t | Tanh t | Abs t ->
      1 + size t
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b) ->
      1 + size a + size b

let rec depth = function
  | Var _ | Const _ -> 1
  | Neg t | Pow (t, _) | Exp t | Log t | Sqrt t | Sin t | Cos t | Tan t
  | Atan t | Tanh t | Abs t ->
      1 + depth t
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b) ->
      1 + Stdlib.max (depth a) (depth b)

let rec free_vars_acc acc = function
  | Var x -> SSet.add x acc
  | Const _ -> acc
  | Neg t | Pow (t, _) | Exp t | Log t | Sqrt t | Sin t | Cos t | Tan t
  | Atan t | Tanh t | Abs t ->
      free_vars_acc acc t
  | Add (a, b) | Sub (a, b) | Mul (a, b) | Div (a, b) | Min (a, b) | Max (a, b) ->
      free_vars_acc (free_vars_acc acc a) b

let free_vars t = free_vars_acc SSet.empty t
let free_var_list t = SSet.elements (free_vars t)
let mentions x t = SSet.mem x (free_vars t)

(* Canonical, injective serialization for use as a memoization key.
   Floats are rendered with %h (hex, exact), so syntactically different
   constants never collide the way a rounded decimal rendering would. *)
let fingerprint_acc buf t =
  let rec go t =
    let unary tag c =
      Buffer.add_char buf tag;
      Buffer.add_char buf '(';
      go c;
      Buffer.add_char buf ')'
    in
    let binary tag a b =
      Buffer.add_char buf tag;
      Buffer.add_char buf '(';
      go a;
      Buffer.add_char buf ',';
      go b;
      Buffer.add_char buf ')'
    in
    match t with
    | Var x ->
        Buffer.add_char buf 'v';
        Buffer.add_string buf x;
        Buffer.add_char buf ';'
    | Const c ->
        Buffer.add_char buf 'c';
        Buffer.add_string buf (Printf.sprintf "%h;" c)
    | Add (a, b) -> binary '+' a b
    | Sub (a, b) -> binary '-' a b
    | Mul (a, b) -> binary '*' a b
    | Div (a, b) -> binary '/' a b
    | Min (a, b) -> binary 'm' a b
    | Max (a, b) -> binary 'M' a b
    | Neg a -> unary 'n' a
    | Pow (a, k) ->
        Buffer.add_char buf '^';
        Buffer.add_string buf (string_of_int k);
        Buffer.add_char buf '(';
        go a;
        Buffer.add_char buf ')'
    | Exp a -> unary 'e' a
    | Log a -> unary 'l' a
    | Sqrt a -> unary 'q' a
    | Sin a -> unary 's' a
    | Cos a -> unary 'o' a
    | Tan a -> unary 't' a
    | Atan a -> unary 'a' a
    | Tanh a -> unary 'h' a
    | Abs a -> unary 'b' a
  in
  go t

let fingerprint t =
  let buf = Buffer.create 128 in
  fingerprint_acc buf t;
  Buffer.contents buf

(* ---- Mapping and substitution ---- *)

let rec map_vars f = function
  | Var x -> f x
  | Const c -> Const c
  | Add (a, b) -> add (map_vars f a) (map_vars f b)
  | Sub (a, b) -> sub (map_vars f a) (map_vars f b)
  | Mul (a, b) -> mul (map_vars f a) (map_vars f b)
  | Div (a, b) -> div (map_vars f a) (map_vars f b)
  | Neg t -> neg (map_vars f t)
  | Pow (t, n) -> pow (map_vars f t) n
  | Exp t -> exp (map_vars f t)
  | Log t -> log (map_vars f t)
  | Sqrt t -> sqrt (map_vars f t)
  | Sin t -> sin (map_vars f t)
  | Cos t -> cos (map_vars f t)
  | Tan t -> tan (map_vars f t)
  | Atan t -> atan (map_vars f t)
  | Tanh t -> tanh (map_vars f t)
  | Abs t -> abs (map_vars f t)
  | Min (a, b) -> min_ (map_vars f a) (map_vars f b)
  | Max (a, b) -> max_ (map_vars f a) (map_vars f b)

let subst bindings t =
  map_vars (fun x -> match List.assoc_opt x bindings with Some u -> u | None -> Var x) t

let rename renaming t =
  map_vars
    (fun x -> Var (match List.assoc_opt x renaming with Some y -> y | None -> x))
    t

(* Rebuild the term through the smart constructors, folding constants. *)
let simplify t = subst [] t

(* ---- Deep simplification (gradient pipeline) ----

   [Term.deriv] builds its output through the smart constructors, which
   fold adjacent constants but leave the chain/product-rule scaffolding
   in place: nested negations, products of negated factors, constants
   buried one level inside a product.  [simplify_deep] cleans those up
   before tape compilation.

   Every rule preserves the function's domain of definition exactly —
   the interval Newton layer certifies smoothness from the natural
   enclosures of the simplified tree, so a rewrite that extended the
   domain (say [exp (log x) → x]) could hide a singularity and break
   the certificate.  Rules are also numerically conservative: they
   either commute with IEEE arithmetic bit-for-bit (neg hoisting,
   sub-of-neg) or are gated on the constant folding being exact
   (checked with an FMA residual for products, a Fast2Sum-style
   round-trip for sums).  [Term.simplify] (used by [compile]) is left
   untouched: its float semantics are pinned by the tape differential
   tests. *)

let exact_mul c d =
  let p = c *. d in
  Float.is_finite p && Float.fma c d (-.p) = 0.0

let exact_add c d =
  let s = c +. d in
  Float.is_finite s && s -. c = d && s -. d = c

let s_neg = function
  | Const c -> Const (-.c)
  | Neg t -> t
  | Sub (a, b) -> Sub (b, a)  (* -(a - b) = b - a, bit-identical *)
  | t -> Neg t

(* Strip negations off the operands of a product or quotient; the sign
   is re-applied on top where [s_neg] can cancel it against the
   context.  Recursion consumes one [Neg] constructor per step, so it
   terminates. *)
let rec s_mul a b =
  match (a, b) with
  | Neg a, Neg b -> s_mul a b
  | Neg a, b | a, Neg b -> s_neg (s_mul a b)
  | Const c, Mul (Const d, e) when exact_mul c d -> s_mul (Const (c *. d)) e
  | Mul (Const d, e), Const c when exact_mul c d -> s_mul (Const (c *. d)) e
  | Const c, Mul (e, Const d) when exact_mul c d -> s_mul (Const (c *. d)) e
  | _ -> mul a b

let rec s_div a b =
  match (a, b) with
  | Neg a, Neg b -> s_div a b
  | Neg a, b | a, Neg b -> s_neg (s_div a b)
  | _ -> div a b

let s_add a b =
  match (a, b) with
  | a, Neg b -> sub a b
  | Neg a, b -> sub b a
  | Const c, Add (Const d, e) when exact_add c d -> add (Const (c +. d)) e
  | _ -> add a b

let s_sub a b =
  match (a, b) with
  | Neg a, Neg b -> sub b a
  | a, Neg b -> add a b
  | _ -> sub a b

let s_pow t n =
  match (t, n) with
  (* (a^m)^n = a^(mn) as real functions when m, n ≥ 1 (same domain:
     total in a for non-negative exponents). *)
  | Pow (a, m), n when m >= 1 && n >= 1 -> pow a (m * n)
  | Neg a, n when n >= 0 -> if n land 1 = 0 then pow a n else s_neg (pow a n)
  | _ -> pow t n

let rec simplify_deep t =
  let s = simplify_deep in
  match t with
  | Var _ | Const _ -> t
  | Add (a, b) -> s_add (s a) (s b)
  | Sub (a, b) -> s_sub (s a) (s b)
  | Mul (a, b) -> s_mul (s a) (s b)
  | Div (a, b) -> s_div (s a) (s b)
  | Neg a -> s_neg (s a)
  | Pow (a, n) -> s_pow (s a) n
  | Exp a -> exp (s a)
  | Log a -> log (s a)
  | Sqrt a -> sqrt (s a)
  | Sin a -> sin (s a)
  | Cos a -> cos (s a)
  | Tan a -> tan (s a)
  | Atan a -> atan (s a)
  | Tanh a -> tanh (s a)
  | Abs a -> abs (s a)
  | Min (a, b) -> min_ (s a) (s b)
  | Max (a, b) -> max_ (s a) (s b)

(* ---- Evaluation ---- *)

let rec eval lookup = function
  | Var x -> lookup x
  | Const c -> c
  | Add (a, b) -> eval lookup a +. eval lookup b
  | Sub (a, b) -> eval lookup a -. eval lookup b
  | Mul (a, b) -> eval lookup a *. eval lookup b
  | Div (a, b) -> eval lookup a /. eval lookup b
  | Neg t -> -.eval lookup t
  | Pow (t, n) -> Float.pow (eval lookup t) (float_of_int n)
  | Exp t -> Float.exp (eval lookup t)
  | Log t -> Float.log (eval lookup t)
  | Sqrt t -> Float.sqrt (eval lookup t)
  | Sin t -> Float.sin (eval lookup t)
  | Cos t -> Float.cos (eval lookup t)
  | Tan t -> Float.tan (eval lookup t)
  | Atan t -> Float.atan (eval lookup t)
  | Tanh t -> Float.tanh (eval lookup t)
  | Abs t -> Float.abs (eval lookup t)
  | Min (a, b) -> Float.min (eval lookup a) (eval lookup b)
  | Max (a, b) -> Float.max (eval lookup a) (eval lookup b)

let eval_env env t =
  eval
    (fun x ->
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Term.eval_env: unbound variable %S" x))
    t

let rec eval_interval (box : Interval.Box.t) t =
  let module I = Interval.Ia in
  match t with
  | Var x -> (
      match Interval.Box.find_opt x box with
      | Some i -> i
      | None -> invalid_arg (Printf.sprintf "Term.eval_interval: unbound variable %S" x))
  | Const c -> I.of_float c
  | Add (a, b) -> I.add (eval_interval box a) (eval_interval box b)
  | Sub (a, b) -> I.sub (eval_interval box a) (eval_interval box b)
  | Mul (a, b) -> I.mul (eval_interval box a) (eval_interval box b)
  | Div (a, b) -> I.div (eval_interval box a) (eval_interval box b)
  | Neg t -> I.neg (eval_interval box t)
  | Pow (t, n) -> I.pow_int (eval_interval box t) n
  | Exp t -> I.exp (eval_interval box t)
  | Log t -> I.log (eval_interval box t)
  | Sqrt t -> I.sqrt (eval_interval box t)
  | Sin t -> I.sin (eval_interval box t)
  | Cos t -> I.cos (eval_interval box t)
  | Tan t -> I.tan (eval_interval box t)
  | Atan t -> I.atan (eval_interval box t)
  | Tanh t -> I.tanh (eval_interval box t)
  | Abs t -> I.abs (eval_interval box t)
  | Min (a, b) -> I.min_ (eval_interval box a) (eval_interval box b)
  | Max (a, b) -> I.max_ (eval_interval box a) (eval_interval box b)

(* Compile to a closure over a value array indexed by position in [vars].
   Unbound variables are rejected at compile time, so the hot loop carries
   no name lookups. *)
let compile ~vars t =
  let index = Hashtbl.create 16 in
  List.iteri (fun i v -> Hashtbl.replace index v i) vars;
  let rec go = function
    | Var x -> (
        match Hashtbl.find_opt index x with
        | Some i -> fun a -> Array.unsafe_get a i
        | None -> invalid_arg (Printf.sprintf "Term.compile: unbound variable %S" x))
    | Const c -> fun _ -> c
    | Add (a, b) ->
        let fa = go a and fb = go b in
        fun arr -> fa arr +. fb arr
    | Sub (a, b) ->
        let fa = go a and fb = go b in
        fun arr -> fa arr -. fb arr
    | Mul (a, b) ->
        let fa = go a and fb = go b in
        fun arr -> fa arr *. fb arr
    | Div (a, b) ->
        let fa = go a and fb = go b in
        fun arr -> fa arr /. fb arr
    | Neg t ->
        let f = go t in
        fun arr -> -.f arr
    | Pow (t, 2) ->
        let f = go t in
        fun arr ->
          let v = f arr in
          v *. v
    | Pow (t, 3) ->
        let f = go t in
        fun arr ->
          let v = f arr in
          v *. v *. v
    | Pow (t, n) ->
        let f = go t and e = float_of_int n in
        fun arr -> Float.pow (f arr) e
    | Exp t ->
        let f = go t in
        fun arr -> Float.exp (f arr)
    | Log t ->
        let f = go t in
        fun arr -> Float.log (f arr)
    | Sqrt t ->
        let f = go t in
        fun arr -> Float.sqrt (f arr)
    | Sin t ->
        let f = go t in
        fun arr -> Float.sin (f arr)
    | Cos t ->
        let f = go t in
        fun arr -> Float.cos (f arr)
    | Tan t ->
        let f = go t in
        fun arr -> Float.tan (f arr)
    | Atan t ->
        let f = go t in
        fun arr -> Float.atan (f arr)
    | Tanh t ->
        let f = go t in
        fun arr -> Float.tanh (f arr)
    | Abs t ->
        let f = go t in
        fun arr -> Float.abs (f arr)
    | Min (a, b) ->
        let fa = go a and fb = go b in
        fun arr -> Float.min (fa arr) (fb arr)
    | Max (a, b) ->
        let fa = go a and fb = go b in
        fun arr -> Float.max (fa arr) (fb arr)
  in
  go (simplify t)

(* ---- Differentiation ---- *)

let rec deriv x t =
  let d = deriv x in
  match t with
  | Var y -> if String.equal x y then one else zero
  | Const _ -> zero
  | Add (a, b) -> add (d a) (d b)
  | Sub (a, b) -> sub (d a) (d b)
  | Mul (a, b) -> add (mul (d a) b) (mul a (d b))
  | Div (a, b) -> div (sub (mul (d a) b) (mul a (d b))) (pow b 2)
  | Neg t -> neg (d t)
  | Pow (t, n) -> mul (mul (const (float_of_int n)) (pow t (n - 1))) (d t)
  | Exp t -> mul (exp t) (d t)
  | Log t -> div (d t) t
  | Sqrt t -> div (d t) (mul (const 2.0) (sqrt t))
  | Sin t -> mul (cos t) (d t)
  | Cos t -> neg (mul (sin t) (d t))
  | Tan t -> div (d t) (pow (cos t) 2)
  | Atan t -> div (d t) (add one (pow t 2))
  | Tanh t -> mul (sub one (pow (tanh t) 2)) (d t)
  | Abs t ->
      (* Weak derivative: sign(t) * t'.  Not defined at 0; adequate for the
         smooth regions the analyses evaluate it on. *)
      mul (div t (abs t)) (d t)
  | Min _ | Max _ ->
      invalid_arg "Term.deriv: min/max are not differentiable symbolically"

let gradient vars t = List.map (fun v -> (v, deriv v t)) vars

(* Lie derivative of [t] along the vector field [field : (var, rhs)]. *)
let lie_derivative field t =
  List.fold_left
    (fun acc (v, rhs) -> add acc (mul (deriv v t) rhs))
    zero field

(* ---- Printing ---- *)

let rec pp ppf t = pp_prec 0 ppf t

and pp_prec prec ppf t =
  let parens p body =
    if prec > p then Fmt.pf ppf "(%t)" body else body ppf
  in
  match t with
  | Var x -> Fmt.string ppf x
  | Const c ->
      (* Shortest decimal that parses back to the same double. *)
      let s =
        let short = Printf.sprintf "%.12g" c in
        if float_of_string short = c then short else Printf.sprintf "%.17g" c
      in
      if c < 0.0 then parens 10 (fun ppf -> Fmt.string ppf s)
      else Fmt.string ppf s
  | Add (a, b) ->
      parens 1 (fun ppf -> Fmt.pf ppf "%a + %a" (pp_prec 1) a (pp_prec 2) b)
  | Sub (a, b) ->
      parens 1 (fun ppf -> Fmt.pf ppf "%a - %a" (pp_prec 1) a (pp_prec 2) b)
  | Mul (a, b) ->
      parens 2 (fun ppf -> Fmt.pf ppf "%a * %a" (pp_prec 2) a (pp_prec 3) b)
  | Div (a, b) ->
      parens 2 (fun ppf -> Fmt.pf ppf "%a / %a" (pp_prec 2) a (pp_prec 3) b)
  | Neg t -> parens 2 (fun ppf -> Fmt.pf ppf "-%a" (pp_prec 3) t)
  | Pow (t, n) -> parens 3 (fun ppf -> Fmt.pf ppf "%a^%d" (pp_prec 4) t n)
  | Exp t -> Fmt.pf ppf "exp(%a)" pp t
  | Log t -> Fmt.pf ppf "log(%a)" pp t
  | Sqrt t -> Fmt.pf ppf "sqrt(%a)" pp t
  | Sin t -> Fmt.pf ppf "sin(%a)" pp t
  | Cos t -> Fmt.pf ppf "cos(%a)" pp t
  | Tan t -> Fmt.pf ppf "tan(%a)" pp t
  | Atan t -> Fmt.pf ppf "atan(%a)" pp t
  | Tanh t -> Fmt.pf ppf "tanh(%a)" pp t
  | Abs t -> Fmt.pf ppf "abs(%a)" pp t
  | Min (a, b) -> Fmt.pf ppf "min(%a, %a)" pp a pp b
  | Max (a, b) -> Fmt.pf ppf "max(%a, %a)" pp a pp b

let to_string t = Fmt.str "%a" pp t

let rec equal a b =
  match (a, b) with
  | Var x, Var y -> String.equal x y
  | Const x, Const y -> x = y || (Float.is_nan x && Float.is_nan y)
  | Add (a1, a2), Add (b1, b2)
  | Sub (a1, a2), Sub (b1, b2)
  | Mul (a1, a2), Mul (b1, b2)
  | Div (a1, a2), Div (b1, b2)
  | Min (a1, a2), Min (b1, b2)
  | Max (a1, a2), Max (b1, b2) ->
      equal a1 b1 && equal a2 b2
  | Neg a, Neg b
  | Exp a, Exp b
  | Log a, Log b
  | Sqrt a, Sqrt b
  | Sin a, Sin b
  | Cos a, Cos b
  | Tan a, Tan b
  | Atan a, Atan b
  | Tanh a, Tanh b
  | Abs a, Abs b ->
      equal a b
  | Pow (a, m), Pow (b, n) -> m = n && equal a b
  | ( ( Var _ | Const _ | Add _ | Sub _ | Mul _ | Div _ | Neg _ | Pow _ | Exp _
      | Log _ | Sqrt _ | Sin _ | Cos _ | Tan _ | Atan _ | Tanh _ | Abs _ | Min _
      | Max _ ),
      _ ) ->
      false
