(* Quantifier-free L_RF formulas (Definition 1) in negation normal form.

   Atoms are of the form [t > 0] or [t >= 0]; negation is the inductively
   defined operation of the paper (it flips the relation sign and swaps
   ∧/∨), so every formula the solver sees is already in NNF.

   Three-valued interval evaluation over a box is what drives the
   branch-and-prune δ-decision search:
   - [eval_cert] answers whether the formula certainly holds / certainly
     fails for *every* point of the box;
   - [sat_possible ~delta] answers whether the δ-weakening (Definition 4)
     could still hold somewhere in the box. *)

module SSet = Term.SSet

type rel = Gt | Ge

type atom = { term : Term.t; rel : rel }

type t =
  | True
  | False
  | Atom of atom
  | And of t list
  | Or of t list

(* ---- Constructors ---- *)

let tt = True
let ff = False
let atom rel term = Atom { term; rel }

let gt a b = Atom { term = Term.sub a b; rel = Gt }
let ge a b = Atom { term = Term.sub a b; rel = Ge }
let lt a b = gt b a
let le a b = ge b a

let flatten_and fs =
  List.concat_map (function And gs -> gs | True -> [] | g -> [ g ]) fs

let flatten_or fs =
  List.concat_map (function Or gs -> gs | False -> [] | g -> [ g ]) fs

let and_ fs =
  let fs = flatten_and fs in
  if List.exists (function False -> true | _ -> false) fs then False
  else
    match fs with [] -> True | [ f ] -> f | fs -> And fs

let or_ fs =
  let fs = flatten_or fs in
  if List.exists (function True -> true | _ -> false) fs then True
  else
    match fs with [] -> False | [ f ] -> f | fs -> Or fs

(* Equality as the conjunction a - b >= 0 ∧ b - a >= 0. *)
let eq a b = and_ [ ge a b; ge b a ]

(* [t ∈ [lo, hi]] for a term. *)
let in_range t ~lo ~hi = and_ [ ge t (Term.const lo); le t (Term.const hi) ]

(* NNF negation: ¬(t > 0) = -t >= 0, ¬(t >= 0) = -t > 0. *)
let rec neg = function
  | True -> False
  | False -> True
  | Atom { term; rel = Gt } -> Atom { term = Term.neg term; rel = Ge }
  | Atom { term; rel = Ge } -> Atom { term = Term.neg term; rel = Gt }
  | And fs -> or_ (List.map neg fs)
  | Or fs -> and_ (List.map neg fs)

let imply a b = or_ [ neg a; b ]

(* ---- Structure ---- *)

let rec atoms = function
  | True | False -> []
  | Atom a -> [ a ]
  | And fs | Or fs -> List.concat_map atoms fs

let rec size = function
  | True | False -> 1
  | Atom a -> Term.size a.term
  | And fs | Or fs -> List.fold_left (fun acc f -> acc + size f) 1 fs

let fingerprint f =
  let buf = Buffer.create 128 in
  let rec go = function
    | True -> Buffer.add_char buf 'T'
    | False -> Buffer.add_char buf 'F'
    | Atom { term; rel } ->
        Buffer.add_char buf (match rel with Gt -> '>' | Ge -> 'G');
        Buffer.add_char buf '(';
        Term.fingerprint_acc buf term;
        Buffer.add_char buf ')'
    | And fs ->
        Buffer.add_char buf '&';
        Buffer.add_char buf '(';
        List.iter go fs;
        Buffer.add_char buf ')'
    | Or fs ->
        Buffer.add_char buf '|';
        Buffer.add_char buf '(';
        List.iter go fs;
        Buffer.add_char buf ')'
  in
  go f;
  Buffer.contents buf

let rec free_vars_acc acc = function
  | True | False -> acc
  | Atom a -> Term.free_vars_acc acc a.term
  | And fs | Or fs -> List.fold_left free_vars_acc acc fs

let free_vars f = free_vars_acc SSet.empty f
let free_var_list f = SSet.elements (free_vars f)

let rec map_terms fn = function
  | True -> True
  | False -> False
  | Atom a -> Atom { a with term = fn a.term }
  | And fs -> and_ (List.map (map_terms fn) fs)
  | Or fs -> or_ (List.map (map_terms fn) fs)

let subst bindings f = map_terms (Term.subst bindings) f
let rename renaming f = map_terms (Term.rename renaming) f

(* δ-weakening (Definition 4): each atom t ⋈ 0 becomes t ⋈ -δ, i.e.
   (t + δ) ⋈ 0. *)
let delta_weaken delta f =
  if delta = 0.0 then f
  else map_terms (fun t -> Term.add t (Term.const delta)) f

(* Disjunctive normal form: list of conjunctions of atoms.  Exponential in
   the worst case; the encodings this framework produces keep disjunctions
   shallow (mode choices), so DNF stays small in practice. *)
let dnf f =
  let rec go = function
    | True -> [ [] ]
    | False -> []
    | Atom a -> [ [ a ] ]
    | And fs ->
        List.fold_left
          (fun acc f ->
            let ds = go f in
            List.concat_map (fun conj -> List.map (fun d -> conj @ d) ds) acc)
          [ [] ] fs
    | Or fs -> List.concat_map go fs
  in
  go f

(* ---- Point evaluation ---- *)

let eval_atom_float lookup a =
  let v = Term.eval lookup a.term in
  match a.rel with Gt -> v > 0.0 | Ge -> v >= 0.0

let rec holds lookup = function
  | True -> true
  | False -> false
  | Atom a -> eval_atom_float lookup a
  | And fs -> List.for_all (holds lookup) fs
  | Or fs -> List.exists (holds lookup) fs

let holds_env env f =
  holds
    (fun x ->
      match List.assoc_opt x env with
      | Some v -> v
      | None -> invalid_arg (Printf.sprintf "Formula.holds_env: unbound variable %S" x))
    f

(* Signed distance to satisfaction at a point: >= 0 iff the formula holds
   with slack; used as a robustness metric and by SMC monitors. *)
let rec robustness lookup = function
  | True -> infinity
  | False -> neg_infinity
  | Atom a -> Term.eval lookup a.term
  | And fs -> List.fold_left (fun acc f -> Float.min acc (robustness lookup f)) infinity fs
  | Or fs -> List.fold_left (fun acc f -> Float.max acc (robustness lookup f)) neg_infinity fs

(* ---- Interval (three-valued) evaluation ---- *)

type verdict = Certain | Impossible | Unknown

let eval_atom_interval box a =
  let module I = Interval.Ia in
  let i = Term.eval_interval box a.term in
  if I.is_empty i then Impossible
  else
    match a.rel with
    | Gt -> if I.certainly_gt_zero i then Certain else if I.certainly_le_zero i then Impossible else Unknown
    | Ge -> if I.certainly_ge_zero i then Certain else if I.certainly_lt_zero i then Impossible else Unknown

(* The certification recursion, parameterized on the atom evaluator so
   callers can substitute a stronger-but-still-sound one (the solver's
   enclosure-assisted certifier tightens atom ranges with affine /
   Taylor-model forward passes before comparing against zero). *)
let rec eval_cert_with ~atom box = function
  | True -> Certain
  | False -> Impossible
  | Atom a -> atom box a
  | And fs ->
      let rec go acc = function
        | [] -> acc
        | f :: rest -> (
            match eval_cert_with ~atom box f with
            | Impossible -> Impossible
            | Unknown -> go Unknown rest
            | Certain -> go acc rest)
      in
      go Certain fs
  | Or fs ->
      let rec go acc = function
        | [] -> acc
        | f :: rest -> (
            match eval_cert_with ~atom box f with
            | Certain -> Certain
            | Unknown -> go Unknown rest
            | Impossible -> go acc rest)
      in
      go Impossible fs

let eval_cert box f = eval_cert_with ~atom:eval_atom_interval box f

(* Can the δ-weakened formula still be satisfied somewhere in the box?
   [false] is definitive (the weakened formula is unsatisfiable on the
   box); [true] only means "not refuted". *)
let rec sat_possible ~delta box f =
  let module I = Interval.Ia in
  match f with
  | True -> true
  | False -> false
  | Atom a -> (
      let i = Term.eval_interval box a.term in
      match a.rel with
      | Gt -> I.possibly_gt ~delta i
      | Ge -> I.possibly_ge ~delta i)
  | And fs -> List.for_all (sat_possible ~delta box) fs
  | Or fs -> List.exists (sat_possible ~delta box) fs

(* The witness check the δ-decision returns: does the δ-weakening hold at a
   given point?  (Definition 4 applied at a point.) *)
let holds_delta ~delta lookup f =
  let rec go = function
    | True -> true
    | False -> false
    | Atom a -> (
        let v = Term.eval lookup a.term in
        match a.rel with Gt -> v > -.delta | Ge -> v >= -.delta)
    | And fs -> List.for_all go fs
    | Or fs -> List.exists go fs
  in
  go f

(* ---- Printing ---- *)

let pp_rel ppf = function Gt -> Fmt.string ppf ">" | Ge -> Fmt.string ppf ">="

let pp_atom ppf a = Fmt.pf ppf "%a %a 0" Term.pp a.term pp_rel a.rel

let rec pp ppf = function
  | True -> Fmt.string ppf "true"
  | False -> Fmt.string ppf "false"
  | Atom a -> pp_atom ppf a
  | And fs ->
      Fmt.pf ppf "(@[<hv>%a@])" Fmt.(list ~sep:(any " /\\@ ") pp) fs
  | Or fs ->
      Fmt.pf ppf "(@[<hv>%a@])" Fmt.(list ~sep:(any " \\/@ ") pp) fs

let to_string f = Fmt.str "%a" pp f
