(** Polynomial Lyapunov-function templates.

    A template is a linear combination Σ cᵢ·mᵢ of monomials of degree ≥ 1
    over the state variables with unknown coefficients cᵢ, so V(0) = 0 by
    construction. *)

type t = {
  vars : string list;
  monomials : (string * int) list list;  (** (variable, exponent) lists *)
  coeff_names : string list;  (** aligned with [monomials] *)
}

val coeff_prefix : string
(** Prefix of generated coefficient names (avoids collisions with state
    variables). *)

val create : ?min_degree:int -> max_degree:int -> string list -> t
(** All monomials with total degree in [[min_degree, max_degree]].
    @raise Invalid_argument when [min_degree < 1] or the range is empty. *)

val quadratic : string list -> t
(** Monomials of degree exactly 2 — the classical first choice. *)

val even_quartic : string list -> t
(** Degrees 2 and 4 only (positive-definite-friendly). *)

val size : t -> int

val term : t -> Expr.Term.t
(** The template as a term over vars ∪ coefficient names; *linear* in the
    coefficients. *)

val instantiate : t -> float list -> Expr.Term.t
(** Substitute concrete coefficients (canonicalized).
    @raise Invalid_argument on an arity mismatch. *)

val at_point : t -> (string * float) list -> Expr.Term.t
(** V at a concrete state as a linear term over the coefficients only —
    what makes the ∃-step of CEGIS an easy ICP problem. *)

val pp : t Fmt.t
