(* CEGIS synthesis of Lyapunov functions with δ-decisions (Sec. IV-C).

   The ∃∀ problem — find coefficients c such that for all x in the region
   (minus a small ball around the equilibrium) V_c(x) > 0 and V̇_c(x) ≤ 0 —
   is decomposed counterexample-guided:

   ∃-step  Coefficients must satisfy, at every counterexample point x_j,
           V_c(x_j) ≥ μ·|x_j|²  and  V̇_c(x_j) ≤ -μ·|x_j|².
           Both are *linear* constraints in c, decided by the ICP solver
           over the coefficient box.

   ∀-step  With c fixed, search the region for a violation
           V(x) ≤ 0  or  V̇(x) ≥ ζ   (ζ > 0 is the robustness margin of
           the numerically-sound proof rules the paper cites).
           `unsat` for both ⇒ certificate.  A δ-sat witness becomes a new
           counterexample.

   Both V and V̇ are canonicalized as polynomials when possible, so
   symbolically cancelling Lie derivatives are proved decreasing without
   fighting interval dependency. *)

module I = Interval.Ia
module Box = Interval.Box
module T = Expr.Term
module F = Expr.Formula

let src = Logs.Src.create "lyapunov.cegis" ~doc:"Lyapunov CEGIS"
module Log = (val Logs.src_log src : Logs.LOG)

type problem = {
  sys : Ode.System.t;  (** autonomous, parameter-free system *)
  region : Box.t;  (** box over the state variables *)
  inner_radius : float;  (** points with |x|² < r² are exempt *)
  template : Template.t;
  mu : float;  (** positivity margin used in the ∃-step *)
  zeta : float;  (** decrease margin proved in the ∀-step *)
}

let problem ?(inner_radius = 0.1) ?(mu = 1e-2) ?(zeta = 1e-3) ~region ~template sys =
  if Ode.System.params sys <> [] then
    invalid_arg "Cegis.problem: bind all parameters first";
  List.iter
    (fun v ->
      if not (Box.mem_var v region) then
        invalid_arg (Printf.sprintf "Cegis.problem: region misses variable %S" v))
    (Ode.System.vars sys);
  if inner_radius <= 0.0 then invalid_arg "Cegis.problem: inner radius must be positive";
  { sys; region; inner_radius; template; mu; zeta }

type certificate = {
  v : T.t;  (** the synthesized Lyapunov function *)
  vdot : T.t;  (** its Lie derivative along the system *)
  coefficients : (string * float) list;
  iterations : int;
  counterexamples : (string * float) list list;
}

type outcome =
  | Proved of certificate
  | No_candidate of int
      (** the ∃-step became unsat: template cannot fit the counterexamples *)
  | Budget_exhausted of int

let pp_outcome ppf = function
  | Proved c ->
      Fmt.pf ppf "proved in %d iteration(s): V = %a" c.iterations T.pp c.v
  | No_candidate i -> Fmt.pf ppf "no candidate after %d iteration(s)" i
  | Budget_exhausted i -> Fmt.pf ppf "budget exhausted after %d iteration(s)" i

(* |x|² as a term over the state variables. *)
let norm2_term vars =
  List.fold_left (fun acc v -> T.add acc (T.pow (T.var v) 2)) T.zero vars

let norm2_value vars env =
  List.fold_left
    (fun acc v ->
      let x = List.assoc v env in
      acc +. (x *. x))
    0.0 vars

(* Initial counterexample seeds: region corners (capped) and axis points
   so the ∃-step starts from informative constraints. *)
let seed_points prob =
  let vars = Ode.System.vars prob.sys in
  let bindings = List.map (fun v -> (v, Box.find v prob.region)) vars in
  let corners =
    List.fold_left
      (fun acc (v, itv) ->
        if List.length acc > 16 then List.map (fun pt -> (v, I.mid itv) :: pt) acc
        else
          List.concat_map
            (fun pt -> [ (v, I.lo itv) :: pt; (v, I.hi itv) :: pt ])
            acc)
      [ [] ] bindings
  in
  let axis =
    List.concat_map
      (fun v ->
        let base = List.map (fun (u, itv) -> (u, if u = v then 0.0 else I.mid itv)) bindings in
        ignore base;
        [ List.map (fun (u, itv) -> (u, if u = v then I.hi itv else 0.0)) bindings;
          List.map (fun (u, itv) -> (u, if u = v then I.lo itv else 0.0)) bindings ])
      vars
  in
  List.filter
    (fun pt -> norm2_value vars pt >= prob.inner_radius *. prob.inner_radius)
    (corners @ axis)

type config = {
  coeff_bound : float;  (** coefficients are searched in [-bound, bound] *)
  max_iterations : int;
  exists_solver : Icp.Solver.config;
  forall_solver : Icp.Solver.config;
}

let default_config =
  {
    coeff_bound = 2.0;
    max_iterations = 30;
    exists_solver = { Icp.Solver.default_config with delta = 1e-4; epsilon = 1e-3 };
    forall_solver = { Icp.Solver.default_config with delta = 1e-4; epsilon = 1e-3 };
  }

let synthesize ?(config = default_config) prob =
  let vars = Ode.System.vars prob.sys in
  let field = Ode.System.rhs prob.sys in
  let v_template = Template.term prob.template in
  let vdot_template = T.lie_derivative field v_template in
  let coeff_box =
    Box.of_list
      (List.map
         (fun c -> (c, I.make (-.config.coeff_bound) config.coeff_bound))
         prob.template.Template.coeff_names)
  in
  let r0sq = prob.inner_radius *. prob.inner_radius in
  (* ∃-step: constraints at the counterexample points, linear in c. *)
  let exists_step cexs =
    let constraints =
      List.concat_map
        (fun env ->
          let n2 = norm2_value vars env in
          let bindings = List.map (fun (x, value) -> (x, T.const value)) env in
          let v_at = Expr.Poly.canonicalize (T.subst bindings v_template) in
          let vdot_at = Expr.Poly.canonicalize (T.subst bindings vdot_template) in
          [ F.ge v_at (T.const (prob.mu *. n2));
            F.le vdot_at (T.const (-.prob.mu *. n2)) ])
        cexs
    in
    match Icp.Solver.decide ~config:config.exists_solver (F.and_ constraints) coeff_box with
    | Icp.Solver.Delta_sat w -> Some w.Icp.Solver.point
    | Icp.Solver.Unsat | Icp.Solver.Unknown _ -> None
  in
  (* ∀-step: hunt for a violation of the candidate in the annulus. *)
  let forall_step coeffs =
    let bindings = List.map (fun (c, v) -> (c, T.const v)) coeffs in
    let v = Expr.Poly.canonicalize (T.subst bindings v_template) in
    let vdot = Expr.Poly.canonicalize (T.subst bindings vdot_template) in
    let annulus = F.ge (norm2_term vars) (T.const r0sq) in
    let violation_pos = F.and_ [ annulus; F.le v T.zero ] in
    let violation_dec = F.and_ [ annulus; F.ge vdot (T.const prob.zeta) ] in
    let check violation =
      match Icp.Solver.decide ~config:config.forall_solver violation prob.region with
      | Icp.Solver.Unsat -> `Ok
      | Icp.Solver.Delta_sat w -> `Cex w.Icp.Solver.point
      | Icp.Solver.Unknown why -> `Unknown why
    in
    match check violation_pos with
    | `Cex pt -> `Cex pt
    | `Unknown why -> `Unknown why
    | `Ok -> (
        match check violation_dec with
        | `Cex pt -> `Cex pt
        | `Unknown why -> `Unknown why
        | `Ok -> `Proved (v, vdot))
  in
  let rec loop cexs iter =
    if iter > config.max_iterations then Budget_exhausted (iter - 1)
    else
      match exists_step cexs with
      | None -> No_candidate iter
      | Some coeffs -> (
          Log.debug (fun m ->
              m "iter %d: candidate %a" iter
                Fmt.(list ~sep:comma (pair ~sep:(any "=") string float))
                coeffs);
          match forall_step coeffs with
          | `Proved (v, vdot) ->
              Proved
                { v; vdot; coefficients = coeffs; iterations = iter;
                  counterexamples = cexs }
          | `Cex pt ->
              Log.debug (fun m ->
                  m "iter %d: counterexample %a" iter
                    Fmt.(list ~sep:comma (pair ~sep:(any "=") string float))
                    pt);
              (* keep only state variables of the witness *)
              let pt = List.filter (fun (x, _) -> List.mem x vars) pt in
              loop (pt :: cexs) (iter + 1)
          | `Unknown _ -> Budget_exhausted iter)
  in
  loop (seed_points prob) 1

(* Independent validation of a certificate by dense random sampling —
   belt-and-braces re-checking used by the test-suite and the benches. *)
let validate ?(samples = 1000) ?(seed = 7) prob cert =
  let vars = Ode.System.vars prob.sys in
  let rng = Random.State.make [| seed |] in
  let r0sq = prob.inner_radius *. prob.inner_radius in
  let ok = ref true in
  let tries = ref 0 in
  while !tries < samples do
    let env =
      List.map
        (fun v ->
          let itv = Box.find v prob.region in
          (v, I.lo itv +. Random.State.float rng (Float.max 1e-12 (I.width itv))))
        vars
    in
    if norm2_value vars env >= r0sq then begin
      incr tries;
      let v = T.eval_env env cert.v in
      let vdot = T.eval_env env cert.vdot in
      if v <= 0.0 || vdot > prob.zeta then ok := false
    end
    else incr tries
  done;
  !ok
