(** CEGIS synthesis of Lyapunov functions with δ-decisions (Sec. IV-C).

    The ∃∀ problem — coefficients c such that V_c > 0 and V̇_c ≤ 0 on the
    region minus a small ball — is decomposed counterexample-guided:
    the ∃-step solves the (linear-in-c) point constraints with the ICP
    solver; the ∀-step searches the region for a violation
    [V ≤ 0 ∨ V̇ ≥ ζ] (ζ > 0 is the robustness margin of the
    numerically-sound proof rules the paper cites).  `unsat` for both
    violations certifies the candidate. *)

type problem = {
  sys : Ode.System.t;  (** autonomous, parameter-free *)
  region : Interval.Box.t;
  inner_radius : float;  (** points with |x|² < r² are exempt *)
  template : Template.t;
  mu : float;  (** positivity margin used in the ∃-step *)
  zeta : float;  (** decrease margin proved in the ∀-step *)
}

val problem :
  ?inner_radius:float ->
  ?mu:float ->
  ?zeta:float ->
  region:Interval.Box.t ->
  template:Template.t ->
  Ode.System.t ->
  problem
(** @raise Invalid_argument on unbound parameters, a region missing a
    variable, or a non-positive inner radius. *)

type certificate = {
  v : Expr.Term.t;
  vdot : Expr.Term.t;  (** Lie derivative of [v] along the system *)
  coefficients : (string * float) list;
  iterations : int;
  counterexamples : (string * float) list list;
}

type outcome =
  | Proved of certificate
  | No_candidate of int
      (** ∃-step unsat: the template cannot fit the counterexamples *)
  | Budget_exhausted of int

type config = {
  coeff_bound : float;  (** coefficient search box [-bound, bound] *)
  max_iterations : int;
  exists_solver : Icp.Solver.config;
  forall_solver : Icp.Solver.config;
}

val default_config : config

val synthesize : ?config:config -> problem -> outcome

val validate : ?samples:int -> ?seed:int -> problem -> certificate -> bool
(** Independent re-check by dense random sampling of the annulus. *)

val pp_outcome : outcome Fmt.t
