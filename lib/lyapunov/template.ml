(* Polynomial Lyapunov function templates.

   A template is a linear combination Σ cᵢ·mᵢ of monomials over the state
   variables with unknown coefficients cᵢ.  Only monomials of degree ≥ 1
   appear, so V(0) = 0 holds by construction (the paper's Sec. IV-C
   setting synthesizes the cᵢ with ∃∀ δ-decisions). *)

module T = Expr.Term

type t = {
  vars : string list;
  monomials : (string * int) list list;  (* each: (var, exponent) list *)
  coeff_names : string list;  (* c0, c1, ... aligned with monomials *)
}

let coeff_prefix = "c__"

(* All monomials over [vars] with total degree in [min_degree, max_degree]. *)
let monomials_upto ~min_degree ~max_degree vars =
  if min_degree < 1 then invalid_arg "Template: min degree must be >= 1";
  if max_degree < min_degree then invalid_arg "Template: max < min degree";
  let rec go vars degree_left =
    match vars with
    | [] -> [ [] ]
    | v :: rest ->
        List.concat_map
          (fun e ->
            List.map
              (fun tail -> if e = 0 then tail else (v, e) :: tail)
              (go rest (degree_left - e)))
          (List.init (degree_left + 1) Fun.id)
  in
  List.filter
    (fun m ->
      let d = List.fold_left (fun acc (_, e) -> acc + e) 0 m in
      min_degree <= d && d <= max_degree)
    (go vars max_degree)

let create ?(min_degree = 1) ~max_degree vars =
  let monomials = monomials_upto ~min_degree ~max_degree vars in
  let coeff_names = List.mapi (fun i _ -> Printf.sprintf "%s%d" coeff_prefix i) monomials in
  { vars; monomials; coeff_names }

(* Quadratic-form template: monomials of degree exactly 2 — the classical
   first choice for Lyapunov candidates. *)
let quadratic vars = create ~min_degree:2 ~max_degree:2 vars

(* Even template: degrees 2 and 4 only (positive-definite-friendly). *)
let even_quartic vars =
  let t24 = create ~min_degree:2 ~max_degree:4 vars in
  let keep =
    List.filter_map
      (fun (m, c) ->
        let d = List.fold_left (fun acc (_, e) -> acc + e) 0 m in
        if d mod 2 = 0 then Some (m, c) else None)
      (List.combine t24.monomials t24.coeff_names)
  in
  { t24 with monomials = List.map fst keep; coeff_names = List.map snd keep }

let size tpl = List.length tpl.monomials

let mono_term m =
  List.fold_left (fun acc (v, e) -> T.mul acc (T.pow (T.var v) e)) T.one m

(* The template as a term over vars ∪ coefficient names. *)
let term tpl =
  List.fold_left2
    (fun acc m c -> T.add acc (T.mul (T.var c) (mono_term m)))
    T.zero tpl.monomials tpl.coeff_names

(* Instantiate the coefficients with concrete values. *)
let instantiate tpl coeffs =
  if List.length coeffs <> size tpl then
    invalid_arg "Template.instantiate: coefficient count mismatch";
  let bindings = List.map2 (fun c v -> (c, T.const v)) tpl.coeff_names coeffs in
  Expr.Poly.canonicalize (T.subst bindings (term tpl))

(* Candidate value of V at a concrete state, as a function of the
   coefficients only (a *linear* term over the cᵢ — which is what makes
   the ∃-step of CEGIS an easy ICP problem). *)
let at_point tpl env =
  List.fold_left2
    (fun acc m c ->
      let v = List.fold_left (fun p (x, e) -> p *. Float.pow (List.assoc x env) (float_of_int e)) 1.0 m in
      T.add acc (T.mul (T.var c) (T.const v)))
    T.zero tpl.monomials tpl.coeff_names

let pp ppf tpl = Expr.Term.pp ppf (term tpl)
