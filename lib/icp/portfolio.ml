(* Strategy portfolios: the configuration space and race bookkeeping.

   The racing itself lives next to the searches it parameterizes
   (Solver, Reach.Checker, Synth.Biopsy); this module owns what they
   share: the strategy type, the runtime mode switch, the epoch counter
   scoping the shared refutation groups, and the winner telemetry.

   Rank order is a 1-core scheduling decision, not cosmetics: under
   [Pool.first_conclusive] on a single effective domain the racers run
   to completion in rank order, so the portfolio's wall-clock is rank
   0's plus cancellation overhead whenever rank 0 reaches a verdict.
   Our benches (BENCH_newton.json, BENCH_affine.json) consistently
   measure the plain HC4 search fastest on wall-clock on this
   container — the Newton/affine layers buy boxes, not time, at these
   problem sizes — so the curated lineup leads with it and keeps the
   stronger-pruning strategies as rank 1+: they take over exactly when
   rank 0 retires Unknown, riding its refutation store. *)

module I = Interval.Ia
module Box = Interval.Box

type branching = Bisect | Smear
type order = Widest | Round_robin

type strategy = {
  name : string;
  branching : branching;
  newton : bool;
  affine : bool;
  tm : bool;
  order : order;
}

let pp_strategy ppf s =
  Fmt.pf ppf "%s{%s%s%s%s,%s}" s.name
    (match s.branching with Bisect -> "bisect" | Smear -> "smear")
    (if s.newton then "+newton" else "")
    (if s.affine then "+affine" else "")
    (if s.tm then "+tm" else "")
    (match s.order with Widest -> "widest" | Round_robin -> "rr")

(* ---- Runtime switch (same shape as Expr.Tape / Deriv) ---- *)

type mode = Off | Curated | All

let pp_mode ppf = function
  | Off -> Fmt.string ppf "off"
  | Curated -> Fmt.string ppf "curated"
  | All -> Fmt.string ppf "all"

let override : mode option Atomic.t = Atomic.make None

let env_mode () =
  match Sys.getenv_opt "BIOMC_NO_PORTFOLIO" with
  | Some ("1" | "true" | "yes") -> Off
  | _ -> (
      match Sys.getenv_opt "BIOMC_PORTFOLIO" with
      | Some "all" -> All
      | Some ("1" | "true" | "yes" | "on" | "curated") -> Curated
      | _ -> Off)

let mode () =
  (* The kill-switch outranks the override too: BIOMC_NO_PORTFOLIO=1
     must reproduce the single-strategy search even when a test or the
     CLI called [set_mode]. *)
  match Sys.getenv_opt "BIOMC_NO_PORTFOLIO" with
  | Some ("1" | "true" | "yes") -> Off
  | _ -> ( match Atomic.get override with Some m -> m | None -> env_mode ())

let set_mode m = Atomic.set override (Some m)
let clear_mode_override () = Atomic.set override None
let active () = mode () <> Off

(* ---- Lineups ---- *)

let hc4 =
  { name = "hc4"; branching = Bisect; newton = false; affine = false;
    tm = false; order = Widest }

let curated () =
  [ hc4;
    { name = "newton-smear"; branching = Smear; newton = true; affine = false;
      tm = false; order = Widest };
    { name = "affine-rr"; branching = Bisect; newton = false; affine = true;
      tm = false; order = Round_robin };
    { name = "tm-bisect"; branching = Bisect; newton = false; affine = false;
      tm = true; order = Widest };
    { name = "full"; branching = Smear; newton = true; affine = true;
      tm = true; order = Widest } ]

let all_strategies () =
  let bools = [ false; true ] in
  List.concat_map
    (fun order ->
      List.concat_map
        (fun branching ->
          (* Under Round_robin the split variable is depth-cycled, so
             the branching heuristic never fires: Bisect and Smear
             coincide.  Keep only the Bisect spelling. *)
          if order = Round_robin && branching = Smear then []
          else
            List.concat_map
              (fun newton ->
                List.concat_map
                  (fun affine ->
                    List.map
                      (fun tm ->
                        let name =
                          Printf.sprintf "%s%s%s%s%s"
                            (match branching with
                            | Bisect -> "bisect"
                            | Smear -> "smear")
                            (if newton then "+newton" else "")
                            (if affine then "+affine" else "")
                            (if tm then "+tm" else "")
                            (match order with
                            | Widest -> ""
                            | Round_robin -> "+rr")
                        in
                        { name; branching; newton; affine; tm; order })
                      bools)
                  bools)
              bools)
        [ Bisect; Smear ])
    [ Widest; Round_robin ]

(* A strategy is runnable only when the layers it needs are globally
   enabled: the portfolio must respect BIOMC_NO_NEWTON / BIOMC_NO_AFFINE
   / BIOMC_NO_TM exactly like the single-strategy search does. *)
let runnable s =
  (match s.branching, s.newton with
  | Smear, _ | _, true -> Deriv.enabled ()
  | _ -> true)
  && ((not s.affine) || (Expr.Tape.enabled () && Interval.Affine.enabled ()))
  && ((not s.tm) || (Expr.Tape.enabled () && Interval.Tm.enabled ()))

let filter_runnable = function
  | [] -> [ hc4 ]
  | l -> ( match List.filter runnable l with [] -> [ hc4 ] | l -> l)

let lineup () =
  match mode () with
  | Off -> [ hc4 ]
  | Curated -> filter_runnable (curated ())
  | All -> filter_runnable (all_strategies ())

(* ---- Race bookkeeping ---- *)

let epoch_counter = Atomic.make 0
let next_epoch () = Atomic.fetch_and_add epoch_counter 1

(* Winner counters are created on first win per strategy name and
   always-on (like the cache counters): the race verdict must not
   depend on telemetry being enabled, and `--metrics` should report
   wins even in otherwise-untraced runs.  [Telemetry.Counter.make]
   dedupes by name process-wide, so making the counter per call is a
   registry lookup, not a leak. *)
let win_counter name = Telemetry.Counter.make ~always:true ("portfolio.wins." ^ name)

let last : string option Atomic.t = Atomic.make None

let record_win name =
  Telemetry.Counter.incr (win_counter name);
  if Journal.on () then Journal.racer ~event:"win" ~strategy:name;
  Atomic.set last (Some name)

let last_winner () = Atomic.get last
let wins name = Telemetry.Counter.value (win_counter name)

(* ---- Round-robin splitting ---- *)

let round_robin_split ~min_width ~depth box =
  let vars = Box.vars box in
  let n = List.length vars in
  if n = 0 then None
  else begin
    let arr = Array.of_list vars in
    let rec pick k =
      if k >= n then None
      else
        let v = arr.((depth + k) mod n) in
        if I.width (Box.find v box) > min_width then Some v else pick (k + 1)
    in
    match pick 0 with
    | None -> None
    | Some v -> Some (Box.split_var v box)
  end
