(** Derivative-powered pruning for the δ-decision core.

    Symbolic gradients of a constraint system are compiled once into
    multi-root SSA tapes ({!Expr.Tape}) — per constraint the roots
    [f; ∂f/∂x₁; …; ∂f/∂xₖ] over its free variables, CSE shared — so a
    whole gradient enclosure costs one allocation-free forward interval
    pass.  On top of that the module provides a mean-value-form
    refutation test, an interval Newton (Gauss–Seidel) contraction
    step, and Kearfott's smear branching heuristic.

    Soundness: the mean-value expansion
    [f(x) ∈ f(m) + ∇f(B)·(B − m)] requires [f] continuously
    differentiable on the whole convex box; this licence is checked per
    box with {!Expr.Tape.smooth_on} and the steps are additionally
    skipped whenever a gradient component or box component is
    unbounded.  Skipping only loses precision, never correctness. *)

type t
(** A compiled gradient system for one constraint list. *)

(** {1 Enable switch}

    Same pattern as {!Expr.Tape.enabled}: the environment variable
    [BIOMC_NO_NEWTON=1] (or [true]/[yes]) disables the derivative
    layer, restoring the HC4-only search bit for bit; {!set_enabled}
    overrides the environment (used by the [--no-newton] CLI flag,
    benchmarks, and differential tests). *)

val enabled : unit -> bool
val set_enabled : bool -> unit
val clear_enabled_override : unit -> unit

(** {1 Compilation} *)

val compile : (Expr.Term.t * Interval.Ia.t) list -> t option
(** Compile the differentiable constraints [(term, target); …], each
    meaning [term ∈ target]: constraints whose terms contain
    [Min]/[Max] (not symbolically differentiable) or mention no
    variable are skipped.  [None] when no constraint remains.
    Gradients are {!Expr.Term.simplify_deep}-simplified before tape
    compilation.  Takes plain pairs rather than {!Contractor.constr}
    so {!Contractor} can layer the Newton pass on its fixpoint without
    a module cycle. *)

val vars_of : t -> string list
(** The system's variable ordering (sorted union of the compiled
    constraints' free variables). *)

val num_entries : t -> int
(** Number of constraints that were compiled. *)

(** {1 Contraction} *)

val contract : t -> Interval.Box.t -> Interval.Box.t option
(** Mean-value refutation plus one Gauss–Seidel interval Newton sweep
    over every compiled constraint.  [None] proves the box contains no
    point satisfying all constraints; otherwise the (possibly
    contracted) box — physically the input box when nothing changed, so
    callers can detect progress with [==].  Never loses solutions.
    Thread-safe across domains (workspaces are per-domain). *)

(** {1 Branching} *)

val split :
  t -> min_width:float -> Interval.Box.t -> (Interval.Box.t * Interval.Box.t) option
(** Smear-guided bisection: split the variable maximizing
    [maxₑ |∂fₑ/∂xᵢ| · width(xᵢ)] over the compiled constraints,
    considering only components wider than [min_width]; when no
    constraint yields a positive finite score, fall back to
    {!Interval.Box.split} (widest dimension).  Returns [None] exactly
    when [Box.split ~min_width] would ([max_dim] width [<= min_width]
    or [0]), so search termination criteria are unchanged.  Ties break
    toward the wider component, then the lexicographically first
    variable — deterministic. *)

(** {1 Introspection} *)

val gradient_enclosures :
  t -> Interval.Box.t -> (string * Interval.Ia.t) list option list
(** Per compiled entry, the (variable, ∂f/∂x enclosure) pairs over the
    box, or [None] for entries skipped on this box (unsupported
    component, smoothness certificate failure, or unbounded gradient).
    For differential tests against tree-walking {!Expr.Term.deriv}. *)
