(** ∃∀ formulas over the reals via CEGIS over δ-decisions (Sec. IV-C(i);
    Kong, Solar-Lezama & Gao, CAV'18).

    [solve ~exists_box ~forall_box φ] searches for x in [exists_box] such
    that φ(x, y) holds for every y in [forall_box].  Answers are
    one-sided: [Proved] refutes the δ-strengthened violation over the
    whole ∀-box; [No_witness] means the (δ-weakened) instance constraints
    themselves became unsatisfiable. *)

type config = {
  max_iterations : int;
  exists_solver : Solver.config;
  forall_solver : Solver.config;
  initial_cexs : (string * float) list list;
      (** seed counterexamples; corners + center of the ∀-box when empty *)
  margin : float;
      (** violations must exceed this margin to count; the proved
          guarantee is ∀y. φ^margin (must dominate the solver's δ) *)
}

val default_config : config

type result =
  | Proved of {
      witness : (string * float) list;
      iterations : int;
      counterexamples : (string * float) list list;
    }
  | No_witness of int
  | Budget_exhausted of int

val solve :
  ?config:config ->
  exists_box:Interval.Box.t ->
  forall_box:Interval.Box.t ->
  Expr.Formula.t ->
  result
(** @raise Invalid_argument when φ mentions a variable outside both
    boxes. *)

val pp_result : result Fmt.t
