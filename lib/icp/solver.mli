(** Branch-and-prune δ-decision procedure — the dReal-equivalent core
    (Theorem 1 of the paper).

    Given a bounded quantifier-free L_RF formula φ and a box of variable
    domains, {!decide} returns one of:
    - [Unsat] — φ has no solution in the box (sound: outward-rounded
      interval arithmetic and HC4 contraction never lose solutions);
    - [Delta_sat w] — the δ-weakening φ^δ is satisfiable.  When
      [w.certified] the witness point was explicitly checked to satisfy
      φ^δ; otherwise the verdict is the one-sided interval answer that
      δ-decidability licenses on a sub-ε box;
    - [Unknown] — the work budget ran out first. *)

type config = {
  delta : float;  (** perturbation bound δ of the δ-decision problem *)
  epsilon : float;  (** boxes thinner than this are no longer split *)
  max_boxes : int;  (** branch-and-prune work budget *)
  contractor_rounds : int;  (** HC4 fixpoint rounds per box *)
  use_contraction : bool;  (** disable for bisection-only search (ablation) *)
}

val default_config : config

type stats = {
  mutable boxes_processed : int;
  mutable splits : int;
  mutable prunings : int;
  mutable max_depth : int;
}

type witness = {
  point : (string * float) list;
  box : Interval.Box.t;
  certified : bool;
}

type result =
  | Unsat
  | Delta_sat of witness
  | Unknown of string

val pp_result : result Fmt.t

val decide : ?config:config -> Expr.Formula.t -> Interval.Box.t -> result

val decide_with_stats :
  ?config:config -> Expr.Formula.t -> Interval.Box.t -> result * stats

(** {1 Paving}

    Partition of a box by formula status, used for guaranteed parameter
    set identification. *)

type paving = {
  sat : Interval.Box.t list;  (** formula certainly holds on every point *)
  unsat : Interval.Box.t list;  (** formula certainly fails on every point *)
  undecided : Interval.Box.t list;
}

val pave : ?config:config -> Expr.Formula.t -> Interval.Box.t -> paving

val paving_volumes : over:string list -> paving -> float * float * float
(** Total (sat, unsat, undecided) volumes over the named dimensions. *)

val pp_paving : paving Fmt.t
