(** Branch-and-prune δ-decision procedure — the dReal-equivalent core
    (Theorem 1 of the paper).

    Given a bounded quantifier-free L_RF formula φ and a box of variable
    domains, {!decide} returns one of:
    - [Unsat] — φ has no solution in the box (sound: outward-rounded
      interval arithmetic and HC4 contraction never lose solutions);
    - [Delta_sat w] — the δ-weakening φ^δ is satisfiable.  When
      [w.certified] the witness point was explicitly checked to satisfy
      φ^δ; otherwise the verdict is the one-sided interval answer that
      δ-decidability licenses on a sub-ε box;
    - [Unknown] — the work budget ran out first.

    With [config.jobs > 1] the branch-and-prune frontier is drained by
    that many worker domains (boxes are independent); the first δ-sat
    witness cancels the rest, unsat requires frontier exhaustion, and
    DNF branches run as a portfolio.  Verdict {e kinds} agree with the
    sequential search ([jobs = 1], the original code path); the only
    nondeterminism is {e which} δ-sat witness wins a portfolio race.

    Unless disabled ([BIOMC_NO_NEWTON=1] or {!Deriv.set_enabled}), the
    search uses the derivative layer: the per-box contraction gains a
    mean-value-form refutation test and an interval Newton sweep (via
    {!Contractor.contractor}), and branching picks the variable with
    the largest smear score [max |∂f/∂x|·width] instead of the widest
    one ({!Deriv.split}) — in both {!decide} and {!pave}.  Verdicts
    and pavings are unchanged in meaning (the layer only ever removes
    points violating a constraint and swaps which variable is bisected
    first); with the kill-switch the pre-derivative search is
    reproduced exactly. *)

type config = {
  delta : float;  (** perturbation bound δ of the δ-decision problem *)
  epsilon : float;  (** boxes thinner than this are no longer split *)
  max_boxes : int;  (** branch-and-prune work budget (shared across domains) *)
  contractor_rounds : int;  (** HC4 fixpoint rounds per box *)
  use_contraction : bool;  (** disable for bisection-only search (ablation) *)
  jobs : int;  (** worker domains for the search; 1 = sequential path *)
}

val default_config : config

type stats = {
  mutable boxes_processed : int;
  mutable splits : int;
  mutable prunings : int;
  mutable max_depth : int;
  mutable certifications : int;  (** candidate witness points probed *)
}

val fresh_stats : unit -> stats

val merge_stats : stats -> stats -> unit
(** [merge_stats acc s] accumulates [s] into [acc] (max over depths). *)

type witness = {
  point : (string * float) list;
  box : Interval.Box.t;
  certified : bool;
}

type result =
  | Unsat
  | Delta_sat of witness
  | Unknown of string

val pp_result : result Fmt.t

val decide :
  ?config:config ->
  ?strategy:Portfolio.strategy ->
  Expr.Formula.t ->
  Interval.Box.t ->
  result

val decide_with_stats :
  ?config:config ->
  ?strategy:Portfolio.strategy ->
  Expr.Formula.t ->
  Interval.Box.t ->
  result * stats
(** In portfolio mode ({!Portfolio.active}, enabled by
    [BIOMC_PORTFOLIO=1] / [--portfolio]) and with no [?strategy] forced,
    the query races every {!Portfolio.lineup} strategy on
    [Parallel.Pool.first_conclusive]: per-racer box-budget leases,
    shared epoch-scoped refutation store (each racer prunes boxes any
    other already refuted), first conclusive verdict cancels the rest.
    A racer that exhausts its budget retires [Unknown] and never beats
    a conclusive one.  The merge is deterministic: conclusive-kind
    priority ([Unsat] outranks [Delta_sat]), then lowest strategy rank
    — so at fixed (lineup, jobs) the verdict is reproducible.  The
    winning strategy is recorded ({!Portfolio.record_win}) under
    [portfolio.wins.<name>].

    [?strategy] forces one strategy's search (no race, fresh epoch) —
    the per-strategy baseline the portfolio is measured against.  With
    the portfolio off and no [?strategy], the historical
    single-strategy search runs bit for bit. *)

(** {1 Paving}

    Partition of a box by formula status, used for guaranteed parameter
    set identification. *)

type paving = {
  sat : Interval.Box.t list;  (** formula certainly holds on every point *)
  unsat : Interval.Box.t list;  (** formula certainly fails on every point *)
  undecided : Interval.Box.t list;
}

val pave :
  ?config:config ->
  ?strategy:Portfolio.strategy ->
  Expr.Formula.t ->
  Interval.Box.t ->
  paving

val pave_with_stats :
  ?config:config ->
  ?strategy:Portfolio.strategy ->
  Expr.Formula.t ->
  Interval.Box.t ->
  paving * stats
(** Like {!pave}, also reporting boxes processed, prunings, splits and
    depth.  With [config.jobs > 1] the paving frontier is drained in
    parallel; the leaf boxes are the same as the sequential paving
    whenever the budget is not exhausted (only list order differs).

    Portfolio mode races the lineup like {!decide_with_stats}; a pave
    racer is conclusive when it classified the whole box within its
    budget, and the winner is the lowest-rank complete paving (falling
    back to the lowest-rank partial one when every racer was
    truncated).  [?strategy] forces a single strategy, no race. *)

val paving_volumes : over:string list -> paving -> float * float * float
(** Total (sat, unsat, undecided) volumes over the named dimensions. *)

val pp_paving : paving Fmt.t
