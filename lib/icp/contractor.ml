(* HC4-revise: forward-backward interval constraint propagation.

   Given a constraint [term ∈ target] and a box, the forward pass computes
   an interval enclosure for every subterm; the backward pass intersects
   the root with [target] and pushes the refined requirements down to the
   variable leaves, whose intersection with the box gives the contracted
   box.  HC4-revise never loses a solution: every point of the box that
   satisfies the constraint is in the contracted box. *)

module I = Interval.Ia
module Box = Interval.Box

(* Contraction telemetry: one span per contractor call (cache lookups
   included, so warm replays show up as near-zero-width spans on the
   timeline) and round counters for the fixpoint loops. *)
let tm_hc4 = Telemetry.Span.probe "icp.hc4"
let m_fixpoints = Telemetry.Counter.make "hc4.fixpoints"
let m_rounds = Telemetry.Counter.make "hc4.rounds"

exception Empty

(* Annotated term tree: each node carries its forward interval value. *)
type ann = { shape : shape; mutable value : I.t }

and shape =
  | AVar of string
  | AConst of float
  | AAdd of ann * ann
  | ASub of ann * ann
  | AMul of ann * ann
  | ADiv of ann * ann
  | ANeg of ann
  | APow of ann * int
  | AExp of ann
  | ALog of ann
  | ASqrt of ann
  | ASin of ann
  | ACos of ann
  | ATan of ann
  | AAtan of ann
  | ATanh of ann
  | AAbs of ann
  | AMin of ann * ann
  | AMax of ann * ann

let rec annotate (t : Expr.Term.t) : ann =
  let node shape = { shape; value = I.entire } in
  match t with
  | Var x -> node (AVar x)
  | Const c -> node (AConst c)
  | Add (a, b) -> node (AAdd (annotate a, annotate b))
  | Sub (a, b) -> node (ASub (annotate a, annotate b))
  | Mul (a, b) -> node (AMul (annotate a, annotate b))
  | Div (a, b) -> node (ADiv (annotate a, annotate b))
  | Neg a -> node (ANeg (annotate a))
  | Pow (a, n) -> node (APow (annotate a, n))
  | Exp a -> node (AExp (annotate a))
  | Log a -> node (ALog (annotate a))
  | Sqrt a -> node (ASqrt (annotate a))
  | Sin a -> node (ASin (annotate a))
  | Cos a -> node (ACos (annotate a))
  | Tan a -> node (ATan (annotate a))
  | Atan a -> node (AAtan (annotate a))
  | Tanh a -> node (ATanh (annotate a))
  | Abs a -> node (AAbs (annotate a))
  | Min (a, b) -> node (AMin (annotate a, annotate b))
  | Max (a, b) -> node (AMax (annotate a, annotate b))

let rec forward box (n : ann) : I.t =
  let v =
    match n.shape with
    | AVar x -> (
        match Box.find_opt x box with
        | Some i -> i
        | None -> I.entire)
    | AConst c -> I.of_float c
    | AAdd (a, b) -> I.add (forward box a) (forward box b)
    | ASub (a, b) -> I.sub (forward box a) (forward box b)
    | AMul (a, b) -> I.mul (forward box a) (forward box b)
    | ADiv (a, b) -> I.div (forward box a) (forward box b)
    | ANeg a -> I.neg (forward box a)
    | APow (a, k) -> I.pow_int (forward box a) k
    | AExp a -> I.exp (forward box a)
    | ALog a -> I.log (forward box a)
    | ASqrt a -> I.sqrt (forward box a)
    | ASin a -> I.sin (forward box a)
    | ACos a -> I.cos (forward box a)
    | ATan a -> I.tan (forward box a)
    | AAtan a -> I.atan (forward box a)
    | ATanh a -> I.tanh (forward box a)
    | AAbs a -> I.abs (forward box a)
    | AMin (a, b) -> I.min_ (forward box a) (forward box b)
    | AMax (a, b) -> I.max_ (forward box a) (forward box b)
  in
  n.value <- v;
  v

(* Preimage helpers shared with the tape backward pass (Expr.Tape), so the
   tree-walking oracle and the compiled kernels contract identically. *)
let pow_preimage = Expr.Tape.pow_preimage
let abs_preimage = Expr.Tape.abs_preimage
let tan_preimage = Expr.Tape.tan_preimage

(* Backward pass: [require n r] intersects node [n] with requirement [r]
   and propagates to children; variable requirements accumulate in
   [reqs]. *)
let backward reqs root target =
  let rec require n r =
    let v = I.inter n.value r in
    if I.is_empty v then raise Empty;
    if not (I.equal v n.value) then begin
      n.value <- v;
      push n
    end
  and push n =
    let v = n.value in
    match n.shape with
    | AVar x ->
        let cur = match Hashtbl.find_opt reqs x with Some i -> i | None -> I.entire in
        let refined = I.inter cur v in
        if I.is_empty refined then raise Empty;
        Hashtbl.replace reqs x refined
    | AConst c -> if not (I.mem c v) then raise Empty
    | AAdd (a, b) ->
        require a (I.sub v b.value);
        require b (I.sub v a.value)
    | ASub (a, b) ->
        require a (I.add v b.value);
        require b (I.sub a.value v)
    | AMul (a, b) ->
        if not (I.mem 0.0 b.value) then require a (I.div v b.value);
        if not (I.mem 0.0 a.value) then require b (I.div v a.value)
    | ADiv (a, b) ->
        require a (I.mul v b.value);
        if not (I.mem 0.0 v) then require b (I.div a.value v)
    | ANeg a -> require a (I.neg v)
    | APow (a, k) ->
        let pre = pow_preimage a.value v k in
        if I.is_empty pre then raise Empty;
        require a pre
    | AExp a ->
        (* exp x ∈ v ⇒ v must meet (0, ∞) and x ∈ log v *)
        let vp = I.inter v (I.make 0.0 infinity) in
        if I.is_empty vp then raise Empty;
        require a (I.log vp)
    | ALog a -> require a (I.exp v)
    | ASqrt a ->
        let vp = I.inter v (I.make 0.0 infinity) in
        if I.is_empty vp then raise Empty;
        require a (I.sqr vp)
    | ASin a | ACos a ->
        (* Multivalued inverse: only prune when the range is impossible. *)
        if I.is_empty (I.inter v (I.make (-1.0) 1.0)) then raise Empty;
        ignore a
    | ATan a ->
        (* Contract through the branch of tan containing the argument,
           when that branch is unambiguous. *)
        let pre = tan_preimage a.value v in
        if I.is_empty pre then raise Empty;
        require a pre
    | AAtan a ->
        let dom = I.make (-1.5707963267948966) 1.5707963267948966 in
        let vc = I.inter v dom in
        if I.is_empty vc then raise Empty;
        require a (I.tan vc)
    | ATanh a ->
        let vc = I.inter v (I.make (-1.0) 1.0) in
        if I.is_empty vc then raise Empty;
        require a (I.atanh vc)
    | AAbs a ->
        let pre = abs_preimage a.value v in
        if I.is_empty pre then raise Empty;
        require a pre
    | AMin (a, b) ->
        (* min(a,b) ∈ v ⇒ a ≥ v.lo and b ≥ v.lo; if the other side lies
           strictly above v, this side must realize the upper bound. *)
        let low = I.make (I.lo v) infinity in
        require a (I.inter a.value low);
        require b (I.inter b.value low);
        if I.lo b.value > I.hi v then require a (I.inter a.value v);
        if I.lo a.value > I.hi v then require b (I.inter b.value v)
    | AMax (a, b) ->
        let high = I.make neg_infinity (I.hi v) in
        require a (I.inter a.value high);
        require b (I.inter b.value high);
        if I.hi b.value < I.lo v then require a (I.inter a.value v);
        if I.hi a.value < I.lo v then require b (I.inter b.value v)
  in
  require root target

(* One HC4-revise step for [term ∈ target] on [box].  Returns the
   contracted box, or [None] if the constraint is infeasible on the box. *)
let revise ~term ~target box =
  let root = annotate term in
  ignore (forward box root);
  if I.is_empty (I.inter root.value target) then None
  else
    let reqs = Hashtbl.create 8 in
    try
      backward reqs root target;
      let contracted =
        Hashtbl.fold
          (fun x req acc ->
            match Box.find_opt x acc with
            | None -> acc
            | Some cur ->
                let refined = I.inter cur req in
                if I.is_empty refined then raise Empty
                else Box.set x refined acc)
          reqs box
      in
      Some contracted
    with Empty -> None

(* A constraint is a term with a target interval for its value. *)
type constr = { term : Expr.Term.t; target : I.t }

let pp_constr ppf c = Fmt.pf ppf "%a ∈ %a" Expr.Term.pp c.term I.pp c.target

let of_atom ?(delta = 0.0) (a : Expr.Formula.atom) =
  (* Both strict and non-strict atoms contract against the closed target
     [-δ, ∞): contraction works with closures, strictness is enforced at
     verdict time. *)
  { term = a.term; target = I.make (-.delta) infinity }

(* Fixpoint contraction with all constraints.  Stops when no component
   shrinks by more than [tol] (relative to its width) or after
   [max_rounds].  Returns [None] on infeasibility. *)
let default_tol = 0.01
let default_max_rounds = 20

let fixpoint ?(tol = default_tol) ?(max_rounds = default_max_rounds) constraints
    box =
  let progressed old_box new_box =
    let shrank = ref false in
    Box.iter
      (fun x i_new ->
        match Box.find_opt x old_box with
        | None -> ()
        | Some i_old ->
            let w_old = I.width i_old and w_new = I.width i_new in
            if w_old > 0.0 && (w_old -. w_new) /. w_old > tol then shrank := true
            else if w_old = infinity && w_new < infinity then shrank := true)
      new_box;
    !shrank
  in
  let rec loop box round =
    Telemetry.Counter.incr m_rounds;
    let step =
      List.fold_left
        (fun acc c ->
          match acc with
          | None -> None
          | Some b -> revise ~term:c.term ~target:c.target b)
        (Some box) constraints
    in
    match step with
    | None -> None
    | Some box' ->
        if round >= max_rounds || not (progressed box box') then Some box'
        else loop box' (round + 1)
  in
  Telemetry.Counter.incr m_fixpoints;
  loop box 0

(* ---- Tape-compiled constraint systems ----

   One single-root tape per constraint, all sharing one input ordering
   (the sorted union of the free variables), so a whole fixpoint runs on
   a single interval array: the box is converted once per query, the
   revise rounds mutate the array in place, and the contracted box is
   rebuilt only on success.  The tree-walking [fixpoint] above is kept as
   the differential-testing oracle (and the BIOMC_NO_TAPE escape hatch). *)

(* Per-domain reusable fixpoint workspace: allocated once per (compiled
   system, domain) pair instead of on every query box. *)
type workspace = {
  dom : I.t array;
  present : bool array;
  w_old : float array;
  scratches : Expr.Tape.scratch array;
}

type compiled = {
  cvars : string array;  (* input ordering shared by all tapes *)
  ctapes : (Expr.Tape.t * I.t) array;  (* (tape, target) per constraint *)
  ws_key : workspace Domain.DLS.key;
}

let compile constraints =
  let vars =
    List.sort_uniq String.compare
      (List.concat_map (fun c -> Expr.Term.free_var_list c.term) constraints)
  in
  let ctapes =
    Array.of_list
      (List.map (fun c -> (Expr.Tape.compile ~vars [ c.term ], c.target)) constraints)
  in
  let n = List.length vars in
  let ws_key =
    Domain.DLS.new_key (fun () ->
        { dom = Array.make n I.entire;
          present = Array.make n false;
          w_old = Array.make n 0.0;
          scratches =
            Array.map (fun (tp, _) -> Expr.Tape.dls_scratch tp) ctapes })
  in
  { cvars = Array.of_list vars; ctapes; ws_key }

let fixpoint_compiled ?(tol = default_tol) ?(max_rounds = default_max_rounds)
    ?(affine = false) ?(tm = false) cs box =
  let n = Array.length cs.cvars in
  let ws = Domain.DLS.get cs.ws_key in
  let dom = ws.dom and present = ws.present in
  let w_old = ws.w_old and scratches = ws.scratches in
  (* Variables absent from the box behave like the tree path: they read
     as entire and their contractions are dropped (never written back),
     so each revise sees them fresh.  The workspace is reused, so both
     arrays are refilled for every variable. *)
  for i = 0 to n - 1 do
    match Box.find_opt cs.cvars.(i) box with
    | Some itv ->
        dom.(i) <- itv;
        present.(i) <- true
    | None ->
        dom.(i) <- I.entire;
        present.(i) <- false
  done;
  let revise_all () =
    let ok = ref true in
    let k = ref 0 in
    let m = Array.length cs.ctapes in
    while !ok && !k < m do
      let tp, target = cs.ctapes.(!k) in
      ok :=
        Expr.Tape.hc4_revise tp scratches.(!k) ~affine ~tm ~mask:present
          ~target dom;
      incr k
    done;
    !ok
  in
  (* Widths below are I.width transcribed inline (same formula, same
     ulp widening): the cross-module call would box its float result on
     every bound of every round. *)
  let rec loop round =
    Telemetry.Counter.incr m_rounds;
    for i = 0 to n - 1 do
      let itv = dom.(i) in
      let l = itv.I.lo and h = itv.I.hi in
      w_old.(i) <-
        (if l <> l || h <> h then 0.0
         else Interval.Round.next_after (h -. l) infinity)
    done;
    if not (revise_all ()) then None
    else begin
      let shrank = ref false in
      for i = 0 to n - 1 do
        if present.(i) then begin
          let wo = w_old.(i) in
          let itv = dom.(i) in
          let l = itv.I.lo and h = itv.I.hi in
          let wn =
            if l <> l || h <> h then 0.0
            else Interval.Round.next_after (h -. l) infinity
          in
          if wo > 0.0 && (wo -. wn) /. wo > tol then shrank := true
          else if wo = infinity && wn < infinity then shrank := true
        end
      done;
      if round >= max_rounds || not !shrank then begin
        let b = ref box in
        for i = 0 to n - 1 do
          if present.(i) then b := Box.set cs.cvars.(i) dom.(i) !b
        done;
        Some !b
      end
      else loop (round + 1)
    end
  in
  Telemetry.Counter.incr m_fixpoints;
  loop 0

(* Collision-safe fingerprint of a constraint system (terms with exact
   float rendering, targets with %h bounds): structurally identical
   systems — e.g. the same formula decided twice, or the same atoms
   compiled by a sibling query — share one cache group. *)
let fingerprint constraints =
  let buf = Buffer.create 256 in
  List.iter
    (fun c ->
      Expr.Term.fingerprint_acc buf c.term;
      Buffer.add_string buf (Printf.sprintf "@%h,%h;" (I.lo c.target) (I.hi c.target)))
    constraints;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* HC4 fixpoint cache: group = (constraint fingerprint, tol, max_rounds,
   evaluation path); value = the contraction result (None = refuted).
   Exact hits replay the deterministic fixpoint bit-for-bit.  Under the
   Warm policy a contained query may reuse a cached refutation (a box
   with no solution has no solution in any sub-box) or seed the fixpoint
   with query ∩ cached-result (sound: all solutions of the query lie in
   both). *)
let hc4_cache : Box.t option Cache.t = Cache.create ~group_capacity:1024 "hc4"

(* Compile-once fixpoint closure: tape-backed when tapes are enabled,
   tree-walking otherwise.  The closure is safe to share across worker
   domains (tapes are immutable; scratch is per-domain via Domain.DLS;
   the cache shards are mutex-guarded). *)
let contractor ?tol ?max_rounds ?newton:newton_req ?affine:affine_req
    ?tm:tm_req constraints =
  let tape = Expr.Tape.enabled () in
  (* Affine- and TM-tightened forward passes only exist on the tape
     path (the tree walker has no slot arrays to intersect into);
     sampled at build time like [tape] so the closure and its cache
     group stay consistent.  [?affine] / [?tm] / [?newton] override the
     global switches for this closure only — portfolio racers need
     per-strategy layer choices without flipping process-wide atomics
     under each other — and key the cache group exactly like the
     sampled globals would, so per-strategy closures share groups with
     same-flag global runs. *)
  let affine =
    tape
    &&
    match affine_req with
    | Some b -> b
    | None -> Interval.Affine.enabled ()
  in
  let tm =
    tape
    && match tm_req with Some b -> b | None -> Interval.Tm.enabled ()
  in
  let base =
    if tape then begin
      let cs = compile constraints in
      fun box -> fixpoint_compiled ?tol ?max_rounds ~affine ~tm cs box
    end
    else fun box -> fixpoint ?tol ?max_rounds constraints box
  in
  (* Derivative layer (mean-value refutation + interval Newton), run
     after the HC4 fixpoint; when Newton contracts the box, one more
     fixpoint round lets HC4 exploit the tightened components.  The
     flag is sampled at build time — like [tape] — so the closure and
     its cache group stay consistent for their whole lifetime. *)
  let newton =
    let wanted =
      match newton_req with Some b -> b | None -> Deriv.enabled ()
    in
    if wanted then
      Deriv.compile (List.map (fun c -> (c.term, c.target)) constraints)
    else None
  in
  let base =
    match newton with
    | None -> base
    | Some sys -> (
        fun box ->
          match base box with
          | None -> None
          | Some b -> (
              match Deriv.contract sys b with
              | None -> None
              | Some b' -> if b' == b then Some b else base b'))
  in
  (* The group string is built unconditionally (one digest — negligible
     next to [compile]) with [tol]/[max_rounds] normalized to their
     defaults, so callers passing the defaults explicitly share a group
     with callers omitting them.  The policy is re-read on every call,
     not baked into the closure: a [set_policy] flip after a contractor
     was built takes effect on its next use.  ([lazy] is deliberately
     avoided here — these closures are shared across worker domains, and
     concurrently forcing one thunk is unsafe.) *)
  let group =
    (* The newton flag keys the group too: Newton-contracted results
       must never replay into a Newton-off run (and vice versa), or the
       kill-switch would no longer reproduce the HC4-only search. *)
    Printf.sprintf "hc4|%s|%h|%d|%b|%b|%b|%b" (fingerprint constraints)
      (Option.value tol ~default:default_tol)
      (Option.value max_rounds ~default:default_max_rounds)
      tape
      (Option.is_some newton)
      affine tm
  in
  let cached box =
    if not (Cache.enabled ()) then base box
    else
      match Cache.find hc4_cache ~group box with
      | Cache.Hit r ->
          (* journal provenance: a replayed refutation is a
             "cache-replay" prune, not a fresh hc4-empty *)
          if Option.is_none r && Journal.on () then
            Journal.set_reason ~group "cache-replay";
          r
      | Cache.Subsumed (_, None) ->
          if Journal.on () then Journal.set_reason ~group "cache-replay";
          None
      | Cache.Subsumed (_, Some parent) ->
          let seeded = Box.inter box parent in
          let r = if Box.is_empty seeded then None else base seeded in
          Cache.note_warm_start hc4_cache ~saved_iterations:0;
          Cache.add hc4_cache ~group box r;
          r
      | Cache.Miss ->
          let r = base box in
          Cache.add hc4_cache ~group box r;
          r
  in
  fun box ->
    if not (Telemetry.enabled ()) then cached box
    else begin
      let tok = Telemetry.Span.enter tm_hc4 in
      match cached box with
      | r ->
          Telemetry.Span.exit tm_hc4 tok;
          r
      | exception e ->
          Telemetry.Span.exit tm_hc4 tok;
          raise e
    end
