(** HC4-revise interval constraint propagation.

    Given a constraint [term ∈ target] and a box, the forward pass
    computes interval enclosures for every subterm and the backward pass
    pushes the refined requirement down to the variable leaves.
    Contraction never loses solutions: every point of the box satisfying
    the constraint is in the contracted box. *)

exception Empty
(** Raised internally when a requirement becomes empty; the public
    functions catch it and return [None]. *)

type constr = { term : Expr.Term.t; target : Interval.Ia.t }
(** The constraint [term ∈ target]. *)

val of_atom : ?delta:float -> Expr.Formula.atom -> constr
(** Constraint form of an atom [t ⋈ 0]: the closed target [[-δ, +∞)].
    Strictness is enforced at verdict time, not during contraction. *)

val pp_constr : constr Fmt.t

val revise :
  term:Expr.Term.t -> target:Interval.Ia.t -> Interval.Box.t -> Interval.Box.t option
(** One HC4-revise step.  [None] means the constraint is infeasible on the
    box (a proof). *)

val fixpoint :
  ?tol:float ->
  ?max_rounds:int ->
  constr list ->
  Interval.Box.t ->
  Interval.Box.t option
(** Round-robin contraction with all constraints until no component
    shrinks by more than [tol] (relative) or [max_rounds] is reached.
    [None] on infeasibility. *)
