(** HC4-revise interval constraint propagation.

    Given a constraint [term ∈ target] and a box, the forward pass
    computes interval enclosures for every subterm and the backward pass
    pushes the refined requirement down to the variable leaves.
    Contraction never loses solutions: every point of the box satisfying
    the constraint is in the contracted box. *)

exception Empty
(** Raised internally when a requirement becomes empty; the public
    functions catch it and return [None]. *)

type constr = { term : Expr.Term.t; target : Interval.Ia.t }
(** The constraint [term ∈ target]. *)

val of_atom : ?delta:float -> Expr.Formula.atom -> constr
(** Constraint form of an atom [t ⋈ 0]: the closed target [[-δ, +∞)].
    Strictness is enforced at verdict time, not during contraction. *)

val pp_constr : constr Fmt.t

val fingerprint : constr list -> string
(** Collision-safe digest of a constraint system (exact float rendering):
    equal fingerprints imply structurally identical constraints.  Keys
    the HC4 fixpoint cache and the solver's refuted-box store. *)

val revise :
  term:Expr.Term.t -> target:Interval.Ia.t -> Interval.Box.t -> Interval.Box.t option
(** One HC4-revise step.  [None] means the constraint is infeasible on the
    box (a proof). *)

val fixpoint :
  ?tol:float ->
  ?max_rounds:int ->
  constr list ->
  Interval.Box.t ->
  Interval.Box.t option
(** Round-robin contraction with all constraints until no component
    shrinks by more than [tol] (relative) or [max_rounds] is reached.
    [None] on infeasibility. *)

(** {1 Tape-compiled constraint systems}

    Compile the constraints once per query and run the HC4 fixpoint on a
    flat interval array — no tree rebuilding or string lookups per box.
    Results agree with {!fixpoint} (identically when the compiled tapes
    have no interior sharing; possibly tighter, never looser, when
    structurally shared subterms let requirements accumulate). *)

type compiled

val compile : constr list -> compiled

val fixpoint_compiled :
  ?tol:float ->
  ?max_rounds:int ->
  ?affine:bool ->
  ?tm:bool ->
  compiled ->
  Interval.Box.t ->
  Interval.Box.t option
(** [?affine] / [?tm] (default [false]) thread the affine- and
    Taylor-model-tightened forward passes into every HC4 revise (see
    {!Expr.Tape.hc4_revise}); sound either way, possibly tighter with
    them on. *)

val contractor :
  ?tol:float ->
  ?max_rounds:int ->
  ?newton:bool ->
  ?affine:bool ->
  ?tm:bool ->
  constr list ->
  Interval.Box.t ->
  Interval.Box.t option
(** [contractor constraints] compiles once and returns the fixpoint as a
    closure — tape-backed unless tapes are disabled ([BIOMC_NO_TAPE=1]).
    Unless the derivative layer is disabled ([BIOMC_NO_NEWTON=1], see
    {!Deriv}), the HC4 fixpoint is followed by a mean-value-form
    refutation test and an interval Newton (Gauss–Seidel) contraction
    sweep over the differentiable constraints, with one extra fixpoint
    round when Newton tightened the box.  Both layers only remove
    points violating a constraint, so the contraction contract is
    unchanged; with Newton disabled the closure reproduces the HC4-only
    result bit for bit (cache groups are keyed on the flag).  The
    closure may be shared across worker domains: tapes are immutable
    and scratch buffers are per-domain.

    [?newton] / [?affine] / [?tm] pin the respective layer on or off
    for this closure, overriding the global switches — portfolio racers
    build per-strategy contractors this way, without flipping
    process-wide state under concurrent racers.  The affine and
    Taylor-model passes still require the tape path: [~affine:true] /
    [~tm:true] are ignored under [BIOMC_NO_TAPE=1].  The HC4 cache
    group keys on the effective flags, exactly as for
    globally-switched closures. *)
