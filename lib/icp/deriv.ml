(* Derivative-powered pruning: mean-value form refutation, interval
   Newton (Gauss–Seidel) contraction, and smear-guided branching.

   A constraint system's symbolic gradients are compiled once into the
   SSA tape layer — one multi-root tape per constraint with roots
   [f; ∂f/∂x₁; …; ∂f/∂xₖ] over its free variables, so CSE shares the
   function's subterms with its partials and a whole gradient costs one
   forward interval pass.  Per box the layer offers:

   - [contract]: the first-order contractions.  With m the box
     midpoint, smoothness of f on the (convex) box B certified by
     {!Expr.Tape.smooth_on} and G = ∇f(B) the gradient enclosure, the
     mean-value theorem gives

       f(x) ∈ f(m) + G · (B − m)        for every x ∈ B,

     so an empty intersection with the constraint target T refutes the
     box (often earlier than HC4's natural-extension test, whose
     dependency error is first-order in the box width where the
     mean-value form's is second-order).  When it does not refute, the
     same expansion is solved for each variable: 0 ∉ Gᵢ licenses the
     Newton/Gauss–Seidel step

       xᵢ ∈ mᵢ + (T − f(m) − Σ_{j≠i} Gⱼ·(Bⱼ − mⱼ)) / Gᵢ

     intersected with Bᵢ, each contraction feeding the next variable's
     sum (Gauss–Seidel).  An empty intersection refutes the box.

   - [split]: Kearfott's smear heuristic — bisect the variable
     maximizing maxₑ |Gₑ,ᵢ| · width(Bᵢ), i.e. the one the constraints
     are most sensitive to, instead of the geometrically widest.

   Soundness guards: an entry is skipped on any box where the
   smoothness certificate fails, a gradient component is unbounded, or
   a support component is unbounded — the guards can only cost
   precision, never correctness.  f(m) is evaluated in interval
   arithmetic on the singleton midpoint, so rounding in the expansion
   point is enclosed too.

   Everything is behind one switch: [BIOMC_NO_NEWTON=1] (or the
   [--no-newton] CLI flag / {!set_enabled}) restores the pre-derivative
   search paths bit for bit. *)

module I = Interval.Ia
module Box = Interval.Box

let tm_newton = Telemetry.Span.probe "icp.newton"
let m_prunings = Telemetry.Counter.make ~always:true "icp.newton.prunings"
let m_contractions =
  Telemetry.Counter.make ~always:true "icp.newton.contractions"
let m_smear_picks = Telemetry.Counter.make ~always:true "icp.smear.picks"
let m_smear_fallbacks =
  Telemetry.Counter.make ~always:true "icp.smear.fallbacks"

(* ---- Enable/disable switch (same shape as Expr.Tape's) ---- *)

let override : bool option Atomic.t = Atomic.make None

let enabled () =
  match Atomic.get override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "BIOMC_NO_NEWTON" with
      | Some ("1" | "true" | "yes") -> false
      | _ -> true)

let set_enabled b = Atomic.set override (Some b)
let clear_enabled_override () = Atomic.set override None

(* ---- Compilation ---- *)

type entry = {
  tape : Expr.Tape.t;  (* roots: f :: gradient along [support] *)
  support : int array;  (* positions (in the system ordering) of f's vars *)
  target : I.t;
}

(* Per-domain workspace: every array is reused across boxes, so the
   steady state allocates only the interval records the {!Ia} kernels
   return. *)
type workspace = {
  dom : I.t array;  (* current component intervals (Gauss–Seidel state) *)
  usable : bool array;  (* component present in the box and bounded *)
  wchanged : bool array;  (* contracted by the current [contract] call *)
  mids : float array;  (* entry-local midpoints, indexed like [dom] *)
  minp : I.t array;  (* midpoint singletons for the f(m) pass *)
  gout : I.t array array;  (* per entry: f and gradient enclosures *)
  scratches : Expr.Tape.scratch array;
  smear : float array;  (* per component: smear score *)
}

type t = {
  vars : string array;  (* input ordering shared by all entry tapes *)
  entries : entry array;
  ws_key : workspace Domain.DLS.key;
}

let vars_of t = Array.to_list t.vars
let num_entries t = Array.length t.entries

(* Compile the differentiable constraints [(term, target); …] — each
   meaning [term ∈ target] — into gradient tapes.  Constraints whose
   terms are not symbolically differentiable (min/max) or mention no
   variable are skipped; [None] when nothing remains.  Gradients are
   deep-simplified before compilation — [Term.deriv] output carries
   chain-rule scaffolding that would bloat the tapes.  (Plain pairs
   rather than [Contractor.constr] so [Contractor] can depend on this
   module.) *)
let compile constraints =
  let vars =
    List.sort_uniq String.compare
      (List.concat_map
         (fun (term, _) -> Expr.Term.free_var_list term)
         constraints)
  in
  let vars_arr = Array.of_list vars in
  let index = Hashtbl.create 16 in
  Array.iteri (fun i v -> Hashtbl.replace index v i) vars_arr;
  let entry_of (term, target) =
    let free = Expr.Term.free_var_list term in
    if free = [] then None
    else
      match
        List.map
          (fun v -> Expr.Term.simplify_deep (Expr.Term.deriv v term))
          free
      with
      | grads ->
          let tape = Expr.Tape.compile ~vars (term :: grads) in
          let support =
            Array.of_list (List.map (fun v -> Hashtbl.find index v) free)
          in
          Some { tape; support; target }
      | exception Invalid_argument _ -> None
  in
  let entries = Array.of_list (List.filter_map entry_of constraints) in
  if Array.length entries = 0 then None
  else begin
    let n = Array.length vars_arr in
    let ws_key =
      Domain.DLS.new_key (fun () ->
          { dom = Array.make n I.entire;
            usable = Array.make n false;
            wchanged = Array.make n false;
            mids = Array.make n 0.0;
            minp = Array.make n I.zero;
            gout =
              Array.map
                (fun e -> Array.make (1 + Array.length e.support) I.entire)
                entries;
            scratches =
              Array.map (fun e -> Expr.Tape.dls_scratch e.tape) entries;
            smear = Array.make n 0.0 })
    in
    Some { vars = vars_arr; entries; ws_key }
  end

(* ---- Shared per-box setup ---- *)

(* Load the box into the workspace; a component is [usable] when the
   variable is bound in the box to a bounded nonempty interval (the
   mean-value expansion needs finite midpoints and finite Bⱼ − mⱼ). *)
let load_box sys ws box =
  let n = Array.length sys.vars in
  for i = 0 to n - 1 do
    match Box.find_opt sys.vars.(i) box with
    | Some itv ->
        ws.dom.(i) <- itv;
        ws.usable.(i) <- I.is_bounded itv
    | None ->
        ws.dom.(i) <- I.entire;
        ws.usable.(i) <- false
  done

let supported ws (e : entry) =
  let ok = ref true in
  let k = Array.length e.support in
  let j = ref 0 in
  while !ok && !j < k do
    if not ws.usable.(e.support.(!j)) then ok := false;
    incr j
  done;
  !ok

(* Evaluate the entry's gradient tape over the current [dom] into its
   [gout] row and certify smoothness + bounded gradients.  Returns
   [true] iff the entry is usable on this box. *)
let eval_entry ws ei (e : entry) =
  let out = ws.gout.(ei) in
  let sc = ws.scratches.(ei) in
  Expr.Tape.eval_interval_into e.tape sc ~inputs:ws.dom ~out;
  Expr.Tape.smooth_on e.tape sc
  && (let ok = ref true in
      let k = Array.length e.support in
      let j = ref 0 in
      while !ok && !j <= k do
        if not (I.is_bounded out.(!j)) then ok := false;
        incr j
      done;
      !ok)

(* ---- Mean-value test + interval Newton (Gauss–Seidel) ---- *)

exception Refuted

let contract_inner sys box =
  let ws = Domain.DLS.get sys.ws_key in
  load_box sys ws box;
  Array.fill ws.wchanged 0 (Array.length sys.vars) false;
  let any_change = ref false in
  let process ei (e : entry) =
    if supported ws e && eval_entry ws ei e then begin
      let out = ws.gout.(ei) in
      let k = Array.length e.support in
      (* Entry-local midpoints and their singleton inputs. *)
      for j = 0 to k - 1 do
        let vi = e.support.(j) in
        let m = I.mid ws.dom.(vi) in
        ws.mids.(vi) <- m;
        ws.minp.(vi) <- I.of_float m
      done;
      (* f(m) on the midpoint singletons: the second forward pass
         overwrites the scratch, which is why [out] was copied first. *)
      let fm = Expr.Tape.eval_interval e.tape ws.scratches.(ei) ws.minp in
      if not (I.is_empty fm) then begin
        (* Mean-value refutation: f(m) + Σ Gⱼ·(Bⱼ − mⱼ) misses T. *)
        let mv = ref fm in
        for j = 0 to k - 1 do
          let vi = e.support.(j) in
          mv :=
            I.add !mv
              (I.mul out.(1 + j) (I.sub_float ws.dom.(vi) ws.mids.(vi)))
        done;
        if I.is_empty (I.inter !mv e.target) then begin
          Telemetry.Counter.incr m_prunings;
          if Journal.on () then Journal.set_reason "mean-value";
          raise Refuted
        end;
        (* Gauss–Seidel Newton step per variable with 0 ∉ Gᵢ. *)
        let tmf = I.sub e.target fm in
        for j = 0 to k - 1 do
          let vi = e.support.(j) in
          let g = out.(1 + j) in
          if (not (I.mem 0.0 g)) && not (I.is_singleton ws.dom.(vi)) then begin
            let n = ref tmf in
            for l = 0 to k - 1 do
              if l <> j then begin
                let vl = e.support.(l) in
                n :=
                  I.sub !n
                    (I.mul out.(1 + l)
                       (I.sub_float ws.dom.(vl) ws.mids.(vl)))
              end
            done;
            let candidate = I.add_float (I.div !n g) ws.mids.(vi) in
            let refined = I.inter ws.dom.(vi) candidate in
            if I.is_empty refined then begin
              Telemetry.Counter.incr m_prunings;
              if Journal.on () then Journal.set_reason "newton";
              raise Refuted
            end;
            if not (I.equal refined ws.dom.(vi)) then begin
              ws.dom.(vi) <- refined;
              ws.wchanged.(vi) <- true;
              any_change := true;
              Telemetry.Counter.incr m_contractions
            end
          end
        done
      end
    end
  in
  match Array.iteri process sys.entries with
  | () ->
      if not !any_change then Some box
      else begin
        let b = ref box in
        Array.iteri
          (fun i changed ->
            if changed then b := Box.set sys.vars.(i) ws.dom.(i) !b)
          ws.wchanged;
        Some !b
      end
  | exception Refuted -> None

(* [contract sys box]: [None] refutes the box (no point satisfies every
   compiled constraint); otherwise the possibly-contracted box.  The
   result is physically [box] when nothing changed, so callers can test
   progress with [==]. *)
let contract sys box =
  Telemetry.Span.with_ tm_newton (fun () -> contract_inner sys box)

(* ---- Smear-guided branching ---- *)

(* [split sys ~min_width box]: bisect [box] along the variable with the
   largest smear score max over entries of |∂f/∂xᵢ|·width(xᵢ), falling
   back to the widest dimension when no constraint yields a finite
   nonzero score.  Returns [None] exactly when [Box.split ~min_width]
   would (the sub-ε termination test is shared), and only ever selects
   variables wider than [min_width], so search termination is
   unaffected.  Ties are broken toward the wider component, then the
   lexicographically smaller name (the iteration order of [Box]), so
   the choice is deterministic across domains. *)
let split sys ~min_width box =
  match Box.max_dim box with
  | None, _ -> None
  | Some _, w when w <= min_width || w = 0.0 -> None
  | Some _, _ ->
      let ws = Domain.DLS.get sys.ws_key in
      load_box sys ws box;
      let n = Array.length sys.vars in
      Array.fill ws.smear 0 n 0.0;
      Array.iteri
        (fun ei e ->
          if supported ws e && eval_entry ws ei e then begin
            let out = ws.gout.(ei) in
            for j = 0 to Array.length e.support - 1 do
              let vi = e.support.(j) in
              let wdt = I.width ws.dom.(vi) in
              if wdt > min_width && Float.is_finite wdt then begin
                let s = I.mag out.(1 + j) *. wdt in
                if Float.is_finite s && s > ws.smear.(vi) then
                  ws.smear.(vi) <- s
              end
            done
          end)
        sys.entries;
      let best = ref (-1) and best_score = ref 0.0 and best_w = ref 0.0 in
      for i = 0 to n - 1 do
        let s = ws.smear.(i) in
        if s > 0.0 then begin
          let wdt = I.width ws.dom.(i) in
          if
            s > !best_score
            || (s = !best_score && wdt > !best_w)
          then begin
            best := i;
            best_score := s;
            best_w := wdt
          end
        end
      done;
      if !best >= 0 then begin
        Telemetry.Counter.incr m_smear_picks;
        Some (Box.split_var sys.vars.(!best) box)
      end
      else begin
        Telemetry.Counter.incr m_smear_fallbacks;
        Box.split ~min_width box
      end

(* Gradient enclosures over a box, for differential tests: for each
   compiled entry, the pairs (variable, ∂f/∂x enclosure) — [None] for
   entries skipped on this box (unsupported, non-smooth or unbounded
   gradient). *)
let gradient_enclosures sys box =
  let ws = Domain.DLS.get sys.ws_key in
  load_box sys ws box;
  Array.to_list
    (Array.mapi
       (fun ei e ->
         if supported ws e && eval_entry ws ei e then
           Some
             (Array.to_list
                (Array.mapi
                   (fun j vi -> (sys.vars.(vi), ws.gout.(ei).(1 + j)))
                   e.support))
         else None)
       sys.entries)
