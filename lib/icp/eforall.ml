(* ∃∀ formulas over the reals via CEGIS over δ-decisions (the paper's
   Sec. IV-C(i), following the exists-forall delta-decision procedure of
   Kong, Solar-Lezama & Gao, CAV'18).

   Problem: find x ∈ X such that for all y ∈ Y, φ(x, y) holds.

   CEGIS loop:
   - ∃-step: find x satisfying φ(x, y_j) for every counterexample y_j
     collected so far (each a quantifier-free instance, decided by
     {!Solver});
   - ∀-step: with x fixed, decide ¬φ(x, ·) over Y.  `unsat` proves the
     candidate; a δ-sat witness y* becomes a new counterexample.

   Semantics are one-sided as in the reference procedure: a [Proved]
   answer guarantees ∀y. φ^δ(x, y) (the ∀-step refutes the δ-strengthened
   violation), while [No_witness] means even the weakened instance
   constraints became unsatisfiable. *)

module Box = Interval.Box
module F = Expr.Formula

type config = {
  max_iterations : int;
  exists_solver : Solver.config;
  forall_solver : Solver.config;
  initial_cexs : (string * float) list list;  (** seed counterexamples *)
  margin : float;
      (** the ∀-step hunts for violations *exceeding* this margin; it must
          dominate the solver's δ or boundary-equality points make the
          loop diverge (the proved guarantee is ∀y. φ^margin) *)
}

let default_config =
  {
    max_iterations = 50;
    exists_solver = Solver.default_config;
    forall_solver = Solver.default_config;
    initial_cexs = [];
    margin = 1e-2;
  }

type result =
  | Proved of { witness : (string * float) list; iterations : int;
                counterexamples : (string * float) list list }
  | No_witness of int  (** the ∃-step became unsat at this iteration *)
  | Budget_exhausted of int

let pp_result ppf = function
  | Proved { witness; iterations; _ } ->
      Fmt.pf ppf "proved in %d iteration(s): %a" iterations
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
        witness
  | No_witness i -> Fmt.pf ppf "no witness (exists-step unsat at iteration %d)" i
  | Budget_exhausted i -> Fmt.pf ppf "budget exhausted after %d iteration(s)" i

(* Default seed counterexamples: the corners (capped) and center of Y. *)
let seed_points box =
  let bindings = Box.to_list box in
  let corners =
    List.fold_left
      (fun acc (v, itv) ->
        if List.length acc > 16 then
          List.map (fun pt -> (v, Interval.Ia.mid itv) :: pt) acc
        else
          List.concat_map
            (fun pt ->
              [ (v, Interval.Ia.lo itv) :: pt; (v, Interval.Ia.hi itv) :: pt ])
            acc)
      [ [] ] bindings
  in
  Box.mid_env box :: corners

let solve ?(config = default_config) ~exists_box ~forall_box phi =
  let exists_vars = Box.vars exists_box in
  let forall_vars = Box.vars forall_box in
  (* sanity: φ's free variables are covered *)
  List.iter
    (fun v ->
      if not (List.mem v (exists_vars @ forall_vars)) then
        invalid_arg (Printf.sprintf "Eforall.solve: unbound variable %S" v))
    (F.free_var_list phi);
  let subst_y env f =
    F.subst (List.map (fun (y, v) -> (y, Expr.Term.const v)) env) f
  in
  let subst_x env f = subst_y env f in
  let cexs0 =
    match config.initial_cexs with [] -> seed_points forall_box | l -> l
  in
  let rec loop cexs iter =
    if iter > config.max_iterations then Budget_exhausted (iter - 1)
    else
      let exists_formula = F.and_ (List.map (fun y -> subst_y y phi) cexs) in
      match Solver.decide ~config:config.exists_solver exists_formula exists_box with
      | Solver.Unsat -> No_witness iter
      | Solver.Unknown _ -> Budget_exhausted iter
      | Solver.Delta_sat w -> (
          let x = w.Solver.point in
          (* strengthen by the margin: only violations beyond it count *)
          let violation = F.delta_weaken (-.config.margin) (F.neg (subst_x x phi)) in
          match Solver.decide ~config:config.forall_solver violation forall_box with
          | Solver.Unsat ->
              Proved { witness = x; iterations = iter; counterexamples = cexs }
          | Solver.Unknown _ -> Budget_exhausted iter
          | Solver.Delta_sat cex ->
              let y =
                List.filter (fun (v, _) -> List.mem v forall_vars) cex.Solver.point
              in
              loop (y :: cexs) (iter + 1))
  in
  loop cexs0 1
