(** Solver-configuration portfolios: the strategy space, the runtime
    switch, and the race bookkeeping shared by {!Solver},
    [Reach.Checker] and [Synth.Biopsy].

    A {e strategy} fixes the per-query search knobs that the global
    kill-switches ([BIOMC_NO_NEWTON], [BIOMC_NO_AFFINE],
    [BIOMC_NO_TM]) otherwise set process-wide: the branching heuristic
    (widest-dimension bisection vs Kearfott smear), the
    Newton/affine/Taylor-model contraction layers, and the branch
    order (heuristic-first vs round-robin over the variables).
    In portfolio mode a query races a ranked lineup of strategies —
    each with its own box budget — and the first {e conclusive} verdict
    wins ([Pool.first_conclusive]); an Unknown racer (budget exhausted)
    never beats a conclusive one.  Racers share the refutation store
    under an epoch-scoped group (see {!next_epoch}): a pruning is a
    semantic proof about the query, valid whichever strategy derived
    it, so each racer prunes the others' space, while the epoch keeps
    portfolio-era entries out of the flag-keyed single-strategy groups
    — the [BIOMC_NO_PORTFOLIO] path replays the pre-portfolio search
    bit for bit.

    Verdict merge is deterministic: among the conclusive verdicts
    recorded before the race stopped, conclusive-kind priority first
    (a refutation outranks a δ-sat — it is the un-weakened claim),
    then lowest strategy rank — the same discipline as the Reach
    path-order merge.  At [jobs = 1] the racers run in rank order, so
    the winner is a deterministic function of (query, lineup). *)

type branching =
  | Bisect  (** widest-dimension bisection (the pre-Newton default) *)
  | Smear  (** Kearfott smear-guided bisection (needs the Deriv layer) *)

type order =
  | Widest  (** split the branching heuristic's choice of variable *)
  | Round_robin
      (** cycle the split variable by depth (skipping sub-ε components);
          overrides the branching heuristic's variable choice *)

type strategy = {
  name : string;  (** stable identifier: telemetry keys, reports, tests *)
  branching : branching;
  newton : bool;  (** interval Newton + mean-value refutation in HC4 *)
  affine : bool;  (** affine-tightened forward passes in HC4 *)
  tm : bool;  (** Taylor-model-tightened forward passes in HC4 *)
  order : order;
}

val pp_strategy : strategy Fmt.t

(** {1 Runtime switch}

    Same shape as the other kill-switches: environment default
    ([BIOMC_PORTFOLIO=1] / [=all] enables, [BIOMC_NO_PORTFOLIO=1]
    wins over everything), process-wide override for the CLI and
    tests.  Default [Off]: the single-strategy search, bit for bit. *)

type mode =
  | Off  (** default single-strategy search *)
  | Curated  (** the ~5-racer default lineup *)
  | All  (** the full strategy product (deduplicated) *)

val mode : unit -> mode
val set_mode : mode -> unit
val clear_mode_override : unit -> unit

val active : unit -> bool
(** [mode () <> Off]. *)

val pp_mode : mode Fmt.t

(** {1 Lineups} *)

val lineup : unit -> strategy list
(** The racers for the current {!mode}, in rank order (index = rank),
    filtered by the global layer switches: strategies needing the
    derivative layer are dropped under [BIOMC_NO_NEWTON=1], affine
    strategies under [BIOMC_NO_AFFINE=1] (or [BIOMC_NO_TAPE=1]),
    Taylor-model strategies under [BIOMC_NO_TM=1] (or
    [BIOMC_NO_TAPE=1]).
    Never empty — degenerates to the plain HC4 strategy when every
    layer is off.  Under [Off] the lineup is the single HC4-default
    strategy (callers should not race it). *)

val curated : unit -> strategy list
(** The default lineup before mode filtering (rank order: cheap
    per-box strategies first — on one core the racers serialize in
    rank order, so the lineup leads with the configuration our benches
    measure fastest on wall-clock). *)

val all_strategies : unit -> strategy list
(** The full {branching} × {newton} × {affine} × {tm} × {order}
    product, deduplicated (under [Round_robin] the branching heuristic
    does not pick the split variable, so the two branchings
    coincide). *)

(** {1 Race bookkeeping} *)

val next_epoch : unit -> int
(** Fresh portfolio epoch (monotone counter).  Callers stamp one per
    race into the shared store's group keys, so racers of one race
    share entries while distinct races — and the single-strategy
    groups — stay isolated. *)

val record_win : string -> unit
(** Count a race win for strategy [name] (the always-on
    [portfolio.wins.<name>] telemetry counter) and remember it as the
    process-wide {!last_winner}. *)

val last_winner : unit -> string option
(** Name of the most recent race winner in this process, for
    [Core.Report] / [--metrics] lines.  [None] before any race. *)

val wins : string -> int
(** Current value of the [portfolio.wins.<name>] counter. *)

(** {1 Round-robin splitting} *)

val round_robin_split :
  min_width:float ->
  depth:int ->
  Interval.Box.t ->
  (Interval.Box.t * Interval.Box.t) option
(** Bisect the [depth mod n]-th variable (scanning forward to the next
    component wider than [min_width]).  [None] exactly when every
    component is at most [min_width] — the same termination condition
    as [Box.split], so sub-ε verdicts are reached at the same width. *)
