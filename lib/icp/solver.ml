(* Branch-and-prune δ-decision procedure (the dReal-equivalent core).

   Given a bounded quantifier-free L_RF formula φ and a box of variable
   domains, [decide] answers (Theorem 1 of the paper):
   - [Unsat]      — φ has no solution in the box;
   - [Delta_sat]  — the δ-weakening φ^δ is satisfiable (with a witness).

   The search follows the DPLL(ICP) recipe: the formula is split into its
   DNF branches (the Boolean search), and each conjunction of atoms is
   handled by HC4 fixpoint contraction + bisection (the theory search).
   A δ-sat verdict is preferentially certified by an explicit point
   witness of φ^δ (midpoint/corner sampling); when certification at a
   sub-ε box fails, the one-sided-error answer licensed by δ-decidability
   is returned with the box as the witness region.

   Multicore: boxes on the branch-and-prune frontier are independent, so
   with [config.jobs > 1] worker domains pull boxes from a shared
   work-sharing frontier (Parallel.Pool.Frontier).  The first δ-sat
   witness cancels the remaining work via the frontier's stop flag;
   an unsat verdict still requires full frontier exhaustion, so the
   one-sided soundness guarantee is untouched.  DNF branches run as a
   portfolio (first δ-sat wins).  Each worker keeps a private [stats]
   record; they are merged when the search returns, so observability is
   the same as in the sequential path.  [jobs = 1] takes the original
   sequential code path exactly. *)

module I = Interval.Ia
module Box = Interval.Box

let src = Logs.Src.create "icp.solver" ~doc:"delta-decision solver"
module Log = (val Logs.src_log src : Logs.LOG)

(* Search telemetry.  Spans time whole queries and individual box steps
   (the box step's trace payload is the box's total width, so a Perfetto
   timeline shows the measure shrinking down the search tree); the
   counters mirror the per-query [stats] records into the process-wide
   metrics registry, which is the one reporting path `--metrics` and the
   bench breakdown read.  Always-on, like the cache counters they sit
   beside. *)
let tm_decide = Telemetry.Span.probe "icp.decide"
let tm_pave = Telemetry.Span.probe "icp.pave"
let tm_box = Telemetry.Span.probe "icp.box"
let m_decide_boxes = Telemetry.Counter.make ~always:true "icp.decide.boxes"
let m_decide_splits = Telemetry.Counter.make ~always:true "icp.decide.splits"
let m_decide_prunings = Telemetry.Counter.make ~always:true "icp.decide.prunings"
let m_decide_certifications =
  Telemetry.Counter.make ~always:true "icp.decide.certifications"
let m_pave_boxes = Telemetry.Counter.make ~always:true "icp.pave.boxes"
let m_pave_splits = Telemetry.Counter.make ~always:true "icp.pave.splits"
let m_pave_prunings = Telemetry.Counter.make ~always:true "icp.pave.prunings"

(* Provenance journal rendering: boxes are pre-rendered to (var, lo, hi)
   arrays so the journal library does not depend on [Interval].  Search
   loops thread a journal node id alongside each (box, depth) work item;
   the id is 0 (and never read) when journaling is off, so the disabled
   search differs from the pre-journal code only by dead tuple slots. *)
let jbounds b =
  Array.of_list
    (List.map (fun (x, i) -> (x, I.lo i, I.hi i)) (Box.to_list b))

let journal_flags jobs =
  [ ("newton", string_of_bool (Deriv.enabled ()));
    ("affine", string_of_bool (Interval.Affine.enabled ()));
    ("affine_budget", string_of_int (Interval.Affine.budget ()));
    ("tm", string_of_bool (Interval.Tm.enabled ()));
    ("cache", string_of_bool (Cache.enabled ()));
    ("tape", string_of_bool (Expr.Tape.enabled ()));
    ("portfolio", string_of_bool (Portfolio.active ()));
    ("jobs", string_of_int jobs) ]

type config = {
  delta : float;  (** perturbation bound δ of the δ-decision problem *)
  epsilon : float;  (** boxes thinner than this are no longer split *)
  max_boxes : int;  (** branch-and-prune work budget *)
  contractor_rounds : int;  (** HC4 fixpoint rounds per box *)
  use_contraction : bool;  (** disable to get bisection-only search (ablation) *)
  jobs : int;  (** worker domains for the search; 1 = sequential path *)
}

let default_config =
  { delta = 1e-3; epsilon = 1e-4; max_boxes = 200_000; contractor_rounds = 10;
    use_contraction = true; jobs = 1 }

type stats = {
  mutable boxes_processed : int;
  mutable splits : int;
  mutable prunings : int;
  mutable max_depth : int;
  mutable certifications : int;  (** candidate witness points probed *)
}

let fresh_stats () =
  { boxes_processed = 0; splits = 0; prunings = 0; max_depth = 0;
    certifications = 0 }

(* Accumulate worker-local stats into [acc] (parallel searches merge the
   per-domain records when they join). *)
let merge_stats acc s =
  acc.boxes_processed <- acc.boxes_processed + s.boxes_processed;
  acc.splits <- acc.splits + s.splits;
  acc.prunings <- acc.prunings + s.prunings;
  acc.max_depth <- Stdlib.max acc.max_depth s.max_depth;
  acc.certifications <- acc.certifications + s.certifications

type witness = {
  point : (string * float) list;  (** a point satisfying φ^δ, when certified *)
  box : Box.t;  (** the sub-ε box the verdict came from *)
  certified : bool;  (** true iff [point] was checked to satisfy φ^δ *)
}

type result =
  | Unsat
  | Delta_sat of witness
  | Unknown of string  (** work budget exhausted before reaching a verdict *)

let pp_result ppf = function
  | Unsat -> Fmt.string ppf "unsat"
  | Delta_sat w ->
      Fmt.pf ppf "delta-sat%s @[%a@]"
        (if w.certified then " (certified witness)" else " (interval verdict)")
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
        w.point
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

(* Candidate witness points of a box: the midpoint plus a bounded sample
   of corners.  Full corner enumeration is 2^n points, which at n = 10
   meant up to 1024 certification probes per box; we now cap the corner
   sample at [max_corner_samples], enumerating exhaustively only while
   that stays exact. *)
let max_corner_samples = 32

(* Deterministic corner selector: bit [d] of sampled corner [j]. *)
let corner_bit j d =
  let h = (j * 73856093) lxor (d * 19349663) in
  let h = h lxor (h lsr 13) in
  let h = h * 1274126177 in
  (h lsr 7) land 1 = 1

let candidate_points box =
  let bindings = Box.to_list box in
  let mid = List.map (fun (x, i) -> (x, I.mid i)) bindings in
  let toggled = List.filter (fun (_, i) -> not (I.is_singleton i)) bindings in
  let n = List.length toggled in
  let corner bit =
    (* [bit d] picks hi (true) or lo (false) for the d-th wide dimension *)
    let d = ref (-1) in
    List.map
      (fun (x, i) ->
        if I.is_singleton i then (x, I.lo i)
        else begin
          incr d;
          (x, if bit !d then I.hi i else I.lo i)
        end)
      bindings
  in
  let corners =
    if n = 0 then []
    else if n <= 5 then
      (* exhaustive: 2^n <= max_corner_samples *)
      List.init (1 lsl n) (fun c -> corner (fun d -> (c lsr d) land 1 = 1))
    else
      (* bounded sample: the two extreme corners plus hashed patterns *)
      corner (fun _ -> false)
      :: corner (fun _ -> true)
      :: List.init (max_corner_samples - 2) (fun j -> corner (corner_bit (j + 2)))
  in
  mid :: corners

let lookup_of env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Solver: unbound variable %S in witness" x)

let certify ~delta stats formula box =
  let try_point pt =
    stats.certifications <- stats.certifications + 1;
    if Expr.Formula.holds_delta ~delta (lookup_of pt) formula then Some pt else None
  in
  List.find_map try_point (candidate_points box)

(* ---- The per-box step shared by the sequential and parallel loops ---- *)

type box_outcome =
  | Pruned
  | Found of result  (** a δ-sat verdict, certified or sub-ε one-sided *)
  | Split_into of Box.t * Box.t

(* Verdict store of refuted (pruned) boxes, shared across queries and
   worker domains.  A pruning is a proof that no point of the box
   satisfies the conjunction, so an exact hit replays it for free and —
   under the Warm policy — a hit on a containing box refutes every
   sub-box (interval monotonicity).  δ-sat verdicts are never stored:
   only refutations are monotone. *)
let refuted_cache : unit Cache.t = Cache.create "icp-refuted"

(* [Contractor.of_atom] erases strictness (Gt and Ge both contract
   against the closed target [-δ, ∞)), but the [sat_possible] pruning in
   [process_box] distinguishes them, so each atom's relation must be
   part of every refutation-store key: a boundary box refuted for a
   strict conjunction is not necessarily refuted for its non-strict
   twin. *)
let rels_key atoms =
  String.concat ""
    (List.map
       (fun (a : Expr.Formula.atom) ->
         match a.rel with Expr.Formula.Gt -> ">" | Expr.Formula.Ge -> "G")
       atoms)

let refuted_group cfg atoms =
  if not (Cache.enabled ()) then None
  else
    let constraints = List.map (Contractor.of_atom ~delta:cfg.delta) atoms in
    let rels = rels_key atoms in
    Some
      (Printf.sprintf "prune|%s|%s|%h|%d|%b|%b|%b|%b|%b"
         (Contractor.fingerprint constraints) rels
         cfg.delta cfg.contractor_rounds cfg.use_contraction
         (Expr.Tape.enabled ())
         (* Newton-era refutations are still proofs, but replaying them
            into a BIOMC_NO_NEWTON=1 run would change that run's search
            trajectory — the kill-switch must reproduce the HC4-only
            search exactly, so the two populations stay separate.  Same
            story for the affine and Taylor-model flags below. *)
         (Deriv.enabled ())
         (Interval.Affine.enabled ())
         (Interval.Tm.enabled ()))

(* Per-query gradient system for smear-guided branching (and, through
   [Contractor.contractor], the Newton contraction).  [None] when the
   derivative layer is disabled or no atom is differentiable; the split
   sites then fall back to widest-dimension bisection — the pre-Newton
   behaviour. *)
let conjunction_deriv ~delta atoms =
  if not (Deriv.enabled ()) then None
  else
    Deriv.compile
      (List.map
         (fun a ->
           let c = Contractor.of_atom ~delta a in
           (c.Contractor.term, c.Contractor.target))
         atoms)

let split_box ?dsys ~min_width b =
  match dsys with
  | Some sys -> Deriv.split sys ~min_width b
  | None -> Box.split ~min_width b

let process_box_inner cfg stats ?refuted ?dsys contract formula b =
  let known_refuted =
    match refuted with
    | None -> false
    | Some group -> (
        match Cache.find refuted_cache ~group b with
        | Cache.Hit () | Cache.Subsumed (_, ()) -> true
        | Cache.Miss -> false)
  in
  let record_refuted () =
    match refuted with
    | None -> ()
    | Some group -> Cache.add refuted_cache ~group b ()
  in
  if known_refuted then begin
    stats.prunings <- stats.prunings + 1;
    (if Journal.on () then
       match refuted with
       | Some group -> Journal.set_reason ~group "cache-replay"
       | None -> ());
    Pruned
  end
  else
  match contract b with
  | None ->
      record_refuted ();
      stats.prunings <- stats.prunings + 1;
      Pruned
  | Some b' ->
      if Box.is_empty b' then begin
        record_refuted ();
        stats.prunings <- stats.prunings + 1;
        Pruned
      end
      else if not (Expr.Formula.sat_possible ~delta:cfg.delta b' formula) then begin
        record_refuted ();
        stats.prunings <- stats.prunings + 1;
        if Journal.on () then Journal.set_reason "sat-impossible";
        Pruned
      end
      else begin
        match certify ~delta:cfg.delta stats formula b' with
        | Some pt -> Found (Delta_sat { point = pt; box = b'; certified = true })
        | None -> (
            match split_box ?dsys ~min_width:cfg.epsilon b' with
            | Some (left, right) -> Split_into (left, right)
            | None ->
                (* Sub-ε box on which φ^δ cannot be refuted: the
                   one-sided δ-sat answer. *)
                Found
                  (Delta_sat
                     { point = Box.mid_env b'; box = b'; certified = false }))
      end

let total_width b = Box.fold (fun _ itv acc -> acc +. I.width itv) b 0.0

(* The telemetry wrapper around the per-box step: pure observation (a
   span and, when tracing, the box measure), so verdicts are identical
   with telemetry on or off. *)
let process_box cfg stats ?refuted ?dsys contract formula b =
  if not (Telemetry.enabled ()) then
    process_box_inner cfg stats ?refuted ?dsys contract formula b
  else begin
    let tok =
      if Telemetry.trace_on () then
        Telemetry.Span.enter ~arg:(total_width b) tm_box
      else Telemetry.Span.enter tm_box
    in
    match process_box_inner cfg stats ?refuted ?dsys contract formula b with
    | r ->
        Telemetry.Span.exit tm_box tok;
        r
    | exception e ->
        Telemetry.Span.exit tm_box tok;
        raise e
  end

let conjunction_contractor cfg atoms =
  if not cfg.use_contraction then fun b -> Some b
  else
    (* Compile once per query (tape-backed unless BIOMC_NO_TAPE=1); the
       closure is shared by all boxes of the search, across domains. *)
    let constraints = List.map (Contractor.of_atom ~delta:cfg.delta) atoms in
    Contractor.contractor ~max_rounds:cfg.contractor_rounds constraints

(* Decide one DNF branch (a conjunction of atoms) on [box], sequentially.
   [spend] consumes one unit of the (possibly shared) box budget and
   reports whether any budget remains; [cancelled] is polled once per box
   so a portfolio winner on another domain stops this search promptly. *)
let decide_conjunction ?(cancelled = fun () -> false) ?root_label ~spend cfg
    stats formula atoms box =
  let contract = conjunction_contractor cfg atoms in
  let refuted = refuted_group cfg atoms in
  let dsys = conjunction_deriv ~delta:cfg.delta atoms in
  let jon = Journal.on () in
  let heur = if Option.is_some dsys then "smear" else "bisect" in
  let rec loop = function
    | [] -> Unsat
    | (b, depth, jid) :: rest ->
        if cancelled () then Unknown "cancelled"
        else begin
          stats.boxes_processed <- stats.boxes_processed + 1;
          if depth > stats.max_depth then stats.max_depth <- depth;
          if jon then begin
            Journal.enter ~id:jid ~depth;
            Journal.clear_reason ()
          end;
          if not (spend ()) then begin
            if jon then
              Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
            Unknown "box budget exhausted"
          end
          else
            match process_box cfg stats ?refuted ?dsys contract formula b with
            | Pruned ->
                if jon then begin
                  let reason, group = Journal.take_reason () in
                  Journal.prune ~id:jid ~reason ?group ()
                end;
                loop rest
            | Found r ->
                (if jon then
                   match r with
                   | Delta_sat w ->
                       Journal.sat ~id:jid ~point:w.point
                         ~certified:w.certified (jbounds w.box)
                   | _ -> ());
                r
            | Split_into (l, r) ->
                stats.splits <- stats.splits + 1;
                let lid, rid =
                  if jon then begin
                    let lid = Journal.fresh_id () in
                    let rid = Journal.fresh_id () in
                    Journal.split ~id:jid ~heur ~left:lid ~right:rid
                      ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                    (lid, rid)
                  end
                  else (0, 0)
                in
                loop ((l, depth + 1, lid) :: (r, depth + 1, rid) :: rest)
        end
  in
  let root_id = if jon then Journal.fresh_id () else 0 in
  if jon then Journal.root ~id:root_id ?label:root_label (jbounds box);
  loop [ (box, 0, root_id) ]

(* ---- Parallel search machinery ---- *)

(* Verdict cell shared by the worker domains.  Only δ-sat and Unknown are
   ever recorded (Unsat is the default on frontier exhaustion); a δ-sat
   may overwrite a pending Unknown — it is the more informative, still
   correct answer — but never the other way around. *)
let make_verdict_cell () = Atomic.make None

let rec record_verdict cell r =
  let cur = Atomic.get cell in
  let should =
    match (cur, r) with
    | None, _ -> true
    | Some (Unknown _), Delta_sat _ -> true
    | Some _, _ -> false
  in
  if should && not (Atomic.compare_and_set cell cur (Some r)) then
    record_verdict cell r

(* Parallel branch-and-prune over one conjunction: [jobs] worker domains
   pull (box, depth) items from a work-stealing frontier.  Any domain
   finding a δ-sat witness stops the frontier; unsat requires
   exhaustion.  [spend w] consumes one unit of worker [w]'s budget
   lease. *)
let decide_conjunction_parallel ~jobs ~spend cfg worker_stats formula atoms box =
  let contract = conjunction_contractor cfg atoms in
  let refuted = refuted_group cfg atoms in
  let dsys = conjunction_deriv ~delta:cfg.delta atoms in
  let jon = Journal.on () in
  let heur = if Option.is_some dsys then "smear" else "bisect" in
  let cell = make_verdict_cell () in
  let root_id = if jon then Journal.fresh_id () else 0 in
  if jon then Journal.root ~id:root_id (jbounds box);
  let fr = Parallel.Pool.Frontier.create [ (box, 0, root_id) ] in
  Parallel.Pool.Frontier.drain ~jobs fr (fun w slot (b, depth, jid) ->
      let stats = worker_stats.(w) in
      stats.boxes_processed <- stats.boxes_processed + 1;
      if depth > stats.max_depth then stats.max_depth <- depth;
      if jon then begin
        Journal.enter ~id:jid ~depth;
        Journal.clear_reason ()
      end;
      if not (spend w) then begin
        if jon then
          Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
        record_verdict cell (Unknown "box budget exhausted");
        Parallel.Pool.Frontier.stop fr
      end
      else
        match process_box cfg stats ?refuted ?dsys contract formula b with
        | Pruned ->
            if jon then begin
              let reason, group = Journal.take_reason () in
              Journal.prune ~id:jid ~reason ?group ()
            end
        | Found r ->
            (if jon then
               match r with
               | Delta_sat w ->
                   Journal.sat ~id:jid ~point:w.point ~certified:w.certified
                     (jbounds w.box)
               | _ -> ());
            record_verdict cell r;
            Parallel.Pool.Frontier.stop fr
        | Split_into (l, r) ->
            stats.splits <- stats.splits + 1;
            let lid, rid =
              if jon then begin
                let lid = Journal.fresh_id () in
                let rid = Journal.fresh_id () in
                Journal.split ~id:jid ~heur ~left:lid ~right:rid
                  ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                (lid, rid)
              end
              else (0, 0)
            in
            (* one publish for both halves; the left is popped next *)
            Parallel.Pool.Frontier.push_batch slot
              [ (l, depth + 1, lid); (r, depth + 1, rid) ]);
  match Atomic.get cell with Some v -> v | None -> Unsat

(* Portfolio over DNF branches: each branch is searched (sequentially)
   by whichever domain picks it up; the first δ-sat cancels the rest
   (the ABC-style first-conclusive-result pattern).  Unsat still needs
   every branch refuted. *)
let decide_branches_portfolio ~jobs ~spend cfg worker_stats branches box =
  let sat = make_verdict_cell () in
  let pending_unknown = Atomic.make None in
  let fr = Parallel.Pool.Frontier.create branches in
  Parallel.Pool.Frontier.drain ~jobs fr (fun w _slot atoms ->
      let stats = worker_stats.(w) in
      let cancelled () = Option.is_some (Atomic.get sat) in
      let conj =
        Expr.Formula.and_ (List.map (fun a -> Expr.Formula.Atom a) atoms)
      in
      match
        decide_conjunction ~cancelled ~root_label:"dnf-branch"
          ~spend:(fun () -> spend w) cfg stats conj atoms box
      with
      | Unsat -> ()
      | Delta_sat _ as r ->
          record_verdict sat r;
          Parallel.Pool.Frontier.stop fr
      | Unknown "cancelled" -> ()
      | Unknown why -> Atomic.set pending_unknown (Some why));
  match Atomic.get sat with
  | Some v -> v
  | None -> (
      match Atomic.get pending_unknown with
      | Some why -> Unknown why
      | None -> Unsat)

(* ---- Strategy portfolio: race solver configurations ----

   In portfolio mode ([BIOMC_PORTFOLIO=1] / [--portfolio]) a query
   races the [Portfolio.lineup ()] strategies on
   [Parallel.Pool.first_conclusive]: each racer runs the sequential
   branch-and-prune with its own branching heuristic, branch order and
   contraction layers (per-strategy [Contractor.contractor ?newton
   ?affine] closures — no global switch flipping), and its own box
   budget lease.  The first conclusive verdict (Unsat or Delta_sat)
   cancels the rest; a racer that exhausts its budget retires Unknown
   and never beats a conclusive one.

   Racers share one refutation group per race: a pruning is a semantic
   proof that no point of the box satisfies the conjunction at this δ —
   valid whichever strategy derived it — so the group key carries only
   the query identity (constraints, strictness, δ, rounds, contraction
   flag) plus the race epoch.  The epoch keeps portfolio-era entries
   out of the flag-keyed single-strategy groups (the
   BIOMC_NO_PORTFOLIO path must replay the pre-portfolio populations
   bit for bit) and out of other races' groups.  Lookups force the
   Warm policy on this group — refutations are monotone, so a racer
   prunes any sub-box of a region another racer refuted, which is the
   whole point of sharing.

   Verdict merge is deterministic: among the conclusive verdicts
   recorded before the race stopped, conclusive-kind priority first
   (Unsat outranks Delta_sat: in the δ-gray zone both are correct, and
   the refutation is the un-weakened claim), then lowest strategy rank
   — the Reach path-order-merge discipline.  At jobs = 1 the racers
   run in rank order, so exactly one concludes and the verdict is a
   deterministic function of (query, lineup). *)

let portfolio_refuted_group cfg ~epoch atoms =
  if not (Cache.enabled ()) then None
  else
    let constraints = List.map (Contractor.of_atom ~delta:cfg.delta) atoms in
    Some
      (Printf.sprintf "pf%d|prune|%s|%s|%h|%d|%b" epoch
         (Contractor.fingerprint constraints)
         (rels_key atoms) cfg.delta cfg.contractor_rounds cfg.use_contraction)

let portfolio_pave_group cfg ~epoch formula =
  if not (Cache.enabled ()) then None
  else
    Some
      (Printf.sprintf "pf%d|pave|%s|%b" epoch
         (Digest.to_hex (Digest.string (Expr.Formula.fingerprint formula)))
         cfg.use_contraction)

let strategy_contractor cfg (s : Portfolio.strategy) ~delta ~max_rounds atoms =
  if not cfg.use_contraction then fun b -> Some b
  else
    let constraints = List.map (Contractor.of_atom ~delta) atoms in
    Contractor.contractor ~max_rounds ~newton:s.Portfolio.newton
      ~affine:s.Portfolio.affine ~tm:s.Portfolio.tm constraints

(* Gradient system for smear branching, compiled iff the strategy asks
   for it (the lineup already filtered smear strategies out under
   BIOMC_NO_NEWTON, so no [Deriv.enabled] gate here — a [?strategy]
   caller forcing smear explicitly gets smear). *)
let strategy_deriv (s : Portfolio.strategy) ~delta atoms =
  if s.Portfolio.branching <> Portfolio.Smear then None
  else
    Deriv.compile
      (List.map
         (fun a ->
           let c = Contractor.of_atom ~delta a in
           (c.Contractor.term, c.Contractor.target))
         atoms)

let strategy_split (s : Portfolio.strategy) ?dsys ~min_width ~depth b =
  match s.Portfolio.order with
  | Portfolio.Round_robin -> Portfolio.round_robin_split ~min_width ~depth b
  | Portfolio.Widest -> split_box ?dsys ~min_width b

(* The racer's per-box step: [process_box_inner] with the strategy's
   split and Warm-forced lookups on the shared race group.  Kept as a
   separate function so the default path's step stays byte-identical. *)
let racer_process_box cfg stats strategy ?refuted ?dsys contract ~depth
    formula b =
  let known_refuted =
    match refuted with
    | None -> false
    | Some group -> (
        match Cache.find ~policy:Cache.Warm refuted_cache ~group b with
        | Cache.Hit () | Cache.Subsumed (_, ()) -> true
        | Cache.Miss -> false)
  in
  let record_refuted () =
    match refuted with
    | None -> ()
    | Some group -> Cache.add refuted_cache ~group b ()
  in
  if known_refuted then begin
    stats.prunings <- stats.prunings + 1;
    (if Journal.on () then
       match refuted with
       | Some group -> Journal.set_reason ~group "cache-replay"
       | None -> ());
    Pruned
  end
  else
    match contract b with
    | None ->
        record_refuted ();
        stats.prunings <- stats.prunings + 1;
        Pruned
    | Some b' ->
        if Box.is_empty b' then begin
          record_refuted ();
          stats.prunings <- stats.prunings + 1;
          Pruned
        end
        else if not (Expr.Formula.sat_possible ~delta:cfg.delta b' formula)
        then begin
          record_refuted ();
          stats.prunings <- stats.prunings + 1;
          if Journal.on () then Journal.set_reason "sat-impossible";
          Pruned
        end
        else begin
          match certify ~delta:cfg.delta stats formula b' with
          | Some pt ->
              Found (Delta_sat { point = pt; box = b'; certified = true })
          | None -> (
              match
                strategy_split strategy ?dsys ~min_width:cfg.epsilon ~depth b'
              with
              | Some (left, right) -> Split_into (left, right)
              | None ->
                  Found
                    (Delta_sat
                       { point = Box.mid_env b'; box = b'; certified = false }))
        end

(* One racer's full decide: the sequential DNF scan with this strategy's
   knobs.  [cancelled] is polled per box; [spend] draws on the racer's
   own budget lease.  Once the budget is out the remaining branches
   could only come back Unknown too, so the racer retires at once. *)
let racer_decide cfg stats ~cancelled ~spend strategy ~epoch formula box =
  let jon = Journal.on () in
  let rec branch_loop = function
    | [] -> Unsat
    | atoms :: rest -> (
        let contract =
          strategy_contractor cfg strategy ~delta:cfg.delta
            ~max_rounds:cfg.contractor_rounds atoms
        in
        let dsys = strategy_deriv strategy ~delta:cfg.delta atoms in
        let refuted = portfolio_refuted_group cfg ~epoch atoms in
        let heur =
          match strategy.Portfolio.order with
          | Portfolio.Round_robin -> "rr"
          | Portfolio.Widest -> if Option.is_some dsys then "smear" else "bisect"
        in
        let conj =
          Expr.Formula.and_ (List.map (fun a -> Expr.Formula.Atom a) atoms)
        in
        let rec loop = function
          | [] -> branch_loop rest
          | (b, depth, jid) :: tail ->
              if cancelled () then Unknown "cancelled"
              else begin
                stats.boxes_processed <- stats.boxes_processed + 1;
                if depth > stats.max_depth then stats.max_depth <- depth;
                if jon then begin
                  Journal.enter ~id:jid ~depth;
                  Journal.clear_reason ()
                end;
                if not (spend ()) then begin
                  if jon then
                    Journal.leaf ~id:jid ~cls:"undecided"
                      ~reason:"budget-exhaust" ();
                  Unknown "box budget exhausted"
                end
                else
                  match
                    racer_process_box cfg stats strategy ?refuted ?dsys
                      contract ~depth conj b
                  with
                  | Pruned ->
                      if jon then begin
                        let reason, group = Journal.take_reason () in
                        Journal.prune ~id:jid ~reason ?group ()
                      end;
                      loop tail
                  | Found r ->
                      (if jon then
                         match r with
                         | Delta_sat w ->
                             Journal.sat ~id:jid ~point:w.point
                               ~certified:w.certified (jbounds w.box)
                         | _ -> ());
                      r
                  | Split_into (l, r) ->
                      stats.splits <- stats.splits + 1;
                      let lid, rid =
                        if jon then begin
                          let lid = Journal.fresh_id () in
                          let rid = Journal.fresh_id () in
                          Journal.split ~id:jid ~heur ~left:lid ~right:rid
                            ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                          (lid, rid)
                        end
                        else (0, 0)
                      in
                      loop ((l, depth + 1, lid) :: (r, depth + 1, rid) :: tail)
              end
        in
        let root_id = if jon then Journal.fresh_id () else 0 in
        if jon then
          Journal.root ~id:root_id ~label:strategy.Portfolio.name (jbounds box);
        (* [loop []] tail-calls [branch_loop rest], so the only way out
           with [Unsat] is every branch of every disjunct refuted. *)
        loop [ (box, 0, root_id) ])
  in
  branch_loop (Expr.Formula.dnf formula)

let conclusive = function Unsat | Delta_sat _ -> true | Unknown _ -> false

(* Deterministic merge over the per-racer results array: conclusive-kind
   priority (Unsat = 0 outranks Delta_sat = 1), then lowest rank. *)
let merge_race_results results =
  let best = ref None in
  Array.iteri
    (fun rank entry ->
      match entry with
      | Some (name, v) when conclusive v ->
          let kind = match v with Unsat -> 0 | _ -> 1 in
          let better =
            match !best with
            | None -> true
            | Some (bkind, brank, _, _) -> (kind, rank) < (bkind, brank)
          in
          if better then best := Some (kind, rank, name, v)
      | _ -> ())
    results;
  !best

let decide_strategy_inner cfg stats strategy formula box =
  let epoch = Portfolio.next_epoch () in
  let lease = Parallel.Pool.Lease.create ~total:cfg.max_boxes () in
  let local = Parallel.Pool.Lease.local lease in
  let r =
    racer_decide cfg stats
      ~cancelled:(fun () -> false)
      ~spend:(fun () -> Parallel.Pool.Lease.spend local)
      strategy ~epoch formula box
  in
  Parallel.Pool.Lease.return_unspent local;
  r

(* The race.  [None] when the lineup degenerates to a single strategy —
   the caller falls through to the default search (racing one strategy
   would only add scheduling overhead). *)
let decide_portfolio cfg stats formula box =
  match Portfolio.lineup () with
  | [] | [ _ ] -> None
  | strategies ->
      let epoch = Portfolio.next_epoch () in
      let jobs = Stdlib.max 1 cfg.jobs in
      let n = List.length strategies in
      let leases =
        Array.init n (fun _ ->
            Parallel.Pool.Lease.create ~total:cfg.max_boxes ())
      in
      let locals = Array.map Parallel.Pool.Lease.local leases in
      let racer_stats = Array.init n (fun _ -> fresh_stats ()) in
      let results = Array.make n None in
      let jon = Journal.on () in
      let tasks =
        List.mapi
          (fun i s ~cancelled ~conclude ->
            (* Construction is inside the task: racers cancelled before
               they run never compile their tapes. *)
            if not (cancelled ()) then begin
              if jon then
                Journal.racer ~event:"start" ~strategy:s.Portfolio.name;
              let spend () = Parallel.Pool.Lease.spend locals.(i) in
              let r =
                racer_decide cfg racer_stats.(i) ~cancelled ~spend s ~epoch
                  formula box
              in
              results.(i) <- Some (s.Portfolio.name, r);
              (if jon then
                 match r with
                 | Unknown "cancelled" ->
                     Journal.racer ~event:"cancel" ~strategy:s.Portfolio.name
                 | Unknown _ ->
                     Journal.racer ~event:"retire" ~strategy:s.Portfolio.name
                 | _ -> ());
              if conclusive r then conclude i
            end)
          strategies
      in
      ignore (Parallel.Pool.first_conclusive ~jobs ~leases:locals tasks);
      Array.iter (merge_stats stats) racer_stats;
      (match merge_race_results results with
      | Some (_, _, name, v) ->
          Portfolio.record_win name;
          Some v
      | None ->
          (* No conclusive racer: surface the first real Unknown. *)
          let why =
            Array.fold_left
              (fun acc entry ->
                match (acc, entry) with
                | None, Some (_, Unknown w) when w <> "cancelled" -> Some w
                | _ -> acc)
              None results
          in
          Some (Unknown (Option.value why ~default:"portfolio: no verdict")))

(* ---- Public entry points ---- *)

(* The pre-portfolio search, byte-identical to what it always was: the
   portfolio layer only runs in front of it, never through it. *)
let decide_default config stats formula box =
  let jobs = Stdlib.max 1 config.jobs in
  begin
        (* One code path for every [jobs] value: the frontier's
           sequential drive executes [jobs = 1] (and any [jobs] on a
           one-domain budget) as a plain loop with the same DFS order,
           budget semantics and leaf/stats accounting as the historical
           sequential search — so "sequential-identical at jobs = 1"
           holds by construction, and a jobs sweep on one core compares
           identical instruction streams instead of two code paths
           whose constant factors drift apart.  The box budget is
           shared across all domains and all DNF branches through one
           leased counter — each worker claims a chunk at a time and
           spends it locally, mirroring the cumulative budget of the
           sequential search without per-box atomic traffic. *)
        let lease = Parallel.Pool.Lease.create ~total:config.max_boxes () in
        let locals =
          Array.init jobs (fun _ -> Parallel.Pool.Lease.local lease)
        in
        let spend w = Parallel.Pool.Lease.spend locals.(w) in
        let worker_stats = Array.init jobs (fun _ -> fresh_stats ()) in
        let branches = Expr.Formula.dnf formula in
        Log.debug (fun m ->
            m "decide: %d DNF branch(es), %d domain(s)" (List.length branches) jobs);
        let r =
          match branches with
          | [ atoms ] ->
              let conj =
                Expr.Formula.and_ (List.map (fun a -> Expr.Formula.Atom a) atoms)
              in
              decide_conjunction_parallel ~jobs ~spend config worker_stats
                conj atoms box
          | _ ->
              decide_branches_portfolio ~jobs ~spend config worker_stats branches
                box
        in
        Array.iter Parallel.Pool.Lease.return_unspent locals;
        Array.iter (merge_stats stats) worker_stats;
        r
  end

let decide_with_stats_inner ?(config = default_config) ?strategy formula box =
  let stats = fresh_stats () in
  let result =
    match formula with
    | Expr.Formula.True ->
        Delta_sat { point = Box.mid_env box; box; certified = true }
    | Expr.Formula.False -> Unsat
    | _ -> (
        match strategy with
        | Some s -> decide_strategy_inner config stats s formula box
        | None ->
            if Portfolio.active () then
              match decide_portfolio config stats formula box with
              | Some r -> r
              | None -> decide_default config stats formula box
            else decide_default config stats formula box)
  in
  (result, stats)

let verdict_string = function
  | Unsat -> "unsat"
  | Delta_sat _ -> "delta-sat"
  | Unknown _ -> "unknown"

let decide_with_stats ?config ?strategy formula box =
  Telemetry.Span.with_ tm_decide (fun () ->
      let jrun =
        if Journal.on () then begin
          let cfg = Option.value config ~default:default_config in
          Journal.begin_run ~kind:"decide"
            ~flags:(journal_flags (Stdlib.max 1 cfg.jobs))
            ()
        end
        else 0
      in
      match decide_with_stats_inner ?config ?strategy formula box with
      | ((result, stats) as r) ->
          Telemetry.Counter.add m_decide_boxes stats.boxes_processed;
          Telemetry.Counter.add m_decide_splits stats.splits;
          Telemetry.Counter.add m_decide_prunings stats.prunings;
          Telemetry.Counter.add m_decide_certifications stats.certifications;
          if jrun <> 0 then
            Journal.end_run
              ~truncated:(match result with Unknown _ -> true | _ -> false)
              ~verdict:(verdict_string result) jrun;
          r
      | exception e ->
          if jrun <> 0 then
            Journal.end_run ~truncated:true ~verdict:"error" jrun;
          raise e)

let decide ?config ?strategy formula box =
  fst (decide_with_stats ?config ?strategy formula box)

(* ---- Paving: partition the box by formula status ----

   Used for guaranteed parameter set synthesis: the box is recursively
   split into regions where the formula certainly holds everywhere
   ([sat]), certainly fails everywhere ([unsat]), and sub-ε [undecided]
   remainder. *)

type paving = {
  sat : Box.t list;
  unsat : Box.t list;
  undecided : Box.t list;
}

let paving_volumes ~over p =
  let vol = List.fold_left (fun acc b -> acc +. Box.volume_over over b) 0.0 in
  (vol p.sat, vol p.unsat, vol p.undecided)

let pp_paving ppf p =
  Fmt.pf ppf "paving: %d sat, %d unsat, %d undecided boxes"
    (List.length p.sat) (List.length p.unsat) (List.length p.undecided)

(* Classify one paving box.  Classification is deterministic, so the
   sequential and parallel pavings contain the same leaf boxes (only the
   list order differs) as long as the budget is not exhausted. *)
type pave_outcome =
  | Pave_sat
  | Pave_unsat
  | Pave_split of Box.t * Box.t
  | Pave_undecided

(* Unsat verdicts in a paving are monotone ("no point of the box
   satisfies the formula"), so they are shared through the same store as
   decide-side prunings, under a formula-keyed group.  Certain/sat
   verdicts are NOT monotone in the useful direction for reuse across
   different boxes and are never stored. *)
let pave_group cfg formula =
  if not (Cache.enabled ()) then None
  else
    Some
      (Printf.sprintf "pave|%s|%b|%b|%b|%b|%b"
         (Digest.to_hex (Digest.string (Expr.Formula.fingerprint formula)))
         cfg.use_contraction
         (Expr.Tape.enabled ())
         (Deriv.enabled ())
         (Interval.Affine.enabled ())
         (Interval.Tm.enabled ()))

(* ---- Enclosure-assisted sat-certification ----

   [Formula.eval_cert] classifies boxes with plain interval evaluation
   of each atom, so a feasible band box only certifies once bisection
   has shrunk the interval overestimate below the band's slack — on
   dependency-rich atoms that is exactly the overestimate the affine
   and Taylor-model walkers remove.  Build a per-query atom certifier
   that re-evaluates Unknown atoms through the tape's enclosure passes
   and intersects the ranges before the zero test; sound because every
   pass encloses the atom's true value set on the box.

   The certifier belongs to the Taylor-model layer: it is built only
   when that layer is live (so [BIOMC_NO_TM=1]/[--no-tm] restores the
   plain {!Expr.Formula.eval_cert} classifier — and with it the
   pre-Taylor-model pave — bit for bit), and the affine pass inside it
   rides along only when the affine layer is also on.  Returns [None]
   when disabled (kill-switches or [BIOMC_NO_TAPE]).

   One single-root tape per distinct atom term, shared by fingerprint;
   scratch is per-domain (Domain.DLS), so the returned certifier may be
   called from racing worker domains. *)
let enclosure_atom_cert ~affine ~tm formula =
  let use_tm = tm && Expr.Tape.enabled () && Interval.Tm.enabled () in
  let use_aff = use_tm && affine && Interval.Affine.enabled () in
  if not use_tm then None
  else begin
    let key (t : Expr.Term.t) =
      let b = Buffer.create 64 in
      Expr.Term.fingerprint_acc b t;
      Buffer.contents b
    in
    let tapes : (string, Expr.Tape.t * string array) Hashtbl.t =
      Hashtbl.create 8
    in
    List.iter
      (fun (a : Expr.Formula.atom) ->
        let k = key a.term in
        if not (Hashtbl.mem tapes k) then begin
          let vars = Expr.Term.free_var_list a.term in
          Hashtbl.add tapes k
            (Expr.Tape.compile ~vars [ a.term ], Array.of_list vars)
        end)
      (Expr.Formula.atoms formula);
    let verdict_of (i : I.t) (rel : Expr.Formula.rel) =
      if I.is_empty i then Expr.Formula.Impossible
      else
        match rel with
        | Expr.Formula.Gt ->
            if I.certainly_gt_zero i then Expr.Formula.Certain
            else if I.certainly_le_zero i then Expr.Formula.Impossible
            else Expr.Formula.Unknown
        | Expr.Formula.Ge ->
            if I.certainly_ge_zero i then Expr.Formula.Certain
            else if I.certainly_lt_zero i then Expr.Formula.Impossible
            else Expr.Formula.Unknown
    in
    Some
      (fun box (a : Expr.Formula.atom) ->
        match Expr.Formula.eval_atom_interval box a with
        | (Expr.Formula.Certain | Expr.Formula.Impossible) as v -> v
        | Expr.Formula.Unknown -> (
            match Hashtbl.find_opt tapes (key a.term) with
            | None -> Expr.Formula.Unknown
            | Some (tp, vars) ->
                let inputs =
                  Array.map
                    (fun x ->
                      match Box.find_opt x box with
                      | Some itv -> itv
                      | None -> I.entire)
                    vars
                in
                let sc = Expr.Tape.dls_scratch tp in
                let out = Array.make 1 I.empty in
                let r = ref (Expr.Term.eval_interval box a.term) in
                let intersect () =
                  let w = I.inter !r out.(0) in
                  if not (I.equal w !r) then begin
                    r := w;
                    true
                  end
                  else false
                in
                if use_aff then
                  Interval.Affine.with_span (fun () ->
                      Expr.Tape.eval_affine_into tp sc ~inputs ~out;
                      if intersect () then
                        Interval.Affine.note_tightening ());
                if use_tm && not (I.is_empty !r) then
                  Interval.Tm.with_span (fun () ->
                      Expr.Tape.eval_tm_into tp sc ~inputs ~out;
                      if intersect () then Interval.Tm.note_tightening ());
                verdict_of !r a.rel))
  end

(* The box classifier used by the paving loops: [eval_cert] with the
   enclosure-assisted atom certifier when one is live. *)
let pave_cert ~affine ~tm formula =
  match enclosure_atom_cert ~affine ~tm formula with
  | None -> Expr.Formula.eval_cert
  | Some atom -> Expr.Formula.eval_cert_with ~atom

let pave_step cfg ~cert ?refuted ?dsys contract formula b =
  let known_unsat =
    match refuted with
    | None -> false
    | Some group -> (
        match Cache.find refuted_cache ~group b with
        | Cache.Hit () | Cache.Subsumed (_, ()) -> true
        | Cache.Miss -> false)
  in
  let record_unsat () =
    match refuted with
    | None -> ()
    | Some group -> Cache.add refuted_cache ~group b ()
  in
  if known_unsat then begin
    (if Journal.on () then
       match refuted with
       | Some group -> Journal.set_reason ~group "cache-replay"
       | None -> ());
    Pave_unsat
  end
  else
  match cert b formula with
  | Expr.Formula.Certain -> Pave_sat
  | Expr.Formula.Impossible ->
      record_unsat ();
      if Journal.on () then Journal.set_reason "eval-impossible";
      Pave_unsat
  | Expr.Formula.Unknown ->
      (* Contraction accelerates carving of the unsat region, but the
         removed shell must be recorded as unsat, not dropped: split
         the difference approximately by checking each component.  To
         stay simple and exact we only use contraction as an
         infeasibility test here. *)
      let infeasible = cfg.use_contraction && Option.is_none (contract b) in
      if infeasible then begin
        record_unsat ();
        Pave_unsat
      end
      else (
        match split_box ?dsys ~min_width:cfg.epsilon b with
        | Some (l, r) -> Pave_split (l, r)
        | None -> Pave_undecided)

(* One racer's paving: the sequential classification loop with this
   strategy's contraction layers and split, spending its own lease and
   sharing the race's pave-refutation group (Warm-forced: pave-unsat is
   monotone).  Returns the paving plus a [truncated] flag — a racer is
   conclusive only when it classified everything within budget.  On
   cancellation the un-visited stack is flushed into [undecided] so the
   result stays a partition of the input box. *)
let racer_pave cfg stats ~cancelled ~spend strategy ~epoch formula box =
  let atoms = Expr.Formula.atoms formula in
  let contract =
    strategy_contractor cfg strategy ~delta:0.0 ~max_rounds:2 atoms
  in
  let cert =
    pave_cert ~affine:strategy.Portfolio.affine ~tm:strategy.Portfolio.tm
      formula
  in
  let dsys = strategy_deriv strategy ~delta:0.0 atoms in
  let refuted = portfolio_pave_group cfg ~epoch formula in
  let known_unsat b =
    match refuted with
    | None -> false
    | Some group -> (
        match Cache.find ~policy:Cache.Warm refuted_cache ~group b with
        | Cache.Hit () | Cache.Subsumed (_, ()) -> true
        | Cache.Miss -> false)
  in
  let record_unsat b =
    match refuted with
    | None -> ()
    | Some group -> Cache.add refuted_cache ~group b ()
  in
  let jon = Journal.on () in
  let heur =
    match strategy.Portfolio.order with
    | Portfolio.Round_robin -> "rr"
    | Portfolio.Widest -> if Option.is_some dsys then "smear" else "bisect"
  in
  let sat = ref [] and unsat = ref [] and undecided = ref [] in
  let truncated = ref false in
  let rec loop = function
    | [] -> ()
    | rest when cancelled () ->
        truncated := true;
        List.iter
          (fun (b, _, jid) ->
            if jon then
              Journal.leaf ~id:jid ~cls:"undecided" ~reason:"cancelled" ();
            undecided := b :: !undecided)
          rest
    | (b, depth, jid) :: tail ->
        if Box.is_empty b then begin
          if jon then Journal.leaf ~id:jid ~cls:"empty" ();
          loop tail
        end
        else if not (spend ()) then begin
          truncated := true;
          if jon then
            Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
          undecided := b :: !undecided;
          loop tail
        end
        else begin
          stats.boxes_processed <- stats.boxes_processed + 1;
          if depth > stats.max_depth then stats.max_depth <- depth;
          if jon then begin
            Journal.enter ~id:jid ~depth;
            Journal.clear_reason ()
          end;
          if known_unsat b then begin
            stats.prunings <- stats.prunings + 1;
            if jon then begin
              (match refuted with
              | Some group -> Journal.set_reason ~group "cache-replay"
              | None -> ());
              let reason, group = Journal.take_reason () in
              Journal.prune ~id:jid ~reason ?group ()
            end;
            unsat := b :: !unsat;
            loop tail
          end
          else
            match cert b formula with
            | Expr.Formula.Certain ->
                if jon then Journal.leaf ~id:jid ~cls:"sat" ();
                sat := b :: !sat;
                loop tail
            | Expr.Formula.Impossible ->
                record_unsat b;
                stats.prunings <- stats.prunings + 1;
                if jon then Journal.prune ~id:jid ~reason:"eval-impossible" ();
                unsat := b :: !unsat;
                loop tail
            | Expr.Formula.Unknown ->
                let infeasible =
                  cfg.use_contraction && Option.is_none (contract b)
                in
                if infeasible then begin
                  record_unsat b;
                  stats.prunings <- stats.prunings + 1;
                  if jon then begin
                    let reason, group = Journal.take_reason () in
                    Journal.prune ~id:jid ~reason ?group ()
                  end;
                  unsat := b :: !unsat;
                  loop tail
                end
                else (
                  match
                    strategy_split strategy ?dsys ~min_width:cfg.epsilon
                      ~depth b
                  with
                  | Some (l, r) ->
                      stats.splits <- stats.splits + 1;
                      let lid, rid =
                        if jon then begin
                          let lid = Journal.fresh_id () in
                          let rid = Journal.fresh_id () in
                          Journal.split ~id:jid ~heur ~left:lid ~right:rid
                            ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                          (lid, rid)
                        end
                        else (0, 0)
                      in
                      loop ((l, depth + 1, lid) :: (r, depth + 1, rid) :: tail)
                  | None ->
                      if jon then
                        Journal.leaf ~id:jid ~cls:"undecided"
                          ~reason:"sub-epsilon" ();
                      undecided := b :: !undecided;
                      loop tail)
        end
  in
  let root_id = if jon then Journal.fresh_id () else 0 in
  if jon then
    Journal.root ~id:root_id ~label:strategy.Portfolio.name (jbounds box);
  loop [ (box, 0, root_id) ];
  ( { sat = !sat; unsat = !unsat; undecided = !undecided }, !truncated )

let pave_strategy_inner cfg strategy formula box =
  let epoch = Portfolio.next_epoch () in
  let stats = fresh_stats () in
  let lease = Parallel.Pool.Lease.create ~total:cfg.max_boxes () in
  let local = Parallel.Pool.Lease.local lease in
  let paving, _truncated =
    racer_pave cfg stats
      ~cancelled:(fun () -> false)
      ~spend:(fun () -> Parallel.Pool.Lease.spend local)
      strategy ~epoch formula box
  in
  Parallel.Pool.Lease.return_unspent local;
  (paving, stats)

(* The pave race: first racer to finish a complete (un-truncated)
   paving wins; conclusive-kind priority is trivial here (there is one
   kind of conclusive), so the merge is just lowest complete rank.
   When every racer was truncated the rank-lowest partial paving is
   returned — same information as the default path's budget-exhausted
   result. *)
let pave_portfolio cfg formula box =
  match Portfolio.lineup () with
  | [] | [ _ ] -> None
  | strategies ->
      let epoch = Portfolio.next_epoch () in
      let jobs = Stdlib.max 1 cfg.jobs in
      let n = List.length strategies in
      let leases =
        Array.init n (fun _ ->
            Parallel.Pool.Lease.create ~total:cfg.max_boxes ())
      in
      let locals = Array.map Parallel.Pool.Lease.local leases in
      let racer_stats = Array.init n (fun _ -> fresh_stats ()) in
      let results = Array.make n None in
      let jon = Journal.on () in
      let tasks =
        List.mapi
          (fun i s ~cancelled ~conclude ->
            if not (cancelled ()) then begin
              if jon then
                Journal.racer ~event:"start" ~strategy:s.Portfolio.name;
              let spend () = Parallel.Pool.Lease.spend locals.(i) in
              let p, truncated =
                racer_pave cfg racer_stats.(i) ~cancelled ~spend s ~epoch
                  formula box
              in
              results.(i) <- Some (s.Portfolio.name, p, truncated);
              (if jon && truncated then
                 Journal.racer
                   ~event:(if cancelled () then "cancel" else "retire")
                   ~strategy:s.Portfolio.name);
              if not truncated then conclude i
            end)
          strategies
      in
      ignore (Parallel.Pool.first_conclusive ~jobs ~leases:locals tasks);
      let stats = fresh_stats () in
      Array.iter (merge_stats stats) racer_stats;
      let rec pick_complete i =
        if i >= n then None
        else
          match results.(i) with
          | Some (name, p, false) -> Some (name, p)
          | _ -> pick_complete (i + 1)
      in
      let rec pick_any i =
        if i >= n then None
        else
          match results.(i) with
          | Some (name, p, _) -> Some (name, p)
          | None -> pick_any (i + 1)
      in
      (match pick_complete 0 with
      | Some (name, p) ->
          Portfolio.record_win name;
          Some (p, stats)
      | None -> (
          match pick_any 0 with
          | Some (name, p) ->
              Portfolio.record_win name;
              Some (p, stats)
          | None -> None))

let pave_default ?(config = default_config) formula box =
  let atoms = Expr.Formula.atoms formula in
  let constraints = List.map (Contractor.of_atom ~delta:0.0) atoms in
  (* Compiled once for the whole paving; used only as an infeasibility
     test, so the atom conjunction over-approximation is sound here. *)
  let contract =
    if config.use_contraction then Contractor.contractor ~max_rounds:2 constraints
    else fun b -> Some b
  in
  let refuted = pave_group config formula in
  let cert =
    pave_cert ~affine:(Interval.Affine.enabled ())
      ~tm:(Interval.Tm.enabled ()) formula
  in
  let dsys = conjunction_deriv ~delta:0.0 atoms in
  let jobs = Stdlib.max 1 config.jobs in
  let stats = fresh_stats () in
  begin
    (* Worker domains pull boxes from the work-stealing frontier and
       collect classified leaves in per-domain lists, merged (with their
       stats) at the end.  The box budget is leased per worker; a box
       that finds the budget exhausted becomes an undecided leaf.  At
       [jobs = 1] (or on a one-domain budget) the frontier's sequential
       drive makes this the historical sequential paving — same DFS
       order, so even the leaf list order is identical. *)
    let jon = Journal.on () in
    let heur = if Option.is_some dsys then "smear" else "bisect" in
    let lease = Parallel.Pool.Lease.create ~total:config.max_boxes () in
    let locals = Array.init jobs (fun _ -> Parallel.Pool.Lease.local lease) in
    let worker_stats = Array.init jobs (fun _ -> fresh_stats ()) in
    let acc = Array.init jobs (fun _ -> (ref [], ref [], ref [])) in
    let root_id = if jon then Journal.fresh_id () else 0 in
    if jon then Journal.root ~id:root_id (jbounds box);
    let fr = Parallel.Pool.Frontier.create [ (box, 0, root_id) ] in
    Parallel.Pool.Frontier.drain ~jobs fr (fun w slot (b, depth, jid) ->
        let st = worker_stats.(w) in
        let sat, unsat, undecided = acc.(w) in
        if Box.is_empty b then begin
          if jon then Journal.leaf ~id:jid ~cls:"empty" ()
        end
        else if not (Parallel.Pool.Lease.spend locals.(w)) then begin
          if jon then
            Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
          undecided := b :: !undecided
        end
        else begin
          st.boxes_processed <- st.boxes_processed + 1;
          if depth > st.max_depth then st.max_depth <- depth;
          if jon then begin
            Journal.enter ~id:jid ~depth;
            Journal.clear_reason ()
          end;
          match pave_step config ~cert ?refuted ?dsys contract formula b with
          | Pave_sat ->
              if jon then Journal.leaf ~id:jid ~cls:"sat" ();
              sat := b :: !sat
          | Pave_unsat ->
              st.prunings <- st.prunings + 1;
              if jon then begin
                let reason, group = Journal.take_reason () in
                Journal.prune ~id:jid ~reason ?group ()
              end;
              unsat := b :: !unsat
          | Pave_split (l, r) ->
              st.splits <- st.splits + 1;
              let lid, rid =
                if jon then begin
                  let lid = Journal.fresh_id () in
                  let rid = Journal.fresh_id () in
                  Journal.split ~id:jid ~heur ~left:lid ~right:rid
                    ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                  (lid, rid)
                end
                else (0, 0)
              in
              Parallel.Pool.Frontier.push_batch slot
                [ (l, depth + 1, lid); (r, depth + 1, rid) ]
          | Pave_undecided ->
              if jon then
                Journal.leaf ~id:jid ~cls:"undecided" ~reason:"sub-epsilon" ();
              undecided := b :: !undecided
        end);
    Array.iter Parallel.Pool.Lease.return_unspent locals;
    Array.iter (merge_stats stats) worker_stats;
    let collect pick =
      Array.fold_left (fun l a -> !(pick a) @ l) [] acc
    in
    ( { sat = collect (fun (s, _, _) -> s);
        unsat = collect (fun (_, u, _) -> u);
        undecided = collect (fun (_, _, d) -> d) },
      stats )
  end

let pave_with_stats_inner ?(config = default_config) ?strategy formula box =
  match strategy with
  | Some s -> pave_strategy_inner config s formula box
  | None ->
      if Portfolio.active () then
        match pave_portfolio config formula box with
        | Some r -> r
        | None -> pave_default ~config formula box
      else pave_default ~config formula box

let pave_with_stats ?config ?strategy formula box =
  Telemetry.Span.with_ tm_pave (fun () ->
      let jrun =
        if Journal.on () then begin
          let cfg = Option.value config ~default:default_config in
          Journal.begin_run ~kind:"pave"
            ~flags:(journal_flags (Stdlib.max 1 cfg.jobs))
            ()
        end
        else 0
      in
      match pave_with_stats_inner ?config ?strategy formula box with
      | ((paving, stats) as r) ->
          Telemetry.Counter.add m_pave_boxes stats.boxes_processed;
          Telemetry.Counter.add m_pave_splits stats.splits;
          Telemetry.Counter.add m_pave_prunings stats.prunings;
          if jrun <> 0 then
            Journal.end_run
              ~verdict:
                (Printf.sprintf "paving sat=%d unsat=%d undecided=%d"
                   (List.length paving.sat) (List.length paving.unsat)
                   (List.length paving.undecided))
              jrun;
          r
      | exception e ->
          if jrun <> 0 then
            Journal.end_run ~truncated:true ~verdict:"error" jrun;
          raise e)

let pave ?config ?strategy formula box =
  fst (pave_with_stats ?config ?strategy formula box)
