(* Branch-and-prune δ-decision procedure (the dReal-equivalent core).

   Given a bounded quantifier-free L_RF formula φ and a box of variable
   domains, [decide] answers (Theorem 1 of the paper):
   - [Unsat]      — φ has no solution in the box;
   - [Delta_sat]  — the δ-weakening φ^δ is satisfiable (with a witness).

   The search follows the DPLL(ICP) recipe: the formula is split into its
   DNF branches (the Boolean search), and each conjunction of atoms is
   handled by HC4 fixpoint contraction + bisection (the theory search).
   A δ-sat verdict is preferentially certified by an explicit point
   witness of φ^δ (midpoint/corner sampling); when certification at a
   sub-ε box fails, the one-sided-error answer licensed by δ-decidability
   is returned with the box as the witness region. *)

module I = Interval.Ia
module Box = Interval.Box

let src = Logs.Src.create "icp.solver" ~doc:"delta-decision solver"
module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  delta : float;  (** perturbation bound δ of the δ-decision problem *)
  epsilon : float;  (** boxes thinner than this are no longer split *)
  max_boxes : int;  (** branch-and-prune work budget *)
  contractor_rounds : int;  (** HC4 fixpoint rounds per box *)
  use_contraction : bool;  (** disable to get bisection-only search (ablation) *)
}

let default_config =
  { delta = 1e-3; epsilon = 1e-4; max_boxes = 200_000; contractor_rounds = 10;
    use_contraction = true }

type stats = {
  mutable boxes_processed : int;
  mutable splits : int;
  mutable prunings : int;
  mutable max_depth : int;
}

let fresh_stats () = { boxes_processed = 0; splits = 0; prunings = 0; max_depth = 0 }

type witness = {
  point : (string * float) list;  (** a point satisfying φ^δ, when certified *)
  box : Box.t;  (** the sub-ε box the verdict came from *)
  certified : bool;  (** true iff [point] was checked to satisfy φ^δ *)
}

type result =
  | Unsat
  | Delta_sat of witness
  | Unknown of string  (** work budget exhausted before reaching a verdict *)

let pp_result ppf = function
  | Unsat -> Fmt.string ppf "unsat"
  | Delta_sat w ->
      Fmt.pf ppf "delta-sat%s @[%a@]"
        (if w.certified then " (certified witness)" else " (interval verdict)")
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
        w.point
  | Unknown why -> Fmt.pf ppf "unknown (%s)" why

(* Candidate witness points of a box: midpoint plus corners (capped). *)
let candidate_points box =
  let bindings = Box.to_list box in
  let mid = List.map (fun (x, i) -> (x, I.mid i)) bindings in
  let n = List.length bindings in
  if n > 10 then [ mid ]
  else
    let corners =
      List.fold_left
        (fun acc (x, i) ->
          if I.is_singleton i then List.map (fun pt -> (x, I.lo i) :: pt) acc
          else
            List.concat_map
              (fun pt -> [ (x, I.lo i) :: pt; (x, I.hi i) :: pt ])
              acc)
        [ [] ] bindings
    in
    mid :: corners

let lookup_of env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Solver: unbound variable %S in witness" x)

let certify ~delta formula box =
  let try_point pt =
    if Expr.Formula.holds_delta ~delta (lookup_of pt) formula then Some pt else None
  in
  List.find_map try_point (candidate_points box)

(* Decide one DNF branch (a conjunction of atoms) on [box]. *)
let decide_conjunction cfg stats formula atoms box =
  let constraints = List.map (Contractor.of_atom ~delta:cfg.delta) atoms in
  let contract b =
    if not cfg.use_contraction then Some b
    else Contractor.fixpoint ~max_rounds:cfg.contractor_rounds constraints b
  in
  (* Depth-first over a stack of boxes. *)
  let stack = ref [ (box, 0) ] in
  let verdict = ref None in
  (try
     while !verdict = None do
       match !stack with
       | [] -> verdict := Some Unsat
       | (b, depth) :: rest ->
           stack := rest;
           stats.boxes_processed <- stats.boxes_processed + 1;
           if depth > stats.max_depth then stats.max_depth <- depth;
           if stats.boxes_processed > cfg.max_boxes then
             verdict := Some (Unknown "box budget exhausted")
           else begin
             match contract b with
             | None -> stats.prunings <- stats.prunings + 1
             | Some b' ->
                 if Box.is_empty b' then stats.prunings <- stats.prunings + 1
                 else if
                   not (Expr.Formula.sat_possible ~delta:cfg.delta b' formula)
                 then stats.prunings <- stats.prunings + 1
                 else begin
                   match certify ~delta:cfg.delta formula b' with
                   | Some pt ->
                       verdict :=
                         Some (Delta_sat { point = pt; box = b'; certified = true })
                   | None -> (
                       match Box.split ~min_width:cfg.epsilon b' with
                       | Some (left, right) ->
                           stats.splits <- stats.splits + 1;
                           stack := (left, depth + 1) :: (right, depth + 1) :: !stack
                       | None ->
                           (* Sub-ε box on which φ^δ cannot be refuted:
                              the one-sided δ-sat answer. *)
                           verdict :=
                             Some
                               (Delta_sat
                                  { point = Box.mid_env b'; box = b'; certified = false }))
                 end
           end
     done
   with Stack_overflow -> verdict := Some (Unknown "stack overflow"));
  match !verdict with Some v -> v | None -> Unknown "internal"

(* ---- Public entry points ---- *)

let decide_with_stats ?(config = default_config) formula box =
  let stats = fresh_stats () in
  let result =
    match formula with
    | Expr.Formula.True ->
        Delta_sat { point = Box.mid_env box; box; certified = true }
    | Expr.Formula.False -> Unsat
    | _ ->
        let branches = Expr.Formula.dnf formula in
        Log.debug (fun m -> m "decide: %d DNF branch(es)" (List.length branches));
        (* Try branches in order; an Unknown branch only matters if no
           later branch is δ-sat. *)
        let rec run pending_unknown = function
          | [] -> (
              match pending_unknown with Some why -> Unknown why | None -> Unsat)
          | atoms :: rest -> (
              let conj =
                Expr.Formula.and_ (List.map (fun a -> Expr.Formula.Atom a) atoms)
              in
              match decide_conjunction config stats conj atoms box with
              | Unsat -> run pending_unknown rest
              | Delta_sat w -> Delta_sat w
              | Unknown why -> run (Some why) rest)
        in
        run None branches
  in
  (result, stats)

let decide ?config formula box = fst (decide_with_stats ?config formula box)

(* ---- Paving: partition the box by formula status ----

   Used for guaranteed parameter set synthesis: the box is recursively
   split into regions where the formula certainly holds everywhere
   ([sat]), certainly fails everywhere ([unsat]), and sub-ε [undecided]
   remainder. *)

type paving = {
  sat : Box.t list;
  unsat : Box.t list;
  undecided : Box.t list;
}

let paving_volumes ~over p =
  let vol = List.fold_left (fun acc b -> acc +. Box.volume_over over b) 0.0 in
  (vol p.sat, vol p.unsat, vol p.undecided)

let pp_paving ppf p =
  Fmt.pf ppf "paving: %d sat, %d unsat, %d undecided boxes"
    (List.length p.sat) (List.length p.unsat) (List.length p.undecided)

let pave ?(config = default_config) formula box =
  let atoms = Expr.Formula.atoms formula in
  let constraints = List.map (Contractor.of_atom ~delta:0.0) atoms in
  let sat = ref [] and unsat = ref [] and undecided = ref [] in
  let budget = ref config.max_boxes in
  let rec go b =
    if Box.is_empty b then ()
    else if !budget <= 0 then undecided := b :: !undecided
    else begin
      decr budget;
      match Expr.Formula.eval_cert b formula with
      | Expr.Formula.Certain -> sat := b :: !sat
      | Expr.Formula.Impossible -> unsat := b :: !unsat
      | Expr.Formula.Unknown -> (
          (* Contraction accelerates carving of the unsat region, but the
             removed shell must be recorded as unsat, not dropped: split
             the difference approximately by checking each component.  To
             stay simple and exact we only use contraction as an
             infeasibility test here. *)
          let infeasible =
            config.use_contraction
            && Contractor.fixpoint ~max_rounds:2 constraints b = None
          in
          if infeasible then unsat := b :: !unsat
          else
            match Box.split ~min_width:config.epsilon b with
            | Some (l, r) ->
                go l;
                go r
            | None -> undecided := b :: !undecided)
    end
  in
  go box;
  { sat = !sat; unsat = !unsat; undecided = !undecided }
