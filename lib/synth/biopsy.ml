(* Guaranteed parameter set synthesis for single-mode ODE models against
   time-series bands (the BioPSy-equivalent, Section IV-A of the paper).

   Given an ODE system, a box of admissible parameters, and data bands,
   the parameter box is paved into:
   - [consistent]: every parameter in the box yields a trajectory passing
     through all bands (proved: the validated enclosure at each data time
     is inside the band);
   - [inconsistent]: no parameter can fit (proved: some enclosure misses
     its band entirely);
   - [undecided]: sub-ε remainder.

   An `unsat` over the whole box — [inconsistent] covering everything — is
   model *falsification*: no parameter value lets the model explain the
   data (the paper's model-rejection arrow in Fig. 2). *)

module I = Interval.Ia
module Box = Interval.Box

let src = Logs.Src.create "synth.biopsy" ~doc:"guaranteed parameter synthesis"
module Log = (val Logs.src_log src : Logs.LOG)

let tm_synth = Telemetry.Span.probe "biopsy.synthesize"
let tm_classify = Telemetry.Span.probe "biopsy.classify"
let m_boxes = Telemetry.Counter.make "biopsy.boxes"

(* Provenance journal support (same conventions as Icp.Solver). *)
let jbounds b =
  Array.of_list
    (List.map (fun (x, i) -> (x, I.lo i, I.hi i)) (Box.to_list b))

type config = {
  epsilon : float;  (** minimum parameter-box width *)
  max_boxes : int;
  enclosure : Ode.Enclosure.config;
  jobs : int;  (** worker domains paving in parallel; 1 = sequential *)
}

let default_config =
  { epsilon = 1e-2; max_boxes = 5_000; enclosure = Ode.Enclosure.default_config;
    jobs = 1 }

type problem = {
  sys : Ode.System.t;
  param_box : Box.t;
  init : Box.t;  (** initial state (box; singleton components = known) *)
  data : Data.t;
}

let problem ~sys ~param_box ~init ~data =
  List.iter
    (fun p ->
      if not (Box.mem_var p param_box) then
        invalid_arg (Printf.sprintf "Biopsy.problem: parameter %S has no box" p))
    (Ode.System.params sys);
  List.iter
    (fun v ->
      if not (Box.mem_var v init) then
        invalid_arg (Printf.sprintf "Biopsy.problem: initial state misses %S" v))
    (Ode.System.vars sys);
  List.iter
    (fun (p : Data.point) ->
      if not (List.mem p.Data.var (Ode.System.vars sys)) then
        invalid_arg (Printf.sprintf "Biopsy.problem: data for unknown variable %S" p.Data.var))
    data;
  { sys; param_box; init; data }

type verdict = All_fit | None_fit | Split_

(* Verdict store for parameter-box classification.  [classify] is a pure,
   deterministic function of (problem, config, box), so exact replays are
   identity-preserving.  Under the Warm policy, a containing box's
   conclusive verdict transfers to sub-boxes: All_fit and None_fit are
   both statements about the *true* trajectories of every parameter in
   the box (proved through the parent's validated tube, which encloses
   the sub-box's trajectories too); only Split_ must be recomputed. *)
let verdict_cache : verdict Cache.t = Cache.create ~group_capacity:4096 "biopsy"

let problem_group cfg prob =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "biopsy|";
  Buffer.add_string buf (Ode.System.digest prob.sys);
  Buffer.add_char buf '|';
  Buffer.add_string buf (Ode.Enclosure.config_fingerprint cfg.enclosure);
  Buffer.add_string buf (Printf.sprintf "|%b|" (Expr.Tape.enabled ()));
  List.iter
    (fun (v, itv) ->
      Buffer.add_string buf
        (Printf.sprintf "%s=%h,%h;" v (I.lo itv) (I.hi itv)))
    (Box.to_list prob.init);
  Buffer.add_char buf '|';
  List.iter
    (fun (p : Data.point) ->
      Buffer.add_string buf
        (Printf.sprintf "%h:%s=%h±%h;" p.Data.time p.Data.var p.Data.value
           p.Data.tolerance))
    prob.data;
  Digest.to_hex (Digest.string (Buffer.contents buf))

(* Classify one parameter box against the data using a validated tube. *)
let classify_uncached cfg prob prepared pbox =
  let t_end = Data.horizon prob.data in
  let tube =
    Ode.Enclosure.flow ~config:cfg.enclosure ~prepared ~params:pbox
      ~init:prob.init ~t_end prob.sys
  in
  if not tube.Ode.Enclosure.complete then Split_
  else begin
    let rec go all_inside = function
      | [] -> if all_inside then All_fit else Split_
      | (p : Data.point) :: rest -> (
          match Ode.Enclosure.state_at tube p.Data.time with
          | None -> Split_ (* should not happen on a complete tube *)
          | Some state ->
              let x = Box.find p.Data.var state in
              let b = Data.band p in
              if I.is_empty (I.inter x b) then begin
                if Journal.on () then Journal.set_reason "band-miss";
                None_fit
              end
              else go (all_inside && I.subset x b) rest)
    in
    go true prob.data
  end

(* [group] is [problem_group cfg prob] when caching is on, [None] when
   off (computed once per synthesis, not per box). *)
let classify_inner cfg prob prepared ?group pbox =
  match group with
  | None -> classify_uncached cfg prob prepared pbox
  | Some group -> (
      match Cache.find verdict_cache ~group pbox with
      | Cache.Hit v ->
          if v = None_fit && Journal.on () then
            Journal.set_reason ~group "cache-replay";
          v
      | Cache.Subsumed (_, (All_fit | None_fit as v)) ->
          Cache.note_warm_start verdict_cache ~saved_iterations:0;
          if v = None_fit && Journal.on () then
            Journal.set_reason ~group "cache-replay";
          v
      | Cache.Subsumed (_, Split_) | Cache.Miss ->
          let v = classify_uncached cfg prob prepared pbox in
          Cache.add verdict_cache ~group pbox v;
          v)

(* Per-box classification, the hot path of the paving loop: count every
   box and span it when tracing, without allocating a closure when
   telemetry is off. *)
let classify cfg prob prepared ?group pbox =
  Telemetry.Counter.incr m_boxes;
  if not (Telemetry.enabled ()) then classify_inner cfg prob prepared ?group pbox
  else begin
    let tok = Telemetry.Span.enter tm_classify in
    match classify_inner cfg prob prepared ?group pbox with
    | v ->
        Telemetry.Span.exit tm_classify tok;
        v
    | exception e ->
        Telemetry.Span.exit tm_classify tok;
        raise e
  end

type result = {
  consistent : Box.t list;
  inconsistent : Box.t list;
  undecided : Box.t list;
  boxes_explored : int;
}

let volumes prob r =
  let over = Box.vars prob.param_box in
  let vol = List.fold_left (fun acc b -> acc +. Box.volume_over over b) 0.0 in
  (vol r.consistent, vol r.inconsistent, vol r.undecided)

let pp_result ppf r =
  Fmt.pf ppf "biopsy: %d consistent, %d inconsistent, %d undecided (in %d boxes)"
    (List.length r.consistent) (List.length r.inconsistent)
    (List.length r.undecided) r.boxes_explored

(* One portfolio racer's paving: the sequential loop with a pinned split
   order, pollable for cancellation.  [truncated] records whether any
   box was left undecided for budget/cancellation reasons rather than
   sub-ε — only an un-truncated paving is conclusive in a race.  The
   verdict store group is strategy-independent (a tube classification
   does not depend on how the paving splits), so racers share every
   All_fit/None_fit verdict: that store is the cross-racer pruning
   channel here. *)
let pave_order cfg prob prepared ?group ?jlabel ~cancelled ~order () =
  let consistent = ref [] and inconsistent = ref [] and undecided = ref [] in
  let explored = ref 0 in
  let budget = ref cfg.max_boxes in
  let truncated = ref false in
  let jon = Journal.on () && Journal.in_run () in
  let heur =
    match order with
    | Icp.Portfolio.Round_robin -> "rr"
    | Icp.Portfolio.Widest -> "bisect"
  in
  let split ~depth pbox =
    match order with
    | Icp.Portfolio.Round_robin ->
        Icp.Portfolio.round_robin_split ~min_width:cfg.epsilon ~depth pbox
    | Icp.Portfolio.Widest -> Box.split ~min_width:cfg.epsilon pbox
  in
  let rec go depth pbox jid =
    if cancelled () || !budget <= 0 then begin
      (* Flushing the box into [undecided] keeps the result a partition
         even when the race cancels this racer mid-paving. *)
      truncated := true;
      if jon then
        Journal.leaf ~id:jid ~cls:"undecided"
          ~reason:(if cancelled () then "cancelled" else "budget-exhaust")
          ();
      undecided := pbox :: !undecided
    end
    else begin
      decr budget;
      incr explored;
      if jon then begin
        Journal.enter ~id:jid ~depth;
        Journal.clear_reason ()
      end;
      match classify cfg prob prepared ?group pbox with
      | All_fit ->
          if jon then Journal.leaf ~id:jid ~cls:"consistent" ();
          consistent := pbox :: !consistent
      | None_fit ->
          if jon then begin
            let reason, group = Journal.take_reason () in
            Journal.prune ~id:jid ~reason ?group ()
          end;
          inconsistent := pbox :: !inconsistent
      | Split_ -> (
          match split ~depth pbox with
          | Some (l, r) ->
              let lid, rid =
                if jon then begin
                  let lid = Journal.fresh_id () in
                  let rid = Journal.fresh_id () in
                  Journal.split ~id:jid ~heur ~left:lid ~right:rid
                    ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                  (lid, rid)
                end
                else (0, 0)
              in
              go (depth + 1) l lid;
              go (depth + 1) r rid
          | None ->
              if jon then
                Journal.leaf ~id:jid ~cls:"undecided" ~reason:"sub-epsilon" ();
              undecided := pbox :: !undecided)
    end
  in
  let root_id = if jon then Journal.fresh_id () else 0 in
  if jon then Journal.root ~id:root_id ?label:jlabel (jbounds prob.param_box);
  go 0 prob.param_box root_id;
  ( {
      consistent = !consistent;
      inconsistent = !inconsistent;
      undecided = !undecided;
      boxes_explored = !explored;
    },
    !truncated )

(* Race the paving split orders of the portfolio lineup (the only knob
   of a strategy that biopsy classification responds to — there are no
   contractors here, so Newton/affine/smear are moot and the lineup
   collapses to its distinct orders, rank-ordered).  First racer to
   finish an un-truncated paving wins; all truncated → the rank-lowest
   partial paving, same information as the default budget-exhausted
   result. *)
let synthesize_portfolio cfg prob prepared ?group () =
  let orders =
    List.fold_left
      (fun acc (s : Icp.Portfolio.strategy) ->
        if List.exists (fun (_, o) -> o = s.Icp.Portfolio.order) acc then acc
        else (s.Icp.Portfolio.name, s.Icp.Portfolio.order) :: acc)
      [] (Icp.Portfolio.lineup ())
    |> List.rev
  in
  match orders with
  | [] | [ _ ] -> None
  | orders ->
      let jobs = Stdlib.max 1 cfg.jobs in
      let n = List.length orders in
      let results = Array.make n None in
      let jon = Journal.on () in
      let tasks =
        List.mapi
          (fun i (name, order) ~cancelled ~conclude ->
            if not (cancelled ()) then begin
              if jon then Journal.racer ~event:"start" ~strategy:name;
              let r, truncated =
                pave_order cfg prob prepared ?group ~jlabel:name ~cancelled
                  ~order ()
              in
              results.(i) <- Some (name, r, truncated);
              (if jon && truncated then
                 Journal.racer
                   ~event:(if cancelled () then "cancel" else "retire")
                   ~strategy:name);
              if not truncated then conclude i
            end)
          orders
      in
      ignore (Parallel.Pool.first_conclusive ~jobs tasks);
      let rec pick want_complete i =
        if i >= n then None
        else
          match results.(i) with
          | Some (name, r, truncated) when (not want_complete) || not truncated
            ->
              Some (name, r)
          | _ -> pick want_complete (i + 1)
      in
      (match pick true 0 with
      | Some (name, r) ->
          Icp.Portfolio.record_win name;
          Some r
      | None -> (
          match pick false 0 with
          | Some (name, r) ->
              Icp.Portfolio.record_win name;
              Some r
          | None -> None))

let synthesize ?(config = default_config) ?strategy prob =
  Telemetry.Span.with_ tm_synth @@ fun () ->
  let jobs = Stdlib.max 1 config.jobs in
  let jrun =
    if Journal.on () then
      Journal.begin_run ~kind:"synth"
        ~flags:
          [ ("newton", string_of_bool (Icp.Deriv.enabled ()));
            ("affine", string_of_bool (Interval.Affine.enabled ()));
            ("cache", string_of_bool (Cache.enabled ()));
            ("tape", string_of_bool (Expr.Tape.enabled ()));
            ("portfolio", string_of_bool (Icp.Portfolio.active ()));
            ("jobs", string_of_int jobs) ]
        ()
    else 0
  in
  let jon = jrun <> 0 in
  let finish result =
    if jon then
      Journal.end_run
        ~verdict:
          (Printf.sprintf "synthesis consistent=%d inconsistent=%d undecided=%d"
             (List.length result.consistent)
             (List.length result.inconsistent)
             (List.length result.undecided))
        jrun;
    result
  in
  let body () =
  let prepared = Ode.Enclosure.prepare prob.sys in
  let group =
    if Cache.enabled () then Some (problem_group config prob) else None
  in
  let portfolio_result =
    match strategy with
    | Some (s : Icp.Portfolio.strategy) ->
        Some
          (fst
             (pave_order config prob prepared ?group
                ~jlabel:s.Icp.Portfolio.name
                ~cancelled:(fun () -> false)
                ~order:s.Icp.Portfolio.order ()))
    | None ->
        if Icp.Portfolio.active () then
          synthesize_portfolio config prob prepared ?group ()
        else None
  in
  let result =
    match portfolio_result with
    | Some r -> r
    | None ->
    if jobs = 1 then begin
      let consistent = ref [] and inconsistent = ref [] and undecided = ref [] in
      let explored = ref 0 in
      let budget = ref config.max_boxes in
      let rec go depth pbox jid =
        if !budget <= 0 then begin
          if jon then
            Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust" ();
          undecided := pbox :: !undecided
        end
        else begin
          decr budget;
          incr explored;
          if jon then begin
            Journal.enter ~id:jid ~depth;
            Journal.clear_reason ()
          end;
          match classify config prob prepared ?group pbox with
          | All_fit ->
              if jon then Journal.leaf ~id:jid ~cls:"consistent" ();
              consistent := pbox :: !consistent
          | None_fit ->
              if jon then begin
                let reason, group = Journal.take_reason () in
                Journal.prune ~id:jid ~reason ?group ()
              end;
              inconsistent := pbox :: !inconsistent
          | Split_ -> (
              match Box.split ~min_width:config.epsilon pbox with
              | Some (l, r) ->
                  let lid, rid =
                    if jon then begin
                      let lid = Journal.fresh_id () in
                      let rid = Journal.fresh_id () in
                      Journal.split ~id:jid ~heur:"bisect" ~left:lid ~right:rid
                        ~left_bounds:(jbounds l) ~right_bounds:(jbounds r);
                      (lid, rid)
                    end
                    else (0, 0)
                  in
                  go (depth + 1) l lid;
                  go (depth + 1) r rid
              | None ->
                  if jon then
                    Journal.leaf ~id:jid ~cls:"undecided" ~reason:"sub-epsilon"
                      ();
                  undecided := pbox :: !undecided)
        end
      in
      let root_id = if jon then Journal.fresh_id () else 0 in
      if jon then Journal.root ~id:root_id (jbounds prob.param_box);
      go 0 prob.param_box root_id;
      {
        consistent = !consistent;
        inconsistent = !inconsistent;
        undecided = !undecided;
        boxes_explored = !explored;
      }
    end
    else begin
      (* Worker domains share the paving frontier and a leased global
         budget; [classify] is a pure function of the box, so the leaf
         set matches the sequential paving when the budget is not hit
         (only list order may differ).  [boxes_explored] counts actual
         spends — [Lease.consumed] is exact once every worker returned
         its lease, so it agrees with the sequential count. *)
      let lease = Parallel.Pool.Lease.create ~total:config.max_boxes () in
      let locals =
        Array.init jobs (fun _ -> Parallel.Pool.Lease.local lease)
      in
      let accs = Array.init jobs (fun _ -> (ref [], ref [], ref [])) in
      let root_id = if jon then Journal.fresh_id () else 0 in
      if jon then Journal.root ~id:root_id (jbounds prob.param_box);
      let fr = Parallel.Pool.Frontier.create [ (prob.param_box, 0, root_id) ] in
      Parallel.Pool.Frontier.drain ~jobs fr (fun w slot (pbox, depth, jid) ->
          let consistent, inconsistent, undecided = accs.(w) in
          if not (Parallel.Pool.Lease.spend locals.(w)) then begin
            if jon then
              Journal.leaf ~id:jid ~cls:"undecided" ~reason:"budget-exhaust"
                ();
            undecided := pbox :: !undecided
          end
          else begin
            if jon then begin
              Journal.enter ~id:jid ~depth;
              Journal.clear_reason ()
            end;
            match classify config prob prepared ?group pbox with
            | All_fit ->
                if jon then Journal.leaf ~id:jid ~cls:"consistent" ();
                consistent := pbox :: !consistent
            | None_fit ->
                if jon then begin
                  let reason, group = Journal.take_reason () in
                  Journal.prune ~id:jid ~reason ?group ()
                end;
                inconsistent := pbox :: !inconsistent
            | Split_ -> (
                match Box.split ~min_width:config.epsilon pbox with
                | Some (l, r) ->
                    let lid, rid =
                      if jon then begin
                        let lid = Journal.fresh_id () in
                        let rid = Journal.fresh_id () in
                        Journal.split ~id:jid ~heur:"bisect" ~left:lid
                          ~right:rid ~left_bounds:(jbounds l)
                          ~right_bounds:(jbounds r);
                        (lid, rid)
                      end
                      else (0, 0)
                    in
                    Parallel.Pool.Frontier.push_batch slot
                      [ (r, depth + 1, rid); (l, depth + 1, lid) ]
                | None ->
                    if jon then
                      Journal.leaf ~id:jid ~cls:"undecided"
                        ~reason:"sub-epsilon" ();
                    undecided := pbox :: !undecided)
          end);
      Array.iter Parallel.Pool.Lease.return_unspent locals;
      let explored = Parallel.Pool.Lease.consumed lease in
      Array.fold_left
        (fun acc (c, i, u) ->
          {
            acc with
            consistent = !c @ acc.consistent;
            inconsistent = !i @ acc.inconsistent;
            undecided = !u @ acc.undecided;
          })
        { consistent = []; inconsistent = []; undecided = [];
          boxes_explored = explored }
        accs
    end
  in
  Log.info (fun m ->
      m "synthesis finished after %d boxes (%d/%d/%d)" result.boxes_explored
        (List.length result.consistent)
        (List.length result.inconsistent)
        (List.length result.undecided));
  result
  in
  match body () with
  | r -> finish r
  | exception e ->
      if jon then Journal.end_run ~truncated:true ~verdict:"error" jrun;
      raise e

(* The model is falsified when no parameter box survives. *)
let falsified r = r.consistent = [] && r.undecided = []

(* CSV of the paving (one row per box: class, then lo/hi per parameter),
   for external plotting of the feasible region. *)
let to_csv prob r =
  let params = Box.vars prob.param_box in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (String.concat ","
       ("class" :: List.concat_map (fun p -> [ p ^ "_lo"; p ^ "_hi" ]) params));
  Buffer.add_char buf '\n';
  let dump cls boxes =
    List.iter
      (fun b ->
        Buffer.add_string buf cls;
        List.iter
          (fun p ->
            let itv = Box.find p b in
            Buffer.add_string buf (Printf.sprintf ",%.9g,%.9g" (I.lo itv) (I.hi itv)))
          params;
        Buffer.add_char buf '\n')
      boxes
  in
  dump "consistent" r.consistent;
  dump "inconsistent" r.inconsistent;
  dump "undecided" r.undecided;
  Buffer.contents buf

(* Point estimate: cheapest SSE among midpoints of surviving boxes,
   refined by a golden-section-free local probe (coordinate descent). *)
let fit ?(config = default_config) ?(refine_iters = 40) prob =
  let r = synthesize ~config prob in
  let candidates = List.map Box.mid_env (r.consistent @ r.undecided) in
  let t_end = Data.horizon prob.data in
  let init_env = Box.mid_env prob.init in
  let cost env =
    let trace =
      Ode.Integrate.simulate ~params:env ~init:init_env ~t_end prob.sys
    in
    Data.sse prob.data trace
  in
  match candidates with
  | [] -> None
  | first :: rest ->
      let best =
        List.fold_left
          (fun (be, bc) env ->
            let c = cost env in
            if c < bc then (env, c) else (be, bc))
          (first, cost first) rest
      in
      (* Coordinate descent within the original parameter box. *)
      let rec refine (env, c) step iters =
        if iters = 0 || step < 1e-6 then (env, c)
        else
          let improved =
            List.fold_left
              (fun (env, c) p ->
                let dom = Box.find p prob.param_box in
                let v = List.assoc p env in
                let try_v v' =
                  if I.mem v' dom then
                    let env' = (p, v') :: List.remove_assoc p env in
                    let c' = cost env' in
                    if c' < c then Some (env', c') else None
                  else None
                in
                let w = I.width dom *. step in
                match try_v (v +. w) with
                | Some r -> r
                | None -> ( match try_v (v -. w) with Some r -> r | None -> (env, c)))
              (env, c)
              (Ode.System.params prob.sys)
          in
          if snd improved < c then refine improved step (iters - 1)
          else refine improved (step /. 2.0) (iters - 1)
      in
      Some (refine best 0.25 refine_iters)
