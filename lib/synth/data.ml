(* Time-series observations for model calibration.

   Observations are bands: at time [time] the variable [var] was measured
   as [value] with absolute tolerance [tolerance] — the acceptance band of
   BioPSy-style guaranteed synthesis.  Experimental noise is absorbed by
   the band, so "the model fits the data" becomes "the trajectory passes
   through every band", a purely set-theoretic statement interval methods
   can decide. *)

type point = {
  time : float;
  var : string;
  value : float;
  tolerance : float;  (** half-width of the acceptance band *)
}

type t = point list

let point ~time ~var ~value ~tolerance =
  if tolerance < 0.0 then invalid_arg "Data.point: negative tolerance";
  if time < 0.0 then invalid_arg "Data.point: negative time";
  { time; var; value; tolerance }

let band p = Interval.Ia.make (p.value -. p.tolerance) (p.value +. p.tolerance)

let horizon (d : t) = List.fold_left (fun acc p -> Float.max acc p.time) 0.0 d

let vars (d : t) = List.sort_uniq String.compare (List.map (fun p -> p.var) d)

(* Does a numeric trace pass through every band?  (Point check used for
   witnesses and tests; the guaranteed check lives in {!Biopsy}.) *)
let consistent_with_trace (d : t) trace =
  List.for_all
    (fun p ->
      let v = Ode.Integrate.value_at trace p.var p.time in
      Float.abs (v -. p.value) <= p.tolerance)
    d

(* Sum of squared residuals of a trace against the data (for point fits). *)
let sse (d : t) trace =
  List.fold_left
    (fun acc p ->
      let r = Ode.Integrate.value_at trace p.var p.time -. p.value in
      acc +. (r *. r))
    0.0 d

(* Generate synthetic data from a ground-truth simulation: sample [n]
   evenly spaced times per observed variable, perturb with uniform noise
   bounded by [noise], and set the tolerance to [tolerance].  The PRNG
   state is supplied by the caller for reproducibility. *)
let synthetic ~rng ~sys ~params ~init ~t_end ~observed ~n ~noise ~tolerance =
  if n < 1 then invalid_arg "Data.synthetic: n must be >= 1";
  let trace =
    Ode.Integrate.simulate ~method_:(Ode.Integrate.Rk4 (t_end /. 2000.0)) ~params ~init
      ~t_end sys
  in
  List.concat_map
    (fun var ->
      List.init n (fun i ->
          let time = t_end *. float_of_int (i + 1) /. float_of_int n in
          let truth = Ode.Integrate.value_at trace var time in
          let eps = (Random.State.float rng 2.0 -. 1.0) *. noise in
          { time; var; value = truth +. eps; tolerance }))
    observed

let pp_point ppf p =
  Fmt.pf ppf "%s(%g) = %g ± %g" p.var p.time p.value p.tolerance

let pp ppf (d : t) = Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_point) d
