(** Guaranteed parameter set synthesis for single-mode ODE models against
    time-series bands — the BioPSy-equivalent (Section IV-A).

    The parameter box is paved into boxes where *every* value fits the
    data (proved with validated enclosures), boxes where *no* value can
    fit, and sub-ε remainder.  Inconsistency of the whole box is model
    *falsification*: the hypothesis is rejected (the paper's Fig.-2
    rejection arrow). *)

module Box = Interval.Box

type config = {
  epsilon : float;  (** minimum parameter-box width *)
  max_boxes : int;
  enclosure : Ode.Enclosure.config;
  jobs : int;  (** worker domains paving in parallel; 1 = sequential *)
}

val default_config : config

type problem = {
  sys : Ode.System.t;
  param_box : Box.t;
  init : Box.t;
  data : Data.t;
}

val problem : sys:Ode.System.t -> param_box:Box.t -> init:Box.t -> data:Data.t -> problem
(** @raise Invalid_argument on a parameter without a box, a state without
    an initial interval, or data on an unknown variable. *)

type result = {
  consistent : Box.t list;
  inconsistent : Box.t list;
  undecided : Box.t list;
  boxes_explored : int;
}

val synthesize :
  ?config:config -> ?strategy:Icp.Portfolio.strategy -> problem -> result
(** In portfolio mode ({!Icp.Portfolio.active}) the paving races the
    lineup's distinct split orders (the only strategy knob biopsy
    classification responds to — there are no contractors here) on
    [Parallel.Pool.first_conclusive], all racers sharing the
    strategy-independent verdict store so each skips boxes another
    already classified.  The first un-truncated paving wins (lowest
    rank); all truncated → the rank-lowest partial paving.  [?strategy]
    forces one split order, no race.  Portfolio off: the historical
    paving, bit for bit — with [config.jobs > 1], worker domains share
    the paving frontier and an atomic global box budget; the
    classification of each box is a pure function of the box, so the
    leaf set matches the sequential paving when the budget is not
    exhausted (only list order may differ). *)

val falsified : result -> bool
(** No parameter box survived: the model cannot explain the data. *)

val volumes : problem -> result -> float * float * float
(** (consistent, inconsistent, undecided) parameter-space volumes. *)

val to_csv : problem -> result -> string
(** CSV of the paving (one row per box: class, lo/hi per parameter), for
    external plotting of the feasible region. *)

val fit : ?config:config -> ?refine_iters:int -> problem -> ((string * float) list * float) option
(** Point estimate: best SSE among surviving-box midpoints, refined by
    coordinate descent within the parameter box.  [None] when falsified. *)

val pp_result : result Fmt.t
