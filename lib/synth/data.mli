(** Time-series observations for model calibration.

    Observations are acceptance bands: at [time] the variable [var] was
    measured as [value ± tolerance].  "The model fits the data" becomes
    "the trajectory passes through every band" — a set-theoretic statement
    interval methods can decide with guarantees. *)

type point = {
  time : float;
  var : string;
  value : float;
  tolerance : float;  (** half-width of the acceptance band *)
}

type t = point list

val point : time:float -> var:string -> value:float -> tolerance:float -> point
(** @raise Invalid_argument on a negative time or tolerance. *)

val band : point -> Interval.Ia.t
val horizon : t -> float
(** Latest observation time. *)

val vars : t -> string list

val consistent_with_trace : t -> Ode.Integrate.trace -> bool
(** Point check: does the simulated trace pass through every band? *)

val sse : t -> Ode.Integrate.trace -> float
(** Sum of squared residuals (for point fits). *)

val synthetic :
  rng:Random.State.t ->
  sys:Ode.System.t ->
  params:(string * float) list ->
  init:(string * float) list ->
  t_end:float ->
  observed:string list ->
  n:int ->
  noise:float ->
  tolerance:float ->
  t
(** Generate data from a ground-truth simulation: [n] evenly spaced
    samples per observed variable, uniform noise bounded by [noise],
    bands of half-width [tolerance].  Reproducible via [rng]. *)

val pp_point : point Fmt.t
val pp : t Fmt.t
