(** Wald's sequential probability ratio test.

    Decides between H0: p ≥ θ + δ ("the property holds with probability at
    least θ") and H1: p ≤ θ − δ, with error bounds α and β, consuming
    Bernoulli samples one at a time until the log-likelihood ratio leaves
    the Wald corridor. *)

type config = {
  theta : float;  (** probability threshold *)
  delta_ind : float;  (** half-width of the indifference region *)
  alpha : float;
  beta : float;
  max_samples : int;
}

val default_config : config

type verdict =
  | Accept  (** H0: the property holds with the stated confidence *)
  | Reject
  | Inconclusive  (** sample budget exhausted *)

type result = {
  verdict : verdict;
  samples_used : int;
  successes : int;
  llr : float;
}

val run : ?config:config -> (int -> bool) -> result
(** [run cfg sample] where [sample i] is the i-th Bernoulli outcome.
    @raise Invalid_argument when the indifference region leaves (0,1) or
    the error bounds do. *)

val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
