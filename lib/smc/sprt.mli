(** Wald's sequential probability ratio test.

    Decides between H0: p ≥ θ + δ ("the property holds with probability at
    least θ") and H1: p ≤ θ − δ, with error bounds α and β, consuming
    Bernoulli samples one at a time until the log-likelihood ratio leaves
    the Wald corridor. *)

type config = {
  theta : float;  (** probability threshold *)
  delta_ind : float;  (** half-width of the indifference region *)
  alpha : float;
  beta : float;
  max_samples : int;
}

val default_config : config

type verdict =
  | Accept  (** H0: the property holds with the stated confidence *)
  | Reject
  | Inconclusive  (** sample budget exhausted *)

type result = {
  verdict : verdict;
  samples_used : int;
  successes : int;
  llr : float;
}

val run : ?config:config -> (int -> bool) -> result
(** [run cfg sample] where [sample i] is the i-th Bernoulli outcome.
    @raise Invalid_argument when the indifference region leaves (0,1) or
    the error bounds do. *)

(** {2 Incremental interface}

    The same test as an explicit fold: [run] is equivalent to feeding
    outcomes into {!feed} until {!status} decides.  The parallel SMC
    runner drives this directly, sizing its speculative sample batches
    from {!min_remaining}. *)

type state

val start : ?config:config -> unit -> state
(** Fresh test ([status] is [None] unless [max_samples = 0]).
    @raise Invalid_argument as {!run}. *)

val feed : state -> bool -> state
(** Consume one Bernoulli outcome. *)

val status : state -> result option
(** [Some r] once the llr has left the Wald corridor or the sample
    budget is exhausted; further {!feed}s are ignored by convention
    (callers should stop).  Decision order (reject, accept, budget)
    matches {!run} exactly, so a fold of [feed]/[status] over the same
    outcomes is bit-identical to [run]. *)

val min_remaining : state -> int
(** Lower bound on further samples needed before {e any} outcome
    sequence can decide the test: distance to the nearer boundary
    divided by the largest step toward it, capped by the remaining
    budget.  0 iff already decided, ≥ 1 otherwise. *)

val pp_verdict : verdict Fmt.t
val pp_result : result Fmt.t
