(** Probability estimation for SMC: frequentist fixed-sample estimation
    with the Chernoff–Okamoto bound, and Bayesian Beta-posterior
    estimation with credible intervals. *)

(** {1 Special functions} (exposed for testing) *)

val log_gamma : float -> float
(** Lanczos approximation with reflection. *)

val betai : float -> float -> float -> float
(** Regularized incomplete beta function I_x(a, b), by continued
    fraction.  @raise Invalid_argument when x ∉ [0, 1]. *)

val beta_quantile : a:float -> b:float -> float -> float
(** Quantile of the Beta(a, b) distribution, by bisection on {!betai}. *)

(** {1 Frequentist} *)

val chernoff_sample_size : eps:float -> alpha:float -> int
(** Smallest n with P(|p̂ − p| > eps) ≤ alpha: ⌈ln(2/α) / (2ε²)⌉.
    @raise Invalid_argument on out-of-range arguments. *)

type estimate = {
  p_hat : float;
  n : int;
  successes : int;
  ci_low : float;
  ci_high : float;
  confidence : float;
}

val monte_carlo : eps:float -> alpha:float -> (int -> bool) -> estimate
(** Fixed-sample estimate at the Chernoff-driven sample size; the
    interval is [p̂ ± eps] clipped to [0, 1]. *)

val monte_carlo_of_counts :
  eps:float -> alpha:float -> n:int -> successes:int -> estimate
(** The {!monte_carlo} estimate from pre-tallied counts (parallel SMC
    tallies successes per domain and combines them here). *)

(** {1 Bayesian} *)

val bayesian :
  ?a0:float -> ?b0:float -> ?confidence:float -> n:int -> (int -> bool) -> estimate
(** Beta(a0, b0) prior (uniform by default), equal-tailed credible
    interval from the posterior. *)

val bayesian_of_counts :
  ?a0:float ->
  ?b0:float ->
  ?confidence:float ->
  n:int ->
  successes:int ->
  unit ->
  estimate
(** The {!bayesian} estimate from pre-tallied counts.
    @raise Invalid_argument when [n <= 0]. *)

val pp_estimate : estimate Fmt.t
