(* Bounded linear temporal logic over continuous traces.

   The paper's SMC framework (Sec. I and the Fig. 2 refinement branch)
   encodes behavioural constraints as BLTL formulas and checks them on
   simulated trajectories.  Time bounds are real-valued; satisfaction is
   evaluated on the sampled time points of a trace (the standard
   discretized semantics).

   Both qualitative satisfaction and the quantitative robustness degree
   (max-min signed distance) are provided; robustness > 0 implies
   satisfaction at the sampled resolution. *)

type t =
  | Prop of Expr.Formula.t  (** state predicate over vars ∪ params ∪ t *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of float * t * t  (** φ U≤b ψ *)
  | Finally of float * t  (** F≤b φ = true U≤b φ *)
  | Globally of float * t  (** G≤b φ = ¬F≤b ¬φ *)

let prop s = Prop (Expr.Parse.formula s)

let rec pp ppf = function
  | Prop f -> Fmt.pf ppf "(%a)" Expr.Formula.pp f
  | Not f -> Fmt.pf ppf "!%a" pp f
  | And (a, b) -> Fmt.pf ppf "(%a & %a)" pp a pp b
  | Or (a, b) -> Fmt.pf ppf "(%a | %a)" pp a pp b
  | Implies (a, b) -> Fmt.pf ppf "(%a => %a)" pp a pp b
  | Next f -> Fmt.pf ppf "X %a" pp f
  | Until (b, f, g) -> Fmt.pf ppf "(%a U[%g] %a)" pp f b pp g
  | Finally (b, f) -> Fmt.pf ppf "F[%g] %a" b pp f
  | Globally (b, f) -> Fmt.pf ppf "G[%g] %a" b pp f

(* Horizon: how much trace time the formula needs beyond its start. *)
let rec horizon = function
  | Prop _ -> 0.0
  | Not f | Next f -> horizon f
  | And (a, b) | Or (a, b) | Implies (a, b) -> Float.max (horizon a) (horizon b)
  | Until (b, f, g) -> b +. Float.max (horizon f) (horizon g)
  | Finally (b, f) | Globally (b, f) -> b +. horizon f

(* ---- Semantics over a sampled trace ---- *)

type trace_view = {
  times : float array;
  env_at : int -> (string * float) list;  (* full environment at index i *)
  n : int;
}

let of_trace ?(params = []) (tr : Ode.Integrate.trace) =
  {
    times = tr.Ode.Integrate.times;
    env_at = (fun i -> params @ Ode.Integrate.env_at tr i);
    n = Ode.Integrate.length tr;
  }

(* A hybrid trajectory as a single concatenated view (global time). *)
let of_trajectory ?(params = []) (traj : Hybrid.Simulate.trajectory) =
  let pieces =
    List.concat_map
      (fun (seg : Hybrid.Simulate.segment) ->
        let tr = seg.Hybrid.Simulate.trace in
        List.init (Ode.Integrate.length tr) (fun i ->
            let env = Ode.Integrate.env_at tr i in
            let t_local = List.assoc Ode.System.time_var env in
            let t_global = seg.Hybrid.Simulate.t_global +. t_local in
            ( t_global,
              (Ode.System.time_var, t_global)
              :: List.remove_assoc Ode.System.time_var env )))
      traj.Hybrid.Simulate.segments
  in
  let arr = Array.of_list pieces in
  {
    times = Array.map fst arr;
    env_at = (fun i -> params @ snd arr.(i));
    n = Array.length arr;
  }

let lookup env x =
  match List.assoc_opt x env with
  | Some v -> v
  | None -> invalid_arg (Printf.sprintf "Bltl: unbound variable %S" x)

(* Qualitative satisfaction at sample index [i]. *)
let rec sat view i = function
  | Prop f -> Expr.Formula.holds (lookup (view.env_at i)) f
  | Not f -> not (sat view i f)
  | And (a, b) -> sat view i a && sat view i b
  | Or (a, b) -> sat view i a || sat view i b
  | Implies (a, b) -> (not (sat view i a)) || sat view i b
  | Next f -> if i + 1 < view.n then sat view (i + 1) f else sat view i f
  | Finally (b, f) -> exists_within view i b (fun j -> sat view j f)
  | Globally (b, f) -> not (exists_within view i b (fun j -> not (sat view j f)))
  | Until (b, f, g) ->
      let t0 = view.times.(i) in
      let rec go j =
        if j >= view.n || view.times.(j) -. t0 > b then false
        else if sat view j g then true
        else if sat view j f then go (j + 1)
        else false
      in
      go i

and exists_within view i bound p =
  let t0 = view.times.(i) in
  let rec go j =
    if j >= view.n || view.times.(j) -. t0 > bound then false
    else p j || go (j + 1)
  in
  go i

let holds ?(at = 0) view f =
  if view.n = 0 then invalid_arg "Bltl.holds: empty trace";
  sat view at f

(* Quantitative robustness degree (Fainekos-Pappas style). *)
let rec rob view i = function
  | Prop f -> Expr.Formula.robustness (lookup (view.env_at i)) f
  | Not f -> -.rob view i f
  | And (a, b) -> Float.min (rob view i a) (rob view i b)
  | Or (a, b) -> Float.max (rob view i a) (rob view i b)
  | Implies (a, b) -> Float.max (-.rob view i a) (rob view i b)
  | Next f -> if i + 1 < view.n then rob view (i + 1) f else rob view i f
  | Finally (b, f) ->
      fold_within view i b neg_infinity Float.max (fun j -> rob view j f)
  | Globally (b, f) ->
      fold_within view i b infinity Float.min (fun j -> rob view j f)
  | Until (b, f, g) ->
      let t0 = view.times.(i) in
      let rec go j best prefix =
        if j >= view.n || view.times.(j) -. t0 > b then best
        else
          let here = Float.min prefix (rob view j g) in
          let best = Float.max best here in
          go (j + 1) best (Float.min prefix (rob view j f))
      in
      go i neg_infinity infinity

and fold_within view i bound init combine f =
  let t0 = view.times.(i) in
  let rec go j acc =
    if j >= view.n || view.times.(j) -. t0 > bound then acc
    else go (j + 1) (combine acc (f j))
  in
  go i init

let robustness ?(at = 0) view f =
  if view.n = 0 then invalid_arg "Bltl.robustness: empty trace";
  rob view at f
