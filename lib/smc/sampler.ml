(* Random sampling of initial states and parameters.

   The SMC calibration setting of the paper works with *probabilistic
   initial states*: each sample draws initial values / parameters from
   declared distributions, simulates, and checks the BLTL property.
   All randomness flows through an explicit [Random.State.t] so runs are
   reproducible. *)

type dist =
  | Constant of float
  | Uniform of float * float  (** [lo, hi] *)
  | Normal of float * float  (** mean, std dev *)
  | Lognormal of float * float  (** mean, std dev of the underlying normal *)
  | Truncated of dist * float * float  (** rejection-truncated to [lo, hi] *)

type spec = (string * dist) list

let rec mean = function
  | Constant c -> c
  | Uniform (a, b) -> 0.5 *. (a +. b)
  | Normal (m, _) -> m
  | Lognormal (m, s) -> Float.exp (m +. (0.5 *. s *. s))
  | Truncated (d, _, _) -> mean d (* approximation; exact value not needed *)

(* Box-Muller; one value per call keeps the state usage simple. *)
let gaussian rng =
  let rec nonzero () =
    let u = Random.State.float rng 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = Random.State.float rng 1.0 in
  Float.sqrt (-2.0 *. Float.log u1) *. Float.cos (2.0 *. Float.pi *. u2)

let rec draw rng = function
  | Constant c -> c
  | Uniform (a, b) ->
      if b < a then invalid_arg "Sampler: uniform with hi < lo"
      else a +. Random.State.float rng (b -. a)
  | Normal (m, s) -> m +. (s *. gaussian rng)
  | Lognormal (m, s) -> Float.exp (m +. (s *. gaussian rng))
  | Truncated (d, lo, hi) ->
      if hi < lo then invalid_arg "Sampler: truncation with hi < lo"
      else
        let rec try_ n =
          if n = 0 then Float.max lo (Float.min hi (draw rng d))
          else
            let x = draw rng d in
            if lo <= x && x <= hi then x else try_ (n - 1)
        in
        try_ 1000

let sample rng (spec : spec) = List.map (fun (x, d) -> (x, draw rng d)) spec

(* Split a spec into the part naming system entities vs the rest. *)
let partition names (env : (string * float) list) =
  List.partition (fun (x, _) -> List.mem x names) env
