(** Random sampling of initial states and parameters for SMC.

    All randomness flows through an explicit [Random.State.t], so runs
    are reproducible. *)

type dist =
  | Constant of float
  | Uniform of float * float
  | Normal of float * float  (** mean, standard deviation *)
  | Lognormal of float * float  (** parameters of the underlying normal *)
  | Truncated of dist * float * float  (** rejection-truncated to [lo, hi] *)

type spec = (string * dist) list

val mean : dist -> float
(** Analytic mean ([Truncated] approximated by its base). *)

val gaussian : Random.State.t -> float
(** Standard normal draw (Box–Muller). *)

val draw : Random.State.t -> dist -> float
(** @raise Invalid_argument on inverted bounds. *)

val sample : Random.State.t -> spec -> (string * float) list

val partition :
  string list -> (string * float) list -> (string * float) list * (string * float) list
(** Split an environment into (named, rest). *)
