(* Probability estimation for SMC: frequentist fixed-sample estimation
   with a Chernoff–Okamoto sample-size bound, and Bayesian estimation
   with a Beta posterior and credible interval.

   The incomplete beta function needed for the credible interval is
   computed with the Lentz continued-fraction evaluation. *)

(* ---- Special functions ---- *)

(* log Γ via the Lanczos approximation (g = 7, n = 9 coefficients). *)
let rec log_gamma x =
  let coeffs =
    [| 0.99999999999980993; 676.5203681218851; -1259.1392167224028;
       771.32342877765313; -176.61502916214059; 12.507343278686905;
       -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7 |]
  in
  if x < 0.5 then
    (* reflection formula: Γ(x)Γ(1-x) = π / sin(πx) *)
    Float.log (Float.pi /. Float.sin (Float.pi *. x)) -. log_gamma (1.0 -. x)
  else begin
    let x = x -. 1.0 in
    let a = ref coeffs.(0) in
    for i = 1 to 8 do
      a := !a +. (coeffs.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. Float.log (2.0 *. Float.pi)) +. ((x +. 0.5) *. Float.log t) -. t +. Float.log !a
  end

(* Regularized incomplete beta I_x(a, b) via continued fraction. *)
let rec betai a b x =
  if x < 0.0 || x > 1.0 then invalid_arg "Estimate.betai: x outside [0,1]"
  else if x = 0.0 then 0.0
  else if x = 1.0 then 1.0
  else
    let bt =
      Float.exp
        (log_gamma (a +. b) -. log_gamma a -. log_gamma b
        +. (a *. Float.log x)
        +. (b *. Float.log (1.0 -. x)))
    in
    if x < (a +. 1.0) /. (a +. b +. 2.0) then bt *. betacf a b x /. a
    else 1.0 -. (bt *. betacf b a (1.0 -. x) /. b)

and betacf a b x =
  let max_iter = 200 and eps = 3e-12 and fpmin = 1e-300 in
  let qab = a +. b and qap = a +. 1.0 and qam = a -. 1.0 in
  let c = ref 1.0 in
  let d = ref (1.0 -. (qab *. x /. qap)) in
  if Float.abs !d < fpmin then d := fpmin;
  d := 1.0 /. !d;
  let h = ref !d in
  let m = ref 1 in
  let finished = ref false in
  while (not !finished) && !m <= max_iter do
    let mf = float_of_int !m in
    let m2 = 2.0 *. mf in
    let aa = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    h := !h *. !d *. !c;
    let aa = -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2)) in
    d := 1.0 +. (aa *. !d);
    if Float.abs !d < fpmin then d := fpmin;
    c := 1.0 +. (aa /. !c);
    if Float.abs !c < fpmin then c := fpmin;
    d := 1.0 /. !d;
    let del = !d *. !c in
    h := !h *. del;
    if Float.abs (del -. 1.0) < eps then finished := true;
    incr m
  done;
  !h

(* ---- Frequentist estimation ---- *)

(* Chernoff–Okamoto: n >= ln(2/alpha) / (2 eps^2) samples guarantee
   P(|p_hat - p| > eps) <= alpha. *)
let chernoff_sample_size ~eps ~alpha =
  if eps <= 0.0 || eps >= 1.0 then invalid_arg "Estimate: eps outside (0,1)";
  if alpha <= 0.0 || alpha >= 1.0 then invalid_arg "Estimate: alpha outside (0,1)";
  int_of_float (Float.ceil (Float.log (2.0 /. alpha) /. (2.0 *. eps *. eps)))

type estimate = {
  p_hat : float;
  n : int;
  successes : int;
  ci_low : float;
  ci_high : float;
  confidence : float;
}

let pp_estimate ppf e =
  Fmt.pf ppf "p ≈ %.4f (n=%d, %g%% interval [%.4f, %.4f])" e.p_hat e.n
    (100.0 *. e.confidence) e.ci_low e.ci_high

(* Estimate record from pre-tallied counts: parallel SMC runs tally
   successes per domain and combine them here. *)
let monte_carlo_of_counts ~eps ~alpha ~n ~successes =
  let p_hat = float_of_int successes /. float_of_int n in
  {
    p_hat;
    n;
    successes;
    ci_low = Float.max 0.0 (p_hat -. eps);
    ci_high = Float.min 1.0 (p_hat +. eps);
    confidence = 1.0 -. alpha;
  }

(* Monte-Carlo estimate with the Chernoff-driven sample size. *)
let monte_carlo ~eps ~alpha sample =
  let n = chernoff_sample_size ~eps ~alpha in
  let successes = ref 0 in
  for i = 0 to n - 1 do
    if sample i then incr successes
  done;
  monte_carlo_of_counts ~eps ~alpha ~n ~successes:!successes

(* ---- Bayesian estimation ----

   Beta(a0 + successes, b0 + failures) posterior; the credible interval is
   found by bisection on the posterior CDF (the regularized incomplete
   beta function). *)

let beta_quantile ~a ~b q =
  let rec bisect lo hi n =
    if n = 0 then 0.5 *. (lo +. hi)
    else
      let mid = 0.5 *. (lo +. hi) in
      if betai a b mid < q then bisect mid hi (n - 1) else bisect lo mid (n - 1)
  in
  bisect 0.0 1.0 60

let bayesian_of_counts ?(a0 = 1.0) ?(b0 = 1.0) ?(confidence = 0.95) ~n ~successes
    () =
  if n <= 0 then invalid_arg "Estimate.bayesian: n must be positive";
  let a = a0 +. float_of_int successes in
  let b = b0 +. float_of_int (n - successes) in
  let tail = 0.5 *. (1.0 -. confidence) in
  {
    p_hat = a /. (a +. b);
    n;
    successes;
    ci_low = beta_quantile ~a ~b tail;
    ci_high = beta_quantile ~a ~b (1.0 -. tail);
    confidence;
  }

let bayesian ?a0 ?b0 ?confidence ~n sample =
  if n <= 0 then invalid_arg "Estimate.bayesian: n must be positive";
  let successes = ref 0 in
  for i = 0 to n - 1 do
    if sample i then incr successes
  done;
  bayesian_of_counts ?a0 ?b0 ?confidence ~n ~successes:!successes ()
