(* End-to-end statistical model checking of ODE / hybrid models with
   probabilistic initial states and parameters (the Fig.-2 SMC branch).

   Each sample: draw initial state and parameters from the declared
   distributions, simulate, evaluate the BLTL property on the trajectory.
   The Bernoulli stream feeds either an SPRT hypothesis test or an
   estimation procedure. *)

type model =
  | Ode_model of Ode.System.t
  | Hybrid_model of Hybrid.Automaton.t

let tm_test = Telemetry.Span.probe "smc.test"
let tm_estimate = Telemetry.Span.probe "smc.estimate"
let tm_batch = Telemetry.Span.probe "smc.batch"
let m_samples = Telemetry.Counter.make "smc.samples"
let m_successes = Telemetry.Counter.make "smc.successes"
let m_batches = Telemetry.Counter.make "smc.sprt_batches"
let m_discarded = Telemetry.Counter.make "smc.discarded"

type problem = {
  model : model;
  init_dist : Sampler.spec;  (** distributions of initial values *)
  param_dist : Sampler.spec;  (** distributions of parameters *)
  property : Bltl.t;
  t_end : float;
  max_jumps : int;
}

let problem ?(max_jumps = 100) ~model ~init_dist ~param_dist ~property ~t_end () =
  if t_end <= 0.0 then invalid_arg "Smc.problem: t_end must be positive";
  { model; init_dist; param_dist; property; t_end; max_jumps }

(* One Bernoulli sample of the property. *)
let sample_once_inner rng prob =
  let init = Sampler.sample rng prob.init_dist in
  let params = Sampler.sample rng prob.param_dist in
  match prob.model with
  | Ode_model sys ->
      let init =
        List.map
          (fun v ->
            match List.assoc_opt v init with
            | Some x -> (v, x)
            | None -> invalid_arg (Printf.sprintf "Smc: no initial distribution for %S" v))
          (Ode.System.vars sys)
      in
      let tr = Ode.Integrate.simulate ~params ~init ~t_end:prob.t_end sys in
      Bltl.holds (Bltl.of_trace ~params tr) prob.property
  | Hybrid_model h ->
      let traj =
        Hybrid.Simulate.simulate ~params ~init ~t_end:prob.t_end
          ~max_jumps:prob.max_jumps h
      in
      Bltl.holds (Bltl.of_trajectory ~params traj) prob.property

(* Counting wrapper: sampling only observes the outcome, so telemetry
   never perturbs the Bernoulli stream. *)
let sample_once rng prob =
  let outcome = sample_once_inner rng prob in
  Telemetry.Counter.incr m_samples;
  if outcome then Telemetry.Counter.incr m_successes;
  outcome

(* Robustness of one random trajectory (quantitative sample). *)
let sample_robustness rng prob =
  let init = Sampler.sample rng prob.init_dist in
  let params = Sampler.sample rng prob.param_dist in
  match prob.model with
  | Ode_model sys ->
      let tr = Ode.Integrate.simulate ~params ~init ~t_end:prob.t_end sys in
      Bltl.robustness (Bltl.of_trace ~params tr) prob.property
  | Hybrid_model h ->
      let traj =
        Hybrid.Simulate.simulate ~params ~init ~t_end:prob.t_end
          ~max_jumps:prob.max_jumps h
      in
      Bltl.robustness (Bltl.of_trajectory ~params traj) prob.property

(* ---- Parallel sampling ----

   Trace samples are independent, so with [jobs > 1] they fan out over
   worker domains.  Worker [w] owns the contiguous slice [w*n/jobs,
   (w+1)*n/jobs) of the sample indices and its own PRNG stream split
   from the root seed as [Random.State.make [| seed; w |]]; the
   assignment is static, so an estimate at a fixed (seed, jobs) pair is
   bit-identical across runs.  Estimates at different [jobs] values
   consume different streams and may differ within the statistical
   error bounds — that is the documented trade-off.  [jobs = 1] takes
   the original sequential code path (stream [| seed |]). *)

let worker_rng ~seed w = Random.State.make [| seed; w |]

(* Per-domain tally of [f rng] over a static slice of [n] samples;
   returns the summed tallies combined with [add] from [zero]. *)
let fan_out ~seed ~jobs ~n ~zero ~add f =
  let parts =
    Parallel.Pool.parallel_for_chunks ~jobs n (fun w lo hi ->
        Telemetry.Span.with_ ~arg:(float_of_int (hi - lo)) tm_batch
        @@ fun () ->
        let rng = worker_rng ~seed w in
        let acc = ref zero in
        for _ = lo to hi - 1 do
          acc := add !acc (f rng)
        done;
        !acc)
  in
  Array.fold_left add zero parts

let count_successes ~seed ~jobs ~n prob =
  fan_out ~seed ~jobs ~n ~zero:0
    ~add:( + )
    (fun rng -> if sample_once rng prob then 1 else 0)

(* Hypothesis test: is P(property) >= theta?  With [jobs > 1] outcomes
   are precomputed in speculative batches (each worker extends its own
   stream by a batch slice) and fed to the SPRT in global index order.

   The batch size adapts to test progress: each round computes at least
   [Sprt.min_remaining] further samples (no shorter batch can decide the
   test), so batches are large while the llr is far from both Wald
   boundaries and shrink as a decision approaches — bounding the
   speculative samples discarded past the decision point, which the old
   fixed-32 batches threw away wholesale.  The round structure is a
   deterministic function of the consumed outcome prefix, so the verdict
   is still bit-reproducible at a fixed (seed, jobs).  Under
   BIOMC_NO_WORKSTEAL=1 the batch is pinned at the historical 32 per
   worker, reproducing the old sample stream exactly. *)
let test ?(seed = 42) ?(jobs = 1) ?config prob =
  Telemetry.Span.with_ tm_test @@ fun () ->
  if jobs <= 1 then begin
    let rng = Random.State.make [| seed |] in
    Sprt.run ?config (fun _ -> sample_once rng prob)
  end
  else begin
    let jobs = Stdlib.max 1 jobs in
    let adaptive = Parallel.Pool.workstealing_enabled () in
    let rngs = Array.init jobs (fun w -> worker_rng ~seed w) in
    let buffer = ref [||] (* outcomes so far, in global order *) in
    let extend st =
      (* round: worker w computes outcomes for its next slice; global
         order interleaves the slices round-robin by worker. *)
      let per_worker =
        if adaptive then
          let need = Sprt.min_remaining st in
          Stdlib.max 1 (Stdlib.min 256 ((need + jobs - 1) / jobs))
        else 32
      in
      Telemetry.Counter.incr m_batches;
      Telemetry.Span.with_ ~arg:(float_of_int (jobs * per_worker)) tm_batch
      @@ fun () ->
      let batch =
        Parallel.Pool.run ~jobs (fun w ->
            Array.init per_worker (fun _ -> sample_once rngs.(w) prob))
      in
      let woven =
        Array.init (jobs * per_worker) (fun i -> batch.(i mod jobs).(i / jobs))
      in
      buffer := Array.append !buffer woven
    in
    let rec drive st i =
      match Sprt.status st with
      | Some r ->
          Telemetry.Counter.add m_discarded
            (Array.length !buffer - r.Sprt.samples_used);
          r
      | None ->
          if i >= Array.length !buffer then extend st;
          drive (Sprt.feed st !buffer.(i)) (i + 1)
    in
    drive (Sprt.start ?config ()) 0
  end

(* Probability estimation with Chernoff sample size. *)
let estimate ?(seed = 42) ?(jobs = 1) ?(eps = 0.05) ?(alpha = 0.05) prob =
  Telemetry.Span.with_ tm_estimate @@ fun () ->
  if jobs <= 1 then begin
    let rng = Random.State.make [| seed |] in
    Estimate.monte_carlo ~eps ~alpha (fun _ -> sample_once rng prob)
  end
  else begin
    let n = Estimate.chernoff_sample_size ~eps ~alpha in
    let successes = count_successes ~seed ~jobs ~n prob in
    Estimate.monte_carlo_of_counts ~eps ~alpha ~n ~successes
  end

(* Bayesian estimation with fixed sample count. *)
let estimate_bayesian ?(seed = 42) ?(jobs = 1) ?(n = 500) ?confidence prob =
  Telemetry.Span.with_ tm_estimate @@ fun () ->
  if jobs <= 1 then begin
    let rng = Random.State.make [| seed |] in
    Estimate.bayesian ?confidence ~n (fun _ -> sample_once rng prob)
  end
  else begin
    let successes = count_successes ~seed ~jobs ~n prob in
    Estimate.bayesian_of_counts ?confidence ~n ~successes ()
  end

(* Average robustness over [n] samples — the objective SMC-based
   parameter search maximizes when calibrating against behaviour
   constraints. *)
let mean_robustness ?(seed = 42) ?(jobs = 1) ?(n = 100) prob =
  let clamp r = Float.max (-1e6) (Float.min 1e6 r) in
  if jobs <= 1 then begin
    let rng = Random.State.make [| seed |] in
    let total = ref 0.0 in
    for _ = 1 to n do
      total := !total +. clamp (sample_robustness rng prob)
    done;
    !total /. float_of_int n
  end
  else
    let total =
      fan_out ~seed ~jobs ~n ~zero:0.0 ~add:( +. ) (fun rng ->
          clamp (sample_robustness rng prob))
    in
    total /. float_of_int n
