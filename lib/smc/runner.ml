(* End-to-end statistical model checking of ODE / hybrid models with
   probabilistic initial states and parameters (the Fig.-2 SMC branch).

   Each sample: draw initial state and parameters from the declared
   distributions, simulate, evaluate the BLTL property on the trajectory.
   The Bernoulli stream feeds either an SPRT hypothesis test or an
   estimation procedure. *)

type model =
  | Ode_model of Ode.System.t
  | Hybrid_model of Hybrid.Automaton.t

type problem = {
  model : model;
  init_dist : Sampler.spec;  (** distributions of initial values *)
  param_dist : Sampler.spec;  (** distributions of parameters *)
  property : Bltl.t;
  t_end : float;
  max_jumps : int;
}

let problem ?(max_jumps = 100) ~model ~init_dist ~param_dist ~property ~t_end () =
  if t_end <= 0.0 then invalid_arg "Smc.problem: t_end must be positive";
  { model; init_dist; param_dist; property; t_end; max_jumps }

(* One Bernoulli sample of the property. *)
let sample_once rng prob =
  let init = Sampler.sample rng prob.init_dist in
  let params = Sampler.sample rng prob.param_dist in
  match prob.model with
  | Ode_model sys ->
      let init =
        List.map
          (fun v ->
            match List.assoc_opt v init with
            | Some x -> (v, x)
            | None -> invalid_arg (Printf.sprintf "Smc: no initial distribution for %S" v))
          (Ode.System.vars sys)
      in
      let tr = Ode.Integrate.simulate ~params ~init ~t_end:prob.t_end sys in
      Bltl.holds (Bltl.of_trace ~params tr) prob.property
  | Hybrid_model h ->
      let traj =
        Hybrid.Simulate.simulate ~params ~init ~t_end:prob.t_end
          ~max_jumps:prob.max_jumps h
      in
      Bltl.holds (Bltl.of_trajectory ~params traj) prob.property

(* Robustness of one random trajectory (quantitative sample). *)
let sample_robustness rng prob =
  let init = Sampler.sample rng prob.init_dist in
  let params = Sampler.sample rng prob.param_dist in
  match prob.model with
  | Ode_model sys ->
      let tr = Ode.Integrate.simulate ~params ~init ~t_end:prob.t_end sys in
      Bltl.robustness (Bltl.of_trace ~params tr) prob.property
  | Hybrid_model h ->
      let traj =
        Hybrid.Simulate.simulate ~params ~init ~t_end:prob.t_end
          ~max_jumps:prob.max_jumps h
      in
      Bltl.robustness (Bltl.of_trajectory ~params traj) prob.property

(* Hypothesis test: is P(property) >= theta? *)
let test ?(seed = 42) ?config prob =
  let rng = Random.State.make [| seed |] in
  Sprt.run ?config (fun _ -> sample_once rng prob)

(* Probability estimation with Chernoff sample size. *)
let estimate ?(seed = 42) ?(eps = 0.05) ?(alpha = 0.05) prob =
  let rng = Random.State.make [| seed |] in
  Estimate.monte_carlo ~eps ~alpha (fun _ -> sample_once rng prob)

(* Bayesian estimation with fixed sample count. *)
let estimate_bayesian ?(seed = 42) ?(n = 500) ?confidence prob =
  let rng = Random.State.make [| seed |] in
  Estimate.bayesian ?confidence ~n (fun _ -> sample_once rng prob)

(* Average robustness over [n] samples — the objective SMC-based
   parameter search maximizes when calibrating against behaviour
   constraints. *)
let mean_robustness ?(seed = 42) ?(n = 100) prob =
  let rng = Random.State.make [| seed |] in
  let total = ref 0.0 in
  for _ = 1 to n do
    let r = sample_robustness rng prob in
    total := !total +. Float.max (-1e6) (Float.min 1e6 r)
  done;
  !total /. float_of_int n
