(** Bounded linear temporal logic over continuous traces.

    The SMC branch of the framework encodes behavioural constraints as
    BLTL formulas evaluated on sampled trajectories (discretized
    semantics).  Both qualitative satisfaction and the quantitative
    robustness degree are provided. *)

type t =
  | Prop of Expr.Formula.t  (** state predicate over vars ∪ params ∪ t *)
  | Not of t
  | And of t * t
  | Or of t * t
  | Implies of t * t
  | Next of t
  | Until of float * t * t  (** φ U≤b ψ *)
  | Finally of float * t  (** F≤b φ *)
  | Globally of float * t  (** G≤b φ *)

val prop : string -> t
(** Atomic predicate from concrete syntax ({!Expr.Parse.formula}). *)

val horizon : t -> float
(** Trace time the formula needs beyond its evaluation point. *)

val pp : t Fmt.t

(** {1 Trace views} *)

type trace_view = {
  times : float array;
  env_at : int -> (string * float) list;
  n : int;
}

val of_trace : ?params:(string * float) list -> Ode.Integrate.trace -> trace_view

val of_trajectory :
  ?params:(string * float) list -> Hybrid.Simulate.trajectory -> trace_view
(** Concatenated view of a hybrid trajectory on the global time axis. *)

(** {1 Semantics} *)

val holds : ?at:int -> trace_view -> t -> bool
(** Qualitative satisfaction at sample index [at] (default 0).
    @raise Invalid_argument on an empty trace. *)

val robustness : ?at:int -> trace_view -> t -> float
(** Quantitative robustness degree (max-min signed margin); positive
    implies satisfaction at the sampled resolution. *)
