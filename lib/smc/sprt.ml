(* Wald's sequential probability ratio test.

   Decides between H0: p >= theta + delta (property probably holds) and
   H1: p <= theta - delta, with type-I/II error bounds alpha and beta.
   Samples are consumed one at a time from a generator until the
   log-likelihood ratio leaves the (log B, log A) corridor. *)

type config = {
  theta : float;  (** probability threshold being tested *)
  delta_ind : float;  (** half-width of the indifference region *)
  alpha : float;  (** bound on the probability of falsely accepting H0 *)
  beta : float;  (** bound on the probability of falsely accepting H1 *)
  max_samples : int;
}

let default_config =
  { theta = 0.9; delta_ind = 0.05; alpha = 0.01; beta = 0.01; max_samples = 100_000 }

type verdict =
  | Accept  (** H0 accepted: P(φ) >= theta - delta with the stated confidence *)
  | Reject  (** H1 accepted: P(φ) < theta + delta *)
  | Inconclusive  (** sample budget exhausted *)

type result = {
  verdict : verdict;
  samples_used : int;
  successes : int;
  llr : float;  (** final log-likelihood ratio *)
}

let pp_verdict ppf v =
  Fmt.string ppf
    (match v with
    | Accept -> "accept (property holds with high probability)"
    | Reject -> "reject"
    | Inconclusive -> "inconclusive")

let pp_result ppf r =
  Fmt.pf ppf "%a after %d samples (%d successes, llr=%.3f)" pp_verdict r.verdict
    r.samples_used r.successes r.llr

let validate cfg =
  if cfg.theta -. cfg.delta_ind <= 0.0 || cfg.theta +. cfg.delta_ind >= 1.0 then
    invalid_arg "Sprt: indifference region leaves (0,1)";
  if cfg.alpha <= 0.0 || cfg.alpha >= 1.0 || cfg.beta <= 0.0 || cfg.beta >= 1.0 then
    invalid_arg "Sprt: error bounds must be in (0,1)"

(* ---- Incremental interface ----

   The test as a value: feed outcomes one at a time, ask for the verdict
   after each.  [run] below is a fold over this; the parallel SMC runner
   drives the state directly so it can size speculative sample batches
   from the current distance to the decision boundaries. *)

type state = {
  cfg : config;
  log_a : float;  (* upper (reject) boundary, > 0 *)
  log_b : float;  (* lower (accept) boundary, < 0 *)
  l_succ : float;  (* llr step on success, < 0 *)
  l_fail : float;  (* llr step on failure, > 0 *)
  n : int;
  succ : int;
  cur_llr : float;
}

let start ?(config = default_config) () =
  validate config;
  let p0 = config.theta +. config.delta_ind in
  let p1 = config.theta -. config.delta_ind in
  {
    cfg = config;
    log_a = Float.log ((1.0 -. config.beta) /. config.alpha);
    log_b = Float.log (config.beta /. (1.0 -. config.alpha));
    l_succ = Float.log (p1 /. p0);
    l_fail = Float.log ((1.0 -. p1) /. (1.0 -. p0));
    n = 0;
    succ = 0;
    cur_llr = 0.0;
  }

(* Decision check order (reject, accept, budget) matches the historical
   [run] loop exactly, so folding [feed]/[status] is bit-identical. *)
let status st =
  if st.cur_llr >= st.log_a then
    Some
      { verdict = Reject; samples_used = st.n; successes = st.succ; llr = st.cur_llr }
  else if st.cur_llr <= st.log_b then
    Some
      { verdict = Accept; samples_used = st.n; successes = st.succ; llr = st.cur_llr }
  else if st.n >= st.cfg.max_samples then
    Some
      {
        verdict = Inconclusive;
        samples_used = st.n;
        successes = st.succ;
        llr = st.cur_llr;
      }
  else None

let feed st ok =
  {
    st with
    n = st.n + 1;
    succ = (if ok then st.succ + 1 else st.succ);
    cur_llr = (st.cur_llr +. if ok then st.l_succ else st.l_fail);
  }

(* Lower bound on how many more samples any outcome sequence needs
   before the test can decide: the distance to each boundary divided by
   the step size toward it, best case, capped by the remaining sample
   budget.  0 iff already decided, >= 1 otherwise. *)
let min_remaining st =
  match status st with
  | Some _ -> 0
  | None ->
      let to_reject = (st.log_a -. st.cur_llr) /. st.l_fail in
      let to_accept = (st.log_b -. st.cur_llr) /. st.l_succ in
      let d = Float.min to_reject to_accept in
      let budget = st.cfg.max_samples - st.n in
      Stdlib.max 1 (Stdlib.min budget (int_of_float (Float.ceil d)))

(* [run cfg sample] where [sample i] produces the i-th Bernoulli outcome. *)
let run ?config sample =
  let rec go st =
    match status st with Some r -> r | None -> go (feed st (sample st.n))
  in
  go (start ?config ())
