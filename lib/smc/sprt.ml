(* Wald's sequential probability ratio test.

   Decides between H0: p >= theta + delta (property probably holds) and
   H1: p <= theta - delta, with type-I/II error bounds alpha and beta.
   Samples are consumed one at a time from a generator until the
   log-likelihood ratio leaves the (log B, log A) corridor. *)

type config = {
  theta : float;  (** probability threshold being tested *)
  delta_ind : float;  (** half-width of the indifference region *)
  alpha : float;  (** bound on the probability of falsely accepting H0 *)
  beta : float;  (** bound on the probability of falsely accepting H1 *)
  max_samples : int;
}

let default_config =
  { theta = 0.9; delta_ind = 0.05; alpha = 0.01; beta = 0.01; max_samples = 100_000 }

type verdict =
  | Accept  (** H0 accepted: P(φ) >= theta - delta with the stated confidence *)
  | Reject  (** H1 accepted: P(φ) < theta + delta *)
  | Inconclusive  (** sample budget exhausted *)

type result = {
  verdict : verdict;
  samples_used : int;
  successes : int;
  llr : float;  (** final log-likelihood ratio *)
}

let pp_verdict ppf v =
  Fmt.string ppf
    (match v with
    | Accept -> "accept (property holds with high probability)"
    | Reject -> "reject"
    | Inconclusive -> "inconclusive")

let pp_result ppf r =
  Fmt.pf ppf "%a after %d samples (%d successes, llr=%.3f)" pp_verdict r.verdict
    r.samples_used r.successes r.llr

let validate cfg =
  if cfg.theta -. cfg.delta_ind <= 0.0 || cfg.theta +. cfg.delta_ind >= 1.0 then
    invalid_arg "Sprt: indifference region leaves (0,1)";
  if cfg.alpha <= 0.0 || cfg.alpha >= 1.0 || cfg.beta <= 0.0 || cfg.beta >= 1.0 then
    invalid_arg "Sprt: error bounds must be in (0,1)"

(* [run cfg sample] where [sample i] produces the i-th Bernoulli outcome. *)
let run ?(config = default_config) sample =
  validate config;
  let p0 = config.theta +. config.delta_ind in
  let p1 = config.theta -. config.delta_ind in
  let log_a = Float.log ((1.0 -. config.beta) /. config.alpha) in
  let log_b = Float.log (config.beta /. (1.0 -. config.alpha)) in
  let l_succ = Float.log (p1 /. p0) in
  let l_fail = Float.log ((1.0 -. p1) /. (1.0 -. p0)) in
  let rec go i succ llr =
    if llr >= log_a then { verdict = Reject; samples_used = i; successes = succ; llr }
    else if llr <= log_b then
      { verdict = Accept; samples_used = i; successes = succ; llr }
    else if i >= config.max_samples then
      { verdict = Inconclusive; samples_used = i; successes = succ; llr }
    else
      let ok = sample i in
      let llr = llr +. if ok then l_succ else l_fail in
      go (i + 1) (if ok then succ + 1 else succ) llr
  in
  go 0 0 0.0
