(** End-to-end statistical model checking of ODE / hybrid models with
    probabilistic initial states and parameters (the Fig.-2 SMC branch).

    Each sample draws an initial state and parameters from the declared
    distributions, simulates, and evaluates the BLTL property; the
    Bernoulli stream feeds an SPRT test or an estimation procedure. *)

type model =
  | Ode_model of Ode.System.t
  | Hybrid_model of Hybrid.Automaton.t

type problem = {
  model : model;
  init_dist : Sampler.spec;
  param_dist : Sampler.spec;
  property : Bltl.t;
  t_end : float;
  max_jumps : int;
}

val problem :
  ?max_jumps:int ->
  model:model ->
  init_dist:Sampler.spec ->
  param_dist:Sampler.spec ->
  property:Bltl.t ->
  t_end:float ->
  unit ->
  problem
(** @raise Invalid_argument on a non-positive horizon. *)

val sample_once : Random.State.t -> problem -> bool
val sample_robustness : Random.State.t -> problem -> float

(** {1 Parallelism and reproducibility}

    All entry points accept [?jobs] (default 1): trace samples are
    independent, so they fan out across that many worker domains.
    Worker [w] owns a static contiguous slice of the sample indices and
    its own PRNG stream [Random.State.make [| seed; w |]] split from the
    root seed, so results at a fixed (seed, jobs) pair are bit-identical
    across runs.  Different [jobs] values consume different streams and
    may differ within the statistical error bounds.  [jobs = 1] is the
    original sequential path (stream [| seed |]). *)

val test : ?seed:int -> ?jobs:int -> ?config:Sprt.config -> problem -> Sprt.result
(** SPRT for P(property) ≥ θ.  With [jobs > 1], outcomes are drawn in
    speculative parallel batches and consumed in global index order;
    draws past the decision point are discarded. *)

val estimate :
  ?seed:int -> ?jobs:int -> ?eps:float -> ?alpha:float -> problem -> Estimate.estimate

val estimate_bayesian :
  ?seed:int -> ?jobs:int -> ?n:int -> ?confidence:float -> problem -> Estimate.estimate

val mean_robustness : ?seed:int -> ?jobs:int -> ?n:int -> problem -> float
(** Average robustness degree — the objective SMC-based calibration
    maximizes. *)
