(** Work-stealing deque: growable ring, owner-local LIFO bottom,
    steal-half from the top, one private mutex per deque.

    The owner pushes and pops at the bottom (newest end); thieves remove
    the oldest half from the top.  All operations are thread-safe; the
    design point is that the mutex is {e private} — it is only ever
    contended while a steal is actually probing this deque, so the
    owner's per-item cost is an uncontended lock/unlock pair.  See
    DESIGN.md §15 for why this beats both a shared monitor queue and a
    Chase–Lev deque for this workload. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int
(** Advisory (unlocked) read — exact only for the owner between its own
    operations; used for victim selection and depth telemetry. *)

val push : 'a t -> 'a -> unit
(** Push at the bottom (newest end). *)

val push_list : 'a t -> 'a list -> unit
(** Batched push under one lock acquisition; behaves like pushing the
    items in reverse, so the next {!pop} returns the list head. *)

val pop : 'a t -> 'a option
(** Owner-side LIFO pop from the bottom; [None] when empty. *)

val steal_half : 'a t -> into:'a t -> 'a option
(** [steal_half victim ~into] removes the oldest [ceil(size/2)] items
    from [victim]; the very oldest is returned, the remainder is pushed
    onto [into] so that [into]'s owner pops them in age order.  [None]
    when [victim] is empty.  Never holds both locks at once. *)

(** {2 Single-threaded variants}

    Identical order contracts, no locking.  Only safe while exactly one
    thread can touch every deque involved — the Frontier's sequential
    drive (effective domain count 1) is the intended caller.
    [unsafe_steal_half] additionally requires [victim != into]. *)

val unsafe_push : 'a t -> 'a -> unit
val unsafe_push_list : 'a t -> 'a list -> unit
val unsafe_pop : 'a t -> 'a option
val unsafe_steal_half : 'a t -> into:'a t -> 'a option
