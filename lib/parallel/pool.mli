(** Fixed-size domain pool with a work-stealing frontier.

    Stdlib-only parallel building blocks for the branch-and-prune
    analyses: fork/join over logical workers ({!run}), a cancellable
    work-stealing frontier ({!Frontier}), per-worker budget leases
    ({!Lease}), static chunked fan-out ({!parallel_for_chunks}), and
    portfolio races ({!first_conclusive}).

    {2 Determinism contracts}

    - [jobs = 1] runs entirely on the calling domain and is
      bit-identical to the sequential code path.
    - Logical worker indices, not domains, carry identity: PRNG streams,
      stats slots and chunk assignments are per worker [w], so results
      at fixed [(seed, jobs)] do not depend on {!domain_cap} or on how
      workers were multiplexed onto domains.
    - The frontier schedule is nondeterministic at [jobs > 1]; callers
      that promise deterministic output (Reach's path-order merge,
      pave's leaf sets, SMC's weave) merge per-worker results by worker
      index, which this module returns in order. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, 8]. *)

val workstealing_enabled : unit -> bool
(** Whether the work-stealing scheduler (per-worker deques, budget
    leases with chunk > 1, adaptive SMC batches) is active.  Defaults to
    [true] unless the environment sets [BIOMC_NO_WORKSTEAL=1] (or
    [true]/[yes]), which restores the PR-1 monitor frontier and per-box
    budget spends bit-for-bit. *)

val set_workstealing : bool -> unit
(** Programmatic override (tests, benches); wins over the environment.
    Affects frontiers and leases created {e after} the call. *)

val clear_workstealing_override : unit -> unit
(** Drop the {!set_workstealing} override and re-read the environment. *)

val domain_cap : unit -> int
(** Hardware domain budget: how many domains {!run} keeps runnable at
    once.  Defaults to [Domain.recommended_domain_count ()]. *)

val set_domain_cap : int option -> unit
(** Override the cap ([None] restores the default).  Tests use this to
    force real concurrency on 1-core machines; 1-core machines benefit
    from the default, because multiplexing logical workers sequentially
    avoids cross-domain minor-GC rendezvous.  Results never depend on
    the cap (see the determinism contracts above) — only scheduling
    does.
    @raise Invalid_argument when [Some n] with [n < 1]. *)

val run : jobs:int -> (int -> 'a) -> 'a array
(** [run ~jobs worker] evaluates [worker w] for [w = 0 .. jobs-1] on
    [min jobs (domain_cap ())] domains and returns the results in worker
    order.  Worker 0 runs on the calling domain; [jobs = 1] spawns
    nothing.  When [jobs] exceeds the cap, domain [d] runs workers
    [d, d+doms, d+2*doms, ...] sequentially in ascending order.  All
    spawned domains are joined even on exceptions; the first worker
    exception (in worker order) is re-raised afterwards.
    @raise Invalid_argument when [jobs < 1]. *)

(** A shared pool of independent work items, drained concurrently.

    Work-stealing by default: each worker owns a {!Deque}, pushes
    follow-up items locally (LIFO, so the search stays depth-first-ish),
    and steals the oldest half of a seeded-randomly chosen victim when
    dry.  Under [BIOMC_NO_WORKSTEAL=1] the frontier is the historical
    single monitor queue instead; the API is identical. *)
module Frontier : sig
  type 'a t

  type 'a slot
  (** A worker's handle on the frontier, passed to the {!drain}
      callback; pushes through a slot land in that worker's own deque. *)

  val create : 'a list -> 'a t
  (** Frontier seeded with the given items.  Seeds are distributed
      round-robin across workers at {!drain} time, lowest index first
      within each worker (worker [w] starts on seed [w]). *)

  val push : 'a slot -> 'a -> unit
  (** Add one item.  No-op after {!stop}. *)

  val push_batch : 'a slot -> 'a list -> unit
  (** Add a batch under one lock acquisition; the pushing worker pops
      [List.hd] of the batch first.  No-op after {!stop} and on [[]]. *)

  val stop : 'a t -> unit
  (** Cancel: discard queued items and wake all workers.  Items already
      being processed run to completion (cancellation is item-granular —
      long-running items poll {!stopped}). *)

  val stopped : 'a t -> bool

  val drain : jobs:int -> 'a t -> (int -> 'a slot -> 'a -> unit) -> unit
  (** [drain ~jobs t process] runs [jobs] workers until the frontier is
      empty (no queued items, none in flight) or stopped.  [process w
      slot item] may {!push}/{!push_batch} follow-ups through [slot] and
      may {!stop} the frontier (first conclusive result wins).  An
      exception in [process] stops the frontier and is re-raised after
      all workers joined.
      @raise Invalid_argument when [jobs < 1]. *)
end

(** Per-worker leases over a shared integer budget.

    The box budget used to cost one contended atomic per box; a lease
    claims {!Lease.default_chunk} units at a time and spends them with
    local mutations.  The budget stays a hard cap — a claim never
    exceeds [total], and unspent units are returned by
    {!Lease.return_unspent} — the only slack being that exhaustion can
    be declared up to [jobs * chunk] units early while other workers
    hold unspent leases.  Under [BIOMC_NO_WORKSTEAL=1] the chunk is
    forced to 1, which is exactly the historical per-box
    [Atomic.fetch_and_add]. *)
module Lease : sig
  type t
  (** The shared budget. *)

  type local
  (** One worker's lease.  Not thread-safe: each worker creates its own
      with {!local}. *)

  val default_chunk : int
  (** 64. *)

  val create : ?chunk:int -> total:int -> unit -> t
  (** @raise Invalid_argument when [chunk < 1]. *)

  val local : t -> local

  val spend : local -> bool
  (** Consume one unit, refilling the lease from the shared budget when
      empty; [false] means the budget is exhausted. *)

  val return_unspent : local -> unit
  (** Give unspent claimed units back to the shared budget (call at
      drain, so {!consumed} is exact). *)

  val consumed : t -> int
  (** Units actually spent, exact once every worker has returned its
      lease; equals the number of successful {!spend}s and never exceeds
      [total]. *)
end

val chunk : jobs:int -> n:int -> int -> (int * int)
(** [chunk ~jobs ~n w] is the [w]-th contiguous slice [lo, hi) of
    [0, n); slices partition the range deterministically. *)

val parallel_for_chunks : jobs:int -> int -> (int -> int -> int -> 'a) -> 'a array
(** [parallel_for_chunks ~jobs n f] runs [f w lo hi] per worker on its
    {!chunk}; [jobs] is clamped to [n] so no worker gets an empty slice
    unless [n = 0].
    @raise Invalid_argument when [jobs < 1]. *)

val first_conclusive :
  jobs:int ->
  ?leases:Lease.local array ->
  (cancelled:(unit -> bool) -> conclude:('a -> unit) -> unit) list ->
  'a option
(** Portfolio execution: run the tasks concurrently; the first task that
    calls [conclude v] wins and stops the frontier {e immediately} —
    losing racers observe [cancelled () = true] while the winner's thunk
    is still unwinding.  Returns the winning value, or [None] when no
    task concluded.  Later [conclude]s lose the race and are ignored.

    [?leases] attaches a per-racer budget lease-local to each task
    (index-aligned with the task list).  Each local is
    {!Lease.return_unspent}-ed the moment its racer settles — normal
    completion {e or} cancellation — so {!Lease.consumed} on each
    racer's shared budget is exact as soon as [first_conclusive]
    returns, including for racers the winner cancelled mid-run or cut
    out of the queue before they ever ran.

    The always-on [portfolio.cancel_latency_ns] telemetry counter
    accumulates, per losing racer, the nanoseconds between the winner's
    [conclude] and that racer settling.

    On a single effective domain the tasks run to completion in list
    order (the frontier's sequential drive), so the winner is the first
    task in list order that concludes — deterministic.  At true
    concurrency the winner is timing-dependent; callers wanting a
    deterministic verdict merge over near-simultaneous concludes should
    record per-racer results and merge by rank after the race (see
    [Icp.Portfolio]).
    @raise Invalid_argument when [jobs < 1]. *)
