(** Fixed-size domain pool with a work-sharing frontier (OCaml 5
    domains, stdlib only).

    Three coordination shapes cover every parallel analysis in the
    framework: fork/join over a fixed worker set ({!run}), a shared
    cancellable work queue ({!Frontier}) for branch-and-prune loops, and
    static contiguous chunking ({!parallel_for_chunks}) for SMC sampling
    with reproducible per-worker PRNG streams.

    Everywhere, [jobs = 1] means "no domains spawned, run inline": the
    sequential code path is always a special case. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] clamped to [1, 8]. *)

val run : jobs:int -> (int -> 'a) -> 'a array
(** [run ~jobs worker] evaluates [worker w] for [w = 0 .. jobs-1]
    (worker 0 on the calling domain) and returns results in worker
    order.  All spawned domains are joined even on exceptions; the first
    worker exception is re-raised afterwards.
    @raise Invalid_argument when [jobs < 1]. *)

module Frontier : sig
  type 'a t

  val create : 'a list -> 'a t
  val push : 'a t -> 'a -> unit
  (** No-op after {!stop}. *)

  val stop : 'a t -> unit
  (** Cancel: discard queued items and wake all workers. *)

  val stopped : 'a t -> bool

  val drain : jobs:int -> 'a t -> (int -> 'a t -> 'a -> unit) -> unit
  (** [drain ~jobs t process] drains [t] with [jobs] workers; [process w
      t item] may {!push} follow-up items and {!stop} the frontier (first
      conclusive result wins).  Returns when the queue is empty and all
      workers idle, or after {!stop}. *)
end

val chunk : jobs:int -> n:int -> int -> (int * int)
(** [chunk ~jobs ~n w] is the [w]-th contiguous slice [lo, hi) of
    [0, n); slices partition the range deterministically. *)

val parallel_for_chunks : jobs:int -> int -> (int -> int -> int -> 'a) -> 'a array
(** [parallel_for_chunks ~jobs n f] runs [f w lo hi] per worker on its
    {!chunk}; [jobs] is clamped to [n] so no worker gets an empty slice
    unless [n = 0]. *)

val first_conclusive :
  jobs:int ->
  (cancelled:(unit -> bool) -> conclude:('a -> unit) -> unit) list ->
  'a option
(** Portfolio execution: run the tasks concurrently; the first task that
    calls [conclude v] cancels the rest (they observe [cancelled ()]),
    and that [v] is returned.  [None] when no task concluded. *)
