(* Work-stealing deque: a growable ring buffer with owner-local LIFO
   push/pop at the bottom and steal-half removal from the top.

   Every operation takes the deque's own mutex.  That sounds like the
   contention we are trying to kill, but the difference to a shared
   monitor queue is where the contention *lives*: here the owner's
   push/pop locks a mutex nobody else touches unless a steal is in
   flight — an uncontended Mutex.lock/unlock pair is a couple of atomic
   operations with no syscall — while a shared queue makes every worker
   fight over one lock (and one cache line) for every item.  Steals are
   rare by construction (a worker only probes victims when its own
   deque runs dry), so the locked sections almost never collide.

   Why not an unsynchronized owner ring with only the steal path locked?
   Because in the OCaml 5 memory model a plain-field owner update racing
   with a stealer's read has no useful ordering guarantee: a stale
   [bottom] could hand the same item to both sides or lose it entirely.
   The lock-free answer to that is Chase–Lev, which steals one item at a
   time and needs fenced CAS choreography; the locked ring gives us
   steal-half batching in twenty lines and owner ops that are cheap
   enough to disappear next to interval arithmetic.  DESIGN.md §15
   records the measurements behind this choice.

   Order contract (what the Frontier relies on):
   - [pop] returns the most recently pushed item (LIFO — keeps the
     branch-and-prune search depth-first-ish);
   - [push_list xs] behaves like pushing the items of [xs] in *reverse*
     order, so a subsequent [pop] returns [List.hd xs] first;
   - [steal_half] removes the *oldest* ceil(size/2) items — the ones
     nearest the root of the search tree, i.e. the biggest subtrees. *)

type 'a t = {
  lock : Mutex.t;
  mutable buf : 'a array;  (* [||] until the first push *)
  mutable top : int;  (* index of the oldest item *)
  mutable bottom : int;  (* index one past the newest item *)
}
(* Invariant: top <= bottom; the ring holds buf.(i land (len-1)) for
   top <= i < bottom; len is a power of two.  Indices grow without
   wrap-around (at 2^62 items we have other problems).  Popped and
   stolen slots keep their stale references until overwritten — the
   frontier's items are small boxes with short lifetimes, so the
   retention window is harmless. *)

let create () = { lock = Mutex.create (); buf = [||]; top = 0; bottom = 0 }

let size t = t.bottom - t.top

let[@inline] unlocked_grow t x =
  let old = t.buf in
  let old_len = Array.length old in
  if old_len = 0 then begin
    t.buf <- Array.make 32 x;
    t.top <- 0;
    t.bottom <- 0
  end
  else begin
    (* full: double, compacting the live window to [0, size) *)
    let n = t.bottom - t.top in
    let fresh = Array.make (2 * old_len) x in
    for i = 0 to n - 1 do
      fresh.(i) <- old.((t.top + i) land (old_len - 1))
    done;
    t.buf <- fresh;
    t.top <- 0;
    t.bottom <- n
  end

let[@inline] unlocked_push t x =
  let len = Array.length t.buf in
  if len = 0 || t.bottom - t.top = len then unlocked_grow t x;
  let len = Array.length t.buf in
  t.buf.(t.bottom land (len - 1)) <- x;
  t.bottom <- t.bottom + 1

let push t x =
  Mutex.lock t.lock;
  unlocked_push t x;
  Mutex.unlock t.lock

(* One lock acquisition for the whole batch (a worker splitting a box
   publishes both halves in one operation). *)
let push_list t xs =
  match xs with
  | [] -> ()
  | xs ->
      Mutex.lock t.lock;
      List.iter (fun x -> unlocked_push t x) (List.rev xs);
      Mutex.unlock t.lock

let pop t =
  Mutex.lock t.lock;
  let r =
    if t.bottom = t.top then None
    else begin
      t.bottom <- t.bottom - 1;
      Some t.buf.(t.bottom land (Array.length t.buf - 1))
    end
  in
  Mutex.unlock t.lock;
  r

(* -- Single-threaded variants: same order contract, no locking.  Only
   safe while exactly one thread can touch every deque involved; the
   Frontier's sequential drive (effective domain count 1, where all
   logical workers are multiplexed onto the calling domain) is the only
   caller.  There, the mutex pairs are pure overhead per item — the
   whole point of that path is to make [jobs > 1] on one core cost the
   same as [jobs = 1]. -- *)

let unsafe_push t x = unlocked_push t x
let unsafe_push_list t xs = List.iter (fun x -> unlocked_push t x) (List.rev xs)

let unsafe_pop t =
  if t.bottom = t.top then None
  else begin
    t.bottom <- t.bottom - 1;
    Some t.buf.(t.bottom land (Array.length t.buf - 1))
  end

let unsafe_steal_half victim ~into =
  let n = victim.bottom - victim.top in
  if n = 0 then None
  else begin
    let k = (n + 1) / 2 in
    let len = Array.length victim.buf in
    let first = victim.buf.(victim.top land (len - 1)) in
    for i = k - 2 downto 0 do
      unlocked_push into victim.buf.((victim.top + 1 + i) land (len - 1))
    done;
    victim.top <- victim.top + k;
    Some first
  end

(* Steal the oldest ceil(size/2) items from [victim].  The first stolen
   item is returned for immediate processing; the rest land in [into]
   (the thief's own deque) newest-last, so the thief pops them oldest
   first — it inherits the victim's breadth-first end in order.  The two
   locks are never held together (extract under the victim's, publish
   under the thief's), so no lock ordering is needed even when two
   workers steal from each other concurrently. *)
let steal_half victim ~into =
  Mutex.lock victim.lock;
  let n = victim.bottom - victim.top in
  if n = 0 then begin
    Mutex.unlock victim.lock;
    None
  end
  else begin
    let k = (n + 1) / 2 in
    let len = Array.length victim.buf in
    let first = victim.buf.(victim.top land (len - 1)) in
    let rest = Array.init (k - 1) (fun i ->
        victim.buf.((victim.top + 1 + i) land (len - 1)))
    in
    victim.top <- victim.top + k;
    Mutex.unlock victim.lock;
    if k > 1 then begin
      Mutex.lock into.lock;
      (* oldest stolen first at the bottom end; the thief pops them in
         stolen order after exhausting its own newer work *)
      for i = Array.length rest - 1 downto 0 do
        unlocked_push into rest.(i)
      done;
      Mutex.unlock into.lock
    end;
    Some first
  end
