(* Fixed-size domain pool with a work-stealing frontier.

   The branch-and-prune analyses of this framework are embarrassingly
   parallel: boxes on the solver stack are independent, as are DNF
   branches, paving subtrees, candidate mode paths and SMC trace samples.
   This module provides the coordination shapes they need on OCaml 5
   domains, with no dependency beyond the stdlib:

   - {!run}: fork/join over a fixed set of logical workers, scheduled
     over at most {!domain_cap} hardware domains (worker 0 runs on the
     calling domain, so [jobs = 1] spawns nothing);
   - {!Frontier}: a cancellable work pool drained by [jobs] workers —
     per-worker work-stealing deques (owner-local LIFO, steal-half) by
     default, the historical single-monitor queue under
     [BIOMC_NO_WORKSTEAL=1] — the pattern behind parallel [decide],
     [pave] and parameter synthesis;
   - {!Lease}: per-worker leases over a shared work budget, so the
     search budget costs one atomic operation per lease instead of one
     per box;
   - {!parallel_for_chunks}: static contiguous chunking of an index
     range — the pattern behind SMC sampling, where worker [w] owns its
     deterministic slice and its own PRNG stream.

   Scheduling-wise the design point is near-zero coordination on the hot
   path: a worker's own deque is guarded by a mutex nobody else touches
   unless a steal is probing it, budget traffic is amortized over lease
   chunks, and sleeping is an eventcount that producers only signal when
   somebody is actually idle.  Oversubscription is handled in {!run}:
   when [jobs] exceeds the hardware domain budget, the extra logical
   workers are multiplexed sequentially onto the available domains
   instead of forcing the runtime to rendezvous descheduled domains at
   every minor collection — which is precisely what made [jobs > cores]
   lose before (BENCH_icp.json's 0.16x SMC rows). *)

let src = Logs.Src.create "parallel.pool" ~doc:"domain pool"
module Log = (val Logs.src_log src : Logs.LOG)

(* Scheduling telemetry: how often workers pick up items, how often a
   pickup crossed deques (a steal), how often a full victim sweep found
   nothing, how long workers sit in Condition.wait, how deep the deques
   (and, on the legacy path, the shared queue) run, and how often budget
   leases go back to the shared counter for a refill. *)
let tm_drain = Telemetry.Span.probe "pool.drain"
let m_takes = Telemetry.Counter.make "pool.takes"
let m_steals = Telemetry.Counter.make "pool.steals"
let m_steal_fails = Telemetry.Counter.make "pool.steal_fails"
let m_idle_ns = Telemetry.Counter.make "pool.idle_ns"
let m_lease_refills = Telemetry.Counter.make "pool.lease_refills"
let h_queue_depth = Telemetry.Histogram.make "pool.queue_depth"
let h_deque_depth = Telemetry.Histogram.make "pool.deque_depth"

(* Cap the default well below huge machines: branch-and-prune frontiers
   rarely keep more than a handful of domains saturated, and the GC's
   minor-heap traffic grows with every extra domain. *)
let default_jobs () = Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

let validate_jobs jobs =
  if jobs < 1 then invalid_arg "Parallel.Pool: jobs must be >= 1"

(* ---- Kill-switch: BIOMC_NO_WORKSTEAL=1 restores the PR-1 monitor
   frontier, per-box budget spends and fixed SMC batches bit-for-bit
   (the same discipline as BIOMC_NO_TAPE / BIOMC_NO_NEWTON /
   BIOMC_NO_AFFINE). ---- *)

let ws_override : bool option Atomic.t = Atomic.make None

let workstealing_enabled () =
  match Atomic.get ws_override with
  | Some b -> b
  | None -> (
      match Sys.getenv_opt "BIOMC_NO_WORKSTEAL" with
      | Some ("1" | "true" | "yes") -> false
      | _ -> true)

let set_workstealing b = Atomic.set ws_override (Some b)
let clear_workstealing_override () = Atomic.set ws_override None

(* ---- Hardware domain budget ----

   [run ~jobs] never keeps more domains runnable than the machine has
   cores (or than this override says): two domains time-slicing one core
   do not add throughput, but every minor collection must interrupt and
   reschedule the descheduled one to reach its safepoint.  Logical
   workers beyond the cap run sequentially on the available domains;
   every worker still executes with its own index (PRNG streams, stats
   slots and chunk assignments are per logical worker, so results do not
   depend on the cap).  Tests and benches override the cap to force real
   concurrency on constrained machines. *)

let cap_override : int option Atomic.t = Atomic.make None

let set_domain_cap c =
  (match c with
  | Some n when n < 1 -> invalid_arg "Parallel.Pool.set_domain_cap: cap must be >= 1"
  | _ -> ());
  Atomic.set cap_override c

let domain_cap () =
  match Atomic.get cap_override with
  | Some c -> c
  | None -> Stdlib.max 1 (Domain.recommended_domain_count ())

(* ---- Fork/join ---- *)

(* [run ~jobs worker] evaluates [worker w] for w = 0..jobs-1 on
   [min jobs (domain_cap ())] domains — domain d executes logical
   workers d, d+doms, d+2*doms... in ascending order, worker 0 on the
   calling domain — and returns the results in worker order.  Every
   spawned domain is joined even when a worker raises; the first
   exception (in worker order) is re-raised after the join. *)
let run ~jobs worker =
  validate_jobs jobs;
  if jobs = 1 then [| worker 0 |]
  else begin
    let doms = Stdlib.min jobs (domain_cap ()) in
    let wrap w = try Ok (worker w) with e -> Error e in
    let run_domain d =
      let rec go acc w =
        if w >= jobs then List.rev acc else go (wrap w :: acc) (w + doms)
      in
      go [] d
    in
    let spawned =
      Array.init (doms - 1) (fun i -> Domain.spawn (fun () -> run_domain (i + 1)))
    in
    let r0 = run_domain 0 in
    let rest = Array.map Domain.join spawned in
    let results = Array.make jobs None in
    let record d rs = List.iteri (fun i r -> results.(d + (i * doms)) <- Some r) rs in
    record 0 r0;
    Array.iteri (fun i rs -> record (i + 1) rs) rest;
    Array.iter (function Some (Error e) -> raise e | _ -> ()) results;
    Array.map (function Some (Ok v) -> v | _ -> assert false) results
  end

(* ---- Work-stealing / work-sharing frontier ---- *)

module Frontier = struct
  (* -- Legacy monitor queue (one mutex + condition around a shared
     list), kept verbatim as the BIOMC_NO_WORKSTEAL=1 fallback and the
     differential-testing oracle for the deque scheduler.  One fix
     relative to PR 1: [take]'s steal accounting resets after every
     successful take — previously a worker that had waited once was
     counted as "stealing" every item it took for the rest of the call,
     inflating pool.steals. -- *)
  module Mon = struct
    type 'a t = {
      mutex : Mutex.t;
      wake : Condition.t;  (* new item, cancellation, or drain *)
      mutable queue : 'a list;  (* LIFO: keeps the search depth-first-ish *)
      mutable depth : int;  (* List.length queue, maintained O(1) *)
      mutable active : int;  (* workers currently processing an item *)
      mutable stopped : bool;
    }

    let create init =
      { mutex = Mutex.create (); wake = Condition.create (); queue = init;
        depth = List.length init; active = 0; stopped = false }

    let push t x =
      Mutex.lock t.mutex;
      if not t.stopped then begin
        t.queue <- x :: t.queue;
        t.depth <- t.depth + 1;
        Telemetry.Histogram.observe h_queue_depth t.depth;
        Condition.signal t.wake
      end;
      Mutex.unlock t.mutex

    let stop t =
      Mutex.lock t.mutex;
      t.stopped <- true;
      t.queue <- [];
      t.depth <- 0;
      Condition.broadcast t.wake;
      Mutex.unlock t.mutex

    let stopped t = t.stopped

    (* Blocking take: [None] once the frontier is drained (empty queue
       and no active worker that could still push) or stopped. *)
    let take t =
      Mutex.lock t.mutex;
      let waited = ref false in
      let rec go () =
        if t.stopped then None
        else
          match t.queue with
          | x :: rest ->
              t.queue <- rest;
              t.depth <- t.depth - 1;
              t.active <- t.active + 1;
              Telemetry.Counter.incr m_takes;
              if !waited then Telemetry.Counter.incr m_steals;
              waited := false;
              Some x
          | [] ->
              if t.active = 0 then None
              else begin
                let t0 = if Telemetry.metrics_on () then Telemetry.now_ns () else 0 in
                Condition.wait t.wake t.mutex;
                if t0 <> 0 then
                  Telemetry.Counter.add m_idle_ns (Telemetry.now_ns () - t0);
                waited := true;
                go ()
              end
      in
      let r = go () in
      (* On drain/stop, wake the remaining sleepers so they can exit. *)
      if Option.is_none r then Condition.broadcast t.wake;
      Mutex.unlock t.mutex;
      r

    let finish_item t =
      Mutex.lock t.mutex;
      t.active <- t.active - 1;
      if t.active = 0 && t.queue = [] then Condition.broadcast t.wake;
      Mutex.unlock t.mutex
  end

  (* -- Work-stealing scheduler: one deque per logical worker, owner
     pops LIFO, dry workers steal the oldest half of a victim chosen by
     a seeded per-worker sweep.  Termination and sleeping:

     - [pending] counts items that are queued or in flight; it is
       incremented {e before} an item is published and decremented only
       after [process] returns, so [pending = 0] proves there is
       nothing left anywhere and nothing in flight that could push.
     - A dry worker that found [pending > 0] registers in [idlers],
       reads the wake generation, re-scans every deque once, and only
       then waits for a generation bump.  A producer bumps the
       generation only when [idlers > 0] at push time.  The handshake
       cannot lose a wakeup: if the producer misses the idler
       registration, the idler's re-scan necessarily runs after the
       item was published (both sides cross the deque mutexes and the
       [idlers] atomic, which order the two races); if the idler's
       re-scan misses the item, the producer necessarily sees
       [idlers > 0] and bumps.  See DESIGN.md §15. -- *)
  module Ws = struct
    type 'a t = {
      mutable deques : 'a Deque.t array;  (* one per worker; set by drain *)
      mutable seeds : 'a list;  (* initial items, in take order *)
      mutable seq : bool;  (* sequential drive: see [drain] below *)
      pending : int Atomic.t;
      stop_flag : bool Atomic.t;
      idlers : int Atomic.t;
      lock : Mutex.t;  (* sleep monitor: guards [gen] *)
      wake : Condition.t;
      mutable gen : int;
    }

    let create init =
      { deques = [||]; seeds = init; seq = false;
        pending = Atomic.make (List.length init);
        stop_flag = Atomic.make false; idlers = Atomic.make 0;
        lock = Mutex.create (); wake = Condition.create (); gen = 0 }

    let wake_all t =
      Mutex.lock t.lock;
      t.gen <- t.gen + 1;
      Condition.broadcast t.wake;
      Mutex.unlock t.lock

    let stop t =
      Atomic.set t.stop_flag true;
      wake_all t

    let stopped t = Atomic.get t.stop_flag

    let observe_depth my =
      (* guarded here rather than relying on the histogram's own check:
         [Deque.size] is evaluated eagerly as the argument, and this
         runs once per published batch *)
      if Telemetry.metrics_on () then
        Telemetry.Histogram.observe h_deque_depth (Deque.size my)

    (* Publication order matters: [pending] goes up before the item is
       visible, and comes down only after the item is fully processed
       ([finish]), so [pending = 0] can never race with a live item.
       In sequential-drive mode ([t.seq], single-threaded by
       construction) there is nobody to publish to: no pending counter,
       no locks, no wakeups. *)
    let push t my x =
      if not (Atomic.get t.stop_flag) then
        if t.seq then begin
          Deque.unsafe_push my x;
          observe_depth my
        end
        else begin
          Atomic.incr t.pending;
          Deque.push my x;
          observe_depth my;
          if Atomic.get t.idlers > 0 then wake_all t
        end

    let push_batch t my xs =
      match xs with
      | [] -> ()
      | xs ->
          if not (Atomic.get t.stop_flag) then
            if t.seq then begin
              Deque.unsafe_push_list my xs;
              observe_depth my
            end
            else begin
              ignore (Atomic.fetch_and_add t.pending (List.length xs));
              Deque.push_list my xs;
              observe_depth my;
              if Atomic.get t.idlers > 0 then wake_all t
            end

    let finish t =
      if Atomic.fetch_and_add t.pending (-1) = 1 then
        (* last outstanding item: wake sleepers so they can exit *)
        wake_all t

    (* One seeded-random cyclic sweep over the other deques; [Some] on
       the first successful steal-half.  [steal] is {!Deque.steal_half}
       or its unsafe variant in sequential-drive mode. *)
    let try_steal_gen ~steal t my w rng =
      let n = Array.length t.deques in
      if n <= 1 then None
      else begin
        let start = Random.State.int rng n in
        let rec sweep i =
          if i >= n then None
          else
            let v = (start + i) mod n in
            if v = w then sweep (i + 1)
            else
              match steal t.deques.(v) ~into:my with
              | Some _ as r -> r
              | None -> sweep (i + 1)
        in
        sweep 0
      end

    let try_steal t my w rng = try_steal_gen ~steal:Deque.steal_half t my w rng

    let take_local () = Telemetry.Counter.incr m_takes
    let take_stolen () =
      Telemetry.Counter.incr m_takes;
      Telemetry.Counter.incr m_steals

    (* Next item for worker [w]: own deque, then steal, then the
       eventcount sleep described above.  [None] = drained or stopped. *)
    let rec acquire t my w rng =
      if Atomic.get t.stop_flag then None
      else
        match Deque.pop my with
        | Some _ as r -> take_local (); r
        | None ->
            if Atomic.get t.pending = 0 then None
            else (
              match try_steal t my w rng with
              | Some _ as r -> take_stolen (); r
              | None ->
                  Telemetry.Counter.incr m_steal_fails;
                  if Atomic.get t.pending = 0 then None
                  else begin
                    Atomic.incr t.idlers;
                    Mutex.lock t.lock;
                    let g0 = t.gen in
                    Mutex.unlock t.lock;
                    (* one more scan after registering as idle: items a
                       producer published without seeing us are
                       guaranteed visible here *)
                    let again =
                      match Deque.pop my with
                      | Some _ as r -> take_local (); r
                      | None -> (
                          match try_steal t my w rng with
                          | Some _ as r -> take_stolen (); r
                          | None -> None)
                    in
                    match again with
                    | Some _ ->
                        Atomic.decr t.idlers;
                        again
                    | None ->
                        if
                          Atomic.get t.pending > 0
                          && not (Atomic.get t.stop_flag)
                        then begin
                          let t0 =
                            if Telemetry.metrics_on () then Telemetry.now_ns ()
                            else 0
                          in
                          Mutex.lock t.lock;
                          while
                            t.gen = g0
                            && Atomic.get t.pending > 0
                            && not (Atomic.get t.stop_flag)
                          do
                            Condition.wait t.wake t.lock
                          done;
                          Mutex.unlock t.lock;
                          if t0 <> 0 then
                            Telemetry.Counter.add m_idle_ns
                              (Telemetry.now_ns () - t0)
                        end;
                        Atomic.decr t.idlers;
                        acquire t my w rng
                  end)

    (* Build the per-worker deques and spread the seeds round-robin, in
       index order within each deque (so worker w starts on the
       lowest-indexed seed it owns — [Reach.Checker] relies on
       low-index-first preference for its shortest-path-first scan). *)
    let install ~jobs t =
      let deques = Array.init jobs (fun _ -> Deque.create ()) in
      t.deques <- deques;
      let seeds = t.seeds in
      t.seeds <- [];
      let buckets = Array.make jobs [] in
      List.iteri
        (fun i x -> buckets.(i mod jobs) <- x :: buckets.(i mod jobs))
        seeds;
      Array.iteri (fun w b -> Deque.push_list deques.(w) (List.rev b)) buckets;
      deques
  end

  type 'a t = T_ws of 'a Ws.t | T_mon of 'a Mon.t

  (* A worker's handle on the frontier: its own deque (work-stealing) or
     the shared monitor (legacy).  Allocated once per worker per drain. *)
  type 'a slot = S_ws of 'a Ws.t * 'a Deque.t | S_mon of 'a Mon.t

  let create init =
    if workstealing_enabled () then T_ws (Ws.create init)
    else T_mon (Mon.create init)

  let push slot x =
    match slot with
    | S_ws (ws, my) -> Ws.push ws my x
    | S_mon m -> Mon.push m x

  (* Batched publish: one lock acquisition on the work-stealing path.
     The next item popped by this worker is [List.hd xs] (the legacy
     path emulates this by pushing in reverse, exactly the push pairs
     PR 1's call sites wrote out by hand). *)
  let push_batch slot xs =
    match slot with
    | S_ws (ws, my) -> Ws.push_batch ws my xs
    | S_mon m -> List.iter (Mon.push m) (List.rev xs)

  let stop = function T_ws ws -> Ws.stop ws | T_mon m -> Mon.stop m
  let stopped = function T_ws ws -> Ws.stopped ws | T_mon m -> Mon.stopped m

  (* Drain the frontier with [jobs] workers.  [process w slot item] may
     [push]/[push_batch] follow-up items through its slot and may [stop]
     the whole frontier (first conclusive result wins).  Exceptions
     cancel the frontier, and the first one is re-raised after all
     domains joined. *)
  let drain ~jobs t process =
    validate_jobs jobs;
    let tok = Telemetry.Span.enter tm_drain in
    Fun.protect
      ~finally:(fun () -> Telemetry.Span.exit tm_drain tok)
      (fun () ->
        match t with
        | T_mon m ->
            ignore
              (run ~jobs (fun w ->
                   let slot = S_mon m in
                   let rec loop () =
                     match Mon.take m with
                     | None -> ()
                     | Some item ->
                         (match process w slot item with
                         | () -> Mon.finish_item m
                         | exception e ->
                             Mon.finish_item m;
                             Mon.stop m;
                             raise e);
                         loop ()
                   in
                   loop ()))
        | T_ws ws ->
            let deques = Ws.install ~jobs ws in
            let doms = Stdlib.min jobs (domain_cap ()) in
            ws.Ws.seq <- doms = 1;
            if doms = 1 then
              (* Sequential drive: one effective domain means [run] would
                 execute the logical workers back to back on the calling
                 domain anyway, with every push/pop paying mutexes and
                 pending-counter RMWs that coordinate with nobody.  This
                 loop is that same schedule — worker 0 drains its own
                 deque LIFO, then steals the remaining seeds worker by
                 worker — minus all synchronization, so [jobs > 1] on one
                 core costs the same as [jobs = 1].  Item-granular
                 cancellation is preserved (the stop flag is checked
                 before every item), and so is worker identity (the
                 callback still sees the logical [w] that owns the
                 deque).  A failed steal sweep here means global
                 emptiness, i.e. normal termination — not contention —
                 so it does not count toward [pool.steal_fails]. *)
              for w = 0 to jobs - 1 do
                let my = deques.(w) in
                let slot = S_ws (ws, my) in
                let rng = Random.State.make [| 0x5ca1ab1e; w |] in
                let rec loop () =
                  if not (Atomic.get ws.Ws.stop_flag) then begin
                    let item =
                      match Deque.unsafe_pop my with
                      | Some _ as r -> Ws.take_local (); r
                      | None -> (
                          match
                            Ws.try_steal_gen ~steal:Deque.unsafe_steal_half
                              ws my w rng
                          with
                          | Some _ as r -> Ws.take_stolen (); r
                          | None -> None)
                    in
                    match item with
                    | None -> ()
                    | Some item ->
                        (match process w slot item with
                        | () -> ()
                        | exception e ->
                            Ws.stop ws;
                            raise e);
                        loop ()
                  end
                in
                loop ()
              done
            else
              ignore
                (run ~jobs (fun w ->
                     let my = deques.(w) in
                     let slot = S_ws (ws, my) in
                     let rng = Random.State.make [| 0x5ca1ab1e; w |] in
                     let rec loop () =
                       match Ws.acquire ws my w rng with
                       | None -> ()
                       | Some item ->
                           (match process w slot item with
                           | () -> Ws.finish ws
                           | exception e ->
                               Ws.finish ws;
                               Ws.stop ws;
                               raise e);
                           loop ()
                     in
                     loop ())))
end

(* ---- Budget leases ---- *)

(* The search budget (max boxes) used to be one atomic counter hit once
   per box by every worker — a guaranteed cache-line ping-pong.  A lease
   moves the contention boundary: each worker claims [chunk] units at a
   time from the shared counter and then spends them with plain local
   mutations; unspent units go back at drain so the consumed total stays
   exact.  The budget remains a hard global cap (a claim never exceeds
   [total]); the only slack is that exhaustion can be detected up to
   [jobs * chunk] units early when workers hold unspent leases —
   irrelevant in practice because budgets are orders of magnitude larger
   than the lease chunk, and tests only fix behaviour when the budget is
   not exhausted.  Under BIOMC_NO_WORKSTEAL=1 the chunk is forced to 1,
   which is bit-for-bit the historical per-box spend. *)
module Lease = struct
  type t = { total : int; chunk : int; taken : int Atomic.t }
  type local = { shared : t; mutable remaining : int }

  let default_chunk = 64

  let create ?(chunk = default_chunk) ~total () =
    if chunk < 1 then invalid_arg "Parallel.Pool.Lease.create: chunk must be >= 1";
    let chunk = if workstealing_enabled () then chunk else 1 in
    { total; chunk; taken = Atomic.make 0 }

  let local t = { shared = t; remaining = 0 }

  let refill l =
    let t = l.shared in
    let old = Atomic.fetch_and_add t.taken t.chunk in
    let granted = Stdlib.max 0 (Stdlib.min t.chunk (t.total - old)) in
    if granted < t.chunk then
      (* return the part of the claim that overshot the budget *)
      ignore (Atomic.fetch_and_add t.taken (granted - t.chunk));
    Telemetry.Counter.incr m_lease_refills;
    l.remaining <- granted;
    granted > 0

  let spend l =
    if l.remaining > 0 then begin
      l.remaining <- l.remaining - 1;
      true
    end
    else if refill l then begin
      l.remaining <- l.remaining - 1;
      true
    end
    else false

  let return_unspent l =
    if l.remaining > 0 then begin
      ignore (Atomic.fetch_and_add l.shared.taken (-l.remaining));
      l.remaining <- 0
    end

  let consumed t = Stdlib.min t.total (Atomic.get t.taken)
end

(* ---- Static chunked index ranges ---- *)

(* The [w]-th of [jobs] contiguous chunks of [0, n): deterministic
   assignment, so per-worker PRNG streams reproduce run to run. *)
let chunk ~jobs ~n w =
  let lo = w * n / jobs and hi = (w + 1) * n / jobs in
  (lo, hi)

(* [parallel_for_chunks ~jobs n f] calls [f w lo hi] per worker with its
   contiguous slice [lo, hi) of [0, n) and returns per-worker results in
   worker order.  With [jobs = 1] it degenerates to [f 0 0 n] inline. *)
let parallel_for_chunks ~jobs n f =
  validate_jobs jobs;
  let jobs = Stdlib.max 1 (Stdlib.min jobs (Stdlib.max 1 n)) in
  run ~jobs (fun w ->
      let lo, hi = chunk ~jobs ~n w in
      f w lo hi)

(* ---- Portfolio: first conclusive answer wins ---- *)

(* Loser-cancellation latency: summed nanoseconds between a winner's
   [conclude] and each losing racer settling (its thunk returning after
   observing the cancellation, or — for racers the stop flag cut out of
   the queue before they ever ran — the post-drain sweep).  Always-on
   like the pool counters: the number is a scheduling-health signal the
   portfolio benches read even in untraced runs. *)
let m_cancel_latency =
  Telemetry.Counter.make ~always:true "portfolio.cancel_latency_ns"

(* [first_conclusive ~jobs tasks] runs the thunks concurrently; each
   receives a [cancelled] probe it should poll and a [conclude] callback.
   The first task calling [conclude v] stops the frontier {e immediately}
   — losing racers observe [cancelled ()] while the winner is still
   unwinding, not only after its thunk returns (the PR-1 version stopped
   the frontier from the drain loop, so losers kept burning boxes for
   the whole tail of the winner's run).  The return value is that [v],
   or [None] when every task finished without concluding.

   [?leases] gives racer [i] the budget lease-local [leases.(i)]; each
   local's unspent chunk is returned to the shared budget atomic the
   moment its racer settles — on normal completion or {e at
   cancellation} (previously only a caller-side sweep after the whole
   drain returned them, so a cancelled racer sat on up to a chunk of
   budget for the winner's entire unwind).  Each local is touched by
   exactly one racer and each racer settles on exactly one worker, so
   the early return needs no extra synchronization; the post-drain
   sweep settles only racers the stop flag discarded unrun. *)
let first_conclusive ~jobs ?leases tasks =
  validate_jobs jobs;
  let cell = Atomic.make None in
  let conclude_ns = Atomic.make 0 in
  let winner = Atomic.make (-1) in
  let n = List.length tasks in
  let settled = Array.make (Stdlib.max 1 n) false in
  let settle i ~was_cancelled =
    if not settled.(i) then begin
      settled.(i) <- true;
      (match leases with
      | Some locals -> Lease.return_unspent locals.(i)
      | None -> ());
      if was_cancelled then begin
        let t0 = Atomic.get conclude_ns in
        if t0 > 0 then
          Telemetry.Counter.add m_cancel_latency
            (Stdlib.max 0 (Telemetry.now_ns () - t0))
      end
    end
  in
  let t = Frontier.create (List.mapi (fun i task -> (i, task)) tasks) in
  let cancelled () = Option.is_some (Atomic.get cell) in
  Frontier.drain ~jobs t (fun _w _slot (i, task) ->
      let conclude v =
        if Atomic.compare_and_set cell None (Some v) then begin
          Atomic.set winner i;
          Atomic.set conclude_ns (Telemetry.now_ns ());
          Frontier.stop t
        end
      in
      task ~cancelled ~conclude;
      settle i ~was_cancelled:(cancelled () && Atomic.get winner <> i));
  (* Racers the stop flag cut out of the queue never ran their thunk:
     settle them here (single-threaded — every worker has joined). *)
  for i = 0 to n - 1 do
    settle i ~was_cancelled:(cancelled () && Atomic.get winner <> i)
  done;
  Atomic.get cell
