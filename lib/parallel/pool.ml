(* Fixed-size domain pool with a work-sharing frontier.

   The branch-and-prune analyses of this framework are embarrassingly
   parallel: boxes on the solver stack are independent, as are DNF
   branches, paving subtrees, candidate mode paths and SMC trace samples.
   This module provides the three coordination shapes they need on
   OCaml 5 domains, with no dependency beyond the stdlib:

   - {!run}: fork/join over a fixed set of workers (worker 0 runs on the
     calling domain, so [jobs = 1] spawns nothing);
   - {!Frontier}: a shared LIFO work queue drained by [jobs] workers,
     with item-granular cancellation — the pattern behind parallel
     [decide], [pave] and parameter synthesis;
   - {!parallel_for_chunks}: static contiguous chunking of an index
     range — the pattern behind SMC sampling, where worker [w] owns its
     deterministic slice and its own PRNG stream.

   Every shared-state structure here is a plain Mutex/Condition monitor;
   throughput is dominated by interval arithmetic inside the work items,
   so queue contention is negligible at the pool sizes we target. *)

let src = Logs.Src.create "parallel.pool" ~doc:"domain pool"
module Log = (val Logs.src_log src : Logs.LOG)

(* Scheduling telemetry: how deep the frontier queue runs, how often
   workers pick up shared items, how often they pick one up after having
   gone idle (a "steal" in work-sharing terms), and how long they sit in
   Condition.wait. *)
let tm_drain = Telemetry.Span.probe "pool.drain"
let m_takes = Telemetry.Counter.make "pool.takes"
let m_steals = Telemetry.Counter.make "pool.steals"
let m_idle_ns = Telemetry.Counter.make "pool.idle_ns"
let h_queue_depth = Telemetry.Histogram.make "pool.queue_depth"

(* Cap the default well below huge machines: branch-and-prune frontiers
   rarely keep more than a handful of domains saturated, and the GC's
   minor-heap traffic grows with every extra domain. *)
let default_jobs () = Stdlib.max 1 (Stdlib.min 8 (Domain.recommended_domain_count ()))

let validate_jobs jobs =
  if jobs < 1 then invalid_arg "Parallel.Pool: jobs must be >= 1"

(* ---- Fork/join ---- *)

(* [run ~jobs worker] evaluates [worker w] for w = 0..jobs-1, worker 0 on
   the calling domain, and returns the results in worker order.  Every
   spawned domain is joined even when a worker raises; the first
   exception (in worker order) is re-raised after the join. *)
let run ~jobs worker =
  validate_jobs jobs;
  if jobs = 1 then [| worker 0 |]
  else begin
    let wrap w () = try Ok (worker w) with e -> Error e in
    let doms = Array.init (jobs - 1) (fun i -> Domain.spawn (wrap (i + 1))) in
    let r0 = wrap 0 () in
    let rest = Array.map Domain.join doms in
    let all = Array.append [| r0 |] rest in
    Array.iter (function Error e -> raise e | Ok _ -> ()) all;
    Array.map (function Ok v -> v | Error _ -> assert false) all
  end

(* ---- Work-sharing frontier ---- *)

module Frontier = struct
  type 'a t = {
    mutex : Mutex.t;
    wake : Condition.t;  (* new item, cancellation, or drain *)
    mutable queue : 'a list;  (* LIFO: keeps the search depth-first-ish *)
    mutable depth : int;  (* List.length queue, maintained O(1) *)
    mutable active : int;  (* workers currently processing an item *)
    mutable stopped : bool;
  }

  let create init =
    { mutex = Mutex.create (); wake = Condition.create (); queue = init;
      depth = List.length init; active = 0; stopped = false }

  let push t x =
    Mutex.lock t.mutex;
    if not t.stopped then begin
      t.queue <- x :: t.queue;
      t.depth <- t.depth + 1;
      Telemetry.Histogram.observe h_queue_depth t.depth;
      Condition.signal t.wake
    end;
    Mutex.unlock t.mutex

  let stop t =
    Mutex.lock t.mutex;
    t.stopped <- true;
    t.queue <- [];
    t.depth <- 0;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex

  let stopped t = t.stopped

  (* Blocking take: [None] once the frontier is drained (empty queue and
     no active worker that could still push) or stopped. *)
  let take t =
    Mutex.lock t.mutex;
    let waited = ref false in
    let rec go () =
      if t.stopped then None
      else
        match t.queue with
        | x :: rest ->
            t.queue <- rest;
            t.depth <- t.depth - 1;
            t.active <- t.active + 1;
            Telemetry.Counter.incr m_takes;
            if !waited then Telemetry.Counter.incr m_steals;
            Some x
        | [] ->
            if t.active = 0 then None
            else begin
              let t0 = if Telemetry.metrics_on () then Telemetry.now_ns () else 0 in
              Condition.wait t.wake t.mutex;
              if t0 <> 0 then
                Telemetry.Counter.add m_idle_ns (Telemetry.now_ns () - t0);
              waited := true;
              go ()
            end
    in
    let r = go () in
    (* On drain/stop, wake the remaining sleepers so they can exit. *)
    if Option.is_none r then Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    r

  let finish_item t =
    Mutex.lock t.mutex;
    t.active <- t.active - 1;
    if t.active = 0 && t.queue = [] then Condition.broadcast t.wake;
    Mutex.unlock t.mutex

  (* Drain the frontier with [jobs] workers.  [process w t item] may
     [push] follow-up items and may [stop] the whole frontier (first
     conclusive result wins).  Exceptions cancel the frontier, and the
     first one is re-raised after all domains joined. *)
  let drain ~jobs t process =
    validate_jobs jobs;
    let tok = Telemetry.Span.enter tm_drain in
    let worker w =
      let rec loop () =
        match take t with
        | None -> ()
        | Some item ->
            (match process w t item with
            | () -> finish_item t
            | exception e ->
                finish_item t;
                stop t;
                raise e);
            loop ()
      in
      loop ()
    in
    Fun.protect
      ~finally:(fun () -> Telemetry.Span.exit tm_drain tok)
      (fun () -> ignore (run ~jobs worker))
end

(* ---- Static chunked index ranges ---- *)

(* The [w]-th of [jobs] contiguous chunks of [0, n): deterministic
   assignment, so per-worker PRNG streams reproduce run to run. *)
let chunk ~jobs ~n w =
  let lo = w * n / jobs and hi = (w + 1) * n / jobs in
  (lo, hi)

(* [parallel_for_chunks ~jobs n f] calls [f w lo hi] per worker with its
   contiguous slice [lo, hi) of [0, n) and returns per-worker results in
   worker order.  With [jobs = 1] it degenerates to [f 0 0 n] inline. *)
let parallel_for_chunks ~jobs n f =
  validate_jobs jobs;
  let jobs = Stdlib.max 1 (Stdlib.min jobs (Stdlib.max 1 n)) in
  run ~jobs (fun w ->
      let lo, hi = chunk ~jobs ~n w in
      f w lo hi)

(* ---- Portfolio: first conclusive answer wins ---- *)

(* [first_conclusive ~jobs tasks] runs the thunks concurrently; each
   receives a [cancelled] probe it should poll and a [conclude] callback.
   The first task calling [conclude v] cancels the rest; the return value
   is that [v], or [None] when every task finished without concluding. *)
let first_conclusive ~jobs tasks =
  validate_jobs jobs;
  let cell = Atomic.make None in
  let cancelled () = Option.is_some (Atomic.get cell) in
  let conclude v = ignore (Atomic.compare_and_set cell None (Some v)) in
  let t = Frontier.create (List.map (fun task -> task) tasks) in
  Frontier.drain ~jobs t (fun _w fr task ->
      task ~cancelled ~conclude;
      if cancelled () then Frontier.stop fr);
  Atomic.get cell
