(** Infinite-time stability analysis (Sec. IV-C): Lyapunov-function
    synthesis through δ-decisions, trying templates of increasing
    richness. *)

type report = {
  certificate : Lyapunov.Cegis.certificate option;
  template_used : string option;
  attempts : (string * Lyapunov.Cegis.outcome) list;
}

val prove :
  ?inner_radius:float ->
  ?mu:float ->
  ?zeta:float ->
  ?config:Lyapunov.Cegis.config ->
  region:Interval.Box.t ->
  Ode.System.t ->
  report
(** Try quadratic-form, even-quartic, then full degree ≤ 4 templates. *)

val validate :
  ?inner_radius:float ->
  ?samples:int ->
  region:Interval.Box.t ->
  Ode.System.t ->
  Lyapunov.Cegis.certificate ->
  bool
(** Cross-validate a certificate by dense sampling (defense in depth). *)

val pp_report : report Fmt.t
