(* Plain-text report rendering for the analysis tasks: the examples and
   the CLI assemble their output through this module so every tool prints
   results the same way. *)

type cell = string

type item =
  | Heading of string
  | Text of string
  | Kv of (string * string) list
  | Table of { header : cell list; rows : cell list list }
  | Winner of string
  | Rule

type t = item list

let heading s = Heading s
let text fmt = Printf.ksprintf (fun s -> Text s) fmt
let kv pairs = Kv pairs
let table ~header rows = Table { header; rows }
let winner s = Winner s
let rule = Rule

let cellf fmt = Printf.ksprintf Fun.id fmt

(* Column widths for an aligned table (ragged rows are tolerated). *)
let widths header rows =
  let base = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun i c ->
          if i < Array.length base then
            base.(i) <- Stdlib.max base.(i) (String.length c))
        row)
    rows;
  base

let pad width s = s ^ String.make (Stdlib.max 0 (width - String.length s)) ' '

let pp_item ppf = function
  | Heading s ->
      Fmt.pf ppf "@,== %s ==@," s
  | Text s -> Fmt.pf ppf "%s@," s
  | Kv pairs ->
      let w = List.fold_left (fun acc (k, _) -> Stdlib.max acc (String.length k)) 0 pairs in
      List.iter (fun (k, v) -> Fmt.pf ppf "  %s : %s@," (pad w k) v) pairs
  | Table { header; rows } ->
      let ws = widths header rows in
      let render_row row =
        String.concat "  "
          (List.mapi
             (fun i c -> if i < Array.length ws then pad ws.(i) c else c)
             row)
      in
      Fmt.pf ppf "  %s@," (render_row header);
      Fmt.pf ppf "  %s@,"
        (String.concat "  "
           (List.map (fun w -> String.make w '-') (Array.to_list ws)));
      List.iter (fun row -> Fmt.pf ppf "  %s@," (render_row row)) rows
  | Winner s -> Fmt.pf ppf "  winning strategy : %s@," s
  | Rule -> Fmt.pf ppf "%s@," (String.make 64 '-')

let pp ppf (t : t) = Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.nop pp_item) t

let print t = Fmt.pr "%a@." pp t

let to_string t = Fmt.str "%a" pp t

(* Machine-readable mirror of the same report: a JSON array of items,
   so --metrics-style consumers read the key/value plumbing without
   scraping the aligned text. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json (t : t) =
  let buf = Buffer.create 1024 in
  let str s = Buffer.add_string buf (Printf.sprintf "\"%s\"" (json_escape s)) in
  let strs cells =
    Buffer.add_char buf '[';
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_char buf ',';
        str c)
      cells;
    Buffer.add_char buf ']'
  in
  Buffer.add_char buf '[';
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_char buf ',';
      (match item with
      | Heading s ->
          Buffer.add_string buf "{\"type\":\"heading\",\"text\":";
          str s;
          Buffer.add_char buf '}'
      | Text s ->
          Buffer.add_string buf "{\"type\":\"text\",\"text\":";
          str s;
          Buffer.add_char buf '}'
      | Kv pairs ->
          Buffer.add_string buf "{\"type\":\"kv\",\"pairs\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char buf ',';
              str k;
              Buffer.add_char buf ':';
              str v)
            pairs;
          Buffer.add_string buf "}}"
      | Table { header; rows } ->
          Buffer.add_string buf "{\"type\":\"table\",\"header\":";
          strs header;
          Buffer.add_string buf ",\"rows\":[";
          List.iteri
            (fun j row ->
              if j > 0 then Buffer.add_char buf ',';
              strs row)
            rows;
          Buffer.add_string buf "]}"
      | Winner s ->
          Buffer.add_string buf "{\"type\":\"winner\",\"winner\":";
          str s;
          Buffer.add_char buf '}'
      | Rule -> Buffer.add_string buf "{\"type\":\"rule\"}"))
    t;
  Buffer.add_char buf ']';
  Buffer.contents buf
