(* Robustness analysis (Sec. IV-C, time-bounded part).

   "Cardiac cells filter out insignificant stimulations": a system is
   robust to an input range when the response goal is *unreachable* from
   every initial state in the range — an `unsat` answer is a proof of
   robustness (the paper's key observation).  Conversely a certified
   δ-sat witness shows the range can trigger the response.

   The input range is modelled as the initial box of the automaton; the
   sweep classifies a ladder of ranges and locates the excitability
   threshold as the verdict crossover. *)

type verdict =
  | Robust  (** response unreachable from the whole range: proof *)
  | Excitable of (string * float) list  (** certified triggering witness *)
  | Borderline of string  (** uncertified δ-sat or solver budget exhausted *)

let pp_verdict ppf = function
  | Robust -> Fmt.string ppf "robust (unsat)"
  | Excitable w ->
      Fmt.pf ppf "excitable (witness %a)"
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
        w
  | Borderline why -> Fmt.pf ppf "borderline (%s)" why

(* Classify one input range.  [make] builds the automaton whose initial
   box encodes the range. *)
let classify ?config ~goal ~k ~time_bound make range =
  let automaton = make range in
  let pb = Reach.Encoding.create ~goal ~k ~time_bound automaton in
  match Reach.Checker.check ?config pb with
  | Reach.Checker.Unsat _ -> Robust
  | Reach.Checker.Delta_sat w when w.Reach.Checker.certified ->
      Excitable (w.Reach.Checker.params @ w.Reach.Checker.init)
  | Reach.Checker.Delta_sat _ -> Borderline "uncertified delta-sat"
  | Reach.Checker.Unknown why -> Borderline why

(* Sweep a list of ranges and report (range, verdict) pairs; the
   excitability threshold lies between the last Robust and the first
   Excitable range. *)
let sweep ?config ~goal ~k ~time_bound make ranges =
  List.map (fun r -> (r, classify ?config ~goal ~k ~time_bound make r)) ranges

(* Locate the threshold by bisection on a scalar amplitude, assuming
   monotonicity (higher amplitude ⇒ more excitable). *)
let threshold ?config ~goal ~k ~time_bound ~lo ~hi ?(tol = 1e-2) make =
  let is_excitable a =
    match classify ?config ~goal ~k ~time_bound make a with
    | Excitable _ -> true
    | Robust | Borderline _ -> false
  in
  if is_excitable lo then Some lo
  else if not (is_excitable hi) then None
  else begin
    let lo = ref lo and hi = ref hi in
    while !hi -. !lo > tol do
      let mid = 0.5 *. (!lo +. !hi) in
      if is_excitable mid then hi := mid else lo := mid
    done;
    Some !hi
  end
