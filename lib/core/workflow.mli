(** The Fig.-2 analysis workflow: δ-decision-based parameter synthesis
    with validation, falsification, and the SMC fallback. *)

type calibration =
  | Calibrated of {
      witness : (string * float) list;  (** a fitted parameter point *)
      sse : float;
      regions : Synth.Biopsy.result;  (** the guaranteed paving *)
    }
  | Falsified of Synth.Biopsy.result
      (** no parameter value can explain the data — reject the model
          hypothesis (Fig. 2's "model refinement" arrow) *)
  | Inconclusive of Synth.Biopsy.result

val calibrate : ?config:Synth.Biopsy.config -> Synth.Biopsy.problem -> calibration

val check :
  ?config:Reach.Checker.config ->
  ?param_box:Interval.Box.t ->
  goal:Reach.Encoding.goal ->
  k:int ->
  time_bound:float ->
  Hybrid.Automaton.t ->
  Reach.Checker.result
(** Bounded reachability of a behaviour on the (possibly parameterized)
    model. *)

val refutes :
  ?config:Reach.Checker.config ->
  ?param_box:Interval.Box.t ->
  goal:Reach.Encoding.goal ->
  k:int ->
  time_bound:float ->
  Hybrid.Automaton.t ->
  bool
(** [true] iff the behaviour is unsat for every parameter value — model
    falsification against a qualitative property. *)

val smc_screen :
  ?seed:int -> ?eps:float -> ?alpha:float -> Smc.Runner.problem -> Smc.Estimate.estimate
(** Statistical screening under distributional uncertainty: the
    hypothesis-generation branch taken when calibration fails. *)

val pp_calibration : calibration Fmt.t
