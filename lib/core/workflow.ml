(* The Fig.-2 analysis workflow: δ-decision-based parameter synthesis with
   model validation, falsification, and the SMC fallback for refinement.

   calibrate  — BioPSy-style guaranteed synthesis against data; the model
                is *calibrated* when a consistent parameter region exists,
                *falsified* when the whole box is inconsistent (unsat ⇒
                reject the model hypothesis), and *inconclusive* when only
                undecided boxes remain (tighten ε / gather data).
   check      — bounded reachability of a desired/undesired behaviour on
                the calibrated model (δ-sat with witness, or unsat).
   smc_screen — the statistical branch: estimates how probable a
                behaviour is under parameter uncertainty, used to generate
                hypotheses when the model was falsified. *)

type calibration =
  | Calibrated of {
      witness : (string * float) list;  (** a fitted parameter point *)
      sse : float;  (** residual of the witness *)
      regions : Synth.Biopsy.result;  (** the guaranteed paving *)
    }
  | Falsified of Synth.Biopsy.result
      (** no parameter value can explain the data: reject the hypothesis *)
  | Inconclusive of Synth.Biopsy.result

let pp_calibration ppf = function
  | Calibrated { witness; sse; regions } ->
      Fmt.pf ppf "calibrated (sse=%.4g, %a) at %a" sse Synth.Biopsy.pp_result regions
        Fmt.(list ~sep:(any ", ") (pair ~sep:(any "=") string float))
        witness
  | Falsified r -> Fmt.pf ppf "falsified (%a)" Synth.Biopsy.pp_result r
  | Inconclusive r -> Fmt.pf ppf "inconclusive (%a)" Synth.Biopsy.pp_result r

let calibrate ?config (prob : Synth.Biopsy.problem) =
  let result = Synth.Biopsy.synthesize ?config prob in
  if Synth.Biopsy.falsified result then Falsified result
  else
    match Synth.Biopsy.fit ?config prob with
    | Some (witness, sse) -> Calibrated { witness; sse; regions = result }
    | None -> Inconclusive result

(* Bounded reachability check of a behaviour on a (possibly parameterized)
   hybrid model — thin orchestration over [Reach]. *)
let check ?config ?(param_box = Interval.Box.empty_map) ~goal ~k ~time_bound automaton =
  let pb = Reach.Encoding.create ~param_box ~goal ~k ~time_bound automaton in
  Reach.Checker.check ?config pb

(* A behaviour is refuted (model falsification against a *qualitative*
   property) when its reachability is unsat for every parameter value. *)
let refutes ?config ?param_box ~goal ~k ~time_bound automaton =
  match check ?config ?param_box ~goal ~k ~time_bound automaton with
  | Reach.Checker.Unsat _ -> true
  | Reach.Checker.Delta_sat _ | Reach.Checker.Unknown _ -> false

(* SMC screening of a behaviour under distributional uncertainty: the
   hypothesis-generation branch taken when calibration fails. *)
let smc_screen ?seed ?eps ?alpha (prob : Smc.Runner.problem) =
  Smc.Runner.estimate ?seed ?eps ?alpha prob
