(** Therapeutic strategy identification (Sec. IV-B): treatment schemes as
    mode paths with synthesized drug-delivery thresholds, preferring the
    fewest drug administrations (side-effect minimization). *)

type plan = {
  path : string list;  (** the treatment scheme as a mode path *)
  thresholds : (string * float) list;
  jumps : int;
  reach_time : float;
  safety_checked : bool;  (** harm proved unreachable at these thresholds *)
}

type outcome =
  | Plan of plan
  | No_plan of string

val safe_at :
  ?config:Reach.Checker.config ->
  Hybrid.Automaton.t ->
  harm:Reach.Encoding.goal ->
  k_harm:int ->
  time_bound:float ->
  (string * float) list ->
  bool option
(** Is the harm goal unreachable at fixed thresholds?  [None] when the
    solver could not decide. *)

val optimize :
  ?config:Reach.Checker.config ->
  ?k_harm:int ->
  param_box:Interval.Box.t ->
  recovery:Reach.Encoding.goal ->
  harm:Reach.Encoding.goal ->
  max_jumps:int ->
  time_bound:float ->
  Hybrid.Automaton.t ->
  outcome
(** Shortest-first search for thresholds making [recovery] reachable with
    [harm] verified unreachable at the witness thresholds. *)

val pp_plan : plan Fmt.t
val pp_outcome : outcome Fmt.t
