(** Plain-text report rendering shared by the examples, the CLI, and the
    bench harness: headings, key-value blocks, aligned tables. *)

type cell = string

type item =
  | Heading of string
  | Text of string
  | Kv of (string * string) list
  | Table of { header : cell list; rows : cell list list }
  | Winner of string
      (** the solver-strategy portfolio's winning racer for this run *)
  | Rule

type t = item list

val heading : string -> item
val text : ('a, unit, string, item) format4 -> 'a
val kv : (string * string) list -> item
val table : header:cell list -> cell list list -> item

val winner : string -> item
(** Winning portfolio strategy, rendered as a [winning strategy : <name>]
    line and as [{"type":"winner","winner":…}] in {!to_json}. *)

val rule : item

val cellf : ('a, unit, string) format -> 'a
(** Formatted cell. *)

val pp : t Fmt.t
val print : t -> unit
val to_string : t -> string

val to_json : t -> string
(** The same report as a JSON array of items ([{"type":"kv","pairs":…}],
    …) for machine-readable consumers of the key/value plumbing. *)
